// Command hyppi-benchcmp compares two `go test -bench` output files in the
// style of benchstat, with no external dependency: for every benchmark
// present in both files it prints old vs new time/op, B/op, allocs/op and
// the repository's custom metrics (points/s, flit-hops/s, …) with their
// percentage delta. `make bench-compare` runs it against the pinned
// BENCH_baseline.txt so a perf regression (or win) is visible in one table.
//
// Usage:
//
//	hyppi-benchcmp old.txt new.txt
//	hyppi-benchcmp -threshold 20 old.txt new.txt   # exit 1 on >20% time/op regressions
//	hyppi-benchcmp -fail-allocs 0 old.txt new.txt  # exit 1 on any allocs/op increase
//	hyppi-benchcmp -json cmp.json old.txt new.txt  # also write the table as JSON
//
// With a single file argument it just pretty-prints that file's metrics.
// Without -threshold the exit status is always 0 for timings (single-run
// benchmark numbers are noisy; the CI smoke job runs at -benchtime=1x and
// only wants the comparison rendered, not enforced). Allocation counts are
// deterministic at -benchtime=1x, so -fail-allocs gates them exactly: any
// allocs/op increase beyond the given percentage fails, and 0 tolerates
// none. -json writes the machine-readable comparison (every benchmark ×
// metric row with its delta) for dashboards and artifact diffing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics maps unit → value for one benchmark, plus the iteration count.
type metrics struct {
	iters  int64
	values map[string]float64
	order  []string
}

// parseFile reads `go test -bench` output: lines of the form
//
//	BenchmarkName[-P]  <iters>  <value> <unit>  <value> <unit> ...
func parseFile(path string) (map[string]*metrics, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := make(map[string]*metrics)
	var names []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so runs from machines with
		// different core counts line up.
		if p := guessProcs(name); p > 0 {
			name = strings.TrimSuffix(name, fmt.Sprintf("-%d", p))
		}
		m := &metrics{iters: iters, values: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if _, dup := m.values[unit]; !dup {
				m.order = append(m.order, unit)
			}
			m.values[unit] = v
		}
		if _, dup := out[name]; !dup {
			names = append(names, name)
		}
		out[name] = m
	}
	return out, names, sc.Err()
}

// guessProcs extracts the trailing -P GOMAXPROCS suffix, or 0 if absent.
func guessProcs(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return p
}

// delta renders the old→new change; lower is better for every standard
// unit, higher is better for the repository's rate metrics.
func delta(unit string, old, new float64) string {
	if old == 0 {
		return "   n/a"
	}
	pct := (new - old) / old * 100
	arrow := " "
	betterWhenHigher := strings.Contains(unit, "/s") || strings.Contains(unit, "speedup")
	switch {
	case pct < -0.05 && !betterWhenHigher, pct > 0.05 && betterWhenHigher:
		arrow = "+" // improvement
	case pct > 0.05 && !betterWhenHigher, pct < -0.05 && betterWhenHigher:
		arrow = "-" // regression
	}
	return fmt.Sprintf("%+7.1f%% %s", pct, arrow)
}

func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// row is one benchmark × metric comparison of the JSON report.
type row struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	DeltaPct  float64 `json:"delta_pct"`
}

func main() {
	threshold := flag.Float64("threshold", 0,
		"exit 1 when any benchmark's ns/op regresses by more than this percentage (0 = never fail)")
	failAllocs := flag.Float64("fail-allocs", -1,
		"exit 1 when any benchmark's allocs/op grows by more than this percentage "+
			"(0 = fail on any increase, negative = disabled)")
	jsonPath := flag.String("json", "",
		"also write the comparison as JSON rows to this file")
	units := flag.String("units", "",
		"comma-separated unit filter (default: every unit present in both files)")
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: hyppi-benchcmp [-threshold pct] old.txt [new.txt]")
		os.Exit(2)
	}

	oldM, oldNames, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-benchcmp:", err)
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		for _, name := range oldNames {
			m := oldM[name]
			fmt.Printf("%s (%d iters)\n", name, m.iters)
			for _, u := range m.order {
				fmt.Printf("    %-16s %s\n", u, human(m.values[u]))
			}
		}
		return
	}

	newM, newNames, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-benchcmp:", err)
		os.Exit(2)
	}

	var filter map[string]bool
	if *units != "" {
		filter = make(map[string]bool)
		for _, u := range strings.Split(*units, ",") {
			filter[strings.TrimSpace(u)] = true
		}
	}

	fmt.Printf("%-44s %-14s %14s %14s %10s\n", "benchmark", "metric", "old", "new", "delta")
	fmt.Println(strings.Repeat("-", 100))
	var rows []row
	regressed := false
	var allocFailures []string
	for _, name := range newNames {
		om, ok := oldM[name]
		nm := newM[name]
		if !ok {
			fmt.Printf("%-44s %s\n", name, "(new benchmark, no baseline)")
			continue
		}
		for _, u := range nm.order {
			if filter != nil && !filter[u] {
				continue
			}
			ov, ok := om.values[u]
			if !ok {
				continue
			}
			nv := nm.values[u]
			fmt.Printf("%-44s %-14s %14s %14s  %s\n", name, u, human(ov), human(nv), delta(u, ov, nv))
			pct := 0.0
			if ov != 0 {
				pct = (nv - ov) / ov * 100
			}
			rows = append(rows, row{Benchmark: name, Metric: u, Old: ov, New: nv, DeltaPct: pct})
			if u == "ns/op" && *threshold > 0 && ov > 0 && pct > *threshold {
				regressed = true
			}
			if u == "allocs/op" && *failAllocs >= 0 && ov >= 0 && pct > *failAllocs {
				allocFailures = append(allocFailures,
					fmt.Sprintf("%s: allocs/op %s -> %s (%+.1f%%)", name, human(ov), human(nv), pct))
			}
		}
	}
	var dropped []string
	for _, name := range oldNames {
		if _, ok := newM[name]; !ok {
			dropped = append(dropped, name)
		}
	}
	sort.Strings(dropped)
	for _, name := range dropped {
		fmt.Printf("%-44s %s\n", name, "(missing from new run)")
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-benchcmp:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-benchcmp:", err)
			os.Exit(2)
		}
	}
	fail := false
	if regressed {
		fmt.Fprintf(os.Stderr, "hyppi-benchcmp: ns/op regression beyond %.0f%%\n", *threshold)
		fail = true
	}
	for _, f := range allocFailures {
		fmt.Fprintln(os.Stderr, "hyppi-benchcmp:", f)
		fail = true
	}
	if len(allocFailures) > 0 {
		fmt.Fprintf(os.Stderr, "hyppi-benchcmp: allocs/op regression beyond %.0f%%\n", *failAllocs)
	}
	if fail {
		os.Exit(1)
	}
}
