package main

import (
	"strings"
	"testing"

	"repro/internal/taskgraph"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestUsageListsRegisteredNames: adding a pattern, topology kind or
// task-graph generator to the registries must surface it in -h, not
// leave the usage text stale.
func TestUsageListsRegisteredNames(t *testing.T) {
	for _, name := range traffic.Names() {
		if !strings.Contains(patternUsage, name) {
			t.Errorf("-pattern usage misses registered pattern %q: %s", name, patternUsage)
		}
	}
	for _, name := range topology.Names() {
		if !strings.Contains(topologyUsage, string(name)) {
			t.Errorf("-topology usage misses registered kind %q: %s", name, topologyUsage)
		}
	}
	for _, name := range taskgraph.Names() {
		if !strings.Contains(taskgraphUsage, name) {
			t.Errorf("-taskgraph usage misses registered generator %q: %s", name, taskgraphUsage)
		}
	}
}
