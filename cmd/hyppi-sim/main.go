// Command hyppi-sim is the trace-driven cycle-accurate simulation harness
// behind Fig. 6 and Table V: it runs NPB kernel traces (built in, or read
// from a file produced by hyppi-trace) on the base electronic mesh and on
// express-augmented hybrids, reporting average packet latency and total
// dynamic energy per configuration.
//
// Usage:
//
//	hyppi-sim [-kernel FT|CG|MG|LU|all] [-express HyPPI] [-scale 0.0625]
//	hyppi-sim -trace file.txt [-express Photonic]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	kernel := flag.String("kernel", "all", "kernel: FT, CG, MG, LU or all")
	traceFile := flag.String("trace", "", "external trace file (overrides -kernel)")
	express := flag.String("express", "HyPPI", "express link technology: Electronic, Photonic or HyPPI")
	scale := flag.Float64("scale", 1.0/16, "NPB volume scale")
	iters := flag.Int("iterations", 0, "iteration count (0 = kernel default)")
	flag.Parse()

	exTech, err := tech.ParseTechnology(*express)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
		os.Exit(1)
	}
	o := core.DefaultOptions()

	if *traceFile != "" {
		if err := runExternal(*traceFile, exTech, o); err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
			os.Exit(1)
		}
		return
	}

	kernels := npb.Kernels
	if *kernel != "all" {
		k, err := npb.ParseKernel(*kernel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
			os.Exit(1)
		}
		kernels = []npb.Kernel{k}
	}

	fmt.Printf("Fig. 6 — average packet latency (clks), express = %v\n", exTech)
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s %-18s\n",
		"kernel", "mesh", "hops=3", "hops=5", "hops=15", "best speedup")
	for _, k := range kernels {
		cfg := npb.DefaultConfig(k)
		cfg.Scale = *scale
		cfg.Iterations = *iters
		var lat [4]float64
		var energy [4]float64
		for i, hops := range []int{0, 3, 5, 15} {
			point := core.DesignPoint{Base: tech.Electronic, Express: exTech, Hops: hops}
			res, err := core.RunTraceExperiment(cfg, point, o, noc.DefaultConfig())
			if err != nil {
				fmt.Fprintf(os.Stderr, "hyppi-sim: %v %v: %v\n", k, point, err)
				os.Exit(1)
			}
			lat[i] = res.AvgLatencyClks
			energy[i] = res.DynamicEnergyJ
		}
		best := lat[0] / min3(lat[1], lat[2], lat[3])
		fmt.Printf("%-8s %-12.2f %-12.2f %-12.2f %-12.2f %.2fx\n",
			k, lat[0], lat[1], lat[2], lat[3], best)
		fmt.Printf("%-8s %-12s %-12s %-12s %-12s (dynamic energy, Table V style)\n",
			"", core.FormatEnergy(energy[0]), core.FormatEnergy(energy[1]),
			core.FormatEnergy(energy[2]), core.FormatEnergy(energy[3]))
	}
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// runExternal replays a trace file on mesh and hops=3/5/15 hybrids.
func runExternal(path string, exTech tech.Technology, o core.Options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %d messages, %d bytes\n", path, len(events), trace.TotalBytes(events))
	for _, hops := range []int{0, 3, 5, 15} {
		c := o.Topology
		c.BaseTech = tech.Electronic
		c.ExpressTech = exTech
		c.ExpressHops = hops
		net, err := topology.Build(c)
		if err != nil {
			return err
		}
		tab, err := routing.Build(net, o.Policy)
		if err != nil {
			return err
		}
		packets, err := trace.Packetize(events, net.NumNodes(), trace.DefaultPacketize())
		if err != nil {
			return err
		}
		sim, err := noc.New(net, tab, noc.DefaultConfig())
		if err != nil {
			return err
		}
		if err := sim.InjectAll(packets); err != nil {
			return err
		}
		stats, err := sim.Run()
		if err != nil {
			return err
		}
		dynamic, static, err := core.PriceRun(net, stats, o.DSENT)
		if err != nil {
			return err
		}
		fmt.Printf("hops=%-3d latency %-10.2f dynamic %-12s static %.3f W\n",
			hops, stats.AvgPacketLatencyClks, core.FormatEnergy(dynamic), static)
	}
	return nil
}
