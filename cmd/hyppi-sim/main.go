// Command hyppi-sim is the trace-driven cycle-accurate simulation harness
// behind Fig. 6 and Table V: it runs NPB kernel traces (built in, or read
// from a file produced by hyppi-trace) on the base electronic mesh and on
// express-augmented hybrids, reporting average packet latency and total
// dynamic energy per configuration.
//
// Usage:
//
//	hyppi-sim [-kernel FT|CG|MG|LU|all] [-express HyPPI] [-scale 0.0625] [-workers 0]
//	hyppi-sim -trace file.txt [-express Photonic]
//	hyppi-sim -pattern tornado [-express HyPPI]
//	hyppi-sim -pattern all -topology all
//	hyppi-sim -pattern uniform -grid 64x64
//	hyppi-sim -pattern tornado -energy
//	hyppi-sim -pattern uniform -faults
//	hyppi-sim -pattern uniform -faults -variant modetector,hybrid5x5 -csv
//	hyppi-sim -taskgraph ring-allreduce [-express HyPPI]
//	hyppi-sim -taskgraph all -topology all -csv
//	hyppi-sim -kernel FT -topology torus
//	hyppi-sim -pattern uniform -trace-out trace.json -probe-window 200
//	hyppi-sim -cpuprofile cpu.out -memprofile mem.out
//	hyppi-sim -blockprofile block.out -mutexprofile mutex.out
//
// With -pattern, hyppi-sim runs a synthetic traffic saturation sweep
// instead of traces: the named registry pattern (or "all") is swept over
// offered load on the -grid geometry (default 8×8; 64×64 and beyond stay
// interactive — routing, traffic and the kernel are all O(n) in nodes),
// mesh versus express hybrids, and the latency-knee saturation throughput
// is reported per configuration.
//
// Adding -energy prices every drained point of that sweep with the
// activity-based energy subsystem (internal/energy): measured fJ/bit, the
// simulated CLEAR, and the latency–energy Pareto frontier across the
// competing design points of each (topology, pattern) scenario.
//
// With -taskgraph, hyppi-sim runs closed-loop operator graphs instead
// of open-loop traffic: each registry generator (reduce trees, ring and
// tree allreduce, attention all-gather, MoE all-to-all, pipeline
// microbatches — or "all") builds a message DAG whose packets inject
// only when their dependencies' tails eject, and the end-to-end makespan
// is scored against the contention-free critical-path bound. On the mesh
// the express hop ladder competes; -topology sweeps plain fabrics per
// kind; -csv emits the dataset instead of the aligned table.
//
// Adding -trace-out runs the instrumented telemetry sweep instead
// (internal/telemetry): each design point × pattern cell runs once at a
// fixed load with deterministic sampled packet tracing and windowed
// time-series probes attached, the sampled spans are written to the named
// file as Chrome trace-event JSON (loadable in Perfetto), and span tables
// plus probe heatmaps print to stdout (-csv emits the probe census
// instead; -probe-window sets the window length in cycles).
//
// Adding -faults instead runs the reliability sweep (internal/fault):
// seed-derived link-failure schedules at each rate of a ladder, adaptive
// reroute on the surviving fabric, BER-driven retransmission under the
// device variant's error floor and thermal drift, reporting availability
// and CLEAR degradation per (topology, design point, variant, pattern)
// cell. -variant picks the dsent device-variant registry entries to
// sweep; -csv emits the dataset instead of the aligned table.
//
// -topology selects the topology kind (see internal/topology). In
// pattern mode it takes a comma list or "all" and sweeps the full
// topology × pattern × load matrix (plain fabrics, one per kind) instead
// of the express hop ladder; in trace mode it takes a single kind, and
// non-mesh kinds collapse the hop ladder to the plain fabric.
//
// The kernel × hop-length sweep runs as one batch of independent
// simulations on a bounded worker pool (-workers 0 sizes it to GOMAXPROCS);
// results are identical to a serial sweep whatever the pool size.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dsent"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/taskgraph"
	"repro/internal/tech"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// sweepHops are the express hop lengths of the Fig. 6 comparison.
var sweepHops = []int{0, 3, 5, 15}

// patternHopLadder is the pattern sweep's express hop ladder at a grid
// width: plain mesh, the paper's short and mid hops, and the W−1 row
// closure — dropping rungs the width cannot host and duplicates (e.g.
// W = 4, where 3 already is the closure).
func patternHopLadder(w int) []int {
	var out []int
	seen := map[int]bool{}
	for _, h := range []int{0, 3, 5, w - 1} {
		if h < 0 || h >= w || seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, h)
	}
	return out
}

// Flag usage strings are package level so the usage test can assert every
// registered pattern and kind name is discoverable from -h.
var (
	patternUsage = "synthetic pattern saturation sweep instead of traces: a registry name (" +
		strings.Join(traffic.Names(), ", ") + ") or \"all\""
	topologyUsage = "topology kind: " + strings.Join(topology.Names(), ", ") +
		" (comma list or \"all\" in pattern mode; single kind for traces)"
	variantUsage = "with -faults: device-variant registry entries to sweep (" +
		strings.Join(variantNames(), ", ") + "; comma list or \"all\")"
	taskgraphUsage = "closed-loop operator-graph makespan sweep: a registry generator (" +
		strings.Join(taskgraph.Names(), ", ") + ") or \"all\""
)

// variantNames lists the dsent device-variant registry with the baseline's
// empty name spelled out for the command line.
func variantNames() []string {
	var out []string
	for _, v := range dsent.Variants() {
		name := v.Name
		if name == dsent.VariantBaseline {
			name = "baseline"
		}
		out = append(out, name)
	}
	return out
}

// parseVariants resolves a -variant spec against the registry, accepting
// "baseline" as an alias for the registry's empty baseline name.
func parseVariants(spec string) ([]string, error) {
	if spec == "all" {
		var out []string
		for _, v := range dsent.Variants() {
			out = append(out, v.Name)
		}
		return out, nil
	}
	var out []string
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "baseline" {
			name = dsent.VariantBaseline
		}
		if _, err := dsent.LookupVariant(name); err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	return out, nil
}

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile flushing survives error exits.
func run() int {
	kernel := flag.String("kernel", "all", "kernel: FT, CG, MG, LU or all")
	traceFile := flag.String("trace", "", "external trace file (overrides -kernel)")
	pattern := flag.String("pattern", "", patternUsage)
	taskgraphFlag := flag.String("taskgraph", "", taskgraphUsage)
	topoFlag := flag.String("topology", "mesh", topologyUsage)
	grid := flag.String("grid", "8x8", "pattern-sweep router grid as WxH (e.g. 64x64)")
	energySweep := flag.Bool("energy", false,
		"with -pattern: measured energy accounting per sweep point "+
			"(fJ/bit, simulated CLEAR, latency–energy Pareto frontier)")
	faultSweep := flag.Bool("faults", false,
		"with -pattern: reliability sweep over a link-failure rate ladder "+
			"(availability, drops, retransmissions, CLEAR degradation)")
	variantFlag := flag.String("variant", "all", variantUsage)
	csvOut := flag.Bool("csv", false, "with -faults: emit CSV instead of the aligned table")
	express := flag.String("express", "HyPPI", "express link technology: Electronic, Photonic or HyPPI")
	scale := flag.Float64("scale", 1.0/16, "NPB volume scale")
	iters := flag.Int("iterations", 0, "iteration count (0 = kernel default)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	traceOut := flag.String("trace-out", "",
		"with -pattern: run the instrumented telemetry sweep, write sampled packet "+
			"traces as Chrome trace-event JSON to this file (loadable in Perfetto) "+
			"and print span tables and probe heatmaps")
	probeWindow := flag.Int64("probe-window", 0,
		"with -trace-out: time-series probe window in cycles (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.StartAll(prof.Config{
		CPUPath: *cpuprofile, MemPath: *memprofile,
		BlockPath: *blockprofile, MutexPath: *mutexprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
		return 1
	}
	defer stopProf()

	exTech, err := tech.ParseTechnology(*express)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
		return 1
	}
	o := core.DefaultOptions()
	pool := runner.Config{Workers: *workers}

	kinds, err := topology.ParseKinds(*topoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
		return 1
	}

	if *taskgraphFlag != "" {
		if *pattern != "" {
			fmt.Fprintln(os.Stderr, "hyppi-sim: -taskgraph and -pattern are mutually exclusive")
			return 1
		}
		w, h, err := topology.ParseGrid(*grid)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
			return 1
		}
		o.Topology.Width, o.Topology.Height = w, h
		if err := runTaskGraphSweep(kinds, *taskgraphFlag, exTech, *csvOut, o, pool); err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
			return 1
		}
		return 0
	}
	if *pattern != "" {
		w, h, err := topology.ParseGrid(*grid)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
			return 1
		}
		o.Topology.Width, o.Topology.Height = w, h
		switch {
		case *traceOut != "":
			if len(kinds) != 1 {
				err = fmt.Errorf("-trace-out takes a single -topology kind")
			} else {
				err = runTelemetry(kinds[0], *pattern, *traceOut, *probeWindow,
					exTech, *csvOut, o, pool)
			}
		case *faultSweep:
			err = runFaultSweep(kinds, *pattern, *variantFlag, exTech, *csvOut, o, pool)
		case *energySweep:
			err = runEnergySweep(kinds, *pattern, exTech, o, pool)
		case len(kinds) == 1 && kinds[0] == topology.Mesh:
			err = runPatternSweep(*pattern, exTech, o, pool)
		default:
			err = runTopologySweep(kinds, *pattern, o, pool)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
			return 1
		}
		return 0
	}
	if *energySweep {
		fmt.Fprintln(os.Stderr, "hyppi-sim: -energy needs -pattern (it prices the pattern sweep)")
		return 1
	}
	if *faultSweep {
		fmt.Fprintln(os.Stderr, "hyppi-sim: -faults needs -pattern (it degrades the pattern sweep)")
		return 1
	}

	// Trace modes take a single kind; non-mesh kinds have no express
	// axis, so the hop ladder collapses to the plain fabric.
	if len(kinds) != 1 {
		fmt.Fprintln(os.Stderr, "hyppi-sim: trace mode takes a single -topology kind")
		return 1
	}
	o = o.WithKind(kinds[0])
	hops := sweepHops
	if kinds[0] != topology.Mesh {
		hops = []int{0}
	}

	if *traceFile != "" {
		if err := runExternal(*traceFile, exTech, o, hops, pool); err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
			return 1
		}
		return 0
	}

	kernels := npb.Kernels
	if *kernel != "all" {
		k, err := npb.ParseKernel(*kernel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
			return 1
		}
		kernels = []npb.Kernel{k}
	}

	// One job per kernel × hop length, simulated concurrently.
	var jobs []core.TraceJob
	for _, k := range kernels {
		cfg := npb.DefaultConfig(k)
		cfg.Scale = *scale
		cfg.Iterations = *iters
		for _, h := range hops {
			jobs = append(jobs, core.TraceJob{Kernel: cfg, Point: core.DesignPoint{
				Base: tech.Electronic, Express: exTech, Hops: h}})
		}
	}
	results, err := core.RunTraceExperiments(context.Background(), jobs, o, noc.DefaultConfig(), pool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-sim:", err)
		return 1
	}

	if len(hops) == 1 {
		fmt.Printf("Fig. 6 analog — average packet latency (clks), topology = %v\n", kinds[0])
		fmt.Printf("%-8s %-12s %-18s\n", "kernel", "latency", "dynamic energy")
		for ki, k := range kernels {
			res := results[ki]
			fmt.Printf("%-8s %-12.2f %-18s\n", k, res.AvgLatencyClks, core.FormatEnergy(res.DynamicEnergyJ))
		}
		return 0
	}
	fmt.Printf("Fig. 6 — average packet latency (clks), express = %v\n", exTech)
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s %-18s\n",
		"kernel", "mesh", "hops=3", "hops=5", "hops=15", "best speedup")
	for ki, k := range kernels {
		lat := make([]float64, len(hops))
		energy := make([]float64, len(hops))
		for i := range hops {
			res := results[ki*len(hops)+i]
			lat[i] = res.AvgLatencyClks
			energy[i] = res.DynamicEnergyJ
		}
		best := lat[0] / min3(lat[1], lat[2], lat[3])
		fmt.Printf("%-8s %-12.2f %-12.2f %-12.2f %-12.2f %.2fx\n",
			k, lat[0], lat[1], lat[2], lat[3], best)
		fmt.Printf("%-8s %-12s %-12s %-12s %-12s (dynamic energy, Table V style)\n",
			"", core.FormatEnergy(energy[0]), core.FormatEnergy(energy[1]),
			core.FormatEnergy(energy[2]), core.FormatEnergy(energy[3]))
	}
	return 0
}

// runEnergySweep prices the pattern sweep with the activity-based energy
// subsystem: on the mesh the express hop ladder competes, on other (or
// multiple) kinds one plain fabric per kind does. Each drained point
// reports measured fJ/bit and the simulated CLEAR; each (topology,
// pattern) scenario gets its latency–energy Pareto frontier.
func runEnergySweep(kinds []topology.Kind, spec string, exTech tech.Technology,
	o core.Options, pool runner.Config) error {
	patterns, err := traffic.ParsePatterns(spec)
	if err != nil {
		return err
	}
	var points []core.DesignPoint
	if len(kinds) == 1 && kinds[0] == topology.Mesh {
		// The grid's analog of the paper's hop ladder (W−1 = ring closure).
		for _, hops := range patternHopLadder(o.Topology.Width) {
			ex := exTech
			if hops == 0 {
				ex = tech.Electronic
			}
			points = append(points, core.DesignPoint{Base: tech.Electronic, Express: ex, Hops: hops})
		}
	} else {
		// Non-mesh kinds take no express channels: plain fabric per kind.
		points = []core.DesignPoint{{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}}
	}
	sc := core.DefaultEnergySweep()
	results, err := core.EnergySweep(context.Background(), kinds, points, patterns, sc, o, pool)
	if err != nil {
		return err
	}
	fmt.Printf("%d×%d measured latency–energy sweep, express = %v, rates = %v\n",
		o.Topology.Width, o.Topology.Height, exTech, sc.Rates)
	fmt.Println("(fJ/bit = measured activity energy + static power integrated over the run;")
	fmt.Println(" '*' marks the latency–energy Pareto frontier of the scenario)")
	fmt.Print(report.EnergyTable(results))
	fmt.Println("\nPareto frontier per (topology, pattern) scenario")
	fmt.Print(report.ParetoTable(results))
	return nil
}

// runFaultSweep degrades the pattern sweep with the fault and variation
// layer: each (topology, design point, device variant, pattern) cell runs
// the fault-rate ladder — seed-derived link-failure schedules, adaptive
// reroute, BER-driven retransmission under thermal drift — and reports
// availability, explicit loss accounting, and CLEAR degradation relative
// to the cell's healthy point.
func runFaultSweep(kinds []topology.Kind, spec, variantSpec string, exTech tech.Technology,
	csvOut bool, o core.Options, pool runner.Config) error {
	patterns, err := traffic.ParsePatterns(spec)
	if err != nil {
		return err
	}
	variants, err := parseVariants(variantSpec)
	if err != nil {
		return err
	}
	var points []core.DesignPoint
	if len(kinds) == 1 && kinds[0] == topology.Mesh {
		for _, hops := range patternHopLadder(o.Topology.Width) {
			ex := exTech
			if hops == 0 {
				ex = tech.Electronic
			}
			points = append(points, core.DesignPoint{Base: tech.Electronic, Express: ex, Hops: hops})
		}
	} else {
		points = []core.DesignPoint{{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}}
	}
	sc := core.DefaultFaultSweep()
	results, err := core.FaultSweep(context.Background(), kinds, points, variants, patterns, sc, o, pool)
	if err != nil {
		return err
	}
	if csvOut {
		return report.WriteFaultSweep(os.Stdout, results)
	}
	fmt.Printf("%d×%d reliability sweep, express = %v, fault rates = %v, %d epochs\n",
		o.Topology.Width, o.Topology.Height, exTech, sc.Rates, sc.Epochs)
	fmt.Println("(avail = fraction of (src,dst) pairs still connected; CLEAR× = CLEAR vs the healthy point)")
	fmt.Print(report.FaultTable(results))
	return nil
}

// runTaskGraphSweep replays the named closed-loop operator graphs on the
// selected fabrics: on the lone mesh kind the express hop ladder competes
// (the Fig. 6 axis, now scored by end-to-end makespan); otherwise one
// plain fabric per kind. Each cell reports the simulated makespan, the
// contention-free critical-path bound, and their ratio (stretch) — the
// congestion-feedback figure of merit.
func runTaskGraphSweep(kinds []topology.Kind, spec string, exTech tech.Technology,
	csvOut bool, o core.Options, pool runner.Config) error {
	gens, err := taskgraph.ParseGenerators(spec)
	if err != nil {
		return err
	}
	sc := core.DefaultTaskGraphSweep()
	var results []core.TaskGraphResult
	if len(kinds) == 1 && kinds[0] == topology.Mesh {
		var points []core.DesignPoint
		for _, hops := range patternHopLadder(o.Topology.Width) {
			ex := exTech
			if hops == 0 {
				ex = tech.Electronic
			}
			points = append(points, core.DesignPoint{Base: tech.Electronic, Express: ex, Hops: hops})
		}
		results, err = core.TaskGraphSweep(context.Background(), points, gens, sc, o, pool)
	} else {
		results, err = core.TopologyTaskGraphSweep(context.Background(), kinds, gens, sc, o, pool)
	}
	if err != nil {
		return err
	}
	if csvOut {
		return report.WriteTaskGraphSweep(os.Stdout, results)
	}
	fmt.Printf("%d×%d closed-loop task-graph sweep, express = %v, payload %d flits, compute %d clks\n",
		o.Topology.Width, o.Topology.Height, exTech, sc.Gen.SizeFlits, sc.Gen.ComputeClks)
	fmt.Println("(bound = contention-free critical path; stretch = makespan/bound, 1.00 = never delayed)")
	fmt.Print(report.TaskGraphTable(results))
	return nil
}

// runTopologySweep sweeps the named registry patterns over offered load on
// every selected topology kind (8×8 grid, plain electronic fabrics) — the
// full topology × pattern × load matrix on the worker pool.
func runTopologySweep(kinds []topology.Kind, spec string, o core.Options, pool runner.Config) error {
	patterns, err := traffic.ParsePatterns(spec)
	if err != nil {
		return err
	}
	sc := core.DefaultPatternSweep()
	results, err := core.TopologyPatternSweep(context.Background(), kinds, patterns, sc, o, pool)
	if err != nil {
		return err
	}
	fmt.Printf("%d×%d topology × pattern saturation sweep, rates = %v\n",
		o.Topology.Width, o.Topology.Height, sc.Rates)
	for _, r := range results {
		fmt.Printf("\n%v / %s\n", r.Kind, r.Pattern)
		for _, p := range r.Curve {
			if p.Saturated {
				fmt.Printf("  rate %-6.3g saturated (failed to drain)\n", p.InjectionRate)
				continue
			}
			fmt.Printf("  rate %-6.3g avg %-8.1f p99 %.1f\n",
				p.InjectionRate, p.AvgLatencyClks, p.P99LatencyClks)
		}
	}
	fmt.Println("\nSaturation summary (latency-knee rule: avg > 3x zero-load, or no drain)")
	fmt.Print(report.SaturationTable(results))
	return nil
}

// runPatternSweep sweeps one registry pattern (or all of them) over
// offered load on an 8×8 grid — the cycle-accurate scale the examples
// use — for the plain electronic mesh and the express hybrids, printing
// each configuration's load-latency curve and its latency-knee
// saturation throughput (see noc.DetectSaturation).
func runPatternSweep(spec string, exTech tech.Technology, o core.Options, pool runner.Config) error {
	patterns, err := traffic.ParsePatterns(spec)
	if err != nil {
		return err
	}
	// The grid's analog of the paper's hop ladder: W−1 closes each row
	// into a ring, the counterpart of hops=15 on the 16-wide mesh.
	patternHops := patternHopLadder(o.Topology.Width)
	points := make([]core.DesignPoint, 0, len(patternHops))
	for _, hops := range patternHops {
		ex := exTech
		if hops == 0 {
			ex = tech.Electronic // plain mesh: express tech is unused
		}
		points = append(points, core.DesignPoint{Base: tech.Electronic, Express: ex, Hops: hops})
	}
	sc := core.DefaultPatternSweep()
	results, err := core.PatternSweep(context.Background(), points, patterns, sc, o, pool)
	if err != nil {
		return err
	}
	fmt.Printf("%d×%d pattern saturation sweep, express = %v, rates = %v\n",
		o.Topology.Width, o.Topology.Height, exTech, sc.Rates)
	for _, r := range results {
		fmt.Printf("\n%v / %s\n", r.Point, r.Pattern)
		for _, p := range r.Curve {
			if p.Saturated {
				fmt.Printf("  rate %-6.3g saturated (failed to drain)\n", p.InjectionRate)
				continue
			}
			fmt.Printf("  rate %-6.3g avg %-8.1f p99 %.1f\n",
				p.InjectionRate, p.AvgLatencyClks, p.P99LatencyClks)
		}
	}
	fmt.Println("\nSaturation summary (latency-knee rule: avg > 3x zero-load, or no drain)")
	fmt.Print(report.SaturationTable(results))
	return nil
}

// runTelemetry is the instrumented variant of the pattern sweep: one run
// per design point × pattern at the telemetry load with sampled packet
// tracing and windowed probes attached, the Chrome trace-event export
// written to traceOut, and the probe census printed as tables and text
// heatmaps (or CSV with -csv). On the mesh the express hop ladder
// competes; other kinds run the plain fabric.
func runTelemetry(kind topology.Kind, spec, traceOut string, probeWindow int64,
	exTech tech.Technology, csvOut bool, o core.Options, pool runner.Config) error {
	patterns, err := traffic.ParsePatterns(spec)
	if err != nil {
		return err
	}
	o = o.WithKind(kind)
	sc := core.DefaultTelemetrySweep()
	if probeWindow > 0 {
		sc.Telemetry.ProbeWindowClks = probeWindow
	}
	var points []core.DesignPoint
	if kind == topology.Mesh {
		for _, hops := range patternHopLadder(o.Topology.Width) {
			ex := exTech
			if hops == 0 {
				ex = tech.Electronic // plain mesh: express tech is unused
			}
			points = append(points, core.DesignPoint{Base: tech.Electronic, Express: ex, Hops: hops})
		}
	} else {
		points = []core.DesignPoint{{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}}
	}
	results, err := core.TelemetrySweep(context.Background(), points, patterns, sc, o, pool)
	if err != nil {
		return err
	}

	f, err := os.Create(traceOut)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, core.ChromeProcesses(results)); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	if csvOut {
		return report.WriteTelemetrySweep(os.Stdout, results)
	}
	fmt.Printf("%d×%d telemetry sweep @ rate %.3g, sample %.3g, window %d clks\n",
		o.Topology.Width, o.Topology.Height, sc.Rate,
		sc.Telemetry.SampleRate, sc.Telemetry.ProbeWindowClks)
	for _, r := range results {
		fmt.Printf("\n=== %s ===\n", r.Label())
		if r.Saturated {
			fmt.Println("saturated (failed to drain); telemetry covers the run up to the cap")
		}
		fmt.Printf("packets %d, sampled %d (%d spans recorded)\n",
			r.Trace.TotalPackets, r.Trace.SampledPackets, len(r.Trace.Spans))
		fmt.Print(report.SpanTable(r.Trace, 15))
		p := r.Probes
		fmt.Printf("\nprobe timeline (%d windows of %d clks):\n", p.Windows(), p.WindowClks())
		fmt.Print(report.ProbeTimeline(p))
		net, _, err := o.NetworkAndTable(r.Point)
		if err != nil {
			return err
		}
		if peak := report.PeakWindow(p); peak >= 0 {
			fmt.Print(report.ProbeOccupancyGrid(p, net, peak))
			fmt.Print(report.ProbeLinkHeatmap(p, net, 12))
		}
	}
	fmt.Printf("\nwrote Chrome trace JSON for %d cells to %s (open in Perfetto or chrome://tracing)\n",
		len(results), traceOut)
	return nil
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// runExternal replays a trace file on the selected topology's hop ladder
// (mesh and hops=3/5/15 hybrids; plain fabric only for non-mesh kinds),
// one concurrent simulation per hop length (the parsed events are only
// read; networks and tables come from the process-wide cache).
func runExternal(path string, exTech tech.Technology, o core.Options, hops []int, pool runner.Config) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %d messages, %d bytes\n", path, len(events), trace.TotalBytes(events))
	type hopResult struct {
		latency  float64
		dynamicJ float64
		staticW  float64
	}
	results, err := runner.Map(context.Background(), len(hops), pool,
		func(_ context.Context, i int) (hopResult, error) {
			point := core.DesignPoint{Base: tech.Electronic, Express: exTech, Hops: hops[i]}
			net, tab, err := o.NetworkAndTable(point)
			if err != nil {
				return hopResult{}, err
			}
			packets, err := trace.Packetize(events, net.NumNodes(), trace.DefaultPacketize())
			if err != nil {
				return hopResult{}, err
			}
			sim, err := noc.New(net, tab, noc.DefaultConfig())
			if err != nil {
				return hopResult{}, err
			}
			if err := sim.InjectAll(packets); err != nil {
				return hopResult{}, err
			}
			stats, err := sim.Run()
			if err != nil {
				return hopResult{}, err
			}
			dynamic, static, err := core.PriceRun(net, stats, o.DSENT)
			if err != nil {
				return hopResult{}, err
			}
			return hopResult{latency: stats.AvgPacketLatencyClks, dynamicJ: dynamic, staticW: static}, nil
		})
	if err != nil {
		return err
	}
	for i, h := range hops {
		r := results[i]
		fmt.Printf("hops=%-3d latency %-10.2f dynamic %-12s static %.3f W\n",
			h, r.latency, core.FormatEnergy(r.dynamicJ), r.staticW)
	}
	return nil
}
