// Command hyppi-trace synthesizes NAS Parallel Benchmark communication
// traces (FT, CG, MG, LU — 256 ranks, Class A scaled) in the repository's
// text trace format, standing in for the paper's MPICL captures from a Cray
// XE6m.
//
// Usage:
//
//	hyppi-trace -kernel FT [-scale 0.0625] [-iterations 0] [-o file]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/npb"
	"repro/internal/trace"
)

func main() {
	kernel := flag.String("kernel", "FT", "benchmark kernel: FT, CG, MG or LU")
	scale := flag.Float64("scale", 1.0/16, "message volume scale relative to Class A")
	iters := flag.Int("iterations", 0, "iteration count (0 = kernel default)")
	factor := flag.Float64("factor", 8, "injection pacing factor (≈1/injection rate)")
	seed := flag.Int64("seed", 1, "send-order shuffle seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	k, err := npb.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-trace:", err)
		os.Exit(1)
	}
	cfg := npb.DefaultConfig(k)
	cfg.Scale = *scale
	cfg.Iterations = *iters
	cfg.InjectionFactor = *factor
	cfg.Seed = *seed

	events, err := npb.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-trace:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, events); err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hyppi-trace: %s — %d messages, %d bytes total\n",
		k, len(events), trace.TotalBytes(events))
}
