// Command hyppi-explore runs the paper's Section III-B design-space
// exploration: every hybrid NoC of Fig. 5 (base mesh technology × express
// link technology × hop length) evaluated with the CLEAR figure of merit,
// plus the Table III (capability C, utilization growth R) and Table IV
// (static power) datasets.
//
// Usage:
//
//	hyppi-explore [-rate 0.1] [-seed 1] [-policy monotone|shortest] [-workers 0]
//	hyppi-explore -patterns tornado,transpose
//	hyppi-explore -patterns all
//	hyppi-explore -topology torus,fbfly
//	hyppi-explore -topology all -patterns all
//	hyppi-explore -energy [-patterns uniform,tornado]
//	hyppi-explore -patterns uniform -grid 64x64
//	hyppi-explore -cpuprofile cpu.out -memprofile mem.out
//	hyppi-explore -blockprofile block.out -mutexprofile mutex.out
//
// With -patterns, the analytic exploration is followed by a
// cycle-accurate synthetic-pattern saturation sweep (the -grid geometry,
// default 8×8; larger grids stay interactive because routing, traffic and
// the kernel are all O(n) in nodes) comparing the plain electronic mesh
// against the headline E + HyPPI express@3 hybrid for the named registry
// patterns, reporting each pattern's latency-knee saturation throughput.
//
// With -energy, the analytic exploration is followed by a measured
// latency–energy sweep (8×8 grid, plain electronic mesh versus electronic
// and HyPPI express hybrids) over the -patterns list (default
// uniform,tornado): every drained point is priced by the activity-based
// energy subsystem — measured fJ/bit and simulated CLEAR — and each
// pattern's latency–energy Pareto frontier is printed. Combined with
// -topology, one plain electronic fabric per selected kind competes
// instead of the express hybrids. The analytic path *estimates* power
// from injection rates; -energy *measures* it from simulator activity
// counters.
//
// With -topology, the mesh exploration is followed by a cross-topology
// comparison of the named registry kinds (see internal/topology): an
// analytic table of plain electronic and HyPPI fabrics per kind, and —
// when -patterns is also given — the full topology × pattern × load
// saturation matrix on the worker pool instead of the mesh-only sweep.
//
// Design points are evaluated concurrently on a bounded worker pool
// (-workers 0 sizes it to GOMAXPROCS); results are identical to a serial
// sweep whatever the pool size.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Flag usage strings are package level so the usage test can assert every
// registered pattern and kind name is discoverable from -h.
var (
	patternUsage = "comma-separated synthetic patterns to saturation-sweep (" +
		strings.Join(traffic.Names(), ", ") + "), or \"all\""
	topologyUsage = "comma-separated topology kinds to cross-compare (" +
		strings.Join(topology.Names(), ", ") + "), or \"all\""
)

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile flushing survives error exits.
func run() int {
	rate := flag.Float64("rate", 0.1, "maximum per-node injection rate (flits/cycle)")
	seed := flag.Int64("seed", 1, "traffic seed")
	policy := flag.String("policy", "monotone", "routing policy: monotone or shortest")
	patterns := flag.String("patterns", "", patternUsage)
	topoFlag := flag.String("topology", "", topologyUsage)
	grid := flag.String("grid", "8x8", "cycle-accurate sweep router grid as WxH (e.g. 64x64)")
	energyFlag := flag.Bool("energy", false,
		"follow the exploration with a measured latency–energy sweep "+
			"(activity-based fJ/bit, simulated CLEAR, Pareto fronts)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.StartAll(prof.Config{
		CPUPath: *cpuprofile, MemPath: *memprofile,
		BlockPath: *blockprofile, MutexPath: *mutexprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
		return 1
	}
	defer stopProf()

	o := core.DefaultOptions()
	o.Traffic.MaxInjectionRate = *rate
	o.Traffic.Seed = *seed
	simW, simH, err := topology.ParseGrid(*grid)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
		return 1
	}
	switch *policy {
	case "monotone":
		o.Policy = routing.MonotoneExpress
	case "shortest":
		o.Policy = routing.ShortestHops
	default:
		fmt.Fprintf(os.Stderr, "hyppi-explore: unknown policy %q\n", *policy)
		return 1
	}

	points := core.DefaultDesignSpace()
	results, err := core.ExploreContext(context.Background(), points, o, runner.Config{
		Workers: *workers,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rexploring %d/%d design points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
		return 1
	}

	fmt.Println("Table III — capability C and utilization growth R (fixed per topology)")
	fmt.Printf("%-10s %-12s %-8s\n", "topology", "C (Gb/s)", "R")
	seen := map[int]bool{}
	for _, r := range results {
		if r.Point.Base != tech.Electronic || seen[r.Point.Hops] {
			continue
		}
		seen[r.Point.Hops] = true
		name := "plain mesh"
		if r.Point.Hops > 0 {
			name = fmt.Sprintf("hops=%d", r.Point.Hops)
		}
		fmt.Printf("%-10s %-12.2f %-8.3f\n", name, r.CapabilityGbpsPerNode, r.R)
	}

	fmt.Println("\nTable IV — static power, electronic base mesh + express links")
	fmt.Printf("%-12s %-10s %-10s %-10s\n", "express", "3 hops", "5 hops", "15 hops")
	for _, e := range []tech.Technology{tech.Electronic, tech.Photonic, tech.HyPPI} {
		row := map[int]float64{}
		for _, r := range results {
			if r.Point.Base == tech.Electronic && r.Point.Express == e && r.Point.Hops > 0 {
				row[r.Point.Hops] = r.StaticW
			}
		}
		fmt.Printf("%-12s %-10.3f %-10.3f %-10.3f\n", e, row[3], row[5], row[15])
	}
	for _, r := range results {
		if r.Point.Base == tech.Electronic && r.Point.Hops == 0 {
			fmt.Printf("base electronic mesh: %.3f W\n", r.StaticW)
			break
		}
	}

	fmt.Println("\nFig. 5 — system CLEAR / latency / power / area per design point")
	fmt.Printf("%-42s %-10s %-9s %-9s %-10s %-8s\n",
		"design point", "CLEAR", "lat(clk)", "power(W)", "area", "vs plain")
	ratios := core.CLEARRatioVsPlain(results)
	for _, r := range results {
		fmt.Printf("%-42s %-10.4f %-9.1f %-9.3f %-10s %-8.2f\n",
			r.Point, r.CLEAR, r.AvgLatencyClks, r.PowerW,
			core.FormatArea(r.AreaM2), ratios[r.Point])
	}

	// Headline.
	var plain, headline float64
	for _, r := range results {
		if r.Point.Base == tech.Electronic && r.Point.Hops == 0 {
			plain = r.CLEAR
		}
		if r.Point.Base == tech.Electronic && r.Point.Express == tech.HyPPI && r.Point.Hops == 3 {
			headline = r.CLEAR
		}
	}
	if plain > 0 {
		fmt.Printf("\nHeadline: E-mesh + HyPPI express @3 hops improves CLEAR by %.2fx (paper: up to 1.8x)\n",
			headline/plain)
	}

	if *topoFlag != "" {
		kinds, err := topology.ParseKinds(*topoFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
			return 1
		}
		if err := runKindComparison(kinds, o, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
			return 1
		}
		if *patterns != "" {
			if err := runTopologyPatternSweep(kinds, *patterns, o, simW, simH, *workers); err != nil {
				fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
				return 1
			}
		}
		if *energyFlag {
			if err := runEnergySweep(kinds, *patterns, o, simW, simH, *workers); err != nil {
				fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
				return 1
			}
		}
		return 0
	}

	if *patterns != "" && !*energyFlag {
		if err := runPatternSweep(*patterns, o, simW, simH, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
			return 1
		}
	}
	if *energyFlag {
		if err := runEnergySweep(nil, *patterns, o, simW, simH, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-explore:", err)
			return 1
		}
	}
	return 0
}

// runEnergySweep follows the analytic exploration with the measured
// latency–energy matrix on an 8×8 grid, priced per drained point by the
// activity-based energy subsystem with the per-pattern Pareto frontier.
// On the mesh (nil or {mesh} kinds) the plain electronic mesh competes
// against the electronic and HyPPI express@3 hybrids; with explicit
// non-mesh kinds one plain electronic fabric per kind competes instead
// (non-mesh fabrics take no express channels).
func runEnergySweep(kinds []topology.Kind, spec string, o core.Options, simW, simH, workers int) error {
	if spec == "" {
		spec = "uniform,tornado"
	}
	pats, err := traffic.ParsePatterns(spec)
	if err != nil {
		return err
	}
	o.Topology.Width, o.Topology.Height = simW, simH
	meshOnly := len(kinds) == 0 || (len(kinds) == 1 && kinds[0] == topology.Mesh)
	if len(kinds) == 0 {
		kinds = []topology.Kind{topology.Mesh}
	}
	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
	}
	if meshOnly {
		points = append(points,
			core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 3},
			core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3})
	}
	sc := core.DefaultEnergySweep()
	results, err := core.EnergySweep(context.Background(), kinds,
		points, pats, sc, o, runner.Config{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("\nMeasured latency–energy sweep (%d×%d, cycle-accurate, rates %v)\n", simW, simH, sc.Rates)
	fmt.Println("fJ/bit = measured activity energy + static power integrated over the run;")
	fmt.Println("'*' marks the per-pattern latency–energy Pareto frontier")
	fmt.Print(report.EnergyTable(results))
	fmt.Println("\nPareto frontier per pattern")
	fmt.Print(report.ParetoTable(results))
	return nil
}

// runKindComparison prints the cross-topology analytic table: every
// selected kind built plain (no express) in electronic and HyPPI base
// technologies at the Options' grid, evaluated on the worker pool.
func runKindComparison(kinds []topology.Kind, o core.Options, workers int) error {
	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.HyPPI, Express: tech.HyPPI, Hops: 0},
	}
	results, err := core.ExploreKinds(context.Background(), kinds, points, o,
		runner.Config{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("\nCross-topology comparison (%dx%d, plain fabrics)\n",
		o.Topology.Width, o.Topology.Height)
	fmt.Print(report.KindComparisonTable(results))
	return nil
}

// runTopologyPatternSweep runs the full topology × pattern × load matrix
// with the cycle-accurate simulator on an 8×8 grid, one plain electronic
// fabric per kind.
func runTopologyPatternSweep(kinds []topology.Kind, spec string, o core.Options, simW, simH, workers int) error {
	pats, err := traffic.ParsePatterns(spec)
	if err != nil {
		return err
	}
	o.Topology.Width, o.Topology.Height = simW, simH
	sc := core.DefaultPatternSweep()
	results, err := core.TopologyPatternSweep(context.Background(), kinds, pats, sc, o,
		runner.Config{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("\nTopology × pattern saturation sweep (%d×%d, cycle-accurate, rates %v)\n", simW, simH, sc.Rates)
	fmt.Println("latency-knee rule: saturation = lowest rate with avg > 3x zero-load, or no drain")
	fmt.Print(report.SaturationTable(results))
	return nil
}

// runPatternSweep follows the analytic exploration with a cycle-accurate
// saturation sweep of the named registry patterns on an 8×8 grid,
// comparing the plain electronic mesh against the paper's headline
// E + HyPPI express@3 hybrid.
func runPatternSweep(spec string, o core.Options, simW, simH, workers int) error {
	pats, err := traffic.ParsePatterns(spec)
	if err != nil {
		return err
	}
	o.Topology.Width, o.Topology.Height = simW, simH
	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	sc := core.DefaultPatternSweep()
	results, err := core.PatternSweep(context.Background(), points, pats, sc, o,
		runner.Config{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("\nSynthetic-pattern saturation sweep (%d×%d, cycle-accurate, rates %v)\n", simW, simH, sc.Rates)
	fmt.Println("latency-knee rule: saturation = lowest rate with avg > 3x zero-load, or no drain")
	fmt.Print(report.SaturationTable(results))
	return nil
}
