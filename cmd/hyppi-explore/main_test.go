package main

import (
	"strings"
	"testing"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestUsageListsRegisteredNames: adding a pattern or topology kind to the
// registries must surface it in -h, not leave the usage text stale.
func TestUsageListsRegisteredNames(t *testing.T) {
	for _, name := range traffic.Names() {
		if !strings.Contains(patternUsage, name) {
			t.Errorf("-patterns usage misses registered pattern %q: %s", name, patternUsage)
		}
	}
	for _, name := range topology.Names() {
		if !strings.Contains(topologyUsage, string(name)) {
			t.Errorf("-topology usage misses registered kind %q: %s", name, topologyUsage)
		}
	}
}
