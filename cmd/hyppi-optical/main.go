// Command hyppi-optical regenerates the paper's Section V projections:
// Table VI (the WDM photonic router vs the plasmonic-switch HyPPI router)
// and the Fig. 8 radar comparison of an electronic mesh, an all-photonic
// NoC and an all-HyPPI NoC on latency, energy per bit and area.
//
// Usage:
//
//	hyppi-optical [-rate 0.1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/units"
)

func main() {
	rate := flag.Float64("rate", 0.1, "maximum per-node injection rate")
	seed := flag.Int64("seed", 1, "traffic seed")
	flag.Parse()

	o := core.DefaultOptions()
	o.Traffic.MaxInjectionRate = *rate
	o.Traffic.Seed = *seed

	fmt.Println("Table VI — WDM-based photonic vs HyPPI optical routers")
	fmt.Printf("%-12s %-18s %-16s %-12s\n", "technology", "control (fJ/bit)", "loss range (dB)", "area (µm²)")
	for _, rm := range []optical.RouterModel{optical.PhotonicRouter(), optical.HyPPIRouter()} {
		lo, hi := rm.LossRange()
		fmt.Printf("%-12v %-18.2f %.2f–%-10.2f %-12.0f\n", rm.Tech, rm.ControlFJPerBit, lo, hi, rm.AreaUM2)
	}

	radar, err := core.AllOpticalRadar(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-optical:", err)
		os.Exit(1)
	}

	fmt.Println("\nFig. 8 — all-optical radar (smaller triangle is better)")
	fmt.Printf("%-14s %-16s %-14s %-12s %-14s\n",
		"corner", "energy/bit", "latency (clk)", "area", "mean loss")
	rows := []struct {
		name string
		p    optical.Projection
	}{
		{"Electronic", radar.Electronic},
		{"All-Photonic", radar.Photonic},
		{"All-HyPPI", radar.HyPPI},
	}
	for _, r := range rows {
		loss := "-"
		if r.p.MeanPathLossDB > 0 {
			loss = fmt.Sprintf("%.1f dB (max %.1f)", r.p.MeanPathLossDB, r.p.WorstPathLossDB)
		}
		fmt.Printf("%-14s %-16s %-14.1f %-12s %-14s\n",
			r.name, units.FormatSI(r.p.EnergyPerBitJ, "J/bit"),
			r.p.LatencyClks, core.FormatArea(r.p.AreaM2), loss)
	}

	fmt.Printf("\nEnergy ratio electronic/all-HyPPI: %.0fx (paper: ~255x)\n",
		radar.Electronic.EnergyPerBitJ/radar.HyPPI.EnergyPerBitJ)
	fmt.Printf("Area ratio all-photonic/all-HyPPI: %.0fx (paper: ~103x)\n",
		radar.Photonic.AreaM2/radar.HyPPI.AreaM2)
	fmt.Printf("Area ratio electronic/all-HyPPI:   %.0fx (paper: ~18x)\n",
		radar.Electronic.AreaM2/radar.HyPPI.AreaM2)
	if optical.TriangleBetter(radar.HyPPI, radar.Electronic) && optical.TriangleBetter(radar.HyPPI, radar.Photonic) {
		fmt.Println("All-HyPPI encloses the smallest radar triangle, as in the paper.")
	}
}
