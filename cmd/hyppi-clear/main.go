// Command hyppi-clear regenerates Fig. 3 of the paper: the link-level CLEAR
// figure of merit versus link length for Electronic, Photonic, Plasmonic
// and HyPPI point-to-point links, printed as a table (optionally CSV).
//
// Usage:
//
//	hyppi-clear [-csv] [-points N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/link"
	"repro/internal/tech"
	"repro/internal/units"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	points := flag.Int("points", 13, "number of length samples (log spaced 1 µm – 10 cm)")
	flag.Parse()

	lengths := link.LogSpace(1*units.Micrometre, 10*units.Centimetre, *points)
	pts, err := link.Sweep(lengths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-clear:", err)
		os.Exit(1)
	}

	if *csv {
		fmt.Println("length_m,electronic,photonic,plasmonic,hyppi,best")
		for _, p := range pts {
			fmt.Printf("%.6g,%.6g,%.6g,%.6g,%.6g,%s\n",
				p.LengthM,
				p.CLEAR[tech.Electronic], p.CLEAR[tech.Photonic],
				p.CLEAR[tech.Plasmonic], p.CLEAR[tech.HyPPI],
				p.Best())
		}
		return
	}

	fmt.Println("Fig. 3 — link-level CLEAR vs length (higher is better)")
	fmt.Printf("%-12s %-12s %-12s %-12s %-12s %s\n",
		"length", "Electronic", "Photonic", "Plasmonic", "HyPPI", "best")
	for _, p := range pts {
		fmt.Printf("%-12s %-12.3g %-12.3g %-12.3g %-12.3g %s\n",
			units.FormatSI(p.LengthM, "m"),
			p.CLEAR[tech.Electronic], p.CLEAR[tech.Photonic],
			p.CLEAR[tech.Plasmonic], p.CLEAR[tech.HyPPI],
			p.Best())
	}
	fmt.Println("\nPaper shape: electronics wins short runs, HyPPI the mm–cm range,")
	fmt.Println("photonics beyond ~20 mm; plasmonics collapses after a few µm.")
}
