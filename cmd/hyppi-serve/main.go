// Command hyppi-serve exposes the simulator as a long-lived estimation
// service: clients submit {topology, design point, pattern|kernel, load,
// want} queries as JSON lines and get back deterministic latency / CLEAR /
// energy estimates. The engine (internal/serve) answers from a keyed
// result cache with single-flight dedup of identical in-flight queries,
// coalesces queued distinct queries into micro-batches on the pooled
// runner, and rejects with queue_full (HTTP 429) beyond its queue depth.
//
// Usage:
//
//	echo '{"pattern":"uniform","load":0.05}' | hyppi-serve
//	hyppi-serve -http :8080 &
//	curl -d '{"pattern":"tornado","load":0.1,"want":"clear"}' localhost:8080/query
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//	hyppi-serve -http :8080 -debug-addr localhost:6060 &
//	hyppi-serve -selftest -queries 120 -clients 8 -min-qps 50 -min-hit 0.5
//
// Without -http, hyppi-serve speaks the JSON-lines protocol on
// stdin/stdout (the BookSim2-style cosimulation interface): one request
// per line, one response line per request, in request order. With -http
// it serves POST /query, GET /stats (counters as JSON, including uptime
// and queue depth), GET /metrics (the same census in Prometheus text
// format 0.0.4, plus a service-latency histogram) and GET /healthz, with
// read/write timeouts and a 1 MiB request-body bound. -debug-addr starts
// an extra net/http/pprof listener on a separate (ideally loopback)
// address for live profiling.
//
// SIGINT or SIGTERM drains gracefully: new queries are refused with 503
// draining (and /healthz stops reporting ok, so load balancers shed
// traffic) while queries already accepted run to completion, bounded by
// -drain-timeout. A second signal aborts immediately.
//
// -selftest replays the built-in mixed workload through an in-process
// engine and reports sustained queries/sec and cache hit rate, failing
// when either lands under its -min bound — the serve-smoke CI gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/loadtest"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Flag usage strings are package level so the usage test can assert every
// registered pattern and kind name is discoverable from -h.
var (
	patternUsage = "queries name a synthetic pattern (" +
		strings.Join(traffic.Names(), ", ") + ") or an NPB kernel trace"
	topologyUsage = "queries pick a topology kind: " +
		strings.Join(topology.Names(), ", ") + " (default mesh)"
)

func main() {
	os.Exit(run())
}

func run() int {
	httpAddr := flag.String("http", "", "serve HTTP on this address instead of stdio (e.g. :8080)")
	debugAddr := flag.String("debug-addr", "",
		"also serve net/http/pprof on this address (e.g. localhost:6060); "+
			"keep it off public interfaces")
	workers := flag.Int("workers", 0, "evaluation pool size per batch (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", serve.DefaultQueueDepth, "pending-evaluation queue depth (backpressure bound)")
	maxBatch := flag.Int("batch", serve.DefaultMaxBatch, "max queries coalesced into one evaluation batch")
	maxNodes := flag.Int("max-nodes", serve.DefaultMaxNodes, "largest width*height a query may ask for")
	inFlight := flag.Int("in-flight", serve.DefaultMaxInFlight, "stdio mode: max request lines answered concurrently")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"graceful-shutdown bound: how long in-flight queries may finish after SIGINT/SIGTERM")
	selftest := flag.Bool("selftest", false, "replay the built-in workload and report q/s + hit rate")
	queries := flag.Int("queries", 120, "selftest: total queries")
	clients := flag.Int("clients", 8, "selftest: concurrent clients")
	targetQPS := flag.Float64("qps", 0, "selftest: offered rate (0 = as fast as possible)")
	minQPS := flag.Float64("min-qps", 0, "selftest: fail under this sustained rate")
	minHit := flag.Float64("min-hit", 0, "selftest: fail under this cache hit rate")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: hyppi-serve [flags]\n\nJSON-lines simulation service; %s;\n%s.\n\n",
			patternUsage, topologyUsage)
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := serve.DefaultEngineConfig()
	cfg.Workers = *workers
	cfg.QueueDepth = *queueDepth
	cfg.MaxBatch = *maxBatch
	cfg.MaxNodes = *maxNodes
	engine := serve.NewEngine(cfg)
	defer engine.Close()

	// The debug listener is opt-in and separate from the service address,
	// so profiling endpoints never ride on the public port. Its own mux
	// carries only the pprof handlers.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-serve:", err)
			return 1
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		fmt.Fprintf(os.Stderr, "hyppi-serve: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go dsrv.Serve(dln)
		defer dsrv.Close()
	}

	// One signal starts the graceful drain; stop() restores default
	// delivery, so a second SIGINT/SIGTERM kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *selftest:
		rep, err := loadtest.Run(ctx, engine, loadtest.Config{
			Queries: *queries, Clients: *clients, TargetQPS: *targetQPS,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-serve:", err)
			return 1
		}
		fmt.Println(rep)
		if rep.Failed > 0 {
			fmt.Fprintf(os.Stderr, "hyppi-serve: selftest: %d queries failed\n", rep.Failed)
			return 1
		}
		if *minQPS > 0 && rep.QPS < *minQPS {
			fmt.Fprintf(os.Stderr, "hyppi-serve: selftest: %.1f q/s under the %.1f q/s floor\n", rep.QPS, *minQPS)
			return 1
		}
		if *minHit > 0 && rep.HitRate < *minHit {
			fmt.Fprintf(os.Stderr, "hyppi-serve: selftest: hit rate %.2f under the %.2f floor\n", rep.HitRate, *minHit)
			return 1
		}
		return 0

	case *httpAddr != "":
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-serve:", err)
			return 1
		}
		// Slow-client hardening: a body must arrive promptly, but the
		// write timeout also covers the evaluation itself, so it stays an
		// order of magnitude above the worst cold query the size cap
		// admits. Idle keep-alive connections are reaped independently.
		srv := &http.Server{
			Handler:           engine.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      5 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		fmt.Fprintf(os.Stderr, "hyppi-serve: listening on http://%s (POST /query, GET /stats, GET /metrics, GET /healthz)\n",
			ln.Addr())
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		select {
		case err := <-errc:
			fmt.Fprintln(os.Stderr, "hyppi-serve:", err)
			return 1
		case <-ctx.Done():
		}
		// Drain: refuse new queries (503), let accepted ones finish,
		// bounded by -drain-timeout.
		engine.StartDraining()
		fmt.Fprintf(os.Stderr, "hyppi-serve: signal received, draining (bound %v)\n", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-serve: drain incomplete:", err)
			return 1
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "hyppi-serve:", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "hyppi-serve: drained")
		return 0

	default:
		err := engine.ServeLines(ctx, os.Stdin, os.Stdout, *inFlight)
		if errors.Is(err, context.Canceled) {
			// Signal-driven exit: responses already accepted were written
			// in order before ServeLines returned.
			fmt.Fprintln(os.Stderr, "hyppi-serve: signal received, drained")
			return 0
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyppi-serve:", err)
			return 1
		}
		return 0
	}
}
