// Command hyppi-all runs the complete reproduction and writes one CSV per
// paper table/figure into a results directory — the single command that
// regenerates the paper's evaluation section.
//
// Usage:
//
//	hyppi-all [-out results] [-scale 0.0625] [-skip-traces]
//
// The trace simulations (Fig. 6 / Table V) dominate the runtime (a few
// minutes at the default scale); -skip-traces omits them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/report"
	"repro/internal/tech"
)

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Float64("scale", 1.0/16, "NPB volume scale for trace runs")
	skipTraces := flag.Bool("skip-traces", false, "skip the cycle-accurate trace simulations")
	flag.Parse()

	if err := run(*out, *scale, *skipTraces); err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-all:", err)
		os.Exit(1)
	}
}

func run(dir string, scale float64, skipTraces bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	o := core.DefaultOptions()

	write := func(name string, fill func(*os.File) error) error {
		path := filepath.Join(dir, name)
		start := time.Now()
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Write-through sanity check.
		rf, err := os.Open(path)
		if err != nil {
			return err
		}
		defer rf.Close()
		rows, err := report.Check(rf)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-24s %4d rows  %v\n", name, rows, time.Since(start).Round(time.Millisecond))
		return nil
	}

	// Fig. 3.
	if err := write("fig3_link_clear.csv", func(f *os.File) error {
		pts, err := core.LinkSweep()
		if err != nil {
			return err
		}
		return report.WriteLinkSweep(f, pts)
	}); err != nil {
		return err
	}

	// Fig. 5 + Tables III/IV.
	if err := write("fig5_design_space.csv", func(f *os.File) error {
		res, err := core.Explore(core.DefaultDesignSpace(), o)
		if err != nil {
			return err
		}
		return report.WriteExploration(f, res)
	}); err != nil {
		return err
	}

	// Fig. 8 + Table VI.
	if err := write("fig8_all_optical.csv", func(f *os.File) error {
		radar, err := core.AllOpticalRadar(o)
		if err != nil {
			return err
		}
		return report.WriteRadar(f, radar)
	}); err != nil {
		return err
	}

	if skipTraces {
		return nil
	}

	// Fig. 6 + Table V: four kernels × (plain + three hop lengths) ×
	// three express technologies for FT (Table V), HyPPI for the rest.
	return write("fig6_table5_traces.csv", func(f *os.File) error {
		var results []core.TraceResult
		runOne := func(k npb.Kernel, express tech.Technology, hops int) error {
			cfg := npb.DefaultConfig(k)
			cfg.Scale = scale
			res, err := core.RunTraceExperiment(cfg,
				core.DesignPoint{Base: tech.Electronic, Express: express, Hops: hops},
				o, noc.DefaultConfig())
			if err != nil {
				return fmt.Errorf("%v/%v@%d: %w", k, express, hops, err)
			}
			results = append(results, res)
			return nil
		}
		for _, k := range npb.Kernels {
			if err := runOne(k, tech.HyPPI, 0); err != nil {
				return err
			}
			for _, hops := range []int{3, 5, 15} {
				if err := runOne(k, tech.HyPPI, hops); err != nil {
					return err
				}
			}
		}
		for _, express := range []tech.Technology{tech.Electronic, tech.Photonic} {
			for _, hops := range []int{3, 5, 15} {
				if err := runOne(npb.FT, express, hops); err != nil {
					return err
				}
			}
		}
		return report.WriteTraceResults(f, results)
	})
}
