// Command hyppi-all runs the complete reproduction and writes one CSV per
// paper table/figure into a results directory — the single command that
// regenerates the paper's evaluation section.
//
// Usage:
//
//	hyppi-all [-out results] [-scale 0.0625] [-grid 16x16] [-skip-traces] [-workers 0]
//
// The trace simulations (Fig. 6 / Table V) dominate the runtime (a few
// minutes at the default scale); -skip-traces omits them. -grid overrides
// the paper's 16×16 mesh for the analytic experiments (the NPB traces stay
// on the rank grid the kernels were synthesized for); routing and traffic
// are O(n) in nodes, so 64×64 and beyond stay interactive. Independent
// experiments run concurrently on a bounded worker pool (-workers 0 sizes
// it to GOMAXPROCS) with results identical to a serial run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
)

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Float64("scale", 1.0/16, "NPB volume scale for trace runs")
	grid := flag.String("grid", "16x16", "analytic-experiment router grid as WxH (e.g. 64x64)")
	skipTraces := flag.Bool("skip-traces", false, "skip the cycle-accurate trace simulations")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*out, *scale, *grid, *skipTraces, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "hyppi-all:", err)
		os.Exit(1)
	}
}

func run(dir string, scale float64, grid string, skipTraces bool, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	o := core.DefaultOptions()
	w, h, err := topology.ParseGrid(grid)
	if err != nil {
		return err
	}
	o.Topology.Width, o.Topology.Height = w, h
	pool := runner.Config{Workers: workers, Progress: func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rtraces %d/%d", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}}

	write := func(name string, fill func(*os.File) error) error {
		path := filepath.Join(dir, name)
		start := time.Now()
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Write-through sanity check.
		rf, err := os.Open(path)
		if err != nil {
			return err
		}
		defer rf.Close()
		rows, err := report.Check(rf)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-24s %4d rows  %v\n", name, rows, time.Since(start).Round(time.Millisecond))
		return nil
	}

	// Fig. 3.
	if err := write("fig3_link_clear.csv", func(f *os.File) error {
		pts, err := core.LinkSweep()
		if err != nil {
			return err
		}
		return report.WriteLinkSweep(f, pts)
	}); err != nil {
		return err
	}

	// Fig. 5 + Tables III/IV.
	if err := write("fig5_design_space.csv", func(f *os.File) error {
		res, err := core.ExploreContext(context.Background(), core.DefaultDesignSpace(), o,
			runner.Config{Workers: workers})
		if err != nil {
			return err
		}
		return report.WriteExploration(f, res)
	}); err != nil {
		return err
	}

	// Fig. 8 + Table VI.
	if err := write("fig8_all_optical.csv", func(f *os.File) error {
		radar, err := core.AllOpticalRadar(o)
		if err != nil {
			return err
		}
		return report.WriteRadar(f, radar)
	}); err != nil {
		return err
	}

	if skipTraces {
		return nil
	}

	// Fig. 6 + Table V: four kernels × (plain + three hop lengths) ×
	// three express technologies for FT (Table V), HyPPI for the rest —
	// one batch of independent jobs for the worker pool, in the same
	// order the historical serial loops produced.
	return write("fig6_table5_traces.csv", func(f *os.File) error {
		var jobs []core.TraceJob
		addJob := func(k npb.Kernel, express tech.Technology, hops int) {
			cfg := npb.DefaultConfig(k)
			cfg.Scale = scale
			jobs = append(jobs, core.TraceJob{Kernel: cfg, Point: core.DesignPoint{
				Base: tech.Electronic, Express: express, Hops: hops}})
		}
		for _, k := range npb.Kernels {
			addJob(k, tech.HyPPI, 0)
			for _, hops := range []int{3, 5, 15} {
				addJob(k, tech.HyPPI, hops)
			}
		}
		for _, express := range []tech.Technology{tech.Electronic, tech.Photonic} {
			for _, hops := range []int{3, 5, 15} {
				addJob(npb.FT, express, hops)
			}
		}
		// Traces run on the paper's 16×16 rank grid whatever -grid says:
		// the kernels were synthesized for that many ranks, and Packetize
		// rejects traces addressing more nodes than the network has.
		oTrace := o
		oTrace.Topology.Width, oTrace.Topology.Height = 16, 16
		results, err := core.RunTraceExperiments(context.Background(), jobs, oTrace, noc.DefaultConfig(), pool)
		if err != nil {
			return err
		}
		return report.WriteTraceResults(f, results)
	})
}
