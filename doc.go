// Package repro reproduces "HyPPI NoC: Bringing Hybrid Plasmonics to an
// Opto-Electronic Network-on-Chip" (Narayana, Sun, Mehrabian, Sorger,
// El-Ghazawi — ICPP 2017, arXiv:1703.04646) as a self-contained Go library.
//
// The root module only hosts the benchmark harness (bench_test.go), which
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/:
//
//	internal/tech      Table I device catalogue + technology enumeration
//	internal/link      bare link models and link-level CLEAR (Fig. 3)
//	internal/dsent     modified-DSENT component cost models (11 nm)
//	internal/topology  16×16 mesh and express-link topologies (Fig. 2)
//	internal/routing   dimension-ordered express routing + BFS tables
//	internal/traffic   Soteriou synthetic statistical traffic
//	internal/analytic  Section III-B system CLEAR evaluation (Fig. 5)
//	internal/noc       cycle-accurate VC-router simulator (BookSim role)
//	internal/trace     trace format + paper-style packetization
//	internal/npb       synthetic NAS Parallel Benchmark traces
//	internal/optical   all-optical routers and Fig. 8 projections
//	internal/runner    bounded worker pool for parallel experiment batches
//	internal/core      experiment façade tying it all together
//
// Experiment batches (the Fig. 5 design space, load-latency sweeps, NPB
// trace runs) execute on internal/runner's worker pool: results are
// collected in job order and every job is a pure function of its index, so
// sweeps are bit-identical to a serial run at any pool size. See the
// runner package documentation for the determinism contract.
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
