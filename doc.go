// Package repro reproduces "HyPPI NoC: Bringing Hybrid Plasmonics to an
// Opto-Electronic Network-on-Chip" (Narayana, Sun, Mehrabian, Sorger,
// El-Ghazawi — ICPP 2017, arXiv:1703.04646) as a self-contained Go library.
//
// The root module only hosts the benchmark harness (bench_test.go), which
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/:
//
//	internal/tech      Table I device catalogue + technology enumeration
//	internal/link      bare link models and link-level CLEAR (Fig. 3)
//	internal/dsent     modified-DSENT component cost models (11 nm)
//	internal/topology  topology-kind registry: mesh/express (Fig. 2), torus, cmesh, fbfly
//	internal/routing   dimension-ordered express routing + BFS tables
//	internal/traffic   Soteriou statistical traffic + synthetic pattern registry
//	internal/analytic  Section III-B system CLEAR evaluation (Fig. 5)
//	internal/noc       cycle-accurate VC-router simulator (BookSim role)
//	internal/trace     trace format + paper-style packetization
//	internal/npb       synthetic NAS Parallel Benchmark traces
//	internal/optical   all-optical routers and Fig. 8 projections
//	internal/runner    bounded worker pool for parallel experiment batches
//	internal/core      experiment façade tying it all together
//
// Experiment batches (the Fig. 5 design space, load-latency sweeps,
// pattern saturation sweeps, NPB trace runs) execute on internal/runner's
// worker pool: results are collected in job order and every job is a pure
// function of its index, so sweeps are bit-identical to a serial run at
// any pool size. See the runner package documentation for the determinism
// contract.
//
// The simulator is an event-driven active-set kernel (per-cycle cost
// scales with live flits, not network size) with reusable state:
// noc.Sim.Reset and noc.SimPool recycle simulators across sweep points,
// and internal/core memoizes topologies, routing tables and traffic
// matrices process-wide. See the noc package documentation and the
// README's Performance section.
//
// Beyond the paper's workloads, internal/traffic carries a registry of
// named synthetic patterns (uniform, transpose, bitcomp, bitrev, shuffle,
// tornado, neighbor, hotspot); noc.PatternLoadLatencyCurves and
// core.PatternSweep measure each pattern's saturation throughput with the
// latency-knee rule documented at noc.DetectSaturation. Beyond the
// paper's fabric, internal/topology carries a registry of named topology
// kinds (mesh, torus, cmesh, fbfly) sharing one Link/NodeID model;
// core.ExploreKinds and core.TopologyPatternSweep sweep the kind axis,
// and a cross-topology conformance suite pins each kind's routing
// contract. See README.md for both registries' formulas and CLI usage.
package repro
