package noc

import (
	"reflect"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// runWith simulates one packet list under a config and returns the Stats.
func runWith(t *testing.T, net *topology.Network, tab *routing.Table, cfg Config, pkts []Packet) Stats {
	t.Helper()
	s, err := New(net, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// skipGeometries covers the channel regimes the idle-leap interacts with:
// plain mesh (1-clock channels), hybrid express (mixed 1/2-clock arrivals
// in the calendar), the row-closure dateline configuration (classed VC
// state), and a torus (rings in both dimensions).
func skipGeometries(t *testing.T) map[string]struct {
	net *topology.Network
	tab *routing.Table
} {
	t.Helper()
	out := make(map[string]struct {
		net *topology.Network
		tab *routing.Table
	})
	for name, hops := range map[string]int{"mesh": 0, "express3": 3, "ring7": 7} {
		net, tab := smallMesh(t, 8, 8, hops)
		out[name] = struct {
			net *topology.Network
			tab *routing.Table
		}{net, tab}
	}
	c := topology.DefaultConfig()
	c.Kind = topology.Torus
	c.Width, c.Height = 8, 8
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	out["torus"] = struct {
		net *topology.Network
		tab *routing.Table
	}{net, routing.MustBuild(net, routing.MonotoneExpress)}
	return out
}

// TestIdleSkipBitIdentical is the cycle-skipping kernel's equivalence
// contract: for every geometry × pattern × load point, a run with the
// idle-leap enabled must produce Stats bit-identical to a run that steps
// through every cycle — same counters, same latency samples and
// percentiles, same Activity census. Low loads leave long idle stretches
// (the skip's bread and butter); higher loads verify the leap never fires
// across a cycle that would have done work.
func TestIdleSkipBitIdentical(t *testing.T) {
	skip := DefaultConfig()
	step := DefaultConfig()
	step.DisableIdleSkip = true
	for geo, g := range skipGeometries(t) {
		for _, pattern := range []string{"uniform", "tornado"} {
			for i, rate := range []float64{0.02, 0.25} {
				pkts := bernoulliPackets(t, g.net, pattern, rate, int64(90+i))
				got := runWith(t, g.net, g.tab, skip, pkts)
				want := runWith(t, g.net, g.tab, step, pkts)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s rate=%v: idle-skip run diverges from stepped run:\nstep: %+v\nskip: %+v",
						geo, pattern, rate, want, got)
				}
			}
		}
	}
}
