package noc

import "fmt"

// InjectClosedLoop queues one batch of dependency-structured packets:
// deps[i] lists the indices (within ps) of the packets whose tails must
// eject before packet i becomes releasable. For a packet with
// dependencies, Release is reinterpreted as a compute offset — the packet
// enters its source queue Release cycles after its last predecessor's tail
// ejects (the modeled compute between receiving inputs and sending the
// result). Packets without dependencies keep the usual absolute Release.
//
// Completion means tail ejection at the destination, dropped or not: a
// packet that exhausted its retransmission budget still arrived (corrupt)
// and still unblocks its successors, keeping the schedule well-defined
// under fault injection.
//
// The batch must be the run's entire workload (call on a fresh or Reset
// simulator, once); congestion then feeds back into the injection schedule
// and Stats.MakespanClks reports the end-to-end completion cycle. The
// dependency graph must be acyclic — cycles are the caller's to reject
// (taskgraph.Validate); a cycle that slips through surfaces as a named
// stall error from Run, not a hang.
func (s *Sim) InjectClosedLoop(ps []Packet, deps [][]int) error {
	if s.ran {
		return fmt.Errorf("noc: InjectClosedLoop after Run")
	}
	if s.closedLoop || len(s.pkts) != 0 {
		return fmt.Errorf("noc: InjectClosedLoop needs an empty simulator (one batch per run)")
	}
	if len(deps) != len(ps) {
		return fmt.Errorf("noc: %d packets but %d dependency lists", len(ps), len(deps))
	}
	n := len(ps)
	edges := 0
	for i, dl := range deps {
		for _, d := range dl {
			if d < 0 || d >= n {
				return fmt.Errorf("noc: packet %d dependency %d out of range [0,%d)", i, d, n)
			}
			if d == i {
				return fmt.Errorf("noc: packet %d depends on itself", i)
			}
		}
		edges += len(dl)
	}
	for i, p := range ps {
		if p.SizeFlits <= 0 {
			return fmt.Errorf("noc: packet %d size %d", i, p.SizeFlits)
		}
		if int(p.Src) < 0 || int(p.Src) >= s.net.NumNodes() ||
			int(p.Dst) < 0 || int(p.Dst) >= s.net.NumNodes() {
			return fmt.Errorf("noc: packet %d endpoints %d->%d out of range", i, p.Src, p.Dst)
		}
		if p.Release < 0 {
			return fmt.Errorf("noc: packet %d negative release/offset %d", i, p.Release)
		}
	}

	// CSR successor lists (the reverse of deps) by counting sort, plus the
	// pending-predecessor counts the completion events decrement.
	s.closedLoop = true
	s.pending = make([]int32, n)
	s.succOff = make([]int32, n+1)
	s.succList = make([]int32, edges)
	for _, dl := range deps {
		for _, d := range dl {
			s.succOff[d+1]++
		}
	}
	for d := 0; d < n; d++ {
		s.succOff[d+1] += s.succOff[d]
	}
	fill := make([]int32, n)
	for i, dl := range deps {
		s.pending[i] = int32(len(dl))
		for _, d := range dl {
			s.succList[s.succOff[d]+fill[d]] = int32(i)
			fill[d]++
		}
	}

	// Only root packets (no predecessors) enter their source queues now;
	// the rest are parked until completeSuccessors releases them.
	for i, p := range ps {
		s.pkts = append(s.pkts, pktMeta{Packet: p})
		if s.pending[i] == 0 {
			s.sources[p.Src] = append(s.sources[p.Src], int32(i))
		}
	}
	return nil
}

// completeSuccessors runs at a tail ejection: every successor of the
// completed packet loses one pending predecessor, and those reaching zero
// are released into their source queues.
func (s *Sim) completeSuccessors(pi int32) {
	for _, si := range s.succList[s.succOff[pi]:s.succOff[pi+1]] {
		s.pending[si]--
		if s.pending[si] == 0 {
			s.releasePacket(si)
		}
	}
}

// releasePacket turns a packet's compute offset into an absolute release
// (the ejection completes at now+1, the compute starts then) and inserts
// it into its source queue. The un-injected suffix of every source queue
// stays sorted by (release, packet index) — the exact order Run's initial
// stable sort establishes — so closed-loop insertion and open-loop
// pre-sorting are indistinguishable to the injection stage.
func (s *Sim) releasePacket(pi int32) {
	p := &s.pkts[pi]
	rel := s.now + 1 + p.Release
	p.Release = rel // latency accounting measures from the actual release
	node := int(p.Src)
	q := s.sources[node]
	lo := s.srcPos[node]
	if s.srcFlit[node] > 0 {
		lo++ // the current packet is mid-injection; never displace it
	}
	hi := len(q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if qr := s.pkts[q[mid]].Release; qr < rel || (qr == rel && q[mid] < pi) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, 0)
	copy(q[lo+1:], q[lo:])
	q[lo] = pi
	s.sources[node] = q

	// A parked (or exhausted) source needs a wake entry for the new
	// packet; a live one re-checks its queue every cycle anyway. Stale
	// entries this can leave in the heap are filtered at pop time (see
	// injectFromSources).
	if s.srcMask[node>>6]&(1<<(uint(node)&63)) == 0 {
		s.heapPush(srcRel{rel: rel, node: int32(node)})
	}
}

// sourceDue reports whether a woken node's head packet is releasable this
// cycle, re-parking the node at the head's actual release when it is not
// (or dropping the wake when the queue is exhausted). Only closed-loop
// runs call this: open-loop wake entries are exact by construction.
func (s *Sim) sourceDue(node int) bool {
	pos := s.srcPos[node]
	q := s.sources[node]
	if pos >= len(q) {
		return false
	}
	if rel := s.pkts[q[pos]].Release; rel > s.now {
		s.heapPush(srcRel{rel: rel, node: int32(node)})
		return false
	}
	return true
}
