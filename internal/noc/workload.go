package noc

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// BernoulliWorkload generates open-loop random packet arrivals from a
// traffic rate matrix: each cycle, node s starts a new packet with
// probability RowSum(s)/sizeFlits (so the injected flit rate matches the
// matrix), destination drawn from the row's distribution. This is the
// standard open-loop load-latency methodology (BookSim's injection mode),
// complementing trace-driven runs.
type BernoulliWorkload struct {
	// SizeFlits is the fixed packet length.
	SizeFlits int
	// Cycles is the generation horizon.
	Cycles int64
	// Seed drives the deterministic arrival process.
	Seed int64
}

// Generate draws the packet list for a network and rate matrix.
func (w BernoulliWorkload) Generate(net *topology.Network, tm *traffic.Matrix) ([]Packet, error) {
	if w.SizeFlits <= 0 || w.Cycles <= 0 {
		return nil, fmt.Errorf("noc: invalid workload %+v", w)
	}
	if tm.N != net.NumNodes() {
		return nil, fmt.Errorf("noc: traffic for %d nodes on %d-node network", tm.N, net.NumNodes())
	}
	rng := rand.New(rand.NewSource(w.Seed))
	n := net.NumNodes()

	// Per-source cumulative destination distribution.
	cum := make([][]float64, n)
	rowRate := make([]float64, n)
	for s := 0; s < n; s++ {
		rowRate[s] = tm.RowSum(s)
		if rowRate[s] == 0 {
			continue
		}
		c := make([]float64, n)
		acc := 0.0
		for d := 0; d < n; d++ {
			acc += tm.Rates[s][d]
			c[d] = acc
		}
		cum[s] = c
	}

	var pkts []Packet
	for s := 0; s < n; s++ {
		if rowRate[s] == 0 {
			continue
		}
		pPkt := rowRate[s] / float64(w.SizeFlits)
		if pPkt > 1 {
			return nil, fmt.Errorf("noc: node %d rate %v exceeds 1 packet/cycle", s, pPkt)
		}
		for cyc := int64(0); cyc < w.Cycles; cyc++ {
			if rng.Float64() >= pPkt {
				continue
			}
			// Sample the destination from the cumulative row.
			x := rng.Float64() * rowRate[s]
			d := searchCum(cum[s], x)
			if d == s {
				continue // degenerate row; skip self traffic
			}
			pkts = append(pkts, Packet{
				Src:       topology.NodeID(s),
				Dst:       topology.NodeID(d),
				SizeFlits: w.SizeFlits,
				Release:   cyc,
			})
		}
	}
	return pkts, nil
}

// searchCum returns the first index whose cumulative value exceeds x.
func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LoadPoint is one sample of a load-latency curve.
type LoadPoint struct {
	// InjectionRate is the offered max per-node rate in flits/cycle.
	InjectionRate float64
	// AvgLatencyClks and P99LatencyClks summarize packet latency.
	AvgLatencyClks, P99LatencyClks float64
	// Saturated marks points that failed to drain within the cycle cap
	// (offered load beyond network capacity).
	Saturated bool
}

// LoadLatencyCurve sweeps the offered injection rate over `rates`, running
// a Bernoulli workload per point, and returns the classic load-latency
// curve used to locate network saturation. Points that fail to drain within
// the configured MaxCycles are flagged Saturated rather than failing the
// sweep. It is a thin wrapper over LoadLatencyCurveContext with a
// default-sized worker pool; each rate is an independent deterministic
// simulation, so the curve is bit-identical to the historical serial sweep.
func LoadLatencyCurve(net *topology.Network, tab *routing.Table, base *traffic.Matrix,
	rates []float64, w BernoulliWorkload, cfg Config) ([]LoadPoint, error) {
	return LoadLatencyCurveContext(context.Background(), net, tab, base, rates, w, cfg, runner.Config{})
}

// LoadLatencyCurveContext is LoadLatencyCurve on an explicit context and
// worker-pool configuration: one Sim instance per rate, run concurrently.
// The shared network, table and base matrix are only read.
func LoadLatencyCurveContext(ctx context.Context, net *topology.Network, tab *routing.Table,
	base *traffic.Matrix, rates []float64, w BernoulliWorkload, cfg Config,
	pool runner.Config) ([]LoadPoint, error) {
	return runner.Map(ctx, len(rates), pool, func(_ context.Context, i int) (LoadPoint, error) {
		r := rates[i]
		tm := base.ScaledToMaxRate(r)
		pkts, err := w.Generate(net, tm)
		if err != nil {
			return LoadPoint{}, err
		}
		sim, err := New(net, tab, cfg)
		if err != nil {
			return LoadPoint{}, err
		}
		if err := sim.InjectAll(pkts); err != nil {
			return LoadPoint{}, err
		}
		st, err := sim.Run()
		pt := LoadPoint{InjectionRate: r}
		if err != nil {
			pt.Saturated = true
		} else {
			pt.AvgLatencyClks = st.AvgPacketLatencyClks
			pt.P99LatencyClks = st.P99PacketLatencyClks
		}
		return pt, nil
	})
}
