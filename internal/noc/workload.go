package noc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// BernoulliWorkload generates open-loop random packet arrivals from a
// traffic rate matrix: each cycle, node s starts a new packet with
// probability RowSum(s)/sizeFlits (so the injected flit rate matches the
// matrix), destination drawn from the row's distribution. This is the
// standard open-loop load-latency methodology (BookSim's injection mode),
// complementing trace-driven runs.
type BernoulliWorkload struct {
	// SizeFlits is the fixed packet length.
	SizeFlits int
	// Cycles is the generation horizon.
	Cycles int64
	// Seed drives the deterministic arrival process.
	Seed int64
}

// Generate draws the packet list for a network and rate matrix.
func (w BernoulliWorkload) Generate(net *topology.Network, tm *traffic.Matrix) ([]Packet, error) {
	if w.SizeFlits <= 0 || w.Cycles <= 0 {
		return nil, fmt.Errorf("noc: invalid workload %+v", w)
	}
	if tm.N != net.NumNodes() {
		return nil, fmt.Errorf("noc: traffic for %d nodes on %d-node network", tm.N, net.NumNodes())
	}
	rng := rand.New(rand.NewSource(w.Seed))
	n := net.NumNodes()

	rowRate := make([]float64, n)
	for s := 0; s < n; s++ {
		rowRate[s] = tm.RowSum(s)
	}

	// One reusable cumulative-distribution buffer: each source's row is
	// materialized, prefix-summed in place, sampled, then overwritten by
	// the next source — O(n) memory where the per-source tables were
	// O(n²). The RNG consumption and sampled values are unchanged.
	cum := make([]float64, n)
	var pkts []Packet
	for s := 0; s < n; s++ {
		if rowRate[s] == 0 {
			continue
		}
		pPkt := rowRate[s] / float64(w.SizeFlits)
		if pPkt > 1 {
			return nil, fmt.Errorf("noc: node %d rate %v exceeds 1 packet/cycle", s, pPkt)
		}
		cum = tm.Row(s, cum)
		acc := 0.0
		for d := 0; d < n; d++ {
			acc += cum[d]
			cum[d] = acc
		}
		for cyc := int64(0); cyc < w.Cycles; cyc++ {
			if rng.Float64() >= pPkt {
				continue
			}
			// Sample the destination from the cumulative row.
			x := rng.Float64() * rowRate[s]
			d := searchCum(cum, x)
			if d == s {
				continue // degenerate row; skip self traffic
			}
			pkts = append(pkts, Packet{
				Src:       topology.NodeID(s),
				Dst:       topology.NodeID(d),
				SizeFlits: w.SizeFlits,
				Release:   cyc,
			})
		}
	}
	return pkts, nil
}

// searchCum returns the first index whose cumulative value exceeds x.
func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LoadPoint is one sample of a load-latency curve.
type LoadPoint struct {
	// InjectionRate is the offered max per-node rate in flits/cycle.
	InjectionRate float64
	// AvgLatencyClks and P99LatencyClks summarize packet latency.
	AvgLatencyClks, P99LatencyClks float64
	// Saturated marks points that failed to drain within the cycle cap
	// (offered load beyond network capacity).
	Saturated bool
}

// LoadLatencyCurve sweeps the offered injection rate over `rates`, running
// a Bernoulli workload per point, and returns the classic load-latency
// curve used to locate network saturation. Points that fail to drain within
// the configured MaxCycles are flagged Saturated rather than failing the
// sweep. It is a thin wrapper over LoadLatencyCurveContext with a
// default-sized worker pool and a private Sim reuse pool; each rate is an
// independent deterministic simulation, so the curve is bit-identical to
// the historical serial sweep.
func LoadLatencyCurve(net *topology.Network, tab *routing.Table, base *traffic.Matrix,
	rates []float64, w BernoulliWorkload, cfg Config) ([]LoadPoint, error) {
	return LoadLatencyCurveContext(context.Background(), net, tab, base, rates, w, cfg,
		runner.Config{}, NewSimPool())
}

// LoadLatencyCurveContext is LoadLatencyCurve on an explicit context,
// worker-pool configuration and Sim reuse pool: rates run concurrently,
// each worker recycling simulators through sims (nil disables reuse).
// The shared network, table and base matrix are only read.
func LoadLatencyCurveContext(ctx context.Context, net *topology.Network, tab *routing.Table,
	base *traffic.Matrix, rates []float64, w BernoulliWorkload, cfg Config,
	pool runner.Config, sims *SimPool) ([]LoadPoint, error) {
	return runner.Map(ctx, len(rates), pool, func(_ context.Context, i int) (LoadPoint, error) {
		return loadPoint(net, tab, base, rates[i], w, cfg, sims)
	})
}

// loadPoint runs one offered-load sample: scale the base matrix to the
// rate, draw the Bernoulli arrivals, simulate, summarize. The simulator
// comes from (and returns to) the reuse pool.
func loadPoint(net *topology.Network, tab *routing.Table, base *traffic.Matrix,
	rate float64, w BernoulliWorkload, cfg Config, sims *SimPool) (LoadPoint, error) {
	tm := base.ScaledToMaxRate(rate)
	pkts, err := w.Generate(net, tm)
	if err != nil {
		return LoadPoint{}, err
	}
	sim, err := sims.Get(net, tab, cfg)
	if err != nil {
		return LoadPoint{}, err
	}
	if err := sim.InjectAll(pkts); err != nil {
		return LoadPoint{}, err
	}
	st, err := sim.Run()
	sims.Put(sim)
	pt := LoadPoint{InjectionRate: rate}
	if err != nil {
		if !errors.Is(err, ErrSaturated) {
			return LoadPoint{}, err
		}
		pt.Saturated = true
	} else {
		pt.AvgLatencyClks = st.AvgPacketLatencyClks
		pt.P99LatencyClks = st.P99PacketLatencyClks
	}
	return pt, nil
}

// SaturationLatencyFactor defines the latency-knee rule used by
// DetectSaturation: a pattern's saturation throughput is the lowest
// offered load whose average packet latency exceeds this multiple of the
// curve's zero-load latency (the first swept point), or that fails to
// drain within the cycle cap. 3× is the conventional knee threshold in
// NoC load-latency methodology — past it, queueing delay dominates and
// latency grows without bound.
const SaturationLatencyFactor = 3.0

// DetectSaturation applies the latency-knee rule to a load-latency curve
// sampled at ascending rates. It returns the offered injection rate of
// the first saturated point. A curve whose lowest rate already fails to
// drain reports that rate with atFloor set: the true knee lies at or
// below the sweep floor, so the returned rate is an upper bound on
// capacity, not a measurement — consumers must render it "≤ rate", never
// as a measured throughput. An interior knee (the rule firing past the
// first point, including a first point whose latency merely trips the
// knee on a later comparison) reports atFloor false. ok is false only
// when the curve is empty or never saturates within the swept range (the
// returned rate is then zero and atFloor is false).
func DetectSaturation(points []LoadPoint) (rate float64, atFloor, ok bool) {
	if len(points) == 0 {
		return 0, false, false
	}
	if points[0].Saturated {
		return points[0].InjectionRate, true, true
	}
	base := points[0].AvgLatencyClks
	for _, p := range points[1:] {
		if p.Saturated || p.AvgLatencyClks > SaturationLatencyFactor*base {
			return p.InjectionRate, false, true
		}
	}
	return 0, false, false
}

// PatternCurve is the load-latency curve of one named traffic pattern,
// with its latency-knee saturation point (see DetectSaturation).
type PatternCurve struct {
	// Pattern is the registry name of the swept pattern.
	Pattern string
	// Points holds one LoadPoint per swept rate, in rate order.
	Points []LoadPoint
	// SaturationRate is the offered rate at the latency knee; zero when
	// the pattern never saturates within the swept range.
	SaturationRate float64
	// Saturates reports whether the knee lies inside the swept range.
	Saturates bool
	// AtFloor marks a curve whose lowest swept rate already failed to
	// drain: SaturationRate is then only an upper bound on capacity
	// (the true knee lies at or below the sweep floor), not a measured
	// throughput. See DetectSaturation.
	AtFloor bool
}

// PatternLoadLatencyCurves sweeps the full pattern×load matrix on one
// worker pool: every (pattern, rate) pair is an independent simulation
// job, so the flattened batch keeps the pool busy even when patterns have
// uneven curves. Base matrices are generated once per pattern up front
// and only read afterwards; each job is a pure function of its index, so
// the result is bit-identical for any worker count. Simulators are
// recycled through sims (nil = a private pool per call), so the whole
// matrix allocates O(live workers) simulators. Each curve's saturation
// point is detected with the latency-knee rule documented at
// SaturationLatencyFactor.
func PatternLoadLatencyCurves(ctx context.Context, net *topology.Network, tab *routing.Table,
	patterns []traffic.Pattern, rates []float64, w BernoulliWorkload, cfg Config,
	pool runner.Config, sims *SimPool) ([]PatternCurve, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("noc: pattern sweep with no rates")
	}
	if sims == nil {
		sims = NewSimPool()
	}
	bases := make([]*traffic.Matrix, len(patterns))
	for i, p := range patterns {
		m, err := p.Generate(net, 1)
		if err != nil {
			return nil, fmt.Errorf("noc: pattern %s: %w", p.Name(), err)
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("noc: pattern %s: %w", p.Name(), err)
		}
		bases[i] = m
	}
	flat, err := runner.Map(ctx, len(patterns)*len(rates), pool,
		func(_ context.Context, i int) (LoadPoint, error) {
			pi, ri := i/len(rates), i%len(rates)
			return loadPoint(net, tab, bases[pi], rates[ri], w, cfg, sims)
		})
	if err != nil {
		return nil, err
	}
	out := make([]PatternCurve, len(patterns))
	for pi, p := range patterns {
		c := PatternCurve{Pattern: p.Name(), Points: flat[pi*len(rates) : (pi+1)*len(rates)]}
		c.SaturationRate, c.AtFloor, c.Saturates = DetectSaturation(c.Points)
		out[pi] = c
	}
	return out, nil
}
