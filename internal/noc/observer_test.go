package noc

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// countingObserver tallies every observer event; it never touches the sim.
type countingObserver struct {
	packets, injected, delivered, sent int64
	ejectTails, dropTails              int64
	lastCycle                          int64
}

func (o *countingObserver) PacketInjected(pkt int32, p Packet, cycle int64) {
	o.packets++
	o.note(cycle)
}

func (o *countingObserver) FlitInjected(pkt int32, node int32, cycle int64) {
	o.injected++
	o.note(cycle)
}

func (o *countingObserver) FlitDelivered(pkt int32, link int32, dst int32, head bool, cycle int64) {
	o.delivered++
	o.note(cycle)
}

func (o *countingObserver) FlitSent(pkt int32, router int32, link int32, head, tail, dropped bool, cycle int64) {
	o.sent++
	if tail && link < 0 {
		o.ejectTails++
		if dropped {
			o.dropTails++
		}
	}
	o.note(cycle)
}

func (o *countingObserver) note(cycle int64) {
	if cycle < o.lastCycle {
		panic("observer saw time run backwards")
	}
	o.lastCycle = cycle
}

func randomBurst(net *topology.Network, packets int, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]Packet, 0, packets)
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(net.NumNodes()))
		dst := topology.NodeID(rng.Intn(net.NumNodes()))
		size := 1
		if rng.Intn(3) == 0 {
			size = 8
		}
		ps = append(ps, Packet{Src: src, Dst: dst, SizeFlits: size,
			Release: int64(rng.Intn(400))})
	}
	return ps
}

// TestObserverDoesNotPerturbStats: attaching an observer must leave every
// kernel statistic bit-identical — the observer is a passive tap.
func TestObserverDoesNotPerturbStats(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3)
	pkts := randomBurst(net, 600, 42)

	run := func(obs Observer) Stats {
		s := newSim(t, net, tab)
		if err := s.InjectAll(pkts); err != nil {
			t.Fatal(err)
		}
		if obs != nil {
			s.SetObserver(obs)
		}
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	plain := run(nil)
	observed := run(&countingObserver{})
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observer perturbed stats:\nplain:    %+v\nobserved: %+v",
			plain, observed)
	}
}

// TestObserverEventConsistency: on a fault-free run the observer's event
// counts must reconcile with the kernel's own census — injections plus link
// deliveries are exactly the buffer writes, sends the buffer reads, and
// tail ejections the ejected packets.
func TestObserverEventConsistency(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3)
	pkts := randomBurst(net, 600, 43)
	s := newSim(t, net, tab)
	if err := s.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	s.SetObserver(obs)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if obs.packets != st.PacketsInjected {
		t.Errorf("PacketInjected events %d, want %d", obs.packets, st.PacketsInjected)
	}
	if obs.injected != st.FlitsInjected {
		t.Errorf("FlitInjected events %d, want %d", obs.injected, st.FlitsInjected)
	}
	if got := obs.injected + obs.delivered; got != st.Activity.BufferWrites {
		t.Errorf("inject+deliver events %d, want BufferWrites %d",
			got, st.Activity.BufferWrites)
	}
	if obs.sent != st.Activity.BufferReads {
		t.Errorf("FlitSent events %d, want BufferReads %d",
			obs.sent, st.Activity.BufferReads)
	}
	if obs.ejectTails != st.PacketsEjected+st.PacketsDropped {
		t.Errorf("tail ejection events %d, want %d",
			obs.ejectTails, st.PacketsEjected+st.PacketsDropped)
	}
	if obs.dropTails != st.PacketsDropped {
		t.Errorf("dropped tail events %d, want %d", obs.dropTails, st.PacketsDropped)
	}
}

// TestResetClearsObserver: a pooled sim must not leak its observer into
// the next run.
func TestResetClearsObserver(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 3)
	s := newSim(t, net, tab)
	obs := &countingObserver{}
	s.SetObserver(obs)
	if err := s.Inject(Packet{Src: 0, Dst: 5, SizeFlits: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.sent == 0 {
		t.Fatal("observer saw no events before reset")
	}
	s.Reset()
	before := obs.sent
	if err := s.Inject(Packet{Src: 0, Dst: 5, SizeFlits: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.sent != before {
		t.Errorf("observer still attached after Reset: %d events, want %d",
			obs.sent, before)
	}
}
