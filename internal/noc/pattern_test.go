package noc

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestDetectSaturation(t *testing.T) {
	cases := []struct {
		name    string
		points  []LoadPoint
		rate    float64
		atFloor bool
		ok      bool
	}{
		{"empty", nil, 0, false, false},
		// A curve saturated from its lowest rate reports that rate WITH
		// the at-floor marker: the knee lies at or below the sweep floor,
		// so the rate is an upper bound, not a measured capacity.
		{"baseline saturated",
			[]LoadPoint{{InjectionRate: 0.1, Saturated: true}}, 0.1, true, true},
		{"flat curve never saturates", []LoadPoint{
			{InjectionRate: 0.1, AvgLatencyClks: 20},
			{InjectionRate: 0.2, AvgLatencyClks: 22},
			{InjectionRate: 0.3, AvgLatencyClks: 25},
		}, 0, false, false},
		// An interior knee is a measurement, not a floor artifact.
		{"latency knee at 3x zero-load", []LoadPoint{
			{InjectionRate: 0.1, AvgLatencyClks: 20},
			{InjectionRate: 0.2, AvgLatencyClks: 45},
			{InjectionRate: 0.3, AvgLatencyClks: 61}, // > 3×20
			{InjectionRate: 0.4, AvgLatencyClks: 300},
		}, 0.3, false, true},
		{"no-drain point saturates", []LoadPoint{
			{InjectionRate: 0.1, AvgLatencyClks: 20},
			{InjectionRate: 0.2, Saturated: true},
		}, 0.2, false, true},
		{"exactly 3x is not past the knee", []LoadPoint{
			{InjectionRate: 0.1, AvgLatencyClks: 20},
			{InjectionRate: 0.2, AvgLatencyClks: 60},
		}, 0, false, false},
		// A second point failing to drain right above a drained floor is
		// interior: the floor itself was measured fine.
		{"knee right above the floor is interior", []LoadPoint{
			{InjectionRate: 0.05, AvgLatencyClks: 20},
			{InjectionRate: 0.06, Saturated: true},
			{InjectionRate: 0.2, Saturated: true},
		}, 0.06, false, true},
	}
	for _, c := range cases {
		rate, atFloor, ok := DetectSaturation(c.points)
		if rate != c.rate || atFloor != c.atFloor || ok != c.ok {
			t.Errorf("%s: DetectSaturation = (%v, %v, %v), want (%v, %v, %v)",
				c.name, rate, atFloor, ok, c.rate, c.atFloor, c.ok)
		}
	}
}

// patternSweepInputs builds a small sweep that exercises real saturation
// behaviour in well under a second.
func patternSweepInputs(t *testing.T) ([]traffic.Pattern, []float64, BernoulliWorkload, Config) {
	t.Helper()
	pats, err := traffic.ParsePatterns("uniform,tornado,hotspot")
	if err != nil {
		t.Fatal(err)
	}
	w := BernoulliWorkload{SizeFlits: 1, Cycles: 600, Seed: 11}
	cfg := DefaultConfig()
	cfg.MaxCycles = 20000
	return pats, []float64{0.05, 0.2, 0.5}, w, cfg
}

func TestPatternLoadLatencyCurves(t *testing.T) {
	net, tab, _ := workloadNet(t)
	pats, rates, w, cfg := patternSweepInputs(t)
	curves, err := PatternLoadLatencyCurves(context.Background(), net, tab,
		pats, rates, w, cfg, runner.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != len(pats) {
		t.Fatalf("%d curves for %d patterns", len(curves), len(pats))
	}
	for i, c := range curves {
		if c.Pattern != pats[i].Name() {
			t.Errorf("curve %d named %q, want %q", i, c.Pattern, pats[i].Name())
		}
		if len(c.Points) != len(rates) {
			t.Fatalf("curve %s has %d points, want %d", c.Pattern, len(c.Points), len(rates))
		}
		for j, p := range c.Points {
			if p.InjectionRate != rates[j] {
				t.Errorf("curve %s point %d at rate %v, want %v", c.Pattern, j, p.InjectionRate, rates[j])
			}
		}
		// The detected knee must agree with a direct application of the
		// rule to the returned points.
		rate, atFloor, ok := DetectSaturation(c.Points)
		if rate != c.SaturationRate || atFloor != c.AtFloor || ok != c.Saturates {
			t.Errorf("curve %s knee (%v,%v,%v) disagrees with DetectSaturation (%v,%v,%v)",
				c.Pattern, c.SaturationRate, c.AtFloor, c.Saturates, rate, atFloor, ok)
		}
	}
}

// TestPatternCurvesSerialParallelIdentical: the pattern×load sweep is
// bit-identical whatever the worker count — the repository determinism
// contract, enforced under -race by make race.
func TestPatternCurvesSerialParallelIdentical(t *testing.T) {
	net, tab, _ := workloadNet(t)
	pats, rates, w, cfg := patternSweepInputs(t)
	serial, err := PatternLoadLatencyCurves(context.Background(), net, tab,
		pats, rates, w, cfg, runner.Config{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PatternLoadLatencyCurves(context.Background(), net, tab,
		pats, rates, w, cfg, runner.Config{Workers: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel sweeps diverge:\n%+v\nvs\n%+v", serial, parallel)
	}
}

func TestPatternCurvesRejectBadInput(t *testing.T) {
	net, tab, _ := workloadNet(t)
	pats, _, w, cfg := patternSweepInputs(t)
	if _, err := PatternLoadLatencyCurves(context.Background(), net, tab,
		pats, nil, w, cfg, runner.Config{}, nil); err == nil {
		t.Error("empty rate grid must fail")
	}
	// A pattern whose precondition fails surfaces as a named error.
	tr, err := traffic.Lookup("bitrev")
	if err != nil {
		t.Fatal(err)
	}
	c := topology.DefaultConfig()
	c.Width, c.Height = 3, 3
	odd := topology.MustBuild(c)
	tab3 := routing.MustBuild(odd, routing.MonotoneExpress)
	if _, err := PatternLoadLatencyCurves(context.Background(), odd, tab3,
		[]traffic.Pattern{tr}, []float64{0.1}, w, cfg, runner.Config{}, nil); err == nil {
		t.Error("bit-reversal on 9 nodes must fail")
	}
}
