package noc

import (
	"sync"

	"repro/internal/routing"
	"repro/internal/topology"
)

// SimPool recycles Sim instances across the runs of a sweep, keyed by the
// exact (network, routing table, config) triple: a pooled Get performs a
// Reset instead of rebuilding topology-sized state, so a sweep allocates
// O(live workers) simulators instead of O(points).
//
// The pool is safe for concurrent Get/Put from multiple workers; the Sims
// it hands out are not — each Sim must stay with one goroutine between Get
// and Put, the usual per-worker reuse discipline. A Reset Sim is
// bit-identical in behavior to a fresh one (enforced by the noc reuse
// tests), so pooling preserves the repository's determinism contract.
//
// A nil *SimPool is valid and disables reuse: Get falls through to New and
// Put discards the simulator.
type SimPool struct {
	mu   sync.Mutex
	free map[simPoolKey][]*Sim
}

// simPoolKey identifies interchangeable simulators. Networks and tables
// are compared by pointer: the sweeps share one immutable instance per
// design point, which is exactly the reuse unit.
type simPoolKey struct {
	net *topology.Network
	tab *routing.Table
	cfg Config
}

// NewSimPool returns an empty pool.
func NewSimPool() *SimPool {
	return &SimPool{free: make(map[simPoolKey][]*Sim)}
}

// Get returns a Reset simulator for the triple, reusing a pooled one when
// available and building a fresh one otherwise.
func (p *SimPool) Get(net *topology.Network, tab *routing.Table, cfg Config) (*Sim, error) {
	if p != nil {
		key := simPoolKey{net: net, tab: tab, cfg: cfg}
		p.mu.Lock()
		if sims := p.free[key]; len(sims) > 0 {
			s := sims[len(sims)-1]
			sims[len(sims)-1] = nil
			p.free[key] = sims[:len(sims)-1]
			p.mu.Unlock()
			s.Reset()
			return s, nil
		}
		p.mu.Unlock()
	}
	return New(net, tab, cfg)
}

// Put returns a simulator to the pool for later reuse. The caller must not
// touch the Sim afterwards; Stats already returned by Run stay valid (see
// Sim.Reset).
func (p *SimPool) Put(s *Sim) {
	if p == nil || s == nil {
		return
	}
	key := simPoolKey{net: s.net, tab: s.tab, cfg: s.cfg}
	p.mu.Lock()
	p.free[key] = append(p.free[key], s)
	p.mu.Unlock()
}
