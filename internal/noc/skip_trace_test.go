package noc_test

import (
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/trace"
)

// TestIdleSkipBitIdenticalTrace repeats the cycle-skip equivalence contract
// on bursty NPB trace workloads, whose inter-phase gaps are exactly the
// idle stretches the leap compresses. Release times are spread over
// thousands of cycles with the network fully drained between phases, so
// the skip path (release-heap leap with an empty calendar) carries most of
// the run. It lives in an external test package because trace imports noc.
func TestIdleSkipBitIdenticalTrace(t *testing.T) {
	c := topology.DefaultConfig()
	c.Width, c.Height = 8, 8
	c.ExpressHops = 3
	c.ExpressTech = tech.HyPPI
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	skip := noc.DefaultConfig()
	step := noc.DefaultConfig()
	step.DisableIdleSkip = true
	run := func(cfg noc.Config, pkts []noc.Packet) noc.Stats {
		s, err := noc.New(net, tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.InjectAll(pkts); err != nil {
			t.Fatal(err)
		}
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	for _, kernel := range []npb.Kernel{npb.FT, npb.LU} {
		cfg := npb.DefaultConfig(kernel)
		cfg.GridW, cfg.GridH = 8, 8
		cfg.Iterations = 2
		events, err := npb.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pkts, err := trace.Packetize(events, net.NumNodes(), trace.DefaultPacketize())
		if err != nil {
			t.Fatal(err)
		}
		got := run(skip, pkts)
		want := run(step, pkts)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%v: idle-skip trace run diverges from stepped run:\nstep: %+v\nskip: %+v",
				kernel, want, got)
		}
	}
}
