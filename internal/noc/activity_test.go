package noc

import (
	"testing"

	"repro/internal/tech"
)

// TestActivityCensusInvariants checks the structural identities the energy
// accounting relies on: at drain every buffered flit was written once and
// read once through the crossbar (so the three router-side counters agree
// with each other and with RouterFlits), the per-class link census splits
// LinkFlits exactly, and the per-source census splits FlitsInjected.
func TestActivityCensusInvariants(t *testing.T) {
	for _, hops := range []int{0, 3, 7} {
		net, tab := smallMesh(t, 8, 8, hops)
		s := newSim(t, net, tab)
		if err := s.InjectAll(bernoulliPackets(t, net, "uniform", 0.2, 99)); err != nil {
			t.Fatal(err)
		}
		st, err := s.Run()
		if err != nil {
			t.Fatalf("hops=%d: %v", hops, err)
		}
		a := st.Activity

		var routerFlits int64
		for _, c := range st.RouterFlits {
			routerFlits += c
		}
		if a.BufferWrites != routerFlits {
			t.Errorf("hops=%d: BufferWrites %d != ΣRouterFlits %d", hops, a.BufferWrites, routerFlits)
		}
		if a.BufferReads != a.BufferWrites {
			t.Errorf("hops=%d: BufferReads %d != BufferWrites %d", hops, a.BufferReads, a.BufferWrites)
		}
		if a.CrossbarTraversals != a.BufferReads {
			t.Errorf("hops=%d: CrossbarTraversals %d != BufferReads %d", hops, a.CrossbarTraversals, a.BufferReads)
		}

		var linkFlits, exprFlits int64
		for i, c := range st.LinkFlits {
			linkFlits += c
			if net.Links[i].Express {
				exprFlits += c
			}
		}
		if got := a.TotalFlitHops(); got != linkFlits {
			t.Errorf("hops=%d: TotalFlitHops %d != ΣLinkFlits %d", hops, got, linkFlits)
		}
		if a.ExpressFlitHops != exprFlits {
			t.Errorf("hops=%d: ExpressFlitHops %d != express ΣLinkFlits %d", hops, a.ExpressFlitHops, exprFlits)
		}
		// Every router traversal is an injection or a link delivery.
		if want := a.TotalFlitHops() + st.FlitsInjected; a.BufferWrites != want {
			t.Errorf("hops=%d: BufferWrites %d != hops+injected %d", hops, a.BufferWrites, want)
		}

		var srcFlits int64
		for _, c := range a.SourceFlits {
			srcFlits += c
		}
		if srcFlits != st.FlitsInjected {
			t.Errorf("hops=%d: ΣSourceFlits %d != FlitsInjected %d", hops, srcFlits, st.FlitsInjected)
		}
		if rate := a.MaxSourceRate(st.Cycles); rate <= 0 || rate > 1 {
			t.Errorf("hops=%d: MaxSourceRate %v out of (0,1]", hops, rate)
		}
	}
}

// TestActivityTechClasses: the per-class census keys on the link technology
// — on a hybrid with HyPPI express channels the HyPPI class counts exactly
// the express traversals and the electronic class the base-mesh ones.
func TestActivityTechClasses(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3) // smallMesh wires HyPPI express
	var wantByTech [tech.NumTechnologies]int64
	s := newSim(t, net, tab)
	if err := s.InjectAll(bernoulliPackets(t, net, "tornado", 0.2, 7)); err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range st.LinkFlits {
		wantByTech[net.Links[i].Tech] += c
	}
	if st.Activity.LinkFlitHops != wantByTech {
		t.Errorf("LinkFlitHops %v != per-tech ΣLinkFlits %v", st.Activity.LinkFlitHops, wantByTech)
	}
	if st.Activity.LinkFlitHops[tech.HyPPI] == 0 {
		t.Error("tornado on the express hybrid should ride HyPPI channels")
	}
	if got, want := st.Activity.OpticalFlitHops(), wantByTech[tech.Photonic]+wantByTech[tech.Plasmonic]+wantByTech[tech.HyPPI]; got != want {
		t.Errorf("OpticalFlitHops %d != optical ΣLinkFlits %d", got, want)
	}
}

// TestActivityTechnologiesContiguous guards the indexing contract
// LinkFlitHops relies on: tech.Technology values are contiguous from zero.
func TestActivityTechnologiesContiguous(t *testing.T) {
	if len(tech.Technologies) != tech.NumTechnologies {
		t.Fatalf("tech.Technologies has %d entries, NumTechnologies is %d",
			len(tech.Technologies), tech.NumTechnologies)
	}
	for i, tc := range tech.Technologies {
		if int(tc) != i {
			t.Fatalf("tech.Technologies[%d] = %d, not contiguous", i, int(tc))
		}
	}
}
