package noc

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

func workloadNet(t testing.TB) (*topology.Network, *routing.Table, *traffic.Matrix) {
	t.Helper()
	c := topology.DefaultConfig()
	c.Width, c.Height = 8, 8
	c.ExpressTech = tech.HyPPI
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	tm := traffic.Uniform(net, 0.1)
	return net, tab, tm
}

// TestBernoulliRateMatchesMatrix: the generated flit volume approximates
// rate × cycles × nodes.
func TestBernoulliRateMatchesMatrix(t *testing.T) {
	net, _, tm := workloadNet(t)
	w := BernoulliWorkload{SizeFlits: 4, Cycles: 20000, Seed: 3}
	pkts, err := w.Generate(net, tm)
	if err != nil {
		t.Fatal(err)
	}
	var flits int64
	for _, p := range pkts {
		flits += int64(p.SizeFlits)
		if p.Src == p.Dst {
			t.Fatal("self packet generated")
		}
		if p.Release < 0 || p.Release >= w.Cycles {
			t.Fatalf("release %d outside horizon", p.Release)
		}
	}
	want := 0.1 * float64(w.Cycles) * 64 // rate × cycles × nodes
	if !units.WithinFactor(float64(flits), want, 1.1) {
		t.Errorf("generated %d flits, want ≈%v", flits, want)
	}
}

func TestBernoulliDeterminism(t *testing.T) {
	net, _, tm := workloadNet(t)
	w := BernoulliWorkload{SizeFlits: 1, Cycles: 5000, Seed: 9}
	a, err := w.Generate(net, tm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Generate(net, tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestBernoulliValidation(t *testing.T) {
	net, _, tm := workloadNet(t)
	if _, err := (BernoulliWorkload{SizeFlits: 0, Cycles: 10}).Generate(net, tm); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := (BernoulliWorkload{SizeFlits: 1, Cycles: 0}).Generate(net, tm); err == nil {
		t.Error("zero cycles must fail")
	}
	if _, err := (BernoulliWorkload{SizeFlits: 1, Cycles: 10}).Generate(net, traffic.NewMatrix(4)); err == nil {
		t.Error("size mismatch must fail")
	}
	// Rate above 1 packet/cycle is rejected.
	hot := traffic.Uniform(net, 0.9)
	if _, err := (BernoulliWorkload{SizeFlits: 1, Cycles: 10, Seed: 1}).Generate(net, hot.Scaled(2)); err == nil {
		t.Error("super-unit packet rate must fail")
	}
}

// TestLoadLatencyCurveShape: latency grows monotonically-ish with offered
// load and explodes near saturation — the textbook curve.
func TestLoadLatencyCurveShape(t *testing.T) {
	net, tab, tm := workloadNet(t)
	w := BernoulliWorkload{SizeFlits: 1, Cycles: 4000, Seed: 7}
	if testing.Short() {
		w.Cycles = 800
	}
	cfg := DefaultConfig()
	rates := []float64{0.02, 0.2, 0.45}
	pts, err := LoadLatencyCurve(net, tab, tm, rates, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(rates) {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.Saturated {
			t.Fatalf("point %v unexpectedly saturated", p.InjectionRate)
		}
		if i > 0 && p.AvgLatencyClks < pts[i-1].AvgLatencyClks*0.95 {
			t.Errorf("latency decreased with load: %v -> %v", pts[i-1], p)
		}
		if p.P99LatencyClks < p.AvgLatencyClks {
			t.Errorf("P99 %v below mean %v", p.P99LatencyClks, p.AvgLatencyClks)
		}
	}
	if pts[2].AvgLatencyClks < 1.2*pts[0].AvgLatencyClks {
		t.Errorf("high load latency %v should clearly exceed low load %v",
			pts[2].AvgLatencyClks, pts[0].AvgLatencyClks)
	}
}

// TestLoadLatencySaturationFlagged: an absurd offered load is flagged, not
// fatal.
func TestLoadLatencySaturationFlagged(t *testing.T) {
	net, tab, tm := workloadNet(t)
	w := BernoulliWorkload{SizeFlits: 1, Cycles: 4000, Seed: 7}
	cfg := DefaultConfig()
	cfg.MaxCycles = 6000 // tight cap: overload cannot drain in time
	if testing.Short() {
		w.Cycles, cfg.MaxCycles = 800, 1200
	}
	pts, err := LoadLatencyCurve(net, tab, tm, []float64{0.95}, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pts[0].Saturated {
		t.Error("overload point should be flagged saturated")
	}
}

// TestPercentilesPopulated: a simulated run fills the latency percentiles
// consistently (P50 ≤ mean-ish ≤ P95 ≤ P99 ≤ max).
func TestPercentilesPopulated(t *testing.T) {
	net, tab, tm := workloadNet(t)
	w := BernoulliWorkload{SizeFlits: 4, Cycles: 3000, Seed: 2}
	pkts, err := w.Generate(net, tm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.P50PacketLatencyClks <= 0 {
		t.Error("P50 not populated")
	}
	if !(st.P50PacketLatencyClks <= st.P95PacketLatencyClks &&
		st.P95PacketLatencyClks <= st.P99PacketLatencyClks &&
		st.P99PacketLatencyClks <= float64(st.MaxPacketLatencyClks)) {
		t.Errorf("percentile ordering broken: %v / %v / %v / %v",
			st.P50PacketLatencyClks, st.P95PacketLatencyClks,
			st.P99PacketLatencyClks, st.MaxPacketLatencyClks)
	}
}
