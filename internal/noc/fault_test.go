package noc

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

func faultTestNet(t *testing.T, w, h int) (*topology.Network, *routing.Table) {
	t.Helper()
	net, err := topology.Build(topology.Config{
		Width: w, Height: h,
		CoreSpacingM: 1 * units.Millimetre,
		CapacityBps:  50e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := routing.Build(net, routing.MonotoneExpress)
	if err != nil {
		t.Fatal(err)
	}
	return net, tab
}

func faultTestPackets(t *testing.T, net *topology.Network, rate float64, cycles int64) []Packet {
	t.Helper()
	tm := traffic.Uniform(net, rate)
	pkts, err := BernoulliWorkload{SizeFlits: 1, Cycles: cycles, Seed: 7}.Generate(net, tm)
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

func uniformBER(net *topology.Network, p float64) []float64 {
	probs := make([]float64, len(net.Links))
	for i := range probs {
		probs[i] = p
	}
	return probs
}

// TestFaultRetransmitDelivery pins the acceptance criterion: under nonzero
// BER with unlimited retries, every injected packet is eventually
// delivered, the failed traversals show up in the retransmission census,
// and the energy-bearing counters include them.
func TestFaultRetransmitDelivery(t *testing.T) {
	net, tab := faultTestNet(t, 4, 4)
	pkts := faultTestPackets(t, net, 0.1, 300)
	sim, err := New(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetFaultProfile(&FaultProfile{
		LinkFlitErrorProb: uniformBER(net, 0.2),
		Seed:              42,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.PacketsEjected != int64(len(pkts)) {
		t.Fatalf("delivered %d of %d packets", st.PacketsEjected, len(pkts))
	}
	if st.PacketsDropped != 0 {
		t.Fatalf("unexpected drops: %d", st.PacketsDropped)
	}
	retx := st.Activity.TotalRetransmits()
	if retx == 0 {
		t.Fatal("BER 0.2 run recorded no retransmissions")
	}
	// Every retry re-reads the buffer without re-writing, crosses the
	// switch and toggles the link: the invariants the energy model prices.
	if got, want := st.Activity.BufferReads, st.Activity.BufferWrites+retx; got != want {
		t.Fatalf("BufferReads = %d, want writes+retx = %d", got, want)
	}
	if st.Activity.CrossbarTraversals != st.Activity.BufferReads {
		t.Fatalf("CrossbarTraversals %d != BufferReads %d",
			st.Activity.CrossbarTraversals, st.Activity.BufferReads)
	}
	var linkTotal int64
	for _, c := range st.LinkFlits {
		linkTotal += c
	}
	if got := st.Activity.TotalFlitHops(); got != linkTotal {
		t.Fatalf("LinkFlitHops %d != sum(LinkFlits) %d (retries must count in both)", got, linkTotal)
	}
}

// TestFaultDropReporting pins the explicit-drop half of the criterion:
// with BER 1 every traversal fails, so a finite retry budget must fail
// every packet loudly (PacketsDropped) while the run still drains.
func TestFaultDropReporting(t *testing.T) {
	net, tab := faultTestNet(t, 4, 4)
	pkts := faultTestPackets(t, net, 0.05, 200)
	sim, err := New(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetFaultProfile(&FaultProfile{
		LinkFlitErrorProb: uniformBER(net, 1),
		Seed:              1,
		RetryLimit:        2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.PacketsDropped != int64(len(pkts)) {
		t.Fatalf("PacketsDropped = %d, want %d (every traversal corrupts)", st.PacketsDropped, len(pkts))
	}
	if st.PacketsEjected != 0 {
		t.Fatalf("PacketsEjected = %d, want 0", st.PacketsEjected)
	}
	// Exactly RetryLimit failed attempts per hop before giving up.
	if st.Activity.TotalRetransmits() == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

// TestFaultZeroProfileIdentity is the kernel-level differential test: an
// all-zero (or nil) fault profile must leave Stats bit-identical to the
// faultless run.
func TestFaultZeroProfileIdentity(t *testing.T) {
	net, tab := faultTestNet(t, 4, 4)
	pkts := faultTestPackets(t, net, 0.2, 400)
	run := func(arm func(*Sim)) Stats {
		sim, err := New(net, tab, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if arm != nil {
			arm(sim)
		}
		if err := sim.InjectAll(pkts); err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run(nil)
	zero := run(func(s *Sim) {
		if err := s.SetFaultProfile(&FaultProfile{LinkFlitErrorProb: uniformBER(net, 0)}); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(base, zero) {
		t.Fatalf("zero-probability profile diverged from faultless run:\n%+v\nvs\n%+v", base, zero)
	}
	nilProfile := run(func(s *Sim) {
		if err := s.SetFaultProfile(nil); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(base, nilProfile) {
		t.Fatal("nil profile diverged from faultless run")
	}
}

// TestFaultProfileValidation covers the rejection paths and Reset clearing.
func TestFaultProfileValidation(t *testing.T) {
	net, tab := faultTestNet(t, 4, 4)
	sim, err := New(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetFaultProfile(&FaultProfile{LinkFlitErrorProb: []float64{0.5}}); err == nil {
		t.Fatal("wrong probability count accepted")
	}
	if err := sim.SetFaultProfile(&FaultProfile{LinkFlitErrorProb: uniformBER(net, 1.5)}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	if err := sim.SetFaultProfile(&FaultProfile{LinkFlitErrorProb: uniformBER(net, 0.5), RetryLimit: -1}); err == nil {
		t.Fatal("negative retry limit accepted")
	}
	if err := sim.SetFaultProfile(&FaultProfile{LinkFlitErrorProb: uniformBER(net, 0.5)}); err != nil {
		t.Fatal(err)
	}
	if sim.fault == nil {
		t.Fatal("profile did not arm")
	}
	sim.Reset()
	if sim.fault != nil {
		t.Fatal("Reset must disarm the fault profile")
	}
}

// TestFaultUnroutableNamedError runs the kernel on a degraded table with a
// disconnected destination: the run must abort with a wrapped
// routing.ErrUnreachable naming the pair, not panic on the missing port.
func TestFaultUnroutableNamedError(t *testing.T) {
	net, _ := faultTestNet(t, 4, 4)
	down := make([]bool, len(net.Links))
	for _, l := range net.Links {
		if l.Src == 15 || l.Dst == 15 {
			down[l.ID] = true
		}
	}
	masked, err := net.MaskLinks(down)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := routing.BuildDegraded(masked, routing.MonotoneExpress)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(masked, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(Packet{Src: 0, Dst: 15, SizeFlits: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run()
	if !errors.Is(err, routing.ErrUnreachable) {
		t.Fatalf("Run = %v, want wrapped routing.ErrUnreachable", err)
	}
}

// TestSaturatedStatus is the MaxCycles satellite: a run that hits the cap
// must surface a distinguishable saturated status with honest partial
// stats, identically across the idle-skip and stepping kernels.
func TestSaturatedStatus(t *testing.T) {
	net, tab := faultTestNet(t, 4, 4)
	// Far more load than a 4×4 mesh can drain in 50 cycles.
	pkts := faultTestPackets(t, net, 0.9, 200)
	for _, disableSkip := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.MaxCycles = 50
		cfg.DisableIdleSkip = disableSkip
		sim, err := New(net, tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.InjectAll(pkts); err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if !errors.Is(err, ErrSaturated) {
			t.Fatalf("skip=%v: err = %v, want ErrSaturated", !disableSkip, err)
		}
		var sat *SaturatedError
		if !errors.As(err, &sat) {
			t.Fatalf("skip=%v: err %T does not expose *SaturatedError", !disableSkip, err)
		}
		if sat.Remaining <= 0 || sat.Cycles != 50 {
			t.Fatalf("skip=%v: SaturatedError %+v implausible", !disableSkip, sat)
		}
		if st.Cycles != 50 {
			t.Fatalf("skip=%v: stats.Cycles = %d, want the cap (not silently truncated)", !disableSkip, st.Cycles)
		}
		if st.FlitsInjected == 0 {
			t.Fatalf("skip=%v: partial stats empty", !disableSkip)
		}
	}
}

// TestFaultDeterminism: identical seeds give bit-identical faulted runs;
// different seeds diverge.
func TestFaultDeterminism(t *testing.T) {
	net, tab := faultTestNet(t, 4, 4)
	pkts := faultTestPackets(t, net, 0.1, 300)
	run := func(seed int64) Stats {
		sim, err := New(net, tab, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.SetFaultProfile(&FaultProfile{
			LinkFlitErrorProb: uniformBER(net, 0.3),
			Seed:              seed,
		}); err != nil {
			t.Fatal(err)
		}
		if err := sim.InjectAll(pkts); err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(5), run(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different faulted runs")
	}
	c := run(6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical faulted runs (suspicious)")
	}
}
