package noc

import (
	"reflect"
	"testing"

	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestRingGrowPreservesFIFO: the defensive grow path must keep FIFO order
// across a wrapped head — the hot path never triggers it (queues are
// credit-bounded), so it gets exercised directly here.
func TestRingGrowPreservesFIFO(t *testing.T) {
	r := newRing[int](2)
	// Wrap the head first so grow has to unroll a split buffer.
	r.push(0)
	r.push(1)
	if got := r.pop(); got != 0 {
		t.Fatalf("pop = %d, want 0", got)
	}
	r.push(2) // buffer now [2, 1] with head at index 1
	for v := 3; v < 20; v++ {
		r.push(v) // repeated grows
	}
	if r.len() != 19 {
		t.Fatalf("len = %d, want 19", r.len())
	}
	if *r.front() != 1 {
		t.Fatalf("front = %d, want 1", *r.front())
	}
	for want := 1; want < 20; want++ {
		if got := r.pop(); got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len = %d after draining", r.len())
	}
}

// TestRingGrowZeroCapacity: newRing clamps to a usable capacity.
func TestRingGrowZeroCapacity(t *testing.T) {
	r := newRing[int](0)
	for v := 0; v < 5; v++ {
		r.push(v)
	}
	for want := 0; want < 5; want++ {
		if got := r.pop(); got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
}

// TestArrivalCalendarSizing: the calendar must have strictly more buckets
// than the largest send-to-arrival delay (1 + channel latency), otherwise a
// send could refile into the bucket being drained. HyPPI express channels
// have 2-clock latency, so the hybrid needs ≥4 buckets.
func TestArrivalCalendarSizing(t *testing.T) {
	for _, hops := range []int{0, 3} {
		net, tab := smallMesh(t, 8, 8, hops)
		s := newSim(t, net, tab)
		maxLat := 0
		for _, l := range net.Links {
			if l.LatencyClks > maxLat {
				maxLat = l.LatencyClks
			}
		}
		if len(s.calendar) < maxLat+2 {
			t.Errorf("hops=%d: %d calendar buckets for max link latency %d, need ≥ %d",
				hops, len(s.calendar), maxLat, maxLat+2)
		}
	}
}

// TestArrivalCalendarDrains: after a run every bucket is empty and nothing
// is left in flight — the calendar's conservation invariant, exercised over
// mixed 1- and 2-clock channels under load.
func TestArrivalCalendarDrains(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3) // HyPPI express: 2-clock channels
	s := newSim(t, net, tab)
	pkts := bernoulliPackets(t, net, "uniform", 0.3, 17)
	if err := s.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.FlitsEjected != st.FlitsInjected {
		t.Fatalf("ejected %d of %d flits", st.FlitsEjected, st.FlitsInjected)
	}
	if s.inflight != 0 {
		t.Errorf("inflight = %d after drain", s.inflight)
	}
	for i, b := range s.calendar {
		if len(b) != 0 {
			t.Errorf("calendar bucket %d holds %d arrivals after drain", i, len(b))
		}
	}
}

// bernoulliPackets draws a workload for a named registry pattern.
func bernoulliPackets(t testing.TB, net *topology.Network, pattern string, rate float64, seed int64) []Packet {
	t.Helper()
	p, err := traffic.Lookup(pattern)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := p.Generate(net, rate)
	if err != nil {
		t.Fatal(err)
	}
	w := BernoulliWorkload{SizeFlits: 1, Cycles: 800, Seed: seed}
	pkts, err := w.Generate(net, tm)
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

// TestResetReuseBitIdentical: a Reset simulator must be indistinguishable
// from a fresh one — the contract SimPool relies on. Every pattern runs
// twice on a fresh Sim and once on one shared, serially Reset Sim; all
// Stats must match bit for bit. Topologies cover the plain mesh, the
// hybrid (mixed channel latencies) and the row-closure dateline
// configuration (classed VC allocation state).
func TestResetReuseBitIdentical(t *testing.T) {
	patterns := []string{"uniform", "tornado", "transpose", "hotspot"}
	for _, hops := range []int{0, 3, 7} {
		net, tab := smallMesh(t, 8, 8, hops)
		fresh := make([]Stats, len(patterns))
		for i, name := range patterns {
			s := newSim(t, net, tab)
			if err := s.InjectAll(bernoulliPackets(t, net, name, 0.25, int64(40+i))); err != nil {
				t.Fatal(err)
			}
			st, err := s.Run()
			if err != nil {
				t.Fatalf("hops=%d %s: %v", hops, name, err)
			}
			fresh[i] = st
		}
		reused := newSim(t, net, tab)
		for i, name := range patterns {
			if i > 0 {
				reused.Reset()
			}
			if err := reused.InjectAll(bernoulliPackets(t, net, name, 0.25, int64(40+i))); err != nil {
				t.Fatal(err)
			}
			st, err := reused.Run()
			if err != nil {
				t.Fatalf("hops=%d %s (reused): %v", hops, name, err)
			}
			if !reflect.DeepEqual(fresh[i], st) {
				t.Errorf("hops=%d %s: Reset-reused stats differ from fresh run:\nfresh:  %+v\nreused: %+v",
					hops, name, fresh[i], st)
			}
		}
	}
}

// TestResetAfterFailedRun: a Sim that hit MaxCycles mid-flight (buffers,
// calendar and heap all populated) must still Reset to a bit-identical
// fresh state.
func TestResetAfterFailedRun(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	cfg := DefaultConfig()
	// Low enough that the 9600-flit overload cannot drain, high enough
	// that the post-Reset single packet finishes.
	cfg.MaxCycles = 200
	overload := func(s *Sim) {
		for i := 0; i < 300; i++ {
			if err := s.Inject(Packet{Src: 0, Dst: 15, SizeFlits: 32, Release: 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := New(net, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	overload(s)
	if _, err := s.Run(); err == nil {
		t.Fatal("overload must exceed MaxCycles")
	}
	s.Reset()
	if err := s.Inject(Packet{Src: 0, Dst: 15, SizeFlits: 4, Release: 0}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(net, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Inject(Packet{Src: 0, Dst: 15, SizeFlits: 4, Release: 0}); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("post-failure Reset diverges:\nfresh: %+v\nreset: %+v", want, got)
	}
}

// TestRunTwiceWithoutResetRejected: reuse without Reset is a bug, not a
// silent rerun.
func TestRunTwiceWithoutResetRejected(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	s := newSim(t, net, tab)
	if err := s.Inject(Packet{Src: 0, Dst: 1, SizeFlits: 1, Release: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run without Reset must fail")
	}
}

// TestStatsSurviveReset: Stats returned by Run own their flit counters —
// Reset hands the arrays off instead of zeroing them under the caller.
func TestStatsSurviveReset(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	s := newSim(t, net, tab)
	if err := s.Inject(Packet{Src: 0, Dst: 15, SizeFlits: 3, Release: 0}); err != nil {
		t.Fatal(err)
	}
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var linkSum int64
	for _, v := range first.LinkFlits {
		linkSum += v
	}
	if linkSum == 0 {
		t.Fatal("run carried no link flits")
	}
	s.Reset()
	if err := s.Inject(Packet{Src: 3, Dst: 12, SizeFlits: 1, Release: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var after int64
	for _, v := range first.LinkFlits {
		after += v
	}
	if after != linkSum {
		t.Errorf("first run's LinkFlits mutated by reuse: %d -> %d", linkSum, after)
	}
}

// TestSimPoolReusesInstances: Get after Put returns the pooled instance for
// the same key and a fresh one for a different key; a nil pool still works.
func TestSimPoolReusesInstances(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	pool := NewSimPool()
	a, err := pool.Get(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(a)
	b, err := pool.Get(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same-key Get after Put must reuse the pooled Sim")
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 99
	c, err := pool.Get(net, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c == b {
		t.Error("different config must not share a pooled Sim")
	}
	var nilPool *SimPool
	d, err := nilPool.Get(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nilPool.Put(d) // must not panic
}

// TestLoadLatencyCurvePooledMatchesUnpooled: simulator reuse must not
// change a single bit of a sweep — pooled and pool-less curves are equal.
func TestLoadLatencyCurvePooledMatchesUnpooled(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3)
	tm := traffic.Uniform(net, 0.1)
	w := BernoulliWorkload{SizeFlits: 1, Cycles: 600, Seed: 5}
	cfg := DefaultConfig()
	cfg.MaxCycles = 50000
	rates := []float64{0.05, 0.15, 0.3}
	run := func(sims *SimPool, workers int) []LoadPoint {
		pts, err := LoadLatencyCurveContext(t.Context(), net, tab, tm, rates, w, cfg,
			runner.Config{Workers: workers}, sims)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	base := run(nil, 1)
	for _, workers := range []int{1, 3} {
		if got := run(NewSimPool(), workers); !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: pooled curve diverges:\nbase:   %+v\npooled: %+v", workers, base, got)
		}
	}
	// One pool serving repeated sweeps (the PatternSweep shape).
	shared := NewSimPool()
	for round := 0; round < 3; round++ {
		if got := run(shared, 2); !reflect.DeepEqual(base, got) {
			t.Errorf("round %d: shared-pool curve diverges", round)
		}
	}
}

// TestHeapOrdersReleases: the release heap pops sources in (release, node)
// order whatever the push order.
func TestHeapOrdersReleases(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	s := newSim(t, net, tab)
	pushes := []srcRel{{9, 3}, {1, 7}, {4, 2}, {1, 2}, {9, 0}, {0, 5}, {4, 1}}
	for _, e := range pushes {
		s.heapPush(e)
	}
	want := []srcRel{{0, 5}, {1, 2}, {1, 7}, {4, 1}, {4, 2}, {9, 0}, {9, 3}}
	for i, w := range want {
		if got := s.heapPop(); got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
	_ = tab
}

// TestExpressLatencyStillExact: mixed-latency channels through the arrival
// calendar keep the exact zero-load model — a pure express route on
// 2-clock HyPPI channels.
func TestExpressLatencyStillExact(t *testing.T) {
	net, tab := smallMesh(t, 16, 1, 5)
	s := newSim(t, net, tab)
	src, dst := net.Node(0, 0), net.Node(15, 0)
	if err := s.Inject(Packet{Src: src, Dst: dst, SizeFlits: 1, Release: 0}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(tab.LatencyClks(src, dst, DefaultConfig().PipelineClks))
	if st.AvgPacketLatencyClks != want {
		t.Errorf("latency %v, want %v", st.AvgPacketLatencyClks, want)
	}
}
