package noc

import (
	"errors"
	"fmt"
	"math"
)

// ErrSaturated marks a run aborted at the Config.MaxCycles cap before the
// network drained. Callers distinguish saturation from programming errors
// with errors.Is(err, ErrSaturated); the concrete *SaturatedError carries
// the undrained packet count and the abort cycle.
var ErrSaturated = errors.New("noc: run saturated")

// SaturatedError is the error returned by Run when MaxCycles elapses with
// packets still in flight — deadlock or offered load beyond capacity. The
// Stats returned alongside it are the honest partial census up to Cycles,
// not a silently truncated full run.
type SaturatedError struct {
	// Remaining is the number of injected packets not yet ejected.
	Remaining int64
	// Cycles is the cycle count at which the run was cut.
	Cycles int64
}

// Error implements error.
func (e *SaturatedError) Error() string {
	return fmt.Sprintf("noc: %d packets undrained after %d cycles (deadlock or overload)",
		e.Remaining, e.Cycles)
}

// Unwrap lets errors.Is(err, ErrSaturated) match.
func (e *SaturatedError) Unwrap() error { return ErrSaturated }

// FaultProfile arms per-link flit corruption with link-level NACK and
// retransmission — the BER model of the fault layer. Attach one with
// Sim.SetFaultProfile before Run; Reset disarms it. A nil profile (the
// default) leaves the kernel bit-identical to the faultless simulator.
//
// The model is stop-and-wait per virtual channel: a corrupted traversal
// leaves the flit at the head of its VC (preserving wormhole flit order),
// charges the attempt like a real hop — buffer read, crossbar pass,
// channel flit-hop, all visible to energy pricing — and makes the flit
// eligible again only after the NACK round trip (1 + 2×link latency
// cycles). Corruption draws are a pure hash of (Seed, link, packet, flit,
// cycle), so runs are deterministic and independent of worker scheduling.
type FaultProfile struct {
	// LinkFlitErrorProb[l] is the probability that one flit traversal of
	// channel l is corrupted (detected by the receiver's CRC and NACKed).
	// Must have one entry per network link, each in [0, 1].
	LinkFlitErrorProb []float64
	// Seed drives the deterministic corruption draws.
	Seed int64
	// RetryLimit bounds retransmission attempts per flit per hop. When a
	// flit exhausts the budget the corrupt payload is forwarded anyway and
	// the packet is discarded at its destination, reported in
	// Stats.PacketsDropped — never silently. 0 means retry forever (every
	// flit is eventually delivered, or the run hits MaxCycles and reports
	// ErrSaturated).
	RetryLimit int
}

// faultState is the armed, precomputed form of a FaultProfile.
type faultState struct {
	prob       []float64
	seed       uint64
	retryLimit int32
}

// SetFaultProfile arms (or, with nil, disarms) a fault profile. A profile
// whose probabilities are all zero disarms too, keeping the zero-fault hot
// path free of per-flit checks.
func (s *Sim) SetFaultProfile(fp *FaultProfile) error {
	if fp == nil {
		s.fault = nil
		return nil
	}
	if len(fp.LinkFlitErrorProb) != len(s.net.Links) {
		return fmt.Errorf("noc: fault profile has %d link probabilities, network has %d links",
			len(fp.LinkFlitErrorProb), len(s.net.Links))
	}
	if fp.RetryLimit < 0 {
		return fmt.Errorf("noc: negative retry limit %d", fp.RetryLimit)
	}
	any := false
	for i, p := range fp.LinkFlitErrorProb {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("noc: link %d flit error probability %v out of [0,1]", i, p)
		}
		if p > 0 {
			any = true
		}
	}
	if !any {
		s.fault = nil
		return nil
	}
	prob := make([]float64, len(fp.LinkFlitErrorProb))
	copy(prob, fp.LinkFlitErrorProb)
	s.fault = &faultState{
		prob:       prob,
		seed:       uint64(fp.Seed),
		retryLimit: int32(fp.RetryLimit),
	}
	return nil
}

// splitmix64 is the finalizer step of the SplitMix64 generator, the same
// mixer runner.Seed uses for per-job seed derivation.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// corruptDraw maps (seed, link, packet, flit, cycle) to a uniform value in
// [0, 1): a traversal attempt is corrupted when the draw falls below the
// link's error probability. Including the cycle redraws every retry.
func corruptDraw(seed uint64, lid, pkt, seq int32, now int64) float64 {
	z := splitmix64(seed + uint64(lid)*0x9E3779B97F4A7C15)
	z = splitmix64(z ^ (uint64(uint32(pkt)) | uint64(uint32(seq))<<32))
	z = splitmix64(z ^ uint64(now))
	return float64(z>>11) / (1 << 53)
}

// faultIntercept applies the armed fault profile to one granted channel
// traversal, before the flit is popped. It returns true when the flit was
// corrupted and stays buffered for retransmission; false lets the caller
// send normally — including the give-up case, where a flit whose retry
// budget is exhausted is forwarded corrupt and its packet fails at the
// destination (Stats.PacketsDropped) instead of wedging the worm mid-path.
func (s *Sim) faultIntercept(rid, port, v int, vc *vcState, out *outState) bool {
	lid := out.link
	p := s.fault.prob[lid]
	if p <= 0 {
		return false
	}
	front := vc.q.front()
	if corruptDraw(s.fault.seed, int32(lid), front.f.pkt, front.f.seq, s.now) >= p {
		return false // clean traversal
	}
	if s.fault.retryLimit > 0 && front.tries >= s.fault.retryLimit {
		s.pkts[front.f.pkt].dropped = true
		return false
	}
	// Failed traversal: the channel toggled and the receiver NACKed, so
	// the attempt is charged like a real hop — buffer re-read, crossbar
	// pass, channel flit-hop — plus the retransmission census; the flit
	// stays at the head of its VC, ineligible until the NACK returns.
	front.tries++
	front.ready = s.now + 1 + 2*int64(s.linkLat[lid])
	s.routers[rid].inSAPtr[port] = int32(v + 1)
	s.stats.Activity.BufferReads++
	s.stats.Activity.CrossbarTraversals++
	s.stats.LinkFlits[lid]++
	cls := s.linkClass[lid]
	s.stats.Activity.LinkFlitHops[cls]++
	s.stats.Activity.RetransmittedFlitHops[cls]++
	if s.linkExpr[lid] {
		s.stats.Activity.ExpressFlitHops++
	}
	return true
}
