package noc

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
)

func mesh2D(t testing.TB, hops int) (*topology.Network, *routing.Table) {
	t.Helper()
	c := topology.DefaultConfig()
	c.ExpressHops = hops
	c.ExpressTech = tech.HyPPI
	c.ExpressBothDims = true
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return net, routing.MustBuild(net, routing.MonotoneExpress)
}

// TestExpress2DZeroLoadLatency: vertical express now shortens column
// routes exactly like horizontal express shortens row routes.
func TestExpress2DZeroLoadLatency(t *testing.T) {
	net, tab := mesh2D(t, 3)
	s, err := New(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) -> (0,12): 4 vertical express hops at 5 clks + eject 3 = 23.
	s.Inject(Packet{Src: net.Node(0, 0), Dst: net.Node(0, 12), SizeFlits: 1, Release: 0})
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgPacketLatencyClks != 23 {
		t.Errorf("column express latency %v, want 23", st.AvgPacketLatencyClks)
	}
}

// TestExpress2DTorusHeavyLoadNoDeadlock: hops=15 in both dimensions means
// datelines in X and Y; random all-to-all load must still drain (dateline
// VC classes per dimension with reset at the X→Y transition).
func TestExpress2DTorusHeavyLoadNoDeadlock(t *testing.T) {
	net, tab := mesh2D(t, 15)
	s, err := New(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	horizon := 2500
	if testing.Short() {
		horizon = 500
	}
	for node := 0; node < net.NumNodes(); node++ {
		for cyc := 0; cyc < horizon; cyc++ {
			if rng.Float64() < 0.1/4.0 {
				size := 1
				if rng.Intn(3) == 0 {
					size = 16
				}
				s.Inject(Packet{
					Src:       topology.NodeID(node),
					Dst:       topology.NodeID(rng.Intn(net.NumNodes())),
					SizeFlits: size,
					Release:   int64(cyc),
				})
			}
		}
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.PacketsEjected != st.PacketsInjected {
		t.Errorf("lost packets: %d of %d", st.PacketsEjected, st.PacketsInjected)
	}
}

// TestExpress2DWrapBothDims: a corner-to-corner route on the double-torus
// uses both wrap links: (0,0)→(15,15) is 1 X-wrap + 1 Y-wrap = 2 optical
// hops: 2×(3+2)+3 = 13 clks.
func TestExpress2DWrapBothDims(t *testing.T) {
	net, tab := mesh2D(t, 15)
	s, err := New(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Inject(Packet{Src: net.Node(0, 0), Dst: net.Node(15, 15), SizeFlits: 1, Release: 0})
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgPacketLatencyClks != 13 {
		t.Errorf("double-wrap latency %v, want 13", st.AvgPacketLatencyClks)
	}
	if st.AvgHopCount != 2 {
		t.Errorf("double-wrap hops %v, want 2", st.AvgHopCount)
	}
}

// TestExpress2DColumnTrafficSpeedup: end-to-end column traffic benefits
// from vertical express exactly as row traffic does from horizontal.
func TestExpress2DColumnTrafficSpeedup(t *testing.T) {
	run := func(bothDims bool) float64 {
		c := topology.DefaultConfig()
		c.ExpressHops = 5
		c.ExpressTech = tech.HyPPI
		c.ExpressBothDims = bothDims
		net := topology.MustBuild(c)
		tab := routing.MustBuild(net, routing.MonotoneExpress)
		s, err := New(net, tab, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 300; i++ {
			x := rng.Intn(16)
			s.Inject(Packet{
				Src:       net.Node(x, 0),
				Dst:       net.Node(x, 15),
				SizeFlits: 1,
				Release:   int64(rng.Intn(3000)),
			})
		}
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.AvgPacketLatencyClks
	}
	oneD := run(false)
	twoD := run(true)
	if twoD >= oneD {
		t.Errorf("2-D express column latency %v should beat 1-D %v", twoD, oneD)
	}
	if oneD/twoD < 1.5 {
		t.Errorf("column traffic should gain clearly: %v vs %v", oneD, twoD)
	}
}
