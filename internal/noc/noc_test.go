package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
)

func smallMesh(t testing.TB, w, h, hops int) (*topology.Network, *routing.Table) {
	t.Helper()
	c := topology.DefaultConfig()
	c.Width, c.Height = w, h
	c.ExpressHops = hops
	c.ExpressTech = tech.HyPPI
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return net, routing.MustBuild(net, routing.MonotoneExpress)
}

func newSim(t testing.TB, net *topology.Network, tab *routing.Table) *Sim {
	t.Helper()
	s, err := New(net, tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestZeroLoadLatencyMatchesAnalytic: a single packet's simulated latency
// must equal the routing table's zero-load model exactly: hops×(pipeline +
// link latency) + pipeline, plus serialization for multi-flit packets.
func TestZeroLoadLatencyMatchesAnalytic(t *testing.T) {
	net, tab := smallMesh(t, 16, 16, 3)
	cases := []struct {
		src, dst topology.NodeID
		size     int
	}{
		{net.Node(0, 0), net.Node(1, 0), 1},
		{net.Node(0, 0), net.Node(12, 0), 1},  // pure express route
		{net.Node(2, 3), net.Node(9, 11), 1},  // mixed route
		{net.Node(0, 0), net.Node(1, 0), 32},  // serialization
		{net.Node(5, 5), net.Node(5, 5), 1},   // self delivery
		{net.Node(15, 15), net.Node(0, 0), 8}, // long reverse route
	}
	for _, c := range cases {
		s := newSim(t, net, tab)
		if err := s.Inject(Packet{Src: c.src, Dst: c.dst, SizeFlits: c.size, Release: 0}); err != nil {
			t.Fatal(err)
		}
		st, err := s.Run()
		if err != nil {
			t.Fatalf("%d->%d: %v", c.src, c.dst, err)
		}
		want := int64(tab.LatencyClks(c.src, c.dst, 3) + c.size - 1)
		if int64(st.AvgPacketLatencyClks) != want {
			t.Errorf("%d->%d size %d: latency %v, want %d",
				c.src, c.dst, c.size, st.AvgPacketLatencyClks, want)
		}
	}
}

// TestFlitConservation: everything injected must eject, exactly once.
func TestFlitConservation(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3)
	s := newSim(t, net, tab)
	rng := rand.New(rand.NewSource(7))
	var totalFlits int64
	const packets = 500
	for i := 0; i < packets; i++ {
		size := 1
		if rng.Intn(2) == 0 {
			size = 32
		}
		src := topology.NodeID(rng.Intn(net.NumNodes()))
		dst := topology.NodeID(rng.Intn(net.NumNodes()))
		totalFlits += int64(size)
		if err := s.Inject(Packet{Src: src, Dst: dst, SizeFlits: size, Release: int64(rng.Intn(2000))}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.PacketsInjected != packets || st.PacketsEjected != packets {
		t.Errorf("packets: injected %d, ejected %d, want %d", st.PacketsInjected, st.PacketsEjected, packets)
	}
	if st.FlitsInjected != totalFlits || st.FlitsEjected != totalFlits {
		t.Errorf("flits: injected %d, ejected %d, want %d", st.FlitsInjected, st.FlitsEjected, totalFlits)
	}
	// Channel traversals match ejections plus per-hop counts: every
	// link flit must also eject, so Σ RouterFlits = FlitsEjected + Σ LinkFlits.
	var linkSum, routerSum int64
	for _, v := range st.LinkFlits {
		linkSum += v
	}
	for _, v := range st.RouterFlits {
		routerSum += v
	}
	if routerSum != st.FlitsInjected+linkSum {
		t.Errorf("router traversals %d != injected %d + link traversals %d", routerSum, st.FlitsInjected, linkSum)
	}
}

// TestDeterminism: identical inputs give bit-identical statistics.
func TestDeterminism(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3)
	run := func() Stats {
		s := newSim(t, net, tab)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 300; i++ {
			s.Inject(Packet{
				Src:       topology.NodeID(rng.Intn(net.NumNodes())),
				Dst:       topology.NodeID(rng.Intn(net.NumNodes())),
				SizeFlits: 1 + rng.Intn(31),
				Release:   int64(rng.Intn(500)),
			})
		}
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.AvgPacketLatencyClks != b.AvgPacketLatencyClks ||
		a.MaxPacketLatencyClks != b.MaxPacketLatencyClks || a.FlitsEjected != b.FlitsEjected {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.LinkFlits {
		if a.LinkFlits[i] != b.LinkFlits[i] {
			t.Fatalf("link %d flit count differs", i)
		}
	}
}

// TestSinglePacketPathAccounting: link and router flit counters follow the
// routed path exactly.
func TestSinglePacketPathAccounting(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 0)
	s := newSim(t, net, tab)
	src, dst := net.Node(1, 1), net.Node(4, 5)
	const size = 5
	s.Inject(Packet{Src: src, Dst: dst, SizeFlits: size, Release: 0})
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := tab.Path(src, dst)
	onPath := map[topology.LinkID]bool{}
	for _, lid := range path {
		onPath[lid] = true
	}
	for lid, count := range st.LinkFlits {
		want := int64(0)
		if onPath[topology.LinkID(lid)] {
			want = size
		}
		if count != want {
			t.Errorf("link %d carried %d flits, want %d", lid, count, want)
		}
	}
	// Each flit traverses hops+1 routers.
	var routerSum int64
	for _, v := range st.RouterFlits {
		routerSum += v
	}
	if want := int64(size * (len(path) + 1)); routerSum != want {
		t.Errorf("router traversals %d, want %d", routerSum, want)
	}
	if st.AvgHopCount != float64(len(path)) {
		t.Errorf("hop count %v, want %d", st.AvgHopCount, len(path))
	}
}

// TestSelfDeliveryUsesNoLinks: src == dst packets never touch a channel.
func TestSelfDeliveryUsesNoLinks(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	s := newSim(t, net, tab)
	s.Inject(Packet{Src: 5, Dst: 5, SizeFlits: 3, Release: 0})
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for lid, c := range st.LinkFlits {
		if c != 0 {
			t.Errorf("link %d carried %d flits for a self delivery", lid, c)
		}
	}
	if st.AvgHopCount != 0 {
		t.Errorf("self delivery hop count %v", st.AvgHopCount)
	}
}

// TestContentionRaisesLatency: many nodes hammering one destination drain
// correctly with latencies above zero load.
func TestContentionRaisesLatency(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 0)
	s := newSim(t, net, tab)
	dst := net.Node(4, 4)
	for n := 0; n < net.NumNodes(); n++ {
		if topology.NodeID(n) == dst {
			continue
		}
		for k := 0; k < 4; k++ {
			s.Inject(Packet{Src: topology.NodeID(n), Dst: dst, SizeFlits: 8, Release: 0})
		}
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 63 sources × 4 packets × 8 flits into one ejection port: the sink
	// drains 1 flit/cycle, so the run needs at least 2016 cycles.
	if st.Cycles < 2016 {
		t.Errorf("hotspot drained impossibly fast: %d cycles", st.Cycles)
	}
	if st.AvgPacketLatencyClks < 100 {
		t.Errorf("hotspot latency %v suspiciously low", st.AvgPacketLatencyClks)
	}
	if st.PacketsEjected != 63*4 {
		t.Errorf("ejected %d packets, want %d", st.PacketsEjected, 63*4)
	}
}

// TestExpressLinksCutSimulatedLatency: the paper's core claim at the
// simulator level — long-range traffic completes faster with express links.
func TestExpressLinksCutSimulatedLatency(t *testing.T) {
	run := func(hops int) float64 {
		net, tab := smallMesh(t, 16, 16, hops)
		s := newSim(t, net, tab)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 400; i++ {
			// Row-end to row-end traffic: maximally long-range.
			y := rng.Intn(16)
			s.Inject(Packet{
				Src:       net.Node(0, y),
				Dst:       net.Node(15, rng.Intn(16)),
				SizeFlits: 1,
				Release:   int64(rng.Intn(4000)),
			})
		}
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.AvgPacketLatencyClks
	}
	plain := run(0)
	express := run(15)
	if express >= plain {
		t.Errorf("express latency %v should beat plain %v for long-range traffic", express, plain)
	}
	if plain/express < 1.2 {
		t.Errorf("expected a clear win, got %v vs %v", plain, express)
	}
}

// TestBackpressure: a source bursting into a single path respects buffer
// bounds (no flit loss, drains).
func TestBackpressure(t *testing.T) {
	net, tab := smallMesh(t, 4, 1, 0)
	s := newSim(t, net, tab)
	for i := 0; i < 50; i++ {
		s.Inject(Packet{Src: 0, Dst: 3, SizeFlits: 32, Release: 0})
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.FlitsEjected != 50*32 {
		t.Errorf("ejected %d flits, want %d", st.FlitsEjected, 50*32)
	}
	// Pipeline throughput: ejection drains 1 flit/cycle, so ≥1600 cycles.
	if st.Cycles < 1600 {
		t.Errorf("burst drained in %d cycles, impossible under 1 flit/cycle ejection", st.Cycles)
	}
}

// TestMaxCyclesGuard: an unreachable drain reports an error instead of
// spinning forever.
func TestMaxCyclesGuard(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	cfg := DefaultConfig()
	cfg.MaxCycles = 10
	s, err := New(net, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.Inject(Packet{Src: 0, Dst: 15, SizeFlits: 32, Release: 0})
	}
	if _, err := s.Run(); err == nil {
		t.Error("expected MaxCycles error")
	}
}

func TestInjectValidation(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	s := newSim(t, net, tab)
	if err := s.Inject(Packet{Src: 0, Dst: 1, SizeFlits: 0}); err == nil {
		t.Error("zero size must fail")
	}
	if err := s.Inject(Packet{Src: 0, Dst: 99, SizeFlits: 1}); err == nil {
		t.Error("out-of-range dst must fail")
	}
	if err := s.Inject(Packet{Src: -1, Dst: 1, SizeFlits: 1}); err == nil {
		t.Error("out-of-range src must fail")
	}
	if err := s.Inject(Packet{Src: 0, Dst: 1, SizeFlits: 1, Release: -5}); err == nil {
		t.Error("negative release must fail")
	}
}

func TestConfigValidation(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	bad := []Config{
		{VCs: 0, BufDepthFlits: 8, PipelineClks: 3},
		{VCs: 4, BufDepthFlits: 0, PipelineClks: 3},
		{VCs: 4, BufDepthFlits: 8, PipelineClks: 0},
	}
	for i, c := range bad {
		if _, err := New(net, tab, c); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

func TestMismatchedTableRejected(t *testing.T) {
	netA, _ := smallMesh(t, 4, 4, 0)
	_, tabB := smallMesh(t, 4, 4, 0)
	if _, err := New(netA, tabB, DefaultConfig()); err == nil {
		t.Error("table for another network must be rejected")
	}
}

// TestIdleGapFastForward: trace gaps are skipped, not simulated — a packet
// released at cycle 10^9 still completes promptly in wall time.
func TestIdleGapFastForward(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	s := newSim(t, net, tab)
	s.Inject(Packet{Src: 0, Dst: 1, SizeFlits: 1, Release: 0})
	s.Inject(Packet{Src: 0, Dst: 1, SizeFlits: 1, Release: 1_000_000_000})
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles < 1_000_000_000 {
		t.Errorf("clock did not advance past the gap: %d", st.Cycles)
	}
	// Latency of the late packet is still zero-load (7 clks), so the
	// average of both is 7.
	if st.AvgPacketLatencyClks != 7 {
		t.Errorf("avg latency %v, want 7", st.AvgPacketLatencyClks)
	}
}

// TestConservationProperty: random workloads always drain and conserve
// flits (property-based).
func TestConservationProperty(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	f := func(seed int64, n uint8) bool {
		s, err := New(net, tab, DefaultConfig())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		total := int64(0)
		count := int(n%50) + 1
		for i := 0; i < count; i++ {
			size := 1 + rng.Intn(32)
			total += int64(size)
			if err := s.Inject(Packet{
				Src:       topology.NodeID(rng.Intn(16)),
				Dst:       topology.NodeID(rng.Intn(16)),
				SizeFlits: size,
				Release:   int64(rng.Intn(100)),
			}); err != nil {
				return false
			}
		}
		st, err := s.Run()
		if err != nil {
			return false
		}
		return st.FlitsEjected == total && st.PacketsEjected == int64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHeavyRandomLoadNoDeadlock: 16×16 express topology at the paper's 0.1
// injection rate for a sustained window must drain (deadlock freedom of the
// monotone policy under VC flow control).
func TestHeavyRandomLoadNoDeadlock(t *testing.T) {
	net, tab := smallMesh(t, 16, 16, 3)
	s := newSim(t, net, tab)
	rng := rand.New(rand.NewSource(11))
	horizon := 3000
	if testing.Short() {
		horizon = 500
	}
	for node := 0; node < net.NumNodes(); node++ {
		for cyc := 0; cyc < horizon; cyc++ {
			if rng.Float64() < 0.1/4.0 { // ~0.1 flits/cycle with avg 4-flit packets
				size := 1
				if rng.Intn(4) == 0 {
					size = 13
				}
				s.Inject(Packet{
					Src:       topology.NodeID(node),
					Dst:       topology.NodeID(rng.Intn(net.NumNodes())),
					SizeFlits: size,
					Release:   int64(cyc),
				})
			}
		}
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.PacketsEjected != st.PacketsInjected {
		t.Errorf("lost packets: %d vs %d", st.PacketsEjected, st.PacketsInjected)
	}
	if st.AvgPacketLatencyClks <= 0 {
		t.Error("latency must be positive")
	}
}
