package noc

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/topology"
)

// TestClosedLoopZeroDepsMatchesOpenLoop: a dependency-free batch through
// InjectClosedLoop must be bit-identical to the same packets through
// InjectAll — the closed-loop machinery (stale-wake filter, stall guard,
// completion hooks) must be invisible when no packet has predecessors.
func TestClosedLoopZeroDepsMatchesOpenLoop(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3)
	rng := rand.New(rand.NewSource(11))
	var pkts []Packet
	for i := 0; i < 400; i++ {
		src := topology.NodeID(rng.Intn(net.NumNodes()))
		dst := topology.NodeID(rng.Intn(net.NumNodes()))
		size := 1 + rng.Intn(8)
		pkts = append(pkts, Packet{Src: src, Dst: dst, SizeFlits: size, Release: int64(rng.Intn(200))})
	}

	open := newSim(t, net, tab)
	if err := open.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	so, err := open.Run()
	if err != nil {
		t.Fatal(err)
	}

	closed := newSim(t, net, tab)
	if err := closed.InjectClosedLoop(pkts, make([][]int, len(pkts))); err != nil {
		t.Fatal(err)
	}
	sc, err := closed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(so, sc) {
		t.Errorf("closed-loop zero-dep stats diverge from open loop:\nopen:   %+v\nclosed: %+v", so, sc)
	}
	if sc.MakespanClks <= 0 {
		t.Errorf("MakespanClks = %d, want > 0", sc.MakespanClks)
	}
}

// TestClosedLoopChainSerializes: a three-message chain A→B→C on disjoint
// node pairs must complete strictly in order, each link adding its zero-load
// latency plus the compute offset — the release of a dependent packet is
// its predecessor's tail ejection plus the offset, nothing earlier.
func TestClosedLoopChainSerializes(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 0)
	const size = 4
	const compute = 10
	chain := []Packet{
		{Src: net.Node(0, 0), Dst: net.Node(3, 0), SizeFlits: size, Release: 0},
		{Src: net.Node(3, 0), Dst: net.Node(6, 0), SizeFlits: size, Release: compute},
		{Src: net.Node(6, 0), Dst: net.Node(6, 3), SizeFlits: size, Release: compute},
	}
	deps := [][]int{nil, {0}, {1}}
	s := newSim(t, net, tab)
	if err := s.InjectClosedLoop(chain, deps); err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	lat := func(p Packet) int64 {
		return int64(tab.LatencyClks(p.Src, p.Dst, DefaultConfig().PipelineClks) + p.SizeFlits - 1)
	}
	want := lat(chain[0]) + compute + lat(chain[1]) + compute + lat(chain[2])
	if st.MakespanClks != want {
		t.Errorf("chain makespan %d, want %d (zero-load serial sum)", st.MakespanClks, want)
	}
	if st.PacketsEjected != 3 {
		t.Errorf("ejected %d packets, want 3", st.PacketsEjected)
	}
	// Each packet's network latency must exclude the compute offsets.
	if got, want := st.MaxPacketLatencyClks, max(lat(chain[0]), lat(chain[1]), lat(chain[2])); got != want {
		t.Errorf("max latency %d, want %d (pure network latency)", got, want)
	}
}

// TestClosedLoopCycleStalls: a dependency cycle that bypasses
// taskgraph.Validate must surface as a named stall error from Run, not a
// spin to MaxCycles.
func TestClosedLoopCycleStalls(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	pkts := []Packet{
		{Src: net.Node(0, 0), Dst: net.Node(1, 0), SizeFlits: 1},
		{Src: net.Node(1, 0), Dst: net.Node(2, 0), SizeFlits: 1},
	}
	s := newSim(t, net, tab)
	if err := s.InjectClosedLoop(pkts, [][]int{{1}, {0}}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "closed-loop stall") {
		t.Fatalf("Run on cyclic deps = %v, want closed-loop stall error", err)
	}
}

// TestClosedLoopValidation: malformed batches are rejected up front, and
// injection modes cannot be mixed within one run.
func TestClosedLoopValidation(t *testing.T) {
	net, tab := smallMesh(t, 4, 4, 0)
	ok := Packet{Src: 0, Dst: 1, SizeFlits: 1}
	cases := []struct {
		name string
		ps   []Packet
		deps [][]int
	}{
		{"dep count mismatch", []Packet{ok}, nil},
		{"dep out of range", []Packet{ok}, [][]int{{3}}},
		{"self dependency", []Packet{ok}, [][]int{{0}}},
		{"bad size", []Packet{{Src: 0, Dst: 1, SizeFlits: 0}}, [][]int{nil}},
		{"bad endpoint", []Packet{{Src: 0, Dst: 99, SizeFlits: 1}}, [][]int{nil}},
		{"negative offset", []Packet{{Src: 0, Dst: 1, SizeFlits: 1, Release: -1}}, [][]int{nil}},
	}
	for _, c := range cases {
		s := newSim(t, net, tab)
		if err := s.InjectClosedLoop(c.ps, c.deps); err == nil {
			t.Errorf("%s: InjectClosedLoop accepted a malformed batch", c.name)
		}
	}

	s := newSim(t, net, tab)
	if err := s.InjectClosedLoop([]Packet{ok}, [][]int{nil}); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(ok); err == nil {
		t.Error("Inject after InjectClosedLoop accepted")
	}
	if err := s.InjectClosedLoop([]Packet{ok}, [][]int{nil}); err == nil {
		t.Error("second InjectClosedLoop accepted")
	}
}

// TestClosedLoopResetReuse: a Reset simulator re-running the same DAG must
// reproduce the first run bit-identically, and an open-loop run after a
// closed-loop one must carry no dependency state over.
func TestClosedLoopResetReuse(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 3)
	pkts := []Packet{
		{Src: net.Node(0, 0), Dst: net.Node(7, 7), SizeFlits: 8, Release: 0},
		{Src: net.Node(7, 7), Dst: net.Node(0, 7), SizeFlits: 8, Release: 5},
		{Src: net.Node(0, 7), Dst: net.Node(7, 0), SizeFlits: 8, Release: 5},
	}
	deps := [][]int{nil, {0}, {1}}

	s := newSim(t, net, tab)
	if err := s.InjectClosedLoop(pkts, deps); err != nil {
		t.Fatal(err)
	}
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	s.Reset()
	if err := s.InjectClosedLoop(pkts, deps); err != nil {
		t.Fatal(err)
	}
	second, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("closed-loop rerun after Reset diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}

	s.Reset()
	if err := s.Inject(pkts[0]); err != nil {
		t.Fatalf("open-loop Inject after closed-loop Reset: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClosedLoopFanInCongestion: many concurrent senders converging on one
// destination serialize at its ejection port, so the fan-in's makespan must
// exceed the slowest sender's isolated zero-load finish — congestion is
// feeding back into the completion times a closed-loop schedule observes.
func TestClosedLoopFanInCongestion(t *testing.T) {
	net, tab := smallMesh(t, 8, 8, 0)
	root := net.Node(0, 0)
	var pkts []Packet
	const size = 16
	for id := 1; id < net.NumNodes(); id++ {
		pkts = append(pkts, Packet{Src: topology.NodeID(id), Dst: root, SizeFlits: size})
	}
	s := newSim(t, net, tab)
	if err := s.InjectClosedLoop(pkts, make([][]int, len(pkts))); err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var worstAlone int64
	for _, p := range pkts {
		if l := int64(tab.LatencyClks(p.Src, p.Dst, DefaultConfig().PipelineClks) + size - 1); l > worstAlone {
			worstAlone = l
		}
	}
	// 63 packets × 16 flits through one ejection port cannot beat the
	// serialization bound, which is far beyond any single zero-load path.
	if st.MakespanClks <= worstAlone {
		t.Errorf("fan-in makespan %d ≤ isolated worst path %d: no congestion feedback visible",
			st.MakespanClks, worstAlone)
	}
	if serial := int64(len(pkts) * size); st.MakespanClks < serial {
		t.Errorf("fan-in makespan %d below the %d-flit ejection serialization bound", st.MakespanClks, serial)
	}
}
