// Package noc is a cycle-accurate network-on-chip simulator equivalent in
// role to BookSim 2.0 (Jiang et al., ISPASS 2013), which the paper uses in
// trace mode for its NAS-benchmark latency results.
//
// The microarchitecture follows the paper's Table II:
//
//   - input-queued virtual-channel routers, 4 VCs × 8-flit buffers per port
//   - a 3-stage router pipeline (route computation / VC allocation, switch
//     allocation, switch traversal)
//   - credit-based flow control between routers
//   - separable round-robin allocators (input-first for switch allocation)
//   - table-based oblivious routing (the routing package's tables)
//   - channel latency of 1 clock for electronic links and 2 clocks for
//     optical links (the extra cycle is the receiver's O-E conversion)
//   - one local injection and one ejection port per router; ejection is an
//     ideal sink
//
// The simulator is synchronous and strictly deterministic: all state is
// iterated in index order and every arbiter is round-robin, so identical
// inputs give bit-identical results.
package noc

import (
	"fmt"
	"sort"

	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Config sizes the router microarchitecture.
type Config struct {
	// VCs is virtual channels per port (Table II: 4).
	VCs int
	// BufDepthFlits is the flit capacity of each VC buffer (Table II: 8).
	BufDepthFlits int
	// PipelineClks is the router pipeline depth (Table II: 3).
	PipelineClks int
	// MaxCycles aborts a run that fails to drain (0 = default cap).
	MaxCycles int64
}

// DefaultConfig returns the Table II router configuration.
func DefaultConfig() Config {
	return Config{VCs: 4, BufDepthFlits: 8, PipelineClks: 3}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.VCs <= 0 || c.BufDepthFlits <= 0 || c.PipelineClks <= 0 {
		return fmt.Errorf("noc: non-positive config %+v", c)
	}
	return nil
}

// Packet is one network packet to inject.
type Packet struct {
	// Src and Dst are the endpoint nodes.
	Src, Dst topology.NodeID
	// SizeFlits is the packet length (the paper uses 1 and 32).
	SizeFlits int
	// Release is the cycle at which the packet becomes ready at the
	// source queue.
	Release int64
}

// Stats summarizes a run.
type Stats struct {
	// Cycles is the cycle count at drain.
	Cycles int64
	// PacketsInjected and PacketsEjected count whole packets.
	PacketsInjected, PacketsEjected int64
	// FlitsInjected and FlitsEjected count flits.
	FlitsInjected, FlitsEjected int64
	// AvgPacketLatencyClks averages (tail ejection − release) over
	// packets, BookSim's packet latency.
	AvgPacketLatencyClks float64
	// MaxPacketLatencyClks is the worst packet latency.
	MaxPacketLatencyClks int64
	// AvgHopCount averages channel traversals per packet.
	AvgHopCount float64
	// P50, P95 and P99 are packet latency percentiles in clocks.
	P50PacketLatencyClks, P95PacketLatencyClks, P99PacketLatencyClks float64
	// LinkFlits[l] counts flit traversals of channel l — the input to
	// dynamic energy accounting.
	LinkFlits []int64
	// RouterFlits[r] counts flits traversing each router (buffer write +
	// crossbar pass), including injection and ejection.
	RouterFlits []int64
}

// flit is the unit of flow control.
type flit struct {
	pkt  int32 // index into Sim.pkts
	seq  int32 // flit index within packet
	vc   int8  // VC assigned for the current hop
	cls  int8  // dateline VC class (0 before wrap, 1 after)
	head bool
	tail bool
}

// bufEntry is a buffered flit plus the cycle it becomes eligible for switch
// allocation (modelling the first two pipeline stages).
type bufEntry struct {
	f     flit
	ready int64
}

// ring is a fixed-capacity circular FIFO. The simulator's queues are all
// bounded (VC buffers by BufDepthFlits, channels by the credit loop), so
// after New the hot path performs no queue allocations; grow exists only as
// a defensive fallback should a bound ever be exceeded.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func newRing[T any](capacity int) ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) len() int  { return r.n }
func (r *ring[T]) front() *T { return &r.buf[r.head] }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

func (r *ring[T]) grow() {
	buf := make([]T, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf = buf
	r.head = 0
}

// vcState is one input virtual channel.
type vcState struct {
	q ring[bufEntry]
	// routed marks that the head packet has a computed output.
	routed bool
	// outPort is the routed output port index (0 = ejection).
	outPort int16
	// outVC is the allocated downstream VC (-1 = none yet).
	outVC int8
	// outCls is the VC class required downstream: the head flit's class,
	// incremented when the routed channel is a dateline (row wrap).
	outCls int8
	// writer is the packet currently being written into this VC at the
	// injection port (-1 = none); prevents interleaving on write.
	writer int32
}

// outState is one output port.
type outState struct {
	// link is the channel this output drives (-1 for ejection).
	link topology.LinkID
	// credits[v] is remaining buffer space at the downstream VC v.
	credits []int16
	// owner[v] is the input VC (packed port*VCs+vc) owning output VC v,
	// -1 when free.
	owner []int32
	// saPtr is the output-side round-robin pointer over input ports.
	saPtr int
	// vaPtr is the VC-allocation round-robin pointer over requesters.
	vaPtr int
	// classed marks channels under dateline VC partitioning: only the
	// X channels of wrapped rows can form ring cycles, so only they are
	// partitioned; Y channels and ejection stay unrestricted.
	classed bool
}

// router is one node's switch.
type router struct {
	id topology.NodeID
	// in[p][v]: input VC v of port p; port 0 is injection.
	in [][]vcState
	// out[p]: output port p; port 0 is ejection.
	out []outState
	// inSAPtr is the per-input-port round-robin pointer over VCs.
	inSAPtr []int
	// inIsX[p] marks input ports fed by horizontal channels; used to
	// reset the dateline class at the X→Y dimension transition so one
	// class bit suffices for both dimensions' rings.
	inIsX []bool
	// outIsY[p] marks output ports driving vertical channels.
	outIsY []bool
}

// linkPipe carries in-flight flits over one channel.
type linkPipe struct {
	q ring[linkEntry]
}

type linkEntry struct {
	f      flit
	arrive int64
}

// pktMeta is per-packet runtime accounting.
type pktMeta struct {
	Packet
	flitsEjected int32
	hops         int32
	done         bool
}

// Sim is one simulation instance. It is not safe for concurrent use;
// parallelize across Sim instances.
type Sim struct {
	net *topology.Network
	tab *routing.Table
	cfg Config

	routers []router
	pipes   []linkPipe
	// inPortOf[l] is the input port index of link l at its Dst router;
	// outPortOf[l] is the output port index at its Src router.
	inPortOf  []int16
	outPortOf []int16

	pkts    []pktMeta
	sources [][]int32 // per node: packet indices in release order
	srcPos  []int     // per node: next packet to inject
	srcFlit []int32   // per node: next flit seq of current packet
	srcVC   []int8    // per node: VC carrying the current packet (-1)

	now       int64
	stats     Stats
	latSum    float64
	latencies stats.Sample
	credits   []creditEvent

	// Activity tracking lets idle stretches be skipped and idle routers
	// bypassed: buffered counts flits in input buffers per router,
	// inflight counts flits on channels.
	buffered []int32
	totalBuf int64
	inflight int64
	scratch  []int32
	// cand is the switch allocator's per-cycle candidate scratch (one slot
	// per input port of the widest router), reused across cycles.
	cand []int

	// classed enables dateline VC-class partitioning: required for the
	// torus-like hops = Width−1 topology, where packets crossing a row
	// wrap switch to the upper half of the VC pool to break ring cycles.
	classed bool
	// class0VCs is the size of the class-0 partition.
	class0VCs int8
}

type creditEvent struct {
	r    int32
	port int16
	vc   int8
}

// New builds a simulator for a network and routing table.
func New(net *topology.Network, tab *routing.Table, cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tab.Net() != net {
		return nil, fmt.Errorf("noc: routing table built for a different network")
	}
	if net.HasDateline() && cfg.VCs < 2 {
		return nil, fmt.Errorf("noc: torus-like topology needs ≥2 VCs for dateline classes, have %d", cfg.VCs)
	}
	n := net.NumNodes()
	s := &Sim{
		net:       net,
		tab:       tab,
		cfg:       cfg,
		routers:   make([]router, n),
		pipes:     make([]linkPipe, len(net.Links)),
		inPortOf:  make([]int16, len(net.Links)),
		outPortOf: make([]int16, len(net.Links)),
		sources:   make([][]int32, n),
		srcPos:    make([]int, n),
		srcFlit:   make([]int32, n),
		srcVC:     make([]int8, n),
		buffered:  make([]int32, n),
	}
	s.stats.LinkFlits = make([]int64, len(net.Links))
	s.stats.RouterFlits = make([]int64, n)
	s.classed = net.HasDateline()
	// Class 1 (post-wrap) packets are the rare case: give them the top
	// VC only and keep the rest for class 0, minimizing the partition
	// penalty on non-wrapping traffic.
	s.class0VCs = int8(cfg.VCs - 1)
	for i := range s.srcVC {
		s.srcVC[i] = -1
	}
	for id := 0; id < n; id++ {
		node := topology.NodeID(id)
		inLinks := net.InLinks(node)
		outLinks := net.OutLinks(node)
		r := router{
			id:      node,
			in:      make([][]vcState, 1+len(inLinks)),
			out:     make([]outState, 1+len(outLinks)),
			inSAPtr: make([]int, 1+len(inLinks)),
			inIsX:   make([]bool, 1+len(inLinks)),
			outIsY:  make([]bool, 1+len(outLinks)),
		}
		for p := range r.in {
			r.in[p] = make([]vcState, cfg.VCs)
			for v := range r.in[p] {
				r.in[p][v].q = newRing[bufEntry](cfg.BufDepthFlits)
				r.in[p][v].outVC = -1
				r.in[p][v].writer = -1
			}
		}
		if len(r.in) > len(s.cand) {
			s.cand = make([]int, len(r.in))
		}
		// Output 0: ejection (ideal sink, no credit bound).
		r.out[0] = outState{link: -1}
		for i, lid := range outLinks {
			credits := make([]int16, cfg.VCs)
			owner := make([]int32, cfg.VCs)
			for v := range credits {
				credits[v] = int16(cfg.BufDepthFlits)
				owner[v] = -1
			}
			l := net.Links[lid]
			r.out[1+i] = outState{
				link:    lid,
				credits: credits,
				owner:   owner,
				classed: (net.HasDatelineX() && l.DX(net) != 0) ||
					(net.HasDatelineY() && l.DY(net) != 0),
			}
			r.outIsY[1+i] = l.DY(net) != 0
			s.outPortOf[lid] = int16(1 + i)
		}
		for i, lid := range inLinks {
			s.inPortOf[lid] = int16(1 + i)
			r.inIsX[1+i] = net.Links[lid].DX(net) != 0
		}
		// Ejection owner bookkeeping still needed for VC allocation.
		r.out[0].credits = nil
		ej := make([]int32, cfg.VCs)
		for v := range ej {
			ej[v] = -1
		}
		r.out[0].owner = ej
		s.routers[id] = r
	}
	// Credit-based flow control bounds in-flight flits per channel at the
	// downstream buffer pool, so the pipes never grow past this capacity.
	for i := range s.pipes {
		s.pipes[i].q = newRing[linkEntry](cfg.VCs * cfg.BufDepthFlits)
	}
	return s, nil
}

// Inject queues a packet for injection. Must be called before Run.
func (s *Sim) Inject(p Packet) error {
	if p.SizeFlits <= 0 {
		return fmt.Errorf("noc: packet size %d", p.SizeFlits)
	}
	if int(p.Src) < 0 || int(p.Src) >= s.net.NumNodes() ||
		int(p.Dst) < 0 || int(p.Dst) >= s.net.NumNodes() {
		return fmt.Errorf("noc: endpoints %d->%d out of range", p.Src, p.Dst)
	}
	if p.Release < 0 {
		return fmt.Errorf("noc: negative release %d", p.Release)
	}
	idx := int32(len(s.pkts))
	s.pkts = append(s.pkts, pktMeta{Packet: p})
	s.sources[p.Src] = append(s.sources[p.Src], idx)
	return nil
}

// InjectAll queues a batch of packets.
func (s *Sim) InjectAll(ps []Packet) error {
	for _, p := range ps {
		if err := s.Inject(p); err != nil {
			return err
		}
	}
	return nil
}

// Run simulates until every injected packet has fully ejected, or MaxCycles
// elapses (an error: the network failed to drain).
func (s *Sim) Run() (Stats, error) {
	// Stable order: by release cycle, then insertion order.
	for node := range s.sources {
		q := s.sources[node]
		sort.SliceStable(q, func(i, j int) bool {
			return s.pkts[q[i]].Release < s.pkts[q[j]].Release
		})
	}
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 40
	}
	s.latencies.Grow(len(s.pkts))
	remaining := int64(len(s.pkts))
	for remaining > 0 {
		if s.now >= maxCycles {
			return s.stats, fmt.Errorf("noc: %d packets undrained after %d cycles (deadlock or overload)",
				remaining, s.now)
		}
		// Fast-forward across fully idle stretches (gaps between trace
		// bursts): nothing buffered, nothing in flight — jump to the
		// earliest pending release.
		if s.totalBuf == 0 && s.inflight == 0 {
			next := int64(-1)
			for node := range s.sources {
				if pos := s.srcPos[node]; pos < len(s.sources[node]) {
					rel := s.pkts[s.sources[node][pos]].Release
					if next < 0 || rel < next {
						next = rel
					}
				}
			}
			if next > s.now {
				s.now = next
			}
		}
		s.deliverLinkArrivals()
		s.injectFromSources()
		s.routeAndAllocateVCs()
		ejected := s.switchAllocateAndSend()
		s.applyCredits()
		remaining -= ejected
		s.now++
	}
	s.stats.Cycles = s.now
	if s.stats.PacketsEjected > 0 {
		s.stats.AvgPacketLatencyClks = s.latSum / float64(s.stats.PacketsEjected)
		s.stats.P50PacketLatencyClks = s.latencies.Quantile(0.50)
		s.stats.P95PacketLatencyClks = s.latencies.Quantile(0.95)
		s.stats.P99PacketLatencyClks = s.latencies.Quantile(0.99)
	}
	var hops int64
	for _, p := range s.pkts {
		hops += int64(p.hops)
	}
	if len(s.pkts) > 0 {
		s.stats.AvgHopCount = float64(hops) / float64(len(s.pkts))
	}
	return s.stats, nil
}

// deliverLinkArrivals moves flits whose channel delay elapsed into the
// downstream input buffers. Credits were reserved at send time, so space is
// guaranteed.
func (s *Sim) deliverLinkArrivals() {
	for lid := range s.pipes {
		pipe := &s.pipes[lid]
		for pipe.q.len() > 0 && pipe.q.front().arrive <= s.now {
			e := pipe.q.pop()
			l := s.net.Links[lid]
			r := &s.routers[l.Dst]
			port := s.inPortOf[lid]
			vc := &r.in[port][e.f.vc]
			vc.q.push(bufEntry{f: e.f, ready: s.now + int64(s.cfg.PipelineClks) - 1})
			s.stats.RouterFlits[l.Dst]++
			s.buffered[l.Dst]++
			s.totalBuf++
			s.inflight--
		}
	}
}

// injectFromSources writes up to one flit per node per cycle into the local
// injection port, matching the 1 flit/cycle channel rate.
func (s *Sim) injectFromSources() {
	for node := range s.sources {
		pos := s.srcPos[node]
		if pos >= len(s.sources[node]) {
			continue
		}
		pi := s.sources[node][pos]
		p := &s.pkts[pi]
		if p.Release > s.now {
			continue
		}
		r := &s.routers[node]
		seq := s.srcFlit[node]
		var vcIdx int8
		if seq == 0 {
			// Head flit: claim a free injection VC with space.
			vcIdx = -1
			for v := 0; v < s.cfg.VCs; v++ {
				vc := &r.in[0][v]
				if vc.writer == -1 && vc.q.len() < s.cfg.BufDepthFlits {
					vcIdx = int8(v)
					break
				}
			}
			if vcIdx < 0 {
				continue // all injection VCs busy or full
			}
			r.in[0][vcIdx].writer = pi
			s.srcVC[node] = vcIdx
		} else {
			vcIdx = s.srcVC[node]
			vc := &r.in[0][vcIdx]
			if vc.q.len() >= s.cfg.BufDepthFlits {
				continue // wait for space
			}
		}
		vc := &r.in[0][vcIdx]
		f := flit{
			pkt:  pi,
			seq:  seq,
			vc:   vcIdx,
			head: seq == 0,
			tail: int(seq) == p.SizeFlits-1,
		}
		vc.q.push(bufEntry{f: f, ready: s.now + int64(s.cfg.PipelineClks) - 1})
		s.stats.FlitsInjected++
		s.stats.RouterFlits[node]++
		s.buffered[node]++
		s.totalBuf++
		if f.head {
			s.stats.PacketsInjected++
		}
		if f.tail {
			vc.writer = -1
			s.srcVC[node] = -1
			s.srcFlit[node] = 0
			s.srcPos[node]++
		} else {
			s.srcFlit[node] = seq + 1
		}
	}
}

// routeAndAllocateVCs performs route computation for unrouted head flits at
// buffer fronts and allocates free output VCs round-robin per output port.
func (s *Sim) routeAndAllocateVCs() {
	for rid := range s.routers {
		if s.buffered[rid] == 0 {
			continue
		}
		r := &s.routers[rid]
		// Route computation.
		for p := range r.in {
			for v := range r.in[p] {
				vc := &r.in[p][v]
				if vc.q.len() == 0 || vc.routed || !vc.q.front().f.head {
					continue
				}
				head := vc.q.front()
				dst := s.pkts[head.f.pkt].Dst
				vc.outCls = head.f.cls
				if topology.NodeID(rid) == dst {
					vc.outPort = 0
				} else {
					lid := s.tab.NextLink(topology.NodeID(rid), dst)
					vc.outPort = s.outPortOf[lid]
					// The X→Y dimension transition starts a fresh
					// ring, so the dateline class resets; the Y
					// ring then sets it again at its own wrap.
					if r.inIsX[p] && r.outIsY[vc.outPort] {
						vc.outCls = 0
					}
					if s.net.Links[lid].Dateline && vc.outCls == 0 {
						vc.outCls = 1
					}
				}
				vc.routed = true
				vc.outVC = -1
			}
		}
		// VC allocation per output port.
		for op := range r.out {
			out := &r.out[op]
			// Gather requesters in packed (port, vc) order.
			reqs := s.scratch[:0]
			for p := range r.in {
				for v := range r.in[p] {
					vc := &r.in[p][v]
					if vc.routed && vc.outVC < 0 && int(vc.outPort) == op && vc.q.len() > 0 {
						reqs = append(reqs, int32(p*s.cfg.VCs+v))
					}
				}
			}
			if len(reqs) == 0 {
				continue
			}
			// Free output VCs in index order; requesters served
			// round-robin starting at vaPtr. Under dateline classing
			// a VC may only go to a requester of its class: class 0
			// owns the lower partition, class 1 the upper.
			for fv, owner := range out.owner {
				if owner != -1 || len(reqs) == 0 {
					continue
				}
				n := len(reqs)
				granted := false
				for k := 0; k < n && !granted; k++ {
					pick := (out.vaPtr + k) % n
					req := reqs[pick]
					p, v := int(req)/s.cfg.VCs, int(req)%s.cfg.VCs
					if out.classed && s.vcClass(int8(fv)) != r.in[p][v].outCls {
						continue
					}
					reqs = append(reqs[:pick], reqs[pick+1:]...)
					out.vaPtr++
					r.in[p][v].outVC = int8(fv)
					out.owner[fv] = req
					granted = true
				}
			}
			s.scratch = reqs[:0]
		}
	}
}

// switchAllocateAndSend is the separable switch allocator plus traversal:
// one candidate VC per input port (round-robin), one grant per output port
// (round-robin), then flit movement. Returns packets fully ejected this
// cycle.
func (s *Sim) switchAllocateAndSend() int64 {
	var ejected int64
	for rid := range s.routers {
		if s.buffered[rid] == 0 {
			continue
		}
		r := &s.routers[rid]
		// Input stage: pick one eligible VC per input port.
		cand := s.cand[:len(r.in)] // VC index per port, -1 = none
		for p := range r.in {
			cand[p] = -1
			ptr := r.inSAPtr[p]
			for k := 0; k < s.cfg.VCs; k++ {
				v := (ptr + k) % s.cfg.VCs
				vc := &r.in[p][v]
				if vc.q.len() == 0 || !vc.routed || vc.outVC < 0 {
					continue
				}
				if vc.q.front().ready > s.now {
					continue
				}
				out := &r.out[vc.outPort]
				if vc.outPort != 0 && out.credits[vc.outVC] <= 0 {
					continue // no downstream space
				}
				cand[p] = v
				break
			}
		}
		// Output stage: grant one input per output port.
		for op := range r.out {
			out := &r.out[op]
			nports := len(r.in)
			grant := -1
			for k := 0; k < nports; k++ {
				p := (out.saPtr + k) % nports
				v := cand[p]
				if v < 0 {
					continue
				}
				if int(r.in[p][v].outPort) != op {
					continue
				}
				grant = p
				break
			}
			if grant < 0 {
				continue
			}
			out.saPtr = grant + 1
			v := cand[grant]
			cand[grant] = -1 // input port consumed
			s.sendFlit(rid, grant, v, op, &ejected)
		}
	}
	return ejected
}

// sendFlit pops the head flit of input (port, v) and moves it through output
// port op: onto the channel, or out of the network for ejection.
func (s *Sim) sendFlit(rid, port, v, op int, ejected *int64) {
	r := &s.routers[rid]
	vc := &r.in[port][v]
	e := vc.q.pop()
	out := &r.out[op]
	r.inSAPtr[port] = v + 1
	s.buffered[rid]--
	s.totalBuf--

	// Return a credit upstream for the freed buffer slot (injection port
	// slots are source-managed, not credited).
	if port != 0 {
		lid := s.net.InLinks(topology.NodeID(rid))[port-1]
		l := s.net.Links[lid]
		s.credits = append(s.credits, creditEvent{
			r:    int32(l.Src),
			port: s.outPortOf[lid],
			vc:   e.f.vc,
		})
	}

	if op == 0 {
		// Ejection: retire the flit at now+1 (switch traversal).
		p := &s.pkts[e.f.pkt]
		s.stats.FlitsEjected++
		p.flitsEjected++
		if e.f.tail {
			p.done = true
			s.stats.PacketsEjected++
			lat := float64(s.now + 1 - p.Release)
			s.latSum += lat
			s.latencies.Add(lat)
			if l := s.now + 1 - p.Release; l > s.stats.MaxPacketLatencyClks {
				s.stats.MaxPacketLatencyClks = l
			}
			*ejected++
		}
	} else {
		// Channel traversal.
		lid := out.link
		l := s.net.Links[lid]
		f := e.f
		f.vc = int8(vc.outVC)
		f.cls = vc.outCls
		f.head = e.f.head
		s.pipes[lid].q.push(linkEntry{
			f:      f,
			arrive: s.now + 1 + int64(l.LatencyClks),
		})
		out.credits[vc.outVC]--
		s.stats.LinkFlits[lid]++
		s.inflight++
		if e.f.head {
			s.pkts[e.f.pkt].hops++
		}
	}

	// Tail departure releases the output VC and the route.
	if e.f.tail {
		if vc.outVC >= 0 {
			out.owner[vc.outVC] = -1
		}
		vc.routed = false
		vc.outVC = -1
	}
}

// applyCredits returns freed buffer slots to upstream routers; buffered so
// the increments become visible next cycle.
func (s *Sim) applyCredits() {
	for _, c := range s.credits {
		s.routers[c.r].out[c.port].credits[c.vc]++
	}
	s.credits = s.credits[:0]
}

// vcClass maps a VC index to its dateline class: the lower partition is
// class 0, the upper class 1.
func (s *Sim) vcClass(v int8) int8 {
	if v < s.class0VCs {
		return 0
	}
	return 1
}

// Now returns the current simulation cycle (for tests/diagnostics).
func (s *Sim) Now() int64 { return s.now }
