// Package noc is a cycle-accurate network-on-chip simulator equivalent in
// role to BookSim 2.0 (Jiang et al., ISPASS 2013), which the paper uses in
// trace mode for its NAS-benchmark latency results.
//
// The microarchitecture follows the paper's Table II:
//
//   - input-queued virtual-channel routers, 4 VCs × 8-flit buffers per port
//   - a 3-stage router pipeline (route computation / VC allocation, switch
//     allocation, switch traversal)
//   - credit-based flow control between routers
//   - separable round-robin allocators (input-first for switch allocation)
//   - table-based oblivious routing (the routing package's tables)
//   - channel latency of 1 clock for electronic links and 2 clocks for
//     optical links (the extra cycle is the receiver's O-E conversion)
//   - one local injection and one ejection port per router; ejection is an
//     ideal sink
//
// The simulator is synchronous and strictly deterministic: all state is
// iterated in index order and every arbiter is round-robin, so identical
// inputs give bit-identical results.
//
// # Active-set kernel
//
// The per-cycle cost scales with live flits, not network size. Three event
// structures replace full scans:
//
//   - an active-router worklist (a node-indexed bitmap, iterated in index
//     order so arbitration order matches the historical full scan) feeds
//     the allocation and traversal stages only the routers with buffered
//     flits;
//   - a cycle-bucketed arrival calendar replaces per-link pipe queues:
//     a flit sent on a channel is filed under its arrival cycle, so
//     delivery touches exactly the flits arriving now instead of scanning
//     every channel. Channel latencies are constant per link and at most
//     one flit enters a channel per cycle, so per-channel FIFO order is
//     preserved by construction;
//   - a release min-heap parks traffic sources between packets, so the
//     injection stage visits only sources with a ready packet.
//
// Router state lives in contiguous per-Sim arenas (struct-of-arrays):
// building a Sim performs a fixed, small number of allocations whatever
// the network size, and Reset rewinds everything for reuse without
// reallocating (see Reset and SimPool).
package noc

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/topology"
)

// Config sizes the router microarchitecture.
type Config struct {
	// VCs is virtual channels per port (Table II: 4).
	VCs int
	// BufDepthFlits is the flit capacity of each VC buffer (Table II: 8).
	BufDepthFlits int
	// PipelineClks is the router pipeline depth (Table II: 3).
	PipelineClks int
	// MaxCycles aborts a run that fails to drain (0 = default cap).
	MaxCycles int64
	// DisableIdleSkip forces the kernel to step through provably idle
	// cycles one at a time instead of leaping the clock to the next
	// event. Results are bit-identical either way (the skip-equivalence
	// tests pin that); the stepping kernel exists as their reference.
	DisableIdleSkip bool
}

// DefaultConfig returns the Table II router configuration.
func DefaultConfig() Config {
	return Config{VCs: 4, BufDepthFlits: 8, PipelineClks: 3}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.VCs <= 0 || c.BufDepthFlits <= 0 || c.PipelineClks <= 0 {
		return fmt.Errorf("noc: non-positive config %+v", c)
	}
	return nil
}

// Packet is one network packet to inject.
type Packet struct {
	// Src and Dst are the endpoint nodes.
	Src, Dst topology.NodeID
	// SizeFlits is the packet length (the paper uses 1 and 32).
	SizeFlits int
	// Release is the cycle at which the packet becomes ready at the
	// source queue.
	Release int64
}

// Stats summarizes a run. The slices are owned by the returned value: a
// Sim that is Reset for reuse allocates fresh counters, so Stats escaping
// a run stay valid.
type Stats struct {
	// Cycles is the cycle count at drain.
	Cycles int64
	// PacketsInjected and PacketsEjected count whole packets.
	PacketsInjected, PacketsEjected int64
	// PacketsDropped counts packets whose per-hop retransmission budget
	// (FaultProfile.RetryLimit) was exhausted: the corrupt payload was
	// forwarded and discarded at the destination instead of redelivered.
	// Always zero when no fault profile is armed. Dropped packets are not
	// in PacketsEjected and contribute no latency samples.
	PacketsDropped int64
	// FlitsInjected and FlitsEjected count flits.
	FlitsInjected, FlitsEjected int64
	// AvgPacketLatencyClks averages (tail ejection − release) over
	// packets, BookSim's packet latency. For closed-loop packets the
	// release is the actual post-dependency release, so this stays a pure
	// network latency with compute time excluded.
	AvgPacketLatencyClks float64
	// MaxPacketLatencyClks is the worst packet latency.
	MaxPacketLatencyClks int64
	// MakespanClks is the cycle at which the last tail flit ejected — the
	// end-to-end completion time of the workload (0 for an empty run).
	// Under closed-loop injection (InjectClosedLoop) this is the task
	// graph's makespan; dropped packets count, their tails eject too.
	MakespanClks int64
	// AvgHopCount averages channel traversals per packet.
	AvgHopCount float64
	// P50, P95 and P99 are packet latency percentiles in clocks.
	P50PacketLatencyClks, P95PacketLatencyClks, P99PacketLatencyClks float64
	// LinkFlits[l] counts flit traversals of channel l — the input to
	// dynamic energy accounting.
	LinkFlits []int64
	// RouterFlits[r] counts flits traversing each router (buffer write +
	// crossbar pass), including injection and ejection.
	RouterFlits []int64
	// Activity is the per-class activity census the energy subsystem
	// folds technology coefficients over.
	Activity Activity
}

// Activity counts the microarchitectural events of a run by class — the
// measured quantities the energy package prices (the paper estimates them
// from injection rates; the simulator counts them). All counters are plain
// scalars or fixed arrays updated inline on the hot path, live in the Stats
// value, and are rewound by Reset exactly like the flit counters, so pooled
// reuse stays bit-identical.
type Activity struct {
	// BufferWrites and BufferReads count input-VC SRAM accesses: one
	// write when a flit enters a buffer (injection or link delivery), one
	// read when the switch allocator sends it. At drain of a fault-free
	// run the two are equal and both equal the sum of Stats.RouterFlits;
	// under an armed FaultProfile, reads exceed writes by the
	// retransmission total (see RetransmittedFlitHops).
	BufferWrites, BufferReads int64
	// CrossbarTraversals counts switch passes, including the ejection
	// pass; equals BufferReads at drain (every read feeds the crossbar).
	CrossbarTraversals int64
	// LinkFlitHops[t] counts channel traversals per link technology
	// class (indexed by tech.Technology); the per-class split of the
	// Stats.LinkFlits total.
	LinkFlitHops [tech.NumTechnologies]int64
	// ExpressFlitHops counts traversals riding express channels.
	ExpressFlitHops int64
	// RetransmittedFlitHops[t] counts failed channel traversals — flits
	// corrupted in flight, NACKed by the receiver and re-sent upstream —
	// per link technology class. Each failed attempt is also counted in
	// LinkFlitHops, Stats.LinkFlits, BufferReads and CrossbarTraversals
	// (the hardware toggled; the energy was spent), so retransmission
	// overhead is priced exactly like useful traffic. With retransmission
	// active, BufferReads exceeds BufferWrites by exactly this total at
	// drain (each retry re-reads without re-writing).
	RetransmittedFlitHops [tech.NumTechnologies]int64
	// SourceFlits[n] counts flits injected by node n, the measured
	// per-source offered load (max over nodes ÷ cycles is the measured
	// counterpart of the traffic matrix's MaxRowSum).
	SourceFlits []int64
}

// TotalFlitHops sums the per-class channel traversals.
func (a *Activity) TotalFlitHops() int64 {
	var sum int64
	for _, c := range a.LinkFlitHops {
		sum += c
	}
	return sum
}

// TotalRetransmits sums failed (retransmitted) channel traversals across
// technology classes.
func (a *Activity) TotalRetransmits() int64 {
	var sum int64
	for _, c := range a.RetransmittedFlitHops {
		sum += c
	}
	return sum
}

// OpticalFlitHops sums the traversals of light-carrying channels. Each is
// exactly one E-O conversion at the sending router and one O-E conversion
// at the receiver — links are opaque electronic-terminated hops in the
// paper's NoC — so this single counter is also the count of modulator
// drives (E/O) and of detector receptions (O/E).
func (a *Activity) OpticalFlitHops() int64 {
	var sum int64
	for t, c := range a.LinkFlitHops {
		if tech.Technology(t).IsOptical() {
			sum += c
		}
	}
	return sum
}

// MaxSourceRate returns the measured peak per-node injection rate in
// flits/cycle over a run of the given length (0 for an empty run).
func (a *Activity) MaxSourceRate(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	var peak int64
	for _, c := range a.SourceFlits {
		if c > peak {
			peak = c
		}
	}
	return float64(peak) / float64(cycles)
}

// Observer is the kernel's telemetry tap (see internal/telemetry): a
// passive listener on the flit events the hot path already sequences.
// Every callback fires at a deterministic point of the cycle loop, in the
// kernel's own index order, so an observer sees a bit-reproducible event
// stream for identical inputs. Observers must not mutate the simulator or
// retain references into it — the disabled path (no observer attached) is
// a single nil check per event site and must stay bit-identical to an
// observed run (TestObserverDoesNotPerturbStats pins that).
type Observer interface {
	// PacketInjected fires once per packet, when its head flit enters the
	// source's injection VC at cycle. It always precedes every other
	// event of that packet index.
	PacketInjected(pkt int32, p Packet, cycle int64)
	// FlitInjected fires for every flit (head included, right after its
	// PacketInjected) entering node's injection VC at cycle.
	FlitInjected(pkt int32, node int32, cycle int64)
	// FlitDelivered fires when a flit comes off channel link into the
	// input buffer of router dst at cycle.
	FlitDelivered(pkt int32, link int32, dst int32, head bool, cycle int64)
	// FlitSent fires when a flit wins switch allocation at router and
	// leaves through link (-1 = the ejection port; the flit retires at
	// cycle+1, the kernel's MakespanClks convention). dropped is set only
	// on the tail ejection of a packet that exhausted its retransmission
	// budget. Corrupted traversals under an armed FaultProfile do not
	// fire (the flit stays buffered); only the successful attempt does.
	FlitSent(pkt int32, router int32, link int32, head, tail, dropped bool, cycle int64)
}

// flit is the unit of flow control.
type flit struct {
	pkt  int32 // index into Sim.pkts
	seq  int32 // flit index within packet
	vc   int8  // VC assigned for the current hop
	cls  int8  // dateline VC class (0 before wrap, 1 after)
	head bool
	tail bool
}

// bufEntry is a buffered flit plus the cycle it becomes eligible for switch
// allocation (modelling the first two pipeline stages). tries counts failed
// traversal attempts at this hop under an armed FaultProfile; it resets
// when the flit crosses to the next router.
type bufEntry struct {
	f     flit
	ready int64
	tries int32
}

// ring is a fixed-capacity circular FIFO. The simulator's queues are all
// bounded (VC buffers by BufDepthFlits, channels by the credit loop), so
// after New the hot path performs no queue allocations; grow exists only as
// a defensive fallback should a bound ever be exceeded. VC rings share one
// arena-backed buffer per Sim; a ring that grows migrates onto a private
// buffer of its own, leaving the arena slot unused.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func newRing[T any](capacity int) ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) len() int  { return r.n }
func (r *ring[T]) front() *T { return &r.buf[r.head] }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

func (r *ring[T]) grow() {
	buf := make([]T, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf = buf
	r.head = 0
}

// reset rewinds the ring to empty. A grown (non-arena) buffer is kept: ring
// capacity never affects simulation results, only the len checks against
// BufDepthFlits do.
func (r *ring[T]) reset() { r.head, r.n = 0, 0 }

// vcState is one input virtual channel.
type vcState struct {
	q ring[bufEntry]
	// routed marks that the head packet has a computed output.
	routed bool
	// outPort is the routed output port index (0 = ejection).
	outPort int16
	// outVC is the allocated downstream VC (-1 = none yet).
	outVC int8
	// outCls is the VC class required downstream: the head flit's class,
	// incremented when the routed channel is a dateline (row wrap).
	outCls int8
	// writer is the packet currently being written into this VC at the
	// injection port (-1 = none); prevents interleaving on write.
	writer int32
}

// outState is one output port.
type outState struct {
	// link is the channel this output drives (-1 for ejection).
	link topology.LinkID
	// credits[v] is remaining buffer space at the downstream VC v
	// (arena-backed; unused for the ejection port).
	credits []int16
	// owner[v] is the input VC (packed port*VCs+vc) owning output VC v,
	// -1 when free (arena-backed).
	owner []int32
	// saPtr is the output-side round-robin pointer over input ports.
	saPtr int
	// vaPtr is the VC-allocation round-robin pointer over requesters.
	vaPtr int
	// classed marks channels under dateline VC partitioning: only the
	// X channels of wrapped rows can form ring cycles, so only they are
	// partitioned; Y channels and ejection stay unrestricted.
	classed bool
}

// router is one node's switch. All slices are views into per-Sim arenas.
type router struct {
	id topology.NodeID
	// nin is the input port count; port 0 is injection.
	nin int
	// in[p*VCs+v]: input VC v of port p.
	in []vcState
	// out[p]: output port p; port 0 is ejection.
	out []outState
	// inSAPtr is the per-input-port round-robin pointer over VCs.
	inSAPtr []int32
	// inLink[p] is the channel feeding input port p (port 0 unused).
	inLink []topology.LinkID
	// inIsX[p] marks input ports fed by horizontal channels; used to
	// reset the dateline class at the X→Y dimension transition so one
	// class bit suffices for both dimensions' rings.
	inIsX []bool
	// outIsY[p] marks output ports driving vertical channels.
	outIsY []bool
}

// arrival is one in-flight flit filed in the arrival calendar.
type arrival struct {
	f   flit
	lid int32
}

// srcRel parks a dormant traffic source until its next packet's release.
type srcRel struct {
	rel  int64
	node int32
}

// pktMeta is per-packet runtime accounting.
type pktMeta struct {
	Packet
	flitsEjected int32
	hops         int32
	done         bool
	// dropped marks a packet that exhausted its retransmission budget;
	// its flits still flow to the destination (keeping flow control and
	// VC ownership intact) but are discarded there.
	dropped bool
}

// Sim is one simulation instance. It is not safe for concurrent use;
// parallelize across Sim instances (see SimPool).
type Sim struct {
	net *topology.Network
	tab *routing.Table
	cfg Config

	routers []router
	// inPortOf[l] is the input port index of link l at its Dst router;
	// outPortOf[l] is the output port index at its Src router. linkDst,
	// linkSrc and linkLat cache the per-link fields the hot path needs so
	// delivery and credit return never chase into net.Links.
	inPortOf  []int16
	outPortOf []int16
	linkDst   []int32
	linkSrc   []int32
	linkLat   []int32
	// linkClass[l] is the link's technology (for the per-class activity
	// census) and linkExpr[l] marks express channels; both cached flat so
	// the send path never chases into net.Links.
	linkClass []int8
	linkExpr  []bool

	// calendar[c % len] lists the flits arriving at cycle c. Sized to
	// exceed the largest possible send-to-arrival delay (1 cycle switch
	// traversal + max channel latency), so buckets never alias.
	calendar [][]arrival

	pkts    []pktMeta
	sources [][]int32 // per node: packet indices in release order
	srcPos  []int     // per node: next packet to inject
	srcFlit []int32   // per node: next flit seq of current packet
	srcVC   []int8    // per node: VC carrying the current packet (-1)

	// relHeap is a min-heap (release, node) of dormant sources; srcMask
	// marks sources with a ready packet, iterated in index order. liveSrc
	// counts set bits.
	relHeap []srcRel
	srcMask []uint64
	liveSrc int

	// Closed-loop dependency state (see InjectClosedLoop; all empty for
	// open-loop runs). succOff/succList are the CSR successor lists of the
	// dependency DAG; pending[i] counts packet i's unejected predecessors.
	closedLoop bool
	succOff    []int32
	succList   []int32
	pending    []int32

	now       int64
	ran       bool
	stats     Stats
	latSum    float64
	latencies stats.Sample
	credits   []creditEvent

	// Activity tracking lets idle stretches be skipped and idle routers
	// bypassed: buffered counts flits in input buffers per router,
	// inflight counts flits on channels. activeMask mirrors buffered>0
	// as a bitmap — the active-router worklist.
	buffered   []int32
	totalBuf   int64
	inflight   int64
	activeMask []uint64
	// cand is the switch allocator's per-cycle candidate scratch (one slot
	// per input port of the widest router); reqs is the VC allocator's
	// per-output-port requester scratch. Both are sized at construction
	// and reused across cycles — the hot path never allocates.
	cand []int
	reqs [][]int32

	// fault is the armed BER/retransmission profile (nil = faultless; see
	// SetFaultProfile). routeErr records the first unroutable packet seen
	// mid-run — possible only on degraded routing tables — and aborts Run
	// with a named error instead of panicking on the missing port.
	fault    *faultState
	routeErr error

	// obs is the attached telemetry tap (nil = disabled; see SetObserver).
	// Each event site guards its callback with one nil check, so the
	// telemetry-off hot path is unchanged.
	obs Observer

	// classed enables dateline VC-class partitioning: required for the
	// torus-like hops = Width−1 topology, where packets crossing a row
	// wrap switch to the upper half of the VC pool to break ring cycles.
	classed bool
	// class0VCs is the size of the class-0 partition.
	class0VCs int8
}

type creditEvent struct {
	r    int32
	port int16
	vc   int8
}

// New builds a simulator for a network and routing table. Construction
// performs a fixed, small number of allocations: router state lives in
// shared arenas, not per-router slices.
func New(net *topology.Network, tab *routing.Table, cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tab.Net() != net {
		return nil, fmt.Errorf("noc: routing table built for a different network")
	}
	if net.HasDateline() && cfg.VCs < 2 {
		return nil, fmt.Errorf("noc: torus-like topology needs ≥2 VCs for dateline classes, have %d", cfg.VCs)
	}
	n := net.NumNodes()
	nl := len(net.Links)
	vcs := cfg.VCs
	depth := cfg.BufDepthFlits
	s := &Sim{
		net:        net,
		tab:        tab,
		cfg:        cfg,
		routers:    make([]router, n),
		inPortOf:   make([]int16, nl),
		outPortOf:  make([]int16, nl),
		linkDst:    make([]int32, nl),
		linkSrc:    make([]int32, nl),
		linkLat:    make([]int32, nl),
		linkClass:  make([]int8, nl),
		linkExpr:   make([]bool, nl),
		sources:    make([][]int32, n),
		srcPos:     make([]int, n),
		srcFlit:    make([]int32, n),
		srcVC:      make([]int8, n),
		buffered:   make([]int32, n),
		activeMask: make([]uint64, (n+63)/64),
		srcMask:    make([]uint64, (n+63)/64),
	}
	s.stats.LinkFlits = make([]int64, nl)
	s.stats.RouterFlits = make([]int64, n)
	s.stats.Activity.SourceFlits = make([]int64, n)
	s.classed = net.HasDateline()
	// Class 1 (post-wrap) packets are the rare case: give them the top
	// VC only and keep the rest for class 0, minimizing the partition
	// penalty on non-wrapping traffic.
	s.class0VCs = int8(vcs - 1)
	for i := range s.srcVC {
		s.srcVC[i] = -1
	}

	// Arena sizing: total input/output ports across the network, plus the
	// widest router for the allocator scratch.
	totalIn, totalOut, maxIn, maxOut := 0, 0, 0, 0
	for id := 0; id < n; id++ {
		node := topology.NodeID(id)
		nin := 1 + len(net.InLinks(node))
		nout := 1 + len(net.OutLinks(node))
		totalIn += nin
		totalOut += nout
		if nin > maxIn {
			maxIn = nin
		}
		if nout > maxOut {
			maxOut = nout
		}
	}
	var (
		vcArena   = make([]vcState, totalIn*vcs)
		bufArena  = make([]bufEntry, totalIn*vcs*depth)
		saArena   = make([]int32, totalIn)
		ilArena   = make([]topology.LinkID, totalIn)
		ixArena   = make([]bool, totalIn)
		outArena  = make([]outState, totalOut)
		credArena = make([]int16, totalOut*vcs)
		ownArena  = make([]int32, totalOut*vcs)
		oyArena   = make([]bool, totalOut)
	)
	s.cand = make([]int, maxIn)
	s.reqs = make([][]int32, maxOut)
	reqArena := make([]int32, maxOut*maxIn*vcs)
	for op := range s.reqs {
		s.reqs[op] = reqArena[op*maxIn*vcs : op*maxIn*vcs : (op+1)*maxIn*vcs]
	}

	inOff, outOff := 0, 0 // port offsets into the arenas
	for id := 0; id < n; id++ {
		node := topology.NodeID(id)
		inLinks := net.InLinks(node)
		outLinks := net.OutLinks(node)
		nin := 1 + len(inLinks)
		nout := 1 + len(outLinks)
		r := router{
			id:      node,
			nin:     nin,
			in:      vcArena[inOff*vcs : (inOff+nin)*vcs : (inOff+nin)*vcs],
			out:     outArena[outOff : outOff+nout : outOff+nout],
			inSAPtr: saArena[inOff : inOff+nin : inOff+nin],
			inLink:  ilArena[inOff : inOff+nin : inOff+nin],
			inIsX:   ixArena[inOff : inOff+nin : inOff+nin],
			outIsY:  oyArena[outOff : outOff+nout : outOff+nout],
		}
		for i := range r.in {
			base := (inOff*vcs + i) * depth
			r.in[i] = vcState{
				q:      ring[bufEntry]{buf: bufArena[base : base+depth : base+depth]},
				outVC:  -1,
				writer: -1,
			}
		}
		// Output 0: ejection (ideal sink, no credit bound); owner
		// bookkeeping is still needed for VC allocation.
		ej := ownArena[outOff*vcs : (outOff+1)*vcs : (outOff+1)*vcs]
		for v := range ej {
			ej[v] = -1
		}
		r.out[0] = outState{link: -1, owner: ej}
		for i, lid := range outLinks {
			op := 1 + i
			cbase := (outOff + op) * vcs
			credits := credArena[cbase : cbase+vcs : cbase+vcs]
			owner := ownArena[cbase : cbase+vcs : cbase+vcs]
			for v := 0; v < vcs; v++ {
				credits[v] = int16(depth)
				owner[v] = -1
			}
			l := net.Links[lid]
			r.out[op] = outState{
				link:    lid,
				credits: credits,
				owner:   owner,
				classed: (net.HasDatelineX() && l.DX(net) != 0) ||
					(net.HasDatelineY() && l.DY(net) != 0),
			}
			r.outIsY[op] = l.DY(net) != 0
			s.outPortOf[lid] = int16(op)
		}
		for i, lid := range inLinks {
			s.inPortOf[lid] = int16(1 + i)
			r.inLink[1+i] = lid
			r.inIsX[1+i] = net.Links[lid].DX(net) != 0
		}
		s.routers[id] = r
		inOff += nin
		outOff += nout
	}

	maxLat := 1
	for i, l := range net.Links {
		s.linkDst[i] = int32(l.Dst)
		s.linkSrc[i] = int32(l.Src)
		s.linkLat[i] = int32(l.LatencyClks)
		s.linkClass[i] = int8(l.Tech)
		s.linkExpr[i] = l.Express
		if l.LatencyClks > maxLat {
			maxLat = l.LatencyClks
		}
	}
	// The send-to-arrival delay is 1 (switch traversal) + channel latency,
	// so maxLat+2 buckets guarantee a bucket is drained before any send
	// can refile into it.
	s.calendar = make([][]arrival, maxLat+2)
	return s, nil
}

// Reset rewinds the simulator to its freshly-constructed state, reusing
// every buffer: queued packets, statistics and all router state are
// cleared without reallocating the arenas. The flit counters of the
// previous run's Stats are handed off to that Stats value (fresh slices
// are allocated), so results captured before Reset stay valid. A Reset
// Sim behaves bit-identically to a new Sim on the same inputs.
func (s *Sim) Reset() {
	for rid := range s.routers {
		r := &s.routers[rid]
		for i := range r.in {
			vc := &r.in[i]
			vc.q.reset()
			vc.routed = false
			vc.outPort = 0
			vc.outVC = -1
			vc.outCls = 0
			vc.writer = -1
		}
		for op := range r.out {
			out := &r.out[op]
			for v := range out.owner {
				out.owner[v] = -1
			}
			for v := range out.credits {
				out.credits[v] = int16(s.cfg.BufDepthFlits)
			}
			out.saPtr = 0
			out.vaPtr = 0
		}
		for p := range r.inSAPtr {
			r.inSAPtr[p] = 0
		}
	}
	for i := range s.calendar {
		s.calendar[i] = s.calendar[i][:0]
	}
	s.pkts = s.pkts[:0]
	for i := range s.sources {
		s.sources[i] = s.sources[i][:0]
	}
	for i := range s.srcPos {
		s.srcPos[i] = 0
		s.srcFlit[i] = 0
		s.srcVC[i] = -1
	}
	s.relHeap = s.relHeap[:0]
	clear(s.srcMask)
	s.liveSrc = 0
	s.closedLoop = false
	s.succOff = nil
	s.succList = nil
	s.pending = nil
	s.now = 0
	s.ran = false
	s.stats = Stats{
		LinkFlits:   make([]int64, len(s.net.Links)),
		RouterFlits: make([]int64, s.net.NumNodes()),
	}
	s.stats.Activity.SourceFlits = make([]int64, s.net.NumNodes())
	s.latSum = 0
	s.latencies.Reset()
	s.credits = s.credits[:0]
	clear(s.buffered)
	s.totalBuf = 0
	s.inflight = 0
	clear(s.activeMask)
	s.fault = nil
	s.routeErr = nil
	s.obs = nil
}

// SetObserver attaches a telemetry tap for the next Run (nil detaches).
// Observers are external wiring like fault profiles: Reset clears them, so
// a pooled Sim never leaks one run's collector into the next. The observer
// must not mutate the simulator; it cannot change results (the kernel
// never reads it), only watch them.
func (s *Sim) SetObserver(o Observer) { s.obs = o }

// Inject queues a packet for injection. Must be called before Run.
func (s *Sim) Inject(p Packet) error {
	if s.closedLoop {
		return fmt.Errorf("noc: Inject after InjectClosedLoop (one closed-loop batch per run)")
	}
	if p.SizeFlits <= 0 {
		return fmt.Errorf("noc: packet size %d", p.SizeFlits)
	}
	if int(p.Src) < 0 || int(p.Src) >= s.net.NumNodes() ||
		int(p.Dst) < 0 || int(p.Dst) >= s.net.NumNodes() {
		return fmt.Errorf("noc: endpoints %d->%d out of range", p.Src, p.Dst)
	}
	if p.Release < 0 {
		return fmt.Errorf("noc: negative release %d", p.Release)
	}
	idx := int32(len(s.pkts))
	s.pkts = append(s.pkts, pktMeta{Packet: p})
	s.sources[p.Src] = append(s.sources[p.Src], idx)
	return nil
}

// InjectAll queues a batch of packets.
func (s *Sim) InjectAll(ps []Packet) error {
	for _, p := range ps {
		if err := s.Inject(p); err != nil {
			return err
		}
	}
	return nil
}

// Run simulates until every injected packet has fully ejected, or MaxCycles
// elapses (an error: the network failed to drain). A Sim runs once; call
// Reset before reusing it.
func (s *Sim) Run() (Stats, error) {
	if s.ran {
		return s.stats, fmt.Errorf("noc: Run called again without Reset")
	}
	s.ran = true
	// Stable order: by release cycle, then insertion order. Each source
	// with pending packets parks in the release heap until its first
	// packet is due.
	for node := range s.sources {
		q := s.sources[node]
		slices.SortStableFunc(q, func(a, b int32) int {
			ra, rb := s.pkts[a].Release, s.pkts[b].Release
			switch {
			case ra < rb:
				return -1
			case ra > rb:
				return 1
			default:
				return 0
			}
		})
		if len(q) > 0 {
			s.heapPush(srcRel{rel: s.pkts[q[0]].Release, node: int32(node)})
		}
	}
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 40
	}
	s.latencies.Grow(len(s.pkts))
	remaining := int64(len(s.pkts))
	for remaining > 0 {
		if s.now >= maxCycles {
			// Distinguishable saturated status: the partial census up to
			// the cap, with the cycle count set (not silently truncated),
			// and a typed error callers match with errors.Is(ErrSaturated).
			s.stats.Cycles = s.now
			return s.stats, &SaturatedError{Remaining: remaining, Cycles: s.now}
		}
		if s.routeErr != nil {
			s.stats.Cycles = s.now
			return s.stats, s.routeErr
		}
		// Closed-loop deadlock guard: with nothing buffered, in flight or
		// parked, no remaining packet can ever become releasable — every
		// one waits on a dependency that will never complete. Possible
		// only on a cyclic dependency graph (taskgraph.Validate rejects
		// those up front); surface it as a named error instead of spinning
		// to MaxCycles.
		if s.closedLoop && s.totalBuf == 0 && s.liveSrc == 0 &&
			s.inflight == 0 && len(s.relHeap) == 0 {
			s.stats.Cycles = s.now
			return s.stats, fmt.Errorf("noc: closed-loop stall with %d packets blocked on dependencies that cannot complete (cyclic graph?)", remaining)
		}
		// Leap over provably idle cycles. With nothing buffered and no
		// live source, every router stage and the injection scan are
		// no-ops until either an in-flight flit arrives (the next
		// non-empty calendar bucket) or a parked source releases
		// (relHeap top) — nothing else can change state: credits apply
		// in the cycle that sends them, so the credit queue is empty
		// here. Jump the clock straight to the earliest such event.
		// This generalizes the historical trace-gap fast-forward (which
		// required inflight == 0) to mid-flight gaps, where long express
		// channels leave the whole fabric idle for multi-cycle stretches.
		if s.totalBuf == 0 && s.liveSrc == 0 && !s.cfg.DisableIdleSkip {
			next := int64(-1)
			if s.inflight > 0 {
				cl := int64(len(s.calendar))
				for off := int64(0); off < cl; off++ {
					if len(s.calendar[(s.now+off)%cl]) > 0 {
						next = s.now + off
						break
					}
				}
			}
			if len(s.relHeap) > 0 && (next < 0 || s.relHeap[0].rel < next) {
				next = s.relHeap[0].rel
			}
			if next > s.now {
				s.now = next
			}
		}
		s.deliverLinkArrivals()
		s.injectFromSources()
		s.routeAndAllocateVCs()
		ejected := s.switchAllocateAndSend()
		s.applyCredits()
		remaining -= ejected
		s.now++
	}
	s.stats.Cycles = s.now
	if s.stats.PacketsEjected > 0 {
		s.stats.AvgPacketLatencyClks = s.latSum / float64(s.stats.PacketsEjected)
		s.stats.P50PacketLatencyClks = s.latencies.Quantile(0.50)
		s.stats.P95PacketLatencyClks = s.latencies.Quantile(0.95)
		s.stats.P99PacketLatencyClks = s.latencies.Quantile(0.99)
	}
	var hops int64
	for _, p := range s.pkts {
		hops += int64(p.hops)
	}
	if len(s.pkts) > 0 {
		s.stats.AvgHopCount = float64(hops) / float64(len(s.pkts))
	}
	return s.stats, nil
}

// activateRouter marks a router as having buffered flits.
func (s *Sim) activateRouter(rid int32) {
	s.activeMask[rid>>6] |= 1 << (uint(rid) & 63)
}

// deliverLinkArrivals moves the flits whose channel delay elapses this
// cycle into the downstream input buffers. Credits were reserved at send
// time, so space is guaranteed. Arrivals in one cycle always target
// distinct (router, port) pairs — each input port is fed by one channel
// and a channel carries at most one flit per cycle — so bucket order
// cannot affect simulation state.
func (s *Sim) deliverLinkArrivals() {
	if s.inflight == 0 {
		return
	}
	bi := int(s.now % int64(len(s.calendar)))
	bucket := s.calendar[bi]
	if len(bucket) == 0 {
		return
	}
	vcs := s.cfg.VCs
	ready := s.now + int64(s.cfg.PipelineClks) - 1
	for i := range bucket {
		e := &bucket[i]
		dst := s.linkDst[e.lid]
		r := &s.routers[dst]
		port := int(s.inPortOf[e.lid])
		vc := &r.in[port*vcs+int(e.f.vc)]
		vc.q.push(bufEntry{f: e.f, ready: ready})
		s.stats.RouterFlits[dst]++
		s.stats.Activity.BufferWrites++
		s.buffered[dst]++
		s.totalBuf++
		s.inflight--
		s.activateRouter(dst)
		if s.obs != nil {
			s.obs.FlitDelivered(e.f.pkt, e.lid, dst, e.f.head, s.now)
		}
	}
	s.calendar[bi] = bucket[:0]
}

// injectFromSources writes up to one flit per ready node per cycle into the
// local injection port, matching the 1 flit/cycle channel rate. Sources are
// woken from the release heap when their next packet is due and parked
// again after its tail flit; a node stays live while blocked on buffer
// space, exactly as the historical full scan retried it each cycle.
func (s *Sim) injectFromSources() {
	for len(s.relHeap) > 0 && s.relHeap[0].rel <= s.now {
		e := s.heapPop()
		w := int(e.node) >> 6
		bit := uint64(1) << (uint(e.node) & 63)
		if s.srcMask[w]&bit != 0 {
			continue // already live: a duplicate closed-loop wake
		}
		// Closed-loop dependency completions reshape source queues after
		// wake entries were pushed, so an entry can be stale: the node's
		// head packet may be a later one (re-park at its release) or the
		// queue exhausted (drop the wake). Open-loop queues are immutable
		// after Run starts, so this filter never fires there.
		if s.closedLoop && !s.sourceDue(int(e.node)) {
			continue
		}
		s.srcMask[w] |= bit
		s.liveSrc++
	}
	if s.liveSrc == 0 {
		return
	}
	for w := range s.srcMask {
		word := s.srcMask[w]
		for word != 0 {
			node := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			s.injectNode(node)
		}
	}
}

// parkSource clears a node from the live set.
func (s *Sim) parkSource(node int) {
	s.srcMask[node>>6] &^= 1 << (uint(node) & 63)
	s.liveSrc--
}

// injectNode attempts to inject one flit of the node's current packet.
func (s *Sim) injectNode(node int) {
	pi := s.sources[node][s.srcPos[node]]
	p := &s.pkts[pi]
	r := &s.routers[node]
	vcs := s.cfg.VCs
	seq := s.srcFlit[node]
	var vcIdx int8
	if seq == 0 {
		// Head flit: claim a free injection VC with space.
		vcIdx = -1
		for v := 0; v < vcs; v++ {
			vc := &r.in[v]
			if vc.writer == -1 && vc.q.len() < s.cfg.BufDepthFlits {
				vcIdx = int8(v)
				break
			}
		}
		if vcIdx < 0 {
			return // all injection VCs busy or full
		}
		r.in[vcIdx].writer = pi
		s.srcVC[node] = vcIdx
	} else {
		vcIdx = s.srcVC[node]
		if r.in[vcIdx].q.len() >= s.cfg.BufDepthFlits {
			return // wait for space
		}
	}
	vc := &r.in[vcIdx]
	f := flit{
		pkt:  pi,
		seq:  seq,
		vc:   vcIdx,
		head: seq == 0,
		tail: int(seq) == p.SizeFlits-1,
	}
	vc.q.push(bufEntry{f: f, ready: s.now + int64(s.cfg.PipelineClks) - 1})
	s.stats.FlitsInjected++
	s.stats.RouterFlits[node]++
	s.stats.Activity.BufferWrites++
	s.stats.Activity.SourceFlits[node]++
	s.buffered[node]++
	s.totalBuf++
	s.activateRouter(int32(node))
	if f.head {
		s.stats.PacketsInjected++
	}
	if s.obs != nil {
		if f.head {
			s.obs.PacketInjected(pi, p.Packet, s.now)
		}
		s.obs.FlitInjected(pi, int32(node), s.now)
	}
	if f.tail {
		vc.writer = -1
		s.srcVC[node] = -1
		s.srcFlit[node] = 0
		s.srcPos[node]++
		// Park the node until its next packet is due (or for good).
		pos := s.srcPos[node]
		if pos >= len(s.sources[node]) {
			s.parkSource(node)
		} else if rel := s.pkts[s.sources[node][pos]].Release; rel > s.now {
			s.parkSource(node)
			s.heapPush(srcRel{rel: rel, node: int32(node)})
		}
	} else {
		s.srcFlit[node] = seq + 1
	}
}

// routeAndAllocateVCs performs route computation for unrouted head flits at
// buffer fronts and allocates free output VCs round-robin per output port,
// visiting only routers with buffered flits.
func (s *Sim) routeAndAllocateVCs() {
	for w, word := range s.activeMask {
		for word != 0 {
			rid := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			s.routeRouter(rid)
		}
	}
}

// routeRouter is route computation plus VC allocation for one router.
func (s *Sim) routeRouter(rid int) {
	r := &s.routers[rid]
	vcs := s.cfg.VCs
	// Route computation.
	for p := 0; p < r.nin; p++ {
		for v := 0; v < vcs; v++ {
			vc := &r.in[p*vcs+v]
			if vc.q.len() == 0 || vc.routed || !vc.q.front().f.head {
				continue
			}
			head := vc.q.front()
			dst := s.pkts[head.f.pkt].Dst
			vc.outCls = head.f.cls
			if topology.NodeID(rid) == dst {
				vc.outPort = 0
			} else {
				lid := s.tab.NextLink(topology.NodeID(rid), dst)
				if lid < 0 {
					// Degraded table with no route: abort the run with a
					// named error instead of panicking on the missing
					// port. The flit stays unrouted; Run surfaces the
					// error at the top of the next cycle.
					if s.routeErr == nil {
						s.routeErr = fmt.Errorf("noc: packet %d -> %d unroutable at router %d: %w",
							s.pkts[head.f.pkt].Src, dst, rid, routing.ErrUnreachable)
					}
					continue
				}
				vc.outPort = s.outPortOf[lid]
				// The X→Y dimension transition starts a fresh
				// ring, so the dateline class resets; the Y
				// ring then sets it again at its own wrap.
				if r.inIsX[p] && r.outIsY[vc.outPort] {
					vc.outCls = 0
				}
				if s.net.Links[lid].Dateline && vc.outCls == 0 {
					vc.outCls = 1
				}
			}
			vc.routed = true
			vc.outVC = -1
		}
	}
	// Gather requesters per output port in one pass, in packed (port, vc)
	// order — the same order the historical per-port scans produced.
	// Grants never change another port's requester set (a VC requests
	// exactly its routed port), so gathering once is equivalent.
	nreq := 0
	for i := range r.in {
		vc := &r.in[i]
		if vc.routed && vc.outVC < 0 && vc.q.len() > 0 {
			op := int(vc.outPort)
			s.reqs[op] = append(s.reqs[op], int32(i))
			nreq++
		}
	}
	if nreq == 0 {
		return
	}
	// VC allocation per output port: free output VCs in index order;
	// requesters served round-robin starting at vaPtr. Under dateline
	// classing a VC may only go to a requester of its class: class 0
	// owns the lower partition, class 1 the upper.
	for op := range r.out {
		reqs := s.reqs[op]
		if len(reqs) == 0 {
			continue
		}
		out := &r.out[op]
		for fv, owner := range out.owner {
			if owner != -1 || len(reqs) == 0 {
				continue
			}
			n := len(reqs)
			granted := false
			for k := 0; k < n && !granted; k++ {
				pick := (out.vaPtr + k) % n
				req := reqs[pick]
				if out.classed && s.vcClass(int8(fv)) != r.in[req].outCls {
					continue
				}
				reqs = append(reqs[:pick], reqs[pick+1:]...)
				out.vaPtr++
				r.in[req].outVC = int8(fv)
				out.owner[fv] = req
				granted = true
			}
		}
		s.reqs[op] = reqs[:0]
	}
}

// switchAllocateAndSend is the separable switch allocator plus traversal:
// one candidate VC per input port (round-robin), one grant per output port
// (round-robin), then flit movement, visiting only routers with buffered
// flits. Returns packets fully ejected this cycle.
func (s *Sim) switchAllocateAndSend() int64 {
	var ejected int64
	for w := range s.activeMask {
		// Snapshot the word: sends may drain a router to zero and clear
		// its own bit, but never activate another router mid-phase.
		word := s.activeMask[w]
		for word != 0 {
			rid := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			s.switchRouter(rid, &ejected)
		}
	}
	return ejected
}

// switchRouter runs switch allocation and traversal for one router.
func (s *Sim) switchRouter(rid int, ejected *int64) {
	r := &s.routers[rid]
	vcs := s.cfg.VCs
	// Input stage: pick one eligible VC per input port.
	cand := s.cand[:r.nin] // VC index per port, -1 = none
	for p := 0; p < r.nin; p++ {
		cand[p] = -1
		ptr := int(r.inSAPtr[p])
		for k := 0; k < vcs; k++ {
			v := (ptr + k) % vcs
			vc := &r.in[p*vcs+v]
			if vc.q.len() == 0 || !vc.routed || vc.outVC < 0 {
				continue
			}
			if vc.q.front().ready > s.now {
				continue
			}
			out := &r.out[vc.outPort]
			if vc.outPort != 0 && out.credits[vc.outVC] <= 0 {
				continue // no downstream space
			}
			cand[p] = v
			break
		}
	}
	// Output stage: grant one input per output port.
	for op := range r.out {
		out := &r.out[op]
		grant := -1
		for k := 0; k < r.nin; k++ {
			p := (out.saPtr + k) % r.nin
			v := cand[p]
			if v < 0 {
				continue
			}
			if int(r.in[p*vcs+v].outPort) != op {
				continue
			}
			grant = p
			break
		}
		if grant < 0 {
			continue
		}
		out.saPtr = grant + 1
		v := cand[grant]
		cand[grant] = -1 // input port consumed
		s.sendFlit(rid, grant, v, op, ejected)
	}
}

// sendFlit pops the head flit of input (port, v) and moves it through output
// port op: onto the channel, or out of the network for ejection.
func (s *Sim) sendFlit(rid, port, v, op int, ejected *int64) {
	r := &s.routers[rid]
	vc := &r.in[port*s.cfg.VCs+v]
	out := &r.out[op]
	if s.fault != nil && op != 0 && s.faultIntercept(rid, port, v, vc, out) {
		return // corrupted traversal; the flit stays buffered for retry
	}
	e := vc.q.pop()
	r.inSAPtr[port] = int32(v + 1)
	s.stats.Activity.BufferReads++
	s.stats.Activity.CrossbarTraversals++
	s.buffered[rid]--
	s.totalBuf--
	if s.buffered[rid] == 0 {
		s.activeMask[rid>>6] &^= 1 << (uint(rid) & 63)
	}

	// Return a credit upstream for the freed buffer slot (injection port
	// slots are source-managed, not credited).
	if port != 0 {
		lid := r.inLink[port]
		s.credits = append(s.credits, creditEvent{
			r:    s.linkSrc[lid],
			port: s.outPortOf[lid],
			vc:   e.f.vc,
		})
	}

	if op == 0 {
		// Ejection: retire the flit at now+1 (switch traversal).
		p := &s.pkts[e.f.pkt]
		s.stats.FlitsEjected++
		p.flitsEjected++
		if e.f.tail {
			p.done = true
			if t := s.now + 1; t > s.stats.MakespanClks {
				s.stats.MakespanClks = t
			}
			if s.closedLoop {
				s.completeSuccessors(e.f.pkt)
			}
			if p.dropped {
				// Retransmission budget exhausted mid-route: the packet
				// arrived corrupt and is discarded here, reported
				// explicitly rather than counted as delivered.
				s.stats.PacketsDropped++
			} else {
				s.stats.PacketsEjected++
				lat := float64(s.now + 1 - p.Release)
				s.latSum += lat
				s.latencies.Add(lat)
				if l := s.now + 1 - p.Release; l > s.stats.MaxPacketLatencyClks {
					s.stats.MaxPacketLatencyClks = l
				}
			}
			*ejected++
		}
	} else {
		// Channel traversal: file the flit in the arrival calendar
		// under its delivery cycle.
		lid := out.link
		f := e.f
		f.vc = int8(vc.outVC)
		f.cls = vc.outCls
		arrive := s.now + 1 + int64(s.linkLat[lid])
		bi := int(arrive % int64(len(s.calendar)))
		s.calendar[bi] = append(s.calendar[bi], arrival{f: f, lid: int32(lid)})
		out.credits[vc.outVC]--
		s.stats.LinkFlits[lid]++
		s.stats.Activity.LinkFlitHops[s.linkClass[lid]]++
		if s.linkExpr[lid] {
			s.stats.Activity.ExpressFlitHops++
		}
		s.inflight++
		if e.f.head {
			s.pkts[e.f.pkt].hops++
		}
	}

	if s.obs != nil {
		lid := int32(-1)
		if op != 0 {
			lid = int32(out.link)
		}
		dropped := op == 0 && e.f.tail && s.pkts[e.f.pkt].dropped
		s.obs.FlitSent(e.f.pkt, int32(rid), lid, e.f.head, e.f.tail, dropped, s.now)
	}

	// Tail departure releases the output VC and the route.
	if e.f.tail {
		if vc.outVC >= 0 {
			out.owner[vc.outVC] = -1
		}
		vc.routed = false
		vc.outVC = -1
	}
}

// applyCredits returns freed buffer slots to upstream routers; buffered so
// the increments become visible next cycle.
func (s *Sim) applyCredits() {
	for _, c := range s.credits {
		s.routers[c.r].out[c.port].credits[c.vc]++
	}
	s.credits = s.credits[:0]
}

// heapLess orders the release heap by (release, node): node breaks ties so
// pop order is fully deterministic.
func heapLess(a, b srcRel) bool {
	return a.rel < b.rel || (a.rel == b.rel && a.node < b.node)
}

// heapPush adds a parked source to the release min-heap.
func (s *Sim) heapPush(e srcRel) {
	h := append(s.relHeap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.relHeap = h
}

// heapPop removes and returns the earliest parked source.
func (s *Sim) heapPop() srcRel {
	h := s.relHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && heapLess(h[l], h[m]) {
			m = l
		}
		if r < n && heapLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.relHeap = h
	return top
}

// vcClass maps a VC index to its dateline class: the lower partition is
// class 0, the upper class 1.
func (s *Sim) vcClass(v int8) int8 {
	if v < s.class0VCs {
		return 0
	}
	return 1
}

// Now returns the current simulation cycle (for tests/diagnostics).
func (s *Sim) Now() int64 { return s.now }
