package optical

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

func plainMesh(t testing.TB) (*topology.Network, *routing.Table, *traffic.Matrix) {
	t.Helper()
	net, err := topology.Build(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	tm := traffic.MustSoteriou(net, traffic.DefaultSoteriou())
	return net, tab, tm
}

// TestTableVIRouters pins the Table VI characterization of both routers.
func TestTableVIRouters(t *testing.T) {
	h := HyPPIRouter()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.ControlFJPerBit != 3.73 || h.AreaUM2 != 500 {
		t.Errorf("HyPPI router energy/area: %v fJ/bit, %v µm²; want 3.73, 500", h.ControlFJPerBit, h.AreaUM2)
	}
	lo, hi := h.LossRange()
	if lo != 0.32 || hi != 9.10 {
		t.Errorf("HyPPI loss range %v–%v dB, want 0.32–9.1", lo, hi)
	}

	p := PhotonicRouter()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ControlFJPerBit != 68.2 || p.AreaUM2 != 480000 {
		t.Errorf("photonic router energy/area: %v fJ/bit, %v µm²; want 68.2, 480000", p.ControlFJPerBit, p.AreaUM2)
	}
	lo, hi = p.LossRange()
	if lo != 0.39 || hi != 1.50 {
		t.Errorf("photonic loss range %v–%v dB, want 0.39–1.5", lo, hi)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := HyPPIRouter()
	m.LossDB[0][0] = 1 // U-turn allowed: invalid
	if err := m.Validate(); err == nil {
		t.Error("U-turn entry must be rejected")
	}
	m = HyPPIRouter()
	m.LossDB[0][1] = -1
	if err := m.Validate(); err == nil {
		t.Error("negative loss must be rejected")
	}
	m = HyPPIRouter()
	m.LossDB[0][1] = 5 // breaks symmetry
	if err := m.Validate(); err == nil {
		t.Error("asymmetric loss must be rejected")
	}
	m = HyPPIRouter()
	m.ControlFJPerBit = 0
	if err := m.Validate(); err == nil {
		t.Error("zero control energy must be rejected")
	}
}

// TestOptimalAssignmentPrefersCheapStraights: with X-Y routing, E↔W straight
// transit dominates; the optimizer must place East/West on the cheapest
// port pair and keep the traffic-weighted mean loss below the naive
// identity assignment's.
func TestOptimalAssignmentPrefersCheapStraights(t *testing.T) {
	rm := HyPPIRouter()
	var w TurnWeights
	w[West][East] = 10 // straight X transit dominates
	w[East][West] = 10
	w[North][South] = 2
	w[South][North] = 2
	w[Local][East] = 1
	w[West][Local] = 1
	assign, cost := rm.OptimalAssignment(w)
	ew := rm.LossDB[assign[East]][assign[West]]
	lo, _ := rm.LossRange()
	if ew != lo {
		t.Errorf("E↔W straight assigned loss %v dB, want the minimum %v", ew, lo)
	}
	// Identity assignment cost for comparison.
	idCost := 0.0
	weight := 0.0
	for i := 0; i < NumPorts; i++ {
		for j := 0; j < NumPorts; j++ {
			if i != j && w[i][j] > 0 {
				idCost += w[i][j] * rm.LossDB[i][j]
				weight += w[i][j]
			}
		}
	}
	idCost /= weight
	if cost > idCost {
		t.Errorf("optimized cost %v exceeds identity cost %v", cost, idCost)
	}
}

// TestFig8Projections reproduces the Fig. 8 radar orderings: all-HyPPI beats
// the all-photonic NoC on area by about two orders of magnitude and the
// electronic mesh by about one; both optical options beat electronics on
// energy by at least an order of magnitude; optical latency is half
// electronic.
func TestFig8Projections(t *testing.T) {
	net, tab, tm := plainMesh(t)
	res, err := analytic.Evaluate(net, tab, tm, analytic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Delivered bandwidth: injected flits/cycle × flit bits × clock.
	delivered := tm.MeanRowSum() * 256 * 64 * 0.78125e9
	elec := ElectronicReference(res.PowerW, res.AvgLatencyClks, res.AreaM2, delivered)

	p := DefaultParams()
	hyppi, err := ProjectAllOptical(net, tab, tm, HyPPIRouter(), p, res.AvgLatencyClks)
	if err != nil {
		t.Fatal(err)
	}
	photonic, err := ProjectAllOptical(net, tab, tm, PhotonicRouter(), p, res.AvgLatencyClks)
	if err != nil {
		t.Fatal(err)
	}

	// Latency: optical = 50% of electronic.
	if !units.ApproxEqual(hyppi.LatencyClks, 0.5*elec.LatencyClks, 1e-9) {
		t.Errorf("optical latency %v, want half of %v", hyppi.LatencyClks, elec.LatencyClks)
	}

	// Area: paper values 22.1 / 127.7 / 1.24 mm².
	if !units.WithinFactor(elec.AreaM2, 22.1*units.MillimetreSq, 1.05) {
		t.Errorf("electronic area %v mm², want ≈22.1", elec.AreaM2/units.MillimetreSq)
	}
	if !units.WithinFactor(photonic.AreaM2, 127.7*units.MillimetreSq, 1.05) {
		t.Errorf("all-photonic area %v mm², want ≈127.7", photonic.AreaM2/units.MillimetreSq)
	}
	if !units.WithinFactor(hyppi.AreaM2, 1.24*units.MillimetreSq, 1.15) {
		t.Errorf("all-HyPPI area %v mm², want ≈1.24", hyppi.AreaM2/units.MillimetreSq)
	}
	// Orders-of-magnitude area claims.
	if photonic.AreaM2/hyppi.AreaM2 < 50 {
		t.Errorf("all-HyPPI should be ~two orders smaller than all-photonic, ratio %v",
			photonic.AreaM2/hyppi.AreaM2)
	}
	if elec.AreaM2/hyppi.AreaM2 < 10 {
		t.Errorf("all-HyPPI should be ~an order smaller than electronic, ratio %v",
			elec.AreaM2/hyppi.AreaM2)
	}

	// Energy: both optical projections must be far below electronics and
	// close to each other (paper: 352 vs 354 fJ/bit).
	if elec.EnergyPerBitJ/hyppi.EnergyPerBitJ < 10 {
		t.Errorf("all-HyPPI energy %v J/bit should be ≥10× below electronic %v",
			hyppi.EnergyPerBitJ, elec.EnergyPerBitJ)
	}
	if !units.WithinFactor(photonic.EnergyPerBitJ, hyppi.EnergyPerBitJ, 5) {
		t.Errorf("optical energies should be comparable: photonic %v vs HyPPI %v",
			photonic.EnergyPerBitJ, hyppi.EnergyPerBitJ)
	}

	// The all-HyPPI triangle is strictly inside both others.
	if !TriangleBetter(hyppi, elec) {
		t.Errorf("all-HyPPI should dominate electronic: %+v vs %+v", hyppi, elec)
	}
	if !TriangleBetter(hyppi, photonic) {
		t.Errorf("all-HyPPI should dominate all-photonic: %+v vs %+v", hyppi, photonic)
	}
}

// TestPathLossAccounting checks the loss budget of a known route on a tiny
// mesh with the identity assignment.
func TestPathLossAccounting(t *testing.T) {
	c := topology.DefaultConfig()
	c.Width, c.Height = 4, 4
	net := topology.MustBuild(c)
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	rm := HyPPIRouter()
	dev, err := tech.Optical(tech.HyPPI)
	if err != nil {
		t.Fatal(err)
	}
	assign := Assignment{0, 1, 2, 3, 4}
	// Route (0,0) -> (2,0): two eastward hops, three routers.
	lossDB, routers, lengthM := pathLoss(net, tab, net.Node(0, 0), net.Node(2, 0), rm, assign, dev)
	if routers != 3 {
		t.Errorf("routers on path = %d, want 3", routers)
	}
	if lengthM != 2*units.Millimetre {
		t.Errorf("path length %v, want 2 mm", lengthM)
	}
	want := dev.Modulator.InsertionLossDB + dev.Waveguide.CouplingLossDB +
		rm.LossDB[assign[Local]][assign[East]] + // inject → east
		rm.LossDB[assign[West]][assign[East]] + // transit straight
		rm.LossDB[assign[West]][assign[Local]] + // eject
		dev.Waveguide.PropagationLossDBPerCM*0.2 // 2 mm
	if !units.ApproxEqual(lossDB, want, 1e-9) {
		t.Errorf("path loss %v dB, want %v", lossDB, want)
	}
}

// TestLongerRoutesLoseMore: end-to-end loss grows with route length.
func TestLongerRoutesLoseMore(t *testing.T) {
	net, tab, _ := plainMesh(t)
	rm := HyPPIRouter()
	dev, _ := tech.Optical(tech.HyPPI)
	assign := Assignment{0, 1, 2, 3, 4}
	short, _, _ := pathLoss(net, tab, net.Node(0, 0), net.Node(1, 0), rm, assign, dev)
	long, _, _ := pathLoss(net, tab, net.Node(0, 0), net.Node(15, 15), rm, assign, dev)
	if long <= short {
		t.Errorf("corner-to-corner loss %v should exceed neighbour loss %v", long, short)
	}
}

func TestDirectionHelpers(t *testing.T) {
	if opposite(East) != West || opposite(West) != East ||
		opposite(North) != South || opposite(South) != North || opposite(Local) != Local {
		t.Error("opposite() broken")
	}
	names := []string{"Local", "East", "West", "North", "South"}
	for i, n := range names {
		if Direction(i).String() != n {
			t.Errorf("Direction(%d).String() = %q", i, Direction(i).String())
		}
	}
}

func TestProjectErrors(t *testing.T) {
	net, tab, tm := plainMesh(t)
	bad := HyPPIRouter()
	bad.AreaUM2 = 0
	if _, err := ProjectAllOptical(net, tab, tm, bad, DefaultParams(), 50); err == nil {
		t.Error("invalid router must fail")
	}
	p := DefaultParams()
	p.LatencyFactor = 0
	if _, err := ProjectAllOptical(net, tab, tm, HyPPIRouter(), p, 50); err == nil {
		t.Error("invalid params must fail")
	}
	if _, err := ProjectAllOptical(net, tab, traffic.NewMatrix(256), HyPPIRouter(), DefaultParams(), 50); err == nil {
		t.Error("empty traffic must fail")
	}
}

func TestLossRangeIgnoresNaN(t *testing.T) {
	rm := HyPPIRouter()
	lo, hi := rm.LossRange()
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		t.Errorf("loss range contaminated by diagonal: %v, %v", lo, hi)
	}
}
