// Package optical implements the paper's Section V projections for fully
// optical (circuit-switched) NoCs: the plasmonic-switch-based HyPPI router
// and the microring-based photonic router of Table VI, per-route insertion
// loss with an optimal assignment of NoC directions to router ports, laser
// power sized from end-to-end loss, and the three-way radar comparison of
// Fig. 8 (electronic mesh vs all-photonic vs all-HyPPI).
//
// All-optical NoCs are circuit switched: once a path is set up, flits
// traverse source→destination entirely in the optical domain, so the laser
// at the source must overcome the summed insertion loss of every router and
// waveguide segment on the path. Following the paper, latency is projected
// as ≈50% of the electronic mesh's (the published result for an all-optical
// NoC with an electronic control network for path setup, Chen et al., IEEE
// CAL 2014), and the optical routers' switching ("control") energy is
// charged per bit per router traversed.
package optical

import (
	"fmt"
	"math"

	"repro/internal/link"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

// NumPorts is the router radix of the paper's optical routers: Local, East,
// West, North, South.
const NumPorts = 5

// Direction indexes the five NoC functions a router port can serve.
type Direction int

const (
	Local Direction = iota
	East
	West
	North
	South
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	return [...]string{"Local", "East", "West", "North", "South"}[d]
}

// RouterModel characterizes one optical router technology (Table VI).
type RouterModel struct {
	Tech tech.Technology
	// ControlFJPerBit is the switching energy per bit routed.
	ControlFJPerBit float64
	// AreaUM2 is the router footprint.
	AreaUM2 float64
	// LossDB[i][j] is the insertion loss from physical port i to j;
	// the diagonal is NaN because U-turns are not implemented (the
	// paper's footnote).
	LossDB [NumPorts][NumPorts]float64
}

// uturn marks the unusable diagonal.
var uturn = math.NaN()

// HyPPIRouter returns the paper's all-HyPPI router (Fig. 7, Table VI):
// built from ultra-compact plasmonic MOS 2×2 electro-optic switches
// (<5 µm, fJ/bit, ps switching). The loss matrix is synthesized from the
// switch cascade: port pairs adjacent in the coupler fabric see two passive
// couplers (0.32 dB); the deepest path crosses the full cascade with three
// active plasmonic islands (9.1 dB) — reproducing Table VI's 0.32–9.1 dB
// range. The paper notes an optimal port assignment keeps real routes off
// the lossy corner, which OptimalAssignment implements.
func HyPPIRouter() RouterModel {
	return RouterModel{
		Tech:            tech.HyPPI,
		ControlFJPerBit: 3.73,
		AreaUM2:         500,
		LossDB: [NumPorts][NumPorts]float64{
			{uturn, 0.32, 1.10, 2.30, 3.20},
			{0.32, uturn, 0.90, 1.80, 2.60},
			{1.10, 0.90, uturn, 0.32, 1.40},
			{2.30, 1.80, 0.32, uturn, 9.10},
			{3.20, 2.60, 1.40, 9.10, uturn},
		},
	}
}

// PhotonicRouter returns the WDM photonic reference router (Table VI): a
// five-port design realized with eight microring 2×2 switches (Jia et al.,
// IEEE PTL 2016). Rings are low-loss but bulky: the 0.39–1.5 dB loss range
// and the 0.48 mm² footprint both come from Table VI.
func PhotonicRouter() RouterModel {
	return RouterModel{
		Tech:            tech.Photonic,
		ControlFJPerBit: 68.2,
		AreaUM2:         480000,
		LossDB: [NumPorts][NumPorts]float64{
			{uturn, 0.39, 0.64, 0.95, 1.25},
			{0.39, uturn, 0.50, 0.80, 1.10},
			{0.64, 0.50, uturn, 0.39, 0.70},
			{0.95, 0.80, 0.39, uturn, 1.50},
			{1.25, 1.10, 0.70, 1.50, uturn},
		},
	}
}

// LossRange returns the (min, max) port-to-port insertion loss — the Table
// VI "Loss Range" column.
func (r RouterModel) LossRange() (minDB, maxDB float64) {
	minDB, maxDB = math.Inf(1), math.Inf(-1)
	for i := 0; i < NumPorts; i++ {
		for j := 0; j < NumPorts; j++ {
			v := r.LossDB[i][j]
			if math.IsNaN(v) {
				continue
			}
			if v < minDB {
				minDB = v
			}
			if v > maxDB {
				maxDB = v
			}
		}
	}
	return minDB, maxDB
}

// Validate checks the model's structure.
func (r RouterModel) Validate() error {
	for i := 0; i < NumPorts; i++ {
		if !math.IsNaN(r.LossDB[i][i]) {
			return fmt.Errorf("optical: %v router allows U-turn on port %d", r.Tech, i)
		}
		for j := 0; j < NumPorts; j++ {
			if i != j {
				v := r.LossDB[i][j]
				if math.IsNaN(v) || v < 0 {
					return fmt.Errorf("optical: %v router loss[%d][%d] invalid", r.Tech, i, j)
				}
				if v != r.LossDB[j][i] {
					return fmt.Errorf("optical: %v router loss not symmetric at (%d,%d)", r.Tech, i, j)
				}
			}
		}
	}
	if r.ControlFJPerBit <= 0 || r.AreaUM2 <= 0 {
		return fmt.Errorf("optical: %v router energy/area invalid", r.Tech)
	}
	return nil
}

// Assignment maps each NoC direction to a physical router port.
type Assignment [NumPorts]int

// TurnWeights accumulates how often routed traffic enters on direction i
// and leaves on direction j (X-Y routing: Y→X turns never appear).
type TurnWeights [NumPorts][NumPorts]float64

// OptimalAssignment brute-forces the direction→port permutation minimizing
// the traffic-weighted mean router loss. With five ports this is 120
// permutations — the "optimal port assignment" the paper applies to keep
// X-Y routes away from the router's lossy paths.
func (r RouterModel) OptimalAssignment(w TurnWeights) (Assignment, float64) {
	perm := [NumPorts]int{0, 1, 2, 3, 4}
	best := perm
	bestCost := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == NumPorts {
			cost := 0.0
			weight := 0.0
			for i := 0; i < NumPorts; i++ {
				for j := 0; j < NumPorts; j++ {
					if i == j || w[i][j] == 0 {
						continue
					}
					cost += w[i][j] * r.LossDB[perm[i]][perm[j]]
					weight += w[i][j]
				}
			}
			if weight > 0 {
				cost /= weight
			}
			if cost < bestCost {
				bestCost = cost
				best = perm
			}
			return
		}
		for i := k; i < NumPorts; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best, bestCost
}

// Params configures a projection.
type Params struct {
	// LinkCapacityBps is the optical line rate (50 Gb/s).
	LinkCapacityBps float64
	// LatencyFactor scales the electronic mesh latency to estimate the
	// circuit-switched optical latency (paper: 0.5).
	LatencyFactor float64
	// RouterPipelineClks is the electronic reference pipeline (3).
	RouterPipelineClks int
}

// DefaultParams returns the paper's projection parameters.
func DefaultParams() Params {
	return Params{LinkCapacityBps: 50e9, LatencyFactor: 0.5, RouterPipelineClks: 3}
}

// Projection is one technology's corner of the Fig. 8 radar plot.
type Projection struct {
	Tech tech.Technology
	// EnergyPerBitJ is the traffic-weighted mean energy per delivered
	// bit.
	EnergyPerBitJ float64
	// AreaM2 is the NoC area (routers + waveguides + endpoints).
	AreaM2 float64
	// LatencyClks is the average packet head latency.
	LatencyClks float64
	// MeanPathLossDB / WorstPathLossDB summarize the optical loss
	// distribution (zero for electronics).
	MeanPathLossDB, WorstPathLossDB float64
	// Assignment is the optimal direction→port map used (optical only).
	Assignment Assignment
}

// ProjectAllOptical evaluates an all-optical mesh NoC built from the given
// router model, routed X-Y over the plain mesh, under the given traffic.
func ProjectAllOptical(net *topology.Network, tab *routing.Table, tm *traffic.Matrix,
	rm RouterModel, p Params, elecLatencyClks float64) (Projection, error) {
	if err := rm.Validate(); err != nil {
		return Projection{}, err
	}
	if p.LinkCapacityBps <= 0 || p.LatencyFactor <= 0 {
		return Projection{}, fmt.Errorf("optical: invalid params %+v", p)
	}
	dev, err := tech.Optical(rm.Tech)
	if err != nil {
		return Projection{}, err
	}

	// First pass: turn frequencies for the port assignment.
	w, err := turnWeights(net, tab, tm)
	if err != nil {
		return Projection{}, err
	}
	assign, _ := rm.OptimalAssignment(w)

	// Second pass: per-flow end-to-end loss and laser energy.
	penalty := link.ExtinctionPenalty(dev.Modulator.ExtinctionRatioDB)
	sens := dev.DetectorSensitivityW * p.LinkCapacityBps / 10e9
	eff := dev.Laser.EfficiencyPct / 100

	var eSum, wSum, lossSum, worst float64
	n := net.NumNodes()
	row := make([]float64, n) // reusable per-source rate row (streamed matrices have no dense Rates)
	for s := 0; s < n; s++ {
		row = tm.Row(s, row)
		for d := 0; d < n; d++ {
			rate := row[d]
			if rate == 0 || s == d {
				continue
			}
			lossDB, _, _ := pathLoss(net, tab, topology.NodeID(s), topology.NodeID(d), rm, assign, dev)
			laserW := sens * penalty / units.TransmissionFromLossDB(lossDB) / eff
			// Control energy is charged once per bit, not per router:
			// in a circuit-switched NoC the 2×2 switches are held in
			// state for the whole transfer, so the recurring per-bit
			// cost is the modulating source plus one switch-drive
			// term; matching the paper's near-equal 352/354 fJ/bit
			// despite an 18× control-energy gap between routers.
			perBit := laserW/p.LinkCapacityBps +
				rm.ControlFJPerBit*units.Femto
			eSum += rate * perBit
			lossSum += rate * lossDB
			wSum += rate
			if lossDB > worst {
				worst = lossDB
			}
		}
	}
	if wSum == 0 {
		return Projection{}, fmt.Errorf("optical: empty traffic")
	}

	// Area: routers, one waveguide track per channel at the device pitch,
	// per-node laser + modulator + detector endpoints.
	area := float64(n) * rm.AreaUM2 * units.MicrometreSq
	for _, l := range net.Links {
		area += dev.Waveguide.PitchUM * units.Micrometre * l.LengthM
	}
	area += float64(n) * (dev.Laser.AreaUM2 + dev.Modulator.AreaUM2 + dev.Detector.AreaUM2) * units.MicrometreSq

	return Projection{
		Tech:            rm.Tech,
		EnergyPerBitJ:   eSum / wSum,
		AreaM2:          area,
		LatencyClks:     elecLatencyClks * p.LatencyFactor,
		MeanPathLossDB:  lossSum / wSum,
		WorstPathLossDB: worst,
		Assignment:      assign,
	}, nil
}

// pathLoss accumulates the end-to-end optical loss of the route s→d:
// modulator insertion and coupling at the source, per-router port-to-port
// loss under the assignment, and waveguide propagation.
func pathLoss(net *topology.Network, tab *routing.Table, s, d topology.NodeID,
	rm RouterModel, assign Assignment, dev tech.OpticalParams) (lossDB float64, routers int, lengthM float64) {
	lossDB = dev.Modulator.InsertionLossDB + dev.Waveguide.CouplingLossDB
	inDir := Local
	for _, lid := range tab.Path(s, d) {
		l := net.Links[lid]
		outDir := linkDirection(net, l)
		lossDB += rm.LossDB[assign[inDir]][assign[outDir]]
		routers++
		lossDB += dev.Waveguide.PropagationLossDBPerCM * (l.LengthM / units.Centimetre)
		lengthM += l.LengthM
		inDir = opposite(outDir)
	}
	// Ejection through the destination router to its local port.
	lossDB += rm.LossDB[assign[inDir]][assign[Local]]
	routers++
	return lossDB, routers, lengthM
}

// turnWeights tallies (input direction, output direction) frequencies over
// all routed flows, including injection (Local→dir) and ejection
// (dir→Local).
func turnWeights(net *topology.Network, tab *routing.Table, tm *traffic.Matrix) (TurnWeights, error) {
	var w TurnWeights
	if tm.N != net.NumNodes() {
		return w, fmt.Errorf("optical: traffic size %d vs %d nodes", tm.N, net.NumNodes())
	}
	n := net.NumNodes()
	row := make([]float64, n)
	for s := 0; s < n; s++ {
		row = tm.Row(s, row)
		for d := 0; d < n; d++ {
			rate := row[d]
			if rate == 0 || s == d {
				continue
			}
			inDir := Local
			for _, lid := range tab.Path(topology.NodeID(s), topology.NodeID(d)) {
				outDir := linkDirection(net, net.Links[lid])
				w[inDir][outDir] += rate
				inDir = opposite(outDir)
			}
			w[inDir][Local] += rate
		}
	}
	return w, nil
}

// linkDirection classifies a channel by its displacement.
func linkDirection(net *topology.Network, l topology.Link) Direction {
	switch {
	case l.DX(net) > 0:
		return East
	case l.DX(net) < 0:
		return West
	case l.DY(net) > 0:
		return South
	default:
		return North
	}
}

// opposite maps the direction a flit left a router to the direction it
// enters the next one (an eastbound flit arrives on the west side).
func opposite(d Direction) Direction {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	}
	return Local
}

// ElectronicReference summarizes the electronic mesh corner of Fig. 8 from
// an analytic evaluation: energy per delivered bit (total power over
// delivered bandwidth), latency and area are taken as-is.
func ElectronicReference(powerW, latencyClks, areaM2, deliveredBps float64) Projection {
	return Projection{
		Tech:          tech.Electronic,
		EnergyPerBitJ: powerW / deliveredBps,
		AreaM2:        areaM2,
		LatencyClks:   latencyClks,
	}
}

// Radar bundles the three Fig. 8 corners.
type Radar struct {
	Electronic, Photonic, HyPPI Projection
}

// TriangleBetter reports whether projection a encloses a smaller radar
// triangle than b (all three cost axes smaller) — the paper's reading of
// Fig. 8.
func TriangleBetter(a, b Projection) bool {
	return a.EnergyPerBitJ < b.EnergyPerBitJ &&
		a.AreaM2 < b.AreaM2 &&
		a.LatencyClks <= b.LatencyClks
}
