package taskgraph

import (
	"fmt"

	"repro/internal/topology"
)

// Message is one node of the DAG: a network message plus the compute that
// produces it.
type Message struct {
	// Src and Dst are the endpoint nodes.
	Src, Dst topology.NodeID
	// SizeFlits is the message length in flits (≥ 1).
	SizeFlits int
	// ComputeClks models the compute producing this message: the release
	// offset after the last predecessor's tail ejects. For a message with
	// no predecessors it is the absolute release cycle.
	ComputeClks int64
	// Deps lists the indices (into Graph.Messages) of the messages that
	// must fully eject before this one becomes releasable.
	Deps []int
}

// Graph is a message DAG over a fixed node set.
type Graph struct {
	// Name identifies the workload (generator name for generated graphs).
	Name string
	// NumNodes is the node-count the graph was generated for; endpoints
	// must lie in [0, NumNodes).
	NumNodes int
	// Messages in index order; Deps refer to these indices.
	Messages []Message
}

// TotalFlits sums the message sizes.
func (g *Graph) TotalFlits() int64 {
	var sum int64
	for _, m := range g.Messages {
		sum += int64(m.SizeFlits)
	}
	return sum
}

// Validate checks endpoints, sizes, offsets and dependency indices, and
// rejects cyclic graphs (a cycle would deadlock closed-loop injection:
// every message on it waits for another forever).
func (g *Graph) Validate() error {
	for i, m := range g.Messages {
		if m.SizeFlits <= 0 {
			return fmt.Errorf("taskgraph: message %d size %d", i, m.SizeFlits)
		}
		if int(m.Src) < 0 || int(m.Src) >= g.NumNodes ||
			int(m.Dst) < 0 || int(m.Dst) >= g.NumNodes {
			return fmt.Errorf("taskgraph: message %d endpoints %d->%d out of range [0,%d)",
				i, m.Src, m.Dst, g.NumNodes)
		}
		if m.ComputeClks < 0 {
			return fmt.Errorf("taskgraph: message %d negative compute offset %d", i, m.ComputeClks)
		}
		for _, d := range m.Deps {
			if d < 0 || d >= len(g.Messages) {
				return fmt.Errorf("taskgraph: message %d dep %d out of range", i, d)
			}
			if d == i {
				return fmt.Errorf("taskgraph: message %d depends on itself", i)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order of the message indices (Kahn's
// algorithm, smallest ready index first, so the order is deterministic) or
// an error naming a message on a dependency cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.Messages)
	indeg := make([]int, n)
	succ := make([][]int32, n)
	for i, m := range g.Messages {
		indeg[i] = len(m.Deps)
		for _, d := range m.Deps {
			succ[d] = append(succ[d], int32(i))
		}
	}
	// A min-heap over ready indices would be asymptotically tidier; a
	// sorted frontier via simple insertion keeps this dependency-free and
	// the graphs are small relative to the simulation they drive.
	var ready []int
	for i := n - 1; i >= 0; i-- {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		i := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, i)
		for _, s := range succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				// Insert keeping ready sorted descending so the pop above
				// always takes the smallest index.
				j := len(ready)
				ready = append(ready, int(s))
				for j > 0 && ready[j-1] < int(s) {
					ready[j] = ready[j-1]
					j--
				}
				ready[j] = int(s)
			}
		}
	}
	if len(order) != n {
		for i := range indeg {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("taskgraph: dependency cycle through message %d (%d->%d)",
					i, g.Messages[i].Src, g.Messages[i].Dst)
			}
		}
	}
	return order, nil
}

// CriticalPathClks folds a per-message latency estimate over the DAG: each
// message finishes at max(dep finishes) + ComputeClks + latency(message),
// and the result is the latest finish. With latency = zero-load network
// latency this is the contention-free lower bound on makespan (closed-loop
// injection can only release messages at or after these times, and the
// network can only add delay).
func (g *Graph) CriticalPathClks(latency func(Message) int64) (int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := make([]int64, len(g.Messages))
	var makespan int64
	for _, i := range order {
		m := g.Messages[i]
		var start int64
		for _, d := range m.Deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + m.ComputeClks + latency(m)
		if finish[i] > makespan {
			makespan = finish[i]
		}
	}
	return makespan, nil
}
