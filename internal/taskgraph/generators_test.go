package taskgraph

import (
	"reflect"
	"testing"
)

// TestGeneratorsValidate: every registered generator must produce a valid
// (acyclic, in-range) graph across node counts, including non-powers of
// two, with the message count its formula promises.
func TestGeneratorsValidate(t *testing.T) {
	cfg := DefaultGenConfig()
	counts := map[string]func(n int) int{
		"reduce":         func(n int) int { return n - 1 },
		"broadcast":      func(n int) int { return n - 1 },
		"ring-allreduce": func(n int) int { return 2 * n * (n - 1) },
		"tree-allreduce": func(n int) int { return 2 * (n - 1) },
		"allgather":      func(n int) int { return n * (n - 1) },
		"moe-alltoall":   func(n int) int { return 2 * n * (n - 1) },
		"pipeline":       func(n int) int { return cfg.Microbatches * (n - 1) },
	}
	for _, gen := range Generators() {
		want, ok := counts[gen.Name()]
		if !ok {
			t.Errorf("generator %q has no message-count formula in this test", gen.Name())
			continue
		}
		for _, n := range []int{2, 6, 16, 64} {
			g, err := gen.Generate(n, cfg)
			if err != nil {
				t.Errorf("%s(n=%d): %v", gen.Name(), n, err)
				continue
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s(n=%d): invalid graph: %v", gen.Name(), n, err)
			}
			if got := len(g.Messages); got != want(n) {
				t.Errorf("%s(n=%d): %d messages, want %d", gen.Name(), n, got, want(n))
			}
			if g.NumNodes != n {
				t.Errorf("%s(n=%d): NumNodes = %d", gen.Name(), n, g.NumNodes)
			}
		}
	}
}

// TestGeneratorsDeterministic: generators are pure functions — two calls
// with identical inputs must yield identical graphs.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, gen := range Generators() {
		a, err := gen.Generate(16, DefaultGenConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen.Generate(16, DefaultGenConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: generator not deterministic", gen.Name())
		}
	}
}

// TestGeneratorStructure spot-checks the dependency shapes that carry the
// semantics: the reduce root receives log₂N messages, MoE combines depend
// on their matching dispatch, and pipeline stage-0 releases are staggered.
func TestGeneratorStructure(t *testing.T) {
	cfg := DefaultGenConfig()

	red := mustGen(t, "reduce", 8, cfg)
	rootIn := 0
	for _, m := range red.Messages {
		if m.Dst == 0 {
			rootIn++
		}
	}
	if rootIn != 3 { // log₂8
		t.Errorf("reduce(8): root receives %d messages, want 3", rootIn)
	}
	// The final message into the root must depend on earlier receptions.
	last := red.Messages[len(red.Messages)-1]
	if last.Dst != 0 || len(last.Deps) == 0 {
		t.Errorf("reduce(8): final message %+v should target the root with deps", last)
	}

	moe := mustGen(t, "moe-alltoall", 4, cfg)
	half := len(moe.Messages) / 2
	for i, m := range moe.Messages[half:] {
		if len(m.Deps) != 1 {
			t.Fatalf("moe combine %d: %d deps, want 1", i, len(m.Deps))
		}
		d := moe.Messages[m.Deps[0]]
		if d.Src != m.Dst || d.Dst != m.Src {
			t.Errorf("moe combine %d->%d depends on dispatch %d->%d, want the reverse pair",
				m.Src, m.Dst, d.Src, d.Dst)
		}
	}

	pipe := mustGen(t, "pipeline", 4, cfg)
	for m := 0; m < cfg.Microbatches; m++ {
		first := pipe.Messages[m]
		if want := int64(m+1) * cfg.ComputeClks; first.ComputeClks != want || len(first.Deps) != 0 {
			t.Errorf("pipeline stage-0 microbatch %d: offset %d deps %v, want %d and none",
				m, first.ComputeClks, first.Deps, want)
		}
	}

	ring := mustGen(t, "ring-allreduce", 8, cfg)
	if size := ring.Messages[0].SizeFlits; size != cfg.SizeFlits/8 {
		t.Errorf("ring-allreduce(8): chunk %d flits, want %d", size, cfg.SizeFlits/8)
	}
	// All-gather phase steps are pure forwards: no compute offset.
	if off := ring.Messages[len(ring.Messages)-1].ComputeClks; off != 0 {
		t.Errorf("ring-allreduce final step offset %d, want 0", off)
	}
}

// TestLookupAndParse: registry resolution mirrors the traffic-pattern
// registry's contract.
func TestLookupAndParse(t *testing.T) {
	if _, err := Lookup("no-such-graph"); err == nil {
		t.Error("Lookup of unknown generator succeeded")
	}
	all, err := ParseGenerators("all")
	if err != nil || len(all) != len(Names()) {
		t.Errorf("ParseGenerators(all) = %d generators, err %v", len(all), err)
	}
	two, err := ParseGenerators(" reduce , pipeline ")
	if err != nil || len(two) != 2 || two[0].Name() != "reduce" || two[1].Name() != "pipeline" {
		t.Errorf("ParseGenerators list = %v, err %v", two, err)
	}
	if _, err := ParseGenerators(" , "); err == nil {
		t.Error("ParseGenerators of empty list succeeded")
	}
	if _, err := Generators()[0].Generate(1, DefaultGenConfig()); err == nil {
		t.Error("Generate on a 1-node network succeeded")
	}
	if _, err := Generators()[0].Generate(4, GenConfig{}); err == nil {
		t.Error("Generate with the zero GenConfig succeeded")
	}
}

func mustGen(t *testing.T, name string, n int, cfg GenConfig) *Graph {
	t.Helper()
	gen, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
