package taskgraph

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func msg(src, dst, size int, off int64, deps ...int) Message {
	return Message{Src: topology.NodeID(src), Dst: topology.NodeID(dst), SizeFlits: size, ComputeClks: off, Deps: deps}
}

// TestValidate exercises the structural checks, cycle rejection most
// importantly: a cyclic graph deadlocks closed-loop injection, so it must
// die at validation, never reach a simulator.
func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		g       Graph
		wantErr string // empty = valid
	}{
		{"empty", Graph{NumNodes: 4}, ""},
		{"chain", Graph{NumNodes: 4, Messages: []Message{
			msg(0, 1, 1, 0), msg(1, 2, 1, 5, 0), msg(2, 3, 1, 5, 1),
		}}, ""},
		{"diamond", Graph{NumNodes: 4, Messages: []Message{
			msg(0, 1, 1, 0), msg(0, 2, 1, 0), msg(1, 3, 1, 0, 0), msg(2, 3, 1, 0, 1),
		}}, ""},
		{"bad size", Graph{NumNodes: 4, Messages: []Message{msg(0, 1, 0, 0)}}, "size"},
		{"bad endpoint", Graph{NumNodes: 4, Messages: []Message{msg(0, 9, 1, 0)}}, "out of range"},
		{"negative offset", Graph{NumNodes: 4, Messages: []Message{msg(0, 1, 1, -1)}}, "negative compute"},
		{"dep out of range", Graph{NumNodes: 4, Messages: []Message{msg(0, 1, 1, 0, 7)}}, "dep 7 out of range"},
		{"self dep", Graph{NumNodes: 4, Messages: []Message{msg(0, 1, 1, 0, 0)}}, "depends on itself"},
		{"two-cycle", Graph{NumNodes: 4, Messages: []Message{
			msg(0, 1, 1, 0, 1), msg(1, 2, 1, 0, 0),
		}}, "cycle"},
		{"long cycle behind a chain", Graph{NumNodes: 4, Messages: []Message{
			msg(0, 1, 1, 0),
			msg(1, 2, 1, 0, 0, 4), // depends on the cycle's tail
			msg(2, 3, 1, 0, 3),
			msg(3, 0, 1, 0, 4),
			msg(0, 2, 1, 0, 2),
		}}, "cycle"},
	}
	for _, c := range cases {
		err := c.g.Validate()
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("%s: Validate() = %v, want nil", c.name, err)
		case c.wantErr != "" && (err == nil || !strings.Contains(err.Error(), c.wantErr)):
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.wantErr)
		}
	}
}

// TestTopoOrderDeterministic: the Kahn order must respect every edge and
// always pick the smallest ready index, making it reproducible.
func TestTopoOrderDeterministic(t *testing.T) {
	g := Graph{NumNodes: 4, Messages: []Message{
		msg(0, 1, 1, 0, 3),
		msg(1, 2, 1, 0),
		msg(2, 3, 1, 0, 1, 3),
		msg(3, 0, 1, 0),
	}}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("TopoOrder() = %v, want %v", order, want)
		}
	}
}

// TestCriticalPath: the DAG fold must follow the longest
// dependency chain, offsets and latencies included.
func TestCriticalPath(t *testing.T) {
	g := Graph{NumNodes: 4, Messages: []Message{
		msg(0, 1, 1, 2),       // finish 2+10 = 12
		msg(1, 2, 1, 3, 0),    // finish 12+3+10 = 25
		msg(0, 3, 1, 0),       // finish 10
		msg(2, 3, 1, 4, 1, 2), // finish 25+4+10 = 39
	}}
	ms, err := g.CriticalPathClks(func(Message) int64 { return 10 })
	if err != nil {
		t.Fatal(err)
	}
	if ms != 39 {
		t.Errorf("CriticalPathClks = %d, want 39", ms)
	}
}
