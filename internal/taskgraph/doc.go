// Package taskgraph models execution-driven application workloads as
// message DAGs: each node is one network message (src, dst, size) and each
// edge is a dependency — the message may not enter its source queue until
// every predecessor's tail flit has ejected at its destination. Compute
// time between receiving inputs and sending the result is modeled as a
// release offset (ComputeClks) applied after the last predecessor
// completes; messages with no predecessors treat the offset as an absolute
// release cycle.
//
// Running a Graph through the noc kernel's closed-loop injection mode
// (Sim.InjectClosedLoop) makes congestion feed back into the schedule: a
// message delayed by contention delays everything downstream of it, which
// is exactly the property fixed-rate synthetic traffic cannot express. The
// end-to-end figure of merit is the makespan — the cycle at which the last
// tail flit ejects (Stats.MakespanClks) — reported alongside the usual
// per-flit latency distribution.
//
// The package ships parameterized generators for the workload classes that
// decide whether long-range express links pay off (see ROADMAP
// "Execution-driven application workloads"):
//
//   - classic collectives: binomial-tree reduce and broadcast, chunked
//     ring allreduce, and tree allreduce (reduce + broadcast composed);
//   - transformer-style operators: attention all-gather (ring), MoE
//     all-to-all dispatch/combine (combine depends on the matching
//     dispatch through expert compute), and pipeline-parallel
//     point-to-point microbatch chains.
//
// Generators are registered by name, mirroring the traffic-pattern
// registry, so CLIs and sweeps can select them with -graphs=a,b,c. All
// generators are pure functions of (node count, GenConfig) — no RNG — so
// every sweep over them is deterministic by construction.
package taskgraph
