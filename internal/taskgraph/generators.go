package taskgraph

import (
	"fmt"
	"strings"

	"repro/internal/topology"
)

// GenConfig parameterizes the generators. The zero value is invalid; start
// from DefaultGenConfig.
type GenConfig struct {
	// SizeFlits is the full payload one rank contributes (a collective
	// that chunks divides this, never below one flit per message).
	SizeFlits int
	// ComputeClks is the modeled compute between receiving inputs and
	// sending the dependent message (reduction op, expert FFN, pipeline
	// stage forward pass). Pure forwarding steps use zero.
	ComputeClks int64
	// Microbatches is the pipeline generator's microbatch count.
	Microbatches int
}

// DefaultGenConfig is a mid-size operator: a 32-flit payload (the paper's
// long packet), a 16-clock compute step, four pipeline microbatches.
func DefaultGenConfig() GenConfig {
	return GenConfig{SizeFlits: 32, ComputeClks: 16, Microbatches: 4}
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if c.SizeFlits <= 0 {
		return fmt.Errorf("taskgraph: non-positive size %d flits", c.SizeFlits)
	}
	if c.ComputeClks < 0 {
		return fmt.Errorf("taskgraph: negative compute %d clks", c.ComputeClks)
	}
	if c.Microbatches <= 0 {
		return fmt.Errorf("taskgraph: non-positive microbatch count %d", c.Microbatches)
	}
	return nil
}

// chunk divides a payload across k messages, never below one flit.
func chunk(sizeFlits, k int) int {
	if k < 1 {
		k = 1
	}
	if c := sizeFlits / k; c > 0 {
		return c
	}
	return 1
}

// Generator is a named task-graph builder: a pure function of (node count,
// config) — no RNG — so sweeps over generated graphs are deterministic by
// construction, like the traffic-pattern registry.
type Generator interface {
	// Name is the registry key (lower-case, stable).
	Name() string
	// Description is a one-line structure summary for docs and CLIs.
	Description() string
	// Generate builds the DAG for a node count. It fails when the
	// workload's structural preconditions (≥2 nodes, …) do not hold.
	Generate(numNodes int, cfg GenConfig) (*Graph, error)
}

// funcGenerator adapts a builder function to the Generator interface.
type funcGenerator struct {
	name, desc string
	gen        func(n int, cfg GenConfig) (*Graph, error)
}

func (g funcGenerator) Name() string        { return g.name }
func (g funcGenerator) Description() string { return g.desc }
func (g funcGenerator) Generate(n int, cfg GenConfig) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("taskgraph: %s needs ≥2 nodes, got %d", g.name, n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return g.gen(n, cfg)
}

// registry maps generator names to implementations; order preserves
// registration so listings are stable.
var (
	registry      = map[string]Generator{}
	registryOrder []string
)

// Register adds a generator to the registry. It panics on a duplicate or
// empty name — registration is an init-time programming act, not runtime
// input handling.
func Register(g Generator) {
	name := strings.ToLower(g.Name())
	if name == "" {
		panic("taskgraph: generator with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("taskgraph: duplicate generator %q", name))
	}
	registry[name] = g
	registryOrder = append(registryOrder, name)
}

// Lookup resolves a registry name (case-insensitive). The error lists the
// known names so CLI users can self-serve.
func Lookup(name string) (Generator, error) {
	g, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("taskgraph: unknown generator %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return g, nil
}

// Names returns the registered generator names in registration order.
func Names() []string {
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	return out
}

// Generators returns every registered generator in registration order.
func Generators() []Generator {
	out := make([]Generator, 0, len(registryOrder))
	for _, n := range registryOrder {
		out = append(out, registry[n])
	}
	return out
}

// ParseGenerators resolves a comma-separated list of registry names; the
// single token "all" selects the whole registry.
func ParseGenerators(spec string) ([]Generator, error) {
	if strings.EqualFold(strings.TrimSpace(spec), "all") {
		return Generators(), nil
	}
	var out []Generator
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		g, err := Lookup(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("taskgraph: empty generator list %q (registered: %s, or \"all\")",
			spec, strings.Join(Names(), ", "))
	}
	return out, nil
}

// genReduce is the binomial-tree reduce to node 0: in the round with
// stride s, every node ≡ s (mod 2s) sends its partial sum to node−s. A
// sender's message depends on everything it received in earlier rounds
// (it cannot reduce what has not arrived), with ComputeClks for the
// reduction op. ⌈log₂N⌉ rounds, N−1 messages.
func genReduce(n int, cfg GenConfig) (*Graph, error) {
	g := &Graph{Name: "reduce", NumNodes: n}
	buildReduce(g, n, cfg)
	return g, nil
}

// buildReduce appends the binomial reduce-to-0 messages to g and returns
// the indices of the messages node 0 received (the root's inputs), so
// tree-allreduce can hang the broadcast off them.
func buildReduce(g *Graph, n int, cfg GenConfig) []int {
	recv := make([][]int, n)
	for stride := 1; stride < n; stride *= 2 {
		for src := stride; src < n; src += 2 * stride {
			dst := src - stride
			idx := len(g.Messages)
			g.Messages = append(g.Messages, Message{
				Src:         topology.NodeID(src),
				Dst:         topology.NodeID(dst),
				SizeFlits:   cfg.SizeFlits,
				ComputeClks: cfg.ComputeClks,
				Deps:        append([]int(nil), recv[src]...),
			})
			recv[dst] = append(recv[dst], idx)
		}
	}
	return recv[0]
}

// genBroadcast is the binomial-tree broadcast from node 0 — the reduce
// tree run in reverse. The root's sends carry ComputeClks (the producer);
// forwards are pure copies and carry zero.
func genBroadcast(n int, cfg GenConfig) (*Graph, error) {
	g := &Graph{Name: "broadcast", NumNodes: n}
	buildBroadcast(g, n, cfg, nil)
	return g, nil
}

// buildBroadcast appends the binomial broadcast-from-0 messages to g. The
// root's sends depend on rootDeps (nil for a standalone broadcast).
func buildBroadcast(g *Graph, n int, cfg GenConfig, rootDeps []int) {
	// recvMsg[i] is the message by which node i obtained the value.
	recvMsg := make([]int, n)
	for i := range recvMsg {
		recvMsg[i] = -1
	}
	top := 1
	for top*2 < n {
		top *= 2
	}
	for stride := top; stride >= 1; stride /= 2 {
		for dst := stride; dst < n; dst += 2 * stride {
			src := dst - stride
			var deps []int
			var off int64
			switch {
			case src == 0:
				deps = append([]int(nil), rootDeps...)
				off = cfg.ComputeClks
			default:
				deps = []int{recvMsg[src]}
			}
			idx := len(g.Messages)
			g.Messages = append(g.Messages, Message{
				Src:         topology.NodeID(src),
				Dst:         topology.NodeID(dst),
				SizeFlits:   cfg.SizeFlits,
				ComputeClks: off,
				Deps:        deps,
			})
			recvMsg[dst] = idx
		}
	}
}

// genRingAllReduce is the bandwidth-optimal chunked ring: the payload is
// split into N chunks and every node sends one chunk per step to its ring
// successor for 2(N−1) steps — N−1 reduce-scatter steps (each send waits
// on the previous step's receive plus the reduction compute) then N−1
// all-gather steps (pure forwards). 2N(N−1) messages.
func genRingAllReduce(n int, cfg GenConfig) (*Graph, error) {
	g := &Graph{Name: "ring-allreduce", NumNodes: n}
	size := chunk(cfg.SizeFlits, n)
	ringSteps(g, n, 2*(n-1), size, func(step int) int64 {
		if step < n-1 {
			return cfg.ComputeClks // reduce-scatter: add before forwarding
		}
		return 0 // all-gather: pure forward
	})
	return g, nil
}

// genAllGather is the attention all-gather: every rank's KV shard travels
// the ring, so each node sends a full shard per step for N−1 steps. The
// first step carries ComputeClks (projecting the shard); forwards are
// free. N(N−1) messages.
func genAllGather(n int, cfg GenConfig) (*Graph, error) {
	g := &Graph{Name: "allgather", NumNodes: n}
	ringSteps(g, n, n-1, cfg.SizeFlits, func(step int) int64 {
		if step == 0 {
			return cfg.ComputeClks
		}
		return 0
	})
	return g, nil
}

// ringSteps appends steps×N ring messages: in each step every node sends
// to (node+1) mod N, depending on the message it received the step before.
// compute(step) is the release offset of that step's sends (absolute for
// step 0, which has no dependencies).
func ringSteps(g *Graph, n, steps, sizeFlits int, compute func(step int) int64) {
	prev := make([]int, n) // message node i received in the previous step
	cur := make([]int, n)
	for step := 0; step < steps; step++ {
		off := compute(step)
		for i := 0; i < n; i++ {
			var deps []int
			if step > 0 {
				deps = []int{prev[i]}
			}
			idx := len(g.Messages)
			g.Messages = append(g.Messages, Message{
				Src:         topology.NodeID(i),
				Dst:         topology.NodeID((i + 1) % n),
				SizeFlits:   sizeFlits,
				ComputeClks: off,
				Deps:        deps,
			})
			cur[(i+1)%n] = idx
		}
		prev, cur = cur, prev
	}
}

// genTreeAllReduce composes the binomial reduce with the binomial
// broadcast: the root's first broadcast sends depend on every reduce
// message it received. 2(N−1) messages, 2⌈log₂N⌉ sequential rounds.
func genTreeAllReduce(n int, cfg GenConfig) (*Graph, error) {
	g := &Graph{Name: "tree-allreduce", NumNodes: n}
	rootRecv := buildReduce(g, n, cfg)
	buildBroadcast(g, n, cfg, rootRecv)
	return g, nil
}

// genMoEAllToAll is the MoE dispatch/combine pair: every ordered pair
// exchanges a 1/(N−1) token shard (router gating as the dispatch offset),
// and each combine message i→j depends on the matching dispatch j→i
// through the expert compute. 2N(N−1) messages, all pairs concurrent —
// the densest communication phase in the registry.
func genMoEAllToAll(n int, cfg GenConfig) (*Graph, error) {
	g := &Graph{Name: "moe-alltoall", NumNodes: n}
	size := chunk(cfg.SizeFlits, n-1)
	dispatch := make([]int, n*n) // dispatch[i*n+j] = index of message i→j
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dispatch[i*n+j] = len(g.Messages)
			g.Messages = append(g.Messages, Message{
				Src:         topology.NodeID(i),
				Dst:         topology.NodeID(j),
				SizeFlits:   size,
				ComputeClks: cfg.ComputeClks,
			})
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			// Expert on node i returns j's tokens once they arrived.
			g.Messages = append(g.Messages, Message{
				Src:         topology.NodeID(i),
				Dst:         topology.NodeID(j),
				SizeFlits:   size,
				ComputeClks: cfg.ComputeClks,
				Deps:        []int{dispatch[j*n+i]},
			})
		}
	}
	return g, nil
}

// genPipeline is pipeline-parallel point-to-point: the nodes form a stage
// chain 0→1→…→N−1 and M microbatches flow down it. Stage 0 releases
// microbatch m at (m+1)·ComputeClks (sequential forward passes); every
// later stage forwards a microbatch ComputeClks after receiving it.
// M(N−1) messages; with zero contention the makespan is exactly the
// classic (M+N−2)-slot pipeline schedule.
func genPipeline(n int, cfg GenConfig) (*Graph, error) {
	g := &Graph{Name: "pipeline", NumNodes: n}
	prev := make([]int, cfg.Microbatches) // prev[m] = message (stage-1 → stage) of microbatch m
	for stage := 0; stage < n-1; stage++ {
		for m := 0; m < cfg.Microbatches; m++ {
			var deps []int
			off := cfg.ComputeClks
			if stage == 0 {
				off = int64(m+1) * cfg.ComputeClks
			} else {
				deps = []int{prev[m]}
			}
			prev[m] = len(g.Messages)
			g.Messages = append(g.Messages, Message{
				Src:         topology.NodeID(stage),
				Dst:         topology.NodeID(stage + 1),
				SizeFlits:   cfg.SizeFlits,
				ComputeClks: off,
				Deps:        deps,
			})
		}
	}
	return g, nil
}

func init() {
	Register(funcGenerator{"reduce",
		"binomial-tree reduce to node 0: ⌈log₂N⌉ rounds, N−1 messages", genReduce})
	Register(funcGenerator{"broadcast",
		"binomial-tree broadcast from node 0: the reduce tree reversed", genBroadcast})
	Register(funcGenerator{"ring-allreduce",
		"chunked ring: N−1 reduce-scatter + N−1 all-gather steps, size/N chunks", genRingAllReduce})
	Register(funcGenerator{"tree-allreduce",
		"binomial reduce then broadcast; root sends gated on all reduce inputs", genTreeAllReduce})
	Register(funcGenerator{"allgather",
		"attention all-gather: every shard rides the ring N−1 steps", genAllGather})
	Register(funcGenerator{"moe-alltoall",
		"MoE dispatch+combine: all pairs exchange size/(N−1) shards, combine gated on dispatch", genMoEAllToAll})
	Register(funcGenerator{"pipeline",
		"stage chain 0→…→N−1, M microbatches, stage compute between hops", genPipeline})
}
