package topology

import (
	"strings"
	"testing"

	"repro/internal/units"
)

// buildKind constructs a small network of the given kind for structure
// tests.
func buildKind(t *testing.T, kind Kind, w, h int) *Network {
	t.Helper()
	c := DefaultConfig()
	c.Kind = kind
	c.Width, c.Height = w, h
	n, err := Build(c)
	if err != nil {
		t.Fatalf("Build(%v %dx%d): %v", kind, w, h, err)
	}
	return n
}

func TestKindRegistry(t *testing.T) {
	kinds := Kinds()
	if len(kinds) < 4 {
		t.Fatalf("Kinds() = %v, want >= 4 entries", kinds)
	}
	for _, want := range []Kind{Mesh, Torus, CMesh, FBFly} {
		s, err := LookupKind(string(want))
		if err != nil {
			t.Fatalf("LookupKind(%q): %v", want, err)
		}
		if s.Name != want {
			t.Errorf("LookupKind(%q).Name = %q", want, s.Name)
		}
		if s.Description == "" || s.Deadlock == "" {
			t.Errorf("%v: empty Description/Deadlock annotation", want)
		}
	}
	if _, err := LookupKind("TORUS"); err != nil {
		t.Errorf("lookup should be case-insensitive: %v", err)
	}
	if s, err := LookupKind(""); err != nil || s.Name != Mesh {
		t.Errorf("empty name should resolve to mesh, got %v, %v", s, err)
	}
	if _, err := LookupKind("hypercube"); err == nil ||
		!strings.Contains(err.Error(), "mesh") {
		t.Errorf("unknown kind error should list known names: %v", err)
	}
	if len(KindSpecs()) != len(kinds) {
		t.Errorf("KindSpecs()/Kinds() length mismatch")
	}
}

func TestKindParse(t *testing.T) {
	all, err := ParseKinds("all")
	if err != nil || len(all) != len(Kinds()) {
		t.Fatalf("ParseKinds(all) = %v, %v", all, err)
	}
	got, err := ParseKinds(" torus, fbfly ,torus")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != Torus || got[1] != FBFly {
		t.Errorf("ParseKinds dedup/order = %v", got)
	}
	if _, err := ParseKinds(""); err == nil {
		t.Error("empty spec must fail")
	}
	if _, err := ParseKinds("mesh,nope"); err == nil {
		t.Error("unknown name must fail")
	}
}

func TestKindCanonical(t *testing.T) {
	var c Config
	if got := c.Canonical().Kind; got != Mesh {
		t.Errorf("zero Kind canonicalizes to %q, want mesh", got)
	}
	c.Kind = CMesh
	if got := c.Canonical().Concentration; got != DefaultConcentration {
		t.Errorf("zero cmesh concentration canonicalizes to %d, want %d", got, DefaultConcentration)
	}
	c.Concentration = 9
	if got := c.Canonical().Concentration; got != 9 {
		t.Errorf("explicit concentration overwritten: %d", got)
	}
	// Kind names fold case like LookupKind does: "CMesh" is cmesh, gets
	// the default concentration, and builds.
	mixed := DefaultConfig()
	mixed.Kind = "CMesh"
	mixed.Width, mixed.Height = 4, 4
	if got := mixed.Canonical(); got.Kind != CMesh || got.Concentration != DefaultConcentration {
		t.Errorf("mixed-case kind canonicalizes to %+v", got)
	}
	if n, err := Build(mixed); err != nil {
		t.Errorf("Build with mixed-case kind: %v", err)
	} else if n.String() != "4x4 Electronic cmesh (c=4)" {
		t.Errorf("mixed-case kind String() = %q", n.String())
	}
}

// TestKindTorusStructure pins the 4×4 torus shape: the mesh channels plus one
// wrap pair per row and column, every wrap a dateline, every router
// radix-5.
func TestKindTorusStructure(t *testing.T) {
	n := buildKind(t, Torus, 4, 4)
	// 2·(3·4 + 3·4) mesh channels + 2·(4 + 4) wraps = 48 + 16.
	if got := len(n.Links); got != 64 {
		t.Errorf("4x4 torus has %d channels, want 64", got)
	}
	wraps := 0
	for _, l := range n.Links {
		if l.Dateline {
			wraps++
			if l.Express {
				t.Errorf("torus wrap %d marked express", l.ID)
			}
			want := 3 * units.Millimetre
			if l.LengthM != want {
				t.Errorf("wrap %d length %v, want %v", l.ID, l.LengthM, want)
			}
		}
	}
	if wraps != 16 {
		t.Errorf("%d dateline channels, want 16", wraps)
	}
	if !n.HasDatelineX() || !n.HasDatelineY() {
		t.Error("torus must have datelines in both dimensions")
	}
	for id := 0; id < n.NumNodes(); id++ {
		if got := n.Ports(NodeID(id)); got != 5 {
			t.Errorf("node %d ports = %d, want 5 (radix-4 torus + local)", id, got)
		}
	}
	if n.ExpressChannels() != 0 {
		t.Error("torus has no express channels")
	}
}

// TestKindCMeshStructure pins the concentrated mesh: mesh wiring on the router
// grid with √c-scaled pitch and c local ports per router.
func TestKindCMeshStructure(t *testing.T) {
	c := DefaultConfig()
	c.Kind = CMesh
	c.Width, c.Height = 4, 4 // 16 routers × 4 cores = 64-core system
	n, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if n.Concentration != DefaultConcentration {
		t.Fatalf("concentration = %d, want default %d", n.Concentration, DefaultConcentration)
	}
	if got := len(n.Links); got != 48 {
		t.Errorf("4x4 cmesh has %d channels, want 48 (same wiring as mesh)", got)
	}
	// √4 = 2: router pitch doubles the 1 mm core spacing.
	for _, l := range n.Links {
		if l.LengthM != 2*units.Millimetre {
			t.Errorf("link %d length %v, want 2 mm", l.ID, l.LengthM)
		}
	}
	// Interior router: 4 cores + 4 links.
	if got := n.Ports(n.Node(1, 1)); got != 8 {
		t.Errorf("interior cmesh ports = %d, want 8", got)
	}
	if got := n.Ports(n.Node(0, 0)); got != 6 {
		t.Errorf("corner cmesh ports = %d, want 6", got)
	}
}

// TestKindFBFlyStructure pins the flattened butterfly: rows and columns fully
// connected, constant radix, span-proportional lengths.
func TestKindFBFlyStructure(t *testing.T) {
	n := buildKind(t, FBFly, 4, 4)
	// Per row C(4,2) = 6 pairs × 4 rows, same for columns: 48 pairs.
	if got := len(n.Links); got != 96 {
		t.Errorf("4x4 fbfly has %d channels, want 96", got)
	}
	for id := 0; id < n.NumNodes(); id++ {
		if got := n.Ports(NodeID(id)); got != 7 {
			t.Errorf("node %d ports = %d, want 7 ((W−1)+(H−1)+local)", id, got)
		}
	}
	if n.HasDateline() {
		t.Error("fbfly has no datelines")
	}
	for _, l := range n.Links {
		span := n.MeshDistance(l.Src, l.Dst)
		if l.LengthM != float64(span)*units.Millimetre {
			t.Errorf("link %d length %v, want %d mm", l.ID, l.LengthM, span)
		}
	}
}

func TestKindDistanceFormulas(t *testing.T) {
	torus := buildKind(t, Torus, 6, 4)
	if got := torus.Distance(torus.Node(0, 0), torus.Node(5, 3)); got != 2 {
		t.Errorf("torus corner distance = %d, want 2 (1+1 around the wraps)", got)
	}
	if got := torus.Distance(torus.Node(0, 0), torus.Node(3, 2)); got != 5 {
		t.Errorf("torus mid distance = %d, want 5", got)
	}
	fb := buildKind(t, FBFly, 6, 4)
	if got := fb.Distance(fb.Node(0, 0), fb.Node(5, 3)); got != 2 {
		t.Errorf("fbfly distance = %d, want 2", got)
	}
	if got := fb.Distance(fb.Node(0, 2), fb.Node(5, 2)); got != 1 {
		t.Errorf("fbfly row distance = %d, want 1", got)
	}
	mesh := buildKind(t, Mesh, 6, 4)
	if got, want := mesh.Distance(mesh.Node(0, 0), mesh.Node(5, 3)), mesh.MeshDistance(mesh.Node(0, 0), mesh.Node(5, 3)); got != want || got != 8 {
		t.Errorf("mesh Distance = %d, MeshDistance = %d, want 8", got, want)
	}
}

func TestKindStrings(t *testing.T) {
	cases := []struct {
		kind Kind
		want string
	}{
		{Torus, "8x8 Electronic torus"},
		{CMesh, "8x8 Electronic cmesh (c=4)"},
		{FBFly, "8x8 Electronic flattened butterfly"},
	}
	for _, tc := range cases {
		n := buildKind(t, tc.kind, 8, 8)
		if got := n.String(); got != tc.want {
			t.Errorf("%v String() = %q, want %q", tc.kind, got, tc.want)
		}
	}
	// The mesh format is pinned by TestStringDescribesNetwork; a torus
	// never reports express channels.
}

// TestKindCapability sanity-checks Table III's C across kinds at a fixed
// grid: fbfly ≫ torus > mesh (more channels, same per-channel rate).
func TestKindCapability(t *testing.T) {
	mesh := buildKind(t, Mesh, 8, 8)
	torus := buildKind(t, Torus, 8, 8)
	fb := buildKind(t, FBFly, 8, 8)
	if !(fb.CapabilityGbpsPerNode() > torus.CapabilityGbpsPerNode() &&
		torus.CapabilityGbpsPerNode() > mesh.CapabilityGbpsPerNode()) {
		t.Errorf("capability ordering violated: mesh %v torus %v fbfly %v",
			mesh.CapabilityGbpsPerNode(), torus.CapabilityGbpsPerNode(), fb.CapabilityGbpsPerNode())
	}
}

// TestKindParseErrorsListRegisteredNames: unknown-name and empty-list
// errors from ParseKinds must name every registered kind, so a CLI user
// can correct the flag from the message alone.
func TestKindParseErrorsListRegisteredNames(t *testing.T) {
	for _, spec := range []string{"bogus", "mesh,bogus", " , "} {
		_, err := ParseKinds(spec)
		if err == nil {
			t.Fatalf("ParseKinds(%q) should fail", spec)
		}
		for _, name := range Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParseKinds(%q) error omits registered kind %q: %v", spec, name, err)
			}
		}
	}
	if _, err := LookupKind("bogus"); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("LookupKind error should list names: %v", err)
	}
}

// TestKindValidateErrorsNameKind: every Validate rejection of a bad
// geometry must name the topology kind, so a sweep over many kinds
// reports which family rejected its configuration (mirrors the ParseKinds
// error-listing fix).
func TestKindValidateErrorsNameKind(t *testing.T) {
	mutate := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
		kind Kind
	}{
		{"mesh grid too small", mutate(func(c *Config) { c.Width, c.Height = 1, 1 }), Mesh},
		{"mesh express hops oversized", mutate(func(c *Config) {
			c.Width, c.Height, c.ExpressHops = 4, 4, 4
		}), Mesh},
		{"mesh express hops oversized for height", mutate(func(c *Config) {
			c.Width, c.Height, c.ExpressHops, c.ExpressBothDims = 8, 4, 5, true
		}), Mesh},
		{"mesh negative express hops", mutate(func(c *Config) { c.ExpressHops = -1 }), Mesh},
		{"torus grid too small", mutate(func(c *Config) {
			c.Kind, c.Width, c.Height = Torus, 2, 2
		}), Torus},
		{"cmesh grid too small", mutate(func(c *Config) {
			c.Kind, c.Width, c.Height = CMesh, 1, 4
		}), CMesh},
		{"cmesh express hops oversized", mutate(func(c *Config) {
			c.Kind, c.Width, c.Height, c.ExpressHops = CMesh, 4, 4, 7
		}), CMesh},
		{"fbfly grid too small", mutate(func(c *Config) {
			c.Kind, c.Width, c.Height = FBFly, 1, 3
		}), FBFly},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), string(tc.kind)) {
			t.Errorf("%s: error does not name kind %q: %v", tc.name, tc.kind, err)
		}
	}
}

// TestParseGrid covers the CLI "WxH" grid syntax: accepted forms, the
// parsed extents, and rejection with a message naming the bad spec.
func TestParseGrid(t *testing.T) {
	good := []struct {
		spec string
		w, h int
	}{
		{"8x8", 8, 8},
		{"64x64", 64, 64},
		{"16X4", 16, 4},
		{" 5 x 3 ", 5, 3},
	}
	for _, tc := range good {
		w, h, err := ParseGrid(tc.spec)
		if err != nil {
			t.Errorf("ParseGrid(%q): %v", tc.spec, err)
			continue
		}
		if w != tc.w || h != tc.h {
			t.Errorf("ParseGrid(%q) = %dx%d, want %dx%d", tc.spec, w, h, tc.w, tc.h)
		}
	}
	for _, spec := range []string{"", "8", "x8", "8x", "8x8x8", "-4x4", "0x8", "axb"} {
		if _, _, err := ParseGrid(spec); err == nil {
			t.Errorf("ParseGrid(%q) accepted", spec)
		} else if !strings.Contains(err.Error(), spec) {
			t.Errorf("ParseGrid(%q) error does not name the spec: %v", spec, err)
		}
	}
}
