// Topology kinds: a named registry of network families, mirroring the
// traffic-pattern registry. Every kind wires its links through the same
// Link/NodeID model, so the routing builders, the analytic evaluator and
// the cycle-accurate simulator work on any registered kind unchanged.
//
// Registered kinds:
//
//   - mesh  — the paper's W×H grid, optionally with express channels
//     (Fig. 2); radix ≤ 5 (7 with express), distance = Manhattan.
//   - torus — the mesh plus row/column wrap channels; the wraps are
//     dateline channels (deadlock-free with 2+ VCs, exactly like the
//     paper's hops = W−1 "effectively a 2D torus" configuration); radix 5,
//     distance = folded Manhattan min(|Δ|, W−|Δ|) per dimension.
//   - cmesh — concentrated mesh: each router serves c cores, shrinking a
//     W·√c × H·√c core array onto a W×H router grid with √c-scaled link
//     pitch; radix c+4, distance = Manhattan on the router grid.
//   - fbfly — 2-D flattened butterfly: every router links to every other
//     router of its row and of its column; radix (W−1)+(H−1)+1, distance
//     = (x differs) + (y differs) ≤ 2.
package topology

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind names a registered topology family. The zero value selects Mesh,
// so configurations predating the registry build unchanged.
type Kind string

// The built-in kinds.
const (
	Mesh  Kind = "mesh"
	Torus Kind = "torus"
	CMesh Kind = "cmesh"
	FBFly Kind = "fbfly"
)

// DefaultConcentration is the cmesh cores-per-router factor applied when
// Config.Concentration is zero: the classic 4-to-1 concentration (a 2×2
// core quad per router).
const DefaultConcentration = 4

// KindSpec describes one registered topology family. All fields are
// read-only after registration.
type KindSpec struct {
	// Name is the registry key (lower-case, stable).
	Name Kind
	// Description is a one-line formula summary (radix, bisection,
	// distance) for docs and CLIs.
	Description string
	// Deadlock documents the virtual-channel strategy that keeps routing
	// deadlock-free on this kind.
	Deadlock string
	// Monotone reports whether the dimension-ordered monotone table
	// construction (routing.MonotoneExpress) applies: movement within a
	// dimension phase is a line or dateline-annotated ring. Kinds without
	// it fall back to the generic shortest-path table.
	Monotone bool
	// Validate checks kind-specific constraints beyond the common ones.
	Validate func(c Config) error
	// Wire appends the kind's channels to a freshly allocated network.
	Wire func(c Config, n *Network)
	// Distance returns the minimal hop distance of the kind's base fabric
	// (ignoring express shortcuts).
	Distance func(n *Network, a, b NodeID) int
}

// kindRegistry maps kind names to specs; order preserves registration so
// listings are stable.
var (
	kindRegistry      = map[Kind]*KindSpec{}
	kindRegistryOrder []Kind
)

// RegisterKind adds a topology family to the registry. It panics on a
// duplicate or incomplete spec — registration is an init-time programming
// act, not runtime input handling.
func RegisterKind(s *KindSpec) {
	if s == nil || s.Name == "" {
		panic("topology: kind with empty name")
	}
	name := Kind(strings.ToLower(string(s.Name)))
	if s.Validate == nil || s.Wire == nil || s.Distance == nil {
		panic(fmt.Sprintf("topology: kind %q missing Validate/Wire/Distance", name))
	}
	if _, dup := kindRegistry[name]; dup {
		panic(fmt.Sprintf("topology: duplicate kind %q", name))
	}
	s.Name = name // every registry view agrees on the folded name
	kindRegistry[name] = s
	kindRegistryOrder = append(kindRegistryOrder, name)
}

// LookupKind resolves a registry name (case-insensitive). The error lists
// the known names so CLI users can self-serve.
func LookupKind(name string) (*KindSpec, error) {
	k := Kind(strings.ToLower(strings.TrimSpace(name)))
	if k == "" {
		k = Mesh
	}
	s, ok := kindRegistry[k]
	if !ok {
		return nil, fmt.Errorf("topology: unknown kind %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// Kinds returns the registered kind names in registration order.
func Kinds() []Kind {
	out := make([]Kind, len(kindRegistryOrder))
	copy(out, kindRegistryOrder)
	return out
}

// Names returns the registered kind names as plain strings, for CLI flag
// help (the counterpart of traffic.Names).
func Names() []string {
	out := make([]string, len(kindRegistryOrder))
	for i, k := range kindRegistryOrder {
		out[i] = string(k)
	}
	return out
}

// KindSpecs returns every registered spec in registration order.
func KindSpecs() []*KindSpec {
	out := make([]*KindSpec, 0, len(kindRegistryOrder))
	for _, k := range kindRegistryOrder {
		out = append(out, kindRegistry[k])
	}
	return out
}

// ParseKinds resolves a comma-separated list of registry names; the single
// token "all" selects the whole registry. Duplicates are dropped, keeping
// the first occurrence. Every error names the registered kinds, so CLI
// users can self-serve from the message.
func ParseKinds(spec string) ([]Kind, error) {
	if strings.EqualFold(strings.TrimSpace(spec), "all") {
		return Kinds(), nil
	}
	var out []Kind
	seen := map[Kind]bool{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		s, err := LookupKind(tok)
		if err != nil {
			return nil, err
		}
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("topology: empty kind list %q (registered: %s, or \"all\")",
			spec, strings.Join(Names(), ", "))
	}
	return out, nil
}

// ParseGrid resolves a "WxH" grid specification ("64x64", "16x4"; the
// separator is case-insensitive) into its width and height. It validates
// only the syntax and positivity — kind-specific extent rules stay with
// Config.Validate.
func ParseGrid(spec string) (w, h int, err error) {
	s := strings.TrimSpace(spec)
	i := strings.IndexAny(s, "xX")
	if i < 0 {
		return 0, 0, fmt.Errorf("topology: grid %q not of the form WxH", spec)
	}
	w, errW := strconv.Atoi(strings.TrimSpace(s[:i]))
	h, errH := strconv.Atoi(strings.TrimSpace(s[i+1:]))
	if errW != nil || errH != nil {
		return 0, 0, fmt.Errorf("topology: grid %q not of the form WxH", spec)
	}
	if w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("topology: grid %q must have positive extents", spec)
	}
	return w, h, nil
}

// pitchM returns the router-to-router link pitch: the core spacing scaled
// by √c for concentrated kinds (each router tile covers c cores, so the
// router array is √c times coarser than the core array).
func pitchM(c Config) float64 {
	conc := c.Concentration
	if conc <= 1 {
		return c.CoreSpacingM
	}
	return c.CoreSpacingM * math.Sqrt(float64(conc))
}

// validateMeshFamily holds the grid and express constraints shared by mesh
// and cmesh. The express guards double as the degenerate-geometry fix: a
// grid whose express dimension has extent 1 is rejected here (hops ≥ 1
// can never be below an extent of 1), never handed to the monotone table
// builder.
func validateMeshFamily(c Config) error {
	if c.Width < 2 || c.Height < 1 {
		return fmt.Errorf("topology: %v grid %dx%d too small", c.Kind, c.Width, c.Height)
	}
	if c.ExpressHops > 0 && c.ExpressHops >= c.Width {
		return fmt.Errorf("topology: %v express hops %d must be below width %d", c.Kind, c.ExpressHops, c.Width)
	}
	if c.ExpressBothDims && c.ExpressHops > 0 && c.ExpressHops >= c.Height {
		return fmt.Errorf("topology: %v express hops %d must be below height %d", c.Kind, c.ExpressHops, c.Height)
	}
	return nil
}

// rejectExpress is the validation shared by kinds whose fabric leaves no
// room for express shortcuts.
func rejectExpress(c Config, why string) error {
	if c.ExpressHops != 0 || c.ExpressBothDims {
		return fmt.Errorf("topology: %v does not take express links (%s)", c.Kind, why)
	}
	return nil
}

// wireMesh adds the paper's base mesh channels plus the optional express
// channels (Fig. 2a/2b). cmesh shares it: the only difference is the
// √c-scaled pitch folded in by pitchM.
func wireMesh(c Config, n *Network) {
	pitch := pitchM(c)
	// Base mesh channels: horizontal then vertical neighbours.
	for y := 0; y < c.Height; y++ {
		for x := 0; x < c.Width-1; x++ {
			n.addPair(n.Node(x, y), n.Node(x+1, y), c.BaseTech, pitch, false, false)
		}
	}
	for y := 0; y < c.Height-1; y++ {
		for x := 0; x < c.Width; x++ {
			n.addPair(n.Node(x, y), n.Node(x, y+1), c.BaseTech, pitch, false, false)
		}
	}

	// Horizontal express channels: (0,h), (h,2h), … per row. The paper
	// restricts express links to the horizontal dimension to bound
	// router port counts at 7; hops = extent−1 closes the row or column
	// into a ring, making those channels datelines.
	if c.ExpressHops > 0 {
		h := c.ExpressHops
		for y := 0; y < c.Height; y++ {
			for x := 0; x+h < c.Width; x += h {
				n.addPair(n.Node(x, y), n.Node(x+h, y), c.ExpressTech,
					float64(h)*pitch, true, h == c.Width-1)
			}
		}
		if c.ExpressBothDims {
			for x := 0; x < c.Width; x++ {
				for y := 0; y+h < c.Height; y += h {
					n.addPair(n.Node(x, y), n.Node(x, y+h), c.ExpressTech,
						float64(h)*pitch, true, h == c.Height-1)
				}
			}
		}
	}
}

// wireTorus adds the base mesh channels plus one wrap pair per row and per
// column. Wraps are dateline channels of the base technology: they close
// each line into a ring exactly like the paper's hops = W−1 express
// configuration, and routing must switch VC classes when crossing them.
// The wrap length is the full row/column span (the same straight-routed
// length the paper assigns its row-closure express links).
func wireTorus(c Config, n *Network) {
	for y := 0; y < c.Height; y++ {
		for x := 0; x < c.Width-1; x++ {
			n.addPair(n.Node(x, y), n.Node(x+1, y), c.BaseTech, c.CoreSpacingM, false, false)
		}
	}
	for y := 0; y < c.Height-1; y++ {
		for x := 0; x < c.Width; x++ {
			n.addPair(n.Node(x, y), n.Node(x, y+1), c.BaseTech, c.CoreSpacingM, false, false)
		}
	}
	for y := 0; y < c.Height; y++ {
		n.addPair(n.Node(0, y), n.Node(c.Width-1, y), c.BaseTech,
			float64(c.Width-1)*c.CoreSpacingM, false, true)
	}
	for x := 0; x < c.Width; x++ {
		n.addPair(n.Node(x, 0), n.Node(x, c.Height-1), c.BaseTech,
			float64(c.Height-1)*c.CoreSpacingM, false, true)
	}
}

// wireFBFly fully connects every row and every column: the 2-D flattened
// butterfly collapses a butterfly's stages into one router per grid point
// with direct channels to all row and column peers. Channel length is the
// Manhattan span it covers.
func wireFBFly(c Config, n *Network) {
	for y := 0; y < c.Height; y++ {
		for x1 := 0; x1 < c.Width-1; x1++ {
			for x2 := x1 + 1; x2 < c.Width; x2++ {
				n.addPair(n.Node(x1, y), n.Node(x2, y), c.BaseTech,
					float64(x2-x1)*c.CoreSpacingM, false, false)
			}
		}
	}
	for x := 0; x < c.Width; x++ {
		for y1 := 0; y1 < c.Height-1; y1++ {
			for y2 := y1 + 1; y2 < c.Height; y2++ {
				n.addPair(n.Node(x, y1), n.Node(x, y2), c.BaseTech,
					float64(y2-y1)*c.CoreSpacingM, false, false)
			}
		}
	}
}

// distManhattan is the mesh-family distance: |Δx| + |Δy|.
func distManhattan(n *Network, a, b NodeID) int {
	dx := n.X(a) - n.X(b)
	if dx < 0 {
		dx = -dx
	}
	dy := n.Y(a) - n.Y(b)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// distTorus folds each dimension around its ring: min(|Δ|, extent−|Δ|).
func distTorus(n *Network, a, b NodeID) int {
	dx := n.X(a) - n.X(b)
	if dx < 0 {
		dx = -dx
	}
	if w := n.Width - dx; w < dx {
		dx = w
	}
	dy := n.Y(a) - n.Y(b)
	if dy < 0 {
		dy = -dy
	}
	if w := n.Height - dy; w < dy {
		dy = w
	}
	return dx + dy
}

// distFBFly counts the differing coordinates: one hop reaches any row or
// column peer, so every route is at most two hops.
func distFBFly(n *Network, a, b NodeID) int {
	d := 0
	if n.X(a) != n.X(b) {
		d++
	}
	if n.Y(a) != n.Y(b) {
		d++
	}
	return d
}

func init() {
	RegisterKind(&KindSpec{
		Name: Mesh,
		Description: "W×H grid, optional express channels every h hops; " +
			"radix ≤ 5 (7 hybrid), bisection H ch/dir, distance |Δx|+|Δy|",
		Deadlock: "dimension-ordered X-then-Y; hops = extent−1 closures are " +
			"datelines switching VC class on wrap",
		Monotone: true,
		Validate: validateMeshFamily,
		Wire:     wireMesh,
		Distance: distManhattan,
	})
	RegisterKind(&KindSpec{
		Name: Torus,
		Description: "mesh plus row/column wrap channels; radix 5, " +
			"bisection 2H ch/dir, distance min(|Δ|,W−|Δ|) per dim",
		Deadlock: "dimension-ordered ring phases; wrap channels are datelines " +
			"switching VC class (needs ≥ 2 VCs)",
		Monotone: true,
		Validate: func(c Config) error {
			// Below 3×3 a wrap channel would duplicate a neighbour pair
			// (extent 2) or degenerate into a self-loop (extent 1) —
			// geometries the monotone table builder must never see.
			if c.Width < 3 || c.Height < 3 {
				return fmt.Errorf("topology: torus needs at least a 3x3 grid "+
					"(wraps must be distinct channels), got %dx%d", c.Width, c.Height)
			}
			return rejectExpress(c, "wraparound channels are built in")
		},
		Wire:     wireTorus,
		Distance: distTorus,
	})
	RegisterKind(&KindSpec{
		Name: CMesh,
		Description: "concentrated mesh, c cores per router on a √c-coarser " +
			"grid; radix c+4, distance |Δx|+|Δy| between routers",
		Deadlock: "dimension-ordered X-then-Y, as mesh (concentration only " +
			"widens the local port set)",
		Monotone: true,
		Validate: func(c Config) error {
			if c.Concentration < 1 {
				return fmt.Errorf("topology: cmesh concentration %d must be ≥ 1", c.Concentration)
			}
			return validateMeshFamily(c)
		},
		Wire:     wireMesh,
		Distance: distManhattan,
	})
	RegisterKind(&KindSpec{
		Name: FBFly,
		Description: "2-D flattened butterfly, rows and columns fully " +
			"connected; radix (W−1)+(H−1)+1, distance ≤ 2",
		Deadlock: "minimal 2-hop routes, X before Y (shortest-path table; " +
			"the channel dependency graph is acyclic)",
		Monotone: false, // all-to-all rows: routed by the generic shortest-path fallback
		Validate: func(c Config) error {
			if c.Width < 2 || c.Height < 1 {
				return fmt.Errorf("topology: %v grid %dx%d too small", c.Kind, c.Width, c.Height)
			}
			return rejectExpress(c, "rows and columns are already fully connected")
		},
		Wire:     wireFBFly,
		Distance: distFBFly,
	})
}
