package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/tech"
	"repro/internal/units"
)

func build(t *testing.T, hops int, expressTech tech.Technology) *Network {
	t.Helper()
	c := DefaultConfig()
	c.ExpressHops = hops
	c.ExpressTech = expressTech
	n, err := Build(c)
	if err != nil {
		t.Fatalf("Build(hops=%d): %v", hops, err)
	}
	return n
}

// TestTableIIICapability pins the exact Table III capability values:
// C = 187.5 / 218.75 / 206.25 / 193.75 Gb/s per node for plain mesh and
// express hops 3/5/15 on the 16×16, 50 Gb/s network.
func TestTableIIICapability(t *testing.T) {
	cases := []struct {
		hops int
		want float64
	}{
		{0, 187.5},
		{3, 218.75},
		{5, 206.25},
		{15, 193.75},
	}
	for _, c := range cases {
		n := build(t, c.hops, tech.HyPPI)
		if got := n.CapabilityGbpsPerNode(); got != c.want {
			t.Errorf("hops=%d: C = %v Gb/s, want %v", c.hops, got, c.want)
		}
	}
}

// TestExpressChannelCounts pins the paper's waveguide counts: 5/3/1 express
// channels per row per direction for hops 3/5/15.
func TestExpressChannelCounts(t *testing.T) {
	cases := []struct {
		hops, perRowPerDir int
	}{
		{3, 5}, {5, 3}, {15, 1},
	}
	for _, c := range cases {
		n := build(t, c.hops, tech.HyPPI)
		want := c.perRowPerDir * 16 * 2
		if got := n.ExpressChannels(); got != want {
			t.Errorf("hops=%d: %d express channels, want %d", c.hops, got, want)
		}
	}
}

func TestPlainMeshChannelCount(t *testing.T) {
	n := build(t, 0, tech.Electronic)
	// 16 rows × 15 horizontal + 16 cols × 15 vertical bidirectional
	// pairs = 480 pairs = 960 channels.
	if got := len(n.Links); got != 960 {
		t.Errorf("plain 16×16 mesh has %d channels, want 960", got)
	}
	if n.ExpressChannels() != 0 {
		t.Error("plain mesh must have no express channels")
	}
}

func TestPortCounts(t *testing.T) {
	n := build(t, 3, tech.HyPPI)
	// Interior non-express node: 4 mesh + 1 local = 5.
	if got := n.Ports(n.Node(1, 1)); got != 5 {
		t.Errorf("interior node ports = %d, want 5", got)
	}
	// Express mid-row endpoint (x=3): 4 mesh + 2 express + 1 local = 7.
	if got := n.Ports(n.Node(3, 1)); got != 7 {
		t.Errorf("express mid node ports = %d, want 7", got)
	}
	// Row-end express endpoint (x=0): 3 mesh (edge) + 1 express + 1 = 5.
	if got := n.Ports(n.Node(0, 1)); got != 5 {
		t.Errorf("row-start express node ports = %d, want 5", got)
	}
	// Corner without express: 2 mesh + 1 local = 3.
	plain := build(t, 0, tech.Electronic)
	if got := plain.Ports(plain.Node(0, 0)); got != 3 {
		t.Errorf("corner ports = %d, want 3", got)
	}
	if got := n.MaxPorts(); got != 7 {
		t.Errorf("max ports = %d, want 7 (Table II hybrid)", got)
	}
	if got := plain.MaxPorts(); got != 5 {
		t.Errorf("plain max ports = %d, want 5 (Table II base)", got)
	}
}

func TestLinkPropertiesByTech(t *testing.T) {
	n := build(t, 3, tech.HyPPI)
	for _, l := range n.Links {
		if l.Express {
			if l.Tech != tech.HyPPI {
				t.Fatalf("express link %d tech %v", l.ID, l.Tech)
			}
			if l.LatencyClks != 2 {
				t.Fatalf("optical express latency %d, want 2", l.LatencyClks)
			}
			if l.LengthM != 3*units.Millimetre {
				t.Fatalf("express length %v, want 3 mm", l.LengthM)
			}
			if dy := l.DY(n); dy != 0 {
				t.Fatalf("express link moves vertically: dy=%d", dy)
			}
			if dx := l.DX(n); dx != 3 && dx != -3 {
				t.Fatalf("express link dx=%d, want ±3", dx)
			}
		} else {
			if l.Tech != tech.Electronic {
				t.Fatalf("base link %d tech %v", l.ID, l.Tech)
			}
			if l.LatencyClks != 1 {
				t.Fatalf("electronic base latency %d, want 1", l.LatencyClks)
			}
			if l.LengthM != 1*units.Millimetre {
				t.Fatalf("base length %v, want 1 mm", l.LengthM)
			}
		}
		if l.CapacityBps != 50e9 {
			t.Fatalf("link capacity %v, want 50 Gb/s", l.CapacityBps)
		}
	}
}

// TestBidirectionality: every channel has a reverse twin with identical
// properties.
func TestBidirectionality(t *testing.T) {
	n := build(t, 5, tech.Photonic)
	type key struct {
		a, b NodeID
	}
	seen := map[key]Link{}
	for _, l := range n.Links {
		seen[key{l.Src, l.Dst}] = l
	}
	for _, l := range n.Links {
		r, ok := seen[key{l.Dst, l.Src}]
		if !ok {
			t.Fatalf("link %d has no reverse channel", l.ID)
		}
		if r.Tech != l.Tech || r.LengthM != l.LengthM || r.Express != l.Express {
			t.Fatalf("reverse channel mismatch: %+v vs %+v", l, r)
		}
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	n := build(t, 3, tech.HyPPI)
	outCount, inCount := 0, 0
	for id := 0; id < n.NumNodes(); id++ {
		node := NodeID(id)
		for _, lid := range n.OutLinks(node) {
			if n.Links[lid].Src != node {
				t.Fatalf("out link %d of node %d has src %d", lid, node, n.Links[lid].Src)
			}
			outCount++
		}
		for _, lid := range n.InLinks(node) {
			if n.Links[lid].Dst != node {
				t.Fatalf("in link %d of node %d has dst %d", lid, node, n.Links[lid].Dst)
			}
			inCount++
		}
	}
	if outCount != len(n.Links) || inCount != len(n.Links) {
		t.Errorf("adjacency covers %d out / %d in, want %d", outCount, inCount, len(n.Links))
	}
}

func TestNodeCoordRoundTripProperty(t *testing.T) {
	n := build(t, 0, tech.Electronic)
	f := func(raw uint16) bool {
		id := NodeID(int(raw) % n.NumNodes())
		return n.Node(n.X(id), n.Y(id)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeshDistance(t *testing.T) {
	n := build(t, 0, tech.Electronic)
	if d := n.MeshDistance(n.Node(0, 0), n.Node(15, 15)); d != 30 {
		t.Errorf("corner-to-corner distance %d, want 30", d)
	}
	if d := n.MeshDistance(n.Node(3, 4), n.Node(3, 4)); d != 0 {
		t.Errorf("self distance %d, want 0", d)
	}
	if d := n.MeshDistance(n.Node(2, 7), n.Node(9, 3)); d != 11 {
		t.Errorf("distance %d, want 11", d)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Width: 1, Height: 16, CoreSpacingM: 1e-3, CapacityBps: 50e9},
		{Width: 16, Height: 0, CoreSpacingM: 1e-3, CapacityBps: 50e9},
		{Width: 16, Height: 16, CoreSpacingM: 0, CapacityBps: 50e9},
		{Width: 16, Height: 16, CoreSpacingM: 1e-3, CapacityBps: 0},
		{Width: 16, Height: 16, CoreSpacingM: 1e-3, CapacityBps: 50e9, ExpressHops: -1},
		{Width: 16, Height: 16, CoreSpacingM: 1e-3, CapacityBps: 50e9, ExpressHops: 16},
	}
	for i, c := range bad {
		if _, err := Build(c); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, c)
		}
	}
}

func TestStringDescribesNetwork(t *testing.T) {
	n := build(t, 3, tech.HyPPI)
	if got := n.String(); got != "16x16 Electronic mesh + HyPPI express (hops=3)" {
		t.Errorf("String() = %q", got)
	}
	p := build(t, 0, tech.Electronic)
	if got := p.String(); got != "16x16 Electronic mesh" {
		t.Errorf("String() = %q", got)
	}
}

func TestTorusLikeH15(t *testing.T) {
	n := build(t, 15, tech.HyPPI)
	// Each row gains exactly one bidirectional long link joining its
	// ends, making the row a ring ("effectively a 2D torus").
	for y := 0; y < 16; y++ {
		found := false
		for _, lid := range n.OutLinks(n.Node(0, y)) {
			l := n.Links[lid]
			if l.Express && l.Dst == n.Node(15, y) {
				found = true
			}
		}
		if !found {
			t.Errorf("row %d missing 0→15 closure link", y)
		}
	}
}
