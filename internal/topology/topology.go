// Package topology builds the networks the paper evaluates — a W×H
// electronic (or optical) base mesh, optionally augmented with horizontal
// express links of a chosen technology and hop length (Fig. 2a, 2b) — and
// generalizes them into a registry of named topology kinds (mesh, torus,
// cmesh, fbfly; see kind.go) that all share the same Link/NodeID model.
//
// All links are bidirectional and are represented as pairs of unidirectional
// channels, matching both BookSim's channel model and the way the paper
// counts "waveguides per direction". Express links with Hops = h connect
// nodes (0,h), (h,2h), … along each row; for a 16-wide mesh this yields the
// paper's counts of 5/3/1 express channels per row per direction for
// h = 3/5/15 (h = 15 closes each row into a ring, which the paper calls
// "effectively a 2D torus" — the torus kind builds exactly those closures
// into the base fabric).
package topology

import (
	"fmt"
	"strings"

	"repro/internal/tech"
	"repro/internal/units"
)

// NodeID identifies a router/core tile; nodes are numbered row-major,
// id = y*Width + x.
type NodeID int

// LinkID indexes into Network.Links.
type LinkID int

// Link is one unidirectional channel.
type Link struct {
	ID       LinkID
	Src, Dst NodeID
	// Tech is the link's interconnect technology.
	Tech tech.Technology
	// LengthM is the physical route length (Manhattan, core spacing ×
	// hop distance).
	LengthM float64
	// LatencyClks is the traversal latency in router clocks (Table II:
	// 1 electronic, 2 optical).
	LatencyClks int
	// CapacityBps is the channel data rate (50 Gb/s everywhere in the
	// paper, enforced by rate matching).
	CapacityBps float64
	// Express marks long-range express channels (vs base mesh channels).
	Express bool
	// Dateline marks the row-closure channels of the hops = Width−1
	// configuration ("effectively a 2D torus"): traversing one wraps
	// around the row ring, and deadlock-free routing must switch virtual
	// channel classes when crossing it.
	Dateline bool
}

// DX returns the signed X displacement of the link in hops.
func (l Link) DX(n *Network) int { return n.X(l.Dst) - n.X(l.Src) }

// DY returns the signed Y displacement of the link in hops.
func (l Link) DY(n *Network) int { return n.Y(l.Dst) - n.Y(l.Src) }

// Config describes one network of the design space.
type Config struct {
	// Kind selects the topology family (see kind.go); the zero value is
	// Mesh, so configurations predating the registry build unchanged.
	Kind Kind
	// Width and Height give the node grid (Table II: 16×16). For cmesh
	// these are router-grid dimensions; each router serves Concentration
	// cores.
	Width, Height int
	// Concentration is the cmesh cores-per-router factor c (0 selects
	// DefaultConcentration for cmesh; other kinds require 0 or 1).
	Concentration int
	// CoreSpacingM is the inter-core pitch (Table II: 1 mm).
	CoreSpacingM float64
	// CapacityBps is the per-channel rate (Table II: 50 Gb/s).
	CapacityBps float64
	// BaseTech is the technology of the mesh channels.
	BaseTech tech.Technology
	// ExpressTech is the technology of express channels; ignored when
	// ExpressHops is zero.
	ExpressTech tech.Technology
	// ExpressHops is the express hop length h (0 = plain mesh; the paper
	// uses 3, 5, 15).
	ExpressHops int
	// ExpressBothDims extends express links to the vertical dimension as
	// well — the "express cube" generalization the paper declines to
	// keep router radix at 7; with it, interior express nodes reach 9
	// ports. Vertical row-closure links (hops = Height−1) are datelines
	// exactly like their horizontal counterparts.
	ExpressBothDims bool
}

// DefaultConfig returns the paper's Table II network: a 16×16 plain
// electronic mesh with 1 mm core spacing and 50 Gb/s channels.
func DefaultConfig() Config {
	return Config{
		Width:        16,
		Height:       16,
		CoreSpacingM: 1 * units.Millimetre,
		CapacityBps:  50e9,
		BaseTech:     tech.Electronic,
	}
}

// Canonical folds the defaulted fields so equal networks compare (and
// cache) equal: the Kind is lower-cased (LookupKind resolves names
// case-insensitively, so "Torus" and "torus" are one kind), an empty Kind
// is Mesh, and a zero cmesh Concentration is DefaultConcentration. Build
// and Validate canonicalize internally; callers keying caches on a Config
// should canonicalize too.
func (c Config) Canonical() Config {
	c.Kind = Kind(strings.ToLower(strings.TrimSpace(string(c.Kind))))
	if c.Kind == "" {
		c.Kind = Mesh
	}
	if c.Kind == CMesh && c.Concentration == 0 {
		c.Concentration = DefaultConcentration
	}
	return c
}

// Validate checks structural soundness: the common constraints every kind
// shares, then the kind's own (grid floors, express-hop geometry — the
// guard that keeps degenerate extent-1 dimensions with express hops out of
// the monotone table builder, which they would panic).
func (c Config) Validate() error {
	c = c.Canonical()
	spec, err := LookupKind(string(c.Kind))
	if err != nil {
		return err
	}
	if c.Width < 1 || c.Height < 1 || c.Width*c.Height < 2 {
		return fmt.Errorf("topology: %v grid %dx%d too small", c.Kind, c.Width, c.Height)
	}
	if c.CoreSpacingM <= 0 {
		return fmt.Errorf("topology: %v non-positive core spacing %v", c.Kind, c.CoreSpacingM)
	}
	if c.CapacityBps <= 0 {
		return fmt.Errorf("topology: %v non-positive capacity %v", c.Kind, c.CapacityBps)
	}
	if c.ExpressHops < 0 {
		return fmt.Errorf("topology: %v negative express hops %d", c.Kind, c.ExpressHops)
	}
	if c.Concentration < 0 {
		return fmt.Errorf("topology: %v negative concentration %d", c.Kind, c.Concentration)
	}
	if c.Kind != CMesh && c.Concentration > 1 {
		return fmt.Errorf("topology: concentration %d applies to cmesh only, not %v", c.Concentration, c.Kind)
	}
	return spec.Validate(c)
}

// Network is an immutable built topology.
type Network struct {
	Config
	Links []Link
	// spec is the resolved kind (set by Build; see KindSpec()).
	spec *KindSpec
	// out[node] lists the IDs of channels leaving the node.
	out [][]LinkID
	// in[node] lists the IDs of channels entering the node.
	in [][]LinkID
	// masked marks a degraded view produced by MaskLinks: some channels
	// in Links are absent from out/in, so the closed-form monotone
	// routing backends (which assume the kind's full wiring) do not
	// apply and routing must fall back to the generic BFS builder.
	masked bool
}

// Build constructs the network for a configuration, dispatching to the
// configured kind's wiring (see kind.go for the registered families).
func Build(c Config) (*Network, error) {
	c = c.Canonical()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	spec, err := LookupKind(string(c.Kind))
	if err != nil {
		return nil, err
	}
	n := &Network{Config: c, spec: spec}
	nn := c.Width * c.Height
	n.out = make([][]LinkID, nn)
	n.in = make([][]LinkID, nn)
	spec.Wire(c, n)
	return n, nil
}

// addPair appends the two unidirectional channels of one bidirectional
// link; kind wiring functions build every network through it.
func (n *Network) addPair(a, b NodeID, t tech.Technology, lengthM float64, express, dateline bool) {
	for _, e := range [2][2]NodeID{{a, b}, {b, a}} {
		id := LinkID(len(n.Links))
		n.Links = append(n.Links, Link{
			ID:          id,
			Src:         e[0],
			Dst:         e[1],
			Tech:        t,
			LengthM:     lengthM,
			LatencyClks: tech.LinkLatencyClks(t),
			CapacityBps: n.CapacityBps,
			Express:     express,
			Dateline:    dateline,
		})
		n.out[e[0]] = append(n.out[e[0]], id)
		n.in[e[1]] = append(n.in[e[1]], id)
	}
}

// MustBuild is Build that panics on error.
func MustBuild(c Config) *Network {
	n, err := Build(c)
	if err != nil {
		panic(err)
	}
	return n
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return n.Width * n.Height }

// Node maps grid coordinates to a NodeID.
func (n *Network) Node(x, y int) NodeID { return NodeID(y*n.Width + x) }

// X returns the column of a node.
func (n *Network) X(id NodeID) int { return int(id) % n.Width }

// Y returns the row of a node.
func (n *Network) Y(id NodeID) int { return int(id) / n.Width }

// OutLinks returns the channels leaving a node. The returned slice is owned
// by the network and must not be modified.
func (n *Network) OutLinks(id NodeID) []LinkID { return n.out[id] }

// InLinks returns the channels entering a node. The returned slice is owned
// by the network and must not be modified.
func (n *Network) InLinks(id NodeID) []LinkID { return n.in[id] }

// Ports returns the router port count at a node: one local injection/
// ejection port per attached core (Concentration for cmesh, 1 otherwise)
// plus one port per attached bidirectional link (out-degree). Interior
// mesh nodes have 5 ports; express-endpoint nodes have 6 or 7 ("5 (base)
// or 7 (hybrid)" in Table II).
func (n *Network) Ports(id NodeID) int {
	local := n.Concentration
	if local < 1 {
		local = 1
	}
	return local + len(n.out[id])
}

// MaxPorts returns the largest router port count in the network.
func (n *Network) MaxPorts() int {
	m := 0
	for id := 0; id < n.NumNodes(); id++ {
		if p := n.Ports(NodeID(id)); p > m {
			m = p
		}
	}
	return m
}

// HasDateline reports whether the network contains row-closure (wrap)
// channels, i.e. the hops = Width−1 torus-like configuration.
func (n *Network) HasDateline() bool {
	return n.HasDatelineX() || n.HasDatelineY()
}

// HasDatelineX reports whether horizontal wrap channels exist.
func (n *Network) HasDatelineX() bool {
	for _, l := range n.Links {
		if l.Dateline && l.DX(n) != 0 {
			return true
		}
	}
	return false
}

// HasDatelineY reports whether vertical wrap channels exist (2-D express
// with hops = Height−1).
func (n *Network) HasDatelineY() bool {
	for _, l := range n.Links {
		if l.Dateline && l.DY(n) != 0 {
			return true
		}
	}
	return false
}

// ExpressChannels counts unidirectional express channels.
func (n *Network) ExpressChannels() int {
	c := 0
	for _, l := range n.Links {
		if l.Express {
			c++
		}
	}
	return c
}

// AggregateCapacityBps sums the capacity of every unidirectional channel:
// the numerator of the paper's system-level CLEAR before dividing by N.
func (n *Network) AggregateCapacityBps() float64 {
	var sum float64
	for _, l := range n.Links {
		sum += l.CapacityBps
	}
	return sum
}

// CapabilityGbpsPerNode returns Table III's C: aggregate channel capacity in
// Gb/s divided by the node count.
func (n *Network) CapabilityGbpsPerNode() float64 {
	return n.AggregateCapacityBps() / units.Giga / float64(n.NumNodes())
}

// KindSpec returns the network's resolved topology family.
func (n *Network) KindSpec() *KindSpec {
	if n.spec != nil {
		return n.spec
	}
	// Networks always come out of Build with spec set; resolve lazily for
	// zero-value robustness only. No mutation — safe for concurrent use.
	s, err := LookupKind(string(n.Config.Canonical().Kind))
	if err != nil {
		panic(err)
	}
	return s
}

// Distance returns the minimal hop distance between two nodes over the
// kind's base fabric: Manhattan for mesh/cmesh, folded Manhattan for
// torus, differing-coordinate count for fbfly. Express shortcuts are not
// counted — for express configurations Distance is the base-fabric
// reference, not the routed hop count.
func (n *Network) Distance(a, b NodeID) int {
	return n.KindSpec().Distance(n, a, b)
}

// MeshDistance returns the Manhattan distance in the base grid between two
// nodes — the mesh family's Distance, kept as a fixed reference for
// routing tests that compare kinds against the grid geometry.
func (n *Network) MeshDistance(a, b NodeID) int {
	return distManhattan(n, a, b)
}

// String summarizes the topology.
func (n *Network) String() string {
	c := n.Config.Canonical()
	kind := string(c.Kind)
	if c.Kind == FBFly {
		kind = "flattened butterfly"
	}
	s := fmt.Sprintf("%dx%d %v %s", c.Width, c.Height, c.BaseTech, kind)
	if c.Kind == CMesh {
		s += fmt.Sprintf(" (c=%d)", c.Concentration)
	}
	if c.ExpressHops > 0 {
		s += fmt.Sprintf(" + %v express (hops=%d)", c.ExpressTech, c.ExpressHops)
	}
	return s
}
