package topology

import (
	"testing"

	"repro/internal/tech"
)

func build2D(t *testing.T, hops int) *Network {
	t.Helper()
	c := DefaultConfig()
	c.ExpressHops = hops
	c.ExpressTech = tech.HyPPI
	c.ExpressBothDims = true
	n, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestExpress2DChannelCounts: both dimensions gain the per-row counts, so
// express channels double vs the horizontal-only configuration.
func TestExpress2DChannelCounts(t *testing.T) {
	cases := []struct{ hops, perLineDir int }{{3, 5}, {5, 3}, {15, 1}}
	for _, c := range cases {
		n := build2D(t, c.hops)
		want := c.perLineDir * 16 * 2 * 2 // rows + columns
		if got := n.ExpressChannels(); got != want {
			t.Errorf("hops=%d: %d express channels, want %d", c.hops, got, want)
		}
	}
}

// TestExpress2DPorts: interior double-express nodes reach 9 ports (the
// radix cost the paper avoids by staying horizontal).
func TestExpress2DPorts(t *testing.T) {
	n := build2D(t, 3)
	if got := n.Ports(n.Node(3, 3)); got != 9 {
		t.Errorf("double express node ports = %d, want 9", got)
	}
	if got := n.MaxPorts(); got != 9 {
		t.Errorf("max ports = %d, want 9", got)
	}
	// Horizontal-only stays at 7.
	c := DefaultConfig()
	c.ExpressHops = 3
	c.ExpressTech = tech.HyPPI
	h := MustBuild(c)
	if got := h.MaxPorts(); got != 7 {
		t.Errorf("1-D express max ports = %d, want 7", got)
	}
}

// TestExpress2DDatelines: hops=15 in both dimensions closes rows AND
// columns into rings.
func TestExpress2DDatelines(t *testing.T) {
	n := build2D(t, 15)
	if !n.HasDatelineX() || !n.HasDatelineY() {
		t.Error("hops=15 both dims must have X and Y datelines")
	}
	oneD := MustBuild(Config{
		Width: 16, Height: 16, CoreSpacingM: 1e-3, CapacityBps: 50e9,
		BaseTech: tech.Electronic, ExpressTech: tech.HyPPI, ExpressHops: 15,
	})
	if !oneD.HasDatelineX() || oneD.HasDatelineY() {
		t.Error("1-D express must have only the X dateline")
	}
	short := build2D(t, 3)
	if short.HasDateline() {
		t.Error("hops=3 must have no datelines")
	}
}

// TestExpress2DCapability: C grows by twice the one-dimensional increment.
func TestExpress2DCapability(t *testing.T) {
	n := build2D(t, 3)
	// Plain 187.5 + 2 × 31.25 = 250.
	if got := n.CapabilityGbpsPerNode(); got != 250 {
		t.Errorf("2-D express C = %v, want 250", got)
	}
}

// TestExpress2DVerticalLinkShape: vertical express channels move only in Y.
func TestExpress2DVerticalLinkShape(t *testing.T) {
	n := build2D(t, 5)
	vertical := 0
	for _, l := range n.Links {
		if !l.Express {
			continue
		}
		dx, dy := l.DX(n), l.DY(n)
		if dx != 0 && dy != 0 {
			t.Fatalf("diagonal express link %d", l.ID)
		}
		if dy != 0 {
			vertical++
			if dy != 5 && dy != -5 {
				t.Fatalf("vertical express dy=%d, want ±5", dy)
			}
		}
	}
	if vertical != 3*16*2 {
		t.Errorf("vertical express channels = %d, want %d", vertical, 3*16*2)
	}
}

func TestExpress2DValidation(t *testing.T) {
	c := Config{
		Width: 16, Height: 4, CoreSpacingM: 1e-3, CapacityBps: 50e9,
		BaseTech: tech.Electronic, ExpressTech: tech.HyPPI,
		ExpressHops: 5, ExpressBothDims: true,
	}
	if _, err := Build(c); err == nil {
		t.Error("vertical hops above height must be rejected")
	}
	c.ExpressBothDims = false
	if _, err := Build(c); err != nil {
		t.Errorf("horizontal-only should pass: %v", err)
	}
}
