package topology

import "fmt"

// MaskLinks returns a degraded view of the network with every channel
// whose entry in down is true removed from the adjacency lists. The view
// shares the Links slice with the original — LinkIDs are stable, so
// per-link statistics and energy models sized on the full network still
// line up — but failed channels are invisible to OutLinks/InLinks, carry
// no traffic, and contribute no router ports.
//
// When no channel is down the original network itself is returned, so the
// zero-fault path keeps pointer identity (routing-table caches and
// simulator pools keyed on the *Network see the same entry).
//
// The view is immutable like any Network; masking a masked view composes
// (the down slice is indexed by LinkID against the shared Links).
func (n *Network) MaskLinks(down []bool) (*Network, error) {
	if len(down) != len(n.Links) {
		return nil, fmt.Errorf("topology: mask length %d != %d links", len(down), len(n.Links))
	}
	any := false
	for id, d := range down {
		if d && n.linkPresent(LinkID(id)) {
			any = true
			break
		}
	}
	if !any {
		return n, nil
	}
	m := &Network{Config: n.Config, Links: n.Links, spec: n.spec, masked: true}
	nn := n.NumNodes()
	m.out = make([][]LinkID, nn)
	m.in = make([][]LinkID, nn)
	for id := 0; id < nn; id++ {
		for _, lid := range n.out[id] {
			if !down[lid] {
				m.out[id] = append(m.out[id], lid)
			}
		}
		for _, lid := range n.in[id] {
			if !down[lid] {
				m.in[id] = append(m.in[id], lid)
			}
		}
	}
	return m, nil
}

// linkPresent reports whether a channel is in the (possibly already
// masked) adjacency.
func (n *Network) linkPresent(id LinkID) bool {
	for _, lid := range n.out[n.Links[id].Src] {
		if lid == id {
			return true
		}
	}
	return false
}

// IsMasked reports whether this network is a degraded MaskLinks view
// rather than the kind's full wiring.
func (n *Network) IsMasked() bool { return n.masked }

// DownLinks returns the IDs of channels present in Links but masked out
// of the adjacency — empty for an unmasked network.
func (n *Network) DownLinks() []LinkID {
	if !n.masked {
		return nil
	}
	var down []LinkID
	for _, l := range n.Links {
		if !n.linkPresent(l.ID) {
			down = append(down, l.ID)
		}
	}
	return down
}
