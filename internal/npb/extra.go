package npb

import (
	"math/rand"

	"repro/internal/trace"
)

// Extension kernels beyond the four the paper evaluates: EP and IS complete
// the classic NPB communication spectrum and serve as controls — EP is
// nearly communication-free (express links cannot matter), IS is a skewed
// all-to-all-v (bucket exchange) between FT's uniform all-to-all and CG's
// structured exchanges.
const (
	// EP is the embarrassingly-parallel kernel: computation with a
	// single small butterfly allreduce at the end.
	EP Kernel = iota + 100
	// IS is the integer-sort kernel: per-iteration bucket exchange
	// (all-to-all-v with skewed sizes) plus a small allreduce.
	IS
)

// ExtensionKernels lists the extra kernels.
var ExtensionKernels = []Kernel{EP, IS}

// Class A reference volumes for the extension kernels.
const (
	epBytesPerStep = 64  // one partial sum per butterfly stage
	isBytesPerPair = 512 // 2^23 keys × 4 B spread over 255 partners
	isDefaultIters = 10
	epDefaultIters = 1
)

func extString(k Kernel) (string, bool) {
	switch k {
	case EP:
		return "EP", true
	case IS:
		return "IS", true
	}
	return "", false
}

func extParse(s string) (Kernel, bool) {
	switch s {
	case "EP", "ep":
		return EP, true
	case "IS", "is":
		return IS, true
	}
	return 0, false
}

func extGenerate(cfg Config) ([]trace.Event, bool) {
	switch cfg.Kernel {
	case EP:
		return genEP(cfg), true
	case IS:
		return genIS(cfg), true
	}
	return nil, false
}

// genEP: a recursive-doubling allreduce: log2(N) stages, each rank
// exchanging one tiny message with its rank XOR 2^k partner. Stage s of the
// butterfly maps to mesh strides that alternate horizontal and vertical
// under row-major placement.
func genEP(cfg Config) []trace.Event {
	n := cfg.GridW * cfg.GridH
	bytes := scaleBytes(epBytesPerStep, cfg.Scale)
	serial := cfg.spacing(bytes)
	stages := 0
	for 1<<stages < n {
		stages++
	}
	gap := cfg.phaseGap(bytes * int64(stages))
	var events []trace.Event
	for it := 0; it < cfg.iters(epDefaultIters); it++ {
		start := int64(it) * gap
		for s := 0; s < stages; s++ {
			for r := 0; r < n; r++ {
				p := r ^ (1 << s)
				if p >= n {
					continue
				}
				events = append(events, trace.Event{
					Cycle: start + int64(s)*serial,
					Src:   r, Dst: p, Bytes: bytes,
				})
			}
		}
	}
	return events
}

// genIS: per iteration, a bucket exchange — every rank sends to every other
// rank, but with skewed per-pair volumes (buckets are data dependent): sizes
// are drawn deterministically around the Class A mean with a 4:1 spread.
// A small recursive-doubling allreduce (bucket-size ranking) precedes it.
func genIS(cfg Config) []trace.Event {
	n := cfg.GridW * cfg.GridH
	mean := scaleBytes(isBytesPerPair, cfg.Scale)
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	gap := cfg.phaseGap(int64(n-1) * mean)
	var events []trace.Event
	for it := 0; it < cfg.iters(isDefaultIters); it++ {
		start := int64(it) * gap
		// Ranking allreduce.
		for s := 0; 1<<s < n; s++ {
			for r := 0; r < n; r++ {
				p := r ^ (1 << s)
				if p < n {
					events = append(events, trace.Event{
						Cycle: start + int64(s), Src: r, Dst: p, Bytes: minMessageBytes,
					})
				}
			}
		}
		// Skewed bucket exchange.
		for s := 0; s < n; s++ {
			order := rng.Perm(n)
			t := start + 64
			for _, d := range order {
				if d == s {
					continue
				}
				// Skew: bucket sizes vary 4:1 around the mean.
				f := 0.4 + 1.2*rng.Float64()
				bytes := int64(float64(mean) * f)
				if bytes < minMessageBytes {
					bytes = minMessageBytes
				}
				events = append(events, trace.Event{Cycle: t, Src: s, Dst: d, Bytes: bytes})
				t += cfg.spacing(bytes)
			}
		}
	}
	return events
}
