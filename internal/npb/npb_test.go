package npb

import (
	"testing"

	"repro/internal/trace"
)

func gen(t *testing.T, k Kernel) []trace.Event {
	t.Helper()
	ev, err := Generate(DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) == 0 {
		t.Fatalf("%v: empty trace", k)
	}
	return ev
}

// meshDist is the 16×16 Manhattan distance between ranks.
func meshDist(a, b int) int {
	ax, ay := a%16, a/16
	bx, by := b%16, b/16
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func meanDist(ev []trace.Event) float64 {
	var sum float64
	for _, e := range ev {
		sum += float64(meshDist(e.Src, e.Dst))
	}
	return sum / float64(len(ev))
}

// TestFTIsAllToAll: every ordered pair communicates in each iteration.
func TestFTIsAllToAll(t *testing.T) {
	cfg := DefaultConfig(FT)
	cfg.Iterations = 1
	ev := MustGenerate(cfg)
	if want := 256 * 255; len(ev) != want {
		t.Fatalf("FT events %d, want %d", len(ev), want)
	}
	seen := map[[2]int]bool{}
	for _, e := range ev {
		if e.Src == e.Dst {
			t.Fatal("self message")
		}
		seen[[2]int{e.Src, e.Dst}] = true
	}
	if len(seen) != 256*255 {
		t.Errorf("FT covered %d pairs, want %d", len(seen), 256*255)
	}
	// All-to-all on a 16×16 grid averages ≈10.7 hops.
	if d := meanDist(ev); d < 10 || d > 11.5 {
		t.Errorf("FT mean distance %v, want ≈10.7", d)
	}
}

// TestCGIsShortRange: power-of-two row exchanges average under 4 hops —
// the paper's "CG has short range traffic".
func TestCGIsShortRange(t *testing.T) {
	ev := gen(t, CG)
	if d := meanDist(ev); d < 2 || d > 4.5 {
		t.Errorf("CG mean distance %v, want ≈3.2 (short range)", d)
	}
	// All CG traffic stays within a row.
	for _, e := range ev {
		if e.Src/16 != e.Dst/16 {
			t.Fatalf("CG message leaves its row: %d->%d", e.Src, e.Dst)
		}
	}
	// Offsets are powers of two only.
	for _, e := range ev {
		dx := meshDist(e.Src, e.Dst)
		if dx != 1 && dx != 2 && dx != 4 && dx != 8 {
			t.Fatalf("CG offset %d not a power of two", dx)
		}
	}
}

// TestMGHasLongRangeWraparound: periodic boundaries produce near-full-row
// routes (distance ≥ 12), the traffic class that profits from hops=15.
func TestMGHasLongRangeWraparound(t *testing.T) {
	ev := gen(t, MG)
	var long int
	for _, e := range ev {
		if meshDist(e.Src, e.Dst) >= 12 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("MG should contain wraparound long-range messages")
	}
	// Mean distance sits between CG's and FT's.
	d := meanDist(ev)
	if d < 3 || d > 9 {
		t.Errorf("MG mean distance %v, want mid-range", d)
	}
	// Message sizes halve with level: multiple distinct sizes present.
	sizes := map[int64]bool{}
	for _, e := range ev {
		sizes[e.Bytes] = true
	}
	if len(sizes) < 3 {
		t.Errorf("MG should have per-level message sizes, got %d distinct", len(sizes))
	}
}

// TestLUIsOneHop: every LU message goes to an immediate mesh neighbour.
func TestLUIsOneHop(t *testing.T) {
	ev := gen(t, LU)
	for _, e := range ev {
		if meshDist(e.Src, e.Dst) != 1 {
			t.Fatalf("LU message %d->%d is %d hops", e.Src, e.Dst, meshDist(e.Src, e.Dst))
		}
	}
	if d := meanDist(ev); d != 1 {
		t.Errorf("LU mean distance %v, want exactly 1", d)
	}
}

// TestKernelLocalityOrdering: the Fig. 6 narrative requires
// LU < CG < MG < FT in mean hop distance.
func TestKernelLocalityOrdering(t *testing.T) {
	lu := meanDist(gen(t, LU))
	cg := meanDist(gen(t, CG))
	mg := meanDist(gen(t, MG))
	ft := meanDist(gen(t, FT))
	if !(lu < cg && cg < mg && mg < ft) {
		t.Errorf("locality ordering broken: LU=%v CG=%v MG=%v FT=%v", lu, cg, mg, ft)
	}
}

func TestVolumeScalesLinearly(t *testing.T) {
	a := DefaultConfig(FT)
	a.Iterations = 1
	a.Scale = 1.0
	b := a
	b.Scale = 0.5
	va := trace.TotalBytes(MustGenerate(a))
	vb := trace.TotalBytes(MustGenerate(b))
	ratio := float64(va) / float64(vb)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("volume ratio %v, want ≈2", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	for _, k := range Kernels {
		a := MustGenerate(DefaultConfig(k))
		b := MustGenerate(DefaultConfig(k))
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", k)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: event %d differs", k, i)
			}
		}
	}
}

func TestEventsAreValidForPacketize(t *testing.T) {
	for _, k := range Kernels {
		ev := gen(t, k)
		if _, err := trace.Packetize(ev, 256, trace.DefaultPacketize()); err != nil {
			t.Errorf("%v: packetize failed: %v", k, err)
		}
	}
}

func TestIterationsOverride(t *testing.T) {
	one := DefaultConfig(LU)
	one.Iterations = 1
	two := DefaultConfig(LU)
	two.Iterations = 2
	if got := len(MustGenerate(two)); got != 2*len(MustGenerate(one)) {
		t.Errorf("2 iterations should double events, got %d", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Kernel: FT, GridW: 1, GridH: 16, Scale: 1},
		{Kernel: FT, GridW: 16, GridH: 16, Scale: 0},
		{Kernel: FT, GridW: 16, GridH: 16, Scale: 100},
		{Kernel: FT, GridW: 16, GridH: 16, Scale: 1, Iterations: -1},
		{Kernel: FT, GridW: 16, GridH: 16, Scale: 1, PhaseGapCycles: -1},
	}
	for i, c := range bad {
		if _, err := Generate(c); err != nil {
			continue
		}
		t.Errorf("config %d should fail", i)
	}
	if _, err := Generate(Config{Kernel: Kernel(9), GridW: 16, GridH: 16, Scale: 1}); err == nil {
		t.Error("unknown kernel must fail")
	}
}

func TestKernelStringAndParse(t *testing.T) {
	for _, k := range Kernels {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKernel("BT"); err == nil {
		t.Error("unknown kernel name must fail")
	}
	if Kernel(9).String() != "Kernel(9)" {
		t.Error("unknown kernel string")
	}
}
