// Package npb synthesizes the communication traces of the four NAS Parallel
// Benchmark kernels the paper evaluates (FT, CG, MG, LU) for 256 ranks on a
// 16×16 grid, Class A scaled.
//
// The paper captured real MPICL traces on a Cray XE6m; those traces are not
// available, so this package generates the *documented point-to-point
// structure* of each kernel instead — which is sufficient because the paper
// itself discards all temporal detail beyond injection bandwidth and uses
// only flit counts between source-destination pairs. The spatial character
// of each kernel is what drives Fig. 6:
//
//	FT  — pairwise all-to-all transposes (benefits from all express hops)
//	CG  — power-of-two partner exchanges within processor-grid rows
//	      (short range; benefits most from hops=3)
//	MG  — V-cycle ghost exchanges at doubling strides with periodic
//	      (wraparound) boundaries, so coarse levels and boundary ranks
//	      produce near-full-row routes (benefits most from hops=15)
//	LU  — 2-D pipelined wavefront sweeps between immediate neighbours
//	      (1-hop traffic; express links barely help)
//
// Ranks map to nodes identically (rank i = node i, row-major), matching the
// natural placement of a 16×16 job on a 16×16 NoC.
package npb

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// Kernel selects a benchmark.
type Kernel int

const (
	// FT is the 3-D FFT kernel (all-to-all transpose).
	FT Kernel = iota
	// CG is the conjugate-gradient kernel (power-of-two row exchanges).
	CG
	// MG is the multigrid kernel (strided ghost exchange, periodic).
	MG
	// LU is the SSOR wavefront kernel (nearest-neighbour pipelining).
	LU
)

// Kernels lists all four in presentation order (as in Fig. 6).
var Kernels = []Kernel{FT, CG, MG, LU}

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case FT:
		return "FT"
	case CG:
		return "CG"
	case MG:
		return "MG"
	case LU:
		return "LU"
	}
	if s, ok := extString(k); ok {
		return s
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// ParseKernel resolves a kernel name.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "FT", "ft":
		return FT, nil
	case "CG", "cg":
		return CG, nil
	case "MG", "mg":
		return MG, nil
	case "LU", "lu":
		return LU, nil
	}
	if k, ok := extParse(s); ok {
		return k, nil
	}
	return 0, fmt.Errorf("npb: unknown kernel %q", s)
}

// Config parameterizes trace synthesis.
type Config struct {
	// Kernel is the benchmark to synthesize.
	Kernel Kernel
	// GridW and GridH give the rank grid (paper: 16×16 = 256 ranks).
	GridW, GridH int
	// Scale multiplies all message volumes relative to Class A; the
	// default 1/16 keeps full-trace simulations in the seconds range
	// while preserving every communication edge and relative volume.
	Scale float64
	// Iterations overrides the kernel's default iteration count when
	// positive.
	Iterations int
	// PhaseGapCycles separates successive communication phases; when 0 a
	// kernel-appropriate default is used.
	PhaseGapCycles int64
	// InjectionFactor stretches intra-phase send spacing: a factor F
	// paces each rank at ~1/F flits per cycle, emulating the compute
	// time between sends. The default 8 puts per-node injection near the
	// paper's 0.1 flits/cycle operating point instead of saturating the
	// NoC with back-to-back sends.
	InjectionFactor float64
	// Seed drives the deterministic shuffling of intra-phase send order.
	Seed int64
}

// DefaultConfig returns the paper's setup for a kernel: 256 ranks on 16×16,
// Class A volumes scaled by 1/16.
func DefaultConfig(k Kernel) Config {
	return Config{Kernel: k, GridW: 16, GridH: 16, Scale: 1.0 / 16, Seed: 1, InjectionFactor: 8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.GridW < 2 || c.GridH < 2 {
		return fmt.Errorf("npb: grid %dx%d too small", c.GridW, c.GridH)
	}
	if c.Scale <= 0 || c.Scale > 16 {
		return fmt.Errorf("npb: scale %v out of (0,16]", c.Scale)
	}
	if c.Iterations < 0 {
		return fmt.Errorf("npb: negative iterations")
	}
	if c.PhaseGapCycles < 0 {
		return fmt.Errorf("npb: negative phase gap")
	}
	if c.InjectionFactor < 0 {
		return fmt.Errorf("npb: negative injection factor")
	}
	return nil
}

// Class A reference volumes (bytes) before scaling. Derived from the Class A
// problem sizes on 256 ranks: FT transposes a 256×256×128 complex grid
// (≈2 KiB per pair per transpose); CG partitions a 14000-row matrix
// (≈7 KiB per partner exchange); MG's finest-level ghost faces on a 256³
// grid are ≈2 KiB, halving per level; LU exchanges ≈1 KiB pencil faces per
// sweep step.
const (
	ftBytesPerPair   = 2048
	cgBytesPerXfer   = 7168
	mgBytesFinest    = 2048
	luBytesPerStep   = 1024
	ftDefaultIters   = 3
	cgDefaultIters   = 15
	mgDefaultIters   = 4
	luDefaultIters   = 12
	mgLevels         = 5
	minMessageBytes  = 8
	defaultPhaseScal = 3 // phase gap = injection time × this
)

// Generate synthesizes the event trace for a configuration.
func Generate(cfg Config) ([]trace.Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Kernel {
	case FT:
		return genFT(cfg), nil
	case CG:
		return genCG(cfg), nil
	case MG:
		return genMG(cfg), nil
	case LU:
		return genLU(cfg), nil
	}
	if ev, ok := extGenerate(cfg); ok {
		return ev, nil
	}
	return nil, fmt.Errorf("npb: unknown kernel %v", cfg.Kernel)
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) []trace.Event {
	ev, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ev
}

func scaleBytes(base int64, scale float64) int64 {
	b := int64(float64(base) * scale)
	if b < minMessageBytes {
		b = minMessageBytes
	}
	return b
}

func (c Config) rank(x, y int) int { return y*c.GridW + x }

// factor returns the injection pacing factor (default 8).
func (c Config) factor() float64 {
	if c.InjectionFactor > 0 {
		return c.InjectionFactor
	}
	return 8
}

// spacing returns the paced cycle gap between successive sends of one rank
// for messages of the given size.
func (c Config) spacing(bytes int64) int64 {
	flits := (bytes + 7) / 8
	sp := int64(float64(flits) * c.factor())
	if sp < 1 {
		sp = 1
	}
	return sp
}

func (c Config) iters(def int) int {
	if c.Iterations > 0 {
		return c.Iterations
	}
	return def
}

// phaseGap returns the inter-phase spacing: explicitly configured, or sized
// from the per-source injection time of the phase's heaviest sender.
func (c Config) phaseGap(maxSrcBytes int64) int64 {
	if c.PhaseGapCycles > 0 {
		return c.PhaseGapCycles
	}
	flits := (maxSrcBytes + 7) / 8
	gap := int64(float64(flits)*c.factor()) * defaultPhaseScal / 2
	if gap < 256 {
		gap = 256
	}
	return gap
}

// genFT: per iteration, one pairwise all-to-all transpose — every rank
// sends to every other rank. Send order is shuffled per source so the
// all-to-all does not synchronize into a convoy, as in real FT where each
// rank walks the exchange schedule from a different offset.
func genFT(cfg Config) []trace.Event {
	n := cfg.GridW * cfg.GridH
	bytes := scaleBytes(ftBytesPerPair, cfg.Scale)
	rng := rand.New(rand.NewSource(cfg.Seed))
	perSrc := int64(n-1) * bytes
	gap := cfg.phaseGap(perSrc)
	var events []trace.Event
	serial := cfg.spacing(bytes)
	for it := 0; it < cfg.iters(ftDefaultIters); it++ {
		start := int64(it) * gap
		for s := 0; s < n; s++ {
			order := rng.Perm(n)
			t := start
			for _, d := range order {
				if d == s {
					continue
				}
				events = append(events, trace.Event{Cycle: t, Src: s, Dst: d, Bytes: bytes})
				t += serial
			}
		}
	}
	return events
}

// genCG: per iteration, each rank exchanges with its row partners at
// power-of-two offsets (x XOR 1, 2, 4, 8): the classic CG reduction
// butterfly across the processor-grid row. Mean mesh distance ≈ 3.75 hops —
// the short-range profile the paper highlights.
func genCG(cfg Config) []trace.Event {
	bytes := scaleBytes(cgBytesPerXfer, cfg.Scale)
	serial := cfg.spacing(bytes)
	var offsets []int
	for o := 1; o < cfg.GridW; o <<= 1 {
		offsets = append(offsets, o)
	}
	perSrc := int64(len(offsets)) * bytes
	gap := cfg.phaseGap(perSrc)
	var events []trace.Event
	for it := 0; it < cfg.iters(cgDefaultIters); it++ {
		start := int64(it) * gap
		for y := 0; y < cfg.GridH; y++ {
			for x := 0; x < cfg.GridW; x++ {
				t := start
				for _, o := range offsets {
					px := x ^ o
					if px >= cfg.GridW {
						continue
					}
					events = append(events, trace.Event{
						Cycle: t, Src: cfg.rank(x, y), Dst: cfg.rank(px, y), Bytes: bytes,
					})
					t += serial
				}
			}
		}
	}
	return events
}

// genMG: per V-cycle, ghost exchanges at strides 1, 2, 4, … in both
// dimensions with periodic wraparound (Class A MG has periodic boundaries),
// message sizes halving per level. Wraparound turns boundary exchanges into
// (0 ↔ W−1) routes that span the whole row/column — the long-range traffic
// that makes MG the biggest winner from hops=15 in Fig. 6.
func genMG(cfg Config) []trace.Event {
	var events []trace.Event
	finest := scaleBytes(mgBytesFinest, cfg.Scale)
	// Heaviest sender volume per phase: 4 directions at the finest level.
	gap := cfg.phaseGap(4 * finest)
	for it := 0; it < cfg.iters(mgDefaultIters); it++ {
		start := int64(it) * gap
		levelStart := start
		for lvl := 0; lvl < mgLevels; lvl++ {
			stride := 1 << lvl
			if stride >= cfg.GridW && stride >= cfg.GridH {
				break
			}
			bytes := finest >> lvl
			if bytes < minMessageBytes {
				bytes = minMessageBytes
			}
			serial := cfg.spacing(bytes)
			for y := 0; y < cfg.GridH; y++ {
				for x := 0; x < cfg.GridW; x++ {
					s := cfg.rank(x, y)
					t := levelStart
					// ±x and ±y with wraparound.
					dsts := []int{
						cfg.rank((x+stride)%cfg.GridW, y),
						cfg.rank(((x-stride)%cfg.GridW+cfg.GridW)%cfg.GridW, y),
						cfg.rank(x, (y+stride)%cfg.GridH),
						cfg.rank(x, ((y-stride)%cfg.GridH+cfg.GridH)%cfg.GridH),
					}
					for _, d := range dsts {
						if d == s {
							continue
						}
						events = append(events, trace.Event{Cycle: t, Src: s, Dst: d, Bytes: bytes})
						t += serial
					}
				}
			}
			levelStart += gap / mgLevels
		}
	}
	return events
}

// genLU: per iteration, two pipelined wavefront sweeps: lower sweep sends
// to (x+1, y) and (x, y+1), upper sweep to (x−1, y) and (x, y−1), staggered
// along the anti-diagonal like the real SSOR pipeline. All traffic is
// 1-hop, so express links cannot help — the paper's flat LU bars.
func genLU(cfg Config) []trace.Event {
	bytes := scaleBytes(luBytesPerStep, cfg.Scale)
	serial := cfg.spacing(bytes)
	gap := cfg.phaseGap(2 * bytes * int64(cfg.GridW+cfg.GridH))
	var events []trace.Event
	for it := 0; it < cfg.iters(luDefaultIters); it++ {
		start := int64(it) * gap
		for y := 0; y < cfg.GridH; y++ {
			for x := 0; x < cfg.GridW; x++ {
				s := cfg.rank(x, y)
				// Wavefront position staggers the release.
				t := start + int64(x+y)*serial
				if x+1 < cfg.GridW {
					events = append(events, trace.Event{Cycle: t, Src: s, Dst: cfg.rank(x+1, y), Bytes: bytes})
				}
				if y+1 < cfg.GridH {
					events = append(events, trace.Event{Cycle: t + serial, Src: s, Dst: cfg.rank(x, y+1), Bytes: bytes})
				}
				// Reverse sweep.
				rt := start + gap/2 + int64((cfg.GridW-1-x)+(cfg.GridH-1-y))*serial
				if x > 0 {
					events = append(events, trace.Event{Cycle: rt, Src: s, Dst: cfg.rank(x-1, y), Bytes: bytes})
				}
				if y > 0 {
					events = append(events, trace.Event{Cycle: rt + serial, Src: s, Dst: cfg.rank(x, y-1), Bytes: bytes})
				}
			}
		}
	}
	return events
}
