package npb

import (
	"testing"

	"repro/internal/trace"
)

func TestEPIsNearlyCommunicationFree(t *testing.T) {
	ep := MustGenerate(DefaultConfig(EP))
	ft := MustGenerate(DefaultConfig(FT))
	if trace.TotalBytes(ep)*100 > trace.TotalBytes(ft) {
		t.Errorf("EP volume %d should be ≪ FT volume %d",
			trace.TotalBytes(ep), trace.TotalBytes(ft))
	}
	// One butterfly: log2(256) = 8 stages × 256 ranks.
	if want := 8 * 256; len(ep) != want {
		t.Errorf("EP events = %d, want %d", len(ep), want)
	}
}

func TestEPButterflyPartners(t *testing.T) {
	ep := MustGenerate(DefaultConfig(EP))
	for _, e := range ep {
		x := e.Src ^ e.Dst
		// Partner differs in exactly one bit.
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("EP exchange %d->%d not a butterfly partner", e.Src, e.Dst)
		}
	}
}

func TestISIsSkewedAllToAll(t *testing.T) {
	cfg := DefaultConfig(IS)
	cfg.Iterations = 1
	is := MustGenerate(cfg)
	// Bucket phase covers all ordered pairs (+ the allreduce events).
	pairs := map[[2]int]int64{}
	var minB, maxB int64
	for _, e := range is {
		if e.Bytes <= minMessageBytes {
			continue // allreduce control messages
		}
		pairs[[2]int{e.Src, e.Dst}] = e.Bytes
		if minB == 0 || e.Bytes < minB {
			minB = e.Bytes
		}
		if e.Bytes > maxB {
			maxB = e.Bytes
		}
	}
	if len(pairs) != 256*255 {
		t.Errorf("IS bucket exchange covers %d pairs, want %d", len(pairs), 256*255)
	}
	// Skew: sizes spread by more than 2:1 (drawn 4:1).
	if float64(maxB) < 2*float64(minB) {
		t.Errorf("IS bucket sizes not skewed: %d..%d", minB, maxB)
	}
}

func TestExtensionKernelsRoundTrip(t *testing.T) {
	for _, k := range ExtensionKernels {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
		cfg := DefaultConfig(k)
		if testing.Short() {
			cfg.GridW, cfg.GridH = 8, 8
			cfg.Scale = 1.0 / 128
		}
		ev := MustGenerate(cfg)
		if len(ev) == 0 {
			t.Errorf("%v: empty trace", k)
		}
		if _, err := trace.Packetize(ev, cfg.GridW*cfg.GridH, trace.DefaultPacketize()); err != nil {
			t.Errorf("%v: packetize: %v", k, err)
		}
	}
}

func TestISDeterminism(t *testing.T) {
	cfg := DefaultConfig(IS)
	if testing.Short() {
		cfg.GridW, cfg.GridH = 8, 8
		cfg.Scale = 1.0 / 128
	}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
