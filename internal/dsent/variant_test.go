package dsent

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/units"
)

func variantConfig(name string) Config {
	cfg := DefaultConfig()
	cfg.Variant = name
	return cfg
}

// TestVariantBaselineIdentity pins the registry's identity contract: the
// zero-value variant is exactly neutral, so every existing Config keeps
// evaluating to the same bytes.
func TestVariantBaselineIdentity(t *testing.T) {
	v, err := LookupVariant(VariantBaseline)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]float64{
		"ModulatorJScale":     v.ModulatorJScale,
		"ReceiverJScale":      v.ReceiverJScale,
		"LaserWScale":         v.LaserWScale,
		"TuningWScale":        v.TuningWScale,
		"LinkDeviceAreaScale": v.LinkDeviceAreaScale,
		"RouterStaticScale":   v.RouterStaticScale,
		"RouterXbarScale":     v.RouterXbarScale,
		"RouterAreaScale":     v.RouterAreaScale,
	} {
		if s != 1 {
			t.Fatalf("baseline %s = %v, want exactly 1", name, s)
		}
	}
	if v.FlitErrorProb != 0 {
		t.Fatalf("baseline FlitErrorProb = %v, want 0", v.FlitErrorProb)
	}
	// And the evaluators agree: an explicit baseline Config reproduces the
	// default one bit for bit.
	base, err := Link(DefaultConfig(), tech.HyPPI, 4*units.Millimetre)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Link(variantConfig(VariantBaseline), tech.HyPPI, 4*units.Millimetre)
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Fatalf("explicit baseline diverged:\n%+v\nvs\n%+v", base, again)
	}
	if r0, r1 := ElectronicRouter(DefaultConfig(), 5), ElectronicRouter(variantConfig(VariantBaseline), 5); r0 != r1 {
		t.Fatalf("explicit baseline router diverged:\n%+v\nvs\n%+v", r0, r1)
	}
}

// TestVariantLookup covers the registry surface and the Validate gate.
func TestVariantLookup(t *testing.T) {
	vs := Variants()
	if len(vs) != 3 {
		t.Fatalf("Variants() = %d entries, want 3", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Fatalf("duplicate variant name %q", v.Name)
		}
		seen[v.Name] = true
		if _, err := LookupVariant(v.Name); err != nil {
			t.Fatalf("registry entry %q not resolvable: %v", v.Name, err)
		}
	}
	if !seen[VariantMODetector] || !seen[VariantHybrid5x5] {
		t.Fatalf("registry missing required variants: %v", seen)
	}
	if _, err := LookupVariant("no-such-device"); err == nil {
		t.Fatal("unknown variant resolved")
	}
	if err := variantConfig("no-such-device").Validate(); err == nil {
		t.Fatal("Validate accepted an unknown variant")
	}
	if err := variantConfig(VariantMODetector).Validate(); err != nil {
		t.Fatalf("Validate rejected a registry variant: %v", err)
	}
}

// TestVariantMODetectorShifts checks the MODetector trade-off direction:
// cheaper modulation, cheaper receiver, smaller end-points, no trimming —
// paid for with more laser power and a nonzero error floor.
func TestVariantMODetectorShifts(t *testing.T) {
	length := 4 * units.Millimetre
	base, err := Link(DefaultConfig(), tech.HyPPI, length)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Link(variantConfig(VariantMODetector), tech.HyPPI, length)
	if err != nil {
		t.Fatal(err)
	}
	if mod.ModulatorJPerFlit >= base.ModulatorJPerFlit {
		t.Fatalf("modulator energy %v not below baseline %v", mod.ModulatorJPerFlit, base.ModulatorJPerFlit)
	}
	if mod.ReceiverJPerFlit >= base.ReceiverJPerFlit {
		t.Fatalf("receiver energy %v not below baseline %v", mod.ReceiverJPerFlit, base.ReceiverJPerFlit)
	}
	if mod.LaserW <= base.LaserW {
		t.Fatalf("laser %v not above baseline %v (sensitivity penalty lost)", mod.LaserW, base.LaserW)
	}
	if mod.AreaM2 >= base.AreaM2 {
		t.Fatalf("area %v not below baseline %v", mod.AreaM2, base.AreaM2)
	}
	// Non-resonant end-points: photonic links lose their ring trimming.
	pho, err := Link(variantConfig(VariantMODetector), tech.Photonic, length)
	if err != nil {
		t.Fatal(err)
	}
	if pho.TuningW != 0 {
		t.Fatalf("photonic TuningW = %v, want 0 under MODetector", pho.TuningW)
	}
	v, _ := LookupVariant(VariantMODetector)
	if v.FlitErrorProb <= 0 {
		t.Fatalf("MODetector FlitErrorProb = %v, want > 0", v.FlitErrorProb)
	}
}

// TestVariantHybrid5x5Shifts checks the hybrid-router trade-off direction:
// cheaper crossbar traversals and a smaller footprint against more static
// power, a lossier optical path and a crosstalk error floor.
func TestVariantHybrid5x5Shifts(t *testing.T) {
	base := ElectronicRouter(DefaultConfig(), 5)
	hyb := ElectronicRouter(variantConfig(VariantHybrid5x5), 5)
	if hyb.XbarJPerFlit >= base.XbarJPerFlit {
		t.Fatalf("crossbar energy %v not below baseline %v", hyb.XbarJPerFlit, base.XbarJPerFlit)
	}
	if hyb.BufWriteJPerFlit != base.BufWriteJPerFlit || hyb.BufReadJPerFlit != base.BufReadJPerFlit {
		t.Fatal("buffer energy must be untouched by the switching fabric")
	}
	if got, want := hyb.DynamicJPerFlit, hyb.BufWriteJPerFlit+hyb.BufReadJPerFlit+hyb.XbarJPerFlit; got != want {
		t.Fatalf("DynamicJPerFlit %v != component sum %v", got, want)
	}
	if hyb.StaticW <= base.StaticW {
		t.Fatalf("static %v not above baseline %v", hyb.StaticW, base.StaticW)
	}
	if hyb.AreaM2 >= base.AreaM2 {
		t.Fatalf("area %v not below baseline %v", hyb.AreaM2, base.AreaM2)
	}
	lb, err := Link(DefaultConfig(), tech.HyPPI, 4*units.Millimetre)
	if err != nil {
		t.Fatal(err)
	}
	lh, err := Link(variantConfig(VariantHybrid5x5), tech.HyPPI, 4*units.Millimetre)
	if err != nil {
		t.Fatal(err)
	}
	if lh.LaserW <= lb.LaserW {
		t.Fatalf("laser %v not above baseline %v (router insertion loss unpriced)", lh.LaserW, lb.LaserW)
	}
	v, _ := LookupVariant(VariantHybrid5x5)
	if v.FlitErrorProb <= 0 {
		t.Fatalf("hybrid5x5 FlitErrorProb = %v, want > 0", v.FlitErrorProb)
	}
}
