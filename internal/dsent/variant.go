package dsent

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// Variant names for Config.Variant.
const (
	// VariantBaseline is the paper's Table I/II device set (the zero
	// value, so existing configurations are untouched).
	VariantBaseline = ""
	// VariantMODetector swaps the link end-point devices for the
	// MODetector dual-function modulator-detector (arXiv:1712.01364).
	VariantMODetector = "modetector"
	// VariantHybrid5x5 swaps the electronic crossbar traversal for the
	// non-blocking 5×5 hybrid photonic-plasmonic router (arXiv:1708.07159).
	VariantHybrid5x5 = "hybrid5x5"
)

// DeviceVariant is one entry of the device-variant registry: a set of
// multiplicative corrections to the baseline cost model, derived from the
// tech package's device snapshots, plus the nominal optical flit error
// probability the fault layer starts its BER model from. The baseline
// entry is the exact identity (every scale 1.0, error probability 0), so a
// Config with Variant == "" evaluates bit-identically to the pre-variant
// model.
type DeviceVariant struct {
	// Name is the Config.Variant spelling; Description is for reports.
	Name, Description string

	// Link-side scales, applied inside the optical link model.
	ModulatorJScale     float64 // E-O drive energy per flit
	ReceiverJScale      float64 // O-E receiver energy per flit
	LaserWScale         float64 // laser power from the loss/sensitivity budget
	TuningWScale        float64 // microring thermal-trimming power
	LinkDeviceAreaScale float64 // TX/RX device area (waveguide track excluded)

	// Router-side scales, applied inside the electronic router model.
	RouterStaticScale float64 // static (leakage + bias) power
	RouterXbarScale   float64 // crossbar traversal + allocation energy
	RouterAreaScale   float64 // router footprint

	// FlitErrorProb is the nominal probability one flit traversal of an
	// optical link is corrupted at zero thermal drift. The baseline model
	// treats links as error-free; variants trade energy or area for a
	// finite error floor, which the fault layer turns into retransmission
	// traffic (noc.FaultProfile).
	FlitErrorProb float64
}

func baselineVariant() DeviceVariant {
	return DeviceVariant{
		Name:                VariantBaseline,
		Description:         "Table I/II baseline devices",
		ModulatorJScale:     1,
		ReceiverJScale:      1,
		LaserWScale:         1,
		TuningWScale:        1,
		LinkDeviceAreaScale: 1,
		RouterStaticScale:   1,
		RouterXbarScale:     1,
		RouterAreaScale:     1,
		FlitErrorProb:       0,
	}
}

// dbToLinear converts a decibel power ratio to linear.
func dbToLinear(db float64) float64 { return math.Pow(10, db/10) }

// modetectorVariant derives the MODetector entry from the tech snapshot:
// one dual-function device per link end replaces the separate modulator
// and photodetector. Modulation gets cheaper (lower gating capacitance)
// and the end-point footprint shrinks, but the weak absorption read-out
// and extra insertion loss force the laser up, and the reduced detection
// margin leaves a finite error floor.
func modetectorVariant() DeviceVariant {
	mod := tech.MODetectorTable()
	hy := tech.HyPPITableI()
	v := baselineVariant()
	v.Name = VariantMODetector
	v.Description = "MODetector dual-function modulator-detector end-points (arXiv:1712.01364)"
	// Drive-energy ratio of the device snapshots.
	v.ModulatorJScale = mod.ModulationEnergyFJPerBit / hy.Modulator.EnergyFJPerBit
	// The dedicated photodetector front-end disappears; the TIA +
	// limiting amp behind the read-out remains (modeled estimate).
	v.ReceiverJScale = 0.5
	// The laser must cover the responsivity deficit and the extra device
	// insertion loss relative to the baseline modulator.
	v.LaserWScale = (hy.Detector.ResponsivityAPerW / mod.DetectionResponsivityAPerW) *
		dbToLinear(mod.InsertionLossDB-hy.Modulator.InsertionLossDB)
	// Non-resonant: no ring to trim even on photonic links.
	v.TuningWScale = 0
	// One device per end instead of a modulator + detector pair.
	v.LinkDeviceAreaScale = 0.6
	v.FlitErrorProb = mod.FlitErrorProb
	return v
}

// hybrid5x5Variant derives the 5×5 hybrid-router entry from the tech
// snapshot: through-traffic crosses an optical fabric instead of the full
// electronic crossbar, shrinking traversal energy and footprint, while the
// switching elements add bias power, the router's insertion loss joins
// every link's laser budget, and residual crosstalk sets an error floor.
func hybrid5x5Variant() DeviceVariant {
	r := tech.HybridRouter5x5Table()
	v := baselineVariant()
	v.Name = VariantHybrid5x5
	v.Description = "5x5 hybrid photonic-plasmonic router fabric (arXiv:1708.07159)"
	v.RouterXbarScale = r.SwitchFractionOfXbar
	// Plasmonic switch bias + thermal control on top of the electronic
	// control plane (modeled estimate).
	v.RouterStaticScale = 1.05
	// The optical fabric is denser than the 64-bit electronic crossbar it
	// displaces (modeled estimate).
	v.RouterAreaScale = 0.9
	// The router sits in the optical path of every link it terminates.
	v.LaserWScale = dbToLinear(r.InsertionLossDB)
	v.FlitErrorProb = r.FlitErrorProb
	return v
}

// Variants lists the registry in a fixed order (baseline first).
func Variants() []DeviceVariant {
	return []DeviceVariant{baselineVariant(), modetectorVariant(), hybrid5x5Variant()}
}

// LookupVariant resolves a Config.Variant name. The empty string is the
// baseline; unknown names are an error (Config.Validate relies on this).
func LookupVariant(name string) (DeviceVariant, error) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return DeviceVariant{}, fmt.Errorf("dsent: unknown device variant %q (have baseline, %s, %s)",
		name, VariantMODetector, VariantHybrid5x5)
}

// variantOf is LookupVariant for internal cost evaluation: unknown names
// fall back to the baseline so evaluation stays total — Config.Validate is
// the gate that rejects them.
func variantOf(name string) DeviceVariant {
	v, err := LookupVariant(name)
	if err != nil {
		return baselineVariant()
	}
	return v
}
