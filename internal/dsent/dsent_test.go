package dsent

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tech"
	"repro/internal/units"
)

func TestDefaultConfigIsTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.FlitBits != 64 || cfg.VCs != 4 || cfg.BufDepthFlits != 8 {
		t.Errorf("router geometry %+v not Table II", cfg)
	}
	if cfg.ClockHz != 0.78125e9 {
		t.Errorf("clock %v not 0.78125 GHz", cfg.ClockHz)
	}
	if cfg.LinkCapacityBps != 50e9 {
		t.Errorf("link capacity %v not 50 Gb/s", cfg.LinkCapacityBps)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Table II config must validate: %v", err)
	}
}

func TestConfigValidateRateMatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClockHz = 1e9 // 64 Gb/s != 50 Gb/s
	if err := cfg.Validate(); err == nil {
		t.Error("rate-mismatched config must be rejected")
	}
	cfg = DefaultConfig()
	cfg.VCs = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero VCs must be rejected")
	}
}

// TestBaseMeshCalibration pins the two anchor numbers the whole system-level
// study hangs off: a 16×16 electronic mesh (256 five-port routers, 480
// bidirectional = 960 unidirectional 1 mm links) must evaluate to ≈ 1.53 W
// static power and ≈ 22.1 mm² area (paper Table IV and Fig. 8).
func TestBaseMeshCalibration(t *testing.T) {
	cfg := DefaultConfig()
	r := ElectronicRouter(cfg, 5)
	l := MustLink(cfg, tech.Electronic, 1*units.Millimetre)
	static := 256*r.StaticW + 960*l.StaticW
	area := 256*r.AreaM2 + 960*l.AreaM2
	if !units.WithinFactor(static, 1.53, 1.02) {
		t.Errorf("base mesh static = %v W, want 1.53 W ±2%%", static)
	}
	if !units.WithinFactor(area, 22.1*units.MillimetreSq, 1.02) {
		t.Errorf("base mesh area = %v mm², want 22.1 ±2%%", area/units.MillimetreSq)
	}
}

// TestTableIVPerLinkStatics pins the per-express-link static powers implied
// by Table IV: photonic ≈ 9.66 mW/link (dominated by ring trimming), HyPPI
// ≈ 94 µW/link, electronic ≈ 10 µW/mm — and, critically, that optical link
// static power is essentially independent of link length on-chip.
func TestTableIVPerLinkStatics(t *testing.T) {
	cfg := DefaultConfig()
	for _, mm := range []float64{3, 5, 15} {
		p := MustLink(cfg, tech.Photonic, mm*units.Millimetre)
		if !units.WithinFactor(p.StaticW, 9.66e-3, 1.06) {
			t.Errorf("photonic %v mm static = %v W, want ≈9.66 mW", mm, p.StaticW)
		}
		h := MustLink(cfg, tech.HyPPI, mm*units.Millimetre)
		if !units.WithinFactor(h.StaticW, 94e-6, 1.30) {
			t.Errorf("HyPPI %v mm static = %v W, want ≈94 µW", mm, h.StaticW)
		}
		e := MustLink(cfg, tech.Electronic, mm*units.Millimetre)
		if !units.ApproxEqual(e.StaticW, mm*10e-6, 1e-6) {
			t.Errorf("electronic %v mm static = %v W, want %v", mm, e.StaticW, mm*10e-6)
		}
	}
	// Length independence of the optical statics (1 dB/cm is negligible
	// over mm scales).
	h3 := MustLink(cfg, tech.HyPPI, 3*units.Millimetre)
	h15 := MustLink(cfg, tech.HyPPI, 15*units.Millimetre)
	if !units.WithinFactor(h15.StaticW, h3.StaticW, 1.30) {
		t.Errorf("HyPPI static should be ~length independent: %v vs %v", h3.StaticW, h15.StaticW)
	}
}

// TestTableVDynamicShapes pins the Table V energy shapes: electronic link
// energy grows linearly with length, optical per-flit energy is length
// independent, photonic ≫ electronic ≳ HyPPI at the 3 mm express length.
func TestTableVDynamicShapes(t *testing.T) {
	cfg := DefaultConfig()
	e3 := MustLink(cfg, tech.Electronic, 3*units.Millimetre)
	e15 := MustLink(cfg, tech.Electronic, 15*units.Millimetre)
	if ratio := e15.DynamicJPerFlit / e3.DynamicJPerFlit; !units.WithinFactor(ratio, 5, 1.05) {
		t.Errorf("electronic flit energy 15mm/3mm = %v, want ≈5 (linear in length)", ratio)
	}
	h3 := MustLink(cfg, tech.HyPPI, 3*units.Millimetre)
	h15 := MustLink(cfg, tech.HyPPI, 15*units.Millimetre)
	if !units.WithinFactor(h15.DynamicJPerFlit, h3.DynamicJPerFlit, 1.10) {
		t.Errorf("HyPPI flit energy should be ~length independent: %v vs %v",
			h3.DynamicJPerFlit, h15.DynamicJPerFlit)
	}
	// HyPPI express traversal costs about the same as a 3 mm electronic
	// traversal (Table V: 0.0049 J vs 0.0054 J totals).
	if !units.WithinFactor(h3.DynamicJPerFlit, e3.DynamicJPerFlit, 1.35) {
		t.Errorf("HyPPI flit energy %v should be comparable to 3 mm electronic %v",
			h3.DynamicJPerFlit, e3.DynamicJPerFlit)
	}
	// Photonic dominates by more than an order of magnitude (Table V:
	// 0.935 J vs 0.005 J).
	p3 := MustLink(cfg, tech.Photonic, 3*units.Millimetre)
	if p3.DynamicJPerFlit < 10*h3.DynamicJPerFlit {
		t.Errorf("photonic flit energy %v should dwarf HyPPI %v", p3.DynamicJPerFlit, h3.DynamicJPerFlit)
	}
	if p3.DynamicJPerFlit < 10*e3.DynamicJPerFlit {
		t.Errorf("photonic flit energy %v should dwarf electronic %v", p3.DynamicJPerFlit, e3.DynamicJPerFlit)
	}
}

func TestRouterScalesWithPorts(t *testing.T) {
	cfg := DefaultConfig()
	r5 := ElectronicRouter(cfg, 5)
	r7 := ElectronicRouter(cfg, 7)
	if r7.AreaM2 <= r5.AreaM2 || r7.StaticW <= r5.StaticW {
		t.Error("7-port router must cost more than 5-port")
	}
	// Crossbar grows quadratically: expect roughly 2x area for 7 ports.
	if ratio := r7.AreaM2 / r5.AreaM2; ratio < 1.3 || ratio > 2.5 {
		t.Errorf("7/5 port area ratio = %v, want 1.3..2.5", ratio)
	}
	// But static power barely moves (clock-tree dominated, Table IV).
	if ratio := r7.StaticW / r5.StaticW; ratio > 1.10 {
		t.Errorf("7/5 port static ratio = %v, want ≤1.10", ratio)
	}
}

func TestRouterDynamicIndependentOfPorts(t *testing.T) {
	cfg := DefaultConfig()
	if ElectronicRouter(cfg, 5).DynamicJPerFlit != ElectronicRouter(cfg, 7).DynamicJPerFlit {
		t.Error("per-flit router energy is buffer+crossbar traversal; should not change with idle ports")
	}
}

func TestPhotonicNeedsTwoWavelengths(t *testing.T) {
	cfg := DefaultConfig()
	p := MustLink(cfg, tech.Photonic, 1*units.Millimetre)
	if p.Wavelengths != 2 {
		t.Errorf("photonic 50 Gb/s link needs 2 λ at 25 Gb/s modulators, got %d", p.Wavelengths)
	}
	h := MustLink(cfg, tech.HyPPI, 1*units.Millimetre)
	if h.Wavelengths != 1 {
		t.Errorf("HyPPI is single wavelength, got %d", h.Wavelengths)
	}
	if p.TuningW <= 0 {
		t.Error("photonic links must pay ring trimming power")
	}
	if h.TuningW != 0 {
		t.Error("HyPPI MOS modulators are not resonant; no trimming power")
	}
}

func TestSERDESCapsCapacity(t *testing.T) {
	cfg := DefaultConfig()
	h := MustLink(cfg, tech.HyPPI, 1*units.Millimetre)
	if h.CapacityBps != 50e9 {
		t.Errorf("HyPPI system capacity = %v, want 50 Gb/s (SERDES cap, not the 2.1 Tb/s device)", h.CapacityBps)
	}
}

func TestLinkLatencies(t *testing.T) {
	cfg := DefaultConfig()
	if MustLink(cfg, tech.Electronic, units.Millimetre).LatencyClks != 1 {
		t.Error("electronic link is 1 clk")
	}
	for _, tc := range []tech.Technology{tech.Photonic, tech.HyPPI} {
		if MustLink(cfg, tc, units.Millimetre).LatencyClks != 2 {
			t.Errorf("%v link is 2 clks", tc)
		}
	}
}

func TestLinkAreaOrdering(t *testing.T) {
	cfg := DefaultConfig()
	e := MustLink(cfg, tech.Electronic, units.Millimetre)
	h := MustLink(cfg, tech.HyPPI, units.Millimetre)
	p := MustLink(cfg, tech.Photonic, units.Millimetre)
	if h.AreaM2 >= e.AreaM2 {
		t.Errorf("1 mm HyPPI link %v must be smaller than electronic %v", h.AreaM2, e.AreaM2)
	}
	if p.AreaM2 <= h.AreaM2 {
		t.Errorf("1 mm photonic link %v must be larger than HyPPI %v (rings + laser)", p.AreaM2, h.AreaM2)
	}
}

func TestLinkErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Link(cfg, tech.Electronic, 0); err == nil {
		t.Error("zero length must fail")
	}
	if _, err := Link(cfg, tech.Technology(42), units.Millimetre); err == nil {
		t.Error("unknown tech must fail")
	}
	bad := cfg
	bad.FlitBits = 0
	if _, err := Link(bad, tech.Electronic, units.Millimetre); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestElectronicRouterPanicsOnBadPorts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0 ports")
		}
	}()
	ElectronicRouter(DefaultConfig(), 0)
}

// TestLinkCostMonotoneProperty: for every technology, static power, dynamic
// energy and area are non-decreasing in link length.
func TestLinkCostMonotoneProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(rawA, rawB float64) bool {
		a := 0.1 + math.Mod(math.Abs(rawA), 19.9) // 0.1..20 mm
		b := 0.1 + math.Mod(math.Abs(rawB), 19.9)
		if a > b {
			a, b = b, a
		}
		for _, tc := range []tech.Technology{tech.Electronic, tech.Photonic, tech.HyPPI} {
			la := MustLink(cfg, tc, a*units.Millimetre)
			lb := MustLink(cfg, tc, b*units.Millimetre)
			if lb.StaticW < la.StaticW || lb.DynamicJPerFlit < la.DynamicJPerFlit || lb.AreaM2 < la.AreaM2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPlasmonicSystemLinkIsHopeless: over a 1 mm NoC hop the plasmonic
// waveguide eats 44 dB, so its laser power must be orders of magnitude above
// HyPPI's — the paper drops plasmonics from network-level exploration.
func TestPlasmonicSystemLinkIsHopeless(t *testing.T) {
	cfg := DefaultConfig()
	s := MustLink(cfg, tech.Plasmonic, units.Millimetre)
	h := MustLink(cfg, tech.HyPPI, units.Millimetre)
	if s.LaserW < 1000*h.LaserW {
		t.Errorf("plasmonic 1 mm laser %v W should be ≥1000× HyPPI %v W", s.LaserW, h.LaserW)
	}
}

// TestComponentBreakdownSums: the per-component splits introduced for
// activity-based accounting must reconstruct the headline figures exactly —
// the energy package multiplies components by measured counts and any gap
// here would silently skew every measured fJ/bit.
func TestComponentBreakdownSums(t *testing.T) {
	cfg := DefaultConfig()
	for _, tc := range tech.Technologies {
		for _, mm := range []float64{0.5, 1, 3, 15} {
			lc := MustLink(cfg, tc, mm*units.Millimetre)
			sum := lc.WireJPerFlit + lc.ModulatorJPerFlit + lc.SerdesJPerFlit +
				lc.ReceiverJPerFlit + lc.AmortJPerFlit
			if !units.ApproxEqual(sum, lc.DynamicJPerFlit, 1e-12) {
				t.Errorf("%v %gmm: component sum %v != DynamicJPerFlit %v", tc, mm, sum, lc.DynamicJPerFlit)
			}
			if !units.ApproxEqual(lc.ActivityJPerFlit()+lc.AmortJPerFlit, lc.DynamicJPerFlit, 1e-12) {
				t.Errorf("%v %gmm: ActivityJPerFlit+Amort %v != DynamicJPerFlit %v",
					tc, mm, lc.ActivityJPerFlit()+lc.AmortJPerFlit, lc.DynamicJPerFlit)
			}
			if tc == tech.Electronic {
				if lc.ModulatorJPerFlit != 0 || lc.SerdesJPerFlit != 0 || lc.ReceiverJPerFlit != 0 {
					t.Errorf("electronic link has optical components: %+v", lc)
				}
			} else if lc.WireJPerFlit != 0 || lc.ModulatorJPerFlit <= 0 || lc.ReceiverJPerFlit <= 0 {
				t.Errorf("%v link component split wrong: %+v", tc, lc)
			}
		}
	}
	for _, ports := range []int{5, 7} {
		rc := ElectronicRouter(cfg, ports)
		sum := rc.BufWriteJPerFlit + rc.BufReadJPerFlit + rc.XbarJPerFlit
		if !units.ApproxEqual(sum, rc.DynamicJPerFlit, 1e-12) {
			t.Errorf("router %d ports: component sum %v != DynamicJPerFlit %v", ports, sum, rc.DynamicJPerFlit)
		}
	}
}
