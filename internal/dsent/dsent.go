// Package dsent is this repository's stand-in for the "modified DSENT" tool
// the paper uses for system-level energy and area estimation at the 11 nm
// node (DSENT: Sun et al., NOCS 2012, extended by the authors with the
// HyPPI device parameters of Table I).
//
// Like the original, it produces exactly the scalar outputs the NoC study
// consumes, for each component:
//
//   - electronic router: area, static power, dynamic energy per flit
//   - electronic link:   area, static power, dynamic energy per flit
//   - optical link (photonic / plasmonic / HyPPI): the same three, with
//     the laser sized from the link's optical loss budget, microring
//     thermal-trimming power for photonics, and the driver + SERDES
//     electronics that cap the usable data rate at 50 Gb/s
//
// The internal constants are calibrated (see calibration notes on each) so
// that the paper's anchor numbers emerge from the model rather than being
// hardcoded: a 16×16 electronic base mesh evaluates to ≈ 1.53 W static and
// ≈ 22.1 mm², a photonic express link costs ≈ 9.7 mW static, a HyPPI express
// link ≈ 94 µW (Table IV).
package dsent

import (
	"fmt"
	"math"

	"repro/internal/link"
	"repro/internal/tech"
	"repro/internal/units"
)

// Config carries the Table II network parameters that size every component.
type Config struct {
	// FlitBits is the flit width (Table II: 64).
	FlitBits int
	// VCs is the number of virtual channels per port (Table II: 4).
	VCs int
	// BufDepthFlits is the buffer depth per VC (Table II: 8).
	BufDepthFlits int
	// ClockHz is the router/core clock (Table II: 0.78125 GHz, chosen so
	// a 64-bit flit per cycle matches the 50 Gb/s links).
	ClockHz float64
	// LinkCapacityBps is the per-link capacity (Table II: 50 Gb/s).
	LinkCapacityBps float64
	// Variant selects an alternative device model from the registry in
	// variant.go; the zero value is the baseline Table I/II device set and
	// evaluates bit-identically to a pre-variant Config. The field is a
	// plain string so Config stays comparable (the simulator pools key on
	// it).
	Variant string
}

// DefaultConfig returns the Table II parameters.
func DefaultConfig() Config {
	return Config{
		FlitBits:        64,
		VCs:             4,
		BufDepthFlits:   8,
		ClockHz:         0.78125e9,
		LinkCapacityBps: 50e9,
	}
}

// Validate checks a configuration for physical consistency, including the
// paper's rate-matching constraint: flit width × clock must equal the link
// capacity so electronic and optical links run at equal rates without extra
// buffering.
func (c Config) Validate() error {
	if c.FlitBits <= 0 || c.VCs <= 0 || c.BufDepthFlits <= 0 {
		return fmt.Errorf("dsent: non-positive router geometry %+v", c)
	}
	if c.ClockHz <= 0 || c.LinkCapacityBps <= 0 {
		return fmt.Errorf("dsent: non-positive rates %+v", c)
	}
	if got := float64(c.FlitBits) * c.ClockHz; !units.ApproxEqual(got, c.LinkCapacityBps, 1e-9) {
		return fmt.Errorf("dsent: flit width %d × clock %v Hz = %v b/s does not match link capacity %v b/s",
			c.FlitBits, c.ClockHz, got, c.LinkCapacityBps)
	}
	if _, err := LookupVariant(c.Variant); err != nil {
		return err
	}
	return nil
}

// MaxSERDESRateGbps is the data rate the 11 nm driver/SERDES electronics
// support: the paper found 50 Gb/s with DSENT, which caps every optical link
// regardless of the bare modulator speed (2.1 Tb/s for HyPPI).
const MaxSERDESRateGbps = 50

// Electronic router model constants (11 nm).
//
// Calibration: a 5-port Table II router must come out near 6 mW static and
// 0.048 mm² so a 16×16 base electronic mesh totals the paper's 1.53 W and
// 22.1 mm² (routers dominate static power; clock tree dominates leakage at
// 11 nm FinFET, which is also why adding two express ports barely moves
// static power — Table IV's electronic rows grow by only a few mW).
const (
	// routerClockStaticW is the fixed clock-tree + control leakage.
	routerClockStaticW = 5.45e-3
	// bufBitLeakW is SRAM leakage per buffer bit.
	bufBitLeakW = 20e-9
	// portStaticW is the per-port output-driver leakage.
	portStaticW = 60e-6
	// bufBitAreaM2 is SRAM buffer area per bit including overhead.
	bufBitAreaM2 = 0.55 * units.MicrometreSq
	// xbarBitPortSqAreaM2 is crossbar area per flit bit per port².
	xbarBitPortSqAreaM2 = 2 * units.MicrometreSq
	// ctrlAreaM2 is allocators + routing logic area.
	ctrlAreaM2 = 500 * units.MicrometreSq
	// bufAccessJPerBit is the SRAM energy per bit per access (a flit is
	// written once and read once).
	bufAccessJPerBit = 20 * units.Femto
	// xbarArbJPerFlit is crossbar traversal + allocation energy per flit.
	xbarArbJPerFlit = 1.3 * units.Pico
)

// Electronic link model constants (11 nm, 160 nm wire pitch per the paper).
const (
	// wirePitchM is width + spacing of one wire.
	wirePitchM = 0.32 * units.Micrometre
	// wireJPerBitPerMM is the low-swing repeated-wire switching energy.
	wireJPerBitPerMM = 25 * units.Femto
	// wireStaticWPerMM is repeater leakage per link per mm (the whole
	// 64-bit bundle, not per wire): electronic link static power is tiny
	// at 11 nm, which is what makes Table IV's electronic express rows
	// nearly flat.
	wireStaticWPerMM = 10e-6
	// wireLayerShare charges each unidirectional channel its full wire
	// bundle footprint: the paper's area argument hinges on a 64-bit
	// electronic channel being ≈20 µm wide vs ≈5 µm per HyPPI waveguide,
	// so link tracks dominate electronic NoC area (routers at 11 nm are
	// comparatively tiny).
	wireLayerShare = 1.0
)

// Optical link electronics constants (shared by all optical technologies).
const (
	// serdesStaticW is serializer/deserializer + clocking leakage per
	// link end-pair.
	serdesStaticW = 27e-6
	// serdesJPerBit is SERDES switching energy per bit.
	serdesJPerBit = 40 * units.Femto
	// rxJPerBit is photodetector TIA + limiting amp energy per bit.
	rxJPerBit = 20 * units.Femto
	// driverFactor multiplies the modulator CV² energy for the driver
	// chain overhead.
	driverFactor = 2.0
	// serdesAreaM2 is the SERDES footprint per link.
	serdesAreaM2 = 500 * units.MicrometreSq
	// amortUtilization is the reference link utilization DSENT assumes
	// when folding always-on optical power (laser, ring trimming) into a
	// per-flit dynamic energy figure. The paper's experiments run at a
	// 0.1 maximum injection rate, which is DSENT's default load point.
	amortUtilization = 0.1
)

// Photonic ring constants.
const (
	// ringTrimW is thermal trimming power per microring; rings need
	// continuous heating to stay on-resonance (the paper highlights this
	// as a key photonic overhead).
	ringTrimW = 2.4e-3
	// ringWithSpacingAreaM2 is the effective floorplan area of one ring:
	// a 5 µm device plus the 15 µm thermal-crosstalk keep-out the paper
	// cites, i.e. a 20 µm × 20 µm tile.
	ringWithSpacingAreaM2 = 400 * units.MicrometreSq
)

// hyppiTrackWidthM is the per-direction floorplan width of a HyPPI
// waveguide; the paper states each HyPPI waveguide needs "less than 5 µm
// width (including the pitch)" at the NoC level (isolation trenches widen
// the raw 1 µm pitch of Table I).
const hyppiTrackWidthM = 5 * units.Micrometre

// RouterCost is the modified-DSENT output for one electronic router.
type RouterCost struct {
	Ports           int
	AreaM2          float64
	StaticW         float64
	DynamicJPerFlit float64
	// Component split of DynamicJPerFlit, for activity-based accounting
	// (energy package): one buffer write, one buffer read, one crossbar
	// traversal per flit. The three sum to DynamicJPerFlit.
	BufWriteJPerFlit, BufReadJPerFlit, XbarJPerFlit float64
}

// ElectronicRouter evaluates a Table II input-queued VC router with the
// given port count (5 for the base mesh, 7 for hybrid routers with a pair of
// express ports).
func ElectronicRouter(cfg Config, ports int) RouterCost {
	if ports <= 0 {
		panic(fmt.Sprintf("dsent: non-positive port count %d", ports))
	}
	v := variantOf(cfg.Variant)
	bufBits := float64(ports * cfg.VCs * cfg.BufDepthFlits * cfg.FlitBits)
	area := (bufBits*bufBitAreaM2 +
		float64(cfg.FlitBits)*float64(ports*ports)*xbarBitPortSqAreaM2 +
		ctrlAreaM2) * v.RouterAreaScale
	static := (routerClockStaticW + bufBits*bufBitLeakW + float64(ports)*portStaticW) *
		v.RouterStaticScale
	// A flit is written to and read from an input buffer, then crosses
	// the crossbar (the variant's switching fabric may discount the
	// latter; the scale is port-independent, which the energy package's
	// activity accounting relies on).
	bufJ := float64(cfg.FlitBits) * bufAccessJPerBit
	xbarJ := xbarArbJPerFlit * v.RouterXbarScale
	return RouterCost{
		Ports:            ports,
		AreaM2:           area,
		StaticW:          static,
		DynamicJPerFlit:  2*bufJ + xbarJ,
		BufWriteJPerFlit: bufJ,
		BufReadJPerFlit:  bufJ,
		XbarJPerFlit:     xbarJ,
	}
}

// LinkCost is the modified-DSENT output for one unidirectional link.
type LinkCost struct {
	Tech    tech.Technology
	LengthM float64
	// Wavelengths is the WDM channel count (1 for electronic/plasmonic/
	// HyPPI, 2 for photonics at 25 Gb/s per λ).
	Wavelengths int
	// CapacityBps is the usable link rate after the SERDES cap.
	CapacityBps float64
	// LatencyClks is the per-traversal latency in router clocks
	// (Table II: 1 electronic, 2 optical).
	LatencyClks int
	AreaM2      float64
	StaticW     float64
	// DynamicJPerFlit is the energy charged per flit traversal. For
	// optical links this includes the always-on laser/trimming power
	// amortized at the reference utilization, mirroring how DSENT
	// reports per-bit energy at a load point. It is always the sum
	// WireJPerFlit + ModulatorJPerFlit + SerdesJPerFlit +
	// ReceiverJPerFlit + AmortJPerFlit.
	DynamicJPerFlit float64
	// Component split of DynamicJPerFlit, for activity-based accounting
	// (energy package): WireJPerFlit is the repeated-wire switching
	// energy (electronic links only), ModulatorJPerFlit the E-O drive
	// including the driver chain, SerdesJPerFlit the serializer
	// switching, ReceiverJPerFlit the O-E TIA + limiting amp, and
	// AmortJPerFlit the always-on power folded in at the reference
	// utilization — the part a measured-activity accounting replaces
	// with static power integrated over real simulated time.
	WireJPerFlit, ModulatorJPerFlit, SerdesJPerFlit, ReceiverJPerFlit, AmortJPerFlit float64
	// LaserW and TuningW break out the optical static contributions.
	LaserW, TuningW float64
}

// ActivityJPerFlit is the switching-only energy of one flit traversal:
// DynamicJPerFlit without the amortized always-on share. This is the
// coefficient to multiply by *measured* flit counts when static power is
// accounted separately over simulated time (see the energy package),
// avoiding the double-count the amortized figure would introduce.
func (lc LinkCost) ActivityJPerFlit() float64 {
	return lc.WireJPerFlit + lc.ModulatorJPerFlit + lc.SerdesJPerFlit + lc.ReceiverJPerFlit
}

// Link evaluates one unidirectional link of the given technology and length
// under the Table II configuration.
func Link(cfg Config, t tech.Technology, lengthM float64) (LinkCost, error) {
	return LinkWDM(cfg, t, lengthM, 0)
}

// LinkWDM is Link with an explicit WDM wavelength count for optical links
// (0 = the minimum needed to reach the link capacity — the paper's choice,
// since extra rings add trimming power and waveguide loss for no capacity
// the SERDES can use). It exposes the paper's wavelength-count discussion
// as an ablation knob.
func LinkWDM(cfg Config, t tech.Technology, lengthM float64, wavelengths int) (LinkCost, error) {
	if err := cfg.Validate(); err != nil {
		return LinkCost{}, err
	}
	if lengthM <= 0 {
		return LinkCost{}, fmt.Errorf("dsent: non-positive link length %v", lengthM)
	}
	if wavelengths < 0 {
		return LinkCost{}, fmt.Errorf("dsent: negative wavelength count %d", wavelengths)
	}
	switch t {
	case tech.Electronic:
		if wavelengths > 0 {
			return LinkCost{}, fmt.Errorf("dsent: electronic links have no wavelengths")
		}
		return electronicLink(cfg, lengthM), nil
	case tech.Photonic, tech.Plasmonic, tech.HyPPI:
		return opticalLink(cfg, t, lengthM, wavelengths)
	}
	return LinkCost{}, fmt.Errorf("dsent: unknown technology %v", t)
}

func electronicLink(cfg Config, lengthM float64) LinkCost {
	mm := lengthM / units.Millimetre
	flitJ := float64(cfg.FlitBits) * wireJPerBitPerMM * mm
	static := wireStaticWPerMM * mm
	area := float64(cfg.FlitBits) * wirePitchM * lengthM * wireLayerShare
	// Amortize the (tiny) repeater leakage the same way optical
	// always-on power is amortized, for a consistent per-flit figure.
	amort := static / (cfg.LinkCapacityBps * amortUtilization) * float64(cfg.FlitBits)
	return LinkCost{
		Tech:            tech.Electronic,
		LengthM:         lengthM,
		Wavelengths:     0,
		CapacityBps:     cfg.LinkCapacityBps,
		LatencyClks:     tech.LinkLatencyClks(tech.Electronic),
		AreaM2:          area,
		StaticW:         static,
		DynamicJPerFlit: flitJ + amort,
		WireJPerFlit:    flitJ,
		AmortJPerFlit:   amort,
	}
}

func opticalLink(cfg Config, t tech.Technology, lengthM float64, wavelengths int) (LinkCost, error) {
	p, err := tech.Optical(t)
	if err != nil {
		return LinkCost{}, err
	}
	if err := p.Validate(); err != nil {
		return LinkCost{}, err
	}
	perLambdaBps := math.Min(p.Modulator.SystemSpeedGbps, MaxSERDESRateGbps) * units.Giga
	capacity := math.Min(cfg.LinkCapacityBps, MaxSERDESRateGbps*units.Giga)
	lambdas := wavelengths
	if lambdas == 0 {
		lambdas = int(math.Ceil(capacity / perLambdaBps))
	}
	if lambdas < 1 {
		lambdas = 1
	}
	if float64(lambdas)*perLambdaBps < capacity {
		return LinkCost{}, fmt.Errorf("dsent: %d λ × %v b/s cannot carry %v b/s",
			lambdas, perLambdaBps, capacity)
	}

	// Laser power per wavelength from the loss budget, as in the bare
	// link model but at the per-λ system rate.
	lm, err := link.NewModel(t)
	if err != nil {
		return LinkCost{}, err
	}
	om := lm.(interface {
		LaserPowerW(lengthM, rateBps float64) float64
	})
	v := variantOf(cfg.Variant)
	laserW := float64(lambdas) * om.LaserPowerW(lengthM, perLambdaBps) * v.LaserWScale

	// Thermal trimming: photonic links keep one modulator ring and one
	// drop-filter ring on resonance per wavelength. Plasmonic/HyPPI MOS
	// modulators are not resonant and need no trimming.
	tuningW := 0.0
	ringsPerLink := 0
	if t == tech.Photonic {
		ringsPerLink = 2 * lambdas
		tuningW = float64(ringsPerLink) * ringTrimW * v.TuningWScale
	}

	static := laserW + tuningW + serdesStaticW

	// Per-flit dynamic energy: modulator drive (CV² × driver chain),
	// SERDES and receiver electronics, plus the always-on power
	// amortized at the reference utilization.
	swing := p.Modulator.BiasVoltageMaxV - p.Modulator.BiasVoltageMinV
	if swing <= 0 {
		swing = p.Modulator.BiasVoltageMaxV
	}
	modJPerBit := driverFactor * p.Modulator.CapacitanceFF * units.Femto * swing * swing
	bitsPerFlit := float64(cfg.FlitBits)
	modJ := modJPerBit * bitsPerFlit * v.ModulatorJScale
	serdesJ := serdesJPerBit * bitsPerFlit
	rxJ := rxJPerBit * bitsPerFlit * v.ReceiverJScale
	amortJ := static / (capacity * amortUtilization) * bitsPerFlit
	dynamic := modJ + serdesJ + rxJ + amortJ

	// Area: TX/RX devices (+ ring keep-out for photonics), laser, SERDES
	// and the waveguide track.
	deviceArea := serdesAreaM2 + p.Laser.AreaUM2*units.MicrometreSq*float64(lambdas)
	trackWidth := p.Waveguide.PitchUM * units.Micrometre
	switch t {
	case tech.Photonic:
		deviceArea += float64(ringsPerLink) * ringWithSpacingAreaM2
	case tech.HyPPI:
		deviceArea += (p.Modulator.AreaUM2 + p.Detector.AreaUM2) * units.MicrometreSq
		trackWidth = hyppiTrackWidthM
	default:
		deviceArea += (p.Modulator.AreaUM2 + p.Detector.AreaUM2) * units.MicrometreSq
	}
	area := deviceArea*v.LinkDeviceAreaScale + trackWidth*lengthM

	return LinkCost{
		Tech:              t,
		LengthM:           lengthM,
		Wavelengths:       lambdas,
		CapacityBps:       capacity,
		LatencyClks:       tech.LinkLatencyClks(t),
		AreaM2:            area,
		StaticW:           static,
		DynamicJPerFlit:   dynamic,
		ModulatorJPerFlit: modJ,
		SerdesJPerFlit:    serdesJ,
		ReceiverJPerFlit:  rxJ,
		AmortJPerFlit:     amortJ,
		LaserW:            laserW,
		TuningW:           tuningW,
	}, nil
}

// MustLink is Link that panics on error, for statically valid inputs.
func MustLink(cfg Config, t tech.Technology, lengthM float64) LinkCost {
	lc, err := Link(cfg, t, lengthM)
	if err != nil {
		panic(err)
	}
	return lc
}
