package dsent

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/units"
)

// TestWDMAblation reproduces the paper's wavelength-count argument: adding
// rings beyond the minimum buys no usable capacity (the SERDES caps the
// rate) but adds thermal trimming power and area — which is why the paper
// stops photonics at 2 λ.
func TestWDMAblation(t *testing.T) {
	cfg := DefaultConfig()
	base, err := LinkWDM(cfg, tech.Photonic, units.Millimetre, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.Wavelengths != 2 {
		t.Fatalf("auto wavelength count = %d, want 2", base.Wavelengths)
	}
	prev := base
	for _, l := range []int{3, 4, 8} {
		lc, err := LinkWDM(cfg, tech.Photonic, units.Millimetre, l)
		if err != nil {
			t.Fatalf("λ=%d: %v", l, err)
		}
		if lc.CapacityBps != base.CapacityBps {
			t.Errorf("λ=%d: capacity %v changed despite SERDES cap", l, lc.CapacityBps)
		}
		if lc.StaticW <= prev.StaticW {
			t.Errorf("λ=%d: static %v should grow with ring count (prev %v)", l, lc.StaticW, prev.StaticW)
		}
		if lc.TuningW <= prev.TuningW {
			t.Errorf("λ=%d: trimming %v should grow with ring count", l, lc.TuningW)
		}
		if lc.AreaM2 <= prev.AreaM2 {
			t.Errorf("λ=%d: area %v should grow with ring count", l, lc.AreaM2)
		}
		prev = lc
	}
}

// TestWDMUndersizedRejected: too few wavelengths for the capacity is an
// error, not a silent downgrade.
func TestWDMUndersizedRejected(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := LinkWDM(cfg, tech.Photonic, units.Millimetre, 1); err == nil {
		t.Error("1 λ × 25 Gb/s cannot carry 50 Gb/s; must fail")
	}
	if _, err := LinkWDM(cfg, tech.Photonic, units.Millimetre, -1); err == nil {
		t.Error("negative λ must fail")
	}
	if _, err := LinkWDM(cfg, tech.Electronic, units.Millimetre, 2); err == nil {
		t.Error("wavelengths on electronic link must fail")
	}
}

// TestWDMHyPPISingleLambdaSufficient: HyPPI's 50 Gb/s modulator needs no
// WDM, one of its headline simplicity advantages.
func TestWDMHyPPISingleLambdaSufficient(t *testing.T) {
	cfg := DefaultConfig()
	lc, err := LinkWDM(cfg, tech.HyPPI, units.Millimetre, 1)
	if err != nil {
		t.Fatalf("HyPPI 1 λ should suffice: %v", err)
	}
	if lc.CapacityBps != 50e9 {
		t.Errorf("capacity %v", lc.CapacityBps)
	}
}
