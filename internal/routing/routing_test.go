package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/tech"
	"repro/internal/topology"
)

func buildNet(t testing.TB, hops int, expressTech tech.Technology) *topology.Network {
	t.Helper()
	c := topology.DefaultConfig()
	c.ExpressHops = hops
	c.ExpressTech = expressTech
	n, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func allPolicies() []Policy { return []Policy{MonotoneExpress, ShortestHops} }

// TestAllPairsReachable: every (src, dst) pair must have a terminating route
// under every policy and topology.
func TestAllPairsReachable(t *testing.T) {
	for _, hops := range []int{0, 3, 5, 15} {
		net := buildNet(t, hops, tech.HyPPI)
		for _, pol := range allPolicies() {
			tab := MustBuild(net, pol)
			for s := 0; s < net.NumNodes(); s++ {
				for d := 0; d < net.NumNodes(); d++ {
					src, dst := topology.NodeID(s), topology.NodeID(d)
					path := tab.Path(src, dst)
					if s == d && len(path) != 0 {
						t.Fatalf("hops=%d %v: self path not empty", hops, pol)
					}
					if s != d && len(path) == 0 {
						t.Fatalf("hops=%d %v: %d->%d unreachable", hops, pol, s, d)
					}
					// Path must be connected and end at dst.
					at := src
					for _, lid := range path {
						l := net.Links[lid]
						if l.Src != at {
							t.Fatalf("hops=%d %v: discontinuous path %d->%d", hops, pol, s, d)
						}
						at = l.Dst
					}
					if at != dst {
						t.Fatalf("hops=%d %v: path %d->%d ends at %d", hops, pol, s, d, at)
					}
				}
			}
		}
	}
}

// TestPlainMeshIsXY: on the plain mesh both policies reduce to X-then-Y
// dimension-ordered routing with exactly Manhattan-distance hops.
func TestPlainMeshIsXY(t *testing.T) {
	net := buildNet(t, 0, tech.Electronic)
	for _, pol := range allPolicies() {
		tab := MustBuild(net, pol)
		src, dst := net.Node(2, 3), net.Node(7, 9)
		path := tab.Path(src, dst)
		if len(path) != net.MeshDistance(src, dst) {
			t.Fatalf("%v: hops %d, want %d", pol, len(path), net.MeshDistance(src, dst))
		}
		// X moves must all come before Y moves.
		seenY := false
		for _, lid := range path {
			l := net.Links[lid]
			if l.DY(net) != 0 {
				seenY = true
			} else if seenY {
				t.Fatalf("%v: X move after Y move (not dimension ordered)", pol)
			}
		}
	}
}

// TestShortestHopsIsMinimal: BFS hop counts can never exceed the monotone
// policy's, and on the plain mesh both equal Manhattan distance.
func TestShortestHopsIsMinimal(t *testing.T) {
	net := buildNet(t, 3, tech.HyPPI)
	mono := MustBuild(net, MonotoneExpress)
	bfs := MustBuild(net, ShortestHops)
	for s := 0; s < net.NumNodes(); s++ {
		for d := 0; d < net.NumNodes(); d++ {
			src, dst := topology.NodeID(s), topology.NodeID(d)
			if bfs.HopCount(src, dst) > mono.HopCount(src, dst) {
				t.Fatalf("BFS longer than monotone for %d->%d: %d > %d",
					s, d, bfs.HopCount(src, dst), mono.HopCount(src, dst))
			}
		}
	}
}

// TestExpressShortensLongRoutes: a row-end to row-end route must use express
// channels and beat the 15-hop local path.
func TestExpressShortensLongRoutes(t *testing.T) {
	net := buildNet(t, 5, tech.HyPPI)
	for _, pol := range allPolicies() {
		tab := MustBuild(net, pol)
		src, dst := net.Node(0, 4), net.Node(15, 4)
		path := tab.Path(src, dst)
		if len(path) != 3 {
			t.Errorf("%v: 0->15 via h=5 express should be 3 hops, got %d", pol, len(path))
		}
		express := 0
		for _, lid := range path {
			if net.Links[lid].Express {
				express++
			}
		}
		if express != 3 {
			t.Errorf("%v: want 3 express hops, got %d", pol, express)
		}
	}
}

// TestMonotoneNeverBacktracks: under MonotoneExpress the X phase sticks to
// one ring direction with strictly decreasing ring distance (wrap channels
// count as stride-1 ring moves), and the Y phase is strictly monotone —
// together with dateline VC classes this is the deadlock-freedom invariant.
func TestMonotoneNeverBacktracks(t *testing.T) {
	for _, hops := range []int{3, 5, 15} {
		net := buildNet(t, hops, tech.HyPPI)
		tab := MustBuild(net, MonotoneExpress)
		w := net.Width
		ringDist := func(from, to, dir int) int {
			if dir > 0 {
				return ((to-from)%w + w) % w
			}
			return ((from-to)%w + w) % w
		}
		for s := 0; s < net.NumNodes(); s++ {
			for d := 0; d < net.NumNodes(); d++ {
				if s == d {
					continue
				}
				src, dst := topology.NodeID(s), topology.NodeID(d)
				at := src
				xDir := 0 // ring direction chosen by the first X move
				for _, lid := range tab.Path(src, dst) {
					l := net.Links[lid]
					if dy := l.DY(net); dy != 0 {
						wantY := net.Y(dst) - net.Y(at)
						if dy*wantY <= 0 {
							t.Fatalf("hops=%d: backtrack in Y on %d->%d at %d", hops, s, d, at)
						}
						at = l.Dst
						continue
					}
					fx, tx := net.X(at), net.X(l.Dst)
					if xDir == 0 {
						// Infer the direction of the first move: the one
						// in which this move reduces distance to dstX.
						if ringDist(tx, net.X(dst), +1) < ringDist(fx, net.X(dst), +1) {
							xDir = +1
						} else {
							xDir = -1
						}
					}
					before := ringDist(fx, net.X(dst), xDir)
					after := ringDist(tx, net.X(dst), xDir)
					if after >= before {
						t.Fatalf("hops=%d: X move not monotone in chosen ring direction on %d->%d at %d (dir %d: %d -> %d)",
							hops, s, d, at, xDir, before, after)
					}
					at = l.Dst
				}
			}
		}
	}
}

// TestMonotoneIsXThenY: the monotone policy finishes all X movement before
// any Y movement.
func TestMonotoneIsXThenY(t *testing.T) {
	net := buildNet(t, 3, tech.HyPPI)
	tab := MustBuild(net, MonotoneExpress)
	f := func(rawS, rawD uint16) bool {
		s := topology.NodeID(int(rawS) % net.NumNodes())
		d := topology.NodeID(int(rawD) % net.NumNodes())
		seenY := false
		for _, lid := range tab.Path(s, d) {
			l := net.Links[lid]
			if l.DY(net) != 0 {
				seenY = true
			} else if seenY {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestBFSUsesBackdoorExpress: from column 1 to the far end with h=5 the
// minimal path detours through the express on-ramp at column 0 — this is
// the shortest-path behaviour that distinguishes BFS from monotone routing.
func TestBFSUsesBackdoorExpress(t *testing.T) {
	net := buildNet(t, 5, tech.HyPPI)
	bfs := MustBuild(net, ShortestHops)
	mono := MustBuild(net, MonotoneExpress)
	src, dst := net.Node(1, 8), net.Node(15, 8)
	// BFS: 1->0 (1) + 0->5->10->15 express (3) = 4 hops.
	if got := bfs.HopCount(src, dst); got != 4 {
		t.Errorf("BFS hops = %d, want 4 (backtrack to express ramp)", got)
	}
	// Monotone: 1..5 local (4) + 5->10->15 express (2) = 6 hops.
	if got := mono.HopCount(src, dst); got != 6 {
		t.Errorf("monotone hops = %d, want 6", got)
	}
}

// TestLatencyClks checks the zero-load latency model: router pipeline per
// hop plus channel latency, plus the ejection router.
func TestLatencyClks(t *testing.T) {
	net := buildNet(t, 3, tech.HyPPI)
	tab := MustBuild(net, MonotoneExpress)
	const pipe = 3
	// Neighbour route, one electronic hop: 3 + 1 + 3 = 7.
	if got := tab.LatencyClks(net.Node(0, 0), net.Node(1, 0), pipe); got != 7 {
		t.Errorf("1-hop latency = %d, want 7", got)
	}
	// One express hop 0->3 (optical, 2 clks): 3 + 2 + 3 = 8.
	if got := tab.LatencyClks(net.Node(0, 0), net.Node(3, 0), pipe); got != 8 {
		t.Errorf("express-hop latency = %d, want 8", got)
	}
	// Self route: just the local router.
	if got := tab.LatencyClks(net.Node(5, 5), net.Node(5, 5), pipe); got != pipe {
		t.Errorf("self latency = %d, want %d", got, pipe)
	}
}

// TestOpticalExpressLatencyTradeoff: with h=3 HyPPI express, a 3-column move
// is 1 optical hop (3+2) vs 3 electronic hops (3×(3+1)); the optical route
// must win, matching the paper's premise that express links pay off despite
// the O-E conversion cycle.
func TestOpticalExpressLatencyTradeoff(t *testing.T) {
	net := buildNet(t, 3, tech.HyPPI)
	plain := buildNet(t, 0, tech.Electronic)
	tabE := MustBuild(net, MonotoneExpress)
	tabP := MustBuild(plain, MonotoneExpress)
	const pipe = 3
	src, dst := net.Node(0, 0), net.Node(12, 0)
	withExpress := tabE.LatencyClks(src, dst, pipe)
	without := tabP.LatencyClks(src, dst, pipe)
	// 4 express hops: 4*(3+2)+3 = 23; 12 local hops: 12*(3+1)+3 = 51.
	if withExpress != 23 || without != 51 {
		t.Errorf("latencies %d / %d, want 23 / 51", withExpress, without)
	}
}

func TestDeterminism(t *testing.T) {
	net := buildNet(t, 3, tech.Photonic)
	a := MustBuild(net, ShortestHops)
	b := MustBuild(net, ShortestHops)
	for s := 0; s < net.NumNodes(); s++ {
		for d := 0; d < net.NumNodes(); d++ {
			if a.NextLink(topology.NodeID(s), topology.NodeID(d)) != b.NextLink(topology.NodeID(s), topology.NodeID(d)) {
				t.Fatalf("nondeterministic table at %d->%d", s, d)
			}
		}
	}
}

func TestBuildRejectsUnknownPolicy(t *testing.T) {
	net := buildNet(t, 0, tech.Electronic)
	if _, err := Build(net, Policy(9)); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestPolicyString(t *testing.T) {
	if MonotoneExpress.String() != "MonotoneExpress" || ShortestHops.String() != "ShortestHops" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

// TestHopCountSymmetryProperty: both policies route symmetric topologies
// with symmetric hop counts (path reversal exists since every channel has a
// reverse twin).
func TestHopCountSymmetryProperty(t *testing.T) {
	net := buildNet(t, 5, tech.HyPPI)
	for _, pol := range allPolicies() {
		tab := MustBuild(net, pol)
		f := func(rawS, rawD uint16) bool {
			s := topology.NodeID(int(rawS) % net.NumNodes())
			d := topology.NodeID(int(rawD) % net.NumNodes())
			return tab.HopCount(s, d) == tab.HopCount(d, s)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

// TestExpressNeverLengthensRoutes: adding express channels can only shorten
// or preserve hop counts relative to the plain mesh, for both policies.
func TestExpressNeverLengthensRoutes(t *testing.T) {
	plain := buildNet(t, 0, tech.Electronic)
	hopsList := []int{3, 5, 15}
	if testing.Short() {
		hopsList = []int{3}
	}
	for _, hops := range hopsList {
		express := buildNet(t, hops, tech.HyPPI)
		for _, pol := range allPolicies() {
			pt := MustBuild(plain, pol)
			et := MustBuild(express, pol)
			for s := 0; s < plain.NumNodes(); s++ {
				for d := 0; d < plain.NumNodes(); d++ {
					src, dst := topology.NodeID(s), topology.NodeID(d)
					if et.HopCount(src, dst) > pt.HopCount(src, dst) {
						t.Fatalf("hops=%d %v: express lengthened %d->%d: %d > %d",
							hops, pol, s, d, et.HopCount(src, dst), pt.HopCount(src, dst))
					}
				}
			}
		}
	}
}

// TestMonotoneHopsBoundedByManhattanProperty: on non-wrap topologies the
// monotone policy never exceeds the Manhattan distance (express strides
// only replace local runs).
func TestMonotoneHopsBoundedByManhattanProperty(t *testing.T) {
	net := buildNet(t, 3, tech.HyPPI)
	tab := MustBuild(net, MonotoneExpress)
	f := func(rawS, rawD uint16) bool {
		s := topology.NodeID(int(rawS) % net.NumNodes())
		d := topology.NodeID(int(rawD) % net.NumNodes())
		return tab.HopCount(s, d) <= net.MeshDistance(s, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
