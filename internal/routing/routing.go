// Package routing builds oblivious routing tables for the paper's networks.
//
// Two policies are provided:
//
//   - MonotoneExpress (default): X-then-Y dimension-ordered routing where
//     the X phase greedily takes an express channel whenever it is aligned
//     with the travel direction and does not overshoot the destination
//     column. Movement is monotone in each dimension, so the channel
//     dependency graph is acyclic and the policy is deadlock-free — this is
//     what the cycle-accurate simulator uses, mirroring the paper's hybrid
//     router that "always uses electronics for basic routing" with express
//     channels taken opportunistically.
//
//   - ShortestHops: per-destination BFS producing minimal hop counts like
//     BookSim 2.0's anynet shortest-path tables (the simulator the paper
//     matches its analytical routing against). Minimal paths may briefly
//     travel away from the destination to reach an express on-ramp; ties
//     prefer X movement (dimension order), then motion toward the
//     destination, then lower link latency, then lower link ID, making the
//     tables fully deterministic.
//
// Both are oblivious: the route depends only on (current node, destination).
//
// Topology kinds: the monotone construction applies to every kind whose
// dimension phases are lines or dateline-annotated rings — mesh, cmesh
// (identical link shape) and torus (wrap channels are datelines, so the
// usual VC-class switch on wrap keeps the rings deadlock-free, exactly as
// in the paper's hops = W−1 configuration). Kinds outside that shape
// (fbfly, whose rows and columns are all-to-all) report Monotone = false
// in their topology.KindSpec and fall back to the generic shortest-path
// construction under either policy; see each KindSpec.Deadlock for the
// per-kind deadlock-freedom annotation.
package routing

import (
	"errors"
	"fmt"

	"repro/internal/topology"
)

// ErrUnreachable is wrapped by every routing error caused by a
// disconnected fabric: Build on a network with unreachable (src,dst)
// pairs, NextLinkErr/HopErr on a missing route. Callers that tolerate
// degraded fabrics (the fault layer) test for it with errors.Is and use
// BuildDegraded; everyone else treats it as fatal instead of receiving a
// silently invalid table or a panic.
var ErrUnreachable = errors.New("routing: destination unreachable")

// Policy selects the table construction algorithm.
type Policy int

const (
	// MonotoneExpress is deadlock-free dimension-ordered express routing.
	MonotoneExpress Policy = iota
	// ShortestHops is BookSim-anynet-style minimal-hop BFS routing.
	ShortestHops
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case MonotoneExpress:
		return "MonotoneExpress"
	case ShortestHops:
		return "ShortestHops"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// noLink marks "at destination" entries.
const noLink = topology.LinkID(-1)

// Table answers, for every (node, destination) pair, the out-channel to
// take. Two backends hide behind the same interface:
//
//   - algorithmic (monotone kinds under MonotoneExpress): next hops are
//     computed on demand from O(n) per-node role lists by closed-form
//     per-dimension ring formulas — no per-pair state at all, which is
//     what lets 64×64+ geometries route in O(n) memory;
//   - table (ShortestHops, and fbfly-style kinds without monotone
//     phases): the generic dense [node][dst] next-hop matrix.
type Table struct {
	net    *topology.Network
	policy Policy
	next   [][]topology.LinkID // table backend [node][dst]; nil when alg is set
	alg    *mono               // algorithmic backend; nil when next is set
	// unreachable counts ordered (src,dst) pairs, src != dst, with no
	// route — always zero for tables from Build (which rejects them) and
	// for the algorithmic backend (monotone kinds are connected by
	// construction); nonzero only for BuildDegraded tables.
	unreachable int
	// firstUnreachable records one disconnected pair for diagnostics.
	firstUnreachable [2]topology.NodeID
}

// allocNext allocates the dense table backend, all entries noLink.
func (t *Table) allocNext() {
	nn := t.net.NumNodes()
	t.next = make([][]topology.LinkID, nn)
	backing := make([]topology.LinkID, nn*nn)
	for i := range t.next {
		t.next[i], backing = backing[:nn], backing[nn:]
		for j := range t.next[i] {
			t.next[i][j] = noLink
		}
	}
}

// Build constructs a routing table for the network under the given policy.
// A fabric with disconnected (src,dst) pairs — a masked network can be one
// — yields a nil table and an error wrapping ErrUnreachable naming a
// disconnected pair; use BuildDegraded to route the connected subset.
func Build(net *topology.Network, policy Policy) (*Table, error) {
	t, err := build(net, policy)
	if err != nil {
		return nil, err
	}
	if t.unreachable > 0 {
		return nil, fmt.Errorf("%w: %d -> %d (and %d more of %d pairs)",
			ErrUnreachable, t.firstUnreachable[0], t.firstUnreachable[1],
			t.unreachable-1, t.orderedPairs())
	}
	return t, nil
}

// BuildDegraded constructs a best-effort table on a possibly disconnected
// fabric: connected pairs route normally, disconnected ones answer noLink
// from NextLink and a wrapped ErrUnreachable from NextLinkErr/HopErr.
// Availability reports the connected fraction. Masked networks always take
// the generic BFS builder (their wiring no longer matches the kind's
// closed monotone forms).
func BuildDegraded(net *topology.Network, policy Policy) (*Table, error) {
	return build(net, policy)
}

func build(net *topology.Network, policy Policy) (*Table, error) {
	t := &Table{net: net, policy: policy}
	switch policy {
	case MonotoneExpress:
		if net.KindSpec().Monotone && !net.IsMasked() {
			t.alg = newMono(net)
		} else {
			// Generic fallback for kinds without dimension-ordered
			// monotone phases (see the package comment) and for masked
			// degraded views of any kind.
			t.allocNext()
			t.buildShortest()
		}
	case ShortestHops:
		t.allocNext()
		t.buildShortest()
	default:
		return nil, fmt.Errorf("routing: unknown policy %v", policy)
	}
	return t, nil
}

// orderedPairs returns the number of ordered (src,dst) pairs, src != dst.
func (t *Table) orderedPairs() int {
	nn := t.net.NumNodes()
	return nn * (nn - 1)
}

// Unreachable returns the number of ordered (src,dst) pairs with no route.
func (t *Table) Unreachable() int { return t.unreachable }

// Availability returns the fraction of ordered (src,dst) pairs, src != dst,
// that are still connected — 1 for any table out of Build, possibly lower
// for BuildDegraded tables on masked fabrics. This is the per-run
// availability metric of the fault layer.
func (t *Table) Availability() float64 {
	if t.unreachable == 0 {
		return 1
	}
	return 1 - float64(t.unreachable)/float64(t.orderedPairs())
}

// Reachable reports whether a route from src to dst exists (true when
// src == dst).
func (t *Table) Reachable(src, dst topology.NodeID) bool {
	return src == dst || t.NextLink(src, dst) != noLink
}

// MustBuild is Build that panics on error.
func MustBuild(net *topology.Network, policy Policy) *Table {
	t, err := Build(net, policy)
	if err != nil {
		panic(err)
	}
	return t
}

// Net returns the network this table routes.
func (t *Table) Net() *topology.Network { return t.net }

// Policy returns the construction policy.
func (t *Table) Policy() Policy { return t.policy }

// dirLink is an X channel usable in one ring direction with a given stride.
type dirLink struct {
	stride int
	id     topology.LinkID
}

// dirRoles holds the per-node direction role lists of a monotone kind:
// every channel, keyed by the ring direction it can serve and the stride
// it covers. Role lists are sorted by descending stride (ties: lower link
// ID, i.e. base before express), so a greedy largest-first scan picks the
// dimension-ordered express route. Total size is O(n) — each link
// contributes at most two roles.
type dirRoles struct {
	east, west   [][]dirLink // positive / negative X
	south, north [][]dirLink // positive / negative Y (grid rows grow southward)
}

// buildRoles classifies every channel of a monotone-kind network into
// direction roles. Row/column-closure channels (datelines) serve both ring
// directions: their wrap role covers the complementary stride.
func buildRoles(net *topology.Network) *dirRoles {
	nn := net.NumNodes()
	r := &dirRoles{
		east:  make([][]dirLink, nn),
		west:  make([][]dirLink, nn),
		south: make([][]dirLink, nn),
		north: make([][]dirLink, nn),
	}
	addRole := func(m [][]dirLink, at topology.NodeID, stride int, id topology.LinkID) {
		// Keep role lists sorted by descending stride; on ties the
		// lower link ID (base before express) wins.
		ls := m[at]
		pos := len(ls)
		for i, d := range ls {
			if stride > d.stride {
				pos = i
				break
			}
		}
		ls = append(ls, dirLink{})
		copy(ls[pos+1:], ls[pos:])
		ls[pos] = dirLink{stride: stride, id: id}
		m[at] = ls
	}
	for _, l := range net.Links {
		if dx := l.DX(net); dx != 0 {
			if dx > 0 {
				addRole(r.east, l.Src, dx, l.ID)
				if l.Dateline {
					addRole(r.west, l.Src, net.Width-dx, l.ID)
				}
			} else {
				addRole(r.west, l.Src, -dx, l.ID)
				if l.Dateline {
					addRole(r.east, l.Src, net.Width+dx, l.ID)
				}
			}
			continue
		}
		if dy := l.DY(net); dy != 0 {
			if dy > 0 {
				addRole(r.south, l.Src, dy, l.ID)
				if l.Dateline {
					addRole(r.north, l.Src, net.Height-dy, l.ID)
				}
			} else {
				addRole(r.north, l.Src, -dy, l.ID)
				if l.Dateline {
					addRole(r.south, l.Src, net.Height+dy, l.ID)
				}
			}
		}
	}
	return r
}

// buildMonotoneTable materializes the monotone dimension-ordered policy
// into a dense next-hop table by literally walking the role lists for
// every pair. The algorithmic backend (mono) replaces it in production;
// it is kept as the ground truth the differential-equivalence tests and
// fuzz corpus compare mono against, so the closed forms can never drift
// from the constructive definition.
func buildMonotoneTable(net *topology.Network) *Table {
	t := &Table{net: net, policy: MonotoneExpress}
	t.allocNext()
	t.buildMonotone()
	return t
}

// buildMonotone constructs the dimension-ordered table. Each dimension's
// phase routes on its row/column treated as a line (plain and short-hop
// configurations) or a ring (row/column-closure express channels double as
// wraparounds): both ring directions are walked greedily (largest aligned,
// non-overshooting stride first) and the shorter feasible one wins, ties
// avoiding the dateline, then going in the positive direction. Movement
// never mixes ring directions within a phase, so with dateline VC switching
// on wrap channels the policy is deadlock-free. X completes before Y.
func (t *Table) buildMonotone() {
	net := t.net
	nn := net.NumNodes()
	roles := buildRoles(net)
	east, west, south, north := roles.east, roles.west, roles.south, roles.north

	// walk greedily follows one direction's role links from at; returns
	// hop count, the first link, and whether the path crosses a dateline
	// (wrap), or hops = -1 if the direction is infeasible (line topology,
	// path would cross the end).
	maxHops := net.Width + net.Height
	walk := func(at topology.NodeID, roles [][]dirLink, remaining int) (int, topology.LinkID, bool) {
		first := noLink
		hops := 0
		wraps := false
		for remaining > 0 {
			var chosen topology.LinkID = noLink
			stride := 0
			for _, d := range roles[at] {
				if d.stride <= remaining {
					chosen = d.id
					stride = d.stride
					break
				}
			}
			if chosen == noLink {
				return -1, noLink, false
			}
			if first == noLink {
				first = chosen
			}
			if net.Links[chosen].Dateline {
				wraps = true
			}
			at = net.Links[chosen].Dst
			remaining -= stride
			hops++
			if hops > maxHops {
				return -1, noLink, false // defensive: cannot happen
			}
		}
		return hops, first, wraps
	}

	// pick chooses between the two ring directions of one dimension.
	pick := func(at topology.NodeID, pos, neg [][]dirLink, remPos, remNeg int) topology.LinkID {
		ph, pl, pw := walk(at, pos, remPos)
		nh, nl, nw := walk(at, neg, remNeg)
		switch {
		case ph < 0 && nh < 0:
			return noLink // cannot happen on built topologies
		case nh < 0:
			return pl
		case ph < 0:
			return nl
		case ph < nh, ph == nh && (!pw || nw):
			return pl
		default:
			return nl
		}
	}

	for at := 0; at < nn; at++ {
		atN := topology.NodeID(at)
		ax, ay := net.X(atN), net.Y(atN)
		for dst := 0; dst < nn; dst++ {
			if at == dst {
				continue
			}
			dstN := topology.NodeID(dst)
			dx, dy := net.X(dstN), net.Y(dstN)
			switch {
			case ax != dx:
				remE := ((dx-ax)%net.Width + net.Width) % net.Width
				t.next[at][dst] = pick(atN, east, west, remE, net.Width-remE)
			case ay != dy:
				remS := ((dy-ay)%net.Height + net.Height) % net.Height
				t.next[at][dst] = pick(atN, south, north, remS, net.Height-remS)
			}
		}
	}
}

func (t *Table) buildShortest() {
	net := t.net
	nn := net.NumNodes()
	// Per destination: reverse BFS for hop distances, then pick the
	// tie-broken minimal successor at every node.
	dist := make([]int, nn)
	queue := make([]topology.NodeID, 0, nn)
	for d := 0; d < nn; d++ {
		dstN := topology.NodeID(d)
		for i := range dist {
			dist[i] = -1
		}
		dist[d] = 0
		queue = queue[:0]
		queue = append(queue, dstN)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, lid := range net.InLinks(v) {
				u := net.Links[lid].Src
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for at := 0; at < nn; at++ {
			if at == d {
				continue
			}
			if dist[at] < 0 {
				// No path from at to d on this (possibly masked) fabric.
				if t.unreachable == 0 {
					t.firstUnreachable = [2]topology.NodeID{topology.NodeID(at), dstN}
				}
				t.unreachable++
				continue
			}
			t.next[at][d] = t.shortestNext(topology.NodeID(at), dstN, dist)
		}
	}
}

// rank orders candidate next-hops for the ShortestHops tie-break.
type rank struct {
	isY, away, latency, id int
}

func (a rank) less(b rank) bool {
	if a.isY != b.isY {
		return a.isY < b.isY
	}
	if a.away != b.away {
		return a.away < b.away
	}
	if a.latency != b.latency {
		return a.latency < b.latency
	}
	return a.id < b.id
}

// shortestNext picks among the minimal-distance successors of at using the
// deterministic tie-break chain: X movement first, then movement toward the
// destination in that dimension, then lower link latency, then lower ID.
func (t *Table) shortestNext(at, dst topology.NodeID, dist []int) topology.LinkID {
	net := t.net
	best := noLink
	var bestRank rank
	for _, lid := range net.OutLinks(at) {
		l := net.Links[lid]
		if dist[l.Dst] != dist[at]-1 {
			continue
		}
		r := rank{latency: l.LatencyClks, id: int(lid)}
		if l.DX(net) == 0 {
			r.isY = 1
			want := net.Y(dst) - net.Y(at)
			if want*l.DY(net) < 0 {
				r.away = 1
			}
		} else {
			want := net.X(dst) - net.X(at)
			if want*l.DX(net) < 0 {
				r.away = 1
			}
		}
		if best == noLink || r.less(bestRank) {
			best = lid
			bestRank = r
		}
	}
	return best
}

// NextLink returns the out-channel to take at `at` heading for `dst`, or
// -1 when at == dst — and, on a degraded table, when dst is unreachable
// from at (NextLinkErr distinguishes the two).
func (t *Table) NextLink(at, dst topology.NodeID) topology.LinkID {
	if t.alg != nil {
		return t.alg.nextLink(at, dst)
	}
	return t.next[at][dst]
}

// NextLinkErr is NextLink with the missing-route case surfaced as a named
// error: a route answers (link, nil), at == dst answers (-1, nil), and an
// unreachable destination answers (-1, err) with errors.Is(err,
// ErrUnreachable) true and both endpoints in the message.
func (t *Table) NextLinkErr(at, dst topology.NodeID) (topology.LinkID, error) {
	lid := t.NextLink(at, dst)
	if lid == noLink && at != dst {
		return noLink, fmt.Errorf("%w: no route %d -> %d", ErrUnreachable, at, dst)
	}
	return lid, nil
}

// Hop is the single guarded step shared by every route walker (Path,
// HopCount, LatencyClks, and the analytic evaluator): it resolves the link
// leaving `at` toward `dst`, rejecting a missing route and enforcing the
// cyclic-table bound. hops is the number of steps already taken; callers
// increment it after each Hop. A nil return means the walk failed —
// HopErr reconstructs the diagnostic. The nil sentinel (rather than an
// error return) keeps Hop inlinable: the walkers loop over it in the
// design-space sweep's hottest path, allocation-free.
func (t *Table) Hop(at, dst topology.NodeID, hops int) *topology.Link {
	lid := t.NextLink(at, dst)
	if lid == noLink || hops >= t.net.NumNodes() {
		return nil
	}
	return &t.net.Links[lid]
}

// HopErr reports why Hop(at, dst, hops) returned nil. A missing route
// wraps ErrUnreachable.
func (t *Table) HopErr(at, dst topology.NodeID, hops int) error {
	if t.NextLink(at, dst) == noLink {
		return fmt.Errorf("%w: no route %d -> %d", ErrUnreachable, at, dst)
	}
	if hops >= t.net.NumNodes() {
		return fmt.Errorf("routing: path to %d exceeds node count; table is cyclic", dst)
	}
	return nil
}

// mustHop is Hop for the walkers that keep the historical panic behavior.
func (t *Table) mustHop(src, at, dst topology.NodeID, hops int) *topology.Link {
	l := t.Hop(at, dst, hops)
	if l == nil {
		panic(fmt.Sprintf("%v (walking %d -> %d)", t.HopErr(at, dst, hops), src, dst))
	}
	return l
}

// Path returns the channel sequence from src to dst (empty for src == dst).
func (t *Table) Path(src, dst topology.NodeID) []topology.LinkID {
	if src == dst {
		return nil
	}
	var path []topology.LinkID
	for at := src; at != dst; {
		l := t.mustHop(src, at, dst, len(path))
		path = append(path, l.ID)
		at = l.Dst
	}
	return path
}

// HopCount returns the number of channels on the route. Unlike Path it
// walks the table without materializing the route, so it is allocation-free.
func (t *Table) HopCount(src, dst topology.NodeID) int {
	hops := 0
	for at := src; at != dst; {
		at = t.mustHop(src, at, dst, hops).Dst
		hops++
	}
	return hops
}

// LatencyClks returns the zero-load head latency of the route: one router
// pipeline traversal plus the channel latency per hop, plus the final
// router traversal at the destination for ejection. Like HopCount it is
// allocation-free.
func (t *Table) LatencyClks(src, dst topology.NodeID, routerPipelineClks int) int {
	total := routerPipelineClks
	hops := 0
	for at := src; at != dst; {
		l := t.mustHop(src, at, dst, hops)
		total += routerPipelineClks + l.LatencyClks
		at = l.Dst
		hops++
	}
	return total
}
