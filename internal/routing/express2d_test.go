package routing

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/topology"
)

func buildNet2D(t testing.TB, hops int) *topology.Network {
	t.Helper()
	c := topology.DefaultConfig()
	c.ExpressHops = hops
	c.ExpressTech = tech.HyPPI
	c.ExpressBothDims = true
	n, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestExpress2DAllPairsReachable: both policies route every pair on the
// two-dimensional express topologies, including the double torus.
func TestExpress2DAllPairsReachable(t *testing.T) {
	for _, hops := range []int{3, 5, 15} {
		net := buildNet2D(t, hops)
		for _, pol := range allPolicies() {
			tab := MustBuild(net, pol)
			for s := 0; s < net.NumNodes(); s++ {
				for d := 0; d < net.NumNodes(); d++ {
					src, dst := topology.NodeID(s), topology.NodeID(d)
					path := tab.Path(src, dst)
					at := src
					for _, lid := range path {
						if net.Links[lid].Src != at {
							t.Fatalf("hops=%d %v: discontinuous %d->%d", hops, pol, s, d)
						}
						at = net.Links[lid].Dst
					}
					if at != dst {
						t.Fatalf("hops=%d %v: %d->%d ends at %d", hops, pol, s, d, at)
					}
				}
			}
		}
	}
}

// TestExpress2DVerticalExpressUsed: column routes take vertical express
// channels under the monotone policy.
func TestExpress2DVerticalExpressUsed(t *testing.T) {
	net := buildNet2D(t, 3)
	tab := MustBuild(net, MonotoneExpress)
	path := tab.Path(net.Node(2, 0), net.Node(2, 12))
	if len(path) != 4 {
		t.Fatalf("column express route hops = %d, want 4", len(path))
	}
	for _, lid := range path {
		l := net.Links[lid]
		if !l.Express || l.DY(net) != 3 {
			t.Fatalf("expected vertical express strides, got link %+v", l)
		}
	}
}

// TestExpress2DXBeforeY: dimension order survives the 2-D extension.
func TestExpress2DXBeforeY(t *testing.T) {
	net := buildNet2D(t, 5)
	tab := MustBuild(net, MonotoneExpress)
	for _, pair := range [][2]topology.NodeID{
		{net.Node(1, 2), net.Node(14, 13)},
		{net.Node(15, 15), net.Node(0, 0)},
		{net.Node(7, 3), net.Node(2, 11)},
	} {
		seenY := false
		for _, lid := range tab.Path(pair[0], pair[1]) {
			l := net.Links[lid]
			if l.DY(net) != 0 {
				seenY = true
			} else if seenY {
				t.Fatalf("X move after Y on %d->%d", pair[0], pair[1])
			}
		}
	}
}

// TestExpress2DDoubleTorusWraps: on the hops=15 double torus, the
// corner-to-corner route is two wrap hops.
func TestExpress2DDoubleTorusWraps(t *testing.T) {
	net := buildNet2D(t, 15)
	tab := MustBuild(net, MonotoneExpress)
	path := tab.Path(net.Node(0, 0), net.Node(15, 15))
	if len(path) != 2 {
		t.Fatalf("double-wrap route hops = %d, want 2", len(path))
	}
	for _, lid := range path {
		if !net.Links[lid].Dateline {
			t.Fatalf("expected wrap channels, got %+v", net.Links[lid])
		}
	}
}
