package routing

import (
	"fmt"
	"testing"

	"repro/internal/tech"
	"repro/internal/topology"
)

// Cross-topology conformance suite: one table-driven harness asserting,
// for every registered topology kind under every routing policy, the
// contract the rest of the stack (analytic evaluator, cycle-accurate
// simulator) relies on:
//
//   - full reachability: every (src, dst) pair routes to its destination;
//   - termination: every walk finishes within NumNodes hops and never
//     revisits a node;
//   - minimality on plain fabrics: the routed hop count equals the kind's
//     Distance formula (monotone routing is per-dimension minimal on
//     lines and rings; fbfly falls back to the shortest-path table), which
//     cross-validates Distance against a BFS of the wired graph;
//   - hop-count symmetry where the kind guarantees it (every plain kind:
//     the fabrics are vertex-transitive in each dimension and the tables
//     deterministic; express hybrids carry no such guarantee).
//
// Exact golden hop-count matrices for the 4×4 torus/cmesh/fbfly are pinned
// separately in TestConformanceGoldenHopMatrices.

// conformanceCase is one (kind, config) cell of the suite.
type conformanceCase struct {
	name string
	cfg  topology.Config
	// plain marks express-free base fabrics: hop counts must equal the
	// kind's Distance and be symmetric.
	plain bool
}

// conformanceCases builds the suite: every registered kind at a small and
// an asymmetric grid, plus mesh-family express hybrids.
func conformanceCases(t *testing.T) []conformanceCase {
	t.Helper()
	base := func(kind topology.Kind, w, h int) topology.Config {
		c := topology.DefaultConfig()
		c.Kind = kind
		c.Width, c.Height = w, h
		return c
	}
	var cases []conformanceCase
	for _, kind := range topology.Kinds() {
		small, wide := base(kind, 4, 4), base(kind, 5, 3)
		if kind == topology.FBFly {
			wide = base(kind, 5, 2) // exercise an extent the torus floor forbids
		}
		cases = append(cases,
			conformanceCase{fmt.Sprintf("%s-4x4", kind), small, true},
			conformanceCase{fmt.Sprintf("%s-wide", kind), wide, true},
		)
	}
	// Mesh-family express hybrids: minimality and symmetry are not
	// guaranteed (the monotone policy trades hops for deadlock freedom),
	// but reachability and termination still are.
	express := base(topology.Mesh, 8, 8)
	express.ExpressTech = tech.HyPPI
	express.ExpressHops = 3
	cases = append(cases, conformanceCase{"mesh-express3", express, false})
	ring := base(topology.Mesh, 8, 8)
	ring.ExpressTech = tech.HyPPI
	ring.ExpressHops = 7 // row-closure datelines, "effectively a 2D torus"
	cases = append(cases, conformanceCase{"mesh-express7-dateline", ring, false})
	cexp := base(topology.CMesh, 8, 4)
	cexp.Concentration = 4
	cexp.ExpressTech = tech.HyPPI
	cexp.ExpressHops = 3
	cases = append(cases, conformanceCase{"cmesh-express3", cexp, false})
	return cases
}

func TestConformanceAllKinds(t *testing.T) {
	if got := len(topology.Kinds()); got < 4 {
		t.Fatalf("registry has %d kinds, want >= 4", got)
	}
	for _, tc := range conformanceCases(t) {
		for _, pol := range []Policy{MonotoneExpress, ShortestHops} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, pol), func(t *testing.T) {
				net, err := topology.Build(tc.cfg)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				tab, err := Build(net, pol)
				if err != nil {
					t.Fatalf("routing.Build: %v", err)
				}
				nn := net.NumNodes()
				hops := make([][]int, nn)
				visited := make([]int, nn)
				for s := 0; s < nn; s++ {
					hops[s] = make([]int, nn)
					src := topology.NodeID(s)
					for d := 0; d < nn; d++ {
						dst := topology.NodeID(d)
						// Walk the table by hand so a broken table fails
						// the test instead of panicking it.
						steps := 0
						visited[s] = s*nn + d + 1 // epoch marker
						for at := src; at != dst; {
							lid := tab.NextLink(at, dst)
							if lid < 0 {
								t.Fatalf("%d->%d: no route at %d", s, d, at)
							}
							next := net.Links[lid].Dst
							if visited[next] == s*nn+d+1 {
								t.Fatalf("%d->%d: revisits node %d", s, d, next)
							}
							visited[next] = s*nn + d + 1
							at = next
							if steps++; steps > nn {
								t.Fatalf("%d->%d: exceeds %d hops", s, d, nn)
							}
						}
						hops[s][d] = steps
						// Distance is the base-fabric reference: exact on
						// plain fabrics, where express shortcuts cannot
						// undercut it.
						if want := net.Distance(src, dst); tc.plain && steps != want {
							t.Fatalf("%d->%d: %d hops, Distance says %d", s, d, steps, want)
						}
					}
				}
				if tc.plain {
					for s := 0; s < nn; s++ {
						for d := s + 1; d < nn; d++ {
							if hops[s][d] != hops[d][s] {
								t.Fatalf("asymmetric hop count %d->%d: %d vs %d",
									s, d, hops[s][d], hops[d][s])
							}
						}
					}
				}
			})
		}
	}
}

// goldenHops4x4 pins the exact all-pairs hop-count matrices of the 4×4
// non-mesh kinds, row-major by (source, destination). Independently
// derived from each kind's distance formula:
//
//	torus  min(|Δx|,4−|Δx|) + min(|Δy|,4−|Δy|)
//	cmesh  |Δx| + |Δy| (router grid; concentration widens ports only)
//	fbfly  (x differs) + (y differs)
var goldenHops4x4 = map[topology.Kind][16][16]int{
	topology.Torus: {
		{0, 1, 2, 1, 1, 2, 3, 2, 2, 3, 4, 3, 1, 2, 3, 2},
		{1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 4, 2, 1, 2, 3},
		{2, 1, 0, 1, 3, 2, 1, 2, 4, 3, 2, 3, 3, 2, 1, 2},
		{1, 2, 1, 0, 2, 3, 2, 1, 3, 4, 3, 2, 2, 3, 2, 1},
		{1, 2, 3, 2, 0, 1, 2, 1, 1, 2, 3, 2, 2, 3, 4, 3},
		{2, 1, 2, 3, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 4},
		{3, 2, 1, 2, 2, 1, 0, 1, 3, 2, 1, 2, 4, 3, 2, 3},
		{2, 3, 2, 1, 1, 2, 1, 0, 2, 3, 2, 1, 3, 4, 3, 2},
		{2, 3, 4, 3, 1, 2, 3, 2, 0, 1, 2, 1, 1, 2, 3, 2},
		{3, 2, 3, 4, 2, 1, 2, 3, 1, 0, 1, 2, 2, 1, 2, 3},
		{4, 3, 2, 3, 3, 2, 1, 2, 2, 1, 0, 1, 3, 2, 1, 2},
		{3, 4, 3, 2, 2, 3, 2, 1, 1, 2, 1, 0, 2, 3, 2, 1},
		{1, 2, 3, 2, 2, 3, 4, 3, 1, 2, 3, 2, 0, 1, 2, 1},
		{2, 1, 2, 3, 3, 2, 3, 4, 2, 1, 2, 3, 1, 0, 1, 2},
		{3, 2, 1, 2, 4, 3, 2, 3, 3, 2, 1, 2, 2, 1, 0, 1},
		{2, 3, 2, 1, 3, 4, 3, 2, 2, 3, 2, 1, 1, 2, 1, 0},
	},
	topology.CMesh: {
		{0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5, 3, 4, 5, 6},
		{1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 4, 4, 3, 4, 5},
		{2, 1, 0, 1, 3, 2, 1, 2, 4, 3, 2, 3, 5, 4, 3, 4},
		{3, 2, 1, 0, 4, 3, 2, 1, 5, 4, 3, 2, 6, 5, 4, 3},
		{1, 2, 3, 4, 0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5},
		{2, 1, 2, 3, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 4},
		{3, 2, 1, 2, 2, 1, 0, 1, 3, 2, 1, 2, 4, 3, 2, 3},
		{4, 3, 2, 1, 3, 2, 1, 0, 4, 3, 2, 1, 5, 4, 3, 2},
		{2, 3, 4, 5, 1, 2, 3, 4, 0, 1, 2, 3, 1, 2, 3, 4},
		{3, 2, 3, 4, 2, 1, 2, 3, 1, 0, 1, 2, 2, 1, 2, 3},
		{4, 3, 2, 3, 3, 2, 1, 2, 2, 1, 0, 1, 3, 2, 1, 2},
		{5, 4, 3, 2, 4, 3, 2, 1, 3, 2, 1, 0, 4, 3, 2, 1},
		{3, 4, 5, 6, 2, 3, 4, 5, 1, 2, 3, 4, 0, 1, 2, 3},
		{4, 3, 4, 5, 3, 2, 3, 4, 2, 1, 2, 3, 1, 0, 1, 2},
		{5, 4, 3, 4, 4, 3, 2, 3, 3, 2, 1, 2, 2, 1, 0, 1},
		{6, 5, 4, 3, 5, 4, 3, 2, 4, 3, 2, 1, 3, 2, 1, 0},
	},
	topology.FBFly: {
		{0, 1, 1, 1, 1, 2, 2, 2, 1, 2, 2, 2, 1, 2, 2, 2},
		{1, 0, 1, 1, 2, 1, 2, 2, 2, 1, 2, 2, 2, 1, 2, 2},
		{1, 1, 0, 1, 2, 2, 1, 2, 2, 2, 1, 2, 2, 2, 1, 2},
		{1, 1, 1, 0, 2, 2, 2, 1, 2, 2, 2, 1, 2, 2, 2, 1},
		{1, 2, 2, 2, 0, 1, 1, 1, 1, 2, 2, 2, 1, 2, 2, 2},
		{2, 1, 2, 2, 1, 0, 1, 1, 2, 1, 2, 2, 2, 1, 2, 2},
		{2, 2, 1, 2, 1, 1, 0, 1, 2, 2, 1, 2, 2, 2, 1, 2},
		{2, 2, 2, 1, 1, 1, 1, 0, 2, 2, 2, 1, 2, 2, 2, 1},
		{1, 2, 2, 2, 1, 2, 2, 2, 0, 1, 1, 1, 1, 2, 2, 2},
		{2, 1, 2, 2, 2, 1, 2, 2, 1, 0, 1, 1, 2, 1, 2, 2},
		{2, 2, 1, 2, 2, 2, 1, 2, 1, 1, 0, 1, 2, 2, 1, 2},
		{2, 2, 2, 1, 2, 2, 2, 1, 1, 1, 1, 0, 2, 2, 2, 1},
		{1, 2, 2, 2, 1, 2, 2, 2, 1, 2, 2, 2, 0, 1, 1, 1},
		{2, 1, 2, 2, 2, 1, 2, 2, 2, 1, 2, 2, 1, 0, 1, 1},
		{2, 2, 1, 2, 2, 2, 1, 2, 2, 2, 1, 2, 1, 1, 0, 1},
		{2, 2, 2, 1, 2, 2, 2, 1, 2, 2, 2, 1, 1, 1, 1, 0},
	},
}

// TestConformanceGoldenHopMatrices pins the 4×4 all-pairs hop counts of
// every non-mesh kind under both policies (plain fabrics route minimally
// under either, so the matrices coincide).
func TestConformanceGoldenHopMatrices(t *testing.T) {
	for kind, want := range goldenHops4x4 {
		c := topology.DefaultConfig()
		c.Kind = kind
		c.Width, c.Height = 4, 4
		net, err := topology.Build(c)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, pol := range []Policy{MonotoneExpress, ShortestHops} {
			tab := MustBuild(net, pol)
			for s := 0; s < 16; s++ {
				for d := 0; d < 16; d++ {
					if got := tab.HopCount(topology.NodeID(s), topology.NodeID(d)); got != want[s][d] {
						t.Errorf("%v/%v %d->%d: %d hops, golden %d", kind, pol, s, d, got, want[s][d])
					}
				}
			}
		}
	}
}

// TestConformanceDegenerateGeometries is the regression suite for the
// Validate hardening: degenerate extents with express hops (or wraps) must
// be rejected by Validate — not handed to buildMonotone, which panics on
// tables it cannot close — while legitimately degenerate grids still route.
func TestConformanceDegenerateGeometries(t *testing.T) {
	reject := []topology.Config{
		{Kind: topology.Torus, Width: 4, Height: 1, CoreSpacingM: 1e-3, CapacityBps: 50e9},
		{Kind: topology.Torus, Width: 1, Height: 4, CoreSpacingM: 1e-3, CapacityBps: 50e9},
		{Kind: topology.Torus, Width: 4, Height: 2, CoreSpacingM: 1e-3, CapacityBps: 50e9},
		{Kind: topology.Torus, Width: 4, Height: 4, CoreSpacingM: 1e-3, CapacityBps: 50e9, ExpressHops: 2},
		{Kind: topology.FBFly, Width: 1, Height: 4, CoreSpacingM: 1e-3, CapacityBps: 50e9},
		{Kind: topology.FBFly, Width: 4, Height: 4, CoreSpacingM: 1e-3, CapacityBps: 50e9, ExpressHops: 2},
		{Kind: topology.CMesh, Width: 1, Height: 4, Concentration: 4, CoreSpacingM: 1e-3, CapacityBps: 50e9},
		{Kind: topology.CMesh, Width: 4, Height: 4, Concentration: -1, CoreSpacingM: 1e-3, CapacityBps: 50e9},
		// Express hops on a width-1 (or express-dim extent-1) grid can
		// never be below the extent; Validate must say so rather than let
		// the monotone builder walk a dimension with no feasible roles.
		{Kind: topology.Mesh, Width: 1, Height: 8, CoreSpacingM: 1e-3, CapacityBps: 50e9, ExpressHops: 1},
		{Kind: topology.Mesh, Width: 8, Height: 1, CoreSpacingM: 1e-3, CapacityBps: 50e9,
			ExpressHops: 1, ExpressBothDims: true},
		// Concentration is a cmesh-only knob.
		{Kind: topology.Mesh, Width: 4, Height: 4, Concentration: 4, CoreSpacingM: 1e-3, CapacityBps: 50e9},
	}
	for i, c := range reject {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail Validate: %+v", i, c)
		}
		if _, err := topology.Build(c); err == nil {
			t.Errorf("config %d should fail Build: %+v", i, c)
		}
	}

	// A single-row mesh with express hops (datelines included) is legal
	// and must route every pair under both policies without panicking.
	for _, hops := range []int{0, 3, 7} {
		c := topology.DefaultConfig()
		c.Width, c.Height = 8, 1
		c.ExpressHops = hops
		c.ExpressTech = tech.HyPPI
		net, err := topology.Build(c)
		if err != nil {
			t.Fatalf("8x1 hops=%d: %v", hops, err)
		}
		for _, pol := range []Policy{MonotoneExpress, ShortestHops} {
			tab := MustBuild(net, pol)
			for s := 0; s < 8; s++ {
				for d := 0; d < 8; d++ {
					if got := tab.HopCount(topology.NodeID(s), topology.NodeID(d)); got > 8 {
						t.Fatalf("8x1 hops=%d %v %d->%d: %d hops", hops, pol, s, d, got)
					}
				}
			}
		}
	}
}

// TestConformanceFallbackPolicy pins the monotone→shortest fallback: on
// kinds without dimension-ordered phases both policies produce identical
// tables.
func TestConformanceFallbackPolicy(t *testing.T) {
	c := topology.DefaultConfig()
	c.Kind = topology.FBFly
	c.Width, c.Height = 4, 4
	net := topology.MustBuild(c)
	if net.KindSpec().Monotone {
		t.Fatal("fbfly must not claim monotone routing")
	}
	mono := MustBuild(net, MonotoneExpress)
	short := MustBuild(net, ShortestHops)
	for s := 0; s < net.NumNodes(); s++ {
		for d := 0; d < net.NumNodes(); d++ {
			a, b := mono.NextLink(topology.NodeID(s), topology.NodeID(d)), short.NextLink(topology.NodeID(s), topology.NodeID(d))
			if a != b {
				t.Fatalf("fallback diverges at %d->%d: %v vs %v", s, d, a, b)
			}
		}
	}
}
