package routing

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/topology"
	"repro/internal/units"
)

func mesh4x4(t *testing.T) *topology.Network {
	t.Helper()
	net, err := topology.Build(topology.Config{
		Width: 4, Height: 4,
		CoreSpacingM: 1 * units.Millimetre,
		CapacityBps:  50e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// maskNode returns a view of net with every channel touching id down.
func maskNode(t *testing.T, net *topology.Network, id topology.NodeID) *topology.Network {
	t.Helper()
	down := make([]bool, len(net.Links))
	for _, l := range net.Links {
		if l.Src == id || l.Dst == id {
			down[l.ID] = true
		}
	}
	m, err := net.MaskLinks(down)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsMasked() {
		t.Fatal("expected a masked view")
	}
	return m
}

func TestMaskLinksIdentity(t *testing.T) {
	net := mesh4x4(t)
	m, err := net.MaskLinks(make([]bool, len(net.Links)))
	if err != nil {
		t.Fatal(err)
	}
	if m != net {
		t.Fatal("empty mask must return the original network pointer")
	}
	if net.IsMasked() {
		t.Fatal("original network must not be masked")
	}
	if _, err := net.MaskLinks(make([]bool, 3)); err == nil {
		t.Fatal("wrong mask length must error")
	}
}

func TestMaskLinksAdjacency(t *testing.T) {
	net := mesh4x4(t)
	m := maskNode(t, net, 15)
	if len(m.Links) != len(net.Links) {
		t.Fatalf("masked view must share Links: %d != %d", len(m.Links), len(net.Links))
	}
	if got := len(m.OutLinks(15)); got != 0 {
		t.Fatalf("isolated node still has %d out-links", got)
	}
	if got := len(m.InLinks(15)); got != 0 {
		t.Fatalf("isolated node still has %d in-links", got)
	}
	if got := len(m.DownLinks()); got != 4 {
		t.Fatalf("corner isolation should mask 4 channels, got %d", got)
	}
	// Node 14 lost exactly its pair to 15.
	if got, want := len(m.OutLinks(14)), len(net.OutLinks(14))-1; got != want {
		t.Fatalf("node 14 out-degree %d, want %d", got, want)
	}
}

// TestBuildUnreachable pins the satellite contract: Build on a
// disconnected fabric returns a named ErrUnreachable with the src/dst
// pair in the message, never an invalid table or a panic, under both
// policies.
func TestBuildUnreachable(t *testing.T) {
	net := mesh4x4(t)
	m := maskNode(t, net, 15)
	for _, policy := range []Policy{MonotoneExpress, ShortestHops} {
		tab, err := Build(m, policy)
		if tab != nil {
			t.Fatalf("%v: Build on a disconnected fabric returned a table", policy)
		}
		if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("%v: err = %v, want ErrUnreachable", policy, err)
		}
		if !strings.Contains(err.Error(), "15") || !strings.Contains(err.Error(), "->") {
			t.Fatalf("%v: error %q does not name the disconnected pair", policy, err)
		}
	}
}

func TestBuildDegradedAvailability(t *testing.T) {
	net := mesh4x4(t)
	m := maskNode(t, net, 15)
	tab, err := BuildDegraded(m, MonotoneExpress)
	if err != nil {
		t.Fatal(err)
	}
	// Node 15 is isolated: 15 pairs outbound + 15 inbound of 240 ordered.
	if got := tab.Unreachable(); got != 30 {
		t.Fatalf("Unreachable = %d, want 30", got)
	}
	if got, want := tab.Availability(), 1-30.0/240; got != want {
		t.Fatalf("Availability = %v, want %v", got, want)
	}
	if tab.Reachable(0, 15) {
		t.Fatal("0 -> 15 must be unreachable")
	}
	if !tab.Reachable(0, 5) || !tab.Reachable(3, 3) {
		t.Fatal("connected pairs must stay reachable")
	}
	if _, err := tab.NextLinkErr(0, 15); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("NextLinkErr(0,15) = %v, want ErrUnreachable", err)
	} else if !strings.Contains(err.Error(), "0 -> 15") {
		t.Fatalf("NextLinkErr message %q lacks src/dst", err)
	}
	if lid, err := tab.NextLinkErr(0, 5); err != nil || lid < 0 {
		t.Fatalf("NextLinkErr(0,5) = %v, %v; want a link", lid, err)
	}
	if err := tab.HopErr(0, 15, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("HopErr(0,15) = %v, want ErrUnreachable", err)
	}
	// Connected pairs still walk end to end on the degraded table.
	if got := tab.HopCount(0, 10); got <= 0 {
		t.Fatalf("HopCount(0,10) = %d", got)
	}
}

// TestBuildDegradedPartition cuts the 4×4 mesh between columns 1 and 2:
// two 8-node islands, so 2·8·8 = 128 of 240 ordered pairs disconnect.
func TestBuildDegradedPartition(t *testing.T) {
	net := mesh4x4(t)
	down := make([]bool, len(net.Links))
	for _, l := range net.Links {
		sx, dx := net.X(l.Src), net.X(l.Dst)
		if (sx == 1 && dx == 2) || (sx == 2 && dx == 1) {
			down[l.ID] = true
		}
	}
	m, err := net.MaskLinks(down)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := BuildDegraded(m, ShortestHops)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Unreachable(); got != 128 {
		t.Fatalf("Unreachable = %d, want 128", got)
	}
	if got, want := tab.Availability(), 1-128.0/240; got != want {
		t.Fatalf("Availability = %v, want %v", got, want)
	}
	// Same-island pairs reroute fine.
	if !tab.Reachable(0, 13) {
		t.Fatal("0 -> 13 should stay reachable inside the left island")
	}
	if tab.Reachable(0, 3) {
		t.Fatal("0 -> 3 crosses the cut and must be unreachable")
	}
}

// TestBuildDegradedReroute masks one interior channel pair and checks the
// degraded table routes around it with full availability.
func TestBuildDegradedReroute(t *testing.T) {
	net := mesh4x4(t)
	down := make([]bool, len(net.Links))
	for _, l := range net.Links {
		if (l.Src == 5 && l.Dst == 6) || (l.Src == 6 && l.Dst == 5) {
			down[l.ID] = true
		}
	}
	m, err := net.MaskLinks(down)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := BuildDegraded(m, MonotoneExpress)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Availability(); got != 1 {
		t.Fatalf("Availability = %v, want 1 (reroute exists)", got)
	}
	for _, lid := range tab.Path(5, 6) {
		l := net.Links[lid]
		if l.Src == 5 && l.Dst == 6 {
			t.Fatal("path 5 -> 6 uses the masked channel")
		}
	}
	// A strict Build also succeeds: the fabric is still connected.
	if _, err := Build(m, MonotoneExpress); err != nil {
		t.Fatalf("Build on connected masked fabric: %v", err)
	}
}
