package routing

import "repro/internal/topology"

// mono is the algorithmic MonotoneExpress backend: next hops computed on
// demand, no per-pair state. It answers exactly what the constructive
// table builder (buildMonotoneTable) would — the equivalence is pinned by
// the differential tests and fuzz corpus in mono_test.go.
//
// The constructive definition walks both ring directions greedily and
// picks the shorter one (ties: avoid the dateline, then positive
// direction). The closed forms below shortcut the walks:
//
//   - On a line (no dateline in the dimension) exactly one direction is
//     feasible — the sign of the coordinate delta.
//   - On a ring of extent E, the greedy walk from position x covering rem
//     positions takes rem unit steps — except when a single closure
//     channel covers the whole distance: at x == 0 (in the direction's
//     own coordinate frame) with rem == E−1 the express ring's closure
//     (stride E−1) is the greedy first choice, one hop. The E−1 > 1 guard
//     keeps W = 2 geometries on the base channel, whose equal stride wins
//     the lower-link-ID tie in the role ordering.
//   - The walk crosses the dateline iff it runs past the dimension end
//     (x + rem ≥ E) or takes the closure channel directly.
//
// The negative direction reuses the same formulas in the mirrored frame
// (position E−1−x). Both dimensions of a torus and the row/column-closure
// express rings (hops = extent−1) hit the ring forms; every other
// monotone configuration is a line.
type mono struct {
	net          *topology.Network
	roles        *dirRoles
	ringX, ringY bool
}

// newMono builds the O(n) algorithmic backend for a monotone-kind network.
func newMono(net *topology.Network) *mono {
	return &mono{
		net:   net,
		roles: buildRoles(net),
		ringX: net.HasDatelineX(),
		ringY: net.HasDatelineY(),
	}
}

// nextLink resolves the out-channel at `at` heading for `dst` (noLink when
// equal): X phase first, then Y, as in the constructive builder.
func (m *mono) nextLink(at, dst topology.NodeID) topology.LinkID {
	net := m.net
	ax, dx := net.X(at), net.X(dst)
	if ax != dx {
		return m.dimNext(at, ax, dx, net.Width, m.roles.east, m.roles.west, m.ringX)
	}
	ay, dy := net.Y(at), net.Y(dst)
	if ay != dy {
		return m.dimNext(at, ay, dy, net.Height, m.roles.south, m.roles.north, m.ringY)
	}
	return noLink
}

// dimNext routes one dimension phase: from coordinate x toward goal in a
// dimension of extent ext, with pos/neg the direction role lists and ring
// whether the dimension closes into a ring.
func (m *mono) dimNext(at topology.NodeID, x, goal, ext int, pos, neg [][]dirLink, ring bool) topology.LinkID {
	remP := goal - x
	if remP < 0 {
		remP += ext
	}
	remN := ext - remP
	if !ring {
		if goal > x {
			return firstRole(pos[at], remP)
		}
		return firstRole(neg[at], remN)
	}
	hp, wp := ringSteps(x, remP, ext)
	hn, wn := ringSteps(ext-1-x, remN, ext)
	// Shorter direction wins; ties avoid the dateline, then go positive —
	// the constructive builder's pick().
	if hp < hn || (hp == hn && (!wp || wn)) {
		return firstRole(pos[at], remP)
	}
	return firstRole(neg[at], remN)
}

// ringSteps is the closed form for one ring direction, expressed in the
// direction's own frame (position x, rem positions to cover, extent ext):
// greedy hop count and whether the walk crosses the dateline.
func ringSteps(x, rem, ext int) (hops int, wraps bool) {
	if x == 0 && rem == ext-1 && ext-1 > 1 {
		return 1, true // single closure channel covers the whole distance
	}
	return rem, x+rem >= ext
}

// firstRole returns the greedy first link of a direction: the largest
// stride not overshooting the remaining distance. Role lists have at most
// a handful of entries (base, express, closure), so the scan is O(1).
func firstRole(roles []dirLink, rem int) topology.LinkID {
	for _, d := range roles {
		if d.stride <= rem {
			return d.id
		}
	}
	return noLink
}
