package routing

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/topology"
)

// monoGeometries is the kind×geometry differential grid: every registered
// kind, rectangular and square extents, every express regime (none, short
// hops, row-closure rings, both dimensions). The equivalence suite runs
// the algorithmic backend against the constructive table on each.
func monoGeometries(t testing.TB) []topology.Config {
	t.Helper()
	var cfgs []topology.Config
	add := func(kind topology.Kind, w, h, hops int, both bool, conc int) {
		c := topology.DefaultConfig()
		c.Kind = kind
		c.Width, c.Height = w, h
		c.ExpressHops = hops
		c.ExpressBothDims = both
		c.Concentration = conc
		if hops > 0 {
			c.ExpressTech = tech.HyPPI
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("geometry %v %dx%d hops=%d both=%v: %v", kind, w, h, hops, both, err)
		}
		cfgs = append(cfgs, c)
	}
	// Plain meshes, including degenerate extents.
	for _, g := range [][2]int{{2, 1}, {2, 2}, {3, 1}, {5, 4}, {8, 8}, {16, 3}} {
		add(topology.Mesh, g[0], g[1], 0, false, 0)
	}
	// Express meshes: short hops, mid hops, and row-closure rings
	// (hops = W−1, the paper's dateline configuration).
	for _, g := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {16, 4}, {5, 3}} {
		w := g[0]
		for _, hops := range []int{1, 2, 3, w - 1} {
			if hops >= w {
				continue
			}
			add(topology.Mesh, g[0], g[1], hops, false, 0)
		}
	}
	// Express in both dimensions, including the column-closure ring.
	add(topology.Mesh, 8, 8, 3, true, 0)
	add(topology.Mesh, 8, 8, 7, true, 0)
	add(topology.Mesh, 6, 4, 3, true, 0)
	add(topology.Mesh, 4, 8, 3, true, 0)
	// Tori (both dimensions are rings of base channels).
	for _, g := range [][2]int{{3, 3}, {4, 4}, {5, 3}, {8, 8}, {7, 5}} {
		add(topology.Torus, g[0], g[1], 0, false, 0)
	}
	// Concentrated meshes share the mesh link shape.
	add(topology.CMesh, 4, 4, 0, false, 2)
	add(topology.CMesh, 8, 8, 3, false, 4)
	add(topology.CMesh, 8, 8, 7, false, 2)
	return cfgs
}

// TestMonotoneAlgorithmicMatchesTable is the differential-equivalence
// contract: on every monotone kind×geometry, the algorithmic backend's
// next hop equals the constructive table's next hop for every (node, dst)
// pair — bit-for-bit the same LinkID.
func TestMonotoneAlgorithmicMatchesTable(t *testing.T) {
	for _, c := range monoGeometries(t) {
		net, err := topology.Build(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !net.KindSpec().Monotone {
			continue
		}
		tab, err := Build(net, MonotoneExpress)
		if err != nil {
			t.Fatal(err)
		}
		if tab.alg == nil {
			t.Fatalf("%v %dx%d hops=%d: expected algorithmic backend", c.Kind, c.Width, c.Height, c.ExpressHops)
		}
		ref := buildMonotoneTable(net)
		nn := net.NumNodes()
		for at := 0; at < nn; at++ {
			for dst := 0; dst < nn; dst++ {
				got := tab.NextLink(topology.NodeID(at), topology.NodeID(dst))
				want := ref.NextLink(topology.NodeID(at), topology.NodeID(dst))
				if got != want {
					t.Fatalf("%v %dx%d hops=%d both=%v: next(%d,%d) = %d, table %d",
						c.Kind, c.Width, c.Height, c.ExpressHops, c.ExpressBothDims, at, dst, got, want)
				}
			}
		}
	}
}

// TestNonMonotoneKindsKeepTables: fbfly reports Monotone = false and must
// keep the generic dense table under MonotoneExpress — same interface,
// table backend.
func TestNonMonotoneKindsKeepTables(t *testing.T) {
	c := topology.DefaultConfig()
	c.Kind = topology.FBFly
	c.Width, c.Height = 4, 4
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(net, MonotoneExpress)
	if err != nil {
		t.Fatal(err)
	}
	if tab.alg != nil || tab.next == nil {
		t.Fatal("fbfly must use the table backend")
	}
}

// TestMonotoneRoutingMemoryLinear asserts the scale contract: building
// MonotoneExpress routing for a 64×64 express mesh allocates no per-pair
// state — no n² table, and role lists bounded by a constant per node.
func TestMonotoneRoutingMemoryLinear(t *testing.T) {
	c := topology.DefaultConfig()
	c.Width, c.Height = 64, 64
	c.ExpressHops = 63 // row-closure rings, the paper's dateline regime
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(net, MonotoneExpress)
	if err != nil {
		t.Fatal(err)
	}
	if tab.next != nil {
		t.Fatal("monotone kind materialized an n² next-hop table")
	}
	if tab.alg == nil {
		t.Fatal("missing algorithmic backend")
	}
	nn := net.NumNodes()
	roleEntries := 0
	for _, dir := range [][][]dirLink{tab.alg.roles.east, tab.alg.roles.west, tab.alg.roles.south, tab.alg.roles.north} {
		if len(dir) != nn {
			t.Fatalf("role list spine has %d nodes, want %d", len(dir), nn)
		}
		for _, ls := range dir {
			roleEntries += len(ls)
		}
	}
	// Each of the ~4n links contributes at most two roles.
	if max := 8 * nn; roleEntries > max {
		t.Fatalf("%d role entries for %d nodes — not O(n) (cap %d)", roleEntries, nn, max)
	}
	// The backend still routes: spot-walk a corner-to-corner path.
	if got := tab.HopCount(0, topology.NodeID(nn-1)); got <= 0 {
		t.Fatalf("HopCount across the 64x64 grid = %d", got)
	}
}

// FuzzNextHopEquivalence fuzzes the kind, grid shape, express
// configuration and a (node, dst) pair, asserting the algorithmic
// backend's next hop equals the constructive monotone table's — the same
// differential contract as TestMonotoneAlgorithmicMatchesTable, driven by
// fuzzed geometries. The checked-in seeds under testdata/fuzz cover every
// registered kind and each express regime.
func FuzzNextHopEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(4), uint8(0), false, uint8(0), uint8(15))
	f.Add(uint8(0), uint8(8), uint8(8), uint8(7), false, uint8(5), uint8(60))
	f.Add(uint8(0), uint8(16), uint8(16), uint8(15), false, uint8(255), uint8(0))
	f.Add(uint8(0), uint8(8), uint8(8), uint8(3), true, uint8(9), uint8(54))
	f.Add(uint8(0), uint8(2), uint8(1), uint8(0), false, uint8(0), uint8(1))
	f.Add(uint8(1), uint8(5), uint8(3), uint8(0), false, uint8(7), uint8(12))
	f.Add(uint8(1), uint8(8), uint8(8), uint8(0), false, uint8(63), uint8(1))
	f.Add(uint8(2), uint8(4), uint8(4), uint8(2), false, uint8(3), uint8(11))
	f.Add(uint8(3), uint8(4), uint8(4), uint8(0), false, uint8(0), uint8(15))
	f.Fuzz(func(t *testing.T, kindRaw, w, h, hops uint8, both bool, atRaw, dstRaw uint8) {
		kinds := topology.Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		c := topology.DefaultConfig()
		c.Kind = kind
		c.Width = 2 + int(w%15)  // 2..16
		c.Height = 1 + int(h%16) // 1..16
		switch kind {
		case topology.Mesh, topology.CMesh:
			c.ExpressHops = int(hops) % c.Width
			c.ExpressBothDims = both
			c.ExpressTech = tech.HyPPI
			if kind == topology.CMesh {
				c.Concentration = 1 + int(hops)%4
			}
		default:
			// Torus and fbfly take no express links.
		}
		net, err := topology.Build(c)
		if err != nil {
			t.Skip() // configuration legitimately rejected
		}
		tab, err := Build(net, MonotoneExpress)
		if err != nil {
			t.Fatal(err)
		}
		if !net.KindSpec().Monotone {
			// Non-monotone kinds keep the table; nothing to differentiate.
			if tab.alg != nil {
				t.Fatalf("%v: unexpected algorithmic backend", kind)
			}
			return
		}
		if tab.alg == nil {
			t.Fatalf("%v: expected algorithmic backend", kind)
		}
		ref := buildMonotoneTable(net)
		nn := net.NumNodes()
		// The fuzzed pair, plus its full row and column — cheap, and the
		// corpus accumulates whole-matrix coverage across inputs.
		at := topology.NodeID(int(atRaw) % nn)
		dst := topology.NodeID(int(dstRaw) % nn)
		for i := 0; i < nn; i++ {
			n := topology.NodeID(i)
			if got, want := tab.NextLink(at, n), ref.NextLink(at, n); got != want {
				t.Fatalf("%v %dx%d hops=%d both=%v: next(%d,%d) = %d, table %d",
					kind, c.Width, c.Height, c.ExpressHops, both, at, n, got, want)
			}
			if got, want := tab.NextLink(n, dst), ref.NextLink(n, dst); got != want {
				t.Fatalf("%v %dx%d hops=%d both=%v: next(%d,%d) = %d, table %d",
					kind, c.Width, c.Height, c.ExpressHops, both, n, dst, got, want)
			}
		}
	})
}
