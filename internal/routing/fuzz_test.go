package routing

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/topology"
)

// FuzzRouteNext fuzzes the topology kind, grid shape, express hop length,
// endpoints and policy, walking the routed path hop by hop and asserting
// the table invariants:
//
//   - every pair routes to its destination without revisiting a node;
//   - the walk never exceeds the dimension budget Width+Height (the same
//     bound the BFS table construction guarantees for its longest path);
//   - when the table is shortest-path (the ShortestHops policy, or any
//     policy on a kind that falls back to it), every hop strictly
//     decreases an independently computed BFS distance, so the path
//     length equals the BFS distance;
//   - on plain (express-free) fabrics the walked length never beats the
//     kind's Distance formula.
func FuzzRouteNext(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(4), uint8(0), uint8(3), uint8(14), false)
	f.Add(uint8(0), uint8(8), uint8(8), uint8(3), uint8(0), uint8(63), true)
	f.Add(uint8(0), uint8(16), uint8(4), uint8(15), uint8(1), uint8(40), false)
	f.Add(uint8(0), uint8(16), uint8(16), uint8(15), uint8(255), uint8(0), true)
	f.Add(uint8(0), uint8(5), uint8(3), uint8(2), uint8(7), uint8(7), true)
	f.Add(uint8(0), uint8(2), uint8(1), uint8(1), uint8(0), uint8(1), false)
	f.Add(uint8(1), uint8(4), uint8(4), uint8(0), uint8(3), uint8(12), false)
	f.Add(uint8(1), uint8(5), uint8(3), uint8(0), uint8(14), uint8(0), true)
	f.Add(uint8(2), uint8(4), uint8(4), uint8(2), uint8(9), uint8(6), false)
	f.Add(uint8(3), uint8(4), uint8(4), uint8(0), uint8(0), uint8(15), false)
	f.Add(uint8(3), uint8(7), uint8(2), uint8(0), uint8(13), uint8(1), true)
	f.Fuzz(func(t *testing.T, kindRaw, w, h, hops, srcRaw, dstRaw uint8, shortest bool) {
		kinds := topology.Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		c := topology.DefaultConfig()
		c.Kind = kind
		c.Width = 2 + int(w%15)  // 2..16
		c.Height = 1 + int(h%16) // 1..16
		switch kind {
		case topology.Mesh, topology.CMesh:
			c.ExpressHops = int(hops) % c.Width
			c.ExpressTech = tech.HyPPI
			if kind == topology.CMesh {
				c.Concentration = 1 + int(hops)%4
			}
		default:
			// Torus and fbfly take no express links; torus additionally
			// needs 3×3, which Build rejects below when violated.
		}
		net, err := topology.Build(c)
		if err != nil {
			t.Skip() // configuration legitimately rejected
		}
		policy := MonotoneExpress
		if shortest {
			policy = ShortestHops
		}
		tab, err := Build(net, policy)
		if err != nil {
			t.Fatalf("Build(%v %dx%d hops=%d, %v): %v", kind, c.Width, c.Height, c.ExpressHops, policy, err)
		}
		// The table is minimal when built by the BFS construction —
		// either policy on a non-monotone kind.
		minimal := shortest || !net.KindSpec().Monotone

		nn := net.NumNodes()
		src := topology.NodeID(int(srcRaw) % nn)
		dst := topology.NodeID(int(dstRaw) % nn)

		// Independent BFS hop distances to dst (reverse edge walk).
		dist := make([]int, nn)
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue := []topology.NodeID{dst}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, lid := range net.InLinks(v) {
				u := net.Links[lid].Src
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}

		bound := c.Width + c.Height
		visited := make(map[topology.NodeID]bool, bound)
		visited[src] = true
		at := src
		steps := 0
		for at != dst {
			lid := tab.NextLink(at, dst)
			if lid < 0 {
				t.Fatalf("%v/%v %d->%d: no route at %d", kind, policy, src, dst, at)
			}
			next := net.Links[lid].Dst
			if minimal && dist[next] != dist[at]-1 {
				t.Fatalf("%v/%v %d->%d: hop %d->%d does not make BFS progress (%d -> %d)",
					kind, policy, src, dst, at, next, dist[at], dist[next])
			}
			if visited[next] {
				t.Fatalf("%v/%v %d->%d: revisits node %d", kind, policy, src, dst, next)
			}
			visited[next] = true
			at = next
			steps++
			if steps > bound {
				t.Fatalf("%v/%v %d->%d: path exceeds %d hops", kind, policy, src, dst, bound)
			}
		}
		if minimal && steps != dist[src] {
			t.Fatalf("%v/%v %d->%d: %d hops, BFS distance %d", kind, policy, src, dst, steps, dist[src])
		}
		if c.ExpressHops == 0 && steps < net.Distance(src, dst) {
			t.Fatalf("%v/%v %d->%d: %d hops beats base-fabric distance %d",
				kind, policy, src, dst, steps, net.Distance(src, dst))
		}
	})
}
