package routing

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/topology"
)

// FuzzRouteNext fuzzes grid shape, express hop length, endpoints and policy,
// walking the routed path hop by hop and asserting the table invariants:
//
//   - every pair routes to its destination without revisiting a node;
//   - the walk never exceeds the dimension budget Width+Height (the same
//     bound the BFS table construction guarantees for its longest path);
//   - under ShortestHops, every hop strictly decreases an independently
//     computed BFS distance, so the path length equals the BFS distance.
func FuzzRouteNext(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(0), uint8(3), uint8(14), false)
	f.Add(uint8(8), uint8(8), uint8(3), uint8(0), uint8(63), true)
	f.Add(uint8(16), uint8(4), uint8(15), uint8(1), uint8(40), false)
	f.Add(uint8(16), uint8(16), uint8(15), uint8(255), uint8(0), true)
	f.Add(uint8(5), uint8(3), uint8(2), uint8(7), uint8(7), true)
	f.Add(uint8(2), uint8(1), uint8(1), uint8(0), uint8(1), false)
	f.Fuzz(func(t *testing.T, w, h, hops, srcRaw, dstRaw uint8, shortest bool) {
		c := topology.DefaultConfig()
		c.Width = 2 + int(w%15)  // 2..16
		c.Height = 1 + int(h%16) // 1..16
		c.ExpressHops = int(hops) % c.Width
		c.ExpressTech = tech.HyPPI
		net, err := topology.Build(c)
		if err != nil {
			t.Skip() // configuration legitimately rejected
		}
		policy := MonotoneExpress
		if shortest {
			policy = ShortestHops
		}
		tab, err := Build(net, policy)
		if err != nil {
			t.Fatalf("Build(%dx%d hops=%d, %v): %v", c.Width, c.Height, c.ExpressHops, policy, err)
		}

		nn := net.NumNodes()
		src := topology.NodeID(int(srcRaw) % nn)
		dst := topology.NodeID(int(dstRaw) % nn)

		// Independent BFS hop distances to dst (reverse edge walk).
		dist := make([]int, nn)
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue := []topology.NodeID{dst}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, lid := range net.InLinks(v) {
				u := net.Links[lid].Src
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}

		bound := c.Width + c.Height
		visited := make(map[topology.NodeID]bool, bound)
		visited[src] = true
		at := src
		steps := 0
		for at != dst {
			lid := tab.NextLink(at, dst)
			if lid < 0 {
				t.Fatalf("%v %d->%d: no route at %d", policy, src, dst, at)
			}
			next := net.Links[lid].Dst
			if shortest && dist[next] != dist[at]-1 {
				t.Fatalf("ShortestHops %d->%d: hop %d->%d does not make BFS progress (%d -> %d)",
					src, dst, at, next, dist[at], dist[next])
			}
			if visited[next] {
				t.Fatalf("%v %d->%d: revisits node %d", policy, src, dst, next)
			}
			visited[next] = true
			at = next
			steps++
			if steps > bound {
				t.Fatalf("%v %d->%d: path exceeds %d hops", policy, src, dst, bound)
			}
		}
		if shortest && steps != dist[src] {
			t.Fatalf("ShortestHops %d->%d: %d hops, BFS distance %d", src, dst, steps, dist[src])
		}
	})
}
