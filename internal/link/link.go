// Package link models bare point-to-point interconnect links for the four
// technology options (Electronic, Photonic, Plasmonic, HyPPI) and computes
// the link-level CLEAR figure of merit of the paper's Section III-A:
//
//	CLEAR(link) = Capability / (Latency × Energy × Area)        (eq. 1)
//
// Capability is the link data rate, and the three cost terms are the
// point-to-point latency, the energy per bit (including the laser sized from
// the optical loss budget for optical links), and the on-chip area.
//
// These are *bare* link models: optical links run at the Table I device
// rates (2.1 Tb/s for the HyPPI modulator), without the 50 Gb/s SERDES cap
// applied at the NoC system level — that cap lives in the dsent package, as
// in the paper.
package link

import (
	"fmt"
	"math"

	"repro/internal/tech"
	"repro/internal/units"
)

// speedOfLight in m/s.
const speedOfLight = 299792458.0

// convLatencyS is the fixed E-O + O-E conversion latency of an optical link:
// modulator driver, photodetector, TIA and clock recovery. The paper's
// system model charges one full clock cycle for this; at the bare link level
// we use a 100 ps electronic conversion chain, a mid-range figure for the
// 11-14 nm nodes considered.
const convLatencyS = 100e-12

// referenceRateBps is the data rate at which tech.OpticalParams.
// DetectorSensitivityW is specified; required receive power scales linearly
// with the data rate (shot/thermal-noise-limited receiver).
const referenceRateBps = 10e9

// Metrics is the result of evaluating one link at one length.
type Metrics struct {
	// DataRateBps is the link capability C.
	DataRateBps float64
	// LatencyS is the end-to-end point-to-point latency.
	LatencyS float64
	// EnergyPerBitJ is the total energy per bit including static laser
	// power amortized over the data rate.
	EnergyPerBitJ float64
	// AreaM2 is the on-chip footprint: active devices plus waveguide or
	// wire track area.
	AreaM2 float64
	// LaserPowerW is the wall-plug laser power (0 for electronic links).
	LaserPowerW float64
	// PathLossDB is the total optical loss budget (0 for electronic).
	PathLossDB float64
}

// CLEAR evaluates eq. 1 in the paper's plotting units — Gb/s for capability,
// ps for latency, fJ/bit for energy, µm² for area. The paper notes the units
// only need to be consistent since the metric is used relatively.
func (m Metrics) CLEAR() float64 {
	c := m.DataRateBps / units.Giga
	l := m.LatencyS / units.Pico
	e := m.EnergyPerBitJ / units.Femto
	a := m.AreaM2 / units.MicrometreSq
	den := l * e * a
	if den <= 0 {
		return 0
	}
	return c / den
}

// Model evaluates one technology's link at arbitrary lengths.
type Model interface {
	Tech() tech.Technology
	// Eval returns the link metrics for a link of the given length in
	// metres. Length must be positive.
	Eval(lengthM float64) Metrics
}

// NewModel returns the bare link model for a technology, using the Table I /
// ITRS catalogue parameters.
func NewModel(t tech.Technology) (Model, error) {
	switch t {
	case tech.Electronic:
		p := tech.ElectronicITRS14()
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return &electronicModel{p: p}, nil
	case tech.Photonic, tech.Plasmonic, tech.HyPPI:
		p, err := tech.Optical(t)
		if err != nil {
			return nil, err
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return &opticalModel{p: p}, nil
	}
	return nil, fmt.Errorf("link: unknown technology %v", t)
}

// MustModel is NewModel that panics on error; for use with the catalogue
// technologies, whose parameters are statically valid.
func MustModel(t tech.Technology) Model {
	m, err := NewModel(t)
	if err != nil {
		panic(err)
	}
	return m
}

type electronicModel struct {
	p tech.ElectronicParams
}

func (m *electronicModel) Tech() tech.Technology { return tech.Electronic }

func (m *electronicModel) Eval(lengthM float64) Metrics {
	mm := lengthM / units.Millimetre
	rate := m.p.PerWireRateGbps * units.Giga
	// Dynamic switching energy grows linearly with wire length
	// (repeated-wire regime) plus a fixed driver/receiver term; repeater
	// leakage is amortized over the bit rate.
	dynamicJ := (m.p.FixedEnergyFJPerBit + m.p.EnergyFJPerBitPerMM*mm) * units.Femto
	leakW := m.p.StaticPowerUWPerMM * mm * units.Micro
	energy := dynamicJ + leakW/rate
	latency := (m.p.FixedDelayPS + m.p.DelayPSPerMM*mm) * units.Pico
	pitch := (m.p.WireWidthUM + m.p.WireSpacingUM) * units.Micrometre
	area := pitch*lengthM + m.p.RepeaterAreaUM2PerMM*mm*units.MicrometreSq
	return Metrics{
		DataRateBps:   rate,
		LatencyS:      latency,
		EnergyPerBitJ: energy,
		AreaM2:        area,
	}
}

type opticalModel struct {
	p tech.OpticalParams
}

func (m *opticalModel) Tech() tech.Technology { return m.p.Tech }

// PathLossDB returns the optical loss budget of a link of the given length:
// modulator insertion loss, waveguide coupling loss, and propagation loss.
func (m *opticalModel) PathLossDB(lengthM float64) float64 {
	cm := lengthM / units.Centimetre
	return m.p.Modulator.InsertionLossDB +
		m.p.Waveguide.CouplingLossDB +
		m.p.Waveguide.PropagationLossDBPerCM*cm
}

// ExtinctionPenalty converts a finite modulator extinction ratio into the
// standard optical power penalty (ER+1)/(ER-1) in linear units: with an
// imperfect "off" level more average power is needed for the same eye
// opening.
func ExtinctionPenalty(erDB float64) float64 {
	er := units.DBToLinear(erDB)
	if er <= 1 {
		return math.Inf(1)
	}
	return (er + 1) / (er - 1)
}

// LaserPowerW sizes the wall-plug laser power for a link of the given length
// at the given data rate: the receiver needs its sensitivity power (scaled
// linearly with rate), grossed up by the path loss, the extinction-ratio
// penalty, and the laser wall-plug efficiency.
func (m *opticalModel) LaserPowerW(lengthM, rateBps float64) float64 {
	sens := m.p.DetectorSensitivityW * rateBps / referenceRateBps
	lossLin := 1 / units.TransmissionFromLossDB(m.PathLossDB(lengthM))
	penalty := ExtinctionPenalty(m.p.Modulator.ExtinctionRatioDB)
	eff := m.p.Laser.EfficiencyPct / 100
	return sens * lossLin * penalty / eff
}

func (m *opticalModel) Eval(lengthM float64) Metrics {
	rate := m.p.Modulator.BareSpeedGbps * units.Giga
	laserW := m.LaserPowerW(lengthM, rate)
	energy := (m.p.Modulator.EnergyFJPerBit+m.p.Detector.EnergyFJPerBit)*units.Femto +
		laserW/rate
	prop := lengthM * m.p.Waveguide.GroupIndex / speedOfLight
	latency := convLatencyS + prop
	area := (m.p.Laser.AreaUM2+m.p.Modulator.AreaUM2+m.p.Detector.AreaUM2)*units.MicrometreSq +
		m.p.Waveguide.PitchUM*units.Micrometre*lengthM
	return Metrics{
		DataRateBps:   rate,
		LatencyS:      latency,
		EnergyPerBitJ: energy,
		AreaM2:        area,
		LaserPowerW:   laserW,
		PathLossDB:    m.PathLossDB(lengthM),
	}
}

// SweepPoint is one length sample of the Fig. 3 curves.
type SweepPoint struct {
	LengthM float64
	// CLEAR maps technology -> CLEAR value at this length.
	CLEAR map[tech.Technology]float64
	// Metrics maps technology -> full link metrics at this length.
	Metrics map[tech.Technology]Metrics
}

// Best returns the technology with the highest CLEAR at this point.
func (s SweepPoint) Best() tech.Technology {
	best := tech.Electronic
	bv := math.Inf(-1)
	for _, t := range tech.Technologies {
		if v, ok := s.CLEAR[t]; ok && v > bv {
			bv = v
			best = t
		}
	}
	return best
}

// Sweep evaluates all four technologies across the given lengths (metres),
// producing the data behind Fig. 3.
func Sweep(lengths []float64) ([]SweepPoint, error) {
	models := make([]Model, 0, len(tech.Technologies))
	for _, t := range tech.Technologies {
		m, err := NewModel(t)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	pts := make([]SweepPoint, 0, len(lengths))
	for _, L := range lengths {
		if L <= 0 {
			return nil, fmt.Errorf("link: non-positive length %v", L)
		}
		p := SweepPoint{
			LengthM: L,
			CLEAR:   make(map[tech.Technology]float64, len(models)),
			Metrics: make(map[tech.Technology]Metrics, len(models)),
		}
		for _, m := range models {
			met := m.Eval(L)
			p.Metrics[m.Tech()] = met
			p.CLEAR[m.Tech()] = met.CLEAR()
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// Fig3Lengths returns the default logarithmic length grid used for the
// Fig. 3 reproduction: 1 µm to 10 cm.
func Fig3Lengths() []float64 {
	return LogSpace(1*units.Micrometre, 10*units.Centimetre, 51)
}

// LogSpace returns n logarithmically spaced samples over [lo, hi]; lo and hi
// must be positive and n >= 2.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("link: bad LogSpace(%v, %v, %d)", lo, hi, n))
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		f := float64(i) / float64(n-1)
		out[i] = math.Exp(llo + f*(lhi-llo))
	}
	// Pin the endpoints exactly despite float rounding.
	out[0], out[n-1] = lo, hi
	return out
}
