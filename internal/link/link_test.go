package link

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tech"
	"repro/internal/units"
)

func evalAt(t *testing.T, tc tech.Technology, lengthM float64) Metrics {
	t.Helper()
	m, err := NewModel(tc)
	if err != nil {
		t.Fatalf("NewModel(%v): %v", tc, err)
	}
	return m.Eval(lengthM)
}

func TestAllModelsPositiveMetrics(t *testing.T) {
	for _, tc := range tech.Technologies {
		for _, L := range []float64{1 * units.Micrometre, 1 * units.Millimetre, 1 * units.Centimetre} {
			m := evalAt(t, tc, L)
			if m.DataRateBps <= 0 || m.LatencyS <= 0 || m.EnergyPerBitJ <= 0 || m.AreaM2 <= 0 {
				t.Errorf("%v at %v m: non-positive metric %+v", tc, L, m)
			}
			if m.CLEAR() <= 0 {
				t.Errorf("%v at %v m: CLEAR must be positive", tc, L)
			}
		}
	}
}

// TestFig3ShortRangeElectronicWins pins the left side of Fig. 3: electronics
// is the best technology for very short interconnects (logic level and
// intra-processor distances).
func TestFig3ShortRangeElectronicWins(t *testing.T) {
	pts, err := Sweep([]float64{1 * units.Micrometre, 10 * units.Micrometre})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if best := p.Best(); best != tech.Electronic {
			t.Errorf("at %.0f µm best = %v, want Electronic (CLEAR %v)",
				p.LengthM/units.Micrometre, best, p.CLEAR)
		}
	}
}

// TestFig3InterCoreHyPPIWins pins the middle of Fig. 3: at inter-core
// distances (≈ 1 mm and beyond, up to chip scale) HyPPI has the highest
// CLEAR.
func TestFig3InterCoreHyPPIWins(t *testing.T) {
	pts, err := Sweep([]float64{1 * units.Millimetre, 5 * units.Millimetre, 10 * units.Millimetre})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if best := p.Best(); best != tech.HyPPI {
			t.Errorf("at %.1f mm best = %v, want HyPPI (CLEAR %v)",
				p.LengthM/units.Millimetre, best, p.CLEAR)
		}
	}
}

// TestFig3PhotonicBeatsElectronicBeyond20mm pins the paper's remark that
// photonics becomes suitable for lengths beyond 20 mm.
func TestFig3PhotonicBeatsElectronicBeyond20mm(t *testing.T) {
	for _, L := range []float64{20 * units.Millimetre, 50 * units.Millimetre, 100 * units.Millimetre} {
		pm := evalAt(t, tech.Photonic, L).CLEAR()
		em := evalAt(t, tech.Electronic, L).CLEAR()
		if pm <= em {
			t.Errorf("at %.0f mm photonic CLEAR %v <= electronic %v", L/units.Millimetre, pm, em)
		}
	}
}

// TestFig3PlasmonicOhmicCollapse pins the paper's observation that pure
// plasmonics is restricted to a few microns by ohmic loss: its CLEAR falls
// by orders of magnitude between 10 µm and 1 mm, and its laser power
// explodes.
func TestFig3PlasmonicOhmicCollapse(t *testing.T) {
	short := evalAt(t, tech.Plasmonic, 10*units.Micrometre)
	long := evalAt(t, tech.Plasmonic, 1*units.Millimetre)
	if ratio := long.CLEAR() / short.CLEAR(); ratio > 1e-3 {
		t.Errorf("plasmonic CLEAR should collapse >1000x from 10 µm to 1 mm, got ratio %v", ratio)
	}
	if long.LaserPowerW < 100*short.LaserPowerW {
		t.Errorf("plasmonic laser power should explode with distance: %v W vs %v W",
			long.LaserPowerW, short.LaserPowerW)
	}
	// 440 dB/cm over 1 mm is 44 dB of propagation loss alone.
	if long.PathLossDB < 44 {
		t.Errorf("plasmonic path loss at 1 mm = %v dB, want >= 44", long.PathLossDB)
	}
}

// TestHyPPIDominatesPhotonicOnChip: with the same waveguide loss but a far
// faster, smaller modulator, HyPPI should out-CLEAR conventional photonics
// at every on-chip length.
func TestHyPPIDominatesPhotonicOnChip(t *testing.T) {
	for _, L := range Fig3Lengths() {
		h := evalAt(t, tech.HyPPI, L).CLEAR()
		p := evalAt(t, tech.Photonic, L).CLEAR()
		if h <= p {
			t.Errorf("at %v m HyPPI CLEAR %v <= photonic %v", L, h, p)
		}
	}
}

func TestElectronicEnergyGrowsLinearly(t *testing.T) {
	e1 := evalAt(t, tech.Electronic, 1*units.Millimetre).EnergyPerBitJ
	e10 := evalAt(t, tech.Electronic, 10*units.Millimetre).EnergyPerBitJ
	// Fixed costs make the ratio slightly under 10.
	if ratio := e10 / e1; ratio < 8 || ratio > 10 {
		t.Errorf("electronic energy 10 mm / 1 mm = %v, want ~10 (linear wire energy)", ratio)
	}
}

func TestOpticalEnergyNearlyFlatOnChip(t *testing.T) {
	// At 1 dB/cm, HyPPI energy/bit grows only ~26% over 1 mm -> 10 mm.
	e1 := evalAt(t, tech.HyPPI, 1*units.Millimetre).EnergyPerBitJ
	e10 := evalAt(t, tech.HyPPI, 10*units.Millimetre).EnergyPerBitJ
	if ratio := e10 / e1; ratio > 1.5 {
		t.Errorf("HyPPI energy should be nearly distance-independent on-chip, ratio %v", ratio)
	}
}

func TestExtinctionPenalty(t *testing.T) {
	// Infinite ER -> penalty 1; equal on/off (0 dB) -> infinite penalty.
	if p := ExtinctionPenalty(60); p > 1.01 {
		t.Errorf("60 dB ER penalty = %v, want ~1", p)
	}
	if p := ExtinctionPenalty(0); !math.IsInf(p, 1) {
		t.Errorf("0 dB ER penalty = %v, want +Inf", p)
	}
	// 10 dB ER: (10+1)/(10-1) = 1.222...
	if p := ExtinctionPenalty(10); !units.ApproxEqual(p, 11.0/9.0, 1e-9) {
		t.Errorf("10 dB ER penalty = %v, want 11/9", p)
	}
	// Penalty decreases with ER.
	if ExtinctionPenalty(6.18) <= ExtinctionPenalty(12) {
		t.Error("lower extinction ratio must cost a higher penalty")
	}
}

func TestLaserPowerScalesWithRate(t *testing.T) {
	m, err := NewModel(tech.HyPPI)
	if err != nil {
		t.Fatal(err)
	}
	om := m.(*opticalModel)
	p1 := om.LaserPowerW(1*units.Millimetre, 10e9)
	p2 := om.LaserPowerW(1*units.Millimetre, 20e9)
	if !units.ApproxEqual(p2, 2*p1, 1e-9) {
		t.Errorf("laser power should scale linearly with rate: %v vs %v", p1, p2)
	}
}

func TestCLEARUnits(t *testing.T) {
	// 50 Gb/s, 100 ps, 10 fJ/bit, 1000 µm² -> CLEAR = 50/(100*10*1000) = 5e-5.
	m := Metrics{
		DataRateBps:   50e9,
		LatencyS:      100e-12,
		EnergyPerBitJ: 10e-15,
		AreaM2:        1000 * units.MicrometreSq,
	}
	if got := m.CLEAR(); !units.ApproxEqual(got, 5e-5, 1e-9) {
		t.Errorf("CLEAR = %v, want 5e-5", got)
	}
	if (Metrics{}).CLEAR() != 0 {
		t.Error("zero metrics must give zero CLEAR, not NaN")
	}
}

// TestCLEARMonotoneInLengthProperty: for every technology, CLEAR never
// improves as the link gets longer (all three cost terms are non-decreasing
// in length and capability is constant).
func TestCLEARMonotoneInLengthProperty(t *testing.T) {
	models := map[tech.Technology]Model{}
	for _, tc := range tech.Technologies {
		models[tc] = MustModel(tc)
	}
	f := func(rawA, rawB float64) bool {
		// Map arbitrary floats into [1 µm, 10 cm].
		a := 1e-6 + math.Mod(math.Abs(rawA), 0.1-1e-6)
		b := 1e-6 + math.Mod(math.Abs(rawB), 0.1-1e-6)
		if a > b {
			a, b = b, a
		}
		for _, m := range models {
			if m.Eval(a).CLEAR() < m.Eval(b).CLEAR() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSweepRejectsBadLength(t *testing.T) {
	if _, err := Sweep([]float64{0}); err == nil {
		t.Error("zero length should be rejected")
	}
	if _, err := Sweep([]float64{-1}); err == nil {
		t.Error("negative length should be rejected")
	}
}

func TestLogSpace(t *testing.T) {
	got := LogSpace(1e-6, 1e-1, 6)
	if len(got) != 6 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != 1e-6 || got[5] != 1e-1 {
		t.Errorf("endpoints %v, %v", got[0], got[5])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("not increasing at %d: %v <= %v", i, got[i], got[i-1])
		}
		ratio := got[i] / got[i-1]
		if !units.ApproxEqual(ratio, 10, 1e-6) {
			t.Errorf("log spacing broken: ratio %v", ratio)
		}
	}
}

func TestLogSpacePanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{
		{1, 2, 1}, {0, 1, 5}, {2, 1, 5}, {-1, 1, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogSpace(%v,%v,%d) should panic", c.lo, c.hi, c.n)
				}
			}()
			LogSpace(c.lo, c.hi, c.n)
		}()
	}
}

func TestFig3LengthsGrid(t *testing.T) {
	ls := Fig3Lengths()
	if len(ls) != 51 {
		t.Fatalf("grid size %d", len(ls))
	}
	if ls[0] != 1*units.Micrometre || ls[len(ls)-1] != 10*units.Centimetre {
		t.Errorf("grid endpoints %v .. %v", ls[0], ls[len(ls)-1])
	}
}

func TestMustModelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustModel(unknown) should panic")
		}
	}()
	MustModel(tech.Technology(42))
}

func TestHyPPIBareRateIsTableI(t *testing.T) {
	m := evalAt(t, tech.HyPPI, 1*units.Millimetre)
	if m.DataRateBps != 2100e9 {
		t.Errorf("HyPPI bare rate = %v, want 2.1 Tb/s", m.DataRateBps)
	}
}
