package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func buildMesh(t testing.TB, w, h int) (*topology.Network, *routing.Table) {
	t.Helper()
	c := topology.DefaultConfig()
	c.Width, c.Height = w, h
	c.ExpressHops = 3
	c.ExpressTech = tech.HyPPI
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return net, routing.MustBuild(net, routing.MonotoneExpress)
}

// TestSampledPacketPureAndCalibrated: the sampling decision is a pure
// function of (seed, packet, rate), monotone in rate, and hits the target
// rate within sampling noise over a large index range.
func TestSampledPacketPureAndCalibrated(t *testing.T) {
	const n = 200000
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		hits := 0
		for i := int32(0); i < n; i++ {
			a := SampledPacket(7, i, rate)
			if a != SampledPacket(7, i, rate) {
				t.Fatal("sampling decision not reproducible")
			}
			if a && !SampledPacket(7, i, rate+0.3) {
				t.Fatal("sampling not monotone in rate")
			}
			if a {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.01 {
			t.Errorf("rate %v: sampled fraction %v", rate, got)
		}
	}
	if SampledPacket(7, 5, 0) {
		t.Error("rate 0 sampled a packet")
	}
	if !SampledPacket(7, 5, 1) {
		t.Error("rate 1 skipped a packet")
	}
	// Different seeds select different sets.
	same := 0
	for i := int32(0); i < 1000; i++ {
		if SampledPacket(1, i, 0.5) == SampledPacket(2, i, 0.5) {
			same++
		}
	}
	if same > 600 {
		t.Errorf("seeds 1 and 2 agree on %d/1000 packets; sets look correlated", same)
	}
}

// TestProbeWindowMath: after Finish(final), the closed-window count is
// final/W + 1 (every cycle in [0, final] lies in a closed window), and the
// per-window series reconcile with the event stream.
func TestProbeWindowMath(t *testing.T) {
	p := newProbes(100, 512, 4, 2)
	// Events across three windows, with an idle leap over window 1.
	p.inject(0, 5)    // w0
	p.send(0, 2, 30)  // w0: link 2
	p.deliver(1, 40)  // w0
	p.send(1, -1, 60) // w0: ejection
	p.inject(1, 250)  // w2 (w1 closes empty)
	p.send(1, 3, 299) // w2
	p.finish(299)

	if got := p.TotalWindows(); got != 3 {
		t.Fatalf("TotalWindows = %d, want 3", got)
	}
	if got := p.Windows(); got != 3 {
		t.Fatalf("Windows = %d, want 3", got)
	}
	w0, w1, w2 := p.Window(0), p.Window(1), p.Window(2)
	if w0.InjectedFlits() != 1 || w0.EjectedFlits() != 1 || w0.LinkFlits(2) != 1 {
		t.Errorf("w0 series wrong: inj=%d ej=%d link2=%d",
			w0.InjectedFlits(), w0.EjectedFlits(), w0.LinkFlits(2))
	}
	// At w0 close: router 0 injected one flit and sent it (occ 0); router 1
	// received one and ejected it (occ 0).
	if w0.Occupancy(0) != 0 || w0.Occupancy(1) != 0 {
		t.Errorf("w0 occupancy = %d,%d, want 0,0", w0.Occupancy(0), w0.Occupancy(1))
	}
	if w1.InjectedFlits() != 0 || w1.EjectedFlits() != 0 || w1.MeanLinkUtil() != 0 {
		t.Error("idle window w1 not empty")
	}
	if w2.InjectedFlits() != 1 || w2.LinkFlits(3) != 1 {
		t.Errorf("w2 series wrong: inj=%d link3=%d", w2.InjectedFlits(), w2.LinkFlits(3))
	}
	// Router 1 is holding the flit delivered... no: w2's send drained
	// router 1's flit onto link 3 after the inject raised router 1.
	if w2.Occupancy(1) != 0 {
		t.Errorf("w2 occupancy(1) = %d, want 0", w2.Occupancy(1))
	}
	if w2.StartClk() != 200 || w2.EndClk() != 300 {
		t.Errorf("w2 bounds [%d,%d), want [200,300)", w2.StartClk(), w2.EndClk())
	}
	if got, _ := w0.MaxLink(); got != 2 {
		t.Errorf("w0 MaxLink = %d, want 2", got)
	}
}

// TestProbeRingEviction: the ring retains the newest MaxWindows closed
// windows and counts the rest, and the open window never aliases a
// retained one.
func TestProbeRingEviction(t *testing.T) {
	p := newProbes(10, 4, 1, 1)
	// One link flit per window for 10 windows (cycles 0..99).
	for w := int64(0); w < 10; w++ {
		p.send(0, 0, w*10)
		p.occ[0]++ // undo send's decrement: occupancy is not under test
	}
	p.finish(99)
	if got := p.TotalWindows(); got != 10 {
		t.Fatalf("TotalWindows = %d, want 10", got)
	}
	if got := p.Windows(); got != 4 {
		t.Fatalf("Windows = %d, want 4", got)
	}
	if got := p.Evicted(); got != 6 {
		t.Fatalf("Evicted = %d, want 6", got)
	}
	for i := 0; i < 4; i++ {
		w := p.Window(i)
		if w.Index() != int64(6+i) {
			t.Errorf("Window(%d).Index = %d, want %d", i, w.Index(), 6+i)
		}
		if w.LinkFlits(0) != 1 {
			t.Errorf("retained window %d lost its flit (got %d)", i, w.LinkFlits(0))
		}
	}
}

// TestCollectorTracesSampledPackets: end-to-end on a real sim, the span
// set is exactly the SampledPacket-predicted subset, spans are internally
// consistent, and the probe totals reconcile with Stats.
func TestCollectorTracesSampledPackets(t *testing.T) {
	net, tab := buildMesh(t, 8, 8)
	w := noc.BernoulliWorkload{SizeFlits: 1, Cycles: 2000, Seed: 9}
	up, err := traffic.Lookup("uniform")
	if err != nil {
		t.Fatal(err)
	}
	m, err := up.Generate(net, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := w.Generate(net, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SampleRate: 0.25, Seed: 77, ProbeWindowClks: 100}
	col, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := noc.New(net, tab, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	sim.SetObserver(col)
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	col.Finish(st.Cycles)

	tr := col.Trace()
	if tr.TotalPackets != st.PacketsInjected {
		t.Errorf("TotalPackets %d, want %d", tr.TotalPackets, st.PacketsInjected)
	}
	want := 0
	for i := int32(0); i < int32(st.PacketsInjected); i++ {
		if SampledPacket(cfg.Seed, i, cfg.SampleRate) {
			want++
		}
	}
	if int(tr.SampledPackets) != want || len(tr.Spans) != want || tr.Truncated != 0 {
		t.Fatalf("sampled=%d spans=%d truncated=%d, want %d sampled",
			tr.SampledPackets, len(tr.Spans), tr.Truncated, want)
	}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		if !SampledPacket(cfg.Seed, s.Packet, cfg.SampleRate) {
			t.Fatalf("span for unsampled packet %d", s.Packet)
		}
		if s.EjectClk < 0 {
			t.Fatalf("packet %d span unfinished in a drained run", s.Packet)
		}
		if s.LatencyClks() <= 0 {
			t.Errorf("packet %d latency %d", s.Packet, s.LatencyClks())
		}
		if len(s.Hops) == 0 || s.Hops[0].Router != int32(s.Src) {
			t.Fatalf("packet %d hop path does not start at src", s.Packet)
		}
		for _, h := range s.Hops {
			if h.DepartClk < h.ArriveClk {
				t.Errorf("packet %d hop at r%d departs before arrival", s.Packet, h.Router)
			}
		}
		last := s.Hops[len(s.Hops)-1]
		if last.Router != int32(s.Dst) || last.Link != -1 {
			t.Errorf("packet %d last hop r%d link %d, want dst r%d eject",
				s.Packet, last.Router, last.Link, s.Dst)
		}
	}

	p := col.Probes()
	if got, want := p.TotalWindows(), st.Cycles/cfg.ProbeWindowClks+1; got != want {
		t.Errorf("TotalWindows %d, want %d (Cycles=%d)", got, want, st.Cycles)
	}
	var inj, ej, linkSum int64
	for i := 0; i < p.Windows(); i++ {
		w := p.Window(i)
		inj += w.InjectedFlits()
		ej += w.EjectedFlits()
		for l := 0; l < p.NumLinks(); l++ {
			linkSum += w.LinkFlits(l)
		}
	}
	if inj != st.FlitsInjected || ej != st.FlitsEjected {
		t.Errorf("probe totals inj=%d ej=%d, want %d/%d", inj, ej,
			st.FlitsInjected, st.FlitsEjected)
	}
	var kernelLink int64
	for _, f := range st.LinkFlits {
		kernelLink += f
	}
	if linkSum != kernelLink {
		t.Errorf("probe link total %d, want %d", linkSum, kernelLink)
	}
}

// TestMaxSpansTruncation: sampled packets past the cap are counted, not
// recorded, and the recorded prefix stays intact.
func TestMaxSpansTruncation(t *testing.T) {
	net, _ := buildMesh(t, 4, 4)
	col, err := New(Config{SampleRate: 1, MaxSpans: 3}, net)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 10; i++ {
		col.PacketInjected(i, noc.Packet{Src: 0, Dst: 1, SizeFlits: 1}, int64(i))
	}
	tr := col.Trace()
	if tr.SampledPackets != 10 || len(tr.Spans) != 3 || tr.Truncated != 7 {
		t.Fatalf("sampled=%d spans=%d truncated=%d, want 10/3/7",
			tr.SampledPackets, len(tr.Spans), tr.Truncated)
	}
}

// TestWriteChromeTrace: the export is valid JSON in the Chrome trace-event
// object form, with the process metadata and packet/hop events present.
func TestWriteChromeTrace(t *testing.T) {
	tr := &Trace{Spans: []Span{{
		Packet: 3, Src: 0, Dst: 5, SizeFlits: 1,
		ReleaseClk: 10, InjectClk: 10, EjectClk: 25,
		Hops: []HopSpan{
			{Router: 0, Link: 2, ArriveClk: 10, DepartClk: 12},
			{Router: 5, Link: -1, ArriveClk: 18, DepartClk: 24},
		},
	}}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []ProcessTrace{{Name: "cell", Trace: tr}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			TID  int64  `json:"tid"`
			TS   *int64 `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.TS == nil {
				t.Errorf("complete event %q missing ts", e.Name)
			}
			if e.TID != 3 {
				t.Errorf("event %q tid %d, want packet index 3", e.Name, e.TID)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 1 {
		t.Errorf("process_name events %d, want 1", meta)
	}
	if complete != 3 { // packet + 2 hops
		t.Errorf("complete events %d, want 3", complete)
	}
}
