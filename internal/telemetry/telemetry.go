package telemetry

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/runner"
	"repro/internal/topology"
)

// Defaults for Config's zero fields.
const (
	// DefaultMaxSpans bounds a collector's traced-packet memory.
	DefaultMaxSpans = 4096
	// DefaultMaxWindows bounds the probe ring: a long run retains its
	// most recent windows and counts the evicted ones.
	DefaultMaxWindows = 512
)

// Config parameterizes a Collector.
type Config struct {
	// SampleRate is the fraction of packets traced, in [0, 1]. Zero
	// disables tracing entirely.
	SampleRate float64
	// Seed drives the sampling decision: packet i is traced iff
	// SampledPacket(Seed, i, SampleRate). Sweeps must chain it from the
	// cell index (runner.Seed) like every other randomized axis.
	Seed int64
	// MaxSpans caps traced packets (0 = DefaultMaxSpans); sampled packets
	// beyond the cap are counted in Trace.Truncated, not recorded.
	MaxSpans int
	// ProbeWindowClks is the time-series window length in cycles. Zero
	// disables the probes.
	ProbeWindowClks int64
	// MaxWindows caps the probe ring (0 = DefaultMaxWindows).
	MaxWindows int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxSpans <= 0 {
		c.MaxSpans = DefaultMaxSpans
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = DefaultMaxWindows
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SampleRate < 0 || c.SampleRate > 1 {
		return fmt.Errorf("telemetry: sample rate %v outside [0,1]", c.SampleRate)
	}
	if c.ProbeWindowClks < 0 {
		return fmt.Errorf("telemetry: negative probe window %d", c.ProbeWindowClks)
	}
	return nil
}

// SampledPacket reports whether packet index pkt is traced under (seed,
// rate). It is a pure function of its arguments — the SplitMix64 hash of
// the packet index under the seed, compared against the rate threshold —
// so the traced set never depends on event order, worker count or any
// shared RNG. rate ≥ 1 traces everything; rate ≤ 0 nothing.
func SampledPacket(seed int64, pkt int32, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	// Top 53 bits of the hash as a uniform float in [0, 1).
	u := uint64(runner.Seed(seed, int(pkt)))
	return float64(u>>11)/(1<<53) < rate
}

// spanOf sentinel values for packets without a recorded span.
const (
	spanNotSampled = -1 // hashed out of the sample
	spanTruncated  = -2 // sampled, but MaxSpans was already reached
)

// Collector implements noc.Observer, turning the kernel's flit events
// into a Trace (sampled spans) and Probes (windowed series). A collector
// observes exactly one Run: attach with noc.Sim.SetObserver, call Finish
// with the run's final cycle, then read Trace and Probes. It is not safe
// for concurrent use (neither is the Sim it watches).
type Collector struct {
	cfg   Config
	trace Trace
	// spanOf[pkt] is the packet's span index, or a sentinel. Packet
	// indices are dense (injection order), so a slice replaces a map on
	// the per-event path.
	spanOf []int32
	probes *Probes
}

// New builds a collector for one run on net. The probe arenas are sized
// by the network's link and router counts up front, so observing performs
// no per-window allocations.
func New(cfg Config, net *topology.Network) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg}
	c.trace.SampleRate = cfg.SampleRate
	c.trace.Seed = cfg.Seed
	if cfg.ProbeWindowClks > 0 {
		c.probes = newProbes(cfg.ProbeWindowClks, cfg.MaxWindows,
			len(net.Links), net.NumNodes())
	}
	return c, nil
}

// Trace returns the sampled packet spans recorded so far.
func (c *Collector) Trace() *Trace { return &c.trace }

// Probes returns the windowed series, or nil when ProbeWindowClks was 0.
func (c *Collector) Probes() *Probes { return c.probes }

// Finish closes the probe window containing finalCycle (normally the
// run's Stats.Cycles), so every recorded event is inside a closed window:
// after Finish, Probes.Windows covers cycles [0, finalCycle] and the
// closed-window count obeys the window math finalCycle/ProbeWindowClks+1
// (minus ring evictions). Call it once, after Run returns.
func (c *Collector) Finish(finalCycle int64) {
	if c.probes != nil {
		c.probes.finish(finalCycle)
	}
}

// span returns the packet's recorded span, or nil.
func (c *Collector) span(pkt int32) *Span {
	if int(pkt) >= len(c.spanOf) {
		return nil
	}
	if i := c.spanOf[pkt]; i >= 0 {
		return &c.trace.Spans[i]
	}
	return nil
}

// PacketInjected implements noc.Observer: the sampling decision point.
func (c *Collector) PacketInjected(pkt int32, p noc.Packet, cycle int64) {
	c.trace.TotalPackets++
	for int(pkt) >= len(c.spanOf) {
		c.spanOf = append(c.spanOf, spanNotSampled)
	}
	if !SampledPacket(c.cfg.Seed, pkt, c.cfg.SampleRate) {
		c.spanOf[pkt] = spanNotSampled
		return
	}
	c.trace.SampledPackets++
	if len(c.trace.Spans) >= c.cfg.MaxSpans {
		c.trace.Truncated++
		c.spanOf[pkt] = spanTruncated
		return
	}
	c.spanOf[pkt] = int32(len(c.trace.Spans))
	c.trace.Spans = append(c.trace.Spans, Span{
		Packet:     pkt,
		Src:        p.Src,
		Dst:        p.Dst,
		SizeFlits:  p.SizeFlits,
		ReleaseClk: p.Release,
		InjectClk:  cycle,
		EjectClk:   -1,
		// The injection hop: buffered at the source router now, not yet
		// granted the switch.
		Hops: []HopSpan{{Router: int32(p.Src), Link: -1, ArriveClk: cycle, DepartClk: -1}},
	})
}

// FlitInjected implements noc.Observer.
func (c *Collector) FlitInjected(pkt int32, node int32, cycle int64) {
	if c.probes != nil {
		c.probes.inject(node, cycle)
	}
}

// FlitDelivered implements noc.Observer.
func (c *Collector) FlitDelivered(pkt int32, link int32, dst int32, head bool, cycle int64) {
	if c.probes != nil {
		c.probes.deliver(dst, cycle)
	}
	if !head {
		return
	}
	if s := c.span(pkt); s != nil {
		s.Hops = append(s.Hops, HopSpan{Router: dst, Link: -1, ArriveClk: cycle, DepartClk: -1})
	}
}

// FlitSent implements noc.Observer.
func (c *Collector) FlitSent(pkt int32, router int32, link int32, head, tail, dropped bool, cycle int64) {
	if c.probes != nil {
		c.probes.send(router, link, cycle)
	}
	if head || (tail && link < 0) {
		s := c.span(pkt)
		if s == nil {
			return
		}
		if head {
			// Close the hop opened at this router by the head's arrival.
			for i := len(s.Hops) - 1; i >= 0; i-- {
				if s.Hops[i].Router == router && s.Hops[i].DepartClk < 0 {
					s.Hops[i].DepartClk = cycle
					s.Hops[i].Link = link
					break
				}
			}
		}
		if tail && link < 0 {
			// Tail ejection: the flit retires at cycle+1 (the kernel's
			// MakespanClks convention).
			s.EjectClk = cycle + 1
			s.Dropped = dropped
		}
	}
}
