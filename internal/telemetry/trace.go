package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/topology"
)

// HopSpan times one router visit of a traced packet's head flit.
type HopSpan struct {
	// Router is the visited node.
	Router int32
	// Link is the outbound channel the head flit departed on (-1 for the
	// ejection port, or while the flit is still buffered).
	Link int32
	// ArriveClk is the cycle the head flit entered the router's input
	// buffer (injection or link delivery); DepartClk the cycle it won
	// switch allocation (-1 while buffered). Their difference is the
	// pipeline latency plus VC/switch queueing wait at this hop.
	ArriveClk, DepartClk int64
}

// WaitClks returns the hop's buffered time (0 while still buffered).
func (h HopSpan) WaitClks() int64 {
	if h.DepartClk < 0 {
		return 0
	}
	return h.DepartClk - h.ArriveClk
}

// Span is the recorded lifetime of one sampled packet.
type Span struct {
	// Packet is the kernel's packet index (the sampling domain).
	Packet int32
	// Src and Dst are the packet's endpoints; SizeFlits its length.
	Src, Dst  topology.NodeID
	SizeFlits int
	// ReleaseClk is the cycle the packet became ready at the source;
	// InjectClk the cycle its head flit entered the injection VC; EjectClk
	// the cycle its tail flit retired at the destination (-1 if the run
	// ended first). EjectClk − ReleaseClk is the kernel's packet latency.
	ReleaseClk, InjectClk, EjectClk int64
	// Dropped marks a packet whose retransmission budget ran out: its
	// flits reached the destination but were discarded there.
	Dropped bool
	// Hops lists the router visits in path order, starting at Src.
	Hops []HopSpan
}

// LatencyClks returns the packet latency (release to tail retirement), or
// -1 for a span the run cut short.
func (s *Span) LatencyClks() int64 {
	if s.EjectClk < 0 {
		return -1
	}
	return s.EjectClk - s.ReleaseClk
}

// MaxWaitClks returns the longest single-hop buffered time — the span's
// congestion hotspot.
func (s *Span) MaxWaitClks() (router int32, wait int64) {
	router = -1
	for _, h := range s.Hops {
		if w := h.WaitClks(); w > wait {
			wait, router = w, h.Router
		}
	}
	return router, wait
}

// Trace is the sampled span set of one run.
type Trace struct {
	// SampleRate and Seed reproduce the sampling decision (see
	// SampledPacket).
	SampleRate float64
	Seed       int64
	// TotalPackets counts packets injected; SampledPackets those the
	// sampler selected; Truncated the selected ones dropped by MaxSpans
	// (so Spans holds SampledPackets − Truncated spans).
	TotalPackets, SampledPackets, Truncated int64
	// Spans holds the recorded packets in injection-event order.
	Spans []Span
}

// ProcessTrace labels one run's trace for a multi-run export: each run
// becomes one Perfetto "process", its sampled packets the threads.
type ProcessTrace struct {
	// Name labels the process track (e.g. "mesh / uniform @ 0.10").
	Name  string
	Trace *Trace
}

// chromeEvent is one Chrome trace-event object. Timestamps are in the
// format's microsecond unit, 1 cycle = 1 µs, so Perfetto's timeline reads
// directly in cycles.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope Perfetto and chrome://tracing
// load.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace serializes traces as Chrome trace-event JSON (the
// object form with a traceEvents array), loadable in Perfetto or
// chrome://tracing. Each ProcessTrace becomes one process (pid = its
// index, named by a process_name metadata event); each sampled packet one
// thread (tid = packet index) carrying a packet-level complete ("X") event
// over its release-to-ejection lifetime and one per-hop complete event per
// router visit, with the hop's queueing wait and outbound link in args.
func WriteChromeTrace(w io.Writer, procs []ProcessTrace) error {
	var events []chromeEvent
	for pid, proc := range procs {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": proc.Name},
		})
		for i := range proc.Trace.Spans {
			s := &proc.Trace.Spans[i]
			end := s.EjectClk
			unfinished := end < 0
			if unfinished {
				// The run ended mid-flight: close the packet event at its
				// last recorded activity so the track still renders.
				end = s.InjectClk
				for _, h := range s.Hops {
					if h.ArriveClk > end {
						end = h.ArriveClk
					}
					if h.DepartClk > end {
						end = h.DepartClk
					}
				}
			}
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("pkt %d: %d→%d", s.Packet, s.Src, s.Dst),
				Cat:  "packet", Ph: "X",
				TS: s.ReleaseClk, Dur: end - s.ReleaseClk,
				PID: pid, TID: int64(s.Packet),
				Args: map[string]any{
					"size_flits": s.SizeFlits,
					"dropped":    s.Dropped,
					"unfinished": unfinished,
				},
			})
			for _, h := range s.Hops {
				depart := h.DepartClk
				if depart < 0 {
					depart = h.ArriveClk
				}
				args := map[string]any{"wait_clks": h.WaitClks()}
				if h.Link >= 0 {
					args["out_link"] = h.Link
				} else {
					args["out_link"] = "eject"
				}
				events = append(events, chromeEvent{
					Name: fmt.Sprintf("r%d", h.Router),
					Cat:  "hop", Ph: "X",
					TS: h.ArriveClk, Dur: depart - h.ArriveClk,
					PID: pid, TID: int64(s.Packet),
					Args: args,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"clock": "1 µs = 1 simulator cycle"},
	})
}
