// Package telemetry is the simulator's observability layer: sampled
// per-packet tracing and windowed time-series probes, fed by the kernel's
// noc.Observer tap, plus the Chrome trace-event export that makes traces
// loadable in Perfetto.
//
// # Zero cost when disabled
//
// The kernel carries no telemetry state of its own. A Collector attaches
// through noc.Sim.SetObserver; with no observer attached every event site
// reduces to one nil check, and a run's Stats are bit-identical to an
// observed run's (the kernel never reads the observer —
// noc.TestObserverDoesNotPerturbStats and
// core.TestTelemetryObserverOffBitIdentical pin both directions).
//
// # Trace sampling semantics and determinism
//
// Packet tracing is sampled, not exhaustive: packet index i is traced iff
// SampledPacket(seed, i, rate), a pure function of the collector's seed
// and the packet's injection index — no RNG state, no dependence on event
// arrival order, worker count or wall clock. Sweeps chain the per-cell
// seed through runner.Seed(base, cellIndex) exactly like every other
// randomized axis (the CONCURRENCY contract in CHANGES.md), so a traced
// sweep is bit-identical for any worker count. A traced packet records one
// Span: injection, one HopSpan per router visited (buffer arrival, switch
// departure — their difference is queueing plus pipeline wait), and tail
// ejection. Span memory is bounded by Config.MaxSpans; packets sampled
// past the cap are counted in Trace.Truncated rather than silently lost.
// Under an armed fault profile only the successful traversal of a hop is
// visible; retries keep the flit buffered and extend the hop's wait.
//
// # Windowed probes
//
// Probes aggregate the same event stream into fixed ProbeWindowClks
// windows: per-link flit counts (utilization = flits/window), per-router
// buffer occupancy sampled at window close, and injection/ejection flit
// throughput. Windows live in flat ring arenas bounded by
// Config.MaxWindows — a long run keeps its most recent windows and counts
// the evicted ones — and are rendered as CSV, timelines and text heatmaps
// by internal/report. This is the sliding-window traffic census the D3NOC
// reconfiguration direction (see ROADMAP.md) reads as its sensor input.
package telemetry
