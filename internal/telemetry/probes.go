package telemetry

// Probes accumulates the windowed time-series census of one run: per-link
// flit counts, per-router buffer occupancy (sampled at window close) and
// injection/ejection flit throughput, in fixed windows of WindowClks
// cycles. All series live in flat ring arenas sized at construction —
// recording never allocates — and the ring keeps the most recent
// MaxWindows closed windows, counting older ones in Evicted.
//
// Window w covers cycles [w*WindowClks, (w+1)*WindowClks). The window
// holding each event is derived from the event's cycle, so idle stretches
// the kernel leaps over simply close as empty windows (occupancy is
// necessarily zero during a leap: the kernel only skips when nothing is
// buffered or live).
type Probes struct {
	windowClks           int64
	numLinks, numRouters int
	// maxWindows bounds retained *closed* windows; the arenas hold one
	// extra slot so the open window never collides with a retained one.
	maxWindows int
	nslots     int

	// cur is the absolute index of the open window; closed windows
	// [first, first+count) are retained, older ones evicted.
	cur     int64
	first   int64
	count   int
	evicted int64
	done    bool

	// occ mirrors the kernel's per-router buffered-flit counts (events:
	// inject/deliver increment, send decrements).
	occ []int32

	// Ring arenas, indexed slot*stride + i with slot = window % nslots.
	linkFlits []uint32 // per closed/open window × link: channel entries
	occAt     []uint32 // per closed window × router: occupancy at close
	injected  []uint32 // per window: flits injected
	ejected   []uint32 // per window: flits ejected
}

// newProbes sizes the arenas for a network.
func newProbes(windowClks int64, maxWindows, numLinks, numRouters int) *Probes {
	nslots := maxWindows + 1
	return &Probes{
		windowClks: windowClks,
		numLinks:   numLinks,
		numRouters: numRouters,
		maxWindows: maxWindows,
		nslots:     nslots,
		occ:        make([]int32, numRouters),
		linkFlits:  make([]uint32, nslots*numLinks),
		occAt:      make([]uint32, nslots*numRouters),
		injected:   make([]uint32, nslots),
		ejected:    make([]uint32, nslots),
	}
}

// slot maps an absolute window index onto its ring slot.
func (p *Probes) slot(w int64) int { return int(w % int64(p.nslots)) }

// advance closes windows until the one holding cycle is open.
func (p *Probes) advance(cycle int64) {
	for to := cycle / p.windowClks; p.cur < to; {
		p.closeCur()
	}
}

// closeCur snapshots the open window's occupancy, retains it, and opens
// the next window (evicting the oldest retained one at the ring bound).
func (p *Probes) closeCur() {
	base := p.slot(p.cur) * p.numRouters
	for r, v := range p.occ {
		p.occAt[base+r] = uint32(v)
	}
	p.count++
	p.cur++
	if p.count > p.maxWindows {
		p.first++
		p.count--
		p.evicted++
	}
	// Zero the new open window's slot.
	s := p.slot(p.cur)
	clear(p.linkFlits[s*p.numLinks : (s+1)*p.numLinks])
	p.injected[s] = 0
	p.ejected[s] = 0
}

// finish closes through the window holding finalCycle.
func (p *Probes) finish(finalCycle int64) {
	if p.done {
		return
	}
	p.advance(finalCycle)
	p.closeCur()
	p.done = true
}

// inject records one flit entering node's injection VC.
func (p *Probes) inject(node int32, cycle int64) {
	p.advance(cycle)
	p.injected[p.slot(p.cur)]++
	p.occ[node]++
}

// deliver records one flit buffered at router dst off a channel.
func (p *Probes) deliver(dst int32, cycle int64) {
	p.advance(cycle)
	p.occ[dst]++
}

// send records one flit leaving a router: onto channel link, or ejected
// (link < 0).
func (p *Probes) send(router, link int32, cycle int64) {
	p.advance(cycle)
	p.occ[router]--
	s := p.slot(p.cur)
	if link >= 0 {
		p.linkFlits[s*p.numLinks+int(link)]++
	} else {
		p.ejected[s]++
	}
}

// WindowClks returns the window length in cycles.
func (p *Probes) WindowClks() int64 { return p.windowClks }

// NumLinks returns the per-window link-series width.
func (p *Probes) NumLinks() int { return p.numLinks }

// NumRouters returns the per-window occupancy-series width.
func (p *Probes) NumRouters() int { return p.numRouters }

// Windows returns the retained closed-window count (after Finish:
// min(TotalWindows, MaxWindows)).
func (p *Probes) Windows() int { return p.count }

// TotalWindows returns how many windows ever closed, evicted included.
func (p *Probes) TotalWindows() int64 { return p.first + int64(p.count) }

// Evicted returns the closed windows dropped by the ring bound.
func (p *Probes) Evicted() int64 { return p.evicted }

// Window returns the i-th retained closed window (0 = oldest retained).
func (p *Probes) Window(i int) WindowView {
	if i < 0 || i >= p.count {
		panic("telemetry: window index out of range")
	}
	abs := p.first + int64(i)
	return WindowView{p: p, abs: abs, slot: p.slot(abs)}
}

// WindowView reads one closed window's series.
type WindowView struct {
	p    *Probes
	abs  int64
	slot int
}

// Index returns the window's absolute index (window 0 starts at cycle 0).
func (w WindowView) Index() int64 { return w.abs }

// StartClk and EndClk bound the window's half-open cycle range.
func (w WindowView) StartClk() int64 { return w.abs * w.p.windowClks }

// EndClk is the exclusive upper bound of the window's cycle range.
func (w WindowView) EndClk() int64 { return (w.abs + 1) * w.p.windowClks }

// InjectedFlits returns flits injected during the window.
func (w WindowView) InjectedFlits() int64 { return int64(w.p.injected[w.slot]) }

// EjectedFlits returns flits ejected during the window.
func (w WindowView) EjectedFlits() int64 { return int64(w.p.ejected[w.slot]) }

// LinkFlits returns channel l's flit entries during the window.
func (w WindowView) LinkFlits(l int) int64 {
	return int64(w.p.linkFlits[w.slot*w.p.numLinks+l])
}

// LinkUtil returns channel l's utilization (flits per cycle, ≤ 1 for
// full windows since a channel admits one flit per cycle).
func (w WindowView) LinkUtil(l int) float64 {
	return float64(w.LinkFlits(l)) / float64(w.p.windowClks)
}

// Occupancy returns router r's buffered-flit count at window close.
func (w WindowView) Occupancy(r int) int64 {
	return int64(w.p.occAt[w.slot*w.p.numRouters+r])
}

// MaxLink returns the busiest channel of the window and its utilization.
func (w WindowView) MaxLink() (link int, util float64) {
	var peak int64
	for l := 0; l < w.p.numLinks; l++ {
		if f := w.LinkFlits(l); f > peak {
			peak, link = f, l
		}
	}
	return link, float64(peak) / float64(w.p.windowClks)
}

// MeanLinkUtil averages utilization over every channel.
func (w WindowView) MeanLinkUtil() float64 {
	if w.p.numLinks == 0 {
		return 0
	}
	var sum int64
	base := w.slot * w.p.numLinks
	for _, f := range w.p.linkFlits[base : base+w.p.numLinks] {
		sum += int64(f)
	}
	return float64(sum) / float64(w.p.windowClks) / float64(w.p.numLinks)
}

// MaxOccupancy returns the fullest router at window close and its
// buffered-flit count.
func (w WindowView) MaxOccupancy() (router int, occ int64) {
	for r := 0; r < w.p.numRouters; r++ {
		if o := w.Occupancy(r); o > occ {
			occ, router = o, r
		}
	}
	return router, occ
}

// MeanOccupancy averages window-close occupancy over routers.
func (w WindowView) MeanOccupancy() float64 {
	if w.p.numRouters == 0 {
		return 0
	}
	var sum int64
	base := w.slot * w.p.numRouters
	for _, o := range w.p.occAt[base : base+w.p.numRouters] {
		sum += int64(o)
	}
	return float64(sum) / float64(w.p.numRouters)
}
