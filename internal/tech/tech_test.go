package tech

import (
	"errors"
	"strings"
	"testing"
)

// TestTableIParameters pins the transcription of Table I: any edit to the
// catalogue that drifts from the paper fails here.
func TestTableIParameters(t *testing.T) {
	p := PhotonicTableI()
	if p.Laser.EfficiencyPct != 25 || p.Laser.AreaUM2 != 200 {
		t.Errorf("photonic laser row: %+v", p.Laser)
	}
	if p.Modulator.BareSpeedGbps != 25 || p.Modulator.EnergyFJPerBit != 2.77 ||
		p.Modulator.InsertionLossDB != 1.02 || p.Modulator.ExtinctionRatioDB != 6.18 ||
		p.Modulator.AreaUM2 != 100 || p.Modulator.CapacitanceFF != 16 {
		t.Errorf("photonic modulator row: %+v", p.Modulator)
	}
	if p.Detector.SpeedGbps != 40 || p.Detector.ResponsivityAPerW != 0.8 || p.Detector.AreaUM2 != 100 {
		t.Errorf("photonic detector row: %+v", p.Detector)
	}
	if p.Waveguide.PropagationLossDBPerCM != 1 || p.Waveguide.PitchUM != 4 || p.Waveguide.WidthUM != 0.35 {
		t.Errorf("photonic waveguide row: %+v", p.Waveguide)
	}

	s := PlasmonicTableI()
	if s.Laser.EfficiencyPct != 20 || s.Laser.AreaUM2 != 0.003 {
		t.Errorf("plasmonic laser row: %+v", s.Laser)
	}
	if s.Modulator.BareSpeedGbps != 59 || s.Modulator.SystemSpeedGbps != 50 ||
		s.Modulator.EnergyFJPerBit != 6.8 || s.Modulator.InsertionLossDB != 1.1 ||
		s.Modulator.ExtinctionRatioDB != 17 || s.Modulator.AreaUM2 != 4 || s.Modulator.CapacitanceFF != 14 {
		t.Errorf("plasmonic modulator row: %+v", s.Modulator)
	}
	if s.Waveguide.PropagationLossDBPerCM != 440 || s.Waveguide.CouplingLossDB != 0.63 ||
		s.Waveguide.PitchUM != 0.5 || s.Waveguide.WidthUM != 0.1 {
		t.Errorf("plasmonic waveguide row: %+v", s.Waveguide)
	}

	h := HyPPITableI()
	if h.Laser.EfficiencyPct != 20 || h.Laser.AreaUM2 != 0.003 {
		t.Errorf("hyppi laser row: %+v", h.Laser)
	}
	if h.Modulator.BareSpeedGbps != 2100 || h.Modulator.SystemSpeedGbps != 50 ||
		h.Modulator.EnergyFJPerBit != 4.25 || h.Modulator.InsertionLossDB != 0.6 ||
		h.Modulator.ExtinctionRatioDB != 12 || h.Modulator.AreaUM2 != 1 || h.Modulator.CapacitanceFF != 0.94 {
		t.Errorf("hyppi modulator row: %+v", h.Modulator)
	}
	if h.Detector.SpeedGbps != 50 || h.Detector.IntrinsicSpeedGbps != 700 ||
		h.Detector.EnergyFJPerBit != 0.14 || h.Detector.ResponsivityAPerW != 0.1 || h.Detector.AreaUM2 != 4 {
		t.Errorf("hyppi detector row: %+v", h.Detector)
	}
	if h.Waveguide.PropagationLossDBPerCM != 1 || h.Waveguide.CouplingLossDB != 1 ||
		h.Waveguide.PitchUM != 1 || h.Waveguide.WidthUM != 0.35 {
		t.Errorf("hyppi waveguide row: %+v", h.Waveguide)
	}
}

func TestAllCatalogueEntriesValidate(t *testing.T) {
	for _, tc := range OpticalTechnologies {
		p, err := Optical(tc)
		if err != nil {
			t.Fatalf("Optical(%v): %v", tc, err)
		}
		if p.Tech != tc {
			t.Errorf("Optical(%v) tagged %v", tc, p.Tech)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", tc, err)
		}
	}
	if err := ElectronicITRS14().Validate(); err != nil {
		t.Errorf("Validate(Electronic): %v", err)
	}
}

func TestOpticalRejectsElectronic(t *testing.T) {
	if _, err := Optical(Electronic); err == nil {
		t.Error("Optical(Electronic) should fail")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*OpticalParams)
	}{
		{"zero efficiency", func(p *OpticalParams) { p.Laser.EfficiencyPct = 0 }},
		{"efficiency over 100", func(p *OpticalParams) { p.Laser.EfficiencyPct = 120 }},
		{"negative laser area", func(p *OpticalParams) { p.Laser.AreaUM2 = -1 }},
		{"system above bare", func(p *OpticalParams) { p.Modulator.SystemSpeedGbps = p.Modulator.BareSpeedGbps * 2 }},
		{"negative modulation energy", func(p *OpticalParams) { p.Modulator.EnergyFJPerBit = -1 }},
		{"negative insertion loss", func(p *OpticalParams) { p.Modulator.InsertionLossDB = -0.5 }},
		{"zero extinction", func(p *OpticalParams) { p.Modulator.ExtinctionRatioDB = 0 }},
		{"zero responsivity", func(p *OpticalParams) { p.Detector.ResponsivityAPerW = 0 }},
		{"detector above intrinsic", func(p *OpticalParams) { p.Detector.SpeedGbps = p.Detector.IntrinsicSpeedGbps + 1 }},
		{"width above pitch", func(p *OpticalParams) { p.Waveguide.WidthUM = p.Waveguide.PitchUM * 2 }},
		{"group index below 1", func(p *OpticalParams) { p.Waveguide.GroupIndex = 0.5 }},
		{"zero sensitivity", func(p *OpticalParams) { p.DetectorSensitivityW = 0 }},
	}
	for _, m := range mutations {
		p := HyPPITableI()
		m.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid params", m.name)
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error not wrapped as ErrInvalid: %v", m.name, err)
		}
	}
}

func TestElectronicValidateCatchesViolations(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*ElectronicParams)
	}{
		{"zero width", func(p *ElectronicParams) { p.WireWidthUM = 0 }},
		{"zero rate", func(p *ElectronicParams) { p.PerWireRateGbps = 0 }},
		{"zero slope energy", func(p *ElectronicParams) { p.EnergyFJPerBitPerMM = 0 }},
		{"zero delay slope", func(p *ElectronicParams) { p.DelayPSPerMM = 0 }},
		{"negative leakage", func(p *ElectronicParams) { p.StaticPowerUWPerMM = -1 }},
	}
	for _, m := range mutations {
		p := ElectronicITRS14()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", m.name)
		}
	}
}

func TestTechnologyString(t *testing.T) {
	want := map[Technology]string{
		Electronic: "Electronic",
		Photonic:   "Photonic",
		Plasmonic:  "Plasmonic",
		HyPPI:      "HyPPI",
	}
	for tc, s := range want {
		if tc.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(tc), tc.String(), s)
		}
	}
	if got := Technology(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown technology should include its number, got %q", got)
	}
}

func TestParseTechnologyRoundTrip(t *testing.T) {
	for _, tc := range Technologies {
		got, err := ParseTechnology(tc.String())
		if err != nil || got != tc {
			t.Errorf("ParseTechnology(%q) = %v, %v", tc.String(), got, err)
		}
	}
	if _, err := ParseTechnology("graphene"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestIsOptical(t *testing.T) {
	if Electronic.IsOptical() {
		t.Error("electronic is not optical")
	}
	for _, tc := range OpticalTechnologies {
		if !tc.IsOptical() {
			t.Errorf("%v should be optical", tc)
		}
	}
}

// TestLinkLatencyClks pins the Table II link latencies: 1 clk electronic,
// 2 clks for every optical option.
func TestLinkLatencyClks(t *testing.T) {
	if LinkLatencyClks(Electronic) != 1 {
		t.Error("electronic link must be 1 clk")
	}
	for _, tc := range OpticalTechnologies {
		if LinkLatencyClks(tc) != 2 {
			t.Errorf("%v link must be 2 clks", tc)
		}
	}
}
