package tech

// Device variants from the companion papers (PAPERS.md). These are the
// physical parameter snapshots the dsent variant registry derives its
// alternative cost/BER models from; like the Table I transcriptions above,
// values not stated outright in the papers are modeled estimates, flagged
// per field.

// MODetectorParams describes the MODetector (arXiv:1712.01364): a single
// hybrid photonic-plasmonic device that works as the E-O modulator under
// drive bias and as the O-E detector under read-out bias, halving the
// active device count per link end. The compromise is a lossier optical
// path and far weaker detection responsivity than a dedicated
// photodetector — the link's laser must make up the difference — and a
// nonzero residual error floor at speed.
type MODetectorParams struct {
	// BareSpeedGbps is the dual-function device bandwidth.
	BareSpeedGbps float64
	// ModulationEnergyFJPerBit is the E-O drive energy (fJ/bit); the ITO
	// gating capacitance is below the HyPPI MOS modulator's.
	ModulationEnergyFJPerBit float64
	// InsertionLossDB is the optical loss through the device — higher
	// than HyPPI's 0.6 dB because one structure serves both functions.
	InsertionLossDB float64
	// ExtinctionRatioDB is the on/off contrast in modulator mode.
	ExtinctionRatioDB float64
	// AreaUM2 is the device footprint.
	AreaUM2 float64
	// DetectionResponsivityAPerW converts received optical power to
	// photocurrent in detector mode; ITO absorption read-out is much
	// weaker than a germanium photodiode (modeled estimate).
	DetectionResponsivityAPerW float64
	// FlitErrorProb is the nominal probability a 64-bit flit traversal is
	// corrupted at the reduced detection margin, before thermal drift
	// (modeled estimate from the sensitivity penalty).
	FlitErrorProb float64
}

// MODetectorTable returns the MODetector device snapshot.
func MODetectorTable() MODetectorParams {
	return MODetectorParams{
		BareSpeedGbps:              115,
		ModulationEnergyFJPerBit:   1.8,
		InsertionLossDB:            2.2,
		ExtinctionRatioDB:          8,
		AreaUM2:                    2,
		DetectionResponsivityAPerW: 0.06,
		FlitErrorProb:              2e-4,
	}
}

// HybridRouter5x5Params describes the non-blocking broadband 5×5 hybrid
// photonic-plasmonic router (arXiv:1708.07159): a photonic routing fabric
// with plasmonic switching elements that lets through-traffic stay in the
// optical domain instead of paying the full electronic buffer/crossbar
// pass at every hop.
type HybridRouter5x5Params struct {
	// Ports is the router radix the design targets.
	Ports int
	// InsertionLossDB is the worst-path optical loss through the router,
	// added to the loss budget of every link it terminates.
	InsertionLossDB float64
	// CrosstalkDB is the worst-case inter-port crosstalk suppression
	// (negative dB; sets the error floor of the optical path).
	CrosstalkDB float64
	// AreaUM2 is the routing-fabric footprint (modeled estimate).
	AreaUM2 float64
	// SwitchFractionOfXbar is the fraction of the electronic crossbar +
	// arbitration energy still spent per flit when the optical fabric
	// carries the through-traffic (modeled estimate: allocation stays
	// electronic, traversal goes optical).
	SwitchFractionOfXbar float64
	// FlitErrorProb is the nominal per-traversal corruption probability
	// from residual crosstalk (modeled estimate).
	FlitErrorProb float64
}

// HybridRouter5x5Table returns the 5×5 hybrid router snapshot.
func HybridRouter5x5Table() HybridRouter5x5Params {
	return HybridRouter5x5Params{
		Ports:                5,
		InsertionLossDB:      1.0,
		CrosstalkDB:          -20,
		AreaUM2:              600,
		SwitchFractionOfXbar: 0.7,
		FlitErrorProb:        1e-4,
	}
}
