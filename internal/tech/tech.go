// Package tech is the technology catalogue for the HyPPI NoC study.
//
// It transcribes Table I of the paper (photonic, plasmonic and HyPPI device
// parameters) and the ITRS-style 14 nm electronic wire parameters used for
// the bare link-level comparison, and defines the Technology enumeration
// every other package keys on.
//
// Two data-rate figures exist per optical technology: the *bare* modulator
// speed (what the device supports, e.g. 2.1 Tb/s for the HyPPI modulator)
// and the *system* rate capped by driver/SERDES electronics (50 Gb/s in the
// paper's NoC experiments). Both are carried explicitly so the link-level
// and system-level evaluations cannot be accidentally mixed.
package tech

import (
	"errors"
	"fmt"
)

// Technology identifies one of the four interconnect technologies the paper
// explores.
type Technology int

const (
	// Electronic is a repeated CMOS wire (ITRS 14 nm at link level,
	// DSENT 11 nm at system level).
	Electronic Technology = iota
	// Photonic is conventional silicon nanophotonics with microring
	// modulators and ring drop filters.
	Photonic
	// Plasmonic is a pure surface-plasmon link on a metal waveguide.
	Plasmonic
	// HyPPI combines a plasmonic MOS modulator with a low-loss photonic
	// SOI waveguide (the paper's contribution).
	HyPPI
)

// NumTechnologies is the number of defined technologies; Technology values
// are contiguous in [0, NumTechnologies), so fixed-size per-technology
// counter arrays (see noc.Activity) can be indexed by Technology directly.
const NumTechnologies = 4

// Technologies lists all four options in presentation order.
var Technologies = []Technology{Electronic, Photonic, Plasmonic, HyPPI}

// OpticalTechnologies lists only the light-based options (Table I columns).
var OpticalTechnologies = []Technology{Photonic, Plasmonic, HyPPI}

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case Electronic:
		return "Electronic"
	case Photonic:
		return "Photonic"
	case Plasmonic:
		return "Plasmonic"
	case HyPPI:
		return "HyPPI"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// IsOptical reports whether the technology carries data as light and hence
// needs E-O / O-E conversion at router boundaries.
func (t Technology) IsOptical() bool {
	return t == Photonic || t == Plasmonic || t == HyPPI
}

// ParseTechnology converts a case-sensitive name (as printed by String) into
// a Technology.
func ParseTechnology(s string) (Technology, error) {
	switch s {
	case "Electronic", "electronic", "E":
		return Electronic, nil
	case "Photonic", "photonic", "P":
		return Photonic, nil
	case "Plasmonic", "plasmonic":
		return Plasmonic, nil
	case "HyPPI", "hyppi", "H":
		return HyPPI, nil
	}
	return 0, fmt.Errorf("tech: unknown technology %q", s)
}

// Laser describes the on-chip laser source of an optical link (Table I,
// "Laser" rows).
type Laser struct {
	// EfficiencyPct is the wall-plug efficiency in percent.
	EfficiencyPct float64
	// AreaUM2 is the on-chip footprint in µm².
	AreaUM2 float64
}

// Modulator describes the E-O conversion device (Table I, "Modulator" rows).
type Modulator struct {
	// BareSpeedGbps is the speed the device itself supports (Gb/s).
	BareSpeedGbps float64
	// SystemSpeedGbps is the speed usable once driver/SERDES electronics
	// are accounted for — the parenthesized values in Table I (Gb/s).
	SystemSpeedGbps float64
	// EnergyFJPerBit is the bare-link modulation energy (fJ/bit). At the
	// system level this is recomputed by the dsent package.
	EnergyFJPerBit float64
	// InsertionLossDB is the optical loss through the modulator (dB).
	InsertionLossDB float64
	// ExtinctionRatioDB is the on/off optical contrast (dB).
	ExtinctionRatioDB float64
	// AreaUM2 is the device footprint in µm².
	AreaUM2 float64
	// CapacitanceFF is the electrical device capacitance (fF).
	CapacitanceFF float64
	// BiasVoltageMinV and BiasVoltageMaxV bound the drive voltage (V).
	BiasVoltageMinV, BiasVoltageMaxV float64
}

// Photodetector describes the O-E conversion device (Table I,
// "Photodetector" rows).
type Photodetector struct {
	// SpeedGbps is the detector bandwidth in Gb/s (the first of the
	// "50/700"-style pairs in Table I; the second is the intrinsic device
	// limit kept in IntrinsicSpeedGbps).
	SpeedGbps          float64
	IntrinsicSpeedGbps float64
	// EnergyFJPerBit is the receiver energy (fJ/bit) at bare-link level.
	EnergyFJPerBit float64
	// ResponsivityAPerW converts received optical power to photocurrent.
	ResponsivityAPerW float64
	// AreaUM2 is the device footprint in µm².
	AreaUM2 float64
}

// Waveguide describes the passive propagation medium (Table I, "Waveguide"
// rows).
type Waveguide struct {
	// PropagationLossDBPerCM is the distance-proportional loss (dB/cm).
	PropagationLossDBPerCM float64
	// CouplingLossDB is the fixed loss coupling into/out of the guide
	// (per link, dB). Zero for conventional photonics in Table I.
	CouplingLossDB float64
	// PitchUM is the centre-to-centre spacing needed between adjacent
	// waveguides (µm); it dominates link area.
	PitchUM float64
	// WidthUM is the guide width (µm).
	WidthUM float64
	// GroupIndex sets the propagation velocity c/GroupIndex.
	GroupIndex float64
}

// OpticalParams bundles the four device sections of Table I for one optical
// technology.
type OpticalParams struct {
	Tech      Technology
	Laser     Laser
	Modulator Modulator
	Detector  Photodetector
	Waveguide Waveguide
	// DetectorSensitivityW is the received optical power needed at a
	// 10 Gb/s reference rate for the target BER; scaled linearly with
	// data rate by the link model. Derived, not from Table I.
	DetectorSensitivityW float64
}

// ElectronicParams describes a repeated on-chip wire at the ITRS 14 nm node,
// used for the bare link comparison (the paper borrows these from the ITRS
// roadmap / Chen et al.).
type ElectronicParams struct {
	// WireWidthUM and WireSpacingUM give the per-wire pitch; the paper
	// quotes 160 nm width with 160 nm spacing so a 64-bit link is ≈20 µm
	// wide.
	WireWidthUM, WireSpacingUM float64
	// PerWireRateGbps is the signalling rate of one wire (the NoC runs
	// 64 wires at 0.78125 GHz; a serialized point-to-point wire can be
	// driven faster and the bare comparison uses this value).
	PerWireRateGbps float64
	// EnergyFJPerBitPerMM is the repeated-wire dynamic energy slope.
	EnergyFJPerBitPerMM float64
	// FixedEnergyFJPerBit is the driver/receiver energy independent of
	// length.
	FixedEnergyFJPerBit float64
	// DelayPSPerMM is the repeated-wire latency slope.
	DelayPSPerMM float64
	// FixedDelayPS is the TX/RX latency independent of length.
	FixedDelayPS float64
	// RepeaterAreaUM2PerMM is silicon area spent on repeaters per wire
	// per mm.
	RepeaterAreaUM2PerMM float64
	// StaticPowerUWPerMM is repeater leakage per wire per mm (µW/mm).
	StaticPowerUWPerMM float64
}

// PhotonicTableI returns the "Photonic" column of Table I.
func PhotonicTableI() OpticalParams {
	return OpticalParams{
		Tech: Photonic,
		Laser: Laser{
			EfficiencyPct: 25,
			AreaUM2:       200,
		},
		Modulator: Modulator{
			BareSpeedGbps:     25,
			SystemSpeedGbps:   25,
			EnergyFJPerBit:    2.77,
			InsertionLossDB:   1.02,
			ExtinctionRatioDB: 6.18,
			AreaUM2:           100,
			CapacitanceFF:     16,
			BiasVoltageMinV:   -2.2,
			BiasVoltageMaxV:   0.4,
		},
		Detector: Photodetector{
			SpeedGbps:          40,
			IntrinsicSpeedGbps: 40,
			EnergyFJPerBit:     0,
			ResponsivityAPerW:  0.8,
			AreaUM2:            100,
		},
		Waveguide: Waveguide{
			PropagationLossDBPerCM: 1,
			CouplingLossDB:         0,
			PitchUM:                4,
			WidthUM:                0.35,
			GroupIndex:             4.2,
		},
		DetectorSensitivityW: defaultSensitivityW,
	}
}

// PlasmonicTableI returns the "Plasmonic" column of Table I.
func PlasmonicTableI() OpticalParams {
	return OpticalParams{
		Tech: Plasmonic,
		Laser: Laser{
			EfficiencyPct: 20,
			AreaUM2:       0.003,
		},
		Modulator: Modulator{
			BareSpeedGbps:     59,
			SystemSpeedGbps:   50,
			EnergyFJPerBit:    6.8,
			InsertionLossDB:   1.1,
			ExtinctionRatioDB: 17,
			AreaUM2:           4,
			CapacitanceFF:     14,
			BiasVoltageMinV:   0.7,
			BiasVoltageMaxV:   0.7,
		},
		Detector: Photodetector{
			SpeedGbps:          50,
			IntrinsicSpeedGbps: 700,
			EnergyFJPerBit:     0.14,
			ResponsivityAPerW:  0.1,
			AreaUM2:            4,
		},
		Waveguide: Waveguide{
			PropagationLossDBPerCM: 440,
			CouplingLossDB:         0.63,
			PitchUM:                0.5,
			WidthUM:                0.1,
			GroupIndex:             2.5,
		},
		DetectorSensitivityW: defaultSensitivityW,
	}
}

// HyPPITableI returns the "HyPPI" column of Table I.
func HyPPITableI() OpticalParams {
	return OpticalParams{
		Tech: HyPPI,
		Laser: Laser{
			EfficiencyPct: 20,
			AreaUM2:       0.003,
		},
		Modulator: Modulator{
			BareSpeedGbps:     2100,
			SystemSpeedGbps:   50,
			EnergyFJPerBit:    4.25,
			InsertionLossDB:   0.6,
			ExtinctionRatioDB: 12,
			AreaUM2:           1,
			CapacitanceFF:     0.94,
			BiasVoltageMinV:   2,
			BiasVoltageMaxV:   3,
		},
		Detector: Photodetector{
			SpeedGbps:          50,
			IntrinsicSpeedGbps: 700,
			EnergyFJPerBit:     0.14,
			ResponsivityAPerW:  0.1,
			AreaUM2:            4,
		},
		Waveguide: Waveguide{
			// HyPPI propagates on a conventional photonic SOI guide.
			PropagationLossDBPerCM: 1,
			CouplingLossDB:         1,
			PitchUM:                1,
			WidthUM:                0.35,
			GroupIndex:             4.2,
		},
		DetectorSensitivityW: defaultSensitivityW,
	}
}

// defaultSensitivityW is the required received optical power at the 10 Gb/s
// reference rate (-28 dBm), an aggressive low-noise on-chip receiver; the
// link model scales it linearly with data rate. This single constant is the
// calibration knob that sizes every laser in the repository; it is chosen so
// the system-level static power of HyPPI and photonic express links lands on
// the paper's Table IV values (≈ 94 µW and ≈ 9.7 mW per link respectively).
const defaultSensitivityW = 1.6e-6

// ElectronicITRS14 returns the repeated-wire parameters for the bare link
// comparison at the ITRS 14 nm node: a low-swing repeated wire driven at the
// rate a short serial on-chip link sustains. The fixed driver cost is tiny,
// so electronics dominates at logic-level distances; energy, delay and
// repeater area all grow linearly with length, which is what hands the
// mid-range to HyPPI (crossover between 100 µm and 1 mm) and the long range
// (≥ ~10-20 mm) to photonics in Fig. 3.
func ElectronicITRS14() ElectronicParams {
	return ElectronicParams{
		WireWidthUM:          0.16,
		WireSpacingUM:        0.16,
		PerWireRateGbps:      50,
		EnergyFJPerBitPerMM:  30,
		FixedEnergyFJPerBit:  1,
		DelayPSPerMM:         50,
		FixedDelayPS:         5,
		RepeaterAreaUM2PerMM: 6,
		StaticPowerUWPerMM:   1.5,
	}
}

// Optical returns the Table I parameter set for an optical technology.
func Optical(t Technology) (OpticalParams, error) {
	switch t {
	case Photonic:
		return PhotonicTableI(), nil
	case Plasmonic:
		return PlasmonicTableI(), nil
	case HyPPI:
		return HyPPITableI(), nil
	}
	return OpticalParams{}, fmt.Errorf("tech: %v has no optical parameters", t)
}

// ErrInvalid is wrapped by Validate for all parameter violations.
var ErrInvalid = errors.New("tech: invalid parameters")

// Validate sanity-checks an optical parameter set: everything physical must
// be positive (or zero where Table I says so) and the system rate must not
// exceed the bare device rate.
func (p OpticalParams) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrInvalid, p.Tech, fmt.Sprintf(format, args...))
	}
	if p.Laser.EfficiencyPct <= 0 || p.Laser.EfficiencyPct > 100 {
		return fail("laser efficiency %v%% out of (0,100]", p.Laser.EfficiencyPct)
	}
	if p.Laser.AreaUM2 <= 0 {
		return fail("laser area %v must be positive", p.Laser.AreaUM2)
	}
	if p.Modulator.BareSpeedGbps <= 0 || p.Modulator.SystemSpeedGbps <= 0 {
		return fail("modulator speeds must be positive")
	}
	if p.Modulator.SystemSpeedGbps > p.Modulator.BareSpeedGbps {
		return fail("system speed %v exceeds bare device speed %v",
			p.Modulator.SystemSpeedGbps, p.Modulator.BareSpeedGbps)
	}
	if p.Modulator.EnergyFJPerBit < 0 || p.Detector.EnergyFJPerBit < 0 {
		return fail("energies must be non-negative")
	}
	if p.Modulator.InsertionLossDB < 0 || p.Waveguide.PropagationLossDBPerCM < 0 ||
		p.Waveguide.CouplingLossDB < 0 {
		return fail("losses must be non-negative")
	}
	if p.Modulator.ExtinctionRatioDB <= 0 {
		return fail("extinction ratio must be positive")
	}
	if p.Detector.ResponsivityAPerW <= 0 {
		return fail("responsivity must be positive")
	}
	if p.Detector.SpeedGbps <= 0 || p.Detector.SpeedGbps > p.Detector.IntrinsicSpeedGbps {
		return fail("detector speed %v out of (0, %v]", p.Detector.SpeedGbps, p.Detector.IntrinsicSpeedGbps)
	}
	if p.Waveguide.PitchUM <= 0 || p.Waveguide.WidthUM <= 0 || p.Waveguide.WidthUM > p.Waveguide.PitchUM {
		return fail("waveguide width %v / pitch %v inconsistent", p.Waveguide.WidthUM, p.Waveguide.PitchUM)
	}
	if p.Waveguide.GroupIndex < 1 {
		return fail("group index %v below vacuum", p.Waveguide.GroupIndex)
	}
	if p.DetectorSensitivityW <= 0 {
		return fail("detector sensitivity must be positive")
	}
	return nil
}

// Validate sanity-checks the electronic wire parameters.
func (p ElectronicParams) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: Electronic: %s", ErrInvalid, fmt.Sprintf(format, args...))
	}
	if p.WireWidthUM <= 0 || p.WireSpacingUM < 0 {
		return fail("wire geometry must be positive")
	}
	if p.PerWireRateGbps <= 0 {
		return fail("wire rate must be positive")
	}
	if p.EnergyFJPerBitPerMM <= 0 || p.FixedEnergyFJPerBit < 0 {
		return fail("energies invalid")
	}
	if p.DelayPSPerMM <= 0 || p.FixedDelayPS < 0 {
		return fail("delays invalid")
	}
	if p.RepeaterAreaUM2PerMM < 0 || p.StaticPowerUWPerMM < 0 {
		return fail("repeater costs must be non-negative")
	}
	return nil
}

// LinkLatencyClks returns the per-hop link latency in router clock cycles as
// fixed by the paper's Table II: 1 cycle for electronic links, 2 cycles for
// any optical link (the extra cycle is the O-E conversion at the receiver;
// propagation itself fits within one 0.78125 GHz cycle for all on-chip
// lengths considered).
func LinkLatencyClks(t Technology) int {
	if t.IsOptical() {
		return 2
	}
	return 1
}
