package fault

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/topology"
)

// ThermalConfig parameterizes the load-dependent drift model.
//
// The feedback is epoch-lagged: epoch e's error probabilities and trimming
// overhead derive from the drift accumulated through epoch e-1's measured
// utilization, which breaks the circularity between the BER that shapes a
// run and the load that run produces — and keeps every epoch a pure
// function of already-computed state (the determinism contract).
type ThermalConfig struct {
	// BaseFlitErrorProb is the per-traversal corruption probability of an
	// optical link at zero drift — the device variant's error floor
	// (dsent.DeviceVariant.FlitErrorProb).
	BaseFlitErrorProb float64
	// HeatPerUtil is the drift added per unit link utilization per epoch:
	// a link carrying one flit per cycle for a whole epoch gains this
	// much drift.
	HeatPerUtil float64
	// Decay in [0, 1) is the drift retained across an epoch boundary
	// (exponential cooling).
	Decay float64
	// BERGainPerDrift multiplies the error floor per unit drift:
	// p = BaseFlitErrorProb × (1 + BERGainPerDrift × drift), capped at 1.
	BERGainPerDrift float64
	// TrimWPerDrift is the extra thermal-trimming power, in watts per
	// unit drift per optical link, the control loop spends pulling
	// drifted devices back on their operating point.
	TrimWPerDrift float64
}

// DefaultThermal returns a moderate drift model on a variant error floor:
// half the drift survives each epoch, saturated links gain one drift unit
// per epoch, which quadruples their error floor and costs 0.1 mW of
// trimming per link.
func DefaultThermal(baseProb float64) ThermalConfig {
	return ThermalConfig{
		BaseFlitErrorProb: baseProb,
		HeatPerUtil:       1,
		Decay:             0.5,
		BERGainPerDrift:   3,
		TrimWPerDrift:     1e-4,
	}
}

// Validate checks the drift parameters.
func (c ThermalConfig) Validate() error {
	if c.BaseFlitErrorProb < 0 || c.BaseFlitErrorProb > 1 || c.BaseFlitErrorProb != c.BaseFlitErrorProb {
		return fmt.Errorf("fault: base error probability %v outside [0, 1]", c.BaseFlitErrorProb)
	}
	if c.Decay < 0 || c.Decay >= 1 || c.Decay != c.Decay {
		return fmt.Errorf("fault: thermal decay %v outside [0, 1)", c.Decay)
	}
	if c.HeatPerUtil < 0 || c.BERGainPerDrift < 0 || c.TrimWPerDrift < 0 {
		return fmt.Errorf("fault: negative thermal gains %+v", c)
	}
	return nil
}

// Thermal tracks per-link drift state over a run's epochs.
type Thermal struct {
	cfg     ThermalConfig
	optical []bool
	drift   []float64
}

// NewThermal starts a zero-drift state over a network.
func NewThermal(net *topology.Network, cfg ThermalConfig) (*Thermal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	th := &Thermal{
		cfg:     cfg,
		optical: make([]bool, len(net.Links)),
		drift:   make([]float64, len(net.Links)),
	}
	for i, l := range net.Links {
		th.optical[i] = l.Tech.IsOptical()
	}
	return th, nil
}

// Advance folds one epoch's measured activity into the drift state: each
// optical link's utilization (flits carried per simulated cycle, straight
// from the activity census) heats it, prior drift cools by Decay.
func (t *Thermal) Advance(st noc.Stats) error {
	if len(st.LinkFlits) != len(t.drift) {
		return fmt.Errorf("fault: stats carry %d link counters, thermal state has %d",
			len(st.LinkFlits), len(t.drift))
	}
	if st.Cycles <= 0 {
		return fmt.Errorf("fault: thermal advance over %d cycles", st.Cycles)
	}
	for i := range t.drift {
		if !t.optical[i] {
			continue
		}
		util := float64(st.LinkFlits[i]) / float64(st.Cycles)
		t.drift[i] = t.cfg.Decay*t.drift[i] + t.cfg.HeatPerUtil*util
	}
	return nil
}

// LinkErrorProbs fills (and returns) the per-link flit error probabilities
// at the current drift, the noc.FaultProfile input for the next epoch.
// Electronic links are error-free; optical links start at the variant's
// floor and grow with their drift, capped at 1.
func (t *Thermal) LinkErrorProbs(dst []float64) []float64 {
	if cap(dst) < len(t.drift) {
		dst = make([]float64, len(t.drift))
	}
	dst = dst[:len(t.drift)]
	for i := range dst {
		dst[i] = 0
		if !t.optical[i] {
			continue
		}
		p := t.cfg.BaseFlitErrorProb * (1 + t.cfg.BERGainPerDrift*t.drift[i])
		if p > 1 {
			p = 1
		}
		dst[i] = p
	}
	return dst
}

// TrimmingOverheadW is the extra always-on trimming power at the current
// drift, summed over optical links — the static overhead
// energy.PriceWithStaticOverhead charges.
func (t *Thermal) TrimmingOverheadW() float64 {
	var w float64
	for i, d := range t.drift {
		if t.optical[i] {
			w += t.cfg.TrimWPerDrift * d
		}
	}
	return w
}

// MaxDrift returns the hottest link's drift (diagnostic).
func (t *Thermal) MaxDrift() float64 {
	var m float64
	for _, d := range t.drift {
		if d > m {
			m = d
		}
	}
	return m
}
