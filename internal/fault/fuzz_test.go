package fault

import (
	"math"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/units"
)

// FuzzFaultSchedule fuzzes the schedule parameters and asserts the layer's
// structural invariants on a small mesh:
//
//   - schedules are pure: recomputing any epoch's mask gives the same
//     bytes, in any order;
//   - permanent faults are monotone (a recovered link must be transient);
//   - Changed agrees exactly with mask inequality between epochs;
//   - rate 0 downs nothing, rate 1 with no transients downs everything by
//     the final epoch;
//   - every reachable mask yields a routable degraded view whose
//     availability matches its unreachable-pair count.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), 0.0, 0.0, uint8(1))
	f.Add(int64(7), 0.2, 0.5, uint8(4))
	f.Add(int64(42), 1.0, 0.0, uint8(3))
	f.Add(int64(-3), 0.9, 1.0, uint8(8))
	f.Add(int64(99), 0.05, 0.25, uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, rate, transient float64, epochsRaw uint8) {
		net, err := topology.Build(topology.Config{
			Width: 4, Height: 4,
			CoreSpacingM: 1 * units.Millimetre,
			CapacityBps:  50e9,
		})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := routing.Build(net, routing.MonotoneExpress)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Rate: rate, TransientFraction: transient, Epochs: 1 + int(epochsRaw%16), Seed: seed}
		s, err := NewSchedule(net, cfg)
		if err != nil {
			if cfg.Validate() == nil {
				t.Fatalf("valid config %+v rejected: %v", cfg, err)
			}
			return // invalid draw legitimately rejected
		}
		masks := make([][]bool, s.Epochs())
		for e := range masks {
			masks[e] = s.DownAt(e, nil)
			if len(masks[e]) != len(net.Links) {
				t.Fatalf("epoch %d mask has %d entries, want %d", e, len(masks[e]), len(net.Links))
			}
		}
		// Purity: recompute out of order into a reused buffer.
		var buf []bool
		for e := s.Epochs() - 1; e >= 0; e-- {
			buf = s.DownAt(e, buf)
			for l := range buf {
				if buf[l] != masks[e][l] {
					t.Fatalf("epoch %d link %d mask not reproducible", e, l)
				}
			}
		}
		r := NewRerouter(net, tab, routing.MonotoneExpress)
		for e := 0; e < s.Epochs(); e++ {
			changed := e == 0
			downs := 0
			for l := range masks[e] {
				if e > 0 {
					if masks[e-1][l] && !masks[e][l] && !s.flap[l] {
						t.Fatalf("permanent link %d recovered at epoch %d", l, e)
					}
					changed = changed || masks[e][l] != masks[e-1][l]
				}
				if masks[e][l] {
					downs++
				}
			}
			if e > 0 && s.Changed(e) != changed {
				t.Fatalf("Changed(%d) = %v, masks say %v", e, s.Changed(e), changed)
			}
			if rate == 0 && downs > 0 {
				t.Fatalf("zero rate downed %d links at epoch %d", downs, e)
			}
			if rate == 1 && transient == 0 && e == s.Epochs()-1 && downs != len(net.Links) {
				t.Fatalf("rate 1 left %d of %d links up at the final epoch", len(net.Links)-downs, len(net.Links))
			}
			v, err := r.View(masks[e])
			if err != nil {
				t.Fatalf("epoch %d view: %v", e, err)
			}
			nn := net.NumNodes()
			pairs := nn * (nn - 1)
			want := 1 - float64(v.Unreachable)/float64(pairs)
			if math.Abs(v.Availability-want) > 1e-12 {
				t.Fatalf("epoch %d availability %v inconsistent with %d/%d unreachable pairs",
					e, v.Availability, v.Unreachable, pairs)
			}
			if downs == 0 && (v.Net != net || v.Tab != tab) {
				t.Fatalf("epoch %d empty mask did not return the base view", e)
			}
		}
	})
}
