// Package fault is the fault and variation layer: deterministic link
// failure schedules, adaptive rerouting over the surviving fabric, and a
// thermal-drift model that couples measured link activity back into
// bit-error rates and trimming power.
//
// The paper's evaluation assumes a fault-free fabric; this package asks
// how gracefully each technology's advantage degrades when it is not.
// Three mechanisms compose:
//
//   - Schedule derives per-link fault timelines — permanent failures and
//     transient flaps, scalable per technology class — purely from a seed,
//     a rate and a link index. The same inputs give the same timeline on
//     any worker, extending the repository's determinism contract
//     (CHANGES.md: CONCURRENCY) to the fault axis.
//
//   - Rerouter presents each epoch's surviving fabric as a masked
//     topology.Network view (sharing the full network's LinkID space, so
//     stats and energy models keep their shape) and rebuilds shortest-path
//     routing over it with routing.BuildDegraded. Views are cached per
//     distinct mask, so the rebuild cost is paid only when the fault set
//     actually changes; the empty mask returns the caller's own network
//     and table pointers, keeping the zero-fault path bit-identical and
//     pool-compatible. Destinations cut off by faults are reported as
//     routing.ErrUnreachable, and the table's Availability is the
//     fraction of ordered pairs still connected.
//
//   - Thermal integrates per-link utilization (the PR 5 activity census)
//     into a drift state with exponential decay: hot links drift off
//     their operating point, raising the flit error probability the
//     simulator's retransmission machinery (noc.FaultProfile) works
//     against, and costing extra trimming power that
//     energy.PriceWithStaticOverhead folds into the static budget. The
//     error floor each variant starts from comes from the dsent device
//     registry (dsent.LookupVariant).
//
// core.FaultSweep drives all three across a rate ladder and reports
// availability and CLEAR degradation per fault rate.
package fault
