package fault

import (
	"fmt"

	"repro/internal/tech"
	"repro/internal/topology"
)

// Config parameterizes a fault schedule.
type Config struct {
	// Rate is the per-link fault probability in [0, 1]: the expected
	// fraction of links that fault somewhere in the horizon (before
	// technology scaling).
	Rate float64
	// TransientFraction in [0, 1] is the share of faulted links that flap
	// (go down and come back epoch to epoch) instead of failing
	// permanently. Zero makes every fault permanent.
	TransientFraction float64
	// Epochs divides the run horizon into this many fault epochs; the
	// down-link mask is constant within an epoch and may change at epoch
	// boundaries (permanent faults strike at their onset epoch, transient
	// faults flap per epoch).
	Epochs int
	// TechScale optionally scales the fault probability per link
	// technology class — e.g. to model photonic links failing more often
	// than electronic wires. A zero entry means 1.0, so the zero value
	// applies Rate uniformly.
	TechScale [tech.NumTechnologies]float64
	// Seed drives the schedule. Schedules with the same (Seed, Rate,
	// TransientFraction, Epochs, TechScale) over the same network are
	// bit-identical; sweeps derive per-cell seeds with runner.Seed.
	Seed int64
}

// Validate checks the schedule parameters.
func (c Config) Validate() error {
	if c.Rate < 0 || c.Rate > 1 || c.Rate != c.Rate {
		return fmt.Errorf("fault: rate %v outside [0, 1]", c.Rate)
	}
	if c.TransientFraction < 0 || c.TransientFraction > 1 || c.TransientFraction != c.TransientFraction {
		return fmt.Errorf("fault: transient fraction %v outside [0, 1]", c.TransientFraction)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("fault: non-positive epoch count %d", c.Epochs)
	}
	for t, s := range c.TechScale {
		if s < 0 || s != s {
			return fmt.Errorf("fault: negative tech scale %v for %v", s, tech.Technology(t))
		}
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer, the same mixing primitive the
// runner's seed derivation and the noc corruption draws use.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// u01 maps a 64-bit hash to [0, 1).
func u01(z uint64) float64 { return float64(z>>11) / (1 << 53) }

const (
	scheduleSalt = 0xFA417C0DE
	onsetSalt    = 0x0E50C4E7
	flapSalt     = 0xF1A9
	// flapDuty is the fraction of epochs a transient link spends down.
	flapDuty = 0.5
)

// Schedule is a deterministic per-link fault timeline over a network: a
// pure function of (network shape, Config) with no retained RNG state, so
// any epoch's mask can be computed independently on any worker.
type Schedule struct {
	cfg      Config
	numLinks int
	// onset[l] is the epoch link l fails permanently at (-1 = never).
	onset []int32
	// flap[l] marks transiently faulty links.
	flap []bool
	// flapKey is the pre-mixed seed for per-(link, epoch) flap draws.
	flapKey uint64
}

// NewSchedule draws the fault timeline for a network.
func NewSchedule(net *topology.Network, cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{
		cfg:      cfg,
		numLinks: len(net.Links),
		onset:    make([]int32, len(net.Links)),
		flap:     make([]bool, len(net.Links)),
		flapKey:  splitmix64(uint64(cfg.Seed) ^ flapSalt),
	}
	base := splitmix64(uint64(cfg.Seed) ^ scheduleSalt)
	for i, l := range net.Links {
		s.onset[i] = -1
		scale := cfg.TechScale[l.Tech]
		if scale == 0 {
			scale = 1
		}
		p := cfg.Rate * scale
		if p > 1 {
			p = 1
		}
		h := splitmix64(base + uint64(i)*0x9E3779B97F4A7C15)
		draw := u01(h)
		if draw >= p {
			continue // healthy link
		}
		if draw < p*(1-cfg.TransientFraction) {
			// Permanent failure; onset uniform over the horizon.
			s.onset[i] = int32(splitmix64(h^onsetSalt) % uint64(cfg.Epochs))
		} else {
			s.flap[i] = true
		}
	}
	return s, nil
}

// Epochs returns the schedule's epoch count.
func (s *Schedule) Epochs() int { return s.cfg.Epochs }

// NumLinks returns the link-mask length.
func (s *Schedule) NumLinks() int { return s.numLinks }

// flapDown reports whether transient link l is down in epoch e.
func (s *Schedule) flapDown(l, e int) bool {
	return u01(splitmix64(s.flapKey^(uint64(l)<<20|uint64(e)))) < flapDuty
}

// DownAt fills (and returns) the down-link mask of one epoch. A nil or
// short dst is reallocated. Permanent faults are monotone: once a link's
// onset epoch passes it stays down for every later epoch.
func (s *Schedule) DownAt(epoch int, dst []bool) []bool {
	if cap(dst) < s.numLinks {
		dst = make([]bool, s.numLinks)
	}
	dst = dst[:s.numLinks]
	for l := 0; l < s.numLinks; l++ {
		switch {
		case s.onset[l] >= 0 && epoch >= int(s.onset[l]):
			dst[l] = true
		case s.flap[l]:
			dst[l] = s.flapDown(l, epoch)
		default:
			dst[l] = false
		}
	}
	return dst
}

// Changed reports whether the mask differs between epoch-1 and epoch (the
// signal to rebuild routing; epoch 0 always reports true). It is
// allocation-free and O(faulted links).
func (s *Schedule) Changed(epoch int) bool {
	if epoch <= 0 {
		return true
	}
	for l := 0; l < s.numLinks; l++ {
		if s.onset[l] >= 0 && int(s.onset[l]) == epoch {
			return true
		}
		if s.flap[l] && s.flapDown(l, epoch) != s.flapDown(l, epoch-1) {
			return true
		}
	}
	return false
}
