package fault

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// View is one epoch's routable fabric: the masked network, the degraded
// routing table rebuilt over it, and the connectivity it retained.
type View struct {
	// Net is the masked network (the base network itself when nothing is
	// down — pointer identity the simulator pools key on).
	Net *topology.Network
	// Tab routes over Net; pairs severed by the mask have no next hop and
	// surface as routing.ErrUnreachable when asked.
	Tab *routing.Table
	// Availability is the fraction of ordered (src, dst) pairs still
	// connected, and Unreachable the count that is not.
	Availability float64
	Unreachable  int
}

// Rerouter adapts routing to fault masks incrementally: each distinct
// down-link mask is masked, re-routed and cached once, so walking a
// schedule's epochs only pays for rebuilds when the fault set actually
// changes (and flapping links that revisit an earlier mask reuse its
// view). The empty mask returns the base network and table untouched,
// keeping the zero-fault path bit-identical and pool-compatible.
//
// A Rerouter is not safe for concurrent use; sweeps hold one per job.
type Rerouter struct {
	base   *View
	policy routing.Policy
	views  map[string]*View
}

// NewRerouter wraps a base network and its (fault-free) routing table.
func NewRerouter(net *topology.Network, tab *routing.Table, policy routing.Policy) *Rerouter {
	return &Rerouter{
		base:   &View{Net: net, Tab: tab, Availability: 1},
		policy: policy,
		views:  map[string]*View{},
	}
}

// Base returns the fault-free view.
func (r *Rerouter) Base() *View { return r.base }

// maskKey packs a bool mask into a compact map key.
func maskKey(down []bool) string {
	b := make([]byte, (len(down)+7)/8)
	any := false
	for i, d := range down {
		if d {
			b[i/8] |= 1 << (i % 8)
			any = true
		}
	}
	if !any {
		return ""
	}
	return string(b)
}

// View resolves the routable fabric for a down-link mask, building and
// caching it on first sight.
func (r *Rerouter) View(down []bool) (*View, error) {
	key := maskKey(down)
	if key == "" {
		return r.base, nil
	}
	if v, ok := r.views[key]; ok {
		return v, nil
	}
	net, err := r.base.Net.MaskLinks(down)
	if err != nil {
		return nil, err
	}
	if net == r.base.Net { // mask named only already-absent links
		r.views[key] = r.base
		return r.base, nil
	}
	tab, err := routing.BuildDegraded(net, r.policy)
	if err != nil {
		return nil, err
	}
	v := &View{Net: net, Tab: tab, Availability: tab.Availability(), Unreachable: tab.Unreachable()}
	r.views[key] = v
	return v, nil
}
