package fault

import (
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/units"
)

func testNet(t *testing.T, w, h int) (*topology.Network, *routing.Table) {
	t.Helper()
	net, err := topology.Build(topology.Config{
		Width: w, Height: h,
		CoreSpacingM: 1 * units.Millimetre,
		CapacityBps:  50e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := routing.Build(net, routing.MonotoneExpress)
	if err != nil {
		t.Fatal(err)
	}
	return net, tab
}

func TestScheduleDeterminism(t *testing.T) {
	net, _ := testNet(t, 4, 4)
	cfg := Config{Rate: 0.3, TransientFraction: 0.5, Epochs: 8, Seed: 11}
	a, err := NewSchedule(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < cfg.Epochs; e++ {
		if !reflect.DeepEqual(a.DownAt(e, nil), b.DownAt(e, nil)) {
			t.Fatalf("epoch %d masks differ for identical schedules", e)
		}
	}
	cfg.Seed = 12
	c, err := NewSchedule(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for e := 0; e < cfg.Epochs; e++ {
		if !reflect.DeepEqual(a.DownAt(e, nil), c.DownAt(e, nil)) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault timelines (suspicious)")
	}
}

func TestSchedulePermanentMonotone(t *testing.T) {
	net, _ := testNet(t, 8, 8)
	s, err := NewSchedule(net, Config{Rate: 0.4, Epochs: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// TransientFraction 0: every fault is permanent, so down links only
	// accumulate.
	prev := s.DownAt(0, nil)
	anyDown := false
	for e := 1; e < s.Epochs(); e++ {
		cur := s.DownAt(e, nil)
		for l := range cur {
			if prev[l] && !cur[l] {
				t.Fatalf("link %d recovered at epoch %d despite permanent-only faults", l, e)
			}
			anyDown = anyDown || cur[l]
		}
		if changed := !reflect.DeepEqual(prev, cur); changed != s.Changed(e) {
			t.Fatalf("Changed(%d) = %v, masks say %v", e, s.Changed(e), changed)
		}
		prev = cur
	}
	if !anyDown {
		t.Fatal("rate 0.4 over an 8×8 mesh faulted nothing (draw bug?)")
	}
}

func TestScheduleZeroRate(t *testing.T) {
	net, _ := testNet(t, 4, 4)
	s, err := NewSchedule(net, Config{Rate: 0, TransientFraction: 0.5, Epochs: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < s.Epochs(); e++ {
		for l, d := range s.DownAt(e, nil) {
			if d {
				t.Fatalf("zero-rate schedule downed link %d at epoch %d", l, e)
			}
		}
	}
}

func TestScheduleTechScale(t *testing.T) {
	net, _ := testNet(t, 8, 8)
	var scale [tech.NumTechnologies]float64
	for i := range scale {
		scale[i] = 1e-12 // effectively immune...
	}
	scale[tech.Electronic] = 0 // ...except electronic: 0 means 1.0
	s, err := NewSchedule(net, Config{Rate: 0.5, Epochs: 2, Seed: 21, TechScale: scale})
	if err != nil {
		t.Fatal(err)
	}
	down := s.DownAt(1, nil)
	downs := 0
	for l, d := range down {
		if !d {
			continue
		}
		downs++
		if net.Links[l].Tech != tech.Electronic {
			t.Fatalf("link %d (%v) faulted despite ~zero tech scale", l, net.Links[l].Tech)
		}
	}
	if downs == 0 {
		t.Fatal("rate 0.5 faulted no electronic links")
	}
}

func TestScheduleValidation(t *testing.T) {
	net, _ := testNet(t, 4, 4)
	for _, cfg := range []Config{
		{Rate: -0.1, Epochs: 2},
		{Rate: 1.5, Epochs: 2},
		{Rate: 0.1, TransientFraction: 2, Epochs: 2},
		{Rate: 0.1, Epochs: 0},
		{Rate: 0.1, Epochs: 2, TechScale: [tech.NumTechnologies]float64{-1}},
	} {
		if _, err := NewSchedule(net, cfg); err == nil {
			t.Fatalf("invalid config %+v accepted", cfg)
		}
	}
}

func TestRerouterZeroFaultIdentity(t *testing.T) {
	net, tab := testNet(t, 4, 4)
	r := NewRerouter(net, tab, routing.MonotoneExpress)
	v, err := r.View(make([]bool, len(net.Links)))
	if err != nil {
		t.Fatal(err)
	}
	if v.Net != net || v.Tab != tab {
		t.Fatal("empty mask must return the base network and table pointers")
	}
	if v.Availability != 1 || v.Unreachable != 0 {
		t.Fatalf("base view availability %v / unreachable %d", v.Availability, v.Unreachable)
	}
}

func TestRerouterCachesMasks(t *testing.T) {
	net, tab := testNet(t, 4, 4)
	r := NewRerouter(net, tab, routing.MonotoneExpress)
	down := make([]bool, len(net.Links))
	// Cut node 15 off entirely: availability drops, pairs become
	// unreachable, and the identical mask reuses the cached view.
	for _, l := range net.Links {
		if l.Src == 15 || l.Dst == 15 {
			down[l.ID] = true
		}
	}
	v1, err := r.View(down)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Net == net || !v1.Net.IsMasked() {
		t.Fatal("faulted view did not mask the network")
	}
	if v1.Unreachable != 30 {
		t.Fatalf("isolating 1 of 16 nodes → %d unreachable pairs, want 30", v1.Unreachable)
	}
	if v1.Availability >= 1 {
		t.Fatalf("availability %v not degraded", v1.Availability)
	}
	v2, err := r.View(append([]bool(nil), down...))
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 {
		t.Fatal("identical mask rebuilt instead of hitting the cache")
	}
	// A different mask is a different view.
	down[0], down[1] = true, true
	v3, err := r.View(down)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("distinct masks shared a view")
	}
}

func TestThermalDriftFeedback(t *testing.T) {
	// A hybrid fabric: electronic base mesh plus HyPPI express links, so
	// the drift model has optical links to heat and electronic ones to
	// leave alone.
	net, err := topology.Build(topology.Config{
		Width: 4, Height: 4,
		CoreSpacingM: 1 * units.Millimetre,
		CapacityBps:  50e9,
		ExpressHops:  3,
		ExpressTech:  tech.HyPPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	th, err := NewThermal(net, DefaultThermal(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if th.MaxDrift() != 0 || th.TrimmingOverheadW() != 0 {
		t.Fatal("fresh thermal state not cold")
	}
	probs := th.LinkErrorProbs(nil)
	for i, l := range net.Links {
		want := 0.0
		if l.Tech.IsOptical() {
			want = 1e-4
		}
		if probs[i] != want {
			t.Fatalf("cold link %d (%v) error prob %v, want %v", i, l.Tech, probs[i], want)
		}
	}
	// One busy epoch: every link carries a flit per cycle.
	st := noc.Stats{Cycles: 100, LinkFlits: make([]int64, len(net.Links))}
	for i := range st.LinkFlits {
		st.LinkFlits[i] = 100
	}
	if err := th.Advance(st); err != nil {
		t.Fatal(err)
	}
	if th.MaxDrift() <= 0 {
		t.Fatal("busy epoch produced no drift")
	}
	if th.TrimmingOverheadW() <= 0 {
		t.Fatal("drift costs no trimming power")
	}
	hot := th.LinkErrorProbs(nil)
	for i, l := range net.Links {
		if l.Tech.IsOptical() && hot[i] <= probs[i] {
			t.Fatalf("optical link %d error prob did not grow with drift (%v → %v)", i, probs[i], hot[i])
		}
		if !l.Tech.IsOptical() && hot[i] != 0 {
			t.Fatalf("electronic link %d gained error prob %v", i, hot[i])
		}
	}
	drifted := th.MaxDrift()
	// An idle epoch cools the state.
	idle := noc.Stats{Cycles: 100, LinkFlits: make([]int64, len(net.Links))}
	if err := th.Advance(idle); err != nil {
		t.Fatal(err)
	}
	if got := th.MaxDrift(); got >= drifted {
		t.Fatalf("idle epoch did not cool: %v → %v", drifted, got)
	}
}

func TestThermalValidation(t *testing.T) {
	net, _ := testNet(t, 4, 4)
	for _, cfg := range []ThermalConfig{
		{BaseFlitErrorProb: -1},
		{BaseFlitErrorProb: 2},
		{Decay: 1},
		{Decay: -0.5},
		{HeatPerUtil: -1},
		{TrimWPerDrift: -1},
	} {
		if _, err := NewThermal(net, cfg); err == nil {
			t.Fatalf("invalid thermal config %+v accepted", cfg)
		}
	}
	th, err := NewThermal(net, ThermalConfig{BaseFlitErrorProb: 0.5, Decay: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Advance(noc.Stats{Cycles: 10, LinkFlits: []int64{1}}); err == nil {
		t.Fatal("mismatched stats shape accepted")
	}
	if err := th.Advance(noc.Stats{Cycles: 0, LinkFlits: make([]int64, len(net.Links))}); err == nil {
		t.Fatal("zero-cycle stats accepted")
	}
}
