package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/tech"
	"repro/internal/topology"
)

func TestWriteLinkSweep(t *testing.T) {
	pts, err := core.LinkSweep()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLinkSweep(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != len(pts) {
		t.Errorf("CSV rows %d, want %d", rows, len(pts))
	}
	if !strings.HasPrefix(buf.String(), "length_m,clear_Electronic,") {
		t.Errorf("header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestWriteExploration(t *testing.T) {
	o := core.DefaultOptions()
	res, err := core.Explore([]core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExploration(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Errorf("rows = %d", rows)
	}
	if !strings.Contains(buf.String(), "HyPPI,3") {
		t.Error("design point missing from CSV")
	}
}

func TestWriteTraceResults(t *testing.T) {
	o := core.DefaultOptions()
	k := npb.DefaultConfig(npb.LU)
	k.Iterations = 1
	res, err := core.RunTraceExperiment(k,
		core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		o, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceResults(&buf, []core.TraceResult{res}); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LU,Electronic") {
		t.Error("kernel row missing")
	}
}

func TestWriteRadar(t *testing.T) {
	radar, err := core.AllOpticalRadar(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRadar(&buf, radar); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Errorf("radar rows = %d, want 3", rows)
	}
	for _, corner := range []string{"electronic", "all_photonic", "all_hyppi"} {
		if !strings.Contains(buf.String(), corner) {
			t.Errorf("corner %s missing", corner)
		}
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	if _, err := Check(strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail")
	}
	// csv.Reader already rejects ragged rows; verify the error surfaces.
	if _, err := Check(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV must fail")
	}
}

// patternSweepResults fabricates a two-cell sweep without running the
// simulator: the writers only format.
func patternSweepResults() []core.PatternSweepResult {
	mesh := core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}
	hybrid := core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	curve := []noc.LoadPoint{
		{InjectionRate: 0.05, AvgLatencyClks: 20, P99LatencyClks: 30},
		{InjectionRate: 0.2, AvgLatencyClks: 90, P99LatencyClks: 200},
	}
	return []core.PatternSweepResult{
		{Point: mesh, Pattern: "tornado", Curve: curve, SaturationRate: 0.2, Saturates: true},
		{Kind: topology.Torus, Point: hybrid, Pattern: "tornado", Curve: curve[:1]},
	}
}

func TestWritePatternSweep(t *testing.T) {
	results := patternSweepResults()
	var buf bytes.Buffer
	if err := WritePatternSweep(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 { // 2 curve points + 1
		t.Errorf("CSV rows %d, want 3", rows)
	}
	if !strings.HasPrefix(buf.String(), "topology,base,express,hops,pattern,injection_rate,") {
		t.Errorf("header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	if !strings.Contains(buf.String(), "tornado") {
		t.Error("pattern name missing from rows")
	}
	// A zero Kind names the mesh default; explicit kinds pass through.
	if !strings.Contains(buf.String(), "\nmesh,") || !strings.Contains(buf.String(), "\ntorus,") {
		t.Errorf("kind column missing:\n%s", buf.String())
	}
}

func TestSaturationTable(t *testing.T) {
	out := SaturationTable(patternSweepResults())
	if !strings.Contains(out, "tornado") || !strings.Contains(out, "0.2") {
		t.Errorf("table missing sweep data:\n%s", out)
	}
	if !strings.Contains(out, "mesh") || !strings.Contains(out, "torus") {
		t.Errorf("table missing topology kinds:\n%s", out)
	}
	// The never-saturating row renders a dash, not a zero.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "-") {
		t.Errorf("unsaturated row should show '-': %q", last)
	}
}
