package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/tech"
	"repro/internal/topology"
)

func TestWriteLinkSweep(t *testing.T) {
	pts, err := core.LinkSweep()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLinkSweep(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != len(pts) {
		t.Errorf("CSV rows %d, want %d", rows, len(pts))
	}
	if !strings.HasPrefix(buf.String(), "length_m,clear_Electronic,") {
		t.Errorf("header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestWriteExploration(t *testing.T) {
	o := core.DefaultOptions()
	res, err := core.Explore([]core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExploration(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Errorf("rows = %d", rows)
	}
	if !strings.Contains(buf.String(), "HyPPI,3") {
		t.Error("design point missing from CSV")
	}
}

func TestWriteTraceResults(t *testing.T) {
	o := core.DefaultOptions()
	k := npb.DefaultConfig(npb.LU)
	k.Iterations = 1
	res, err := core.RunTraceExperiment(k,
		core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		o, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceResults(&buf, []core.TraceResult{res}); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LU,Electronic") {
		t.Error("kernel row missing")
	}
}

func TestWriteRadar(t *testing.T) {
	radar, err := core.AllOpticalRadar(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRadar(&buf, radar); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Errorf("radar rows = %d, want 3", rows)
	}
	for _, corner := range []string{"electronic", "all_photonic", "all_hyppi"} {
		if !strings.Contains(buf.String(), corner) {
			t.Errorf("corner %s missing", corner)
		}
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	if _, err := Check(strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail")
	}
	// csv.Reader already rejects ragged rows; verify the error surfaces.
	if _, err := Check(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV must fail")
	}
}

// patternSweepResults fabricates a two-cell sweep without running the
// simulator: the writers only format.
func patternSweepResults() []core.PatternSweepResult {
	mesh := core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}
	hybrid := core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	curve := []noc.LoadPoint{
		{InjectionRate: 0.05, AvgLatencyClks: 20, P99LatencyClks: 30},
		{InjectionRate: 0.2, AvgLatencyClks: 90, P99LatencyClks: 200},
	}
	return []core.PatternSweepResult{
		{Point: mesh, Pattern: "tornado", Curve: curve, SaturationRate: 0.2, Saturates: true},
		{Kind: topology.Torus, Point: hybrid, Pattern: "tornado", Curve: curve[:1]},
		// The sweep floor itself saturated: the knee is an upper bound.
		{Point: mesh, Pattern: "hotspot",
			Curve:          []noc.LoadPoint{{InjectionRate: 0.05, Saturated: true}},
			SaturationRate: 0.05, Saturates: true, AtFloor: true},
	}
}

func TestWritePatternSweep(t *testing.T) {
	results := patternSweepResults()
	var buf bytes.Buffer
	if err := WritePatternSweep(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 4 { // 2 curve points + 1 + 1
		t.Errorf("CSV rows %d, want 4", rows)
	}
	if !strings.HasPrefix(buf.String(), "topology,base,express,hops,pattern,injection_rate,") {
		t.Errorf("header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasSuffix(header, ",saturation_rate,saturates,at_floor") {
		t.Errorf("knee columns missing from header: %q", header)
	}
	if !strings.Contains(buf.String(), ",0.05,true,true") {
		t.Errorf("at-floor row not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), ",0.2,true,false") {
		t.Errorf("interior knee wrongly flagged at-floor:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "tornado") {
		t.Error("pattern name missing from rows")
	}
	// A zero Kind names the mesh default; explicit kinds pass through.
	if !strings.Contains(buf.String(), "\nmesh,") || !strings.Contains(buf.String(), "\ntorus,") {
		t.Errorf("kind column missing:\n%s", buf.String())
	}
}

func TestSaturationTable(t *testing.T) {
	out := SaturationTable(patternSweepResults())
	if !strings.Contains(out, "tornado") || !strings.Contains(out, "0.2") {
		t.Errorf("table missing sweep data:\n%s", out)
	}
	if !strings.Contains(out, "mesh") || !strings.Contains(out, "torus") {
		t.Errorf("table missing topology kinds:\n%s", out)
	}
	// The never-saturating row renders a dash, not a zero, and the
	// at-floor row renders a bound ("≤rate"), not a measured capacity.
	if !strings.Contains(out, "≤0.05") {
		t.Errorf("at-floor knee should render as a bound:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		switch {
		case strings.Contains(line, "torus") && !strings.HasSuffix(line, "-"):
			t.Errorf("unsaturated row should end with '-': %q", line)
		case strings.Contains(line, "tornado") && strings.Contains(line, "≤"):
			t.Errorf("interior knee must not render as a bound: %q", line)
		}
	}
}

// TestSaturationTableGoldenRendering pins the exact rendering against long
// topology and pattern names: numeric columns right-align against their
// column edge whatever the width of the label columns, and no line carries
// trailing padding.
func TestSaturationTableGoldenRendering(t *testing.T) {
	long := core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	results := []core.PatternSweepResult{
		{Kind: "extremely-long-topology-name", Point: long, Pattern: "hotspot-memory-controllers",
			Curve:          []noc.LoadPoint{{InjectionRate: 0.05, AvgLatencyClks: 23.4}},
			SaturationRate: 0.35, Saturates: true},
		{Point: core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
			Pattern: "uniform",
			Curve:   []noc.LoadPoint{{InjectionRate: 0.05, AvgLatencyClks: 123.4}}},
	}
	want := strings.Join([]string{
		"topology                      design point                  pattern                     zero-load (clk)  saturation (flits/clk)",
		"----------------------------  ----------------------------  --------------------------  ---------------  ----------------------",
		"extremely-long-topology-name  Electronic + HyPPI express@3  hotspot-memory-controllers             23.4                    0.35",
		"mesh                          Electronic mesh               uniform                               123.4                       -",
		"",
	}, "\n")
	if got := SaturationTable(results); got != want {
		t.Errorf("rendering drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// energySweepResults fabricates a small measured sweep for writer tests.
func energySweepResults() []core.EnergySweepResult {
	mesh := core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}
	hybrid := core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	mk := func(rate, lat, fj float64, pareto bool) core.EnergyPoint {
		p := core.EnergyPoint{Rate: rate, AvgLatencyClks: lat, P99LatencyClks: 2 * lat, Pareto: pareto}
		p.Run.Cycles = 5000
		p.Run.Seconds = 5000 / 0.78125e9
		p.Run.FJPerBit = fj
		p.Run.DynamicJ = 1e-6
		p.Run.StaticJ = 9e-6
		p.Run.TotalJ = 1e-5
		p.Run.AvgPowerW = 1.5
		p.CLEAR.Value = 0.1
		p.CLEAR.R = 1.1
		return p
	}
	return []core.EnergySweepResult{
		{Kind: topology.Mesh, Point: mesh, Pattern: "tornado", StaticW: 1.5, AreaM2: 2e-5,
			Points: []core.EnergyPoint{mk(0.05, 40, 60000, false), {Rate: 0.5, Saturated: true}}},
		{Kind: topology.Mesh, Point: hybrid, Pattern: "tornado", StaticW: 1.6, AreaM2: 2e-5,
			Points: []core.EnergyPoint{mk(0.05, 30, 55000, true)}},
	}
}

func TestWriteEnergySweep(t *testing.T) {
	results := energySweepResults()
	var buf bytes.Buffer
	if err := WriteEnergySweep(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Errorf("CSV rows %d, want 3", rows)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "topology,base,express,hops,pattern,injection_rate,saturated,") {
		t.Errorf("header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	for _, col := range []string{"fj_per_bit", "link_j_HyPPI", "modulator_j", "clear_sim", "pareto"} {
		if !strings.Contains(out, col) {
			t.Errorf("column %q missing from header", col)
		}
	}
	if !strings.Contains(out, "true") || !strings.Contains(out, "tornado") {
		t.Error("rows missing saturation/pattern data")
	}
}

func TestEnergyAndParetoTables(t *testing.T) {
	results := energySweepResults()
	etbl := EnergyTable(results)
	if !strings.Contains(etbl, "fJ/bit") || !strings.Contains(etbl, "60000") {
		t.Errorf("energy table missing data:\n%s", etbl)
	}
	if !strings.Contains(etbl, "*") {
		t.Errorf("energy table missing frontier mark:\n%s", etbl)
	}
	// The saturated rate renders dashes, not numbers.
	var satLine string
	for _, l := range strings.Split(etbl, "\n") {
		if strings.Contains(l, "0.5") {
			satLine = l
		}
	}
	if !strings.Contains(satLine, "-") {
		t.Errorf("saturated row should dash out: %q", satLine)
	}

	ptbl := ParetoTable(results)
	// Only the dominated plain-mesh sample (latency 40) drops out.
	if !strings.Contains(ptbl, "HyPPI express@3") || strings.Contains(ptbl, "40.0") {
		t.Errorf("pareto table should keep only frontier rows:\n%s", ptbl)
	}
	for i, l := range strings.Split(etbl+ptbl, "\n") {
		if l != strings.TrimRight(l, " ") {
			t.Errorf("line %d has trailing padding: %q", i, l)
		}
	}
}

// TestJSONLine pins the wire-encoding contract the serve protocol builds
// on: compact single-line output, byte-stable across calls, HTML metas
// unescaped so messages read back verbatim.
// faultSweepResults builds a tiny two-cell matrix: a healthy baseline
// cell and a variant cell that degrades at the top of the rate ladder.
func faultSweepResults() []core.FaultSweepResult {
	mesh := core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}
	hybrid := core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	healthy := core.FaultPoint{FaultRate: 0, Availability: 1, PacketsInjected: 500,
		PacketsDelivered: 500, AvgLatencyClks: 21.5, FJPerBit: 61000,
		CLEAR: 2.5, CLEARDegradation: 1}
	degraded := core.FaultPoint{FaultRate: 0.2, Availability: 0.875, DownLinkFrac: 0.15,
		PacketsInjected: 500, PacketsDelivered: 440, PacketsDropped: 60,
		PacketsUnroutable: 55, Retransmits: 12, AvgLatencyClks: 29.0,
		FJPerBit: 68000, TrimOverheadW: 0.002, MaxDrift: 0.4,
		CLEAR: 1.9, CLEARDegradation: 0.76}
	return []core.FaultSweepResult{
		{Kind: topology.Mesh, Point: mesh, Variant: "", Pattern: "uniform",
			Points: []core.FaultPoint{healthy, degraded}},
		{Kind: topology.Mesh, Point: hybrid, Variant: "modetector", Pattern: "uniform",
			Points: []core.FaultPoint{healthy}},
	}
}

func TestWriteFaultSweep(t *testing.T) {
	results := faultSweepResults()
	var buf bytes.Buffer
	if err := WriteFaultSweep(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Errorf("CSV rows %d, want 3", rows)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "topology,base,express,hops,variant,pattern,fault_rate,") {
		t.Errorf("header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	for _, col := range []string{"availability", "packets_unroutable", "retransmits",
		"trim_overhead_w", "clear_degradation"} {
		if !strings.Contains(out, col) {
			t.Errorf("column %q missing from header", col)
		}
	}
	if !strings.Contains(out, "modetector") || !strings.Contains(out, "0.875") {
		t.Error("rows missing variant/availability data")
	}
}

func TestFaultTable(t *testing.T) {
	tbl := FaultTable(faultSweepResults())
	for _, want := range []string{"avail", "CLEAR×", "0.8750", "modetector", "uniform"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("fault table missing %q:\n%s", want, tbl)
		}
	}
	for i, l := range strings.Split(tbl, "\n") {
		if l != strings.TrimRight(l, " ") {
			t.Errorf("line %d has trailing padding: %q", i, l)
		}
	}
}

// taskGraphResults fabricates a two-cell closed-loop sweep: one schedule
// the network never delayed (stretch 1) and one congested cell.
func taskGraphResults() []core.TaskGraphResult {
	mesh := core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}
	hybrid := core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	return []core.TaskGraphResult{
		{Point: mesh, Graph: "moe-alltoall", Messages: 8064, TotalFlits: 16128,
			MakespanClks: 428, LowerBoundClks: 142, Stretch: 3.014,
			AvgLatencyClks: 31.5, P99LatencyClks: 88, Cycles: 428},
		{Kind: topology.Torus, Point: hybrid, Graph: "pipeline", Messages: 63, TotalFlits: 2016,
			MakespanClks: 632, LowerBoundClks: 632, Stretch: 1,
			AvgLatencyClks: 12.1, P99LatencyClks: 14, Cycles: 632},
	}
}

func TestWriteTaskGraphSweep(t *testing.T) {
	results := taskGraphResults()
	var buf bytes.Buffer
	if err := WriteTaskGraphSweep(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Errorf("CSV rows %d, want 2", rows)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "topology,base,express,hops,graph,messages,total_flits,makespan_clks,lower_bound_clks,") {
		t.Errorf("header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "moe-alltoall") || !strings.Contains(out, "428") {
		t.Error("rows missing graph/makespan data")
	}
	// A zero Kind names the mesh default; explicit kinds pass through.
	if !strings.Contains(out, "\nmesh,") || !strings.Contains(out, "\ntorus,") {
		t.Errorf("kind column missing:\n%s", out)
	}
}

func TestTaskGraphTable(t *testing.T) {
	tbl := TaskGraphTable(taskGraphResults())
	for _, want := range []string{"makespan (clk)", "stretch", "moe-alltoall", "3.01", "1.00",
		"Electronic + HyPPI express@3"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("task-graph table missing %q:\n%s", want, tbl)
		}
	}
	for i, l := range strings.Split(tbl, "\n") {
		if l != strings.TrimRight(l, " ") {
			t.Errorf("line %d has trailing padding: %q", i, l)
		}
	}
}

func TestJSONLine(t *testing.T) {
	type row struct {
		Name string  `json:"name"`
		Rate float64 `json:"rate,omitempty"`
		Note string  `json:"note,omitempty"`
	}
	line, err := JSONLine(row{Name: "a<b>&c", Rate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"a<b>&c","rate":0.05}`
	if string(line) != want {
		t.Errorf("got %s, want %s", line, want)
	}
	again, err := JSONLine(row{Name: "a<b>&c", Rate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, again) {
		t.Errorf("unstable encoding: %s vs %s", line, again)
	}
	if bytes.ContainsAny(line, "\n") {
		t.Errorf("line contains a newline: %q", line)
	}
	if _, err := JSONLine(func() {}); err == nil {
		t.Error("unencodable value accepted")
	}
}

// TestWriteJSONLines: one line per row, in order, each parseable.
func TestWriteJSONLines(t *testing.T) {
	type row struct {
		N int `json:"n"`
	}
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, []row{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	want := "{\"n\":1}\n{\"n\":2}\n{\"n\":3}\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
	if err := WriteJSONLines(&buf, []func(){func() {}}); err == nil {
		t.Error("unencodable row accepted")
	}
}
