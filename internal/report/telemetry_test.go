package report

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func telemetryResults(t *testing.T) []core.TelemetryResult {
	t.Helper()
	pats, err := traffic.ParsePatterns("uniform")
	if err != nil {
		t.Fatal(err)
	}
	sc := core.DefaultTelemetrySweep()
	sc.Workload.Cycles = 500
	sc.Telemetry.SampleRate = 0.5
	sc.Telemetry.ProbeWindowClks = 100
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4
	points := []core.DesignPoint{{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}}
	rs, err := core.TelemetrySweep(context.Background(), points, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestWriteTelemetrySweepRowCounts: the CSV is rectangular with exactly
// one row per retained window per cell — the telemetry-smoke invariant.
func TestWriteTelemetrySweepRowCounts(t *testing.T) {
	rs := telemetryResults(t)
	var buf bytes.Buffer
	if err := WriteTelemetrySweep(&buf, rs); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	for _, r := range rs {
		want += r.Probes.Windows()
	}
	if len(rows) != want {
		t.Fatalf("%d CSV rows, want %d (header + windows)", len(rows), want)
	}
	for i, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("row %d has %d columns, want %d", i+1, len(row), len(rows[0]))
		}
	}
}

// TestTelemetryRenderers: the text views render without panicking and
// carry the expected structure.
func TestTelemetryRenderers(t *testing.T) {
	rs := telemetryResults(t)
	r := rs[0]

	st := SpanTable(r.Trace, 5)
	if !strings.Contains(st, "hotspot") {
		t.Error("span table missing header")
	}
	if len(r.Trace.Spans) > 5 && !strings.Contains(st, "more spans") {
		t.Error("span table missing truncation note")
	}

	tl := ProbeTimeline(r.Probes)
	if got := strings.Count(tl, "\n"); got < r.Probes.Windows() {
		t.Errorf("timeline has %d lines for %d windows", got, r.Probes.Windows())
	}

	peak := PeakWindow(r.Probes)
	if peak < 0 || peak >= r.Probes.Windows() {
		t.Fatalf("peak window %d out of range", peak)
	}
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4
	net, _, err := o.NetworkAndTable(r.Point)
	if err != nil {
		t.Fatal(err)
	}
	grid := ProbeOccupancyGrid(r.Probes, net, peak)
	lines := strings.Split(strings.TrimRight(grid, "\n"), "\n")
	if len(lines) != 1+4 { // caption + Height rows
		t.Fatalf("occupancy grid has %d lines, want 5", len(lines))
	}
	for _, l := range lines[1:] {
		if len(l) != 4 {
			t.Fatalf("grid row %q width %d, want 4", l, len(l))
		}
	}

	hm := ProbeLinkHeatmap(r.Probes, net, 8)
	if !strings.Contains(hm, "link ") {
		t.Error("link heatmap missing legend")
	}
	if got := strings.Count(hm, "\nw"); got != r.Probes.Windows() {
		t.Errorf("heatmap has %d window rows, want %d", got, r.Probes.Windows())
	}
}

// TestSpanTableEmpty: an empty trace renders as a bare header, not a
// panic.
func TestSpanTableEmpty(t *testing.T) {
	out := SpanTable(&telemetry.Trace{}, 0)
	if !strings.Contains(out, "pkt") {
		t.Error("empty span table missing header")
	}
}
