// Package report serializes experiment results to CSV so figures can be
// regenerated outside Go (the paper's plots are all simple series/bars).
// Each Write function emits one experiment family with a fixed, documented
// header row.
package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/optical"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/units"
)

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteLinkSweep emits the Fig. 3 dataset:
// length_m, then CLEAR per technology.
func WriteLinkSweep(w io.Writer, pts []link.SweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{"length_m"}
	for _, t := range tech.Technologies {
		header = append(header, "clear_"+t.String())
	}
	header = append(header, "best")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range pts {
		row := []string{f(p.LengthM)}
		for _, t := range tech.Technologies {
			row = append(row, f(p.CLEAR[t]))
		}
		row = append(row, p.Best().String())
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteExploration emits the Fig. 5 / Table III / Table IV dataset: one row
// per design point with every CLEAR ingredient.
func WriteExploration(w io.Writer, results []core.ExplorationResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"base", "express", "hops",
		"clear", "capability_gbps_per_node", "latency_clks",
		"power_w", "static_w", "dynamic_w", "area_mm2",
		"r", "avg_utilization", "mean_hops", "express_flit_fraction",
	}); err != nil {
		return err
	}
	for _, r := range results {
		if err := cw.Write([]string{
			r.Point.Base.String(), r.Point.Express.String(), strconv.Itoa(r.Point.Hops),
			f(r.CLEAR), f(r.CapabilityGbpsPerNode), f(r.AvgLatencyClks),
			f(r.PowerW), f(r.StaticW), f(r.DynamicW), f(r.AreaM2 / units.MillimetreSq),
			f(r.R), f(r.AvgUtilization), f(r.MeanHops), f(r.ExpressFlitFraction),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceResults emits the Fig. 6 / Table V dataset: one row per
// (kernel, design point) run.
func WriteTraceResults(w io.Writer, results []core.TraceResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kernel", "base", "express", "hops",
		"avg_latency_clks", "p50_clks", "p95_clks", "p99_clks",
		"dynamic_energy_j", "static_power_w",
		"packets", "flits", "cycles",
	}); err != nil {
		return err
	}
	for _, r := range results {
		if err := cw.Write([]string{
			r.Kernel.String(), r.Point.Base.String(), r.Point.Express.String(),
			strconv.Itoa(r.Point.Hops),
			f(r.AvgLatencyClks), f(r.Stats.P50PacketLatencyClks),
			f(r.Stats.P95PacketLatencyClks), f(r.Stats.P99PacketLatencyClks),
			f(r.DynamicEnergyJ), f(r.StaticPowerW),
			strconv.FormatInt(r.Stats.PacketsEjected, 10),
			strconv.FormatInt(r.Stats.FlitsEjected, 10),
			strconv.FormatInt(r.Stats.Cycles, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePatternSweep emits the synthetic-pattern saturation dataset: one
// row per (topology kind, design point, pattern, offered rate), plus the per-curve
// latency-knee saturation throughput so downstream plots can draw both
// the curves and the knee markers.
func WritePatternSweep(w io.Writer, results []core.PatternSweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"topology", "base", "express", "hops", "pattern",
		"injection_rate", "avg_latency_clks", "p99_latency_clks", "point_saturated",
		"saturation_rate", "saturates", "at_floor",
	}); err != nil {
		return err
	}
	for _, r := range results {
		for _, p := range r.Curve {
			if err := cw.Write([]string{
				sweepKind(r.Kind), r.Point.Base.String(), r.Point.Express.String(), strconv.Itoa(r.Point.Hops),
				r.Pattern,
				f(p.InjectionRate), f(p.AvgLatencyClks), f(p.P99LatencyClks),
				strconv.FormatBool(p.Saturated),
				f(r.SaturationRate), strconv.FormatBool(r.Saturates),
				strconv.FormatBool(r.AtFloor),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// sweepKind names a sweep row's topology kind, defaulting legacy rows
// (fabricated results with a zero Kind) to mesh.
func sweepKind(k topology.Kind) string {
	if k == "" {
		return string(topology.Mesh)
	}
	return string(k)
}

// SaturationTable renders the per-pattern saturation summary as an
// aligned text table: one row per (topology kind, design point, pattern)
// with the zero-load latency and the latency-knee saturation throughput
// ("-" when the design never saturates within the swept range; "≤rate"
// when the sweep floor itself saturated, so the knee was bounded, not
// measured). The numeric columns are right-aligned so magnitudes stay
// comparable next to design-point labels of any length.
func SaturationTable(results []core.PatternSweepResult) string {
	tbl := stats.NewTable("topology", "design point", "pattern", "zero-load (clk)", "saturation (flits/clk)").
		AlignRight(3, 4)
	for _, r := range results {
		sat := "-"
		if r.Saturates {
			sat = strconv.FormatFloat(r.SaturationRate, 'g', 4, 64)
			if r.AtFloor {
				sat = "≤" + sat
			}
		}
		tbl.AddRow(sweepKind(r.Kind), r.PointLabel(), r.Pattern,
			strconv.FormatFloat(r.ZeroLoadLatencyClks(), 'f', 1, 64), sat)
	}
	return tbl.String()
}

// KindComparisonTable renders the cross-topology analytic comparison as
// an aligned text table: one row per (kind, design point) with the
// structural figures the kinds differ on and the CLEAR ingredients.
func KindComparisonTable(results []core.KindExploration) string {
	tbl := stats.NewTable("kind", "base", "chans", "maxports",
		"C (Gb/s)", "lat(clk)", "power(W)", "R", "CLEAR").
		AlignRight(2, 3, 4, 5, 6, 7, 8)
	for _, r := range results {
		tbl.AddRow(string(r.Kind), r.Point.Base.String(),
			strconv.Itoa(r.Channels), strconv.Itoa(r.MaxPorts),
			strconv.FormatFloat(r.CapabilityGbpsPerNode, 'f', 2, 64),
			strconv.FormatFloat(r.AvgLatencyClks, 'f', 1, 64),
			strconv.FormatFloat(r.PowerW, 'f', 3, 64),
			strconv.FormatFloat(r.R, 'f', 3, 64),
			strconv.FormatFloat(r.CLEAR, 'f', 4, 64))
	}
	return tbl.String()
}

// WriteEnergySweep emits the measured latency–energy dataset: one row per
// (topology kind, design point, pattern, offered rate) sample with the
// full component energy breakdown, the simulated CLEAR and the Pareto
// frontier mark.
func WriteEnergySweep(w io.Writer, results []core.EnergySweepResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"topology", "base", "express", "hops", "pattern", "injection_rate",
		"saturated", "avg_latency_clks", "p99_latency_clks", "cycles",
		"fj_per_bit", "dynamic_j", "static_j", "total_j", "avg_power_w",
	}
	for _, t := range tech.Technologies {
		header = append(header, "link_j_"+t.String())
	}
	header = append(header,
		"buffer_j", "crossbar_j", "modulator_j", "receiver_j", "serdes_j",
		"wire_j", "express_j", "amortized_dynamic_j",
		"clear_sim", "r_sim", "avg_utilization", "pareto",
	)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		for _, p := range r.Points {
			row := []string{
				sweepKind(r.Kind),
				r.Point.Base.String(), r.Point.Express.String(), strconv.Itoa(r.Point.Hops),
				r.Pattern, f(p.Rate),
				strconv.FormatBool(p.Saturated), f(p.AvgLatencyClks), f(p.P99LatencyClks),
				strconv.FormatInt(p.Run.Cycles, 10),
				f(p.Run.FJPerBit), f(p.Run.DynamicJ), f(p.Run.StaticJ), f(p.Run.TotalJ),
				f(p.Run.AvgPowerW),
			}
			for _, t := range tech.Technologies {
				row = append(row, f(p.Run.Dynamic.LinkJ[t]))
			}
			row = append(row,
				f(p.Run.Dynamic.BufferJ), f(p.Run.Dynamic.CrossbarJ),
				f(p.Run.Dynamic.ModulatorJ), f(p.Run.Dynamic.ReceiverJ),
				f(p.Run.Dynamic.SerdesJ), f(p.Run.Dynamic.WireJ), f(p.Run.Dynamic.ExpressJ),
				f(p.Run.AmortizedDynamicJ),
				f(p.CLEAR.Value), f(p.CLEAR.R), f(p.CLEAR.AvgUtilization),
				strconv.FormatBool(p.Pareto),
			)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// EnergyTable renders the measured latency–energy matrix as an aligned
// text table: one row per drained (kind, design point, pattern, rate)
// sample, frontier rows marked with '*' ("drained" — saturated rates
// render a dash row instead of numbers).
func EnergyTable(results []core.EnergySweepResult) string {
	tbl := stats.NewTable("topology", "design point", "pattern", "rate",
		"lat(clk)", "fJ/bit", "dyn(µJ)", "power(W)", "CLEAR", "front").
		AlignRight(3, 4, 5, 6, 7, 8)
	for _, r := range results {
		for _, p := range r.Points {
			if p.Saturated {
				tbl.AddRow(string(r.Kind), r.PointLabel(), r.Pattern,
					strconv.FormatFloat(p.Rate, 'g', 4, 64), "-", "-", "-", "-", "-", "")
				continue
			}
			mark := ""
			if p.Pareto {
				mark = "*"
			}
			tbl.AddRow(string(r.Kind), r.PointLabel(), r.Pattern,
				strconv.FormatFloat(p.Rate, 'g', 4, 64),
				strconv.FormatFloat(p.AvgLatencyClks, 'f', 1, 64),
				strconv.FormatFloat(p.Run.FJPerBit, 'f', 0, 64),
				strconv.FormatFloat(p.Run.DynamicJ*1e6, 'f', 3, 64),
				strconv.FormatFloat(p.Run.AvgPowerW, 'f', 3, 64),
				strconv.FormatFloat(p.CLEAR.Value, 'f', 4, 64),
				mark)
		}
	}
	return tbl.String()
}

// ParetoTable renders only the latency–energy frontier: for each
// (kind, pattern) scenario the non-dominated samples across all competing
// design points, in ascending latency order (energy therefore descends —
// the shape of the trade-off curve read top to bottom).
func ParetoTable(results []core.EnergySweepResult) string {
	type row struct {
		kind          string
		point         string
		pattern       string
		rate, lat, fj float64
		clear         float64
	}
	var rows []row
	for _, r := range results {
		for _, p := range r.Points {
			if p.Pareto {
				rows = append(rows, row{string(r.Kind), r.PointLabel(), r.Pattern,
					p.Rate, p.AvgLatencyClks, p.Run.FJPerBit, p.CLEAR.Value})
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].kind != rows[j].kind {
			return rows[i].kind < rows[j].kind
		}
		if rows[i].pattern != rows[j].pattern {
			return rows[i].pattern < rows[j].pattern
		}
		return rows[i].lat < rows[j].lat
	})
	tbl := stats.NewTable("topology", "pattern", "design point", "rate",
		"lat(clk)", "fJ/bit", "CLEAR").AlignRight(3, 4, 5, 6)
	for _, r := range rows {
		tbl.AddRow(r.kind, r.pattern, r.point,
			strconv.FormatFloat(r.rate, 'g', 4, 64),
			strconv.FormatFloat(r.lat, 'f', 1, 64),
			strconv.FormatFloat(r.fj, 'f', 0, 64),
			strconv.FormatFloat(r.clear, 'f', 4, 64))
	}
	return tbl.String()
}

// WriteFaultSweep emits the reliability dataset: one row per (topology,
// design point, device variant, pattern, fault rate) sample with the
// availability, delivery and CLEAR-degradation measurements.
func WriteFaultSweep(w io.Writer, results []core.FaultSweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"topology", "base", "express", "hops", "variant", "pattern",
		"fault_rate", "availability", "down_link_frac", "saturated_epochs",
		"packets_injected", "packets_delivered", "packets_dropped", "packets_unroutable",
		"retransmits", "avg_latency_clks", "fj_per_bit",
		"trim_overhead_w", "max_drift", "clear_sim", "clear_degradation",
	}); err != nil {
		return err
	}
	for _, r := range results {
		for _, p := range r.Points {
			if err := cw.Write([]string{
				sweepKind(r.Kind),
				r.Point.Base.String(), r.Point.Express.String(), strconv.Itoa(r.Point.Hops),
				r.Variant, r.Pattern,
				f(p.FaultRate), f(p.Availability), f(p.DownLinkFrac),
				strconv.Itoa(p.SaturatedEpochs),
				strconv.FormatInt(p.PacketsInjected, 10),
				strconv.FormatInt(p.PacketsDelivered, 10),
				strconv.FormatInt(p.PacketsDropped, 10),
				strconv.FormatInt(p.PacketsUnroutable, 10),
				strconv.FormatInt(p.Retransmits, 10),
				f(p.AvgLatencyClks), f(p.FJPerBit),
				f(p.TrimOverheadW), f(p.MaxDrift),
				f(p.CLEAR), f(p.CLEARDegradation),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// FaultTable renders the availability / CLEAR-degradation matrix as an
// aligned text table: one row per (cell, fault rate) sample.
func FaultTable(results []core.FaultSweepResult) string {
	tbl := stats.NewTable("topology", "design point", "pattern", "fault",
		"avail", "unroutable", "dropped", "retx", "lat(clk)", "fJ/bit", "CLEAR×").
		AlignRight(3, 4, 5, 6, 7, 8, 9, 10)
	for _, r := range results {
		for _, p := range r.Points {
			tbl.AddRow(string(r.Kind), r.PointLabel(), r.Pattern,
				strconv.FormatFloat(p.FaultRate, 'g', 4, 64),
				strconv.FormatFloat(p.Availability, 'f', 4, 64),
				strconv.FormatInt(p.PacketsUnroutable, 10),
				strconv.FormatInt(p.PacketsDropped, 10),
				strconv.FormatInt(p.Retransmits, 10),
				strconv.FormatFloat(p.AvgLatencyClks, 'f', 1, 64),
				strconv.FormatFloat(p.FJPerBit, 'f', 0, 64),
				strconv.FormatFloat(p.CLEARDegradation, 'f', 3, 64))
		}
	}
	return tbl.String()
}

// WriteTaskGraphSweep emits the closed-loop task-graph dataset: one row
// per (topology kind, design point, graph) cell with the end-to-end
// makespan, its contention-free lower bound and the stretch between them.
func WriteTaskGraphSweep(w io.Writer, results []core.TaskGraphResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"topology", "base", "express", "hops", "graph",
		"messages", "total_flits", "makespan_clks", "lower_bound_clks",
		"stretch", "avg_latency_clks", "p99_latency_clks", "cycles",
	}); err != nil {
		return err
	}
	for _, r := range results {
		if err := cw.Write([]string{
			sweepKind(r.Kind), r.Point.Base.String(), r.Point.Express.String(), strconv.Itoa(r.Point.Hops),
			r.Graph,
			strconv.Itoa(r.Messages), strconv.FormatInt(r.TotalFlits, 10),
			strconv.FormatInt(r.MakespanClks, 10), strconv.FormatInt(r.LowerBoundClks, 10),
			f(r.Stretch), f(r.AvgLatencyClks), f(r.P99LatencyClks),
			strconv.FormatInt(r.Cycles, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TaskGraphTable renders the closed-loop makespan matrix as an aligned
// text table: one row per (topology kind, design point, graph) with the
// makespan against its contention-free bound — stretch 1.00 means the
// network never delayed the schedule.
func TaskGraphTable(results []core.TaskGraphResult) string {
	tbl := stats.NewTable("topology", "design point", "graph", "msgs",
		"makespan (clk)", "bound (clk)", "stretch", "avg lat", "p99 lat").
		AlignRight(3, 4, 5, 6, 7, 8)
	for _, r := range results {
		tbl.AddRow(sweepKind(r.Kind), r.PointLabel(), r.Graph,
			strconv.Itoa(r.Messages),
			strconv.FormatInt(r.MakespanClks, 10),
			strconv.FormatInt(r.LowerBoundClks, 10),
			strconv.FormatFloat(r.Stretch, 'f', 2, 64),
			strconv.FormatFloat(r.AvgLatencyClks, 'f', 1, 64),
			strconv.FormatFloat(r.P99LatencyClks, 'f', 1, 64))
	}
	return tbl.String()
}

// WriteRadar emits the Fig. 8 dataset: one row per corner.
func WriteRadar(w io.Writer, radar optical.Radar) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"corner", "energy_j_per_bit", "latency_clks", "area_mm2",
		"mean_path_loss_db", "worst_path_loss_db",
	}); err != nil {
		return err
	}
	rows := []struct {
		name string
		p    optical.Projection
	}{
		{"electronic", radar.Electronic},
		{"all_photonic", radar.Photonic},
		{"all_hyppi", radar.HyPPI},
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.name, f(r.p.EnergyPerBitJ), f(r.p.LatencyClks),
			f(r.p.AreaM2 / units.MillimetreSq),
			f(r.p.MeanPathLossDB), f(r.p.WorstPathLossDB),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSONLine renders v as one compact JSON line without a trailing
// newline: no indentation, no HTML escaping (the wire protocol is not
// HTML, so <, > and & stay literal). For struct inputs the encoding is
// byte-stable — fields render in declaration order with Go's
// shortest-round-trip float formatting — which is what lets the serving
// layer (internal/serve) promise bit-identical responses for identical
// queries and pin them in golden files. Map inputs sort their keys (the
// encoding/json contract) and are equally stable.
func JSONLine(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// WriteJSONLines emits one JSONLine per row — the JSON-lines counterpart
// of the CSV writers for downstream tools that prefer jq to csvkit.
func WriteJSONLines[T any](w io.Writer, rows []T) error {
	for _, r := range rows {
		line, err := JSONLine(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Check validates that a CSV stream parses and has the expected column
// count on every row; used by the orchestrator as a write-through sanity
// check.
func Check(r io.Reader) (rows int, err error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, fmt.Errorf("report: empty CSV")
	}
	for i, rec := range recs {
		if len(rec) != len(recs[0]) {
			return 0, fmt.Errorf("report: row %d has %d fields, header has %d",
				i, len(rec), len(recs[0]))
		}
	}
	return len(recs) - 1, nil
}
