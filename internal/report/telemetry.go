package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// WriteTelemetrySweep emits the windowed probe census in long form: one
// row per retained window per instrumented cell, with the window's
// throughput, link-utilization and occupancy summary statistics.
func WriteTelemetrySweep(w io.Writer, results []core.TelemetryResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"topology", "base", "express", "hops", "pattern", "rate",
		"window", "start_clk", "end_clk",
		"injected_flits", "ejected_flits",
		"mean_link_util", "max_link_util", "max_link",
		"mean_occupancy", "max_occupancy", "max_router",
	}); err != nil {
		return err
	}
	for _, r := range results {
		p := r.Probes
		if p == nil {
			continue
		}
		for i := 0; i < p.Windows(); i++ {
			win := p.Window(i)
			maxLink, maxUtil := win.MaxLink()
			maxRouter, maxOcc := win.MaxOccupancy()
			if err := cw.Write([]string{
				sweepKind(r.Kind),
				r.Point.Base.String(), r.Point.Express.String(), strconv.Itoa(r.Point.Hops),
				r.Pattern, f(r.Rate),
				strconv.FormatInt(win.Index(), 10),
				strconv.FormatInt(win.StartClk(), 10),
				strconv.FormatInt(win.EndClk(), 10),
				strconv.FormatInt(win.InjectedFlits(), 10),
				strconv.FormatInt(win.EjectedFlits(), 10),
				f(win.MeanLinkUtil()), f(maxUtil), strconv.Itoa(maxLink),
				f(win.MeanOccupancy()), strconv.FormatInt(maxOcc, 10), strconv.Itoa(maxRouter),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SpanTable renders the first limit sampled spans (0 = all) as an aligned
// text table: endpoints, latency, hop count, and the hop where the packet
// queued longest.
func SpanTable(tr *telemetry.Trace, limit int) string {
	tbl := stats.NewTable("pkt", "src", "dst", "flits", "release",
		"inject", "eject", "lat(clk)", "hops", "hotspot", "wait(clk)").
		AlignRight(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	n := len(tr.Spans)
	if limit > 0 && n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		s := &tr.Spans[i]
		eject, lat := "-", "-"
		if s.EjectClk >= 0 {
			eject = strconv.FormatInt(s.EjectClk, 10)
			lat = strconv.FormatInt(s.LatencyClks(), 10)
		}
		if s.Dropped {
			lat = "drop"
		}
		hot, wait := s.MaxWaitClks()
		hotCell := "-"
		if hot >= 0 {
			hotCell = strconv.Itoa(int(hot))
		}
		tbl.AddRow(
			strconv.Itoa(int(s.Packet)),
			strconv.Itoa(int(s.Src)), strconv.Itoa(int(s.Dst)),
			strconv.Itoa(s.SizeFlits),
			strconv.FormatInt(s.ReleaseClk, 10),
			strconv.FormatInt(s.InjectClk, 10),
			eject, lat,
			strconv.Itoa(len(s.Hops)),
			hotCell, strconv.FormatInt(wait, 10))
	}
	out := tbl.String()
	if skipped := len(tr.Spans) - n; skipped > 0 {
		out += fmt.Sprintf("(+%d more spans)\n", skipped)
	}
	if tr.Truncated > 0 {
		out += fmt.Sprintf("(%d sampled packets dropped by the span cap)\n", tr.Truncated)
	}
	return out
}

// shadeRamp maps a [0,1] intensity onto a text shade.
const shadeRamp = " .:-=+*#%@"

func shade(v, max float64) byte {
	if max <= 0 || v <= 0 {
		return shadeRamp[0]
	}
	i := int(v / max * float64(len(shadeRamp)-1))
	if i >= len(shadeRamp) {
		i = len(shadeRamp) - 1
	}
	return shadeRamp[i]
}

// ProbeTimeline renders one line per retained window: throughput numbers
// plus shaded mean-utilization and mean-occupancy sparklines, the quick
// did-the-run-breathe view.
func ProbeTimeline(p *telemetry.Probes) string {
	tbl := stats.NewTable("window", "cycles", "inject", "eject",
		"util", "u", "occ", "o").AlignRight(0, 1, 2, 3, 4, 6)
	var maxUtil, maxOcc float64
	for i := 0; i < p.Windows(); i++ {
		w := p.Window(i)
		if u := w.MeanLinkUtil(); u > maxUtil {
			maxUtil = u
		}
		if o := w.MeanOccupancy(); o > maxOcc {
			maxOcc = o
		}
	}
	for i := 0; i < p.Windows(); i++ {
		w := p.Window(i)
		tbl.AddRow(
			strconv.FormatInt(w.Index(), 10),
			fmt.Sprintf("%d-%d", w.StartClk(), w.EndClk()-1),
			strconv.FormatInt(w.InjectedFlits(), 10),
			strconv.FormatInt(w.EjectedFlits(), 10),
			strconv.FormatFloat(w.MeanLinkUtil(), 'f', 4, 64),
			string(shade(w.MeanLinkUtil(), maxUtil)),
			strconv.FormatFloat(w.MeanOccupancy(), 'f', 2, 64),
			string(shade(w.MeanOccupancy(), maxOcc)))
	}
	out := tbl.String()
	if ev := p.Evicted(); ev > 0 {
		out += fmt.Sprintf("(%d older windows evicted by the ring bound)\n", ev)
	}
	return out
}

// PeakWindow returns the retained window with the highest mean link
// utilization (-1 when none are retained) — the natural window to render
// as a heatmap.
func PeakWindow(p *telemetry.Probes) int {
	best, bestUtil := -1, -1.0
	for i := 0; i < p.Windows(); i++ {
		if u := p.Window(i).MeanLinkUtil(); u > bestUtil {
			best, bestUtil = i, u
		}
	}
	return best
}

// ProbeOccupancyGrid renders one retained window's buffer occupancy over
// the node grid as a Width×Height shade map (row 0 at the top).
func ProbeOccupancyGrid(p *telemetry.Probes, net *topology.Network, window int) string {
	w := p.Window(window)
	var max float64
	for r := 0; r < p.NumRouters(); r++ {
		if o := float64(w.Occupancy(r)); o > max {
			max = o
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "occupancy at close of window %d (cycles %d-%d), max %.0f flits:\n",
		w.Index(), w.StartClk(), w.EndClk()-1, max)
	width, height := net.Config.Width, net.Config.Height
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			b.WriteByte(shade(float64(w.Occupancy(int(net.Node(x, y)))), max))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ProbeLinkHeatmap renders the per-window utilization of the topK busiest
// channels (by whole-run flit total): one row per retained window, one
// shade column per channel — where and when the hotspots move.
func ProbeLinkHeatmap(p *telemetry.Probes, net *topology.Network, topK int) string {
	totals := make([]int64, p.NumLinks())
	for i := 0; i < p.Windows(); i++ {
		w := p.Window(i)
		for l := range totals {
			totals[l] += w.LinkFlits(l)
		}
	}
	order := make([]int, len(totals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if totals[order[a]] != totals[order[b]] {
			return totals[order[a]] > totals[order[b]]
		}
		return order[a] < order[b]
	})
	if topK > 0 && len(order) > topK {
		order = order[:topK]
	}
	var b strings.Builder
	b.WriteString("link utilization per window (busiest channels left):\n")
	for _, l := range order {
		lk := net.Links[l]
		fmt.Fprintf(&b, "  link %d: %d->%d (%s, %d flits)\n",
			l, lk.Src, lk.Dst, lk.Tech, totals[l])
	}
	for i := 0; i < p.Windows(); i++ {
		w := p.Window(i)
		fmt.Fprintf(&b, "w%-4d ", w.Index())
		for _, l := range order {
			b.WriteByte(shade(w.LinkUtil(l), 1))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
