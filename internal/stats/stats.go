// Package stats provides the small measurement toolkit used across the
// experiments: streaming summaries (mean/min/max), exact quantiles over
// recorded samples, fixed-width histograms for latency distributions, and
// plain-text table rendering for the command-line tools.
package stats

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
)

// Summary accumulates streaming scalar statistics without storing samples.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 for empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min and Max return the extremes (0 for empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the population variance (0 for fewer than two samples).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		return 0 // float cancellation guard
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Sample stores values for exact quantile queries.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add records one value.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Grow preallocates capacity for n further values, so a caller that knows
// its sample count up front avoids repeated append growth.
func (s *Sample) Grow(n int) {
	if n > 0 {
		s.vals = slices.Grow(s.vals, n)
	}
}

// Reset discards all recorded values, keeping the backing array so a
// reused sample (see noc.Sim.Reset) records without reallocating.
func (s *Sample) Reset() {
	s.vals = s.vals[:0]
	s.sorted = false
}

// N returns the number of recorded values.
func (s *Sample) N() int { return len(s.vals) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// between closest ranks; 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	pos := q * float64(len(s.vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.vals[lo]
	}
	frac := pos - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Histogram counts samples into fixed-width bins over [lo, hi); samples
// outside the range land in the boundary bins.
type Histogram struct {
	lo, width float64
	counts    []int64
	total     int64
}

// NewHistogram creates a histogram with bins fixed-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins)
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(bins), counts: make([]int64, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	i := int((v - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Total returns the sample count.
func (h *Histogram) Total() int64 { return h.total }

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int64 { return h.counts[i] }

// Bins returns the bin count.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinRange returns the [lo, hi) interval of bin i.
func (h *Histogram) BinRange(i int) (float64, float64) {
	return h.lo + float64(i)*h.width, h.lo + float64(i+1)*h.width
}

// Render draws a proportional ASCII bar chart, one line per non-empty bin.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	var peak int64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := h.BinRange(i)
		bar := int(float64(width) * float64(c) / float64(peak))
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%10.1f–%-10.1f %8d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Table renders aligned plain-text tables for the CLI tools. Columns are
// left-aligned by default; numeric columns should be right-aligned (see
// AlignRight) so magnitudes line up whatever the width of the name columns
// beside them.
type Table struct {
	header []string
	rows   [][]string
	right  []bool
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header, right: make([]bool, len(header))}
}

// AlignRight marks columns (0-based) as right-aligned and returns the
// table for chaining: NewTable("name", "W").AlignRight(1). Out-of-range
// columns are ignored.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.right) {
			t.right[c] = true
		}
	}
	return t
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment. Lines never carry
// trailing padding: the last cell of a row ends the line (diff- and
// golden-test-friendly).
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	var line strings.Builder
	writeRow := func(cells []string) {
		line.Reset()
		for i, c := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			pad := strings.Repeat(" ", widths[i]-len([]rune(c)))
			if t.right[i] {
				line.WriteString(pad)
				line.WriteString(c)
			} else {
				line.WriteString(c)
				line.WriteString(pad)
			}
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
