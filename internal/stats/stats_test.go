package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 || s.Variance() != 0 {
		t.Error("empty summary must be zero-valued")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Known population stddev of this classic dataset is 2.
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", s.StdDev())
	}
}

func TestSummaryVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Bound magnitudes to avoid float overflow in sumSq.
			s.Add(math.Mod(v, 1e6))
		}
		return s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 {
		t.Error("empty sample quantile must be 0")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Q(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if s.Mean() != 50.5 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestSampleQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(rng.NormFloat64() * 10)
	}
	f := func(rawA, rawB float64) bool {
		a := math.Mod(math.Abs(rawA), 1)
		b := math.Mod(math.Abs(rawB), 1)
		if a > b {
			a, b = b, a
		}
		return s.Quantile(a) <= s.Quantile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(10)
	if s.Quantile(0.5) != 10 {
		t.Error("single sample median")
	}
	s.Add(0) // must re-sort
	if got := s.Quantile(0); got != 0 {
		t.Errorf("Q(0) after late add = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(-5)  // clamps into bin 0
	h.Add(500) // clamps into last bin
	if h.Total() != 102 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Bin(0) != 11 { // 0..9 plus the clamped -5
		t.Errorf("bin 0 = %d, want 11", h.Bin(0))
	}
	if h.Bin(9) != 11 { // 90..99 plus the clamped 500
		t.Errorf("bin 9 = %d, want 11", h.Bin(9))
	}
	lo, hi := h.BinRange(3)
	if lo != 30 || hi != 40 {
		t.Errorf("bin 3 range [%v,%v)", lo, hi)
	}
	if h.Bins() != 10 {
		t.Errorf("bins = %d", h.Bins())
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Error("render should draw bars")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 0, 10); err == nil {
		t.Error("hi <= lo must fail")
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins must fail")
	}
}

func TestHistogramEmptyRender(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if got := h.Render(10); got != "(empty)\n" {
		t.Errorf("empty render = %q", got)
	}
}

func TestHistogramConservesSamplesProperty(t *testing.T) {
	h, _ := NewHistogram(-50, 50, 7)
	f := func(vs []float64) bool {
		before := h.Total()
		n := int64(0)
		for _, v := range vs {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		var binSum int64
		for i := 0; i < h.Bins(); i++ {
			binSum += h.Bin(i)
		}
		return h.Total() == before+n && binSum == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("kernel", "latency", "speedup")
	tb.AddRow("CG", "142.0", "1.29x")
	tb.AddRow("LU", "14.0") // short row padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "kernel") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator line %q", lines[1])
	}
	if !strings.Contains(lines[2], "CG") || !strings.Contains(lines[2], "1.29x") {
		t.Errorf("row line %q", lines[2])
	}
	// Columns align: "latency" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "latency")
	if !strings.HasPrefix(lines[2][idx:], "142.0") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

// TestTableAlignment: right-aligned columns line their cells up against
// the column's right edge, and no rendered line carries trailing padding
// whatever the alignment of the last column.
func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value", "note").AlignRight(1)
	tb.AddRow("a-very-long-name", "7.5", "x")
	tb.AddRow("b", "1234.0", "")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Right edge of "value" column is fixed: both numbers end at the
	// same offset.
	end0 := strings.Index(lines[2], "7.5") + len("7.5")
	end1 := strings.Index(lines[3], "1234.0") + len("1234.0")
	if end0 != end1 {
		t.Errorf("right-aligned column edges differ (%d vs %d):\n%s", end0, end1, out)
	}
	for i, l := range lines {
		if l != strings.TrimRight(l, " ") {
			t.Errorf("line %d has trailing padding: %q", i, l)
		}
	}
	// Out-of-range AlignRight columns are ignored, not a panic.
	NewTable("x").AlignRight(-1, 5).AddRow("v")
}

func TestHistogramSingleBinRender(t *testing.T) {
	h, _ := NewHistogram(0, 10, 1)
	h.Add(3)
	h.Add(7)
	out := h.Render(10)
	if lines := strings.Count(out, "\n"); lines != 1 {
		t.Fatalf("single-bin render has %d lines, want 1:\n%s", lines, out)
	}
	if !strings.Contains(out, "2") || !strings.Contains(out, "#") {
		t.Errorf("single-bin render missing count or bar: %q", out)
	}
	if h.Total() != 2 || h.Bin(0) != 2 {
		t.Errorf("single bin holds %d of %d samples", h.Bin(0), h.Total())
	}
}

func TestHistogramOutOfRangeRender(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	h.Add(-100) // clamps into the first bin
	h.Add(100)  // clamps into the last bin
	h.Add(5)
	if h.Total() != 3 {
		t.Fatalf("total %d, want 3 (out-of-range samples must be kept)", h.Total())
	}
	if h.Bin(0) != 1 || h.Bin(4) != 1 || h.Bin(2) != 1 {
		t.Errorf("bins = [%d %d %d %d %d], want clamped 1,0,1,0,1",
			h.Bin(0), h.Bin(1), h.Bin(2), h.Bin(3), h.Bin(4))
	}
	out := h.Render(10)
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("render has %d lines, want 3 non-empty bins:\n%s", lines, out)
	}
	// Rendered ranges stay the declared bin bounds — clamping must not
	// invent ranges covering the out-of-range samples.
	if !strings.Contains(out, "0.0–2.0") || !strings.Contains(out, "8.0–10.0") {
		t.Errorf("render ranges drifted from the declared bins:\n%s", out)
	}
}

func TestQuantileEndpointsExact(t *testing.T) {
	var s Sample
	for _, v := range []float64{42, -7, 13, 99.5, 0} {
		s.Add(v)
	}
	// q=0 and q=1 are exact order statistics, never interpolated.
	if got := s.Quantile(0); got != -7 {
		t.Errorf("Q(0) = %v, want the minimum -7", got)
	}
	if got := s.Quantile(1); got != 99.5 {
		t.Errorf("Q(1) = %v, want the maximum 99.5", got)
	}
	// Out-of-range q clamps to the same order statistics.
	if got := s.Quantile(-0.5); got != -7 {
		t.Errorf("Q(-0.5) = %v, want -7", got)
	}
	if got := s.Quantile(2); got != 99.5 {
		t.Errorf("Q(2) = %v, want 99.5", got)
	}
}

func TestQuantileInterpolationExact(t *testing.T) {
	// Four sorted values 10,20,30,40: position q*(n-1) interpolates
	// linearly between neighbors.
	var s Sample
	for _, v := range []float64{40, 10, 30, 20} {
		s.Add(v)
	}
	cases := []struct{ q, want float64 }{
		{1.0 / 3, 20}, // exactly on the second value
		{0.5, 25},     // midway between 20 and 30
		{1.0 / 6, 15}, // midway between 10 and 20
		{0.9, 37},     // pos 2.7 → 30 + 0.7*(40-30)
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Q(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}
