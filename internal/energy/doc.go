// Package energy is the runtime energy-accounting subsystem: it prices
// *measured* simulator activity with the modified-DSENT technology
// coefficients, where the analytic path (internal/analytic) *estimates*
// activity from offered injection rates.
//
// A Model folds the per-component coefficients (tech Table I via the dsent
// models) over one built network once; Price then converts the activity
// census of a run (noc.Stats.Activity plus the per-link/per-router flit
// counters) into energy in O(counters):
//
//   - dynamic energy from measured events — flit-hops per link class
//     (electronic / photonic / plasmonic / HyPPI channels), buffer writes
//     and reads, crossbar traversals, E-O modulator drives and O-E
//     detector receptions at optical hop boundaries, SERDES switching —
//     each multiplied by its switching-only coefficient
//     (dsent.LinkCost.ActivityJPerFlit and the RouterCost split);
//   - static energy by integrating always-on power (laser, photonic
//     thermal tuning, SERDES clocking, wire repeater leakage, router
//     leakage) over the simulated cycles.
//
// The two sums yield the run's measured fJ/bit and a component power
// breakdown (RunEnergy). This replaces the DSENT load-point convention —
// always-on power amortized into a per-flit figure at a reference
// utilization — with real time-integrated static energy, so runs far from
// the reference load point are priced honestly.
//
// SimulatedCLEAR evaluates the paper's eq. 2 figure of merit from the same
// measured counters: latency, utilization and hence R = U/r come from the
// simulation instead of the analytic estimate. Power keeps DSENT's
// amortized per-flit convention there (and only there) because eq. 2 is
// defined with it — which makes the simulated CLEAR converge to
// analytic.Evaluate's value as offered load approaches zero, the anchor
// the convergence tests pin within 1%.
package energy
