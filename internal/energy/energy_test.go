package energy

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/dsent"
	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

// buildPoint wires a 16×16 design point (the paper's grid).
func buildPoint(t testing.TB, base, express tech.Technology, hops int) (*topology.Network, *routing.Table) {
	t.Helper()
	c := topology.DefaultConfig()
	c.BaseTech = base
	c.ExpressTech = express
	c.ExpressHops = hops
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return net, routing.MustBuild(net, routing.MonotoneExpress)
}

// runSoteriou simulates a Bernoulli draw of the Soteriou matrix scaled to
// the given peak rate.
func runSoteriou(t testing.TB, net *topology.Network, tab *routing.Table,
	rate float64, cycles int64, seed int64) noc.Stats {
	t.Helper()
	tm := traffic.MustSoteriou(net, traffic.DefaultSoteriou()).ScaledToMaxRate(rate)
	w := noc.BernoulliWorkload{SizeFlits: 1, Cycles: cycles, Seed: seed}
	pkts, err := w.Generate(net, tm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := noc.New(net, tab, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestModelMatchesAnalyticStatics: the model's folded static power and
// area must agree exactly with analytic.Evaluate's — both walk the same
// dsent components over the same network.
func TestModelMatchesAnalyticStatics(t *testing.T) {
	for _, p := range []struct {
		base, express tech.Technology
		hops          int
	}{
		{tech.Electronic, tech.Electronic, 0},
		{tech.Electronic, tech.HyPPI, 3},
		{tech.HyPPI, tech.HyPPI, 3},
		{tech.Electronic, tech.Photonic, 5},
	} {
		net, tab := buildPoint(t, p.base, p.express, p.hops)
		m, err := NewModel(net, dsent.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tm := traffic.MustSoteriou(net, traffic.DefaultSoteriou())
		res, err := analytic.Evaluate(net, tab, tm, analytic.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if !units.ApproxEqual(m.StaticW(), res.StaticW, 1e-12) {
			t.Errorf("%v: model static %v W != analytic %v W", net, m.StaticW(), res.StaticW)
		}
		if !units.ApproxEqual(m.AreaM2(), res.AreaM2, 1e-12) {
			t.Errorf("%v: model area %v != analytic %v", net, m.AreaM2(), res.AreaM2)
		}
		if !units.ApproxEqual(m.Static().TotalW(), m.StaticW(), 1e-12) {
			t.Errorf("%v: static breakdown %v does not sum to %v", net, m.Static(), m.StaticW())
		}
	}
}

// TestPriceBreakdownConsistency: the component views of one run must
// reconcile — per-class link energy equals the wire/modulator/SERDES/
// receiver split, the amortized figure reprices the same counters with
// dsent's DynamicJPerFlit, and every energy is non-negative.
func TestPriceBreakdownConsistency(t *testing.T) {
	net, tab := buildPoint(t, tech.Electronic, tech.HyPPI, 3)
	m, err := NewModel(net, dsent.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := runSoteriou(t, net, tab, 0.05, 3000, 17)
	r, err := m.Price(st)
	if err != nil {
		t.Fatal(err)
	}
	var links float64
	for _, j := range r.Dynamic.LinkJ {
		links += j
	}
	split := r.Dynamic.WireJ + r.Dynamic.ModulatorJ + r.Dynamic.SerdesJ + r.Dynamic.ReceiverJ
	if !units.ApproxEqual(links, split, 1e-9) {
		t.Errorf("per-class link energy %v != component split %v", links, split)
	}
	if !units.ApproxEqual(r.DynamicJ, links+r.Dynamic.BufferJ+r.Dynamic.CrossbarJ, 1e-9) {
		t.Errorf("DynamicJ %v != links %v + buffer %v + crossbar %v",
			r.DynamicJ, links, r.Dynamic.BufferJ, r.Dynamic.CrossbarJ)
	}
	if !units.ApproxEqual(r.TotalJ, r.DynamicJ+r.StaticJ, 1e-12) {
		t.Errorf("TotalJ %v != dynamic %v + static %v", r.TotalJ, r.DynamicJ, r.StaticJ)
	}
	if r.Dynamic.LinkJ[tech.HyPPI] <= 0 || r.Dynamic.ModulatorJ <= 0 || r.Dynamic.ReceiverJ <= 0 {
		t.Errorf("hybrid run should spend HyPPI and conversion energy: %+v", r.Dynamic)
	}
	if r.Dynamic.ExpressJ <= 0 || r.Dynamic.ExpressJ > links {
		t.Errorf("express share %v out of (0, %v]", r.Dynamic.ExpressJ, links)
	}
	if r.AmortizedDynamicJ <= r.DynamicJ {
		t.Errorf("amortized %v should exceed activity-only %v (always-on share)",
			r.AmortizedDynamicJ, r.DynamicJ)
	}

	// Reprice by hand with the raw dsent coefficients.
	var wantAmort float64
	cfg := dsent.DefaultConfig()
	for i, l := range net.Links {
		lc, err := dsent.Link(cfg, l.Tech, l.LengthM)
		if err != nil {
			t.Fatal(err)
		}
		wantAmort += float64(st.LinkFlits[i]) * lc.DynamicJPerFlit
	}
	rc := dsent.ElectronicRouter(cfg, 5)
	for _, f := range st.RouterFlits {
		wantAmort += float64(f) * rc.DynamicJPerFlit
	}
	if !units.ApproxEqual(r.AmortizedDynamicJ, wantAmort, 1e-9) {
		t.Errorf("AmortizedDynamicJ %v != hand-priced %v", r.AmortizedDynamicJ, wantAmort)
	}
	if r.FJPerBit <= 0 {
		t.Errorf("FJPerBit %v", r.FJPerBit)
	}
}

// TestPriceRejectsForeignStats: counters from a different network shape
// must be refused, not mispriced.
func TestPriceRejectsForeignStats(t *testing.T) {
	net, _ := buildPoint(t, tech.Electronic, tech.Electronic, 0)
	m, err := NewModel(net, dsent.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Price(noc.Stats{Cycles: 10, LinkFlits: make([]int64, 3)}); err == nil {
		t.Error("foreign stats priced without error")
	}
	if _, err := m.Price(noc.Stats{LinkFlits: make([]int64, len(net.Links))}); err == nil {
		t.Error("zero-cycle run priced without error")
	}
}

// convergencePoint compares the measured accounting against
// analytic.Evaluate on one design point at a near-zero offered load,
// returning the relative errors of fJ/bit and CLEAR.
func convergencePoint(t *testing.T, base, express tech.Technology, hops int) (fjErr, clearErr float64) {
	t.Helper()
	const (
		rate   = 0.005
		cycles = 60000
	)
	net, tab := buildPoint(t, base, express, hops)
	m, err := NewModel(net, dsent.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tm := traffic.MustSoteriou(net, traffic.DefaultSoteriou()).ScaledToMaxRate(rate)
	res, err := analytic.Evaluate(net, tab, tm, analytic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	st := runSoteriou(t, net, tab, rate, cycles, 23)
	run, err := m.Price(st)
	if err != nil {
		t.Fatal(err)
	}
	clear, err := m.SimulatedCLEAR(st, rate)
	if err != nil {
		t.Fatal(err)
	}
	// The analytic path has no time axis: its fJ/bit is power over
	// delivered bandwidth at the operating point.
	deliveredBps := tm.MeanRowSum() * float64(net.NumNodes()) *
		float64(m.cfg.FlitBits) * m.cfg.ClockHz
	wantFJ := res.PowerW / deliveredBps / units.Femto
	fjErr = math.Abs(run.FJPerBit-wantFJ) / wantFJ
	clearErr = math.Abs(clear.Value-res.CLEAR) / res.CLEAR
	t.Logf("%v: fJ/bit measured %.4g vs analytic %.4g (%.3f%%), CLEAR %.6g vs %.6g (%.3f%%)",
		net, run.FJPerBit, wantFJ, 100*fjErr, clear.Value, res.CLEAR, 100*clearErr)
	return fjErr, clearErr
}

// TestZeroLoadConvergence pins the subsystem's anchor: at near-zero load
// the measured fJ/bit and the simulated CLEAR agree with the analytic
// eq. 2 evaluation within 1% on the paper's Fig. 5 best point (HyPPI mesh
// + HyPPI express@3) and the Table III hop ladder.
func TestZeroLoadConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence runs 16×16 simulations; skipped in -short")
	}
	points := []struct {
		name          string
		base, express tech.Technology
		hops          int
	}{
		{"fig5-best", tech.HyPPI, tech.HyPPI, 3},
		{"table3-plain", tech.Electronic, tech.HyPPI, 0},
		{"table3-h3", tech.Electronic, tech.HyPPI, 3},
		{"table3-h5", tech.Electronic, tech.HyPPI, 5},
		{"table3-h15", tech.Electronic, tech.HyPPI, 15},
	}
	for _, p := range points {
		t.Run(p.name, func(t *testing.T) {
			fjErr, clearErr := convergencePoint(t, p.base, p.express, p.hops)
			if fjErr > 0.01 {
				t.Errorf("fJ/bit off by %.3f%% (limit 1%%)", 100*fjErr)
			}
			if clearErr > 0.01 {
				t.Errorf("CLEAR off by %.3f%% (limit 1%%)", 100*clearErr)
			}
		})
	}
}

// TestSimulatedCLEARMeasuredRateFallback: with no offered rate the
// measured peak source rate stands in, and the result stays within a few
// percent of the known-rate evaluation on a long run.
func TestSimulatedCLEARMeasuredRateFallback(t *testing.T) {
	net, tab := buildPoint(t, tech.Electronic, tech.Electronic, 0)
	m, err := NewModel(net, dsent.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := runSoteriou(t, net, tab, 0.05, 5000, 31)
	known, err := m.SimulatedCLEAR(st, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := m.SimulatedCLEAR(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if measured.OfferedRate <= 0 {
		t.Fatalf("fallback rate %v", measured.OfferedRate)
	}
	if ratio := measured.Value / known.Value; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("measured-rate CLEAR %v too far from known-rate %v", measured.Value, known.Value)
	}
}
