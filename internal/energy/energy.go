package energy

import (
	"fmt"

	"repro/internal/dsent"
	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/units"
)

// Model holds the per-link and per-router energy coefficients of one built
// network, folded once so pricing a run is a linear pass over its counters.
// A Model is immutable after New and safe for concurrent use — sweeps share
// one instance per design point exactly like networks and routing tables.
type Model struct {
	net *topology.Network
	cfg dsent.Config

	// Per-link coefficients, indexed by topology.LinkID.
	linkActJ   []float64 // switching-only J per traversal
	linkDynJ   []float64 // DSENT load-point J per traversal (incl. amortized share)
	linkModJ   []float64 // E-O modulator + driver share of linkActJ
	linkRxJ    []float64 // O-E receiver share
	linkSerdJ  []float64 // SERDES share
	linkWireJ  []float64 // electronic wire share
	linkClass  []tech.Technology
	linkExpr   []bool
	routerCost dsent.RouterCost // dynamic split is port-independent

	staticW float64
	static  StaticPower
	areaM2  float64
}

// StaticPower decomposes always-on power by component, in watts.
type StaticPower struct {
	// LaserW is total laser wall-plug power (sized per link from its
	// loss budget).
	LaserW float64
	// TuningW is microring thermal-trimming power (photonic links only).
	TuningW float64
	// SerdesW is serializer/clocking leakage of the optical link
	// electronics.
	SerdesW float64
	// WireLeakW is electronic-link repeater leakage.
	WireLeakW float64
	// RouterW is router leakage (clock tree, buffers, drivers).
	RouterW float64
}

// TotalW sums the components.
func (s StaticPower) TotalW() float64 {
	return s.LaserW + s.TuningW + s.SerdesW + s.WireLeakW + s.RouterW
}

// NewModel folds the dsent coefficients over a network. Distinct (tech,
// length) link classes are evaluated once and shared.
func NewModel(net *topology.Network, cfg dsent.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nl := len(net.Links)
	m := &Model{
		net:       net,
		cfg:       cfg,
		linkActJ:  make([]float64, nl),
		linkDynJ:  make([]float64, nl),
		linkModJ:  make([]float64, nl),
		linkRxJ:   make([]float64, nl),
		linkSerdJ: make([]float64, nl),
		linkWireJ: make([]float64, nl),
		linkClass: make([]tech.Technology, nl),
		linkExpr:  make([]bool, nl),
	}
	type key struct {
		t tech.Technology
		l float64
	}
	costs := map[key]dsent.LinkCost{}
	for i, l := range net.Links {
		k := key{l.Tech, l.LengthM}
		lc, ok := costs[k]
		if !ok {
			var err error
			lc, err = dsent.Link(cfg, l.Tech, l.LengthM)
			if err != nil {
				return nil, fmt.Errorf("energy: link %d: %w", i, err)
			}
			costs[k] = lc
		}
		m.linkActJ[i] = lc.ActivityJPerFlit()
		m.linkDynJ[i] = lc.DynamicJPerFlit
		m.linkModJ[i] = lc.ModulatorJPerFlit
		m.linkRxJ[i] = lc.ReceiverJPerFlit
		m.linkSerdJ[i] = lc.SerdesJPerFlit
		m.linkWireJ[i] = lc.WireJPerFlit
		m.linkClass[i] = l.Tech
		m.linkExpr[i] = l.Express
		m.areaM2 += lc.AreaM2
		m.static.LaserW += lc.LaserW
		m.static.TuningW += lc.TuningW
		if l.Tech.IsOptical() {
			m.static.SerdesW += lc.StaticW - lc.LaserW - lc.TuningW
		} else {
			m.static.WireLeakW += lc.StaticW
		}
	}
	routerCosts := map[int]dsent.RouterCost{}
	for id := 0; id < net.NumNodes(); id++ {
		ports := net.Ports(topology.NodeID(id))
		rc, ok := routerCosts[ports]
		if !ok {
			rc = dsent.ElectronicRouter(cfg, ports)
			routerCosts[ports] = rc
		}
		m.static.RouterW += rc.StaticW
		m.areaM2 += rc.AreaM2
		// The census counts buffer/crossbar events network-wide, which
		// only prices correctly while the per-flit router energies are
		// port-independent (true of the dsent model: SRAM access width
		// and crossbar energy are per flit, not per radix). Refuse to
		// fold a model that breaks the assumption rather than mispricing.
		if id > 0 && (rc.BufWriteJPerFlit != m.routerCost.BufWriteJPerFlit ||
			rc.BufReadJPerFlit != m.routerCost.BufReadJPerFlit ||
			rc.XbarJPerFlit != m.routerCost.XbarJPerFlit) {
			return nil, fmt.Errorf("energy: router dynamic energy depends on radix (%d vs %d ports); "+
				"network-wide census pricing no longer valid", rc.Ports, m.routerCost.Ports)
		}
		m.routerCost = rc
	}
	m.staticW = m.static.TotalW()
	return m, nil
}

// Network returns the network the model was folded over.
func (m *Model) Network() *topology.Network { return m.net }

// StaticW returns total always-on power in watts.
func (m *Model) StaticW() float64 { return m.staticW }

// Static returns the always-on power breakdown.
func (m *Model) Static() StaticPower { return m.static }

// AreaM2 returns total router + link silicon area.
func (m *Model) AreaM2() float64 { return m.areaM2 }

// DynamicEnergy decomposes a run's switching energy by component, in
// joules. The link-side components (per-class channel energy) and the
// conversion/wire split are two views of the same traversals: LinkJ sums
// to Wire + Modulator + Serdes + Receiver.
type DynamicEnergy struct {
	// LinkJ[t] is channel-traversal energy on links of technology t.
	LinkJ [tech.NumTechnologies]float64
	// WireJ is the repeated-wire switching share (electronic channels).
	WireJ float64
	// ModulatorJ is the E-O conversion share: modulator drive including
	// the driver chain, one per optical channel traversal.
	ModulatorJ float64
	// ReceiverJ is the O-E conversion share: detector TIA + limiting
	// amp, one per optical channel traversal.
	ReceiverJ float64
	// SerdesJ is SERDES switching on optical channel traversals.
	SerdesJ float64
	// BufferJ is input-VC SRAM write + read energy in routers.
	BufferJ float64
	// CrossbarJ is crossbar traversal + allocation energy.
	CrossbarJ float64
	// ExpressJ is the share of link energy riding express channels
	// (diagnostic; included in LinkJ).
	ExpressJ float64
}

// TotalJ sums the non-overlapping components (links + routers).
func (d DynamicEnergy) TotalJ() float64 {
	var links float64
	for _, j := range d.LinkJ {
		links += j
	}
	return links + d.BufferJ + d.CrossbarJ
}

// RunEnergy is the measured energy accounting of one simulation run.
type RunEnergy struct {
	// Cycles and Seconds are the run's simulated extent.
	Cycles  int64
	Seconds float64
	// BitsEjected is the payload delivered, FlitsEjected × FlitBits.
	BitsEjected float64
	// Dynamic is the switching-energy breakdown from measured activity.
	Dynamic DynamicEnergy
	// DynamicJ is Dynamic.TotalJ().
	DynamicJ float64
	// StaticJ is always-on power integrated over the run,
	// StaticW × Seconds.
	StaticJ float64
	// TotalJ = DynamicJ + StaticJ.
	TotalJ float64
	// FJPerBit is the run's measured energy per delivered bit in
	// femtojoules — the paper's headline efficiency axis, measured
	// instead of estimated.
	FJPerBit float64
	// DynamicPowerW and AvgPowerW average the energies over the run.
	DynamicPowerW, AvgPowerW float64
	// AmortizedDynamicJ prices the same counters with DSENT's load-point
	// per-flit convention (always-on power folded in at the reference
	// utilization) — the figure comparable with core.PriceRun, Table V
	// and analytic.Evaluate's dynamic watts.
	AmortizedDynamicJ float64
}

// Price converts a run's counters into measured energy. It fails when the
// Stats were produced on a different network shape.
func (m *Model) Price(st noc.Stats) (RunEnergy, error) {
	if len(st.LinkFlits) != len(m.linkActJ) {
		return RunEnergy{}, fmt.Errorf("energy: stats carry %d link counters, network has %d",
			len(st.LinkFlits), len(m.linkActJ))
	}
	if st.Cycles <= 0 {
		return RunEnergy{}, fmt.Errorf("energy: run spans %d cycles", st.Cycles)
	}
	var r RunEnergy
	r.Cycles = st.Cycles
	r.Seconds = float64(st.Cycles) / m.cfg.ClockHz

	for i, flits := range st.LinkFlits {
		if flits == 0 {
			continue
		}
		f := float64(flits)
		r.Dynamic.LinkJ[m.linkClass[i]] += f * m.linkActJ[i]
		r.Dynamic.WireJ += f * m.linkWireJ[i]
		r.Dynamic.ModulatorJ += f * m.linkModJ[i]
		r.Dynamic.ReceiverJ += f * m.linkRxJ[i]
		r.Dynamic.SerdesJ += f * m.linkSerdJ[i]
		if m.linkExpr[i] {
			r.Dynamic.ExpressJ += f * m.linkActJ[i]
		}
		r.AmortizedDynamicJ += f * m.linkDynJ[i]
	}
	a := st.Activity
	rc := m.routerCost
	r.Dynamic.BufferJ = float64(a.BufferWrites)*rc.BufWriteJPerFlit +
		float64(a.BufferReads)*rc.BufReadJPerFlit
	r.Dynamic.CrossbarJ = float64(a.CrossbarTraversals) * rc.XbarJPerFlit
	// Router flits price identically under both conventions (routers have
	// no amortized share).
	r.AmortizedDynamicJ += r.Dynamic.BufferJ + r.Dynamic.CrossbarJ

	r.DynamicJ = r.Dynamic.TotalJ()
	r.StaticJ = m.staticW * r.Seconds
	r.TotalJ = r.DynamicJ + r.StaticJ
	r.BitsEjected = float64(st.FlitsEjected) * float64(m.cfg.FlitBits)
	if r.BitsEjected > 0 {
		r.FJPerBit = r.TotalJ / r.BitsEjected / units.Femto
	}
	r.DynamicPowerW = r.DynamicJ / r.Seconds
	r.AvgPowerW = r.TotalJ / r.Seconds
	return r, nil
}

// PriceWithStaticOverhead is Price with an additional always-on power draw
// in watts folded into the static accounting — the hook the fault layer
// uses to charge load-dependent thermal trimming (internal/fault) without
// rebuilding the model. A zero overhead returns exactly Price's bytes.
func (m *Model) PriceWithStaticOverhead(st noc.Stats, overheadW float64) (RunEnergy, error) {
	if overheadW < 0 {
		return RunEnergy{}, fmt.Errorf("energy: negative static overhead %v W", overheadW)
	}
	r, err := m.Price(st)
	if err != nil || overheadW == 0 {
		return r, err
	}
	extra := overheadW * r.Seconds
	r.StaticJ += extra
	r.TotalJ += extra
	if r.BitsEjected > 0 {
		r.FJPerBit = r.TotalJ / r.BitsEjected / units.Femto
	}
	r.AvgPowerW = r.TotalJ / r.Seconds
	return r, nil
}

// CLEAR is the simulated counterpart of the paper's eq. 2 evaluation: the
// same figure of merit with latency, utilization and R measured by the
// cycle-accurate simulator instead of estimated from the traffic matrix.
type CLEAR struct {
	// CapabilityGbpsPerNode is ΣC/N from the network (Table III's C).
	CapabilityGbpsPerNode float64
	// AvgLatencyClks is the measured average packet latency.
	AvgLatencyClks float64
	// PowerW is static power plus the run's dynamic watts priced with
	// DSENT's load-point convention (see package doc: eq. 2 is defined
	// with it, which is what makes Value converge to analytic.Evaluate
	// at zero load).
	PowerW float64
	// AreaM2 is total silicon area.
	AreaM2 float64
	// AvgUtilization is the measured mean channel utilization
	// (flit-hops per channel per cycle).
	AvgUtilization float64
	// OfferedRate is the r the caller drove the run at (flits/cycle,
	// peak per node).
	OfferedRate float64
	// R is the utilization growth dU/dr = AvgUtilization/OfferedRate.
	R float64
	// Value is eq. 2 in the paper's units: Gb/s, clks, W, mm².
	Value float64
}

// SimulatedCLEAR evaluates eq. 2 from a run's measured counters at a known
// offered injection rate (the workload's peak per-node rate in
// flits/cycle, the analytic path's tm.MaxRowSum). Pass offeredRate <= 0 to
// fall back to the measured peak source rate — noisier, since the maximum
// over realized Bernoulli rates is biased upward on short runs.
func (m *Model) SimulatedCLEAR(st noc.Stats, offeredRate float64) (CLEAR, error) {
	r, err := m.Price(st)
	if err != nil {
		return CLEAR{}, err
	}
	if st.PacketsEjected == 0 {
		return CLEAR{}, fmt.Errorf("energy: CLEAR of a run with no ejected packets")
	}
	if offeredRate <= 0 {
		offeredRate = st.Activity.MaxSourceRate(st.Cycles)
	}
	if offeredRate <= 0 {
		return CLEAR{}, fmt.Errorf("energy: CLEAR needs a positive offered rate")
	}
	var hops int64
	for _, f := range st.LinkFlits {
		hops += f
	}
	c := CLEAR{
		CapabilityGbpsPerNode: m.net.CapabilityGbpsPerNode(),
		AvgLatencyClks:        st.AvgPacketLatencyClks,
		PowerW:                m.staticW + r.AmortizedDynamicJ/r.Seconds,
		AreaM2:                m.areaM2,
		AvgUtilization:        float64(hops) / float64(len(m.net.Links)) / float64(st.Cycles),
		OfferedRate:           offeredRate,
	}
	c.R = c.AvgUtilization / offeredRate
	if c.AvgLatencyClks <= 0 || c.R <= 0 {
		return CLEAR{}, fmt.Errorf("energy: degenerate CLEAR inputs (latency %v, R %v)",
			c.AvgLatencyClks, c.R)
	}
	c.Value = c.CapabilityGbpsPerNode /
		(c.AvgLatencyClks * c.PowerW * (c.AreaM2 / units.MillimetreSq) * c.R)
	return c, nil
}

// SimulatedCLEARWithOverhead is SimulatedCLEAR with an additional always-on
// power draw in watts charged to eq. 2's power term (see
// PriceWithStaticOverhead). A zero overhead returns exactly
// SimulatedCLEAR's bytes.
func (m *Model) SimulatedCLEARWithOverhead(st noc.Stats, offeredRate, overheadW float64) (CLEAR, error) {
	if overheadW < 0 {
		return CLEAR{}, fmt.Errorf("energy: negative static overhead %v W", overheadW)
	}
	c, err := m.SimulatedCLEAR(st, offeredRate)
	if err != nil || overheadW == 0 {
		return c, err
	}
	c.PowerW += overheadW
	c.Value = c.CapabilityGbpsPerNode /
		(c.AvgLatencyClks * c.PowerW * (c.AreaM2 / units.MillimetreSq) * c.R)
	return c, nil
}
