// Package prof wires the standard runtime/pprof profilers into the
// command-line tools: every sweep CLI takes -cpuprofile/-memprofile (and
// -blockprofile/-mutexprofile) flags so a slow design-space run can be fed
// straight to `go tool pprof` without a recompile. The simulator kernel was rewritten around exactly
// such profiles (see the README's Performance section); keeping the hooks
// in the shipped binaries makes the next optimization round as cheap.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config names the profile outputs; empty paths skip that profiler.
type Config struct {
	// CPUPath receives a CPU profile covering start to stop.
	CPUPath string
	// MemPath receives a heap snapshot at stop (after a settling GC).
	MemPath string
	// BlockPath receives a blocking profile at stop. Arming it sets
	// runtime.SetBlockProfileRate(1) for the run — full-resolution
	// contention data on channel and mutex waits (the sweep worker pools
	// and the serve dispatcher are the usual subjects).
	BlockPath string
	// MutexPath receives a mutex-contention profile at stop, armed via
	// runtime.SetMutexProfileFraction(1).
	MutexPath string
}

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath (either may be empty to skip). It is the historical two-profile
// entry point; StartAll adds block and mutex profiles.
func Start(cpuPath, memPath string) (stop func(), err error) {
	return StartAll(Config{CPUPath: cpuPath, MemPath: memPath})
}

// StartAll arms every profiler named in cfg. The returned stop function
// must run before the process exits — call it via defer from a run()
// helper that returns an exit code rather than calling os.Exit directly,
// so error paths flush profiles too. Stop also restores the block and
// mutex sampling rates it changed.
func StartAll(cfg Config) (stop func(), err error) {
	var cpuFile *os.File
	if cfg.CPUPath != "" {
		cpuFile, err = os.Create(cfg.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if cfg.BlockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	if cfg.MutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if cfg.MemPath != "" {
			f, err := os.Create(cfg.MemPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			} else {
				runtime.GC() // settle live heap before the snapshot
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
				}
				f.Close()
			}
		}
		writeLookup(cfg.BlockPath, "block")
		writeLookup(cfg.MutexPath, "mutex")
		if cfg.BlockPath != "" {
			runtime.SetBlockProfileRate(0)
		}
		if cfg.MutexPath != "" {
			runtime.SetMutexProfileFraction(0)
		}
	}, nil
}

// writeLookup dumps one named runtime profile, if requested.
func writeLookup(path, name string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
	}
}
