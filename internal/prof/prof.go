// Package prof wires the standard runtime/pprof profilers into the
// command-line tools: every sweep CLI takes -cpuprofile/-memprofile flags
// so a slow design-space run can be fed straight to `go tool pprof`
// without a recompile. The simulator kernel was rewritten around exactly
// such profiles (see the README's Performance section); keeping the hooks
// in the shipped binaries makes the next optimization round as cheap.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath (either may be empty to skip). The returned stop function must
// run before the process exits — call it via defer from a run() helper
// that returns an exit code rather than calling os.Exit directly, so
// error paths flush profiles too.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
