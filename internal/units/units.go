// Package units provides the small set of physical-unit helpers shared by
// every model in the repository: decibel arithmetic, SI prefixes, and
// tolerant floating-point comparison.
//
// All interconnect models in this codebase keep quantities in a fixed set of
// base units so that package boundaries never have to guess:
//
//	length      metres (helpers for µm/mm/cm)
//	time        seconds (helpers for ps/ns)
//	energy      joules (helpers for fJ/pJ)
//	power       watts (helpers for mW/µW)
//	data rate   bits per second
//	area        square metres (helpers for µm²/mm²)
//	loss/gain   decibels at the boundary, linear ratios internally
package units

import (
	"fmt"
	"math"
)

// SI prefixes as multipliers on the base unit. These exist so model code
// reads like the paper's tables ("4.25 fJ/bit", "200 µm²") instead of raw
// exponents.
const (
	Femto = 1e-15
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
	Tera  = 1e12
)

// Length helpers (metres).
const (
	Micrometre = Micro // 1 µm in metres
	Millimetre = Milli // 1 mm in metres
	Centimetre = 1e-2  // 1 cm in metres
)

// MicrometreSq is one square micrometre in square metres.
const MicrometreSq = Micro * Micro

// MillimetreSq is one square millimetre in square metres.
const MillimetreSq = Milli * Milli

// DBToLinear converts a decibel value to a linear power ratio.
// A loss expressed as a positive dB number corresponds to a linear
// transmission factor of 10^(-dB/10); this function is the plain ratio
// conversion 10^(dB/10) and callers negate for losses.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear power ratio to decibels. The ratio must be
// strictly positive; a non-positive ratio returns -Inf which callers treat
// as "no transmission".
func LinearToDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// TransmissionFromLossDB returns the fraction of optical power surviving a
// loss of lossDB decibels (lossDB >= 0). Negative losses (gain) are also
// accepted and produce factors > 1.
func TransmissionFromLossDB(lossDB float64) float64 {
	return math.Pow(10, -lossDB/10)
}

// LossDBFromTransmission is the inverse of TransmissionFromLossDB.
func LossDBFromTransmission(t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(t)
}

// ApproxEqual reports whether a and b agree to within rel relative tolerance
// (falling back to an absolute tolerance of rel near zero). It is the single
// comparison primitive used by the test suites so that tolerance policy lives
// in one place.
func ApproxEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= rel
	}
	return diff <= rel*scale
}

// WithinFactor reports whether got is within [want/f, want*f] for f >= 1.
// It is how EXPERIMENTS.md-style "shape" assertions are written: the paper's
// absolute numbers came from a different substrate, so tests assert factors.
func WithinFactor(got, want, f float64) bool {
	if f < 1 {
		f = 1 / f
	}
	if want == 0 {
		return got == 0
	}
	if (got > 0) != (want > 0) {
		return false
	}
	r := got / want
	if r < 0 {
		return false
	}
	return r >= 1/f && r <= f
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FormatSI renders v with an SI prefix and the given unit suffix, e.g.
// FormatSI(4.25e-15, "J") == "4.25 fJ". Only the prefixes used by the models
// are covered; out-of-range magnitudes fall back to scientific notation.
func FormatSI(v float64, unit string) string {
	type pfx struct {
		mul  float64
		name string
	}
	prefixes := []pfx{
		{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""},
		{1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	av := math.Abs(v)
	if av == 0 {
		return "0 " + unit
	}
	for _, p := range prefixes {
		if av >= p.mul {
			return trimFloat(v/p.mul) + " " + p.name + unit
		}
	}
	return fmt.Sprintf("%.3g %s", v, unit)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros but keep at least one digit after the point,
	// then drop a bare trailing point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
