package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBLinearRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, -1, 0, 0.5, 1, 3, 10, 20, 60} {
		lin := DBToLinear(db)
		back := LinearToDB(lin)
		if !ApproxEqual(back, db, 1e-12) {
			t.Errorf("roundtrip %v dB -> %v -> %v", db, lin, back)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	cases := []struct {
		db  float64
		lin float64
	}{
		{0, 1},
		{10, 10},
		{20, 100},
		{-10, 0.1},
		{3, 1.9952623149688795},
	}
	for _, c := range cases {
		if got := DBToLinear(c.db); !ApproxEqual(got, c.lin, 1e-12) {
			t.Errorf("DBToLinear(%v) = %v, want %v", c.db, got, c.lin)
		}
	}
}

func TestLinearToDBNonPositive(t *testing.T) {
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
	if !math.IsInf(LinearToDB(-2), -1) {
		t.Error("LinearToDB(-2) should be -Inf")
	}
	if !math.IsInf(LossDBFromTransmission(0), 1) {
		t.Error("LossDBFromTransmission(0) should be +Inf")
	}
}

func TestTransmissionFromLossDB(t *testing.T) {
	if got := TransmissionFromLossDB(3.0103); !ApproxEqual(got, 0.5, 1e-4) {
		t.Errorf("3.01 dB loss should halve power, got %v", got)
	}
	if got := TransmissionFromLossDB(0); got != 1 {
		t.Errorf("0 dB loss should pass all power, got %v", got)
	}
	if got := TransmissionFromLossDB(-3.0103); !ApproxEqual(got, 2, 1e-4) {
		t.Errorf("-3.01 dB (gain) should double power, got %v", got)
	}
}

func TestTransmissionRoundTripProperty(t *testing.T) {
	f := func(raw float64) bool {
		db := math.Mod(math.Abs(raw), 100) // losses 0..100 dB
		tr := TransmissionFromLossDB(db)
		back := LossDBFromTransmission(tr)
		return ApproxEqual(back, db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransmissionMonotoneProperty(t *testing.T) {
	// More loss never transmits more power.
	f := func(a, b float64) bool {
		la := math.Mod(math.Abs(a), 80)
		lb := math.Mod(math.Abs(b), 80)
		if la > lb {
			la, lb = lb, la
		}
		return TransmissionFromLossDB(la) >= TransmissionFromLossDB(lb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 100.0000001, 1e-6) {
		t.Error("near-equal large values should match")
	}
	if ApproxEqual(100, 101, 1e-6) {
		t.Error("1% off should not match at 1e-6")
	}
	if !ApproxEqual(0, 1e-9, 1e-6) {
		t.Error("tiny absolute difference near zero should match")
	}
	if !ApproxEqual(3.5, 3.5, 0) {
		t.Error("identical values must match even at zero tolerance")
	}
}

func TestWithinFactor(t *testing.T) {
	if !WithinFactor(2, 1, 2) {
		t.Error("2 is within 2x of 1")
	}
	if !WithinFactor(0.5, 1, 2) {
		t.Error("0.5 is within 2x of 1")
	}
	if WithinFactor(2.01, 1, 2) {
		t.Error("2.01 is not within 2x of 1")
	}
	if !WithinFactor(3, 6, 0.5) { // factor < 1 is normalized
		t.Error("factor below one should be inverted")
	}
	if WithinFactor(-1, 1, 10) {
		t.Error("sign mismatch must fail")
	}
	if !WithinFactor(0, 0, 3) {
		t.Error("both zero should match")
	}
	if WithinFactor(1, 0, 3) {
		t.Error("nonzero vs zero should fail")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 {
		t.Error("clamp above")
	}
	if Clamp(-5, 0, 1) != 0 {
		t.Error("clamp below")
	}
	if Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp inside")
	}
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{4.25e-15, "J", "4.25 fJ"},
		{50e9, "b/s", "50 Gb/s"},
		{1.53, "W", "1.53 W"},
		{0, "W", "0 W"},
		{2.1e12, "b/s", "2.1 Tb/s"},
		{200e-12, "s", "200 ps"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, c.unit); got != c.want {
			t.Errorf("FormatSI(%v, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestUnitConstants(t *testing.T) {
	if Micrometre*1e6 != 1 {
		t.Error("1e6 µm should be 1 m")
	}
	if Millimetre*1e3 != 1 {
		t.Error("1e3 mm should be 1 m")
	}
	if Centimetre*1e2 != 1 {
		t.Error("1e2 cm should be 1 m")
	}
	if MicrometreSq != 1e-12 {
		t.Error("µm² constant wrong")
	}
}
