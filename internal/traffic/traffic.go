// Package traffic produces the synthetic traffic statistics the paper's
// design-space exploration runs on (Section III-B), following the
// statistical on-chip traffic model of Soteriou, Wang and Peh (MASCOTS
// 2006) as parameterized in the paper:
//
//   - p (= 0.02) is the per-hop flit acceptance probability, shaping the
//     spatial hop distribution: a flit keeps travelling with probability
//     (1-p) per hop, so destination weights follow a truncated geometric
//     distribution over mesh distance, and a low p means long routes.
//   - σ (= 0.4) is the standard deviation of the per-node injection-rate
//     distribution: node rates are drawn from a half-normal |N(0, σ)|
//     clamped to 1, so a larger σ means more nodes injecting close to the
//     maximum rate.
//   - the maximum injection rate (= 0.1 flits/cycle) scales the whole
//     matrix; the paper stresses that realistic (low) injection rates are
//     the regime where optical links must prove themselves.
//
// Only flit counts between source-destination pairs matter (the paper
// discards temporal structure beyond the injection rate), so the product is
// a rate matrix in flits/cycle.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/topology"
)

// Matrix is a source×destination rate matrix in flits per cycle.
//
// It comes in two forms. A dense matrix (NewMatrix) materializes all n²
// entries in Rates and may be mutated in place. A streamed matrix (what
// every registry pattern and Soteriou produce) keeps a closed-form
// generator plus O(n) row sums and computes entries on demand; Rates is
// nil. Both forms answer the same accessors — Rate, Row, RowSum, Scaled —
// with bit-identical values, so consumers iterate rows through Row instead
// of indexing Rates directly.
type Matrix struct {
	N int
	// Rates is the dense entry storage; nil for streamed matrices.
	Rates [][]float64

	gen     generator // streamed backend (nil when dense)
	scale   float64   // streamed: multiplier applied to every generator entry
	rowSums []float64 // streamed: per-row sums at the current scale
}

// NewMatrix allocates an all-zero dense N×N matrix.
func NewMatrix(n int) *Matrix {
	r := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range r {
		r[i], backing = backing[:n], backing[n:]
	}
	return &Matrix{N: n, Rates: r}
}

// Streamed reports whether the matrix is the O(n)-memory on-demand form.
func (m *Matrix) Streamed() bool { return m.gen != nil }

// Rate returns entry (s, d) in flits/cycle.
func (m *Matrix) Rate(s, d int) float64 {
	if m.gen == nil {
		return m.Rates[s][d]
	}
	if s == d {
		return 0
	}
	return m.gen.rate(s, d) * m.scale
}

// Row materializes row s into dst (reallocated when too small) and returns
// it — the O(n) scratch-buffer idiom for iterating a matrix without holding
// n² entries. Callers reuse one buffer across rows; concurrent callers use
// separate buffers.
func (m *Matrix) Row(s int, dst []float64) []float64 {
	if cap(dst) < m.N {
		dst = make([]float64, m.N)
	}
	dst = dst[:m.N]
	if m.gen == nil {
		copy(dst, m.Rates[s])
		return dst
	}
	m.gen.fillRow(s, dst)
	if m.scale != 1 {
		for i := range dst {
			dst[i] *= m.scale
		}
	}
	return dst
}

// RowSum returns the total injection rate of source s in flits/cycle.
func (m *Matrix) RowSum(s int) float64 {
	if m.gen != nil {
		return m.rowSums[s]
	}
	var sum float64
	for _, v := range m.Rates[s] {
		sum += v
	}
	return sum
}

// MaxRowSum returns the highest per-node injection rate — the paper's
// "injection rate" knob.
func (m *Matrix) MaxRowSum() float64 {
	var max float64
	for s := 0; s < m.N; s++ {
		if r := m.RowSum(s); r > max {
			max = r
		}
	}
	return max
}

// MeanRowSum returns the average per-node injection rate.
func (m *Matrix) MeanRowSum() float64 {
	var sum float64
	for s := 0; s < m.N; s++ {
		sum += m.RowSum(s)
	}
	return sum / float64(m.N)
}

// Scaled returns a copy of the matrix with every rate multiplied by f.
// Scaling a streamed matrix stays streamed: the multiplier folds into the
// matrix's scale, so one Scaled/ScaledToMaxRate step from a generated
// matrix (the sweep idiom) reproduces the dense entries bit-for-bit.
func (m *Matrix) Scaled(f float64) *Matrix {
	if m.gen != nil {
		return newStreamed(m.N, m.gen, m.scale*f)
	}
	out := NewMatrix(m.N)
	for s := range m.Rates {
		for d, v := range m.Rates[s] {
			out.Rates[s][d] = v * f
		}
	}
	return out
}

// ScaledToMaxRate returns a copy rescaled so MaxRowSum equals rate: the
// injection-rate sweep primitive.
func (m *Matrix) ScaledToMaxRate(rate float64) *Matrix {
	max := m.MaxRowSum()
	if max == 0 {
		return m.Scaled(0)
	}
	return m.Scaled(rate / max)
}

// Validate checks matrix invariants: square, non-negative, no self traffic.
// Streamed matrices validate their O(n) derived state only — the entries
// are valid by construction.
func (m *Matrix) Validate() error {
	if m.gen != nil {
		return m.validateStreamed()
	}
	if len(m.Rates) != m.N {
		return fmt.Errorf("traffic: %d rows for N=%d", len(m.Rates), m.N)
	}
	for s, row := range m.Rates {
		if len(row) != m.N {
			return fmt.Errorf("traffic: row %d has %d cols", s, len(row))
		}
		for d, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("traffic: rate[%d][%d] = %v", s, d, v)
			}
			if s == d && v != 0 {
				return fmt.Errorf("traffic: self traffic at node %d", s)
			}
		}
	}
	return nil
}

// SoteriouConfig parameterizes the statistical model.
type SoteriouConfig struct {
	// P is the flit acceptance probability (paper: 0.02).
	P float64
	// Sigma is the injection-spread standard deviation (paper: 0.4).
	Sigma float64
	// MaxInjectionRate is the highest per-node rate in flits/cycle
	// (paper: 0.1).
	MaxInjectionRate float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// levelMeanFactor positions the injection-level Gaussian's mean at this
// multiple of σ. With the paper's σ = 0.4 the clamped mean/max injection
// ratio comes out near 0.42, which calibrates R onto Table III. See
// Soteriou for how it is used.
const levelMeanFactor = 1.0

// DefaultSoteriou returns the paper's parameters: p=0.02, σ=0.4, max 0.1.
func DefaultSoteriou() SoteriouConfig {
	return SoteriouConfig{P: 0.02, Sigma: 0.4, MaxInjectionRate: 0.1, Seed: 1}
}

// Validate checks the parameters.
func (c SoteriouConfig) Validate() error {
	if c.P <= 0 || c.P >= 1 {
		return fmt.Errorf("traffic: acceptance probability %v out of (0,1)", c.P)
	}
	if c.Sigma <= 0 {
		return fmt.Errorf("traffic: sigma %v must be positive", c.Sigma)
	}
	if c.MaxInjectionRate <= 0 || c.MaxInjectionRate > 1 {
		return fmt.Errorf("traffic: max injection rate %v out of (0,1]", c.MaxInjectionRate)
	}
	return nil
}

// Soteriou builds the synthetic rate matrix for a network.
//
// Destination weights from source s follow the truncated geometric hop
// distribution: nodes at base-fabric hop distance h (the network kind's
// Distance — Manhattan on a mesh) collectively receive weight
// p·(1-p)^(h-1), shared equally among them. Per-node injection rates are
// |N(0, σ)| clamped to 1, scaled so the maximum equals MaxInjectionRate.
//
// The result is streamed — O(n) memory, entries computed on demand — and
// bit-identical to the dense matrix this function historically built.
func Soteriou(net *topology.Network, cfg SoteriouConfig) (*Matrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.NumNodes()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-node relative injection levels: Gaussian with standard
	// deviation σ around a positive mean (levelMeanFactor·σ), clamped
	// to [0, 1].
	levels := make([]float64, n)
	maxLevel := 0.0
	for i := range levels {
		v := rng.NormFloat64()*cfg.Sigma + levelMeanFactor*cfg.Sigma
		v = math.Max(0, math.Min(1, v))
		levels[i] = v
		if v > maxLevel {
			maxLevel = v
		}
	}
	if maxLevel == 0 {
		return nil, fmt.Errorf("traffic: degenerate injection draw (all zero)")
	}

	g := &soteriouGen{
		net:     net,
		n:       n,
		maxDist: net.Width + net.Height, // exclusive upper bound on every kind's Distance
		p:       cfg.P,
		rates:   make([]float64, n),
	}
	for s := range g.rates {
		g.rates[s] = cfg.MaxInjectionRate * levels[s] / maxLevel
	}
	return newStreamed(n, g, 1), nil
}

// MustSoteriou is Soteriou that panics on error.
func MustSoteriou(net *topology.Network, cfg SoteriouConfig) *Matrix {
	m, err := Soteriou(net, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Uniform builds uniform-random traffic: every node injects `rate`
// flits/cycle spread evenly over all other nodes. It is the registry's
// "uniform" pattern (see Pattern) kept as a convenience constructor.
func Uniform(net *topology.Network, rate float64) *Matrix {
	m, _ := genUniform(net, rate) // cannot fail
	return m
}

// Transpose builds the matrix-transpose permutation: node (x,y) sends all
// its traffic to (y,x). Nodes on the diagonal stay silent. It is the
// registry's "transpose" pattern and panics on a non-square grid; use
// Lookup("transpose") for error handling.
func Transpose(net *topology.Network, rate float64) *Matrix {
	m, err := genTranspose(net, rate)
	if err != nil {
		panic(err)
	}
	return m
}

// BitComplement builds the bit-complement permutation: node i sends to
// node (N-1-i). It is the registry's "bitcomp" pattern.
func BitComplement(net *topology.Network, rate float64) *Matrix {
	m, _ := genBitComplement(net, rate) // cannot fail
	return m
}

// MeanHopDistance returns the traffic-weighted average base-fabric hop
// distance of a matrix — the knob p controls in the Soteriou model.
func MeanHopDistance(net *topology.Network, m *Matrix) float64 {
	var wsum, sum float64
	row := make([]float64, m.N)
	for s := 0; s < m.N; s++ {
		row = m.Row(s, row)
		for d, r := range row {
			if r == 0 {
				continue
			}
			sum += r * float64(net.Distance(topology.NodeID(s), topology.NodeID(d)))
			wsum += r
		}
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}
