package traffic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/topology"
)

// denseSoteriouReference is the historical dense Soteriou builder, kept
// verbatim as the bit-exactness oracle for the streamed implementation.
func denseSoteriouReference(t *testing.T, net *topology.Network, cfg SoteriouConfig) *Matrix {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	n := net.NumNodes()
	rng := rand.New(rand.NewSource(cfg.Seed))
	levels := make([]float64, n)
	maxLevel := 0.0
	for i := range levels {
		v := rng.NormFloat64()*cfg.Sigma + levelMeanFactor*cfg.Sigma
		v = math.Max(0, math.Min(1, v))
		levels[i] = v
		if v > maxLevel {
			maxLevel = v
		}
	}
	if maxLevel == 0 {
		t.Fatal("degenerate draw")
	}
	m := NewMatrix(n)
	maxDist := net.Width + net.Height
	counts := make([]int, maxDist)
	hopW := make([]float64, maxDist)
	for s := 0; s < n; s++ {
		src := topology.NodeID(s)
		for h := range counts {
			counts[h] = 0
		}
		for d := 0; d < n; d++ {
			if d == s {
				continue
			}
			counts[net.Distance(src, topology.NodeID(d))]++
		}
		var totalW float64
		for h := 1; h < maxDist; h++ {
			if counts[h] == 0 {
				hopW[h] = 0
				continue
			}
			w := cfg.P * math.Pow(1-cfg.P, float64(h-1))
			hopW[h] = w
			totalW += w
		}
		rate := cfg.MaxInjectionRate * levels[s] / maxLevel
		for d := 0; d < n; d++ {
			if d == s {
				continue
			}
			h := net.Distance(src, topology.NodeID(d))
			m.Rates[s][d] = rate * hopW[h] / totalW / float64(counts[h])
		}
	}
	return m
}

// densify materializes any matrix through the Rate accessor.
func densify(m *Matrix) *Matrix {
	out := NewMatrix(m.N)
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			out.Rates[s][d] = m.Rate(s, d)
		}
	}
	return out
}

// TestSoteriouStreamedBitIdentical: the streamed Soteriou matches the
// historical dense builder bit for bit — entries, row sums, and one
// ScaledToMaxRate step (the sweep idiom).
func TestSoteriouStreamedBitIdentical(t *testing.T) {
	net := mesh(t)
	cfg := DefaultSoteriou()
	streamed := MustSoteriou(net, cfg)
	if !streamed.Streamed() {
		t.Fatal("Soteriou must produce a streamed matrix")
	}
	dense := denseSoteriouReference(t, net, cfg)
	for s := 0; s < dense.N; s++ {
		for d := 0; d < dense.N; d++ {
			if got, want := streamed.Rate(s, d), dense.Rates[s][d]; got != want {
				t.Fatalf("entry [%d][%d] = %v, dense reference %v", s, d, got, want)
			}
		}
		if got, want := streamed.RowSum(s), dense.RowSum(s); got != want {
			t.Fatalf("row sum %d = %v, dense reference %v", s, got, want)
		}
	}
	if got, want := streamed.MaxRowSum(), dense.MaxRowSum(); got != want {
		t.Fatalf("max row sum %v, dense %v", got, want)
	}
	sS, sD := streamed.ScaledToMaxRate(0.05), dense.ScaledToMaxRate(0.05)
	for s := 0; s < dense.N; s++ {
		for d := 0; d < dense.N; d++ {
			if got, want := sS.Rate(s, d), sD.Rates[s][d]; got != want {
				t.Fatalf("scaled entry [%d][%d] = %v, dense %v", s, d, got, want)
			}
		}
		if got, want := sS.RowSum(s), sD.RowSum(s); got != want {
			t.Fatalf("scaled row sum %d = %v, dense %v", s, got, want)
		}
	}
}

// TestStreamedAccessorsConsistent: for every registry pattern (and
// Soteriou) on square and rectangular grids, the streamed accessors agree
// among themselves and with a densified copy — Rate vs Row entries, and
// RowSum bit-identical to a left-to-right dense row sum.
func TestStreamedAccessorsConsistent(t *testing.T) {
	for _, g := range [][2]int{{4, 4}, {8, 8}, {5, 3}} {
		net := grid(t, g[0], g[1])
		mats := map[string]*Matrix{"soteriou": MustSoteriou(net, DefaultSoteriou())}
		for _, p := range Patterns() {
			m, err := p.Generate(net, 0.1)
			if err != nil {
				continue // structural precondition, covered elsewhere
			}
			mats[p.Name()] = m
		}
		for name, m := range mats {
			if !m.Streamed() {
				t.Fatalf("%s on %dx%d: expected streamed matrix", name, g[0], g[1])
			}
			dense := densify(m)
			row := make([]float64, m.N)
			for s := 0; s < m.N; s++ {
				row = m.Row(s, row)
				for d := 0; d < m.N; d++ {
					if row[d] != dense.Rates[s][d] {
						t.Fatalf("%s: Row/Rate diverge at [%d][%d]: %v vs %v",
							name, s, d, row[d], dense.Rates[s][d])
					}
				}
				if got, want := m.RowSum(s), dense.RowSum(s); got != want {
					t.Fatalf("%s: RowSum(%d) = %v, dense %v", name, s, got, want)
				}
			}
			if got, want := m.MaxRowSum(), dense.MaxRowSum(); got != want {
				t.Fatalf("%s: MaxRowSum %v, dense %v", name, got, want)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// One scaling step stays bit-identical to scaling the dense copy.
			mS, dS := m.Scaled(0.37), dense.Scaled(0.37)
			for s := 0; s < m.N; s++ {
				rowS := mS.Row(s, row)
				for d := 0; d < m.N; d++ {
					if rowS[d] != dS.Rates[s][d] {
						t.Fatalf("%s: scaled diverges at [%d][%d]", name, s, d)
					}
				}
				if mS.RowSum(s) != dS.RowSum(s) {
					t.Fatalf("%s: scaled RowSum(%d) diverges", name, s)
				}
			}
		}
	}
}

// TestStreamedMemoryStaysLinear: generating big patterns must not
// materialize n² entries — the whole point of the streamed form.
func TestStreamedMemoryStaysLinear(t *testing.T) {
	c := topology.DefaultConfig()
	c.Width, c.Height = 64, 64
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Patterns() {
		m, err := p.Generate(net, 0.1)
		if err != nil {
			t.Fatalf("%s must support 64x64: %v", p.Name(), err)
		}
		if m.Rates != nil {
			t.Errorf("%s materialized a dense 64x64 matrix", p.Name())
		}
		if got := m.ScaledToMaxRate(0.01); got.Rates != nil {
			t.Errorf("%s: scaling densified the matrix", p.Name())
		}
	}
	if m := MustSoteriou(net, DefaultSoteriou()); m.Rates != nil {
		t.Error("Soteriou materialized a dense 64x64 matrix")
	}
}
