package traffic

import (
	"strings"
	"testing"

	"repro/internal/topology"
	"repro/internal/units"
)

// grid builds a W×H network for pattern tests.
func grid(t testing.TB, w, h int) *topology.Network {
	t.Helper()
	c := topology.DefaultConfig()
	c.Width, c.Height = w, h
	net, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// wantNames is the full registry in registration order; docs and CLIs
// rely on this exact listing.
var wantNames = []string{
	"uniform", "transpose", "bitcomp", "bitrev",
	"shuffle", "tornado", "neighbor", "hotspot",
}

func TestRegistryNames(t *testing.T) {
	got := Names()
	if len(got) != len(wantNames) {
		t.Fatalf("registry has %v, want %v", got, wantNames)
	}
	for i, n := range wantNames {
		if got[i] != n {
			t.Fatalf("registry[%d] = %q, want %q (full: %v)", i, got[i], n, got)
		}
	}
	for _, n := range wantNames {
		p, err := Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, p.Name())
		}
		if p.Description() == "" {
			t.Errorf("pattern %q has no description", n)
		}
	}
}

func TestLookupRejectsUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown pattern must error")
	} else if !strings.Contains(err.Error(), "uniform") {
		t.Errorf("error should list known names, got: %v", err)
	}
	// Case-insensitive hit.
	if _, err := Lookup("Tornado"); err != nil {
		t.Errorf("lookup must be case-insensitive: %v", err)
	}
}

func TestParsePatterns(t *testing.T) {
	all, err := ParsePatterns("all")
	if err != nil || len(all) != len(wantNames) {
		t.Fatalf("ParsePatterns(all) = %d patterns, err %v", len(all), err)
	}
	two, err := ParsePatterns(" tornado , transpose ")
	if err != nil || len(two) != 2 || two[0].Name() != "tornado" || two[1].Name() != "transpose" {
		t.Fatalf("ParsePatterns list broken: %v %v", two, err)
	}
	if _, err := ParsePatterns("tornado,bogus"); err == nil {
		t.Error("bogus member must error")
	}
	if _, err := ParsePatterns(" , "); err == nil {
		t.Error("empty list must error")
	}
}

// permutationDest holds the exact golden destination maps on a 4×4 mesh
// (node ids row-major, x = i%4, y = i/4); -1 marks a silent fixed point.
var permutationDest = map[string][16]int{
	// (x,y) → (y,x)
	"transpose": {-1, 4, 8, 12, 1, -1, 9, 13, 2, 6, -1, 14, 3, 7, 11, -1},
	// i → 15−i
	"bitcomp": {15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
	// i → 4-bit reversal of i
	"bitrev": {-1, 8, 4, 12, 2, 10, -1, 14, 1, -1, 5, 13, 3, 11, 7, -1},
	// i → rotate-left-1 of i's 4 bits
	"shuffle": {-1, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, -1},
	// (x,y) → ((x+1) mod 4, y): ⌈4/2⌉−1 = 1 hop around the row
	"tornado": {1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12},
}

func TestPermutationGolden4x4(t *testing.T) {
	net := grid(t, 4, 4)
	const rate = 0.25
	for name, want := range permutationDest {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.Generate(net, rate)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				wantRate := 0.0
				if want[s] == d {
					wantRate = rate
				}
				if m.Rate(s, d) != wantRate {
					t.Errorf("%s: rate[%d][%d] = %v, want %v", name, s, d, m.Rate(s, d), wantRate)
				}
			}
		}
	}
}

func TestUniformGolden4x4(t *testing.T) {
	net := grid(t, 4, 4)
	p, _ := Lookup("uniform")
	m, err := p.Generate(net, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3 / 15
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			wantRate := want
			if s == d {
				wantRate = 0
			}
			if !units.ApproxEqual(m.Rate(s, d), wantRate, 1e-12) {
				t.Fatalf("uniform rate[%d][%d] = %v, want %v", s, d, m.Rate(s, d), wantRate)
			}
		}
	}
}

func TestNeighborGolden4x4(t *testing.T) {
	net := grid(t, 4, 4)
	p, _ := Lookup("neighbor")
	m, err := p.Generate(net, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	// Corner (0,0): two neighbors at rate/2.
	if got := m.Rate(0, 1); !units.ApproxEqual(got, 0.06, 1e-12) {
		t.Errorf("corner east rate = %v, want 0.06", got)
	}
	if got := m.Rate(0, 4); !units.ApproxEqual(got, 0.06, 1e-12) {
		t.Errorf("corner south rate = %v, want 0.06", got)
	}
	// Edge (1,0): three neighbors at rate/3.
	if got := m.Rate(1, 2); !units.ApproxEqual(got, 0.04, 1e-12) {
		t.Errorf("edge rate = %v, want 0.04", got)
	}
	// Interior (1,1) = node 5: four neighbors at rate/4.
	for _, d := range []int{4, 6, 1, 9} {
		if got := m.Rate(5, d); !units.ApproxEqual(got, 0.03, 1e-12) {
			t.Errorf("interior rate[5][%d] = %v, want 0.03", d, got)
		}
	}
	// Nothing beyond distance 1.
	if m.Rate(5, 7) != 0 || m.Rate(0, 5) != 0 {
		t.Error("neighbor pattern must not reach past distance 1")
	}
}

func TestHotspotGolden4x4(t *testing.T) {
	net := grid(t, 4, 4)
	p, _ := Lookup("hotspot")
	const rate = 0.15
	m, err := p.Generate(net, rate)
	if err != nil {
		t.Fatal(err)
	}
	center := int(net.Node(2, 2)) // node 10
	uniform := rate * (1 - DefaultHotspotFraction) / 15
	hot := uniform + rate*DefaultHotspotFraction
	for s := 0; s < 16; s++ {
		if s == center {
			// The hot node itself spreads everything uniformly.
			for d := 0; d < 16; d++ {
				want := rate / 15
				if d == s {
					want = 0
				}
				if !units.ApproxEqual(m.Rate(s, d), want, 1e-12) {
					t.Fatalf("hotspot rate[center][%d] = %v, want %v", d, m.Rate(s, d), want)
				}
			}
			continue
		}
		for d := 0; d < 16; d++ {
			want := uniform
			switch {
			case d == s:
				want = 0
			case d == center:
				want = hot
			}
			if !units.ApproxEqual(m.Rate(s, d), want, 1e-12) {
				t.Fatalf("hotspot rate[%d][%d] = %v, want %v", s, d, m.Rate(s, d), want)
			}
		}
	}
}

// TestPatternProperties: on every grid a pattern supports, its matrix
// validates, peaks at the requested rate, and permutations stay
// injective with exactly one destination per non-fixed source.
func TestPatternProperties(t *testing.T) {
	grids := [][2]int{{4, 4}, {8, 8}, {4, 8}, {5, 5}, {16, 16}}
	const rate = 0.1
	for _, g := range grids {
		net := grid(t, g[0], g[1])
		for _, p := range Patterns() {
			m, err := p.Generate(net, rate)
			if err != nil {
				// Structural precondition (square / power-of-two) — fine,
				// as long as the supported grids are covered below.
				continue
			}
			if err := m.Validate(); err != nil {
				t.Errorf("%s on %dx%d: %v", p.Name(), g[0], g[1], err)
			}
			if got := m.MaxRowSum(); !units.ApproxEqual(got, rate, 1e-9) {
				t.Errorf("%s on %dx%d: max row sum %v, want %v", p.Name(), g[0], g[1], got, rate)
			}
			if _, isPerm := permutationDest[p.Name()]; !isPerm {
				continue
			}
			seen := map[int]bool{}
			for s := 0; s < m.N; s++ {
				var dests []int
				for d := 0; d < m.N; d++ {
					if m.Rate(s, d) != 0 {
						dests = append(dests, d)
					}
				}
				if len(dests) > 1 {
					t.Errorf("%s on %dx%d: source %d has %d destinations", p.Name(), g[0], g[1], s, len(dests))
				}
				if len(dests) == 1 {
					if m.Rate(s, dests[0]) != rate {
						t.Errorf("%s: split rate %v at source %d", p.Name(), m.Rate(s, dests[0]), s)
					}
					if seen[dests[0]] {
						t.Errorf("%s on %dx%d: destination %d reused", p.Name(), g[0], g[1], dests[0])
					}
					seen[dests[0]] = true
				}
			}
		}
	}
	// Every pattern must support the paper's 16×16 mesh and the 8×8
	// example scale.
	for _, g := range [][2]int{{8, 8}, {16, 16}} {
		net := grid(t, g[0], g[1])
		for _, p := range Patterns() {
			if _, err := p.Generate(net, rate); err != nil {
				t.Errorf("%s must support %dx%d: %v", p.Name(), g[0], g[1], err)
			}
		}
	}
}

func TestPatternPreconditions(t *testing.T) {
	rect := grid(t, 4, 2) // 8 nodes: power of two but not square
	if _, err := Lookup("transpose"); err != nil {
		t.Fatal(err)
	}
	tr, _ := Lookup("transpose")
	if _, err := tr.Generate(rect, 0.1); err == nil {
		t.Error("transpose must reject non-square grids")
	}
	odd := grid(t, 3, 3) // 9 nodes: square but not a power of two
	for _, name := range []string{"bitrev", "shuffle"} {
		p, _ := Lookup(name)
		if _, err := p.Generate(odd, 0.1); err == nil {
			t.Errorf("%s must reject non-power-of-two node counts", name)
		}
	}
	narrow := grid(t, 2, 4)
	tor, _ := Lookup("tornado")
	if _, err := tor.Generate(narrow, 0.1); err == nil {
		t.Error("tornado must reject width < 3 (degenerate shift)")
	}
}

func TestHotspotValidation(t *testing.T) {
	net := grid(t, 4, 4)
	for _, h := range []Hotspot{
		{Fraction: 0},
		{Fraction: -0.5},
		{Fraction: 1.5},
		{Fraction: 0.2, Nodes: []topology.NodeID{99}},
		{Fraction: 0.2, Nodes: []topology.NodeID{3, 3}},
	} {
		if _, err := h.Generate(net, 0.1); err == nil {
			t.Errorf("hotspot %+v must be rejected", h)
		}
	}
	// Multi-node hotspot: rows sum to rate, hot nodes drain the share.
	h := Hotspot{Fraction: 0.5, Nodes: []topology.NodeID{0, 15}}
	m, err := h.Generate(net, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m.N; s++ {
		if !units.ApproxEqual(m.RowSum(s), 0.2, 1e-12) {
			t.Fatalf("row %d sums to %v, want 0.2", s, m.RowSum(s))
		}
	}
	// Source 0 is hot: its whole hot share lands on node 15.
	if got, want := m.Rate(0, 15), 0.2*0.5/1+0.2*0.5/15; !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("hot source rate[0][15] = %v, want %v", got, want)
	}
}

// TestConstructorsMatchRegistry: the legacy convenience constructors and
// the registry patterns must agree entry for entry.
func TestConstructorsMatchRegistry(t *testing.T) {
	net := grid(t, 8, 8)
	cases := []struct {
		name string
		m    *Matrix
	}{
		{"uniform", Uniform(net, 0.1)},
		{"transpose", Transpose(net, 0.1)},
		{"bitcomp", BitComplement(net, 0.1)},
	}
	for _, c := range cases {
		p, err := Lookup(c.name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Generate(net, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < want.N; s++ {
			for d := 0; d < want.N; d++ {
				if c.m.Rate(s, d) != want.Rate(s, d) {
					t.Fatalf("%s: constructor and registry diverge at [%d][%d]", c.name, s, d)
				}
			}
		}
	}
}

// TestParseErrorsListRegisteredNames: unknown-name and empty-list errors
// from ParsePatterns must name every registered pattern, so a CLI user can
// correct the flag from the message alone.
func TestParseErrorsListRegisteredNames(t *testing.T) {
	for _, spec := range []string{"bogus", "tornado,bogus", " , ", ""} {
		_, err := ParsePatterns(spec)
		if err == nil {
			t.Fatalf("ParsePatterns(%q) should fail", spec)
		}
		for _, name := range Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParsePatterns(%q) error omits registered pattern %q: %v", spec, name, err)
			}
		}
	}
	if _, err := Lookup("bogus"); err == nil || !strings.Contains(err.Error(), "uniform") {
		t.Errorf("Lookup error should list names: %v", err)
	}
}
