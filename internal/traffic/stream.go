// Streamed traffic matrices: the on-demand Rate(src,dst) form of Matrix.
//
// Every synthetic pattern (the registry's permutations, uniform, neighbor,
// hotspot and the Soteriou statistical model) is defined by a closed-form
// generator, so materializing n² entries is pure overhead — at 64×64 one
// dense matrix is 134 MB, at 256×256 it is 34 GB. A streamed Matrix keeps
// the generator plus O(n) derived state (per-row sums) and computes entries
// on demand.
//
// Bit-exactness contract: a streamed matrix is indistinguishable from the
// dense matrix the same generator used to materialize — Rate, Row, RowSum,
// MaxRowSum, MeanRowSum and Scaled reproduce the dense values bit-for-bit.
// Two rules make that hold:
//
//   - entries are always computed as base×scale, the same single multiply
//     the dense Scaled applied to each materialized entry;
//   - row sums replay the dense left-to-right summation order. Skipped
//     zero entries are exact no-ops (x + 0.0 == x), so generators whose
//     rows are mostly zero (permutations, neighbor) may sum only the
//     populated entries in ascending-destination order.
package traffic

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// generator is a streamed pattern backend: an immutable closed-form
// description of the unscaled rate matrix. Implementations must be safe for
// concurrent use (sweep jobs share matrices read-only).
type generator interface {
	// rate returns the unscaled entry (s, d), s != d.
	rate(s, d int) float64
	// fillRow writes the unscaled row s into dst[0:n], including the zero
	// diagonal entry.
	fillRow(s int, dst []float64)
	// rowSums writes every row's sum at the given scale into dst, each
	// bit-identical to summing the scaled row left to right.
	rowSums(scale float64, dst []float64)
}

// newStreamed wraps a generator as a Matrix, precomputing the O(n) row-sum
// vector at the given scale.
func newStreamed(n int, g generator, scale float64) *Matrix {
	m := &Matrix{N: n, gen: g, scale: scale, rowSums: make([]float64, n)}
	g.rowSums(scale, m.rowSums)
	return m
}

// sumRows is the generic row-sum fallback: materialize each row into a
// scratch buffer and sum it left to right at the scale — exactly what the
// dense RowSum did, in O(n) transient memory.
func sumRows(g generator, n int, scale float64, dst []float64) {
	row := make([]float64, n)
	for s := range dst {
		g.fillRow(s, row)
		var sum float64
		for _, v := range row {
			sum += v * scale
		}
		dst[s] = sum
	}
}

// uniformGen is uniform-random traffic: per to every other node.
type uniformGen struct {
	n   int
	per float64
}

func (g uniformGen) rate(s, d int) float64 { return g.per }

func (g uniformGen) fillRow(s int, dst []float64) {
	for d := 0; d < g.n; d++ {
		if d == s {
			dst[d] = 0
		} else {
			dst[d] = g.per
		}
	}
}

func (g uniformGen) rowSums(scale float64, dst []float64) {
	// Every row is n−1 adds of the same value (the zero diagonal is an
	// exact no-op wherever it falls), so one row's sum serves all.
	v := g.per * scale
	var sum float64
	for i := 0; i < g.n-1; i++ {
		sum += v
	}
	for s := range dst {
		dst[s] = sum
	}
}

// permGen is a permutation pattern: each node sends its whole rate to one
// image node; fixed points stay silent.
type permGen struct {
	n    int
	peak float64
	to   []int32 // to[s] is the image of s (may equal s: silent)
}

func (g *permGen) rate(s, d int) float64 {
	if int(g.to[s]) == d {
		return g.peak
	}
	return 0
}

func (g *permGen) fillRow(s int, dst []float64) {
	for d := range dst[:g.n] {
		dst[d] = 0
	}
	if t := int(g.to[s]); t != s {
		dst[t] = g.peak
	}
}

func (g *permGen) rowSums(scale float64, dst []float64) {
	// A row is zeros plus at most one entry: its sum is exactly that
	// entry (zero adds are exact).
	v := g.peak * scale
	for s := range dst {
		if int(g.to[s]) != s {
			dst[s] = v
		} else {
			dst[s] = 0
		}
	}
}

// neighborGen splits the rate evenly over the 2–4 mesh neighbors.
type neighborGen struct {
	net  *topology.Network
	peak float64
}

// neighbors fills buf with node s's grid neighbors in the fixed W/E/N/S
// probe order of the dense generator and returns the count.
func (g *neighborGen) neighbors(s int, buf *[4]int32) int {
	net := g.net
	src := topology.NodeID(s)
	x, y := net.X(src), net.Y(src)
	k := 0
	for _, c := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
		if c[0] >= 0 && c[0] < net.Width && c[1] >= 0 && c[1] < net.Height {
			buf[k] = int32(net.Node(c[0], c[1]))
			k++
		}
	}
	return k
}

func (g *neighborGen) rate(s, d int) float64 {
	var buf [4]int32
	k := g.neighbors(s, &buf)
	for _, nb := range buf[:k] {
		if int(nb) == d {
			return g.peak / float64(k)
		}
	}
	return 0
}

func (g *neighborGen) fillRow(s int, dst []float64) {
	n := g.net.NumNodes()
	for d := range dst[:n] {
		dst[d] = 0
	}
	var buf [4]int32
	k := g.neighbors(s, &buf)
	per := g.peak / float64(k)
	for _, nb := range buf[:k] {
		dst[nb] = per
	}
}

func (g *neighborGen) rowSums(scale float64, dst []float64) {
	var buf [4]int32
	for s := range dst {
		k := g.neighbors(s, &buf)
		v := (g.peak / float64(k)) * scale
		var sum float64
		for i := 0; i < k; i++ {
			sum += v
		}
		dst[s] = sum
	}
}

// hotspotGen concentrates a fraction of each row on the hot set, the rest
// uniform (see Hotspot).
type hotspotGen struct {
	n        int
	peak     float64
	fraction float64
	hot      []topology.NodeID
	isHot    []bool
}

// split returns row s's uniform background and per-hot-destination extra,
// replicating the dense generator's only-hot-node fallback.
func (g *hotspotGen) split(s int) (uniform, hotPer float64) {
	targets := 0
	for _, d := range g.hot {
		if int(d) != s {
			targets++
		}
	}
	uniform = g.peak * (1 - g.fraction) / float64(g.n-1)
	if targets > 0 {
		hotPer = g.peak * g.fraction / float64(targets)
	} else {
		uniform = g.peak / float64(g.n-1)
	}
	return uniform, hotPer
}

func (g *hotspotGen) rate(s, d int) float64 {
	uniform, hotPer := g.split(s)
	v := uniform
	if g.isHot[d] {
		v += hotPer
	}
	return v
}

func (g *hotspotGen) fillRow(s int, dst []float64) {
	uniform, hotPer := g.split(s)
	for d := 0; d < g.n; d++ {
		if d == s {
			dst[d] = 0
			continue
		}
		v := uniform
		if g.isHot[d] {
			v += hotPer
		}
		dst[d] = v
	}
}

func (g *hotspotGen) rowSums(scale float64, dst []float64) {
	sumRows(g, g.n, scale, dst)
}

// soteriouGen is the streamed Soteriou statistical model: per-source
// injection rates are drawn once (O(n)); each row's truncated-geometric
// weights are recomputed on demand from the kind's Distance in O(n).
type soteriouGen struct {
	net     *topology.Network
	n       int
	maxDist int // exclusive upper bound on Distance
	p       float64
	rates   []float64 // per-source injection rate (level-scaled)
}

// rowInto writes the unscaled row s into dst using the caller's histogram
// scratch — the exact computation (and float expression order) of the
// historical dense builder.
func (g *soteriouGen) rowInto(s int, dst []float64, counts []int, hopW []float64) {
	net := g.net
	src := topology.NodeID(s)
	for h := range counts {
		counts[h] = 0
	}
	for d := 0; d < g.n; d++ {
		if d == s {
			continue
		}
		counts[net.Distance(src, topology.NodeID(d))]++
	}
	// Truncated geometric weight per populated distance, in fixed
	// (ascending) order for bit-exact determinism.
	var totalW float64
	for h := 1; h < g.maxDist; h++ {
		if counts[h] == 0 {
			hopW[h] = 0
			continue
		}
		w := g.p * math.Pow(1-g.p, float64(h-1))
		hopW[h] = w
		totalW += w
	}
	rate := g.rates[s]
	for d := 0; d < g.n; d++ {
		if d == s {
			dst[d] = 0
			continue
		}
		h := net.Distance(src, topology.NodeID(d))
		dst[d] = rate * hopW[h] / totalW / float64(counts[h])
	}
}

func (g *soteriouGen) fillRow(s int, dst []float64) {
	g.rowInto(s, dst, make([]int, g.maxDist), make([]float64, g.maxDist))
}

func (g *soteriouGen) rate(s, d int) float64 {
	row := make([]float64, g.n)
	g.fillRow(s, row)
	return row[d]
}

func (g *soteriouGen) rowSums(scale float64, dst []float64) {
	row := make([]float64, g.n)
	counts := make([]int, g.maxDist)
	hopW := make([]float64, g.maxDist)
	for s := range dst {
		g.rowInto(s, row, counts, hopW)
		var sum float64
		for _, v := range row {
			sum += v * scale
		}
		dst[s] = sum
	}
}

// validateStreamed checks a streamed matrix's O(n) derived state; the
// entries themselves are valid by construction (generators are pure
// closed forms over validated inputs).
func (m *Matrix) validateStreamed() error {
	if len(m.rowSums) != m.N {
		return fmt.Errorf("traffic: %d row sums for N=%d", len(m.rowSums), m.N)
	}
	if m.scale < 0 || math.IsNaN(m.scale) || math.IsInf(m.scale, 0) {
		return fmt.Errorf("traffic: matrix scale %v", m.scale)
	}
	for s, v := range m.rowSums {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("traffic: row %d sum %v", s, v)
		}
	}
	return nil
}
