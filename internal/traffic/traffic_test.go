package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/units"
)

func mesh(t testing.TB) *topology.Network {
	t.Helper()
	n, err := topology.Build(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSoteriouInvariants(t *testing.T) {
	net := mesh(t)
	m := MustSoteriou(net, DefaultSoteriou())
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid matrix: %v", err)
	}
	if m.N != 256 {
		t.Fatalf("N = %d", m.N)
	}
	// Maximum per-node injection equals the configured cap.
	if got := m.MaxRowSum(); !units.ApproxEqual(got, 0.1, 1e-9) {
		t.Errorf("max row sum = %v, want 0.1", got)
	}
	// Every rate non-negative and total positive.
	if m.MeanRowSum() <= 0 {
		t.Error("mean injection must be positive")
	}
}

// TestSigmaShapesInjectionSpread: with σ=0.4 half-normal levels, the mean
// per-node rate should sit near 0.31 of the max — the ratio that makes the
// R values of Table III come out right.
func TestSigmaShapesInjectionSpread(t *testing.T) {
	net := mesh(t)
	m := MustSoteriou(net, DefaultSoteriou())
	ratio := m.MeanRowSum() / m.MaxRowSum()
	if ratio < 0.20 || ratio > 0.45 {
		t.Errorf("mean/max injection ratio = %v, want ≈0.31 (half-normal σ=0.4)", ratio)
	}
	// A larger σ concentrates more nodes at the cap, raising the ratio.
	big := DefaultSoteriou()
	big.Sigma = 2.0
	mb := MustSoteriou(net, big)
	if mb.MeanRowSum()/mb.MaxRowSum() <= ratio {
		t.Error("larger sigma should raise the mean/max injection ratio")
	}
}

// TestPShapesHopDistance: the paper's p=0.02 yields long routes; raising p
// shortens them (geometric acceptance).
func TestPShapesHopDistance(t *testing.T) {
	net := mesh(t)
	low := MustSoteriou(net, DefaultSoteriou())
	hiCfg := DefaultSoteriou()
	hiCfg.P = 0.5
	hi := MustSoteriou(net, hiCfg)
	dLow := MeanHopDistance(net, low)
	dHi := MeanHopDistance(net, hi)
	if dLow <= dHi {
		t.Errorf("p=0.02 mean distance %v should exceed p=0.5 distance %v", dLow, dHi)
	}
	// With p=0.02 on a 16×16 mesh the mean should be in the low teens
	// (near-uniform over distances 1..30, mild geometric decay).
	if dLow < 9 || dLow > 16 {
		t.Errorf("p=0.02 mean hop distance = %v, want ≈13", dLow)
	}
	// With p=0.5 most traffic is nearest-neighbourhood.
	if dHi > 4 {
		t.Errorf("p=0.5 mean hop distance = %v, want short-range", dHi)
	}
}

func TestSoteriouDeterminism(t *testing.T) {
	net := mesh(t)
	a := MustSoteriou(net, DefaultSoteriou())
	b := MustSoteriou(net, DefaultSoteriou())
	for s := 0; s < a.N; s++ {
		for d := 0; d < a.N; d++ {
			if a.Rate(s, d) != b.Rate(s, d) {
				t.Fatalf("same seed diverged at [%d][%d]", s, d)
			}
		}
	}
	c := DefaultSoteriou()
	c.Seed = 99
	other := MustSoteriou(net, c)
	same := true
	for s := 0; s < a.N && same; s++ {
		for d := 0; d < a.N; d++ {
			if a.Rate(s, d) != other.Rate(s, d) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical matrices")
	}
}

func TestSoteriouConfigValidation(t *testing.T) {
	net := mesh(t)
	bad := []SoteriouConfig{
		{P: 0, Sigma: 0.4, MaxInjectionRate: 0.1},
		{P: 1, Sigma: 0.4, MaxInjectionRate: 0.1},
		{P: 0.02, Sigma: 0, MaxInjectionRate: 0.1},
		{P: 0.02, Sigma: 0.4, MaxInjectionRate: 0},
		{P: 0.02, Sigma: 0.4, MaxInjectionRate: 1.5},
	}
	for i, c := range bad {
		if _, err := Soteriou(net, c); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestScaledToMaxRate(t *testing.T) {
	net := mesh(t)
	m := MustSoteriou(net, DefaultSoteriou())
	for _, r := range []float64{0.01, 0.05, 0.1} {
		s := m.ScaledToMaxRate(r)
		if got := s.MaxRowSum(); !units.ApproxEqual(got, r, 1e-9) {
			t.Errorf("ScaledToMaxRate(%v) max = %v", r, got)
		}
	}
	// Scaling is linear: mean scales by the same factor.
	s := m.ScaledToMaxRate(0.05)
	if !units.ApproxEqual(s.MeanRowSum(), m.MeanRowSum()*0.5, 1e-9) {
		t.Error("scaling must be linear")
	}
	z := NewMatrix(4).ScaledToMaxRate(0.1)
	if z.MaxRowSum() != 0 {
		t.Error("scaling a zero matrix stays zero")
	}
}

// TestScalingLinearityProperty: Scaled(a).Scaled(b) == Scaled(a*b).
func TestScalingLinearityProperty(t *testing.T) {
	net := mesh(t)
	m := MustSoteriou(net, DefaultSoteriou())
	f := func(rawA, rawB float64) bool {
		a := math.Mod(math.Abs(rawA), 2)
		b := math.Mod(math.Abs(rawB), 2)
		x := m.Scaled(a).Scaled(b)
		y := m.Scaled(a * b)
		for s := 0; s < m.N; s += 17 {
			for d := 0; d < m.N; d += 13 {
				if !units.ApproxEqual(x.Rate(s, d), y.Rate(s, d), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	net := mesh(t)
	m := Uniform(net, 0.1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m.N; s++ {
		if !units.ApproxEqual(m.RowSum(s), 0.1, 1e-9) {
			t.Fatalf("node %d injects %v, want 0.1", s, m.RowSum(s))
		}
	}
	// Uniform mean distance on 16×16 mesh is 2/3·16 ≈ 10.67.
	if d := MeanHopDistance(net, m); d < 10 || d > 11.5 {
		t.Errorf("uniform mean distance = %v, want ≈10.7", d)
	}
}

func TestTranspose(t *testing.T) {
	net := mesh(t)
	m := Transpose(net, 0.1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// (x,y) -> (y,x): node (3,5) sends to (5,3).
	if got := m.Rate(int(net.Node(3, 5)), int(net.Node(5, 3))); got != 0.1 {
		t.Errorf("transpose rate = %v", got)
	}
	// Diagonal nodes are silent.
	if got := m.RowSum(int(net.Node(4, 4))); got != 0 {
		t.Errorf("diagonal node injects %v", got)
	}
}

func TestBitComplement(t *testing.T) {
	net := mesh(t)
	m := BitComplement(net, 0.1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Rate(0, 255); got != 0.1 {
		t.Errorf("node 0 -> 255 rate = %v", got)
	}
	// Bit complement of a 16×16 mesh crosses the whole chip: mean
	// distance is 16 (avg |x - (15-x)| = 8 per dimension... exactly 2×8).
	if d := MeanHopDistance(net, m); d < 14 || d > 18 {
		t.Errorf("bit-complement mean distance = %v, want ≈16", d)
	}
}

func TestMeanHopDistanceEmpty(t *testing.T) {
	net := mesh(t)
	if d := MeanHopDistance(net, NewMatrix(256)); d != 0 {
		t.Errorf("empty matrix distance = %v", d)
	}
}

func TestMatrixValidateCatchesCorruption(t *testing.T) {
	m := NewMatrix(4)
	m.Rates[1][1] = 0.5
	if err := m.Validate(); err == nil {
		t.Error("self traffic must be rejected")
	}
	m = NewMatrix(4)
	m.Rates[0][1] = -1
	if err := m.Validate(); err == nil {
		t.Error("negative rate must be rejected")
	}
	m = NewMatrix(4)
	m.Rates[0][1] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN rate must be rejected")
	}
}
