package traffic

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/topology"
)

// Pattern is a named synthetic traffic generator: given a network and a
// peak per-node injection rate it produces a rate matrix whose MaxRowSum
// equals the rate (silent sources are allowed, e.g. the transpose
// diagonal). Patterns are pure functions of (network, rate) — no RNG — so
// every sweep built on them inherits the repository's determinism
// contract for free.
//
// The classic permutations stress spatial structure the Soteriou model
// averages away: transpose and tornado load one dimension asymmetrically
// (adversarial for the paper's horizontal-only express links), while
// bit-reversal and shuffle maximize path diversity pressure.
type Pattern interface {
	// Name is the registry key (lower-case, stable).
	Name() string
	// Description is a one-line formula summary for docs and CLIs.
	Description() string
	// Generate builds the matrix for a network at the given peak rate.
	// It fails when the pattern's structural preconditions (square grid,
	// power-of-two node count, …) do not hold.
	Generate(net *topology.Network, rate float64) (*Matrix, error)
}

// funcPattern adapts a generator function to the Pattern interface.
type funcPattern struct {
	name, desc string
	gen        func(net *topology.Network, rate float64) (*Matrix, error)
}

func (p funcPattern) Name() string        { return p.name }
func (p funcPattern) Description() string { return p.desc }
func (p funcPattern) Generate(net *topology.Network, rate float64) (*Matrix, error) {
	return p.gen(net, rate)
}

// registry maps pattern names to implementations; order preserves
// registration so listings are stable.
var (
	registry      = map[string]Pattern{}
	registryOrder []string
)

// Register adds a pattern to the registry. It panics on a duplicate or
// empty name — registration is an init-time programming act, not runtime
// input handling.
func Register(p Pattern) {
	name := strings.ToLower(p.Name())
	if name == "" {
		panic("traffic: pattern with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("traffic: duplicate pattern %q", name))
	}
	registry[name] = p
	registryOrder = append(registryOrder, name)
}

// Lookup resolves a registry name (case-insensitive). The error lists the
// known names so CLI users can self-serve.
func Lookup(name string) (Pattern, error) {
	p, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("traffic: unknown pattern %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// Names returns the registered pattern names in registration order.
func Names() []string {
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	return out
}

// Patterns returns every registered pattern in registration order.
func Patterns() []Pattern {
	out := make([]Pattern, 0, len(registryOrder))
	for _, n := range registryOrder {
		out = append(out, registry[n])
	}
	return out
}

// ParsePatterns resolves a comma-separated list of registry names; the
// single token "all" selects the whole registry. Every error names the
// registered patterns, so CLI users can self-serve from the message.
func ParsePatterns(spec string) ([]Pattern, error) {
	if strings.EqualFold(strings.TrimSpace(spec), "all") {
		return Patterns(), nil
	}
	var out []Pattern
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		p, err := Lookup(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("traffic: empty pattern list %q (registered: %s, or \"all\")",
			spec, strings.Join(Names(), ", "))
	}
	return out, nil
}

// permutation builds a streamed matrix from a source→destination map:
// every node with a distinct image sends its whole rate there; fixed
// points stay silent (standard for transpose diagonals and odd-node bit
// complement). Only the O(n) image table is stored.
func permutation(net *topology.Network, rate float64, dst func(s int) int) *Matrix {
	n := net.NumNodes()
	to := make([]int32, n)
	for s := 0; s < n; s++ {
		to[s] = int32(dst(s))
	}
	return newStreamed(n, &permGen{n: n, peak: rate, to: to}, 1)
}

// requireSquare rejects non-square grids for coordinate-swap patterns.
func requireSquare(net *topology.Network, name string) error {
	if net.Width != net.Height {
		return fmt.Errorf("traffic: %s needs a square grid, got %dx%d",
			name, net.Width, net.Height)
	}
	return nil
}

// requirePow2 rejects node counts that are not powers of two for
// bit-indexed patterns, returning the index width in bits.
func requirePow2(net *topology.Network, name string) (int, error) {
	n := net.NumNodes()
	if n < 2 || n&(n-1) != 0 {
		return 0, fmt.Errorf("traffic: %s needs a power-of-two node count, got %d", name, n)
	}
	return bits.Len(uint(n)) - 1, nil
}

func genUniform(net *topology.Network, rate float64) (*Matrix, error) {
	n := net.NumNodes()
	return newStreamed(n, uniformGen{n: n, per: rate / float64(n-1)}, 1), nil
}

func genTranspose(net *topology.Network, rate float64) (*Matrix, error) {
	if err := requireSquare(net, "transpose"); err != nil {
		return nil, err
	}
	return permutation(net, rate, func(s int) int {
		src := topology.NodeID(s)
		return int(net.Node(net.Y(src), net.X(src)))
	}), nil
}

func genBitComplement(net *topology.Network, rate float64) (*Matrix, error) {
	n := net.NumNodes()
	return permutation(net, rate, func(s int) int { return n - 1 - s }), nil
}

func genBitReversal(net *topology.Network, rate float64) (*Matrix, error) {
	b, err := requirePow2(net, "bit-reversal")
	if err != nil {
		return nil, err
	}
	return permutation(net, rate, func(s int) int {
		return int(bits.Reverse(uint(s)) >> (bits.UintSize - b))
	}), nil
}

func genShuffle(net *topology.Network, rate float64) (*Matrix, error) {
	b, err := requirePow2(net, "shuffle")
	if err != nil {
		return nil, err
	}
	n := net.NumNodes()
	return permutation(net, rate, func(s int) int {
		return (s<<1 | s>>(b-1)) & (n - 1)
	}), nil
}

func genTornado(net *topology.Network, rate float64) (*Matrix, error) {
	// Dally & Towles' tornado applied to the row dimension: each node
	// sends ⌈W/2⌉−1 hops to the right (mod W), halfway around the row —
	// the worst case for minimal routing and exactly the flow the paper's
	// horizontal express links exist to absorb.
	shift := (net.Width+1)/2 - 1
	if shift == 0 {
		return nil, fmt.Errorf("traffic: tornado degenerate on width %d (< 3)", net.Width)
	}
	return permutation(net, rate, func(s int) int {
		src := topology.NodeID(s)
		return int(net.Node((net.X(src)+shift)%net.Width, net.Y(src)))
	}), nil
}

func genNeighbor(net *topology.Network, rate float64) (*Matrix, error) {
	return newStreamed(net.NumNodes(), &neighborGen{net: net, peak: rate}, 1), nil
}

// Hotspot concentrates a fraction of every node's traffic on a small set
// of hot destinations, spreading the rest uniformly — the classic model
// of shared-resource contention (memory controllers, directories).
type Hotspot struct {
	// Fraction of each source's rate aimed at the hot set, split evenly
	// across it; must lie in (0, 1].
	Fraction float64
	// Nodes are the hot destinations; empty selects the grid's center
	// node (⌊W/2⌋, ⌊H/2⌋).
	Nodes []topology.NodeID
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

// Description implements Pattern.
func (h Hotspot) Description() string {
	return fmt.Sprintf("%.0f%% of traffic to %s, rest uniform",
		h.Fraction*100, h.describeNodes())
}

func (h Hotspot) describeNodes() string {
	if len(h.Nodes) == 0 {
		return "the center node"
	}
	return fmt.Sprintf("%d hot nodes", len(h.Nodes))
}

// Generate implements Pattern.
func (h Hotspot) Generate(net *topology.Network, rate float64) (*Matrix, error) {
	if h.Fraction <= 0 || h.Fraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v out of (0,1]", h.Fraction)
	}
	n := net.NumNodes()
	// Copy the hot list: the generator outlives this call and must not
	// alias caller-owned memory.
	hot := append([]topology.NodeID(nil), h.Nodes...)
	if len(hot) == 0 {
		hot = []topology.NodeID{net.Node(net.Width/2, net.Height/2)}
	}
	isHot := make([]bool, n)
	for _, id := range hot {
		if int(id) < 0 || int(id) >= n {
			return nil, fmt.Errorf("traffic: hotspot node %d outside %d-node network", id, n)
		}
		if isHot[id] {
			return nil, fmt.Errorf("traffic: duplicate hotspot node %d", id)
		}
		isHot[id] = true
	}
	// Hot share: split across hot destinations other than the source
	// itself; a source that is the only hot node spreads its share
	// uniformly instead, so every row still sums to rate (see
	// hotspotGen.split).
	g := &hotspotGen{n: n, peak: rate, fraction: h.Fraction, hot: hot, isHot: isHot}
	return newStreamed(n, g, 1), nil
}

// DefaultHotspotFraction is the registry default: 20% of every node's
// traffic converges on the center node, a mild but clearly visible
// contention point at the paper's injection rates.
const DefaultHotspotFraction = 0.2

func init() {
	Register(funcPattern{"uniform",
		"every node sends rate/(N−1) to each other node", genUniform})
	Register(funcPattern{"transpose",
		"(x,y) → (y,x); diagonal nodes silent", genTranspose})
	Register(funcPattern{"bitcomp",
		"node i → node (N−1−i), corner-to-corner", genBitComplement})
	Register(funcPattern{"bitrev",
		"node i → reverse of i's log₂N-bit index", genBitReversal})
	Register(funcPattern{"shuffle",
		"node i → rotate-left-1 of i's log₂N-bit index", genShuffle})
	Register(funcPattern{"tornado",
		"(x,y) → ((x+⌈W/2⌉−1) mod W, y), halfway around the row", genTornado})
	Register(funcPattern{"neighbor",
		"rate split evenly over the 2–4 mesh neighbors", genNeighbor})
	Register(Hotspot{Fraction: DefaultHotspotFraction})
}
