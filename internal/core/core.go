// Package core is the front door of the HyPPI NoC reproduction: it wires
// the substrate packages (topology, routing, traffic, dsent, noc, npb,
// optical) into the paper's experiments and exposes one call per
// table/figure family:
//
//	LinkSweep          — Fig. 3  (link-level CLEAR vs length)
//	Explore            — Fig. 5, Tables III & IV (hybrid design space)
//	RunTraceExperiment — Fig. 6, Table V (cycle-accurate NPB traces)
//	AllOpticalRadar    — Fig. 8, Table VI (fully optical projections)
//
// Every experiment is deterministic given its configuration.
package core

import (
	"context"
	"fmt"

	"repro/internal/analytic"
	"repro/internal/dsent"
	"repro/internal/link"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/optical"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/units"
)

// DesignPoint names one hybrid NoC of the Fig. 5 design space.
type DesignPoint struct {
	// Base is the mesh channel technology.
	Base tech.Technology
	// Express is the express channel technology (ignored for Hops == 0).
	Express tech.Technology
	// Hops is the express hop length: 0 (plain mesh), 3, 5 or 15.
	Hops int
}

// String implements fmt.Stringer.
func (p DesignPoint) String() string {
	if p.Hops == 0 {
		return fmt.Sprintf("%v mesh", p.Base)
	}
	return fmt.Sprintf("%v mesh + %v express@%d", p.Base, p.Express, p.Hops)
}

// DefaultDesignSpace enumerates the paper's Fig. 5 grid: base mesh in
// {Electronic, Photonic, HyPPI} × (plain + express in the same three
// technologies × hops {3, 5, 15}).
func DefaultDesignSpace() []DesignPoint {
	bases := []tech.Technology{tech.Electronic, tech.Photonic, tech.HyPPI}
	var pts []DesignPoint
	for _, b := range bases {
		pts = append(pts, DesignPoint{Base: b, Express: b, Hops: 0})
		for _, e := range bases {
			for _, h := range []int{3, 5, 15} {
				pts = append(pts, DesignPoint{Base: b, Express: e, Hops: h})
			}
		}
	}
	return pts
}

// Options carries the shared experiment configuration (Table II defaults).
type Options struct {
	// Topology is the base network geometry; the design point overrides
	// its technologies and hop length.
	Topology topology.Config
	// DSENT is the component cost configuration.
	DSENT dsent.Config
	// RouterPipelineClks is the router pipeline depth.
	RouterPipelineClks int
	// Traffic is the synthetic statistical traffic configuration.
	Traffic traffic.SoteriouConfig
	// Policy selects the routing table construction.
	Policy routing.Policy
	// Cache scopes the network/table/traffic memoization for this
	// Options value; nil selects the process-wide default cache. Set a
	// private NewNetworkCache to bound cache lifetime in long-lived
	// processes sweeping many distinct geometries.
	Cache *NetworkCache
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Topology:           topology.DefaultConfig(),
		DSENT:              dsent.DefaultConfig(),
		RouterPipelineClks: 3,
		Traffic:            traffic.DefaultSoteriou(),
		Policy:             routing.MonotoneExpress,
	}
}

// BuildNetwork instantiates a design point's topology.
func (o Options) BuildNetwork(p DesignPoint) (*topology.Network, error) {
	c := o.Topology
	c.BaseTech = p.Base
	c.ExpressTech = p.Express
	c.ExpressHops = p.Hops
	return topology.Build(c)
}

// ExplorationResult pairs a design point with its analytic evaluation.
type ExplorationResult struct {
	Point DesignPoint
	analytic.Result
}

// Explore runs the Section III-B evaluation across design points,
// producing the Fig. 5 dataset (CLEAR, latency, power, area per point)
// plus Table III (C, R) and Table IV (static power) values.
//
// Explore is a thin wrapper over ExploreContext with a default-sized worker
// pool; because each design point is an independent, deterministic job and
// results are collected in point order, its output is bit-identical to the
// historical serial loop.
func Explore(points []DesignPoint, o Options) ([]ExplorationResult, error) {
	return ExploreContext(context.Background(), points, o, runner.Config{})
}

// ExploreContext is Explore on an explicit context and worker-pool
// configuration: design points are evaluated concurrently, the first
// failure cancels the remaining points, and cfg.Progress observes
// completions. Results are returned in point order whatever the pool size.
func ExploreContext(ctx context.Context, points []DesignPoint, o Options, cfg runner.Config) ([]ExplorationResult, error) {
	params := analytic.Params{DSENT: o.DSENT, RouterPipelineClks: o.RouterPipelineClks}
	return runner.Map(ctx, len(points), cfg, func(_ context.Context, i int) (ExplorationResult, error) {
		p := points[i]
		net, tab, err := o.NetworkAndTable(p)
		if err != nil {
			return ExplorationResult{}, fmt.Errorf("core: %v: %w", p, err)
		}
		tm, err := o.cache().Soteriou(net, o.Traffic)
		if err != nil {
			return ExplorationResult{}, fmt.Errorf("core: %v: %w", p, err)
		}
		res, err := analytic.Evaluate(net, tab, tm, params)
		if err != nil {
			return ExplorationResult{}, fmt.Errorf("core: %v: %w", p, err)
		}
		return ExplorationResult{Point: p, Result: res}, nil
	})
}

// WithKind returns a copy of the Options targeting the given topology
// kind; the rest of the configuration (grid, traffic, policy) is shared.
func (o Options) WithKind(k topology.Kind) Options {
	o.Topology.Kind = k
	return o
}

// KindExploration is one row of a cross-topology comparison: a design
// point evaluated on one topology kind, with the structural figures the
// kinds differ on.
type KindExploration struct {
	Kind  topology.Kind
	Point DesignPoint
	analytic.Result
	// NumNodes, Channels and MaxPorts summarize the built structure
	// (routers, unidirectional channels, widest router radix).
	NumNodes, Channels, MaxPorts int
}

// ExploreKinds runs the analytic evaluation across the kind × design-point
// matrix on the worker pool — the cross-topology generalization of
// Explore. Each job resolves its network through the shared cache and is a
// pure function of its index, so results (kind-major, point-minor order)
// are bit-identical for any worker count. Non-mesh kinds reject express
// design points at Build time; pass plain (Hops = 0) points for
// kind-portable sweeps.
func ExploreKinds(ctx context.Context, kinds []topology.Kind, points []DesignPoint, o Options, cfg runner.Config) ([]KindExploration, error) {
	if len(kinds) == 0 || len(points) == 0 {
		return nil, fmt.Errorf("core: kind exploration needs kinds and points")
	}
	params := analytic.Params{DSENT: o.DSENT, RouterPipelineClks: o.RouterPipelineClks}
	return runner.Map(ctx, len(kinds)*len(points), cfg, func(_ context.Context, i int) (KindExploration, error) {
		kind, p := kinds[i/len(points)], points[i%len(points)]
		ko := o.WithKind(kind)
		net, tab, err := ko.NetworkAndTable(p)
		if err != nil {
			return KindExploration{}, fmt.Errorf("core: %v %v: %w", kind, p, err)
		}
		tm, err := ko.cache().Soteriou(net, ko.Traffic)
		if err != nil {
			return KindExploration{}, fmt.Errorf("core: %v %v: %w", kind, p, err)
		}
		res, err := analytic.Evaluate(net, tab, tm, params)
		if err != nil {
			return KindExploration{}, fmt.Errorf("core: %v %v: %w", kind, p, err)
		}
		return KindExploration{
			Kind: kind, Point: p, Result: res,
			NumNodes: net.NumNodes(), Channels: len(net.Links), MaxPorts: net.MaxPorts(),
		}, nil
	})
}

// LinkSweep regenerates the Fig. 3 dataset on the default length grid.
func LinkSweep() ([]link.SweepPoint, error) {
	return link.Sweep(link.Fig3Lengths())
}

// TraceResult is one bar of Fig. 6 plus the Table V energy accounting.
type TraceResult struct {
	Kernel npb.Kernel
	Point  DesignPoint
	// AvgLatencyClks is the simulated average packet latency.
	AvgLatencyClks float64
	// DynamicEnergyJ is the total dynamic energy of the run (links +
	// routers), the Table V quantity.
	DynamicEnergyJ float64
	// StaticPowerW is the network's static power (Table IV quantity).
	StaticPowerW float64
	// Stats is the raw simulation output.
	Stats noc.Stats
}

// RunTraceExperiment simulates one NPB kernel trace on one design point
// with the cycle-accurate simulator, then prices the run with the
// modified-DSENT models.
func RunTraceExperiment(kernel npb.Config, point DesignPoint, o Options, nocCfg noc.Config) (TraceResult, error) {
	return runTraceExperiment(kernel, point, o, nocCfg, nil)
}

// runTraceExperiment is RunTraceExperiment with simulator reuse: the Sim is
// drawn from (and returned to) sims when non-nil. The topology and routing
// table always come from the process-wide network cache.
func runTraceExperiment(kernel npb.Config, point DesignPoint, o Options, nocCfg noc.Config,
	sims *noc.SimPool) (TraceResult, error) {
	events, err := npb.Generate(kernel)
	if err != nil {
		return TraceResult{}, err
	}
	net, tab, err := o.NetworkAndTable(point)
	if err != nil {
		return TraceResult{}, err
	}
	packets, err := trace.Packetize(events, net.NumNodes(), trace.DefaultPacketize())
	if err != nil {
		return TraceResult{}, err
	}
	sim, err := sims.Get(net, tab, nocCfg)
	if err != nil {
		return TraceResult{}, err
	}
	if err := sim.InjectAll(packets); err != nil {
		return TraceResult{}, err
	}
	stats, err := sim.Run()
	sims.Put(sim)
	if err != nil {
		return TraceResult{}, err
	}
	dynamic, static, err := PriceRun(net, stats, o.DSENT)
	if err != nil {
		return TraceResult{}, err
	}
	return TraceResult{
		Kernel:         kernel.Kernel,
		Point:          point,
		AvgLatencyClks: stats.AvgPacketLatencyClks,
		DynamicEnergyJ: dynamic,
		StaticPowerW:   static,
		Stats:          stats,
	}, nil
}

// TraceJob names one trace experiment of a batch: an NPB kernel
// configuration simulated on one design point.
type TraceJob struct {
	Kernel npb.Config
	Point  DesignPoint
}

// RunTraceExperiments executes a batch of independent trace simulations on
// a bounded worker pool, returning results in job order. Each job is a full
// RunTraceExperiment — trace generation, packetization, cycle-accurate
// simulation and DSENT pricing — so per-job results are bit-identical to
// running the jobs serially. Simulators are recycled across the batch
// through one noc.SimPool (jobs sharing a design point share simulators),
// bounding simulator construction at one per live worker per point. The
// first failure cancels the remaining jobs.
func RunTraceExperiments(ctx context.Context, jobs []TraceJob, o Options, nocCfg noc.Config, cfg runner.Config) ([]TraceResult, error) {
	sims := noc.NewSimPool()
	return runner.Map(ctx, len(jobs), cfg, func(_ context.Context, i int) (TraceResult, error) {
		res, err := runTraceExperiment(jobs[i].Kernel, jobs[i].Point, o, nocCfg, sims)
		if err != nil {
			return TraceResult{}, fmt.Errorf("core: %v on %v: %w", jobs[i].Kernel.Kernel, jobs[i].Point, err)
		}
		return res, nil
	})
}

// PriceRun converts simulator flit counters into total dynamic energy and
// reports the network's static power, using the modified-DSENT models —
// exactly how the paper computes Table V from BookSim flit counts.
func PriceRun(net *topology.Network, stats noc.Stats, cfg dsent.Config) (dynamicJ, staticW float64, err error) {
	type key struct {
		t tech.Technology
		l float64
	}
	linkCosts := map[key]dsent.LinkCost{}
	for i, l := range net.Links {
		k := key{l.Tech, l.LengthM}
		lc, ok := linkCosts[k]
		if !ok {
			lc, err = dsent.Link(cfg, l.Tech, l.LengthM)
			if err != nil {
				return 0, 0, err
			}
			linkCosts[k] = lc
		}
		dynamicJ += float64(stats.LinkFlits[i]) * lc.DynamicJPerFlit
		staticW += lc.StaticW
	}
	routerCosts := map[int]dsent.RouterCost{}
	for id := 0; id < net.NumNodes(); id++ {
		ports := net.Ports(topology.NodeID(id))
		rc, ok := routerCosts[ports]
		if !ok {
			rc = dsent.ElectronicRouter(cfg, ports)
			routerCosts[ports] = rc
		}
		dynamicJ += float64(stats.RouterFlits[id]) * rc.DynamicJPerFlit
		staticW += rc.StaticW
	}
	return dynamicJ, staticW, nil
}

// AllOpticalRadar produces the Fig. 8 three-corner comparison under the
// paper's synthetic traffic.
func AllOpticalRadar(o Options) (optical.Radar, error) {
	var radar optical.Radar
	plain := DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}
	net, tab, err := o.NetworkAndTable(plain)
	if err != nil {
		return radar, err
	}
	tm, err := o.cache().Soteriou(net, o.Traffic)
	if err != nil {
		return radar, err
	}
	res, err := analytic.Evaluate(net, tab, tm, analytic.Params{
		DSENT: o.DSENT, RouterPipelineClks: o.RouterPipelineClks,
	})
	if err != nil {
		return radar, err
	}
	delivered := tm.MeanRowSum() * float64(net.NumNodes()) *
		float64(o.DSENT.FlitBits) * o.DSENT.ClockHz
	radar.Electronic = optical.ElectronicReference(res.PowerW, res.AvgLatencyClks, res.AreaM2, delivered)

	p := optical.DefaultParams()
	p.LinkCapacityBps = o.DSENT.LinkCapacityBps
	p.RouterPipelineClks = o.RouterPipelineClks
	radar.HyPPI, err = optical.ProjectAllOptical(net, tab, tm, optical.HyPPIRouter(), p, res.AvgLatencyClks)
	if err != nil {
		return radar, err
	}
	radar.Photonic, err = optical.ProjectAllOptical(net, tab, tm, optical.PhotonicRouter(), p, res.AvgLatencyClks)
	if err != nil {
		return radar, err
	}
	return radar, nil
}

// CLEARRatioVsPlain returns each point's CLEAR normalized to the plain mesh
// of the same base technology — the Fig. 5 presentation.
func CLEARRatioVsPlain(results []ExplorationResult) map[DesignPoint]float64 {
	plain := map[tech.Technology]float64{}
	for _, r := range results {
		if r.Point.Hops == 0 {
			plain[r.Point.Base] = r.CLEAR
		}
	}
	out := make(map[DesignPoint]float64, len(results))
	for _, r := range results {
		if base, ok := plain[r.Point.Base]; ok && base > 0 {
			out[r.Point] = r.CLEAR / base
		}
	}
	return out
}

// FormatPower renders watts for tables.
func FormatPower(w float64) string { return units.FormatSI(w, "W") }

// FormatEnergy renders joules for tables.
func FormatEnergy(j float64) string { return units.FormatSI(j, "J") }

// FormatArea renders square metres as mm².
func FormatArea(a float64) string {
	return fmt.Sprintf("%.3g mm²", a/units.MillimetreSq)
}
