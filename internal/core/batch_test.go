package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/npb"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// batchSweepConfig keeps EvalCells tests in the milliseconds range: a
// short Bernoulli horizon on tiny grids.
func batchSweepConfig() EnergySweepConfig {
	sc := DefaultEnergySweep()
	sc.Workload.Cycles = 400
	return sc
}

func mustPattern(t *testing.T, name string) traffic.Pattern {
	t.Helper()
	p, err := traffic.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// batchCells is a heterogeneous mix covering pattern/trace, kinds,
// geometries and energy pricing — the shapes a serving batch coalesces.
func batchCells(t *testing.T) []EvalCell {
	t.Helper()
	lu := npb.DefaultConfig(npb.LU)
	lu.GridW, lu.GridH = 4, 4
	return []EvalCell{
		{Width: 4, Height: 4, Point: DesignPoint{Base: tech.Electronic, Express: tech.Electronic},
			Pattern: mustPattern(t, "uniform"), Rate: 0.05},
		{Width: 4, Height: 4, Point: DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
			Pattern: mustPattern(t, "tornado"), Rate: 0.1},
		{Kind: topology.Torus, Width: 4, Height: 4,
			Point:   DesignPoint{Base: tech.Electronic, Express: tech.Electronic},
			Pattern: mustPattern(t, "transpose"), Rate: 0.05, Energy: true},
		{Width: 4, Height: 4, Point: DesignPoint{Base: tech.Electronic, Express: tech.Electronic},
			Trace: &lu},
		{Width: 4, Height: 4, Point: DesignPoint{Base: tech.Electronic, Express: tech.Electronic},
			Pattern: mustPattern(t, "uniform"), Rate: 0.05, Energy: true},
	}
}

// TestEvalCellsBatchedMatchesSerial pins the serving determinism
// contract at the core layer: a coalesced batch on a parallel pool is
// bit-identical to evaluating each cell alone on a serial pool.
func TestEvalCellsBatchedMatchesSerial(t *testing.T) {
	cells := batchCells(t)
	sc := batchSweepConfig()
	o := DefaultOptions()

	batched, err := EvalCells(context.Background(), cells, sc, o, runner.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		solo, err := EvalCells(context.Background(), []EvalCell{c}, sc, o, runner.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], solo[0]) {
			t.Errorf("cell %d: batched %+v != solo %+v", i, batched[i], solo[0])
		}
	}
}

// TestEvalCellsErrorIsolation: one unsatisfiable cell (transpose on a
// non-square grid) must not fail its neighbours — its error is captured
// in the result while the rest of the batch answers normally.
func TestEvalCellsErrorIsolation(t *testing.T) {
	cells := []EvalCell{
		{Width: 4, Height: 2, Point: DesignPoint{Base: tech.Electronic, Express: tech.Electronic},
			Pattern: mustPattern(t, "transpose"), Rate: 0.05},
		{Width: 4, Height: 4, Point: DesignPoint{Base: tech.Electronic, Express: tech.Electronic},
			Pattern: mustPattern(t, "uniform"), Rate: 0.05},
	}
	res, err := EvalCells(context.Background(), cells, batchSweepConfig(), DefaultOptions(), runner.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "square") {
		t.Errorf("want square-grid error for cell 0, got %v", res[0].Err)
	}
	if res[1].Err != nil {
		t.Errorf("healthy neighbour failed: %v", res[1].Err)
	}
	if res[1].Packets == 0 || res[1].AvgLatencyClks <= 0 {
		t.Errorf("healthy neighbour produced no traffic: %+v", res[1])
	}
}

// TestEvalCellsValidation covers the remaining per-cell error classes.
func TestEvalCellsValidation(t *testing.T) {
	plain := DesignPoint{Base: tech.Electronic, Express: tech.Electronic}
	uniform := mustPattern(t, "uniform")
	lu := npb.DefaultConfig(npb.LU)
	lu.GridW, lu.GridH = 4, 4
	cells := []EvalCell{
		{Width: 4, Height: 4, Point: plain},                                                    // no source
		{Width: 4, Height: 4, Point: plain, Pattern: uniform},                                  // zero rate
		{Width: 4, Height: 4, Point: plain, Pattern: uniform, Trace: &lu, Rate: 0.1},           // both sources
		{Kind: topology.Torus, Width: 2, Height: 2, Point: plain, Pattern: uniform, Rate: 0.1}, // bad geometry
	}
	res, err := EvalCells(context.Background(), cells, batchSweepConfig(), DefaultOptions(), runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"neither", "positive rate", "both", "torus"}
	for i, want := range wants {
		if res[i].Err == nil || !strings.Contains(res[i].Err.Error(), want) {
			t.Errorf("cell %d: want error containing %q, got %v", i, want, res[i].Err)
		}
	}
	if _, err := EvalCells(context.Background(), nil, batchSweepConfig(), DefaultOptions(), runner.Config{}); err == nil {
		t.Error("empty batch should fail")
	}
}
