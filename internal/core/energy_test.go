package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

// energySweepFixture reuses the tiny pattern-sweep fixture for the energy
// matrix (4×4 grid, short horizon) so the determinism test runs under
// -race in short mode.
func energySweepFixture(t *testing.T) ([]DesignPoint, []traffic.Pattern, EnergySweepConfig, Options) {
	t.Helper()
	points, pats, ps, o := sweepFixture(t)
	return points, pats, EnergySweepConfig{Rates: ps.Rates, Workload: ps.Workload, NoC: ps.NoC}, o
}

func TestEnergySweepShape(t *testing.T) {
	points, pats, sc, o := energySweepFixture(t)
	kinds := []topology.Kind{topology.Mesh}
	results, err := EnergySweep(context.Background(), kinds, points, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(kinds)*len(points)*len(pats) {
		t.Fatalf("%d results, want %d", len(results), len(kinds)*len(points)*len(pats))
	}
	for i, r := range results {
		wantPoint, wantPat := points[(i/len(pats))%len(points)], pats[i%len(pats)]
		if r.Kind != topology.Mesh || r.Point != wantPoint || r.Pattern != wantPat.Name() {
			t.Errorf("result %d is %v/%v/%s, want mesh/%v/%s",
				i, r.Kind, r.Point, r.Pattern, wantPoint, wantPat.Name())
		}
		if len(r.Points) != len(sc.Rates) {
			t.Fatalf("result %d has %d samples, want %d", i, len(r.Points), len(sc.Rates))
		}
		if r.StaticW <= 0 || r.AreaM2 <= 0 {
			t.Errorf("result %d constants static %v area %v", i, r.StaticW, r.AreaM2)
		}
		for pi, p := range r.Points {
			if p.Rate != sc.Rates[pi] {
				t.Errorf("result %d sample %d rate %v, want %v", i, pi, p.Rate, sc.Rates[pi])
			}
			if p.Saturated {
				if p.Pareto {
					t.Errorf("result %d sample %d: saturated point on the frontier", i, pi)
				}
				continue
			}
			if p.Run.FJPerBit <= 0 || p.Run.TotalJ <= 0 || p.CLEAR.Value <= 0 {
				t.Errorf("result %d sample %d: empty accounting %+v", i, pi, p.Run)
			}
			if !units.ApproxEqual(p.Run.StaticJ, r.StaticW*p.Run.Seconds, 1e-9) {
				t.Errorf("result %d sample %d: static %v J != %v W × %v s",
					i, pi, p.Run.StaticJ, r.StaticW, p.Run.Seconds)
			}
		}
	}
}

// TestEnergySweepSerialParallelIdentical enforces the repository's
// determinism contract on the kind × point × pattern × load energy matrix:
// output (including the Pareto marking) is bit-identical for Workers 1 and
// Workers N (run under -race by make race).
func TestEnergySweepSerialParallelIdentical(t *testing.T) {
	points, pats, sc, o := energySweepFixture(t)
	kinds := []topology.Kind{topology.Mesh}
	serial, err := EnergySweep(context.Background(), kinds, points, pats, sc, o,
		runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EnergySweep(context.Background(), kinds, points, pats, sc, o,
		runner.Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel energy sweeps diverge")
	}
}

// TestEnergySweepAcrossKinds: the kind axis works end to end on plain
// points, and each cell reports the canonical kind it ran on.
func TestEnergySweepAcrossKinds(t *testing.T) {
	_, pats, sc, o := energySweepFixture(t)
	pats = pats[:1]
	sc.Rates = sc.Rates[:1]
	plain := []DesignPoint{{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}}
	kinds := []topology.Kind{topology.Mesh, topology.FBFly}
	results, err := EnergySweep(context.Background(), kinds, plain, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Kind != topology.Mesh || results[1].Kind != topology.FBFly {
		t.Fatalf("kind axis wrong: %+v", results)
	}
	// fbfly's all-to-all rows terminate routes in ≤ 2 hops, so at equal
	// rate it must spend less link energy per bit than the mesh... but
	// it also carries far more channels (static). Just pin both priced.
	for _, r := range results {
		if r.Points[0].Saturated || r.Points[0].Run.FJPerBit <= 0 {
			t.Errorf("%v cell not priced: %+v", r.Kind, r.Points[0])
		}
	}
}

// TestEnergySweepParetoFrontier: frontier marks are internally consistent —
// every scenario with a drained sample has at least one frontier point, no
// marked point is dominated, and every unmarked drained point is dominated
// by some marked one.
func TestEnergySweepParetoFrontier(t *testing.T) {
	points, pats, sc, o := energySweepFixture(t)
	results, err := EnergySweep(context.Background(), []topology.Kind{topology.Mesh},
		points, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	type scenario struct{ pattern string }
	type sample struct {
		lat, fj float64
		pareto  bool
	}
	byScenario := map[scenario][]sample{}
	for _, r := range results {
		for _, p := range r.Points {
			if !p.Saturated && p.Run.FJPerBit > 0 {
				byScenario[scenario{r.Pattern}] = append(byScenario[scenario{r.Pattern}],
					sample{p.AvgLatencyClks, p.Run.FJPerBit, p.Pareto})
			}
		}
	}
	if len(byScenario) == 0 {
		t.Fatal("no drained samples")
	}
	dominates := func(a, b sample) bool {
		return a.lat <= b.lat && a.fj <= b.fj && (a.lat < b.lat || a.fj < b.fj)
	}
	for key, samples := range byScenario {
		var frontier int
		for _, s := range samples {
			if s.pareto {
				frontier++
			}
		}
		if frontier == 0 {
			t.Errorf("%v: no frontier point among %d samples", key, len(samples))
		}
		for i, s := range samples {
			dominated := false
			for j, o := range samples {
				if i != j && dominates(o, s) {
					dominated = true
					break
				}
			}
			if s.pareto && dominated {
				t.Errorf("%v: marked sample %d (%v, %v) is dominated", key, i, s.lat, s.fj)
			}
			if !s.pareto && !dominated {
				t.Errorf("%v: unmarked sample %d (%v, %v) is undominated", key, i, s.lat, s.fj)
			}
		}
	}
}

func TestEnergySweepValidation(t *testing.T) {
	points, pats, sc, o := energySweepFixture(t)
	kinds := []topology.Kind{topology.Mesh}
	ctx := context.Background()
	if _, err := EnergySweep(ctx, nil, points, pats, sc, o, runner.Config{}); err == nil {
		t.Error("no kinds accepted")
	}
	if _, err := EnergySweep(ctx, kinds, nil, pats, sc, o, runner.Config{}); err == nil {
		t.Error("no points accepted")
	}
	if _, err := EnergySweep(ctx, kinds, points, nil, sc, o, runner.Config{}); err == nil {
		t.Error("no patterns accepted")
	}
	bad := sc
	bad.Rates = nil
	if _, err := EnergySweep(ctx, kinds, points, pats, bad, o, runner.Config{}); err == nil {
		t.Error("empty rate ladder accepted")
	}
	// Express points on a kind that rejects them must fail up front.
	if _, err := EnergySweep(ctx, []topology.Kind{topology.Torus}, points, pats, sc, o,
		runner.Config{}); err == nil {
		t.Error("torus + express accepted")
	}
}
