package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// EnergySweepConfig parameterizes a latency–energy sweep.
type EnergySweepConfig struct {
	// Rates is the ascending offered-load grid in flits/cycle.
	Rates []float64
	// Workload shapes the open-loop arrivals at each point.
	Workload noc.BernoulliWorkload
	// NoC configures the cycle-accurate simulator.
	NoC noc.Config
}

// DefaultEnergySweep mirrors DefaultPatternSweep: a rate ladder from well
// below to well beyond mesh saturation on the 8×8 cycle-accurate scale.
func DefaultEnergySweep() EnergySweepConfig {
	ps := DefaultPatternSweep()
	return EnergySweepConfig{Rates: ps.Rates, Workload: ps.Workload, NoC: ps.NoC}
}

// Validate checks the sweep parameters.
func (c EnergySweepConfig) Validate() error {
	return PatternSweepConfig{Rates: c.Rates, Workload: c.Workload, NoC: c.NoC}.Validate()
}

// EnergyPoint is one (offered rate) sample of a latency–energy curve.
type EnergyPoint struct {
	// Rate is the offered peak per-node injection rate in flits/cycle.
	Rate float64
	// Saturated marks rates whose run failed to drain within the cycle
	// cap; such points carry no energy accounting.
	Saturated bool
	// AvgLatencyClks and P99LatencyClks summarize packet latency.
	AvgLatencyClks, P99LatencyClks float64
	// Run is the measured energy accounting (internal/energy).
	Run energy.RunEnergy
	// CLEAR is the simulated eq. 2 evaluation at this rate.
	CLEAR energy.CLEAR
	// Pareto marks samples on the latency–energy frontier of their
	// (kind, pattern) scenario: no other non-saturated sample of any
	// competing design point offers both lower-or-equal latency and
	// lower-or-equal fJ/bit with one strictly lower.
	Pareto bool
}

// EnergySweepResult is one (topology kind, design point, pattern) cell of
// an energy sweep: the measured latency–energy curve over the rate ladder.
type EnergySweepResult struct {
	Kind    topology.Kind
	Point   DesignPoint
	Pattern string
	// StaticW and AreaM2 are the cell's network-level constants.
	StaticW, AreaM2 float64
	// Points holds one sample per swept rate, in rate order.
	Points []EnergyPoint
}

// PointLabel renders the design point for tables (see
// PatternSweepResult.PointLabel).
func (r EnergySweepResult) PointLabel() string {
	return PatternSweepResult{Kind: r.Kind, Point: r.Point}.PointLabel()
}

// EnergySweep runs the design-point × topology-kind × pattern × load
// matrix with the cycle-accurate simulator and the measured energy
// accounting: every (kind, point, pattern) cell walks the rate ladder
// serially (the pool already fans out across cells), recycling simulators
// through one batch-wide noc.SimPool, and prices each drained run with the
// cell's energy.Model. Results come back kind-major, point-middle,
// pattern-minor and are bit-identical for any worker count — each job is a
// pure function of its index over read-only inputs, the same determinism
// contract as Explore. After collection the latency–energy Pareto frontier
// of every (kind, pattern) scenario is marked across its competing design
// points. The first failure cancels the batch.
//
// Non-mesh kinds reject express design points at Build time; pass plain
// (Hops = 0) points for kind-portable sweeps, exactly as with ExploreKinds.
func EnergySweep(ctx context.Context, kinds []topology.Kind, points []DesignPoint,
	patterns []traffic.Pattern, sc EnergySweepConfig, o Options, pool runner.Config) ([]EnergySweepResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(kinds) == 0 || len(points) == 0 || len(patterns) == 0 {
		return nil, fmt.Errorf("core: energy sweep needs kinds, points and patterns")
	}
	// Networks, tables and energy models depend only on (kind, point):
	// resolve them once up front and share them read-only across the pool.
	type cellEnv struct {
		kind  topology.Kind
		point DesignPoint
		net   *topology.Network
		tab   *routing.Table
		model *energy.Model
	}
	envs := make([]cellEnv, 0, len(kinds)*len(points))
	for _, kind := range kinds {
		ko := o.WithKind(kind)
		for _, point := range points {
			net, tab, err := ko.NetworkAndTable(point)
			if err != nil {
				return nil, fmt.Errorf("core: %v %v: %w", kind, point, err)
			}
			model, err := energy.NewModel(net, o.DSENT)
			if err != nil {
				return nil, fmt.Errorf("core: %v %v: %w", kind, point, err)
			}
			envs = append(envs, cellEnv{kind: net.Config.Kind, point: point, net: net, tab: tab, model: model})
		}
	}
	sims := noc.NewSimPool()
	n := len(envs) * len(patterns)
	results, err := runner.Map(ctx, n, pool, func(ctx context.Context, i int) (EnergySweepResult, error) {
		env, pat := envs[i/len(patterns)], patterns[i%len(patterns)]
		point := env.point
		base, err := pat.Generate(env.net, 1)
		if err != nil {
			return EnergySweepResult{}, fmt.Errorf("core: %v %v / %s: %w", env.kind, point, pat.Name(), err)
		}
		if err := base.Validate(); err != nil {
			return EnergySweepResult{}, fmt.Errorf("core: %v %v / %s: %w", env.kind, point, pat.Name(), err)
		}
		res := EnergySweepResult{
			Kind:    env.kind,
			Point:   point,
			Pattern: pat.Name(),
			StaticW: env.model.StaticW(),
			AreaM2:  env.model.AreaM2(),
			Points:  make([]EnergyPoint, 0, len(sc.Rates)),
		}
		for _, rate := range sc.Rates {
			if err := ctx.Err(); err != nil {
				return EnergySweepResult{}, err
			}
			ep, err := energyPoint(env.net, env.tab, env.model, base, rate, sc, sims)
			if err != nil {
				return EnergySweepResult{}, fmt.Errorf("core: %v %v / %s @ %v: %w",
					env.kind, point, pat.Name(), rate, err)
			}
			res.Points = append(res.Points, ep)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	markParetoFrontiers(results)
	return results, nil
}

// energyPoint runs one offered-load sample and prices it. A run that fails
// to drain is flagged Saturated rather than failing the sweep.
func energyPoint(net *topology.Network, tab *routing.Table, model *energy.Model,
	base *traffic.Matrix, rate float64, sc EnergySweepConfig, sims *noc.SimPool) (EnergyPoint, error) {
	tm := base.ScaledToMaxRate(rate)
	pkts, err := sc.Workload.Generate(net, tm)
	if err != nil {
		return EnergyPoint{}, err
	}
	sim, err := sims.Get(net, tab, sc.NoC)
	if err != nil {
		return EnergyPoint{}, err
	}
	if err := sim.InjectAll(pkts); err != nil {
		return EnergyPoint{}, err
	}
	st, err := sim.Run()
	sims.Put(sim)
	ep := EnergyPoint{Rate: rate}
	if err != nil {
		if !errors.Is(err, noc.ErrSaturated) {
			return EnergyPoint{}, err
		}
		ep.Saturated = true
		return ep, nil
	}
	ep.AvgLatencyClks = st.AvgPacketLatencyClks
	ep.P99LatencyClks = st.P99PacketLatencyClks
	if ep.Run, err = model.Price(st); err != nil {
		return EnergyPoint{}, err
	}
	if ep.CLEAR, err = model.SimulatedCLEAR(st, rate); err != nil {
		return EnergyPoint{}, err
	}
	return ep, nil
}

// markParetoFrontiers marks, for every (kind, pattern) scenario, the
// samples on the latency–energy Pareto frontier across all competing
// design points and rates. Dominance is (AvgLatencyClks, FJPerBit):
// a sample is dominated when another non-saturated sample is ≤ on both
// axes and < on at least one, so duplicated optima all stay marked. The
// pass is a deterministic function of the collected results.
func markParetoFrontiers(results []EnergySweepResult) {
	type scenario struct {
		kind    topology.Kind
		pattern string
	}
	byScenario := map[scenario][][2]int{} // (result index, point index)
	for ri := range results {
		key := scenario{results[ri].Kind, results[ri].Pattern}
		for pi := range results[ri].Points {
			p := &results[ri].Points[pi]
			if !p.Saturated && p.Run.FJPerBit > 0 {
				byScenario[key] = append(byScenario[key], [2]int{ri, pi})
			}
		}
	}
	for _, members := range byScenario {
		for _, m := range members {
			a := &results[m[0]].Points[m[1]]
			dominated := false
			for _, o := range members {
				b := &results[o[0]].Points[o[1]]
				if b.AvgLatencyClks <= a.AvgLatencyClks && b.Run.FJPerBit <= a.Run.FJPerBit &&
					(b.AvgLatencyClks < a.AvgLatencyClks || b.Run.FJPerBit < a.Run.FJPerBit) {
					dominated = true
					break
				}
			}
			a.Pareto = !dominated
		}
	}
}
