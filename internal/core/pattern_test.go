package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/traffic"
)

// sweepFixture is a deliberately tiny sweep (4×4 grid, three patterns,
// three rates, short horizon) so the determinism test can run under
// -race in short mode.
func sweepFixture(t *testing.T) ([]DesignPoint, []traffic.Pattern, PatternSweepConfig, Options) {
	t.Helper()
	pats, err := traffic.ParsePatterns("uniform,tornado,bitcomp")
	if err != nil {
		t.Fatal(err)
	}
	points := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	sc := PatternSweepConfig{
		Rates:    []float64{0.05, 0.2, 0.5},
		Workload: noc.BernoulliWorkload{SizeFlits: 1, Cycles: 400, Seed: 5},
		NoC:      noc.DefaultConfig(),
	}
	sc.NoC.MaxCycles = 20000
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4
	return points, pats, sc, o
}

func TestPatternSweepShape(t *testing.T) {
	points, pats, sc, o := sweepFixture(t)
	results, err := PatternSweep(context.Background(), points, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(points)*len(pats) {
		t.Fatalf("%d results, want %d", len(results), len(points)*len(pats))
	}
	for i, r := range results {
		wantPoint, wantPat := points[i/len(pats)], pats[i%len(pats)]
		if r.Point != wantPoint || r.Pattern != wantPat.Name() {
			t.Errorf("result %d is %v/%s, want %v/%s",
				i, r.Point, r.Pattern, wantPoint, wantPat.Name())
		}
		if len(r.Curve) != len(sc.Rates) {
			t.Fatalf("result %d has %d curve points, want %d", i, len(r.Curve), len(sc.Rates))
		}
		rate, atFloor, ok := noc.DetectSaturation(r.Curve)
		if rate != r.SaturationRate || atFloor != r.AtFloor || ok != r.Saturates {
			t.Errorf("result %d knee (%v,%v,%v) disagrees with DetectSaturation (%v,%v,%v)",
				i, r.SaturationRate, r.AtFloor, r.Saturates, rate, atFloor, ok)
		}
		if r.ZeroLoadLatencyClks() <= 0 && !r.Curve[0].Saturated {
			t.Errorf("result %d zero-load latency %v", i, r.ZeroLoadLatencyClks())
		}
	}
}

// TestPatternSweepSerialParallelIdentical enforces the repository's
// determinism contract on the pattern×point saturation sweep: output is
// bit-identical for Workers 1 and Workers N (run under -race by make
// race).
func TestPatternSweepSerialParallelIdentical(t *testing.T) {
	points, pats, sc, o := sweepFixture(t)
	serial, err := PatternSweep(context.Background(), points, pats, sc, o,
		runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PatternSweep(context.Background(), points, pats, sc, o,
		runner.Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel pattern sweeps diverge")
	}
}

func TestPatternSweepValidation(t *testing.T) {
	points, pats, sc, o := sweepFixture(t)
	ctx := context.Background()
	if _, err := PatternSweep(ctx, points, nil, sc, o, runner.Config{}); err == nil {
		t.Error("empty pattern list must fail")
	}
	bad := sc
	bad.Rates = nil
	if _, err := PatternSweep(ctx, points, pats, bad, o, runner.Config{}); err == nil {
		t.Error("empty rate grid must fail")
	}
	bad = sc
	bad.Rates = []float64{0.2, 0.1}
	if _, err := PatternSweep(ctx, points, pats, bad, o, runner.Config{}); err == nil {
		t.Error("non-ascending rates must fail")
	}
	// A pattern precondition failure is reported with the design point
	// and pattern name.
	bitrev, err := traffic.Lookup("bitrev")
	if err != nil {
		t.Fatal(err)
	}
	o.Topology.Width, o.Topology.Height = 3, 3
	if _, err := PatternSweep(ctx, points, []traffic.Pattern{bitrev}, sc, o,
		runner.Config{}); err == nil {
		t.Error("bitrev on a 9-node grid must fail")
	}
}

// TestPatternSweepExpressHelps: on tornado traffic the HyPPI express
// hybrid must not saturate earlier than the plain mesh — the structural
// claim the pattern subsystem exists to probe.
func TestPatternSweepExpressHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("8×8 tornado sweep runs in full mode")
	}
	pats, err := traffic.ParsePatterns("tornado")
	if err != nil {
		t.Fatal(err)
	}
	points := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	sc := DefaultPatternSweep()
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	results, err := PatternSweep(context.Background(), points, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mesh, hybrid := results[0], results[1]
	meshSat, hybridSat := mesh.SaturationRate, hybrid.SaturationRate
	if !mesh.Saturates {
		meshSat = sc.Rates[len(sc.Rates)-1] + 1
	}
	if !hybrid.Saturates {
		hybridSat = sc.Rates[len(sc.Rates)-1] + 1
	}
	if hybridSat < meshSat {
		t.Errorf("hybrid saturates at %v before mesh at %v under tornado", hybridSat, meshSat)
	}
}
