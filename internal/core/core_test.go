package core

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/tech"
	"repro/internal/units"
)

func TestDefaultDesignSpace(t *testing.T) {
	pts := DefaultDesignSpace()
	// 3 bases × (1 plain + 3 express techs × 3 hop lengths) = 30.
	if len(pts) != 30 {
		t.Fatalf("design space has %d points, want 30", len(pts))
	}
	seen := map[DesignPoint]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Errorf("duplicate point %v", p)
		}
		seen[p] = true
	}
}

func TestExploreHeadline(t *testing.T) {
	o := DefaultOptions()
	pts := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	res, err := Explore(pts, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	ratio := res[1].CLEAR / res[0].CLEAR
	if !units.WithinFactor(ratio, 1.8, 1.35) {
		t.Errorf("headline CLEAR ratio %v, want ≈1.8", ratio)
	}
	ratios := CLEARRatioVsPlain(res)
	if !units.ApproxEqual(ratios[pts[0]], 1, 1e-12) {
		t.Errorf("plain mesh ratio %v, want 1", ratios[pts[0]])
	}
	if !units.ApproxEqual(ratios[pts[1]], ratio, 1e-9) {
		t.Errorf("express ratio %v, want %v", ratios[pts[1]], ratio)
	}
}

func TestLinkSweepRuns(t *testing.T) {
	pts, err := LinkSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 51 {
		t.Fatalf("sweep has %d points", len(pts))
	}
}

// TestTraceExperimentSmall runs a down-scaled LU trace end to end through
// generation → packetization → simulation → DSENT pricing.
func TestTraceExperimentSmall(t *testing.T) {
	o := DefaultOptions()
	k := npb.DefaultConfig(npb.LU)
	k.Iterations = 2
	plain := DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}
	res, err := RunTraceExperiment(k, plain, o, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatencyClks <= 0 {
		t.Error("latency must be positive")
	}
	if res.DynamicEnergyJ <= 0 {
		t.Error("dynamic energy must be positive")
	}
	if !units.WithinFactor(res.StaticPowerW, 1.53, 1.03) {
		t.Errorf("plain mesh static %v W, want ≈1.53", res.StaticPowerW)
	}
	// LU is 1-hop traffic: zero-load latency 7 clks + serialization; the
	// average must be near the zero-load value for paced traces.
	if res.AvgLatencyClks > 100 {
		t.Errorf("LU latency %v suspiciously high", res.AvgLatencyClks)
	}
	if res.Stats.PacketsEjected != res.Stats.PacketsInjected {
		t.Error("trace did not drain")
	}
}

// TestTableVShape: on a reduced FT trace, HyPPI express dynamic energy is
// far below photonic and comparable to the plain mesh (Table V).
func TestTableVShape(t *testing.T) {
	o := DefaultOptions()
	k := npb.DefaultConfig(npb.FT)
	k.Iterations = 1
	k.Scale = 1.0 / 64
	if testing.Short() {
		// The Table V orderings already hold on a 12×12 system with
		// single-flit messages: ~3× fewer all-to-all packets than the
		// paper's 16×16 and 4× fewer flits per packet.
		o.Topology.Width, o.Topology.Height = 12, 12
		k.GridW, k.GridH = 12, 12
		k.Scale = 1.0 / 256
	}
	run := func(p DesignPoint) TraceResult {
		t.Helper()
		res, err := RunTraceExperiment(k, p, o, noc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0})
	hyppi := run(DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3})
	photonic := run(DesignPoint{Base: tech.Electronic, Express: tech.Photonic, Hops: 3})
	elec := run(DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 3})

	if photonic.DynamicEnergyJ < 3*hyppi.DynamicEnergyJ {
		t.Errorf("photonic express energy %v should dwarf HyPPI %v",
			photonic.DynamicEnergyJ, hyppi.DynamicEnergyJ)
	}
	if !units.WithinFactor(hyppi.DynamicEnergyJ, elec.DynamicEnergyJ, 1.5) {
		t.Errorf("HyPPI express energy %v should be comparable to electronic express %v",
			hyppi.DynamicEnergyJ, elec.DynamicEnergyJ)
	}
	if hyppi.DynamicEnergyJ < plain.DynamicEnergyJ*0.5 {
		t.Errorf("express energy %v implausibly below plain mesh %v",
			hyppi.DynamicEnergyJ, plain.DynamicEnergyJ)
	}
	// Latencies improve (FT is all-to-all).
	if hyppi.AvgLatencyClks >= plain.AvgLatencyClks {
		t.Errorf("FT express latency %v should beat plain %v",
			hyppi.AvgLatencyClks, plain.AvgLatencyClks)
	}
	// Photonic and HyPPI express have identical latency (same 2-clk links).
	if photonic.AvgLatencyClks != hyppi.AvgLatencyClks {
		t.Errorf("optical express latencies must match: %v vs %v",
			photonic.AvgLatencyClks, hyppi.AvgLatencyClks)
	}
}

func TestAllOpticalRadarOrdering(t *testing.T) {
	radar, err := AllOpticalRadar(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if radar.HyPPI.AreaM2 >= radar.Electronic.AreaM2 ||
		radar.Electronic.AreaM2 >= radar.Photonic.AreaM2 {
		t.Errorf("area ordering HyPPI < Electronic < Photonic broken: %v / %v / %v",
			radar.HyPPI.AreaM2, radar.Electronic.AreaM2, radar.Photonic.AreaM2)
	}
	if radar.HyPPI.EnergyPerBitJ >= radar.Electronic.EnergyPerBitJ {
		t.Error("all-HyPPI must be more energy efficient than electronic")
	}
	if radar.HyPPI.LatencyClks >= radar.Electronic.LatencyClks {
		t.Error("all-optical latency must be below electronic")
	}
}

func TestDesignPointString(t *testing.T) {
	p := DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	if p.String() != "Electronic mesh + HyPPI express@3" {
		t.Errorf("String() = %q", p.String())
	}
	plain := DesignPoint{Base: tech.HyPPI, Express: tech.HyPPI, Hops: 0}
	if plain.String() != "HyPPI mesh" {
		t.Errorf("String() = %q", plain.String())
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatPower(1.53); got != "1.53 W" {
		t.Errorf("FormatPower = %q", got)
	}
	if got := FormatEnergy(4.2e-3); got != "4.2 mJ" {
		t.Errorf("FormatEnergy = %q", got)
	}
	if got := FormatArea(22.1e-6); got != "22.1 mm²" {
		t.Errorf("FormatArea = %q", got)
	}
}

func TestExploreRejectsBadPoint(t *testing.T) {
	o := DefaultOptions()
	if _, err := Explore([]DesignPoint{{Base: tech.Electronic, Express: tech.Electronic, Hops: 99}}, o); err == nil {
		t.Error("invalid hop length must fail")
	}
}
