package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TelemetrySweepConfig parameterizes an instrumented sweep: every
// (design point, pattern) cell runs once at Rate with a telemetry
// collector attached — sampled packet tracing plus the windowed probe
// census — instead of walking a rate ladder.
type TelemetrySweepConfig struct {
	// Rate is the offered peak per-node injection rate in flits/cycle.
	Rate float64
	// Workload shapes the open-loop arrivals (exactly the pattern sweep's
	// generator, so a telemetry run reproduces the sweep point it
	// explains).
	Workload noc.BernoulliWorkload
	// NoC configures the cycle-accurate simulator.
	NoC noc.Config
	// Telemetry configures each cell's collector. Its Seed is the sweep
	// base: cell i samples with runner.Seed(Seed, i), so the traced set
	// is a pure function of (base seed, cell index, packet index) and the
	// sweep is bit-identical for any worker count.
	Telemetry telemetry.Config
}

// DefaultTelemetrySweep instruments the pattern sweep's mid-load point:
// 5% packet sampling and a 200-cycle probe window on the 8×8 workload.
func DefaultTelemetrySweep() TelemetrySweepConfig {
	ps := DefaultPatternSweep()
	return TelemetrySweepConfig{
		Rate:     0.1,
		Workload: ps.Workload,
		NoC:      ps.NoC,
		Telemetry: telemetry.Config{
			SampleRate:      0.05,
			Seed:            101,
			ProbeWindowClks: 200,
		},
	}
}

// Validate checks the sweep parameters.
func (c TelemetrySweepConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("core: telemetry sweep rate %v must be positive", c.Rate)
	}
	return c.Telemetry.Validate()
}

// TelemetryResult is one instrumented (kind, design point, pattern) cell.
type TelemetryResult struct {
	// Kind is the topology family the cell ran on.
	Kind    topology.Kind
	Point   DesignPoint
	Pattern string
	// Rate is the offered load the cell ran at.
	Rate float64
	// Saturated marks a cell that failed to drain within the cycle cap;
	// its Stats, Trace and Probes cover the run up to the cap.
	Saturated bool
	// Stats is the run's full kernel census — bit-identical to the same
	// run without telemetry attached (the observer is passive).
	Stats noc.Stats
	// Trace holds the sampled packet spans; Probes the windowed series
	// (nil when the probe window is 0).
	Trace  *telemetry.Trace
	Probes *telemetry.Probes
}

// Label names the cell for trace exports and tables.
func (r TelemetryResult) Label() string {
	label := PatternSweepResult{Kind: r.Kind, Point: r.Point}.PointLabel()
	return fmt.Sprintf("%s / %s @ %.3g", label, r.Pattern, r.Rate)
}

// TelemetrySweep runs the design-point × pattern matrix once at the
// configured load with a telemetry collector attached to every cell. Cells
// run concurrently on the worker pool under the repository's determinism
// contract: each cell's collector seeds from runner.Seed(sc.Telemetry.Seed,
// cellIndex), packets sample by (cell seed, packet index) alone, and
// results are collected in (point-major, pattern-minor) order — so traces
// and probes are bit-identical for any worker count. A saturated cell is
// reported with its partial telemetry rather than failing the sweep, and
// the attached collector never perturbs the simulation: each cell's Stats
// match an uninstrumented run bit for bit
// (TestTelemetryObserverOffBitIdentical).
func TelemetrySweep(ctx context.Context, points []DesignPoint, patterns []traffic.Pattern,
	sc TelemetrySweepConfig, o Options, pool runner.Config) ([]TelemetryResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 || len(patterns) == 0 {
		return nil, fmt.Errorf("core: telemetry sweep needs points and patterns")
	}
	nets := make([]*topology.Network, len(points))
	tabs := make([]*routing.Table, len(points))
	for i, point := range points {
		net, tab, err := o.NetworkAndTable(point)
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", point, err)
		}
		nets[i], tabs[i] = net, tab
	}
	bases := make([]*traffic.Matrix, len(points)*len(patterns))
	for pi := range points {
		for qi, p := range patterns {
			m, err := p.Generate(nets[pi], 1)
			if err != nil {
				return nil, fmt.Errorf("core: pattern %s: %w", p.Name(), err)
			}
			bases[pi*len(patterns)+qi] = m
		}
	}
	sims := noc.NewSimPool()
	n := len(points) * len(patterns)
	return runner.Map(ctx, n, pool, func(_ context.Context, i int) (TelemetryResult, error) {
		pi, qi := i/len(patterns), i%len(patterns)
		point, net, tab := points[pi], nets[pi], tabs[pi]
		res := TelemetryResult{
			Kind:    net.Config.Kind,
			Point:   point,
			Pattern: patterns[qi].Name(),
			Rate:    sc.Rate,
		}
		tm := bases[i].ScaledToMaxRate(sc.Rate)
		pkts, err := sc.Workload.Generate(net, tm)
		if err != nil {
			return TelemetryResult{}, fmt.Errorf("core: %s: %w", res.Label(), err)
		}
		tcfg := sc.Telemetry
		tcfg.Seed = runner.Seed(sc.Telemetry.Seed, i)
		col, err := telemetry.New(tcfg, net)
		if err != nil {
			return TelemetryResult{}, fmt.Errorf("core: %s: %w", res.Label(), err)
		}
		sim, err := sims.Get(net, tab, sc.NoC)
		if err != nil {
			return TelemetryResult{}, err
		}
		if err := sim.InjectAll(pkts); err != nil {
			return TelemetryResult{}, err
		}
		sim.SetObserver(col)
		st, err := sim.Run()
		sims.Put(sim)
		if err != nil {
			if !errors.Is(err, noc.ErrSaturated) {
				return TelemetryResult{}, fmt.Errorf("core: %s: %w", res.Label(), err)
			}
			res.Saturated = true
		}
		col.Finish(st.Cycles)
		res.Stats = st
		res.Trace = col.Trace()
		res.Probes = col.Probes()
		return res, nil
	})
}

// ChromeProcesses adapts telemetry results for telemetry.WriteChromeTrace:
// one labeled Perfetto process per cell, in sweep order.
func ChromeProcesses(results []TelemetryResult) []telemetry.ProcessTrace {
	procs := make([]telemetry.ProcessTrace, len(results))
	for i, r := range results {
		procs[i] = telemetry.ProcessTrace{Name: r.Label(), Trace: r.Trace}
	}
	return procs
}
