package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/taskgraph"
	"repro/internal/tech"
	"repro/internal/topology"
)

// taskGraphFixture is a small closed-loop sweep (4×4 grid, three graphs,
// two points) sized to run under -race in short mode.
func taskGraphFixture(t *testing.T) ([]DesignPoint, []taskgraph.Generator, TaskGraphSweepConfig, Options) {
	t.Helper()
	gens, err := taskgraph.ParseGenerators("reduce,ring-allreduce,pipeline")
	if err != nil {
		t.Fatal(err)
	}
	points := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	sc := DefaultTaskGraphSweep()
	sc.Gen = taskgraph.GenConfig{SizeFlits: 8, ComputeClks: 8, Microbatches: 3}
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4
	return points, gens, sc, o
}

func TestTaskGraphSweepShape(t *testing.T) {
	points, gens, sc, o := taskGraphFixture(t)
	results, err := TaskGraphSweep(context.Background(), points, gens, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(points)*len(gens) {
		t.Fatalf("%d results, want %d", len(results), len(points)*len(gens))
	}
	for i, r := range results {
		wantPoint, wantGen := points[i/len(gens)], gens[i%len(gens)]
		if r.Point != wantPoint || r.Graph != wantGen.Name() {
			t.Errorf("result %d is %v/%s, want %v/%s", i, r.Point, r.Graph, wantPoint, wantGen.Name())
		}
		if r.Messages <= 0 || r.TotalFlits <= 0 {
			t.Errorf("%s: empty graph in result (%d messages, %d flits)", r.Graph, r.Messages, r.TotalFlits)
		}
		if r.MakespanClks <= 0 || r.LowerBoundClks <= 0 {
			t.Errorf("%s @ %v: makespan %d / bound %d, want both > 0",
				r.Graph, r.Point, r.MakespanClks, r.LowerBoundClks)
		}
		if r.MakespanClks < r.LowerBoundClks {
			t.Errorf("%s @ %v: makespan %d below the contention-free bound %d",
				r.Graph, r.Point, r.MakespanClks, r.LowerBoundClks)
		}
		if r.Stretch < 1 {
			t.Errorf("%s @ %v: stretch %v < 1", r.Graph, r.Point, r.Stretch)
		}
	}
}

// TestTaskGraphSweepSerialParallelIdentical enforces the repository's
// determinism contract on the closed-loop task-graph sweep: output is
// bit-identical for Workers 1 and Workers N (run under -race by make
// race). Dependency releases are simulation events, not wall-clock ones,
// so worker interleaving cannot reach them.
func TestTaskGraphSweepSerialParallelIdentical(t *testing.T) {
	points, gens, sc, o := taskGraphFixture(t)
	serial, err := TaskGraphSweep(context.Background(), points, gens, sc, o,
		runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TaskGraphSweep(context.Background(), points, gens, sc, o,
		runner.Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel task-graph sweeps diverge")
	}
}

func TestTopologyTaskGraphSweep(t *testing.T) {
	_, gens, sc, o := taskGraphFixture(t)
	kinds := []topology.Kind{topology.Mesh, topology.Torus}
	serial, err := TopologyTaskGraphSweep(context.Background(), kinds, gens, sc, o,
		runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(kinds)*len(gens) {
		t.Fatalf("%d results, want %d", len(serial), len(kinds)*len(gens))
	}
	for i, r := range serial {
		if want := kinds[i/len(gens)]; r.Kind != want {
			t.Errorf("result %d kind %v, want %v", i, r.Kind, want)
		}
		if r.MakespanClks < r.LowerBoundClks {
			t.Errorf("%v/%s: makespan %d below bound %d", r.Kind, r.Graph, r.MakespanClks, r.LowerBoundClks)
		}
	}
	parallel, err := TopologyTaskGraphSweep(context.Background(), kinds, gens, sc, o,
		runner.Config{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel topology task-graph sweeps diverge")
	}
}

// TestTaskGraphCongestionFeedback pins the acceptance criterion for
// closed-loop injection: an uncongested serial schedule (single-microbatch
// pipeline — one message in flight at any time) completes exactly at the
// contention-free critical path, while an all-pairs MoE exchange on the
// plain electronic mesh is stretched measurably past its bound by the
// congestion its own schedule creates.
func TestTaskGraphCongestionFeedback(t *testing.T) {
	sc := DefaultTaskGraphSweep()
	sc.Gen = taskgraph.GenConfig{SizeFlits: 16, ComputeClks: 10, Microbatches: 1}
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	electronic := []DesignPoint{{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}}

	pipe, err := taskgraph.ParseGenerators("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	moe, err := taskgraph.ParseGenerators("moe-alltoall")
	if err != nil {
		t.Fatal(err)
	}

	serial, err := TaskGraphSweep(context.Background(), electronic, pipe, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r := serial[0]; r.MakespanClks != r.LowerBoundClks {
		t.Errorf("uncongested pipeline: makespan %d != contention-free bound %d (stretch %v)",
			r.MakespanClks, r.LowerBoundClks, r.Stretch)
	}

	congested, err := TaskGraphSweep(context.Background(), electronic, moe, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r := congested[0]; r.Stretch < 1.2 {
		t.Errorf("moe-alltoall on the electronic mesh: stretch %v (makespan %d, bound %d) — expected clear congestion feedback",
			r.Stretch, r.MakespanClks, r.LowerBoundClks)
	}
}

// TestTaskGraphSmoke is the make taskgraph-smoke gate: the allreduce and
// MoE operator graphs on the paper's 8×8 electronic+HyPPI hybrid must
// complete, beat their contention-free bounds' ordering invariants, and
// stay inside a CI-container wall budget.
func TestTaskGraphSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("taskgraph smoke skipped in -short mode")
	}
	gens, err := taskgraph.ParseGenerators("ring-allreduce,tree-allreduce,moe-alltoall")
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	sc := DefaultTaskGraphSweep()
	points := []DesignPoint{{Base: tech.Electronic, Express: tech.HyPPI, Hops: 5}}

	start := time.Now()
	results, err := TaskGraphSweep(t.Context(), points, gens, sc, o, runner.Config{Workers: 1})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	const wallBudget = 120 * time.Second
	if elapsed > wallBudget {
		t.Errorf("taskgraph smoke took %v, budget %v", elapsed, wallBudget)
	}
	for _, r := range results {
		if r.MakespanClks < r.LowerBoundClks || r.Stretch < 1 {
			t.Errorf("%s: makespan %d under bound %d", r.Graph, r.MakespanClks, r.LowerBoundClks)
		}
		t.Logf("%s @ %s: makespan %d clks (bound %d, stretch %.2f, %d messages) in %v",
			r.Graph, r.PointLabel(), r.MakespanClks, r.LowerBoundClks, r.Stretch, r.Messages, elapsed)
	}
}

// TestTaskGraphSweepValidation: structural misuse fails loudly.
func TestTaskGraphSweepValidation(t *testing.T) {
	points, gens, sc, o := taskGraphFixture(t)
	ctx := context.Background()
	if _, err := TaskGraphSweep(ctx, points, nil, sc, o, runner.Config{}); err == nil {
		t.Error("sweep with no graphs succeeded")
	}
	bad := sc
	bad.Gen.SizeFlits = 0
	if _, err := TaskGraphSweep(ctx, points, gens, bad, o, runner.Config{}); err == nil {
		t.Error("sweep with invalid GenConfig succeeded")
	}
	if _, err := TopologyTaskGraphSweep(ctx, nil, gens, sc, o, runner.Config{}); err == nil {
		t.Error("topology sweep with no kinds succeeded")
	}
}
