package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// telemetryFixture is a small instrumented sweep (4×4, two points, two
// patterns) sized to run under -race in short mode.
func telemetryFixture(t *testing.T) ([]DesignPoint, []traffic.Pattern, TelemetrySweepConfig, Options) {
	t.Helper()
	pats, err := traffic.ParsePatterns("uniform,tornado")
	if err != nil {
		t.Fatal(err)
	}
	points := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	sc := TelemetrySweepConfig{
		Rate:     0.1,
		Workload: noc.BernoulliWorkload{SizeFlits: 1, Cycles: 400, Seed: 5},
		NoC:      noc.DefaultConfig(),
		Telemetry: telemetry.Config{
			SampleRate:      0.2,
			Seed:            31,
			ProbeWindowClks: 50,
		},
	}
	sc.NoC.MaxCycles = 20000
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4
	return points, pats, sc, o
}

// telemetryKey flattens a result for bit-identity comparison: stats, the
// full span set, and every retained probe window.
func telemetryKey(t *testing.T, rs []TelemetryResult) []any {
	t.Helper()
	var key []any
	for _, r := range rs {
		key = append(key, r.Kind, r.Point, r.Pattern, r.Saturated, r.Stats,
			*r.Trace)
		p := r.Probes
		key = append(key, p.TotalWindows(), p.Evicted())
		for i := 0; i < p.Windows(); i++ {
			w := p.Window(i)
			key = append(key, w.Index(), w.InjectedFlits(), w.EjectedFlits())
			for l := 0; l < p.NumLinks(); l++ {
				key = append(key, w.LinkFlits(l))
			}
			for rr := 0; rr < p.NumRouters(); rr++ {
				key = append(key, w.Occupancy(rr))
			}
		}
	}
	return key
}

// TestTelemetrySweepSerialParallelIdentical enforces the determinism
// contract on the instrumented sweep: traces and probes are bit-identical
// for any worker count (runs under -race via make race).
func TestTelemetrySweepSerialParallelIdentical(t *testing.T) {
	points, pats, sc, o := telemetryFixture(t)
	serial, err := TelemetrySweep(context.Background(), points, pats, sc, o,
		runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TelemetrySweep(context.Background(), points, pats, sc, o,
		runner.Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(telemetryKey(t, serial), telemetryKey(t, parallel)) {
		t.Fatal("telemetry sweep differs between 1 and 6 workers")
	}
}

// TestTelemetryObserverOffBitIdentical: every cell's Stats must match the
// same run with no collector attached — telemetry costs nothing the
// kernel can measure.
func TestTelemetryObserverOffBitIdentical(t *testing.T) {
	points, pats, sc, o := telemetryFixture(t)
	instrumented, err := TelemetrySweep(context.Background(), points, pats, sc, o,
		runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The uninstrumented twin: the identical per-cell workload run on a
	// fresh sim with no observer attached.
	for i, res := range instrumented {
		pi, qi := i/len(pats), i%len(pats)
		net, tab, err := o.NetworkAndTable(points[pi])
		if err != nil {
			t.Fatal(err)
		}
		base, err := pats[qi].Generate(net, 1)
		if err != nil {
			t.Fatal(err)
		}
		pkts, err := sc.Workload.Generate(net, base.ScaledToMaxRate(sc.Rate))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := noc.New(net, tab, sc.NoC)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.InjectAll(pkts); err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Stats, st) {
			t.Errorf("cell %s: instrumented stats differ from plain run",
				res.Label())
		}
	}
}

// TestTelemetrySmoke is the make telemetry-smoke CI gate: a traced 16×16
// sweep whose Chrome trace export must parse as trace-event JSON and whose
// probe series must obey the window math exactly.
func TestTelemetrySmoke(t *testing.T) {
	pats, err := traffic.ParsePatterns("uniform,tornado")
	if err != nil {
		t.Fatal(err)
	}
	points := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	sc := DefaultTelemetrySweep()
	sc.Workload.Cycles = 2000
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 16, 16
	results, err := TelemetrySweep(context.Background(), points, pats, sc, o,
		runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(points)*len(pats) {
		t.Fatalf("%d results, want %d", len(results), len(points)*len(pats))
	}

	// The trace export parses as Chrome trace-event JSON with one process
	// per cell and at least one sampled span somewhere in the sweep.
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, ChromeProcesses(results)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID *int   `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		if e.PID == nil {
			t.Fatal("trace event missing pid")
		}
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
		}
	}
	if meta != len(results) {
		t.Errorf("process_name events %d, want %d", meta, len(results))
	}
	if complete == 0 {
		t.Error("no sampled spans anywhere in the sweep")
	}

	// Probe CSV row counts match the window math: Stats.Cycles/W + 1
	// closed windows per cell (no evictions at this horizon).
	for _, r := range results {
		if r.Saturated {
			t.Errorf("cell %s saturated at smoke load", r.Label())
			continue
		}
		p := r.Probes
		want := r.Stats.Cycles/p.WindowClks() + 1
		if got := p.TotalWindows(); got != want {
			t.Errorf("cell %s: %d windows, want Cycles/W+1 = %d (Cycles=%d)",
				r.Label(), got, want, r.Stats.Cycles)
		}
		if p.Evicted() != 0 {
			t.Errorf("cell %s: %d windows evicted at smoke horizon", r.Label(), p.Evicted())
		}
		if r.Trace.TotalPackets != r.Stats.PacketsInjected {
			t.Errorf("cell %s: trace saw %d packets, kernel injected %d",
				r.Label(), r.Trace.TotalPackets, r.Stats.PacketsInjected)
		}
	}
}
