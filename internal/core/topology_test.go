package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// kindSweepFixture is the cross-topology analog of sweepFixture: every
// registered kind on a 4×4 grid (the smallest the torus floor admits),
// two patterns, short horizon — fast enough for -race in short mode.
func kindSweepFixture(t *testing.T) ([]topology.Kind, []traffic.Pattern, PatternSweepConfig, Options) {
	t.Helper()
	pats, err := traffic.ParsePatterns("uniform,tornado")
	if err != nil {
		t.Fatal(err)
	}
	sc := PatternSweepConfig{
		Rates:    []float64{0.05, 0.2, 0.5},
		Workload: noc.BernoulliWorkload{SizeFlits: 1, Cycles: 400, Seed: 5},
		NoC:      noc.DefaultConfig(),
	}
	sc.NoC.MaxCycles = 20000
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4
	return topology.Kinds(), pats, sc, o
}

// TestTopologyPatternSweepShape drives every registered kind end-to-end
// through the cycle-accurate simulator: the full kind × pattern × load
// matrix must come back in kind-major order with live curves.
func TestTopologyPatternSweepShape(t *testing.T) {
	kinds, pats, sc, o := kindSweepFixture(t)
	results, err := TopologyPatternSweep(context.Background(), kinds, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(kinds)*len(pats) {
		t.Fatalf("%d results, want %d", len(results), len(kinds)*len(pats))
	}
	for i, r := range results {
		wantKind, wantPat := kinds[i/len(pats)], pats[i%len(pats)]
		if r.Kind != wantKind || r.Pattern != wantPat.Name() {
			t.Errorf("result %d is %v/%s, want %v/%s", i, r.Kind, r.Pattern, wantKind, wantPat.Name())
		}
		if r.Point.Hops != 0 {
			t.Errorf("result %d uses express point %v; kind sweeps are plain", i, r.Point)
		}
		if len(r.Curve) != len(sc.Rates) {
			t.Fatalf("result %d has %d curve points, want %d", i, len(r.Curve), len(sc.Rates))
		}
		if r.ZeroLoadLatencyClks() <= 0 && !r.Curve[0].Saturated {
			t.Errorf("result %d (%v/%s): zero-load latency %v", i, r.Kind, r.Pattern, r.ZeroLoadLatencyClks())
		}
	}
}

// TestTopologyPatternSweepSerialParallelIdentical extends the determinism
// contract (CHANGES.md, CONCURRENCY) to topology sweeps: the kind × pattern
// matrix is bit-identical for any worker count. Run under -race by make
// race.
func TestTopologyPatternSweepSerialParallelIdentical(t *testing.T) {
	kinds, pats, sc, o := kindSweepFixture(t)
	serial, err := TopologyPatternSweep(context.Background(), kinds, pats, sc, o,
		runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TopologyPatternSweep(context.Background(), kinds, pats, sc, o,
		runner.Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel topology sweeps diverge")
	}
}

func TestTopologyPatternSweepValidation(t *testing.T) {
	kinds, pats, sc, o := kindSweepFixture(t)
	ctx := context.Background()
	if _, err := TopologyPatternSweep(ctx, nil, pats, sc, o, runner.Config{}); err == nil {
		t.Error("empty kind list must fail")
	}
	if _, err := TopologyPatternSweep(ctx, kinds, nil, sc, o, runner.Config{}); err == nil {
		t.Error("empty pattern list must fail")
	}
	// A kind that rejects the grid is reported by name before any
	// simulation runs.
	bad := o
	bad.Topology.Width, bad.Topology.Height = 4, 2
	if _, err := TopologyPatternSweep(ctx, []topology.Kind{topology.Torus}, pats, sc, bad,
		runner.Config{}); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("torus on 4x2 should fail by name, got %v", err)
	}
}

// TestExploreKindsShape checks the analytic cross-topology matrix: kinds ×
// plain design points, kind-major, with per-kind structural figures.
func TestExploreKindsShape(t *testing.T) {
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	kinds := topology.Kinds()
	points := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.HyPPI, Express: tech.HyPPI, Hops: 0},
	}
	results, err := ExploreKinds(context.Background(), kinds, points, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(kinds)*len(points) {
		t.Fatalf("%d results, want %d", len(results), len(kinds)*len(points))
	}
	byKind := map[topology.Kind]KindExploration{}
	for i, r := range results {
		if want := kinds[i/len(points)]; r.Kind != want {
			t.Errorf("result %d kind %v, want %v", i, r.Kind, want)
		}
		if r.CLEAR <= 0 || r.AvgLatencyClks <= 0 || r.NumNodes != 64 {
			t.Errorf("result %d degenerate: %+v", i, r)
		}
		if r.Point.Base == tech.Electronic {
			byKind[r.Kind] = r
		}
	}
	// Structural cross-checks: fbfly has the most channels and the widest
	// routers; torus beats mesh on both channels and mean latency.
	if !(byKind[topology.FBFly].Channels > byKind[topology.Torus].Channels &&
		byKind[topology.Torus].Channels > byKind[topology.Mesh].Channels) {
		t.Errorf("channel ordering violated: %+v", byKind)
	}
	if byKind[topology.FBFly].MaxPorts != 15 {
		t.Errorf("8x8 fbfly max ports = %d, want 15", byKind[topology.FBFly].MaxPorts)
	}
	if byKind[topology.Torus].AvgLatencyClks >= byKind[topology.Mesh].AvgLatencyClks {
		t.Errorf("torus latency %v should beat mesh %v (shorter distances)",
			byKind[topology.Torus].AvgLatencyClks, byKind[topology.Mesh].AvgLatencyClks)
	}
	if byKind[topology.FBFly].MeanHops >= byKind[topology.Mesh].MeanHops {
		t.Errorf("fbfly mean hops %v should beat mesh %v",
			byKind[topology.FBFly].MeanHops, byKind[topology.Mesh].MeanHops)
	}
}

// TestExploreKindsSerialParallelIdentical extends the Explore determinism
// contract across the kind axis.
func TestExploreKindsSerialParallelIdentical(t *testing.T) {
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 6, 6
	kinds := topology.Kinds()
	points := []DesignPoint{{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}}
	serial, err := ExploreKinds(context.Background(), kinds, points, o, runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ExploreKinds(context.Background(), kinds, points, o, runner.Config{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel kind explorations diverge")
	}
}

// TestExploreKindsRejectsExpressOnNonMesh pins the error path: express
// design points only make sense on the mesh family.
func TestExploreKindsRejectsExpressOnNonMesh(t *testing.T) {
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	points := []DesignPoint{{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}}
	_, err := ExploreKinds(context.Background(), []topology.Kind{topology.Torus}, points, o, runner.Config{})
	if err == nil || !strings.Contains(err.Error(), "express") {
		t.Errorf("torus express point should fail, got %v", err)
	}
}

// TestMeshKindMatchesLegacyExplore pins backward compatibility: routing a
// design point through the kind axis with Kind = mesh produces the exact
// ExplorationResult of the legacy mesh-only path.
func TestMeshKindMatchesLegacyExplore(t *testing.T) {
	o := DefaultOptions()
	points := []DesignPoint{{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}}
	legacy, err := Explore(points, o)
	if err != nil {
		t.Fatal(err)
	}
	kinded, err := ExploreKinds(context.Background(), []topology.Kind{topology.Mesh}, points, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy[0].Result, kinded[0].Result) {
		t.Fatalf("mesh kind diverges from legacy explore:\n%+v\n%+v", legacy[0].Result, kinded[0].Result)
	}
}
