package core

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/tech"
)

// update regenerates testdata/golden.json from the current implementation:
//
//	go test ./internal/core -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenFile locks the key paper numbers so refactors cannot silently
// drift from the reproduced results.
type goldenFile struct {
	// Fig3 samples the link-level CLEAR curves (Fig. 3) at a few lengths.
	Fig3 []goldenFig3 `json:"fig3_link_clear"`
	// Table3 holds capability C and utilization growth R (Table III).
	Table3 []goldenTable3 `json:"table3_capability_r"`
	// Fig5Best is the best-CLEAR design point of the Fig. 5 space.
	Fig5Best goldenFig5 `json:"fig5_best_design_point"`
	// TraceLU pins a small cycle-accurate LU trace run end to end.
	TraceLU goldenTrace `json:"trace_lu_small"`
}

type goldenFig3 struct {
	LengthM float64            `json:"length_m"`
	CLEAR   map[string]float64 `json:"clear"`
}

type goldenTable3 struct {
	Hops           int     `json:"hops"`
	CapabilityGbps float64 `json:"capability_gbps_per_node"`
	UtilizationR   float64 `json:"r"`
	CLEAR          float64 `json:"clear"`
	AvgLatencyClks float64 `json:"avg_latency_clks"`
	StaticW        float64 `json:"static_w"`
}

type goldenFig5 struct {
	Point string  `json:"point"`
	CLEAR float64 `json:"clear"`
}

type goldenTrace struct {
	AvgLatencyClks float64 `json:"avg_latency_clks"`
	DynamicEnergyJ float64 `json:"dynamic_energy_j"`
	StaticPowerW   float64 `json:"static_power_w"`
	Cycles         int64   `json:"cycles"`
	FlitsEjected   int64   `json:"flits_ejected"`
}

// computeGolden regenerates every locked quantity from the implementation.
func computeGolden(t *testing.T) goldenFile {
	t.Helper()
	var g goldenFile

	// Fig. 3: link CLEAR at representative lengths (first, crossover
	// region, chip scale, last).
	pts, err := LinkSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 12, 25, 38, 50} {
		p := pts[idx]
		clear := make(map[string]float64, len(p.CLEAR))
		for tch, v := range p.CLEAR {
			clear[tch.String()] = v
		}
		g.Fig3 = append(g.Fig3, goldenFig3{LengthM: p.LengthM, CLEAR: clear})
	}

	// Table III: E base + HyPPI express at the paper's hop lengths.
	o := DefaultOptions()
	var t3pts []DesignPoint
	hops := []int{0, 3, 5, 15}
	for _, h := range hops {
		t3pts = append(t3pts, DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: h})
	}
	res, err := Explore(t3pts, o)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		g.Table3 = append(g.Table3, goldenTable3{
			Hops:           hops[i],
			CapabilityGbps: r.CapabilityGbpsPerNode,
			UtilizationR:   r.R,
			CLEAR:          r.CLEAR,
			AvgLatencyClks: r.AvgLatencyClks,
			StaticW:        r.StaticW,
		})
	}

	// Fig. 5: best-CLEAR point of the full design space.
	all, err := Explore(DefaultDesignSpace(), o)
	if err != nil {
		t.Fatal(err)
	}
	best := all[0]
	for _, r := range all[1:] {
		if r.CLEAR > best.CLEAR {
			best = r
		}
	}
	g.Fig5Best = goldenFig5{Point: best.Point.String(), CLEAR: best.CLEAR}

	// Small LU trace through the cycle-accurate simulator: locks the
	// simulator's exact behaviour (latency, counters) and DSENT pricing.
	k := npb.DefaultConfig(npb.LU)
	k.Iterations = 1
	k.Scale = 1.0 / 64
	tr, err := RunTraceExperiment(k, DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
		o, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.TraceLU = goldenTrace{
		AvgLatencyClks: tr.AvgLatencyClks,
		DynamicEnergyJ: tr.DynamicEnergyJ,
		StaticPowerW:   tr.StaticPowerW,
		Cycles:         tr.Stats.Cycles,
		FlitsEjected:   tr.Stats.FlitsEjected,
	}
	return g
}

// closeEnough compares locked floats with a tight relative tolerance: the
// pipeline is deterministic, so the slack only absorbs cross-platform
// floating-point variation (e.g. FMA contraction).
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den < 1e-9
}

// TestGoldenPaperNumbers compares the regenerated key results against
// testdata/golden.json.
func TestGoldenPaperNumbers(t *testing.T) {
	if testing.Short() {
		// The locked values need the full design space and a trace run;
		// they are regenerated and compared only in full test mode.
		t.Skip("golden comparison runs in full (non -short) mode")
	}
	path := filepath.Join("testdata", "golden.json")
	got := computeGolden(t)

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	if len(got.Fig3) != len(want.Fig3) {
		t.Fatalf("fig3: %d points, want %d", len(got.Fig3), len(want.Fig3))
	}
	for i, w := range want.Fig3 {
		gp := got.Fig3[i]
		if !closeEnough(gp.LengthM, w.LengthM) {
			t.Errorf("fig3[%d]: length %v, want %v", i, gp.LengthM, w.LengthM)
		}
		for tchName, wv := range w.CLEAR {
			if gv, ok := gp.CLEAR[tchName]; !ok || !closeEnough(gv, wv) {
				t.Errorf("fig3[%d] %s: CLEAR %v, want %v", i, tchName, gp.CLEAR[tchName], wv)
			}
		}
	}

	if len(got.Table3) != len(want.Table3) {
		t.Fatalf("table3: %d rows, want %d", len(got.Table3), len(want.Table3))
	}
	for i, w := range want.Table3 {
		gr := got.Table3[i]
		if gr.Hops != w.Hops ||
			!closeEnough(gr.CapabilityGbps, w.CapabilityGbps) ||
			!closeEnough(gr.UtilizationR, w.UtilizationR) ||
			!closeEnough(gr.CLEAR, w.CLEAR) ||
			!closeEnough(gr.AvgLatencyClks, w.AvgLatencyClks) ||
			!closeEnough(gr.StaticW, w.StaticW) {
			t.Errorf("table3[%d]: got %+v, want %+v", i, gr, w)
		}
	}

	if got.Fig5Best.Point != want.Fig5Best.Point {
		t.Errorf("fig5 best point %q, want %q", got.Fig5Best.Point, want.Fig5Best.Point)
	}
	if !closeEnough(got.Fig5Best.CLEAR, want.Fig5Best.CLEAR) {
		t.Errorf("fig5 best CLEAR %v, want %v", got.Fig5Best.CLEAR, want.Fig5Best.CLEAR)
	}

	if !closeEnough(got.TraceLU.AvgLatencyClks, want.TraceLU.AvgLatencyClks) ||
		!closeEnough(got.TraceLU.DynamicEnergyJ, want.TraceLU.DynamicEnergyJ) ||
		!closeEnough(got.TraceLU.StaticPowerW, want.TraceLU.StaticPowerW) ||
		got.TraceLU.Cycles != want.TraceLU.Cycles ||
		got.TraceLU.FlitsEjected != want.TraceLU.FlitsEjected {
		t.Errorf("trace LU: got %+v, want %+v", got.TraceLU, want.TraceLU)
	}
}
