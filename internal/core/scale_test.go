package core

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/noc"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/traffic"
)

// TestScaleSmoke is the CI scale gate: a 64×64 (4096-node) pattern sweep
// must finish interactively and in linear memory. Any resurrected n² data
// structure fails it loudly — a dense 4096² traffic matrix alone is
// ~134 MB and a dense next-hop table ~67 MB, both beyond the heap ceiling
// asserted below while the networks, tables and results are still live.
// The sweep exercises the full streamed-traffic + algorithmic-routing +
// cycle-skipping path: uniform and tornado at loads below their 64×64
// saturation points (≈0.06 and ≈0.03 flits/cycle).
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short mode")
	}
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 64, 64
	// A private cache scopes this geometry's memoized network/table to the
	// test, keeping the heap measurement honest.
	o.Cache = NewNetworkCache()

	patterns := make([]traffic.Pattern, 0, 2)
	for _, name := range []string{"uniform", "tornado"} {
		p, err := traffic.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, p)
	}
	nocCfg := noc.DefaultConfig()
	nocCfg.MaxCycles = 200000
	sc := PatternSweepConfig{
		Rates:    []float64{0.002, 0.005, 0.01},
		Workload: noc.BernoulliWorkload{SizeFlits: 1, Cycles: 2000, Seed: 13},
		NoC:      nocCfg,
	}
	// The paper's dateline regime at scale: HyPPI row-closure express rings.
	points := []DesignPoint{{Base: tech.HyPPI, Express: tech.HyPPI, Hops: 63}}

	start := time.Now()
	results, err := PatternSweep(t.Context(), points, patterns, sc, o, runner.Config{Workers: 1})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(points)*len(patterns) {
		t.Fatalf("got %d results, want %d", len(results), len(points)*len(patterns))
	}
	for _, r := range results {
		for _, pt := range r.Curve {
			if pt.Saturated {
				t.Errorf("%s @ %v saturated — smoke loads must sit below the knee", r.Pattern, pt.InjectionRate)
			}
			if pt.AvgLatencyClks <= 0 {
				t.Errorf("%s @ %v: non-positive latency %v", r.Pattern, pt.InjectionRate, pt.AvgLatencyClks)
			}
		}
	}

	// Wall-clock budget: ~5× headroom over the measured runtime on the CI
	// runner class; a quadratic regression in routing, traffic or the
	// kernel blows through it.
	const wallBudget = 90 * time.Second
	if elapsed > wallBudget {
		t.Errorf("64x64 sweep took %v, budget %v", elapsed.Round(time.Millisecond), wallBudget)
	}

	// Heap ceiling while the networks, tables and curves are still
	// reachable: O(n) state for 4096 nodes fits comfortably; one dense
	// n² matrix or table does not.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const heapBudget = 128 << 20
	if ms.HeapAlloc > heapBudget {
		t.Errorf("HeapAlloc %d MiB after sweep, budget %d MiB — an n² structure is back",
			ms.HeapAlloc>>20, heapBudget>>20)
	}
	runtime.KeepAlive(results)
	runtime.KeepAlive(o)
}
