package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dsent"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

// FaultSweepConfig parameterizes an availability / CLEAR-degradation sweep.
type FaultSweepConfig struct {
	// Rates is the ascending per-link fault-probability ladder. The first
	// entry must be 0: it is the healthy reference every other rate's
	// CLEAR degradation is measured against, and with the baseline device
	// variant its runs are bit-identical to the fault-free simulator.
	Rates []float64
	// TransientFraction and Epochs shape the fault schedules
	// (fault.Config); the workload horizon below runs once per epoch.
	TransientFraction float64
	Epochs            int
	// Load is the offered peak per-node injection rate in flits/cycle.
	Load float64
	// Workload shapes each epoch's open-loop arrivals; Workload.Cycles is
	// the per-epoch horizon and Workload.Seed the arrival-seed base.
	Workload noc.BernoulliWorkload
	// NoC configures the cycle-accurate simulator.
	NoC noc.Config
	// Thermal is the drift model (fault.ThermalConfig); its
	// BaseFlitErrorProb is overridden per cell with the device variant's
	// error floor (dsent.LookupVariant).
	Thermal fault.ThermalConfig
	// RetryLimit bounds per-hop retransmissions (0 = retry forever, the
	// guaranteed-delivery mode; see noc.FaultProfile).
	RetryLimit int
	// Seed is the base of the sweep's fault-randomness chain (see the
	// FaultSweep seed contract).
	Seed int64
}

// DefaultFaultSweep returns a ladder from healthy to heavily degraded on
// the cycle-accurate scale: four epochs per rate, a moderate load well
// under mesh saturation, bounded retries so severed-pair traffic fails
// loudly instead of spinning forever.
func DefaultFaultSweep() FaultSweepConfig {
	cfg := noc.DefaultConfig()
	cfg.MaxCycles = 200000
	return FaultSweepConfig{
		Rates:             []float64{0, 0.02, 0.05, 0.1, 0.2},
		TransientFraction: 0.25,
		Epochs:            4,
		Load:              0.1,
		Workload:          noc.BernoulliWorkload{SizeFlits: 1, Cycles: 2000, Seed: 13},
		NoC:               cfg,
		Thermal:           fault.DefaultThermal(0),
		RetryLimit:        16,
		Seed:              1,
	}
}

// Validate checks the sweep parameters.
func (c FaultSweepConfig) Validate() error {
	if len(c.Rates) == 0 || c.Rates[0] != 0 {
		return fmt.Errorf("core: fault sweep rates must start at 0 (the healthy reference), got %v", c.Rates)
	}
	prev := -1.0
	for _, r := range c.Rates {
		if r <= prev || r > 1 {
			return fmt.Errorf("core: fault sweep rates must ascend within [0, 1], got %v", c.Rates)
		}
		prev = r
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("core: fault sweep with %d epochs", c.Epochs)
	}
	if c.Load <= 0 {
		return fmt.Errorf("core: fault sweep at non-positive load %v", c.Load)
	}
	if c.Workload.SizeFlits <= 0 || c.Workload.Cycles <= 0 {
		return fmt.Errorf("core: invalid fault sweep workload %+v", c.Workload)
	}
	if c.RetryLimit < 0 {
		return fmt.Errorf("core: negative retry limit %d", c.RetryLimit)
	}
	return c.Thermal.Validate()
}

// FaultPoint is one fault rate's measured outcome for a cell, aggregated
// over the schedule's epochs.
type FaultPoint struct {
	// FaultRate is the swept per-link fault probability.
	FaultRate float64
	// Availability is the epoch-mean fraction of ordered (src, dst) pairs
	// still connected by the surviving fabric.
	Availability float64
	// DownLinkFrac is the epoch-mean fraction of links down.
	DownLinkFrac float64
	// SaturatedEpochs counts epochs that failed to drain within the cap.
	SaturatedEpochs int
	// PacketsInjected / Delivered / Dropped account every generated
	// packet that had a route; Unroutable counts packets whose pair the
	// fabric no longer connects (never injected — the workload's offered
	// traffic lost to partition).
	PacketsInjected, PacketsDelivered, PacketsDropped, PacketsUnroutable int64
	// Retransmits is the total failed link traversals re-tried.
	Retransmits int64
	// AvgLatencyClks is the delivered-packet-weighted mean latency.
	AvgLatencyClks float64
	// FJPerBit is total energy (switching + static + thermal trimming
	// overhead) per delivered bit, in femtojoules.
	FJPerBit float64
	// TrimOverheadW is the epoch-mean thermal-trimming overhead and
	// MaxDrift the hottest drift state reached.
	TrimOverheadW, MaxDrift float64
	// CLEAR is the epoch-mean simulated eq. 2 value (epochs where it is
	// undefined — no delivered packets — are skipped); 0 when no epoch
	// produced one.
	CLEAR float64
	// CLEARDegradation is CLEAR relative to the cell's rate-0 point
	// (1 = undegraded; 0 when either side is undefined).
	CLEARDegradation float64
}

// FaultSweepResult is one (kind, design point, device variant, pattern)
// cell: availability and CLEAR degradation over the fault-rate ladder.
type FaultSweepResult struct {
	Kind    topology.Kind
	Point   DesignPoint
	Variant string
	Pattern string
	// Points holds one sample per swept fault rate, in ladder order.
	Points []FaultPoint
}

// PointLabel renders the design point for tables.
func (r FaultSweepResult) PointLabel() string {
	label := PatternSweepResult{Kind: r.Kind, Point: r.Point}.PointLabel()
	if r.Variant != "" {
		label += " [" + r.Variant + "]"
	}
	return label
}

// FaultSweep runs the (kind × point × device variant × pattern) × fault
// rate matrix: each cell builds its fabric once, then walks the rate
// ladder serially (the pool fans out across cells). Per rate, a
// fault.Schedule derives the epoch fault masks, a fault.Rerouter rebuilds
// routing only at epochs whose mask actually changed, traffic to severed
// pairs is counted unroutable instead of injected, and the surviving
// packets run under a noc.FaultProfile whose per-link error probabilities
// come from the epoch-lagged thermal drift state seeded at the variant's
// error floor. Energy is priced per epoch with the drift's trimming
// overhead folded into static power.
//
// Seed contract: every random draw derives from Seed through
// runner.Seed chains — cellSeed = Seed(cfg.Seed, cellIndex), rateSeed =
// Seed(cellSeed, rateIndex), then per epoch e the arrival seed is
// Workload.Seed + Seed(rateSeed, 2e) for faulted rates (the healthy rate
// 0 keeps Workload.Seed + e so its arrivals are reproducible without the
// chain) and the corruption seed is Seed(rateSeed, 2e+1). No shared RNG
// state crosses jobs or epochs, so results are bit-identical for any
// worker count.
func FaultSweep(ctx context.Context, kinds []topology.Kind, points []DesignPoint, variants []string,
	patterns []traffic.Pattern, sc FaultSweepConfig, o Options, pool runner.Config) ([]FaultSweepResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(kinds) == 0 || len(points) == 0 || len(variants) == 0 || len(patterns) == 0 {
		return nil, fmt.Errorf("core: fault sweep needs kinds, points, variants and patterns")
	}
	type cellEnv struct {
		kind    topology.Kind
		point   DesignPoint
		variant string
		net     *topology.Network
		tab     *routing.Table
		model   *energy.Model
		thermal fault.ThermalConfig
	}
	envs := make([]cellEnv, 0, len(kinds)*len(points)*len(variants))
	for _, kind := range kinds {
		ko := o.WithKind(kind)
		for _, point := range points {
			net, tab, err := ko.NetworkAndTable(point)
			if err != nil {
				return nil, fmt.Errorf("core: %v %v: %w", kind, point, err)
			}
			for _, variant := range variants {
				dv, err := dsent.LookupVariant(variant)
				if err != nil {
					return nil, fmt.Errorf("core: %v %v: %w", kind, point, err)
				}
				cfg := o.DSENT
				cfg.Variant = variant
				model, err := energy.NewModel(net, cfg)
				if err != nil {
					return nil, fmt.Errorf("core: %v %v [%s]: %w", kind, point, variant, err)
				}
				tc := sc.Thermal
				tc.BaseFlitErrorProb = dv.FlitErrorProb
				envs = append(envs, cellEnv{
					kind: net.Config.Kind, point: point, variant: variant,
					net: net, tab: tab, model: model, thermal: tc,
				})
			}
		}
	}
	sims := noc.NewSimPool()
	n := len(envs) * len(patterns)
	return runner.Map(ctx, n, pool, func(ctx context.Context, i int) (FaultSweepResult, error) {
		env, pat := envs[i/len(patterns)], patterns[i%len(patterns)]
		fail := func(err error) (FaultSweepResult, error) {
			return FaultSweepResult{}, fmt.Errorf("core: %v %v [%s] / %s: %w",
				env.kind, env.point, env.variant, pat.Name(), err)
		}
		base, err := pat.Generate(env.net, 1)
		if err != nil {
			return fail(err)
		}
		if err := base.Validate(); err != nil {
			return fail(err)
		}
		tm := base.ScaledToMaxRate(sc.Load)
		res := FaultSweepResult{
			Kind: env.kind, Point: env.point, Variant: env.variant, Pattern: pat.Name(),
			Points: make([]FaultPoint, 0, len(sc.Rates)),
		}
		cellSeed := runner.Seed(sc.Seed, i)
		for ri, rate := range sc.Rates {
			if err := ctx.Err(); err != nil {
				return FaultSweepResult{}, err
			}
			fp, err := faultPoint(env.net, env.tab, env.model, tm, rate,
				runner.Seed(cellSeed, ri), env.thermal, sc, o.Policy, sims)
			if err != nil {
				return fail(fmt.Errorf("fault rate %v: %w", rate, err))
			}
			res.Points = append(res.Points, fp)
		}
		// Degradation is relative to the healthy ladder floor (rate 0,
		// enforced by Validate).
		if ref := res.Points[0].CLEAR; ref > 0 {
			for pi := range res.Points {
				res.Points[pi].CLEARDegradation = res.Points[pi].CLEAR / ref
			}
		}
		return res, nil
	})
}

// faultPoint walks one fault rate's epochs for one cell.
func faultPoint(net *topology.Network, tab *routing.Table, model *energy.Model,
	tm *traffic.Matrix, rate float64, rateSeed int64, tc fault.ThermalConfig,
	sc FaultSweepConfig, policy routing.Policy, sims *noc.SimPool) (FaultPoint, error) {
	sched, err := fault.NewSchedule(net, fault.Config{
		Rate:              rate,
		TransientFraction: sc.TransientFraction,
		Epochs:            sc.Epochs,
		Seed:              rateSeed,
	})
	if err != nil {
		return FaultPoint{}, err
	}
	rr := fault.NewRerouter(net, tab, policy)
	th, err := fault.NewThermal(net, tc)
	if err != nil {
		return FaultPoint{}, err
	}
	fp := FaultPoint{FaultRate: rate}
	var (
		mask        []bool
		probs       []float64
		view        *fault.View
		totalJ      float64
		totalBits   float64
		latWeighted float64
		clearSum    float64
		clearN      int
	)
	for e := 0; e < sc.Epochs; e++ {
		// Incremental reroute: only epochs whose mask changed resolve a
		// (possibly cached) new view; in between the previous one stands.
		if view == nil || sched.Changed(e) {
			mask = sched.DownAt(e, mask)
			if view, err = rr.View(mask); err != nil {
				return FaultPoint{}, err
			}
		}
		fp.Availability += view.Availability
		downs := 0
		for _, d := range mask {
			if d {
				downs++
			}
		}
		fp.DownLinkFrac += float64(downs) / float64(len(net.Links))

		// Epoch arrivals: the healthy reference keeps the plain
		// Workload.Seed + epoch chain (reproducible without the fault
		// machinery); faulted rates re-key per (cell, rate, epoch).
		w := sc.Workload
		if rate == 0 {
			w.Seed = sc.Workload.Seed + int64(e)
		} else {
			w.Seed = sc.Workload.Seed + runner.Seed(rateSeed, 2*e)
		}
		pkts, err := w.Generate(view.Net, tm)
		if err != nil {
			return FaultPoint{}, err
		}
		// Partitioned pairs cannot inject: their offered packets are the
		// availability loss, counted instead of simulated.
		if view.Unreachable > 0 {
			routable := pkts[:0]
			for _, p := range pkts {
				if view.Tab.Reachable(p.Src, p.Dst) {
					routable = append(routable, p)
				} else {
					fp.PacketsUnroutable++
				}
			}
			pkts = routable
		}
		fp.PacketsInjected += int64(len(pkts))

		// Epoch-lagged thermal feedback: this epoch's error probabilities
		// and trimming overhead derive from drift accumulated through the
		// previous epoch's measured activity.
		probs = th.LinkErrorProbs(probs)
		overheadW := th.TrimmingOverheadW()
		fp.TrimOverheadW += overheadW

		sim, err := sims.Get(view.Net, view.Tab, sc.NoC)
		if err != nil {
			return FaultPoint{}, err
		}
		if err := sim.SetFaultProfile(&noc.FaultProfile{
			LinkFlitErrorProb: probs,
			Seed:              runner.Seed(rateSeed, 2*e+1),
			RetryLimit:        sc.RetryLimit,
		}); err != nil {
			sims.Put(sim)
			return FaultPoint{}, err
		}
		if err := sim.InjectAll(pkts); err != nil {
			sims.Put(sim)
			return FaultPoint{}, err
		}
		st, runErr := sim.Run()
		sims.Put(sim)
		if runErr != nil {
			if !errors.Is(runErr, noc.ErrSaturated) {
				return FaultPoint{}, runErr
			}
			fp.SaturatedEpochs++
		}
		fp.PacketsDelivered += st.PacketsEjected
		fp.PacketsDropped += st.PacketsDropped
		fp.Retransmits += st.Activity.TotalRetransmits()
		latWeighted += st.AvgPacketLatencyClks * float64(st.PacketsEjected)
		if runErr == nil && st.Cycles > 0 {
			re, err := model.PriceWithStaticOverhead(st, overheadW)
			if err != nil {
				return FaultPoint{}, err
			}
			totalJ += re.TotalJ
			totalBits += re.BitsEjected
			if st.PacketsEjected > 0 {
				c, err := model.SimulatedCLEARWithOverhead(st, sc.Load, overheadW)
				if err == nil {
					clearSum += c.Value
					clearN++
				}
			}
		}
		if st.Cycles > 0 {
			if err := th.Advance(st); err != nil {
				return FaultPoint{}, err
			}
		}
	}
	ep := float64(sc.Epochs)
	fp.Availability /= ep
	fp.DownLinkFrac /= ep
	fp.TrimOverheadW /= ep
	fp.MaxDrift = th.MaxDrift()
	if fp.PacketsDelivered > 0 {
		fp.AvgLatencyClks = latWeighted / float64(fp.PacketsDelivered)
	}
	if totalBits > 0 {
		fp.FJPerBit = totalJ / totalBits / units.Femto
	}
	if clearN > 0 {
		fp.CLEAR = clearSum / float64(clearN)
	}
	return fp, nil
}
