package core

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/traffic"
	"repro/internal/units"
)

// TestAnalyticMatchesSimulatorAtLowLoad cross-validates the two evaluation
// paths the paper uses: the Section III-B analytical latency (zero-load
// shortest paths) must agree with the cycle-accurate simulator under light
// open-loop load, where queueing is negligible. This is the repository's
// strongest internal consistency check — the two implementations share no
// code beyond the routing tables.
func TestAnalyticMatchesSimulatorAtLowLoad(t *testing.T) {
	o := DefaultOptions()
	// Short mode: a smaller generation window still yields enough packets
	// for a stable mean at these rates.
	cycles, minPackets := int64(30000), int64(1000)
	points := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 15},
	}
	if testing.Short() {
		cycles, minPackets = 5000, 150
		points = points[:2]
	}
	for _, point := range points {
		net, err := o.BuildNetwork(point)
		if err != nil {
			t.Fatal(err)
		}
		tab := routing.MustBuild(net, o.Policy)
		tm := traffic.MustSoteriou(net, o.Traffic)

		ana, err := analytic.Evaluate(net, tab, tm, analytic.Params{
			DSENT: o.DSENT, RouterPipelineClks: o.RouterPipelineClks,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Light load: 0.01 flits/cycle peak, single-flit packets, so
		// simulated latency ≈ zero-load head latency.
		w := noc.BernoulliWorkload{SizeFlits: 1, Cycles: cycles, Seed: 17}
		pkts, err := w.Generate(net, tm.ScaledToMaxRate(0.01))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := noc.New(net, tab, noc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.InjectAll(pkts); err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.PacketsEjected < minPackets {
			t.Fatalf("%v: too few packets (%d) for a stable mean", point, st.PacketsEjected)
		}
		if !units.WithinFactor(st.AvgPacketLatencyClks, ana.AvgLatencyClks, 1.20) {
			t.Errorf("%v: simulated latency %.2f vs analytic %.2f (want within 20%%)",
				point, st.AvgPacketLatencyClks, ana.AvgLatencyClks)
		}
		// Hop counts agree too (same tables, same traffic law).
		if !units.WithinFactor(st.AvgHopCount, ana.MeanHops, 1.15) {
			t.Errorf("%v: simulated hops %.2f vs analytic %.2f",
				point, st.AvgHopCount, ana.MeanHops)
		}
	}
}

// TestSimulatorEnergyMatchesAnalyticLoads: link flit counters from the
// simulator, priced with DSENT, must land near the analytic dynamic power ×
// duration under the same sustained traffic.
func TestSimulatorEnergyMatchesAnalyticLoads(t *testing.T) {
	o := DefaultOptions()
	point := DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	net, err := o.BuildNetwork(point)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.MustBuild(net, o.Policy)
	tm := traffic.MustSoteriou(net, o.Traffic)

	ana, err := analytic.Evaluate(net, tab, tm, analytic.Params{
		DSENT: o.DSENT, RouterPipelineClks: o.RouterPipelineClks,
	})
	if err != nil {
		t.Fatal(err)
	}

	cycles := int64(20000)
	if testing.Short() {
		cycles = 2500
	}
	w := noc.BernoulliWorkload{SizeFlits: 1, Cycles: cycles, Seed: 23}
	pkts, err := w.Generate(net, tm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := noc.New(net, tab, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectAll(pkts); err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	dynamicJ, _, err := PriceRun(net, st, o.DSENT)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic dynamic power × injection window duration.
	wantJ := ana.DynamicW * float64(cycles) / o.DSENT.ClockHz
	if !units.WithinFactor(dynamicJ, wantJ, 1.25) {
		t.Errorf("simulated dynamic energy %v J vs analytic %v J (want within 25%%)", dynamicJ, wantJ)
	}
}
