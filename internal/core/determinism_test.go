package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/runner"
	"repro/internal/tech"
)

// TestExploreSerialParallelIdentical: the concurrent engine must return
// bit-identical ExplorationResults to the serial path for every worker
// count — the core determinism contract of the runner rewiring. Run with
// -race to also catch data races between jobs.
func TestExploreSerialParallelIdentical(t *testing.T) {
	o := DefaultOptions()
	pts := DefaultDesignSpace()
	workerCounts := []int{2, 4, 8}
	if testing.Short() {
		// A slice of the space across fewer pool sizes keeps the check
		// meaningful at a fraction of the cost.
		pts = pts[:6]
		workerCounts = []int{3}
	}
	serial, err := ExploreContext(context.Background(), pts, o, runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		par, err := ExploreContext(context.Background(), pts, o, runner.Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Errorf("workers=%d: result %d (%v) differs:\nserial:   %+v\nparallel: %+v",
					workers, i, pts[i], serial[i], par[i])
			}
		}
	}
}

// TestTraceExperimentsSerialParallelIdentical: batched cycle-accurate trace
// runs are bit-identical across worker counts (same seed, any pool size).
func TestTraceExperimentsSerialParallelIdentical(t *testing.T) {
	o := DefaultOptions()
	k := npb.DefaultConfig(npb.LU)
	k.Iterations = 1
	k.Scale = 1.0 / 64
	var jobs []TraceJob
	for _, hops := range []int{0, 3, 5} {
		jobs = append(jobs, TraceJob{Kernel: k, Point: DesignPoint{
			Base: tech.Electronic, Express: tech.HyPPI, Hops: hops}})
	}
	serial, err := RunTraceExperiments(context.Background(), jobs, o, noc.DefaultConfig(), runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTraceExperiments(context.Background(), jobs, o, noc.DefaultConfig(), runner.Config{Workers: len(jobs)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Errorf("job %d (%v): serial and parallel TraceResults differ", i, jobs[i].Point)
		}
	}
}

// TestExploreCancellationPropagates: a cancelled context aborts the sweep
// with context.Canceled instead of returning partial results.
func TestExploreCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ExploreContext(ctx, DefaultDesignSpace(), DefaultOptions(), runner.Config{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled sweep must not return results")
	}
}

// TestExploreParallelErrorMatchesSerial: an invalid design point fails the
// parallel sweep with the same per-point error the serial path reports.
func TestExploreParallelErrorMatchesSerial(t *testing.T) {
	o := DefaultOptions()
	pts := DefaultDesignSpace()
	if testing.Short() {
		pts = pts[:2]
	}
	pts = append(pts, DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 99})
	_, serialErr := ExploreContext(context.Background(), pts, o, runner.Config{Workers: 1})
	_, parErr := ExploreContext(context.Background(), pts, o, runner.Config{Workers: 8})
	if serialErr == nil || parErr == nil {
		t.Fatalf("both paths must fail: serial=%v parallel=%v", serialErr, parErr)
	}
	if serialErr.Error() != parErr.Error() {
		t.Errorf("error mismatch:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}
