package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/runner"
	"repro/internal/tech"
)

// TestExploreSerialParallelIdentical: the concurrent engine must return
// bit-identical ExplorationResults to the serial path for every worker
// count — the core determinism contract of the runner rewiring. Run with
// -race to also catch data races between jobs.
func TestExploreSerialParallelIdentical(t *testing.T) {
	o := DefaultOptions()
	pts := DefaultDesignSpace()
	workerCounts := []int{2, 4, 8}
	if testing.Short() {
		// A slice of the space across fewer pool sizes keeps the check
		// meaningful at a fraction of the cost.
		pts = pts[:6]
		workerCounts = []int{3}
	}
	serial, err := ExploreContext(context.Background(), pts, o, runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		par, err := ExploreContext(context.Background(), pts, o, runner.Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Errorf("workers=%d: result %d (%v) differs:\nserial:   %+v\nparallel: %+v",
					workers, i, pts[i], serial[i], par[i])
			}
		}
	}
}

// TestTraceExperimentsSerialParallelIdentical: batched cycle-accurate trace
// runs are bit-identical across worker counts (same seed, any pool size).
func TestTraceExperimentsSerialParallelIdentical(t *testing.T) {
	o := DefaultOptions()
	k := npb.DefaultConfig(npb.LU)
	k.Iterations = 1
	k.Scale = 1.0 / 64
	var jobs []TraceJob
	for _, hops := range []int{0, 3, 5} {
		jobs = append(jobs, TraceJob{Kernel: k, Point: DesignPoint{
			Base: tech.Electronic, Express: tech.HyPPI, Hops: hops}})
	}
	serial, err := RunTraceExperiments(context.Background(), jobs, o, noc.DefaultConfig(), runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTraceExperiments(context.Background(), jobs, o, noc.DefaultConfig(), runner.Config{Workers: len(jobs)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Errorf("job %d (%v): serial and parallel TraceResults differ", i, jobs[i].Point)
		}
	}
}

// TestTraceExperimentsPooledMatchesFresh: the batch path recycles
// simulators through a noc.SimPool while the single-experiment path builds
// fresh ones — results must be bit-identical, per-job and across repeated
// batches (warm network cache, warm pools). This is the core-layer
// enforcement of the Sim.Reset reuse contract; run under -race via
// make race.
func TestTraceExperimentsPooledMatchesFresh(t *testing.T) {
	o := DefaultOptions()
	k := npb.DefaultConfig(npb.LU)
	k.Iterations = 1
	k.Scale = 1.0 / 64
	var jobs []TraceJob
	// Repeating design points makes the pool actually reuse simulators
	// (a kernel ladder on a fixed point is the hyppi-sim shape).
	for _, hops := range []int{0, 3, 0, 3} {
		jobs = append(jobs, TraceJob{Kernel: k, Point: DesignPoint{
			Base: tech.Electronic, Express: tech.HyPPI, Hops: hops}})
	}
	fresh := make([]TraceResult, len(jobs))
	for i, j := range jobs {
		r, err := RunTraceExperiment(j.Kernel, j.Point, o, noc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = r
	}
	for round := 0; round < 2; round++ {
		for _, workers := range []int{1, 3} {
			pooled, err := RunTraceExperiments(context.Background(), jobs, o,
				noc.DefaultConfig(), runner.Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for i := range fresh {
				if !reflect.DeepEqual(fresh[i], pooled[i]) {
					t.Errorf("round %d workers=%d job %d (%v): pooled result differs from fresh",
						round, workers, i, jobs[i].Point)
				}
			}
		}
	}
}

// TestExploreRepeatedCallsIdentical: the process-wide network, table and
// traffic caches must not let one sweep's results leak into the next —
// repeated explorations are bit-identical.
func TestExploreRepeatedCallsIdentical(t *testing.T) {
	o := DefaultOptions()
	pts := DefaultDesignSpace()
	if testing.Short() {
		pts = pts[:4]
	}
	first, err := Explore(pts, o)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Explore(pts, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("repeated Explore calls diverge (cache contamination)")
	}
}

// TestScopedCacheMatchesDefault: Options.Cache with a private cache (and
// a nil NetworkCache building uncached) must be bit-identical to the
// process-wide default cache.
func TestScopedCacheMatchesDefault(t *testing.T) {
	o := DefaultOptions()
	pts := DefaultDesignSpace()[:4]
	def, err := Explore(pts, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = NewNetworkCache()
	scoped, err := Explore(pts, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, scoped) {
		t.Error("scoped-cache exploration diverges from default cache")
	}
	var nilCache *NetworkCache
	net, tab, err := nilCache.Get(o.Topology, o.Policy)
	if err != nil || net == nil || tab == nil {
		t.Fatalf("nil cache must build uncached: %v", err)
	}
	if _, err := nilCache.Soteriou(net, o.Traffic); err != nil {
		t.Fatalf("nil cache Soteriou: %v", err)
	}
}

// TestExploreCancellationPropagates: a cancelled context aborts the sweep
// with context.Canceled instead of returning partial results.
func TestExploreCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ExploreContext(ctx, DefaultDesignSpace(), DefaultOptions(), runner.Config{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled sweep must not return results")
	}
}

// TestExploreParallelErrorMatchesSerial: an invalid design point fails the
// parallel sweep with the same per-point error the serial path reports.
func TestExploreParallelErrorMatchesSerial(t *testing.T) {
	o := DefaultOptions()
	pts := DefaultDesignSpace()
	if testing.Short() {
		pts = pts[:2]
	}
	pts = append(pts, DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 99})
	_, serialErr := ExploreContext(context.Background(), pts, o, runner.Config{Workers: 1})
	_, parErr := ExploreContext(context.Background(), pts, o, runner.Config{Workers: 8})
	if serialErr == nil || parErr == nil {
		t.Fatalf("both paths must fail: serial=%v parallel=%v", serialErr, parErr)
	}
	if serialErr.Error() != parErr.Error() {
		t.Errorf("error mismatch:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}
