package core

import (
	"context"
	"fmt"

	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// PatternSweepConfig parameterizes a pattern saturation sweep.
type PatternSweepConfig struct {
	// Rates is the ascending offered-load grid in flits/cycle; the
	// latency-knee detector (noc.DetectSaturation) reads the first rate
	// as the zero-load baseline.
	Rates []float64
	// Workload shapes the open-loop arrivals at each point.
	Workload noc.BernoulliWorkload
	// NoC configures the cycle-accurate simulator.
	NoC noc.Config
}

// DefaultPatternSweep returns a sweep that resolves each pattern's knee
// in seconds on an 8×8 grid (the CLIs scale Options.Topology down to
// 8×8 for cycle-accurate sweeps): a rate ladder from well below to well
// beyond mesh saturation, 1-flit packets over a 5000-cycle horizon.
func DefaultPatternSweep() PatternSweepConfig {
	cfg := noc.DefaultConfig()
	cfg.MaxCycles = 200000
	return PatternSweepConfig{
		Rates:    []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5},
		Workload: noc.BernoulliWorkload{SizeFlits: 1, Cycles: 5000, Seed: 13},
		NoC:      cfg,
	}
}

// Validate checks the sweep parameters.
func (c PatternSweepConfig) Validate() error {
	if len(c.Rates) == 0 {
		return fmt.Errorf("core: pattern sweep with no rates")
	}
	prev := 0.0
	for _, r := range c.Rates {
		if r <= prev {
			return fmt.Errorf("core: sweep rates must ascend from above zero, got %v", c.Rates)
		}
		prev = r
	}
	return nil
}

// PatternSweepResult is one (topology kind, design point, pattern) cell of
// a sweep: the full load-latency curve plus the detected saturation
// throughput, the ExplorationResult-style row of the saturation dataset.
type PatternSweepResult struct {
	// Kind is the topology family the cell ran on (canonical; "mesh"
	// for sweeps predating the registry).
	Kind    topology.Kind
	Point   DesignPoint
	Pattern string
	// Curve holds one point per swept rate, in rate order.
	Curve []noc.LoadPoint
	// SaturationRate is the latency-knee offered load (see
	// noc.DetectSaturation); zero when the design never saturates within
	// the swept range.
	SaturationRate float64
	// Saturates reports whether the knee lies inside the swept range.
	Saturates bool
	// AtFloor marks a cell whose lowest swept rate already saturated:
	// SaturationRate then only bounds capacity from above (the true knee
	// lies at or below the sweep floor) and must not be read — or
	// rendered — as a measured throughput.
	AtFloor bool
}

// PointLabel renders the design point for tables. DesignPoint.String
// names the mesh; when the row's Kind already names the fabric, the
// label reduces to the technology axis.
func (r PatternSweepResult) PointLabel() string {
	if r.Kind == "" || r.Kind == topology.Mesh {
		return r.Point.String()
	}
	if r.Point.Hops == 0 {
		return r.Point.Base.String()
	}
	// cmesh can carry express links; keep the axis without the "mesh"
	// word DesignPoint.String would add.
	return fmt.Sprintf("%v + %v express@%d", r.Point.Base, r.Point.Express, r.Point.Hops)
}

// ZeroLoadLatencyClks returns the curve's first (lowest-rate) average
// latency — the knee detector's baseline.
func (r PatternSweepResult) ZeroLoadLatencyClks() float64 {
	if len(r.Curve) == 0 {
		return 0
	}
	return r.Curve[0].AvgLatencyClks
}

// PatternSweep runs the design-point × pattern saturation matrix on the
// worker pool: each (point, pattern) job resolves its network and routing
// table through the process-wide cache, generates the pattern matrix, and
// walks the rate ladder serially with the cycle-accurate simulator,
// recycling simulators through one batch-wide noc.SimPool. Jobs share only
// read-only inputs and results are collected in (point-major,
// pattern-minor) order, so the output is bit-identical for any worker
// count — the same determinism contract as Explore. The first failure
// cancels the batch.
func PatternSweep(ctx context.Context, points []DesignPoint, patterns []traffic.Pattern,
	sc PatternSweepConfig, o Options, pool runner.Config) ([]PatternSweepResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("core: pattern sweep with no patterns")
	}
	// Networks and routing tables depend only on the design point:
	// resolve them once up front and share them read-only across the pool.
	nets := make([]*topology.Network, len(points))
	tabs := make([]*routing.Table, len(points))
	for i, point := range points {
		net, tab, err := o.NetworkAndTable(point)
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", point, err)
		}
		nets[i], tabs[i] = net, tab
	}
	sims := noc.NewSimPool()
	n := len(points) * len(patterns)
	return runner.Map(ctx, n, pool, func(ctx context.Context, i int) (PatternSweepResult, error) {
		pi, pat := i/len(patterns), patterns[i%len(patterns)]
		point, net, tab := points[pi], nets[pi], tabs[pi]
		// The rate ladder runs serially inside the job (Workers: 1): the
		// pool already fans out across (point, pattern) cells, and nested
		// pools would oversubscribe without improving determinism.
		curves, err := noc.PatternLoadLatencyCurves(ctx, net, tab,
			[]traffic.Pattern{pat}, sc.Rates, sc.Workload, sc.NoC, runner.Config{Workers: 1}, sims)
		if err != nil {
			return PatternSweepResult{}, fmt.Errorf("core: %v / %s: %w", point, pat.Name(), err)
		}
		c := curves[0]
		return PatternSweepResult{
			Kind:           o.Topology.Canonical().Kind,
			Point:          point,
			Pattern:        c.Pattern,
			Curve:          c.Points,
			SaturationRate: c.SaturationRate,
			Saturates:      c.Saturates,
			AtFloor:        c.AtFloor,
		}, nil
	})
}

// TopologyPatternSweep runs the full topology × pattern saturation matrix
// on the worker pool: every registered (or selected) kind is built at the
// Options' grid with the plain base technology — the kind-portable design
// point every family supports — and swept over the pattern's rate ladder
// with the cycle-accurate simulator, exactly like PatternSweep. Results
// come back kind-major, pattern-minor and are bit-identical for any worker
// count; the first failure cancels the batch. Express hybrids stay a
// mesh-family axis: sweep them per kind through PatternSweep.
func TopologyPatternSweep(ctx context.Context, kinds []topology.Kind, patterns []traffic.Pattern,
	sc PatternSweepConfig, o Options, pool runner.Config) ([]PatternSweepResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("core: topology sweep with no kinds")
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("core: topology sweep with no patterns")
	}
	plain := DesignPoint{Base: o.Topology.BaseTech, Express: o.Topology.BaseTech, Hops: 0}
	nets := make([]*topology.Network, len(kinds))
	tabs := make([]*routing.Table, len(kinds))
	for i, kind := range kinds {
		net, tab, err := o.WithKind(kind).NetworkAndTable(plain)
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", kind, err)
		}
		nets[i], tabs[i] = net, tab
	}
	sims := noc.NewSimPool()
	n := len(kinds) * len(patterns)
	return runner.Map(ctx, n, pool, func(ctx context.Context, i int) (PatternSweepResult, error) {
		ki, pat := i/len(patterns), patterns[i%len(patterns)]
		kind, net, tab := kinds[ki], nets[ki], tabs[ki]
		curves, err := noc.PatternLoadLatencyCurves(ctx, net, tab,
			[]traffic.Pattern{pat}, sc.Rates, sc.Workload, sc.NoC, runner.Config{Workers: 1}, sims)
		if err != nil {
			return PatternSweepResult{}, fmt.Errorf("core: %v / %s: %w", kind, pat.Name(), err)
		}
		c := curves[0]
		return PatternSweepResult{
			Kind:           net.Config.Kind, // canonical (Build resolved it)
			Point:          plain,
			Pattern:        c.Pattern,
			Curve:          c.Points,
			SaturationRate: c.SaturationRate,
			Saturates:      c.Saturates,
			AtFloor:        c.AtFloor,
		}, nil
	})
}
