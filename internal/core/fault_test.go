package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/dsent"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

// faultFixture is the tiny mesh + HyPPI-express matrix the acceptance
// criteria name: two geometries, two device variants, kept small enough to
// run under -race in short mode.
func faultFixture(t *testing.T) ([]DesignPoint, []string, []traffic.Pattern, FaultSweepConfig, Options) {
	t.Helper()
	pats, err := traffic.ParsePatterns("uniform")
	if err != nil {
		t.Fatal(err)
	}
	points := []DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	variants := []string{dsent.VariantBaseline, dsent.VariantMODetector}
	sc := DefaultFaultSweep()
	sc.Rates = []float64{0, 0.1, 0.3}
	sc.Epochs = 3
	sc.Workload.Cycles = 300
	sc.NoC.MaxCycles = 20000
	o := DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4
	return points, variants, pats, sc, o
}

func TestFaultSweepShape(t *testing.T) {
	points, variants, pats, sc, o := faultFixture(t)
	results, err := FaultSweep(context.Background(), []topology.Kind{topology.Mesh},
		points, variants, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(points) * len(variants) * len(pats); len(results) != want {
		t.Fatalf("%d results, want %d", len(results), want)
	}
	for i, r := range results {
		if len(r.Points) != len(sc.Rates) {
			t.Fatalf("result %d has %d points, want %d", i, len(r.Points), len(sc.Rates))
		}
		healthy := r.Points[0]
		if healthy.FaultRate != 0 || healthy.Availability != 1 || healthy.DownLinkFrac != 0 {
			t.Fatalf("result %d healthy point degraded: %+v", i, healthy)
		}
		if healthy.PacketsUnroutable != 0 || healthy.SaturatedEpochs != 0 {
			t.Fatalf("result %d healthy point lost traffic: %+v", i, healthy)
		}
		if r.Variant == dsent.VariantBaseline && (healthy.Retransmits != 0 || healthy.PacketsDropped != 0) {
			t.Fatalf("result %d baseline healthy point saw faults: %+v", i, healthy)
		}
		if healthy.CLEAR <= 0 || healthy.CLEARDegradation != 1 {
			t.Fatalf("result %d healthy CLEAR reference broken: %+v", i, healthy)
		}
		for _, p := range r.Points {
			if p.PacketsDelivered+p.PacketsDropped != p.PacketsInjected {
				t.Fatalf("result %d rate %v loses packets: %+v", i, p.FaultRate, p)
			}
			if p.PacketsDelivered > 0 && p.FJPerBit <= 0 && p.SaturatedEpochs == 0 {
				t.Fatalf("result %d rate %v delivered packets but priced nothing", i, p.FaultRate)
			}
		}
		// The top of the ladder must take links down everywhere (whether
		// that partitions pairs depends on the fabric's redundancy).
		worst := r.Points[len(r.Points)-1]
		if worst.DownLinkFrac <= 0 {
			t.Fatalf("result %d rate %v downed no links: %+v", i, worst.FaultRate, worst)
		}
		if worst.Availability < 1 != (worst.PacketsUnroutable > 0) && worst.PacketsInjected > 0 {
			t.Fatalf("result %d rate %v availability %v inconsistent with %d unroutable packets",
				i, worst.FaultRate, worst.Availability, worst.PacketsUnroutable)
		}
	}
	// Across the matrix, the top rate must actually partition someone:
	// availability curves that never leave 1.0 test nothing.
	severed := false
	for _, r := range results {
		worst := r.Points[len(r.Points)-1]
		severed = severed || (worst.Availability < 1 && worst.PacketsUnroutable > 0)
	}
	if !severed {
		t.Fatal("no cell lost availability at the top fault rate")
	}
}

// TestFaultSweepZeroFaultDifferential is the acceptance criterion's
// differential test: the rate-0 point of a baseline-variant cell must be
// bit-identical to a hand-written epoch loop that never touches the fault
// machinery — same simulator, same workload seeds (the documented
// Workload.Seed + epoch chain), no FaultProfile, energy priced with the
// same thermal-trimming overhead recurrence.
func TestFaultSweepZeroFaultDifferential(t *testing.T) {
	_, _, pats, sc, o := faultFixture(t)
	point := DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}
	results, err := FaultSweep(context.Background(), []topology.Kind{topology.Mesh},
		[]DesignPoint{point}, []string{dsent.VariantBaseline}, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := results[0].Points[0]

	net, tab, err := o.NetworkAndTable(point)
	if err != nil {
		t.Fatal(err)
	}
	model, err := energy.NewModel(net, o.DSENT)
	if err != nil {
		t.Fatal(err)
	}
	base, err := pats[0].Generate(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := base.ScaledToMaxRate(sc.Load)
	tc := sc.Thermal
	tc.BaseFlitErrorProb = 0
	th, err := fault.NewThermal(net, tc)
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPoint{FaultRate: 0, Availability: 1, CLEARDegradation: 1}
	var totalJ, totalBits, latWeighted, clearSum float64
	var clearN int
	for e := 0; e < sc.Epochs; e++ {
		w := sc.Workload
		w.Seed = sc.Workload.Seed + int64(e)
		pkts, err := w.Generate(net, tm)
		if err != nil {
			t.Fatal(err)
		}
		want.PacketsInjected += int64(len(pkts))
		overheadW := th.TrimmingOverheadW()
		want.TrimOverheadW += overheadW
		sim, err := noc.New(net, tab, sc.NoC)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.InjectAll(pkts); err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		want.PacketsDelivered += st.PacketsEjected
		latWeighted += st.AvgPacketLatencyClks * float64(st.PacketsEjected)
		re, err := model.PriceWithStaticOverhead(st, overheadW)
		if err != nil {
			t.Fatal(err)
		}
		totalJ += re.TotalJ
		totalBits += re.BitsEjected
		c, err := model.SimulatedCLEARWithOverhead(st, sc.Load, overheadW)
		if err != nil {
			t.Fatal(err)
		}
		clearSum += c.Value
		clearN++
		if err := th.Advance(st); err != nil {
			t.Fatal(err)
		}
	}
	want.TrimOverheadW /= float64(sc.Epochs)
	want.MaxDrift = th.MaxDrift()
	want.AvgLatencyClks = latWeighted / float64(want.PacketsDelivered)
	want.FJPerBit = totalJ / totalBits / units.Femto
	want.CLEAR = clearSum / float64(clearN)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-fault point diverged from the fault-free loop:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestFaultSweepSerialParallelIdentical enforces the determinism contract
// on the fault axis: bit-identical results for any worker count (run under
// -race by make race), across both geometries and both device variants.
func TestFaultSweepSerialParallelIdentical(t *testing.T) {
	points, variants, pats, sc, o := faultFixture(t)
	kinds := []topology.Kind{topology.Mesh}
	serial, err := FaultSweep(context.Background(), kinds, points, variants, pats, sc, o,
		runner.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FaultSweep(context.Background(), kinds, points, variants, pats, sc, o,
		runner.Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel fault sweeps diverge")
	}
}

// TestFaultSweepVariantBER checks the device-variant coupling: a variant
// with a nonzero error floor must produce retransmissions even on a
// healthy fabric, and every one of them must be delivered or dropped
// explicitly — never lost.
func TestFaultSweepVariantBER(t *testing.T) {
	points, _, pats, sc, o := faultFixture(t)
	// The MODetector's nominal error floor (2e-4 per traversal) needs
	// traffic volume and thermal gain to show on a short run: a longer
	// horizon and an aggressive drift model make the corruption draw's
	// fixed-seed outcome solidly nonzero without touching the registry.
	sc.Workload.Cycles = 2000
	sc.Thermal.HeatPerUtil = 100
	sc.Thermal.BERGainPerDrift = 100
	results, err := FaultSweep(context.Background(), []topology.Kind{topology.Mesh},
		points[1:], []string{dsent.VariantMODetector}, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	healthy := results[0].Points[0]
	if healthy.Retransmits == 0 {
		t.Fatalf("MODetector error floor produced no retransmissions: %+v", healthy)
	}
	if healthy.PacketsDelivered+healthy.PacketsDropped != healthy.PacketsInjected {
		t.Fatalf("packets lost silently: %+v", healthy)
	}
	// Thermal drift heats the express links, so trimming overhead and
	// drift state must be visible in the aggregate.
	if healthy.MaxDrift <= 0 || healthy.TrimOverheadW <= 0 {
		t.Fatalf("thermal feedback left no trace: %+v", healthy)
	}
	// The error floor must cost energy relative to the same cell without
	// it (same fabric, baseline variant): retransmitted hops are priced.
	baseline, err := FaultSweep(context.Background(), []topology.Kind{topology.Mesh},
		points[1:], []string{dsent.VariantBaseline}, pats, sc, o, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.PacketsDelivered == baseline[0].Points[0].PacketsDelivered &&
		healthy.FJPerBit <= baseline[0].Points[0].FJPerBit {
		t.Fatalf("BER-laden run not costlier than clean run: %v vs %v fJ/bit",
			healthy.FJPerBit, baseline[0].Points[0].FJPerBit)
	}
}

func TestFaultSweepValidation(t *testing.T) {
	points, variants, pats, sc, o := faultFixture(t)
	ctx := context.Background()
	kinds := []topology.Kind{topology.Mesh}
	if _, err := FaultSweep(ctx, kinds, points, nil, pats, sc, o, runner.Config{}); err == nil {
		t.Error("empty variant list must fail")
	}
	if _, err := FaultSweep(ctx, kinds, points, []string{"no-such-device"}, pats, sc, o, runner.Config{}); err == nil {
		t.Error("unknown variant must fail")
	}
	bad := sc
	bad.Rates = []float64{0.1, 0.2} // missing the healthy reference
	if _, err := FaultSweep(ctx, kinds, points, variants, pats, bad, o, runner.Config{}); err == nil {
		t.Error("ladder without rate 0 must fail")
	}
	bad = sc
	bad.Rates = []float64{0, 0.3, 0.2}
	if _, err := FaultSweep(ctx, kinds, points, variants, pats, bad, o, runner.Config{}); err == nil {
		t.Error("non-ascending ladder must fail")
	}
	bad = sc
	bad.Epochs = 0
	if _, err := FaultSweep(ctx, kinds, points, variants, pats, bad, o, runner.Config{}); err == nil {
		t.Error("zero epochs must fail")
	}
	bad = sc
	bad.Thermal.Decay = math.NaN()
	if _, err := FaultSweep(ctx, kinds, points, variants, pats, bad, o, runner.Config{}); err == nil {
		t.Error("NaN thermal decay must fail")
	}
}
