package core

import (
	"sync"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// NetworkCache memoizes built topologies and their routing tables, keyed by
// the full (topology.Config, routing.Policy) pair. Design-space sweeps
// revisit the same handful of networks constantly — every rate of a
// load-latency ladder, every kernel of a trace batch and every repetition
// of a benchmark shares the point's network — and building the O(n²)
// routing table dominated sweep setup before caching.
//
// Both cached values are immutable after construction (the repository-wide
// read-only contract in CHANGES.md), so one instance is safely shared by
// any number of concurrent jobs, and the stable pointers double as the
// identity that noc.SimPool keys simulator reuse on.
//
// Sweeps that must bound cache lifetime (a long-lived server exploring
// many distinct geometries) set Options.Cache to a scoped NewNetworkCache
// and drop it afterwards; the default is one process-wide cache. A nil
// *NetworkCache is valid and builds uncached.
type NetworkCache struct {
	mu sync.Mutex
	m  map[netKey]*netEntry
	tm map[tmKey]*tmEntry
}

type netKey struct {
	topo   topology.Config
	policy routing.Policy
}

// netEntry builds at most once per key; the once runs outside the cache
// lock so concurrent misses on different keys build in parallel.
type netEntry struct {
	once sync.Once
	net  *topology.Network
	tab  *routing.Table
	err  error
}

// NewNetworkCache returns an empty cache.
func NewNetworkCache() *NetworkCache {
	return &NetworkCache{
		m:  make(map[netKey]*netEntry),
		tm: make(map[tmKey]*tmEntry),
	}
}

// defaultNetCache backs Options.NetworkAndTable when Options.Cache is nil:
// sweeps in one process share built networks across calls, which is what
// lets repeated explorations and benchmark iterations run allocation-free
// on the topology side. Entries are a few hundred kB each (the routing
// table is the O(n²) part) and live for the process.
var defaultNetCache = NewNetworkCache()

// Get returns the built network and routing table for a configuration,
// constructing them on first use.
func (c *NetworkCache) Get(topo topology.Config, policy routing.Policy) (*topology.Network, *routing.Table, error) {
	if c == nil {
		return buildNetworkAndTable(topo, policy)
	}
	// Canonicalize so "" and "mesh" (and zero vs default cmesh
	// concentration) share one entry.
	key := netKey{topo: topo.Canonical(), policy: policy}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &netEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.net, e.tab, e.err = buildNetworkAndTable(topo, policy)
	})
	return e.net, e.tab, e.err
}

func buildNetworkAndTable(topo topology.Config, policy routing.Policy) (*topology.Network, *routing.Table, error) {
	net, err := topology.Build(topo)
	if err != nil {
		return nil, nil, err
	}
	tab, err := routing.Build(net, policy)
	if err != nil {
		return nil, nil, err
	}
	return net, tab, nil
}

// cache resolves the cache the Options route through: the explicit one
// when set, the process-wide default otherwise.
func (o Options) cache() *NetworkCache {
	if o.Cache != nil {
		return o.Cache
	}
	return defaultNetCache
}

// NetworkAndTable resolves a design point to its (shared, immutable)
// network and routing table through the Options' cache (Options.Cache, or
// the process-wide default). Plain-mesh points normalize the unused
// express technology so all Hops == 0 variants of a base technology share
// one entry.
func (o Options) NetworkAndTable(p DesignPoint) (*topology.Network, *routing.Table, error) {
	c := o.Topology
	c.BaseTech = p.Base
	c.ExpressTech = p.Express
	c.ExpressHops = p.Hops
	if c.ExpressHops == 0 {
		c.ExpressTech = c.BaseTech // unused by Build; fold cache keys
	}
	return o.cache().Get(c, o.Policy)
}

// tmKey identifies a Soteriou matrix: the statistical model reads only the
// node grid geometry (NumNodes, Width, Height and the kind's base-fabric
// Distance), never the link technologies, so every design point of a W×H
// sweep on one topology kind shares one matrix. The matrix is immutable
// after construction.
type tmKey struct {
	kind topology.Kind
	w, h int
	cfg  traffic.SoteriouConfig
}

type tmEntry struct {
	once sync.Once
	m    *traffic.Matrix
	err  error
}

// Soteriou memoizes traffic.Soteriou per grid geometry and model
// configuration: the matrix is O(n²) and was rebuilt identically for every
// design point of a sweep. A nil cache builds uncached.
func (c *NetworkCache) Soteriou(net *topology.Network, cfg traffic.SoteriouConfig) (*traffic.Matrix, error) {
	if c == nil {
		return traffic.Soteriou(net, cfg)
	}
	key := tmKey{kind: net.Config.Canonical().Kind, w: net.Width, h: net.Height, cfg: cfg}
	c.mu.Lock()
	e, ok := c.tm[key]
	if !ok {
		e = &tmEntry{}
		c.tm[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.m, e.err = traffic.Soteriou(net, cfg)
	})
	return e.m, e.err
}
