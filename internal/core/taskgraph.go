package core

import (
	"context"
	"fmt"

	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// TaskGraphSweepConfig parameterizes a closed-loop task-graph sweep.
type TaskGraphSweepConfig struct {
	// Gen shapes the generated operator graphs (payload, compute,
	// microbatches).
	Gen taskgraph.GenConfig
	// NoC configures the cycle-accurate simulator.
	NoC noc.Config
}

// DefaultTaskGraphSweep runs the registry's operators at the default
// payload/compute on the Table II router. Closed-loop runs always drain on
// a valid DAG; the cycle cap only backstops runaway congestion.
func DefaultTaskGraphSweep() TaskGraphSweepConfig {
	cfg := noc.DefaultConfig()
	cfg.MaxCycles = 5_000_000
	return TaskGraphSweepConfig{Gen: taskgraph.DefaultGenConfig(), NoC: cfg}
}

// Validate checks the sweep parameters.
func (c TaskGraphSweepConfig) Validate() error {
	if err := c.Gen.Validate(); err != nil {
		return err
	}
	return c.NoC.Validate()
}

// TaskGraphResult is one (topology kind, design point, graph) cell of a
// closed-loop sweep: the end-to-end makespan against its contention-free
// lower bound, plus the per-message network latency distribution.
type TaskGraphResult struct {
	// Kind is the topology family the cell ran on.
	Kind  topology.Kind
	Point DesignPoint
	// Graph is the generator name; Messages and TotalFlits its size.
	Graph      string
	Messages   int
	TotalFlits int64
	// MakespanClks is the cycle the last tail flit ejected — the
	// workload's end-to-end completion time under congestion feedback.
	MakespanClks int64
	// LowerBoundClks folds zero-load message latencies over the DAG's
	// critical path (taskgraph.CriticalPathClks): the makespan of an ideal
	// contention-free network. The simulated makespan can only meet it
	// (uncongested schedules) or exceed it (congestion stretching the
	// schedule).
	LowerBoundClks int64
	// Stretch is MakespanClks/LowerBoundClks ≥ 1 — the congestion-feedback
	// figure of merit (1.0 = the network never delayed the schedule).
	Stretch float64
	// AvgLatencyClks and P99LatencyClks summarize per-message network
	// latency (release→tail-ejection, compute excluded).
	AvgLatencyClks float64
	P99LatencyClks float64
	// Cycles is the simulated horizon (= MakespanClks at drain).
	Cycles int64
}

// PointLabel renders the design point for tables, kind-aware exactly like
// PatternSweepResult.PointLabel.
func (r TaskGraphResult) PointLabel() string {
	return PatternSweepResult{Kind: r.Kind, Point: r.Point}.PointLabel()
}

// TaskGraphSweep runs the design-point × graph closed-loop matrix on the
// worker pool: each (point, graph) job replays the generated message DAG
// through noc.InjectClosedLoop on a pooled simulator and scores the
// resulting makespan against the contention-free critical path. Graphs are
// generated once up front (generators are pure, so this is only an
// optimization) and shared read-only; results come back point-major,
// graph-minor and are bit-identical for any worker count — the standard
// determinism contract. The first failure cancels the batch.
func TaskGraphSweep(ctx context.Context, points []DesignPoint, gens []taskgraph.Generator,
	sc TaskGraphSweepConfig, o Options, pool runner.Config) ([]TaskGraphResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("core: task-graph sweep with no graphs")
	}
	nets := make([]*topology.Network, len(points))
	tabs := make([]*routing.Table, len(points))
	for i, point := range points {
		net, tab, err := o.NetworkAndTable(point)
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", point, err)
		}
		nets[i], tabs[i] = net, tab
	}
	graphs, err := generateGraphs(gens, o.Topology.Width*o.Topology.Height, sc.Gen)
	if err != nil {
		return nil, err
	}
	sims := noc.NewSimPool()
	n := len(points) * len(graphs)
	return runner.Map(ctx, n, pool, func(ctx context.Context, i int) (TaskGraphResult, error) {
		pi, g := i/len(graphs), graphs[i%len(graphs)]
		point, net, tab := points[pi], nets[pi], tabs[pi]
		res, err := runTaskGraph(g, net, tab, sc.NoC, sims)
		if err != nil {
			return TaskGraphResult{}, fmt.Errorf("core: %v / %s: %w", point, g.Name, err)
		}
		res.Kind = o.Topology.Canonical().Kind
		res.Point = point
		return res, nil
	})
}

// TopologyTaskGraphSweep runs the kind × graph closed-loop matrix: every
// selected topology family at the Options' grid with the plain base
// technology, replaying each generated DAG exactly like TaskGraphSweep.
// Results come back kind-major, graph-minor, bit-identical for any worker
// count. Express hybrids stay a mesh-family axis: sweep them per kind
// through TaskGraphSweep.
func TopologyTaskGraphSweep(ctx context.Context, kinds []topology.Kind, gens []taskgraph.Generator,
	sc TaskGraphSweepConfig, o Options, pool runner.Config) ([]TaskGraphResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("core: task-graph sweep with no kinds")
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("core: task-graph sweep with no graphs")
	}
	plain := DesignPoint{Base: o.Topology.BaseTech, Express: o.Topology.BaseTech, Hops: 0}
	nets := make([]*topology.Network, len(kinds))
	tabs := make([]*routing.Table, len(kinds))
	for i, kind := range kinds {
		net, tab, err := o.WithKind(kind).NetworkAndTable(plain)
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", kind, err)
		}
		nets[i], tabs[i] = net, tab
	}
	graphs, err := generateGraphs(gens, o.Topology.Width*o.Topology.Height, sc.Gen)
	if err != nil {
		return nil, err
	}
	sims := noc.NewSimPool()
	n := len(kinds) * len(graphs)
	return runner.Map(ctx, n, pool, func(ctx context.Context, i int) (TaskGraphResult, error) {
		ki, g := i/len(graphs), graphs[i%len(graphs)]
		kind, net, tab := kinds[ki], nets[ki], tabs[ki]
		res, err := runTaskGraph(g, net, tab, sc.NoC, sims)
		if err != nil {
			return TaskGraphResult{}, fmt.Errorf("core: %v / %s: %w", kind, g.Name, err)
		}
		res.Kind = net.Config.Kind // canonical (Build resolved it)
		res.Point = plain
		return res, nil
	})
}

// generateGraphs builds and validates one graph per generator for a node
// count.
func generateGraphs(gens []taskgraph.Generator, numNodes int, cfg taskgraph.GenConfig) ([]*taskgraph.Graph, error) {
	graphs := make([]*taskgraph.Graph, len(gens))
	for i, gen := range gens {
		g, err := gen.Generate(numNodes, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: graph %s: %w", gen.Name(), err)
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("core: graph %s: %w", gen.Name(), err)
		}
		graphs[i] = g
	}
	return graphs, nil
}

// runTaskGraph replays one DAG through a pooled closed-loop simulation and
// scores it against the contention-free critical path.
func runTaskGraph(g *taskgraph.Graph, net *topology.Network, tab *routing.Table,
	cfg noc.Config, sims *noc.SimPool) (TaskGraphResult, error) {
	pkts := make([]noc.Packet, len(g.Messages))
	deps := make([][]int, len(g.Messages))
	for i, m := range g.Messages {
		pkts[i] = noc.Packet{Src: m.Src, Dst: m.Dst, SizeFlits: m.SizeFlits, Release: m.ComputeClks}
		deps[i] = m.Deps
	}
	s, err := sims.Get(net, tab, cfg)
	if err != nil {
		return TaskGraphResult{}, err
	}
	if err := s.InjectClosedLoop(pkts, deps); err != nil {
		return TaskGraphResult{}, err
	}
	st, err := s.Run()
	sims.Put(s)
	if err != nil {
		return TaskGraphResult{}, err
	}
	// The bound folds the simulator's exact zero-load message latency
	// (pinned by TestZeroLoadLatencyMatchesAnalytic) over the DAG: an
	// uncongested serial schedule meets it exactly.
	lb, err := g.CriticalPathClks(func(m taskgraph.Message) int64 {
		return int64(tab.LatencyClks(m.Src, m.Dst, cfg.PipelineClks) + m.SizeFlits - 1)
	})
	if err != nil {
		return TaskGraphResult{}, err
	}
	res := TaskGraphResult{
		Graph:          g.Name,
		Messages:       len(g.Messages),
		TotalFlits:     g.TotalFlits(),
		MakespanClks:   st.MakespanClks,
		LowerBoundClks: lb,
		AvgLatencyClks: st.AvgPacketLatencyClks,
		P99LatencyClks: st.P99PacketLatencyClks,
		Cycles:         st.Cycles,
	}
	if lb > 0 {
		res.Stretch = float64(res.MakespanClks) / float64(lb)
	}
	return res, nil
}
