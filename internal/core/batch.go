package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// EvalCell is one serving-layer evaluation request: a single (topology
// kind, geometry, design point, traffic source, offered load) sample of
// the matrices PatternSweep and EnergySweep walk as cross products. A
// serving front end (internal/serve) coalesces heterogeneous queued
// queries into one EvalCells call, so cells carry their own kind,
// geometry and rate instead of sharing the sweep's axes.
type EvalCell struct {
	// Kind selects the topology family ("" = the Options' kind).
	Kind topology.Kind
	// Width and Height override the Options' grid when positive.
	Width, Height int
	// Point is the technology design point to build.
	Point DesignPoint
	// Pattern is the synthetic traffic source; nil selects Trace mode.
	Pattern traffic.Pattern
	// Trace is the NPB kernel configuration replayed when Pattern is nil.
	Trace *npb.Config
	// Rate is the offered peak per-node injection rate in flits/cycle
	// (pattern mode only; trace volumes are fixed by the kernel).
	Rate float64
	// Energy prices the run with the activity-based energy model
	// (internal/energy) and evaluates the simulated CLEAR.
	Energy bool
}

// EvalCellResult is one cell's measured outcome.
//
// Unlike the sweep entry points, a cell failure is captured in Err rather
// than cancelling the batch: a serving layer must answer every query of a
// coalesced batch independently, so one client's unsatisfiable request
// (e.g. transpose on a non-square grid) cannot fail its neighbours. Err
// is a deterministic function of the cell, preserving the contract that
// batched results are bit-identical to serial evaluation.
type EvalCellResult struct {
	// Err reports this cell's failure; the other fields are zero.
	Err error
	// Saturated marks runs that failed to drain within the cycle cap;
	// such runs carry latency of the aborted horizon and no pricing.
	Saturated bool
	// AvgLatencyClks and P99LatencyClks summarize packet latency.
	AvgLatencyClks, P99LatencyClks float64
	// Cycles and Packets are the run's simulated extent.
	Cycles, Packets int64
	// Run is the measured energy accounting (Energy cells only).
	Run energy.RunEnergy
	// CLEAR is the simulated eq. 2 evaluation (Energy cells only; trace
	// cells fall back to the measured peak source rate).
	CLEAR energy.CLEAR
}

// evalEnv is the shared, read-only per-(kind, geometry, point) context of
// a batch: the built network, its routing table and — when any cell of
// the batch prices energy — the folded energy model.
type evalEnv struct {
	net   *topology.Network
	tab   *routing.Table
	model *energy.Model
	err   error
}

type evalEnvKey struct {
	kind          topology.Kind
	width, height int
	point         DesignPoint
}

// options returns the Options with the cell's kind and geometry applied.
func (c EvalCell) options(o Options) Options {
	if c.Kind != "" {
		o.Topology.Kind = c.Kind
	}
	if c.Width > 0 {
		o.Topology.Width = c.Width
	}
	if c.Height > 0 {
		o.Topology.Height = c.Height
	}
	return o
}

func (c EvalCell) envKey() evalEnvKey {
	return evalEnvKey{kind: c.Kind, width: c.Width, height: c.Height, point: c.Point}
}

// EvalCells evaluates a heterogeneous batch of serving cells on the
// worker pool: networks, tables and energy models are resolved once per
// distinct (kind, geometry, point) through the Options' cache and shared
// read-only, simulators are recycled through one batch-wide noc.SimPool,
// and each cell runs its own traffic source at its own rate. Every cell
// is a pure function of its fields over read-only inputs and results are
// collected in cell order, so the output is bit-identical for any worker
// count and any batch composition — evaluating a cell alone, serially, or
// coalesced with arbitrary neighbours yields the same bytes. Per-cell
// failures land in EvalCellResult.Err; EvalCells itself fails only on
// context cancellation or an empty batch.
func EvalCells(ctx context.Context, cells []EvalCell, sc EnergySweepConfig, o Options, pool runner.Config) ([]EvalCellResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: empty evaluation batch")
	}
	if sc.Workload.SizeFlits <= 0 || sc.Workload.Cycles <= 0 {
		return nil, fmt.Errorf("core: invalid batch workload %+v", sc.Workload)
	}
	// Resolve the distinct environments serially up front (cheap: the
	// network cache memoizes construction) and share them read-only.
	envs := map[evalEnvKey]*evalEnv{}
	for _, c := range cells {
		key := c.envKey()
		env, ok := envs[key]
		if !ok {
			env = &evalEnv{}
			env.net, env.tab, env.err = c.options(o).NetworkAndTable(c.Point)
			envs[key] = env
		}
		if c.Energy && env.err == nil && env.model == nil {
			env.model, env.err = energy.NewModel(env.net, o.DSENT)
		}
	}
	sims := noc.NewSimPool()
	return runner.Map(ctx, len(cells), pool, func(ctx context.Context, i int) (EvalCellResult, error) {
		if err := ctx.Err(); err != nil {
			return EvalCellResult{}, err
		}
		return evalOneCell(cells[i], envs[cells[i].envKey()], sc, sims), nil
	})
}

// evalOneCell runs one cell against its resolved environment.
func evalOneCell(c EvalCell, env *evalEnv, sc EnergySweepConfig, sims *noc.SimPool) EvalCellResult {
	fail := func(err error) EvalCellResult {
		return EvalCellResult{Err: fmt.Errorf("core: %v: %w", c.Point, err)}
	}
	if env.err != nil {
		return fail(env.err)
	}
	var pkts []noc.Packet
	switch {
	case c.Pattern != nil && c.Trace != nil:
		return fail(fmt.Errorf("cell has both a pattern and a trace"))
	case c.Pattern != nil:
		if c.Rate <= 0 {
			return fail(fmt.Errorf("pattern cell needs a positive rate, got %v", c.Rate))
		}
		base, err := c.Pattern.Generate(env.net, 1)
		if err != nil {
			return fail(err)
		}
		if err := base.Validate(); err != nil {
			return fail(err)
		}
		pkts, err = sc.Workload.Generate(env.net, base.ScaledToMaxRate(c.Rate))
		if err != nil {
			return fail(err)
		}
	case c.Trace != nil:
		events, err := npb.Generate(*c.Trace)
		if err != nil {
			return fail(err)
		}
		pkts, err = trace.Packetize(events, env.net.NumNodes(), trace.DefaultPacketize())
		if err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("cell has neither a pattern nor a trace"))
	}

	sim, err := sims.Get(env.net, env.tab, sc.NoC)
	if err != nil {
		return fail(err)
	}
	if err := sim.InjectAll(pkts); err != nil {
		sims.Put(sim)
		return fail(err)
	}
	st, runErr := sim.Run()
	sims.Put(sim)
	res := EvalCellResult{
		AvgLatencyClks: st.AvgPacketLatencyClks,
		P99LatencyClks: st.P99PacketLatencyClks,
		Cycles:         st.Cycles,
		Packets:        st.PacketsEjected,
	}
	if runErr != nil {
		if !errors.Is(runErr, noc.ErrSaturated) {
			return fail(runErr)
		}
		// Failure to drain is the saturation signal, exactly as in
		// EnergySweep: the cell answers "saturated", it does not fail.
		res.Saturated = true
		return res
	}
	if c.Energy {
		if res.Run, err = env.model.Price(st); err != nil {
			return fail(err)
		}
		if res.CLEAR, err = env.model.SimulatedCLEAR(st, c.Rate); err != nil {
			return fail(err)
		}
	}
	return res
}
