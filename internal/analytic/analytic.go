// Package analytic implements the paper's Section III-B design-space
// evaluation: given a topology, a routing table and a synthetic traffic
// matrix, it computes per-channel injection rates, the network-level CLEAR
// figure of merit (eq. 2) and its four ingredients:
//
//	          (Σ_i C_i) / N
//	CLEAR = ───────────────────────────────          (eq. 2)
//	        Latency × Power × Area × R
//
// where C_i are channel capacities, Latency is the traffic-weighted
// zero-load packet head latency in clocks, Power is total (static + dynamic)
// watts at the operating injection rate, Area is silicon area, and
// R = dU/dr is the rate of growth of mean channel utilization with the
// injection rate (eq. 3) — a topology congestion figure: networks that
// saturate faster score a larger R and hence a lower CLEAR.
//
// Power uses the modified-DSENT component models; the paper argues Power
// (not energy/bit) is the estimable quantity at exploration time because
// total runtime is application dependent while power follows directly from
// the injection rate.
package analytic

import (
	"fmt"

	"repro/internal/dsent"
	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

// Params carries the evaluation knobs shared across the design space.
type Params struct {
	// DSENT is the component cost configuration (Table II defaults).
	DSENT dsent.Config
	// RouterPipelineClks is the router pipeline depth (Table II: 3).
	RouterPipelineClks int
}

// DefaultParams returns the Table II evaluation parameters.
func DefaultParams() Params {
	return Params{DSENT: dsent.DefaultConfig(), RouterPipelineClks: 3}
}

// Result is the evaluation of one network under one traffic matrix.
type Result struct {
	// Description names the evaluated network.
	Description string
	// CapabilityGbpsPerNode is Table III's C.
	CapabilityGbpsPerNode float64
	// AvgLatencyClks is the traffic-weighted zero-load head latency.
	AvgLatencyClks float64
	// StaticW, DynamicW and PowerW decompose total power at the
	// operating point.
	StaticW, DynamicW, PowerW float64
	// AreaM2 is total router + link silicon area.
	AreaM2 float64
	// AvgUtilization is U, the mean channel utilization.
	AvgUtilization float64
	// MaxUtilization spots congested channels (saturation indicator).
	MaxUtilization float64
	// R is dU/dr (eq. 3); utilization is linear in the injection scale,
	// so R = U / r at the operating point.
	R float64
	// CLEAR is eq. 2 evaluated in the paper's units: Gb/s, clks, W, mm².
	CLEAR float64
	// ExpressFlitFraction is the share of flit-hops riding express
	// channels (diagnostic).
	ExpressFlitFraction float64
	// MeanHops is the traffic-weighted hop count.
	MeanHops float64
}

// Evaluate runs the Section III-B analysis.
func Evaluate(net *topology.Network, tab *routing.Table, tm *traffic.Matrix, p Params) (Result, error) {
	if err := p.DSENT.Validate(); err != nil {
		return Result{}, err
	}
	if p.RouterPipelineClks <= 0 {
		return Result{}, fmt.Errorf("analytic: non-positive pipeline depth %d", p.RouterPipelineClks)
	}
	if tm.N != net.NumNodes() {
		return Result{}, fmt.Errorf("analytic: traffic for %d nodes on %d-node network", tm.N, net.NumNodes())
	}
	if err := tm.Validate(); err != nil {
		return Result{}, err
	}

	n := net.NumNodes()
	linkLoad := make([]float64, len(net.Links)) // flits/cycle per channel
	routerLoad := make([]float64, n)            // flit traversals/cycle per router

	var latSum, rateSum, hopSum, expressFlits, totalFlitHops float64
	row := make([]float64, n) // reusable per-source rate row (streamed matrices have no dense Rates)
	for s := 0; s < n; s++ {
		src := topology.NodeID(s)
		row = tm.Row(s, row)
		for d := 0; d < n; d++ {
			rate := row[d]
			if rate == 0 || s == d {
				continue
			}
			dst := topology.NodeID(d)
			lat := p.RouterPipelineClks // ejection router
			routerLoad[s] += rate
			// Walk the route link by link instead of materializing
			// tab.Path: this loop runs for every (src, dst) pair of
			// every design point, and the per-pair path slices used
			// to dominate a sweep's allocations.
			hops := 0
			for at := src; at != dst; {
				l := tab.Hop(at, dst, hops)
				if l == nil {
					return Result{}, fmt.Errorf("analytic: %d -> %d: %w", src, dst, tab.HopErr(at, dst, hops))
				}
				linkLoad[l.ID] += rate
				routerLoad[l.Dst] += rate
				lat += p.RouterPipelineClks + l.LatencyClks
				totalFlitHops += rate
				if l.Express {
					expressFlits += rate
				}
				at = l.Dst
				hops++
			}
			latSum += rate * float64(lat)
			hopSum += rate * float64(hops)
			rateSum += rate
		}
	}
	if rateSum == 0 {
		return Result{}, fmt.Errorf("analytic: empty traffic matrix")
	}

	// Utilization: channels carry one flit per cycle at capacity.
	var uSum, uMax float64
	for _, u := range linkLoad {
		uSum += u
		if u > uMax {
			uMax = u
		}
	}
	avgU := uSum / float64(len(net.Links))
	r := tm.MaxRowSum()
	R := avgU / r

	// Component costs.
	var staticW, areaM2, dynamicW float64
	clk := p.DSENT.ClockHz
	linkCosts := make(map[linkKey]dsent.LinkCost)
	for i, l := range net.Links {
		k := linkKey{l.Tech, l.LengthM}
		lc, ok := linkCosts[k]
		if !ok {
			var err error
			lc, err = dsent.Link(p.DSENT, l.Tech, l.LengthM)
			if err != nil {
				return Result{}, err
			}
			linkCosts[k] = lc
		}
		staticW += lc.StaticW
		areaM2 += lc.AreaM2
		dynamicW += linkLoad[i] * clk * lc.DynamicJPerFlit
	}
	routerCosts := make(map[int]dsent.RouterCost)
	for id := 0; id < n; id++ {
		ports := net.Ports(topology.NodeID(id))
		rc, ok := routerCosts[ports]
		if !ok {
			rc = dsent.ElectronicRouter(p.DSENT, ports)
			routerCosts[ports] = rc
		}
		staticW += rc.StaticW
		areaM2 += rc.AreaM2
		dynamicW += routerLoad[id] * clk * rc.DynamicJPerFlit
	}

	res := Result{
		Description:           net.String(),
		CapabilityGbpsPerNode: net.CapabilityGbpsPerNode(),
		AvgLatencyClks:        latSum / rateSum,
		StaticW:               staticW,
		DynamicW:              dynamicW,
		PowerW:                staticW + dynamicW,
		AreaM2:                areaM2,
		AvgUtilization:        avgU,
		MaxUtilization:        uMax,
		R:                     R,
		MeanHops:              hopSum / rateSum,
	}
	if totalFlitHops > 0 {
		res.ExpressFlitFraction = expressFlits / totalFlitHops
	}
	res.CLEAR = res.CapabilityGbpsPerNode /
		(res.AvgLatencyClks * res.PowerW * (res.AreaM2 / units.MillimetreSq) * res.R)
	return res, nil
}

type linkKey struct {
	t       tech.Technology
	lengthM float64
}
