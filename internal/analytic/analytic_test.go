package analytic

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

func network(t testing.TB, hops int, base, express tech.Technology) *topology.Network {
	t.Helper()
	c := topology.DefaultConfig()
	c.BaseTech = base
	c.ExpressTech = express
	c.ExpressHops = hops
	n, err := topology.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func evaluate(t testing.TB, net *topology.Network) Result {
	t.Helper()
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	tm := traffic.MustSoteriou(net, traffic.DefaultSoteriou())
	res, err := Evaluate(net, tab, tm, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTableIIIR pins the R column of Table III: 1.122 (plain), 0.808 (h=3),
// 0.885 (h=5), 1.050 (h=15), within 15% — R depends on the statistical
// traffic draw, so shape and magnitude are what we assert.
func TestTableIIIR(t *testing.T) {
	cases := []struct {
		hops int
		want float64
	}{
		{0, 1.122},
		{3, 0.808},
		{5, 0.885},
		{15, 1.050},
	}
	got := map[int]float64{}
	for _, c := range cases {
		res := evaluate(t, network(t, c.hops, tech.Electronic, tech.HyPPI))
		got[c.hops] = res.R
		if !units.WithinFactor(res.R, c.want, 1.15) {
			t.Errorf("hops=%d: R = %v, want ≈%v", c.hops, res.R, c.want)
		}
	}
	// The ordering must hold exactly: more express capacity → slower
	// utilization growth.
	if !(got[3] < got[5] && got[5] < got[15] && got[15] < got[0]) {
		t.Errorf("R ordering broken: %v", got)
	}
}

// TestTableIIICapabilityViaResult re-checks C through the Result path.
func TestTableIIICapabilityViaResult(t *testing.T) {
	if got := evaluate(t, network(t, 3, tech.Electronic, tech.HyPPI)).CapabilityGbpsPerNode; got != 218.75 {
		t.Errorf("C = %v, want 218.75", got)
	}
}

// TestFig5HeadlineCLEAR pins the paper's headline: augmenting an electronic
// mesh with HyPPI express links at hops=3 improves CLEAR by ≈1.8× over the
// plain electronic mesh.
func TestFig5HeadlineCLEAR(t *testing.T) {
	plain := evaluate(t, network(t, 0, tech.Electronic, tech.Electronic))
	hyppi3 := evaluate(t, network(t, 3, tech.Electronic, tech.HyPPI))
	ratio := hyppi3.CLEAR / plain.CLEAR
	if !units.WithinFactor(ratio, 1.8, 1.35) {
		t.Errorf("CLEAR(E+HyPPI@3)/CLEAR(E mesh) = %v, want ≈1.8", ratio)
	}
	if ratio <= 1.2 {
		t.Errorf("HyPPI express must clearly improve CLEAR, ratio %v", ratio)
	}
}

// TestFig5PhotonicExpressWorstOnElectronicBase: on an electronic base mesh,
// photonic express links are the worst option (static power explosion) —
// worse than electronic express links. We assert the strict ordering at
// hops 3 and 5, where the paper's effect is strongest (many photonic
// links); at hops=15 only 32 express channels remain and the gap is within
// modeling noise, so we only require photonics not to win decisively.
func TestFig5PhotonicExpressWorstOnElectronicBase(t *testing.T) {
	for _, hops := range []int{3, 5, 15} {
		e := evaluate(t, network(t, hops, tech.Electronic, tech.Electronic))
		p := evaluate(t, network(t, hops, tech.Electronic, tech.Photonic))
		h := evaluate(t, network(t, hops, tech.Electronic, tech.HyPPI))
		if hops != 15 && p.CLEAR >= e.CLEAR {
			t.Errorf("hops=%d: photonic express CLEAR %v should be below electronic %v", hops, p.CLEAR, e.CLEAR)
		}
		if hops == 15 && p.CLEAR > 1.3*e.CLEAR {
			t.Errorf("hops=15: photonic express CLEAR %v should not decisively beat electronic %v", p.CLEAR, e.CLEAR)
		}
		if h.CLEAR <= p.CLEAR {
			t.Errorf("hops=%d: HyPPI express CLEAR %v should beat photonic %v", hops, h.CLEAR, p.CLEAR)
		}
		if p.PowerW <= e.PowerW {
			t.Errorf("hops=%d: photonic express power %v should exceed electronic %v", hops, p.PowerW, e.PowerW)
		}
	}
}

// TestFig5CLEARDecreasesWithHops: fewer express channels at larger hop
// lengths reduce CLEAR (C falls, R rises).
func TestFig5CLEARDecreasesWithHops(t *testing.T) {
	h3 := evaluate(t, network(t, 3, tech.Electronic, tech.HyPPI))
	h5 := evaluate(t, network(t, 5, tech.Electronic, tech.HyPPI))
	h15 := evaluate(t, network(t, 15, tech.Electronic, tech.HyPPI))
	if !(h3.CLEAR > h5.CLEAR && h5.CLEAR > h15.CLEAR) {
		t.Errorf("CLEAR should fall with hop length: %v / %v / %v", h3.CLEAR, h5.CLEAR, h15.CLEAR)
	}
}

// TestFig5HyPPIBaseBestCLEAR: across base-mesh technologies, the HyPPI base
// mesh has the best CLEAR (smaller links, near-electronic power), and the
// photonic base the worst.
func TestFig5HyPPIBaseBestCLEAR(t *testing.T) {
	e := evaluate(t, network(t, 0, tech.Electronic, tech.Electronic))
	p := evaluate(t, network(t, 0, tech.Photonic, tech.Photonic))
	h := evaluate(t, network(t, 0, tech.HyPPI, tech.HyPPI))
	if !(h.CLEAR > e.CLEAR && e.CLEAR > p.CLEAR) {
		t.Errorf("base mesh CLEAR ordering HyPPI > E > Photonic broken: H=%v E=%v P=%v",
			h.CLEAR, e.CLEAR, p.CLEAR)
	}
	// Latency, though, favours the electronic base (1 clk links).
	if !(e.AvgLatencyClks < h.AvgLatencyClks) {
		t.Errorf("electronic base latency %v should beat optical base %v", e.AvgLatencyClks, h.AvgLatencyClks)
	}
	// Photonic base burns much more power than either.
	if p.PowerW < 3*e.PowerW {
		t.Errorf("photonic base power %v should dwarf electronic %v", p.PowerW, e.PowerW)
	}
	// HyPPI base area is the smallest.
	if !(h.AreaM2 < e.AreaM2 && h.AreaM2 < p.AreaM2) {
		t.Errorf("HyPPI base area %v should be smallest (E=%v, P=%v)", h.AreaM2, e.AreaM2, p.AreaM2)
	}
}

// TestTableIVStaticPower pins Table IV: electronic base mesh ≈1.53 W; HyPPI
// express adds ~15 mW at hops=3; photonic express adds ~1.5 W at hops=3 and
// ~0.3 W at hops=15.
func TestTableIVStaticPower(t *testing.T) {
	base := evaluate(t, network(t, 0, tech.Electronic, tech.Electronic))
	if !units.WithinFactor(base.StaticW, 1.53, 1.03) {
		t.Errorf("base static = %v W, want ≈1.53", base.StaticW)
	}
	cases := []struct {
		express tech.Technology
		hops    int
		want    float64
	}{
		{tech.Electronic, 3, 1.532},
		{tech.Electronic, 15, 1.547},
		{tech.Photonic, 3, 3.076},
		{tech.Photonic, 5, 2.458},
		{tech.Photonic, 15, 1.839},
		{tech.HyPPI, 3, 1.545},
		{tech.HyPPI, 5, 1.539},
		{tech.HyPPI, 15, 1.533},
	}
	for _, c := range cases {
		res := evaluate(t, network(t, c.hops, tech.Electronic, c.express))
		if !units.WithinFactor(res.StaticW, c.want, 1.04) {
			t.Errorf("%v@%d static = %v W, want ≈%v", c.express, c.hops, res.StaticW, c.want)
		}
	}
}

// TestLatencyImprovesWithExpress: adding express links cuts average latency.
func TestLatencyImprovesWithExpress(t *testing.T) {
	plain := evaluate(t, network(t, 0, tech.Electronic, tech.Electronic))
	h3 := evaluate(t, network(t, 3, tech.Electronic, tech.HyPPI))
	if h3.AvgLatencyClks >= plain.AvgLatencyClks {
		t.Errorf("express should cut latency: %v vs %v", h3.AvgLatencyClks, plain.AvgLatencyClks)
	}
	if h3.ExpressFlitFraction <= 0.1 {
		t.Errorf("express links should carry real traffic, fraction %v", h3.ExpressFlitFraction)
	}
	if plain.ExpressFlitFraction != 0 {
		t.Error("plain mesh cannot have express traffic")
	}
}

// TestCLEARNearlyFlatInInjectionRate: the paper notes only a small CLEAR
// reduction when sweeping the injection rate from 0.01 to 0.1.
func TestCLEARNearlyFlatInInjectionRate(t *testing.T) {
	net := network(t, 0, tech.Electronic, tech.Electronic)
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	base := traffic.MustSoteriou(net, traffic.DefaultSoteriou())
	var prev float64
	for i, r := range []float64{0.01, 0.05, 0.1} {
		res, err := Evaluate(net, tab, base.ScaledToMaxRate(r), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.CLEAR > prev {
			t.Errorf("CLEAR should not rise with injection rate: %v -> %v", prev, res.CLEAR)
		}
		prev = res.CLEAR
	}
	lo, _ := Evaluate(net, tab, base.ScaledToMaxRate(0.01), DefaultParams())
	hi, _ := Evaluate(net, tab, base.ScaledToMaxRate(0.1), DefaultParams())
	if ratio := lo.CLEAR / hi.CLEAR; ratio > 2.0 {
		t.Errorf("CLEAR drop 0.01→0.1 should be small, got factor %v", ratio)
	}
}

// TestUtilizationLinearInRate: R is rate independent because utilization is
// linear in the injection scale (fixed oblivious routes).
func TestUtilizationLinearInRate(t *testing.T) {
	net := network(t, 3, tech.Electronic, tech.HyPPI)
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	base := traffic.MustSoteriou(net, traffic.DefaultSoteriou())
	a, err := Evaluate(net, tab, base.ScaledToMaxRate(0.02), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(net, tab, base.ScaledToMaxRate(0.08), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(a.R, b.R, 1e-6) {
		t.Errorf("R must be injection-rate independent: %v vs %v", a.R, b.R)
	}
	if !units.ApproxEqual(b.AvgUtilization, 4*a.AvgUtilization, 1e-6) {
		t.Errorf("utilization must scale linearly: %v vs %v", a.AvgUtilization, b.AvgUtilization)
	}
}

// TestUtilizationBounds: all utilizations in [0, 1] at the paper's operating
// point (traces are constructed not to saturate).
func TestUtilizationBounds(t *testing.T) {
	for _, hops := range []int{0, 3, 15} {
		res := evaluate(t, network(t, hops, tech.Electronic, tech.HyPPI))
		if res.AvgUtilization <= 0 || res.AvgUtilization > 1 {
			t.Errorf("hops=%d avg utilization %v out of (0,1]", hops, res.AvgUtilization)
		}
		if res.MaxUtilization > 1 {
			t.Errorf("hops=%d: channel oversubscribed (%v) at injection 0.1", hops, res.MaxUtilization)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	net := network(t, 0, tech.Electronic, tech.Electronic)
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	if _, err := Evaluate(net, tab, traffic.NewMatrix(16), DefaultParams()); err == nil {
		t.Error("node-count mismatch must fail")
	}
	if _, err := Evaluate(net, tab, traffic.NewMatrix(256), DefaultParams()); err == nil {
		t.Error("empty traffic must fail")
	}
	bad := DefaultParams()
	bad.RouterPipelineClks = 0
	tm := traffic.MustSoteriou(net, traffic.DefaultSoteriou())
	if _, err := Evaluate(net, tab, tm, bad); err == nil {
		t.Error("zero pipeline depth must fail")
	}
	m := traffic.NewMatrix(256)
	m.Rates[3][3] = 1
	if _, err := Evaluate(net, tab, m, DefaultParams()); err == nil {
		t.Error("invalid traffic matrix must fail")
	}
}
