// Package runner is the concurrent experiment engine behind the
// repository's design-space sweeps: a bounded worker pool executing
// independent jobs with deterministic per-job seeding, ordered result
// collection, first-error cancellation and progress reporting.
//
// Every experiment batch in this repository — the Fig. 5 design-space
// exploration, the Fig. 4-style load-latency sweeps and the Fig. 6 NPB
// trace runs — is embarrassingly parallel: jobs share no mutable state and
// each is a pure function of its index plus read-only inputs. Map exploits
// exactly that shape.
//
// # Determinism contract
//
// Map guarantees that results are independent of the worker count and of
// the order in which jobs happen to complete:
//
//   - results are collected by job index, so out[i] always holds job i's
//     value — the ordering of a serial loop;
//   - jobs must not share mutable state; per-job randomness should derive
//     its seed from the job index (see Seed), never from a shared RNG;
//   - with these rules, Map(…, Config{Workers: 1}, …) and
//     Map(…, Config{Workers: 64}, …) return bit-identical slices.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config controls one pool run.
type Config struct {
	// Workers is the number of concurrent workers. Zero or negative
	// selects runtime.GOMAXPROCS(0); the count is further capped at the
	// job count.
	Workers int
	// Progress, when non-nil, is called after each job completes with the
	// number of finished jobs and the batch total. Calls are serialized
	// and done increases monotonically, but — under more than one worker
	// — not necessarily in job-index order.
	Progress func(done, total int)
}

// workerCount resolves the effective pool size for a batch of n jobs.
func (c Config) workerCount(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(ctx, i) for every i in [0, n) on a bounded worker pool and
// returns the results in job-index order. The first job error cancels the
// context passed to the remaining jobs and is returned after all started
// jobs finish; when several jobs fail, the lowest-indexed non-cancellation
// error wins, making the reported error deterministic. A single worker
// degenerates to a plain serial loop in the caller's goroutine.
func Map[T any](ctx context.Context, n int, cfg Config, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	workers := cfg.workerCount(n)
	if workers == 1 {
		// Serial fast path: identical to the historical sweep loops.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
			if cfg.Progress != nil {
				cfg.Progress(i+1, n)
			}
		}
		return out, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards done / Progress
		done int
		next atomic.Int64
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				out[i] = v
				if cfg.Progress != nil {
					mu.Lock()
					done++
					cfg.Progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: the lowest-indexed genuine failure
	// wins; cancellation errors from jobs aborted by that failure only
	// surface when nothing better exists.
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return nil, err
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	if err := parent.Err(); err != nil {
		// The caller's context died mid-batch: results are incomplete.
		return nil, err
	}
	return out, nil
}

// Seed derives a deterministic per-job RNG seed from a batch base seed and
// a job index using the SplitMix64 mixing function. Jobs seeded this way
// draw independent streams whatever the worker count or completion order —
// the per-job replacement for sharing one RNG across a sweep.
func Seed(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
