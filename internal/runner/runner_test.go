package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderedResults: out[i] holds job i's value for every worker count.
func TestMapOrderedResults(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 2, 4, 16, 200} {
		got, err := Map(context.Background(), n, Config{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts: jobs drawing randomness from
// Seed(base, i) produce bit-identical batches under any pool size.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n, base = 64, 12345
	job := func(_ context.Context, i int) (float64, error) {
		rng := rand.New(rand.NewSource(Seed(base, i)))
		sum := 0.0
		for k := 0; k < 1000; k++ {
			sum += rng.Float64()
		}
		return sum, nil
	}
	want, err := Map(context.Background(), n, Config{Workers: 1}, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		got, err := Map(context.Background(), n, Config{Workers: workers}, job)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v (serial)", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapFirstErrorCancels: a failing job cancels the context seen by the
// rest of the batch, and its error is the one returned.
func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var canceled atomic.Int64
	_, err := Map(context.Background(), 50, Config{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			if i == 3 {
				return 0, boom
			}
			// Later jobs observe the cancellation and abort.
			select {
			case <-ctx.Done():
				canceled.Add(1)
				return 0, ctx.Err()
			case <-time.After(5 * time.Millisecond):
				return i, nil
			}
		})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if canceled.Load() == 0 {
		t.Error("no job observed the cancellation")
	}
}

// TestMapLowestIndexErrorWins: with several genuine failures the reported
// error is the lowest-indexed one, independent of completion order.
func TestMapLowestIndexErrorWins(t *testing.T) {
	failAt := map[int]bool{7: true, 2: true, 9: true}
	_, err := Map(context.Background(), 10, Config{Workers: 10},
		func(_ context.Context, i int) (int, error) {
			if failAt[i] {
				// Stagger so higher indices fail first.
				time.Sleep(time.Duration(10-i) * time.Millisecond)
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := err.Error(); got != "job 2 failed" {
		t.Errorf("error = %q, want lowest-indexed failure %q", got, "job 2 failed")
	}
}

// TestMapParentCancellation: cancelling the caller's context aborts the
// batch and surfaces context.Canceled.
func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	go func() {
		<-started
		cancel()
	}()
	_, err := Map(ctx, 1000, Config{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return i, nil
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestMapPreCancelledContext: a dead context fails fast without running jobs.
func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := Map(ctx, 5, Config{},
		func(_ context.Context, i int) (int, error) { ran = true; return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("job ran under a pre-cancelled context")
	}
}

// TestMapProgress: the callback sees every completion exactly once with a
// monotonically increasing done count.
func TestMapProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls int
		last := 0
		_, err := Map(context.Background(), 25, Config{
			Workers: workers,
			Progress: func(done, total int) {
				calls++
				if total != 25 {
					t.Errorf("total = %d, want 25", total)
				}
				if done != last+1 {
					t.Errorf("done jumped %d -> %d", last, done)
				}
				last = done
			},
		}, func(_ context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if calls != 25 {
			t.Errorf("workers=%d: %d progress calls, want 25", workers, calls)
		}
	}
}

// TestMapEmptyAndInvalid: zero jobs succeed with an empty slice; a negative
// count is rejected.
func TestMapEmptyAndInvalid(t *testing.T) {
	out, err := Map(context.Background(), 0, Config{},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || out == nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v, want non-nil empty slice", out, err)
	}
	if _, err := Map(context.Background(), -1, Config{},
		func(_ context.Context, i int) (int, error) { return i, nil }); err == nil {
		t.Error("negative job count must fail")
	}
}

// TestSeedDistinct: per-job seeds are distinct across a large batch and
// stable for a given (base, index) pair.
func TestSeedDistinct(t *testing.T) {
	seen := map[int64]int{}
	const base = 42
	for i := 0; i < 10000; i++ {
		s := Seed(base, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Seed(%d, %d) == Seed(%d, %d) == %d", base, i, base, prev, s)
		}
		seen[s] = i
	}
	if Seed(base, 17) != Seed(base, 17) {
		t.Error("Seed is not stable")
	}
	if Seed(base, 0) == Seed(base+1, 0) {
		t.Error("different bases should give different seeds")
	}
}

// TestWorkerCountResolution covers the Workers defaulting rules.
func TestWorkerCountResolution(t *testing.T) {
	if got := (Config{Workers: 8}).workerCount(3); got != 3 {
		t.Errorf("capped at job count: got %d, want 3", got)
	}
	if got := (Config{Workers: -1}).workerCount(1000); got < 1 {
		t.Errorf("defaulted workers %d, want >= 1", got)
	}
	if got := (Config{Workers: 2}).workerCount(1000); got != 2 {
		t.Errorf("explicit workers: got %d, want 2", got)
	}
}
