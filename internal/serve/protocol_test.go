package serve

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

var update = flag.Bool("update", false, "rewrite the golden protocol files with current responses")

// testSweep keeps golden and engine tests in the sub-second range: a
// short Bernoulli horizon and a tight drain cap on tiny grids.
func testSweep() core.EnergySweepConfig {
	sc := core.DefaultEnergySweep()
	sc.Workload.Cycles = 400
	sc.NoC.MaxCycles = 20000
	return sc
}

// newTestEngine builds an engine on the fast test sweep; Close is owned
// by the test.
func newTestEngine(t *testing.T, mutate ...func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultEngineConfig()
	cfg.Sweep = testSweep()
	cfg.Workers = 2
	for _, m := range mutate {
		m(&cfg)
	}
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	return e
}

// runGolden replays a golden protocol file: "> request" lines are served
// through the engine's line handler, "< response" lines pin the exact
// bytes the server must answer (comments and blanks pass through). With
// -update the file is rewritten from the live responses.
func runGolden(t *testing.T, e *Engine, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	var pending string // request awaiting its "<" line
	lineNo := 0
	flush := func(wantLine string, haveWant bool) {
		if pending == "" {
			if haveWant {
				t.Fatalf("%s:%d: response line without a preceding request", path, lineNo)
			}
			return
		}
		got := string(e.handleLine(context.Background(), pending))
		if haveWant && !*update && got != wantLine {
			t.Errorf("%s:%d: response drift for request %s\n got %s\nwant %s",
				path, lineNo, pending, got, wantLine)
		}
		out = append(out, "< "+got)
		pending = ""
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "> "):
			flush("", false) // request without recorded response yet
			pending = strings.TrimPrefix(line, "> ")
			out = append(out, line)
		case strings.HasPrefix(line, "< "):
			flush(strings.TrimPrefix(line, "< "), true)
		default:
			flush("", false)
			out = append(out, sc.Text())
		}
	}
	flush("", false)
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(path, []byte(strings.Join(out, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}
}

// TestGoldenErrors pins the structured rejection for every protocol error
// class reachable from a request line: byte-stable codes, fields and
// messages.
func TestGoldenErrors(t *testing.T) {
	runGolden(t, newTestEngine(t), filepath.Join("testdata", "golden_errors.txt"))
}

// TestGoldenMatrix pins a successful response for every registered
// kind × pattern combination (plus express, want and kernel variants):
// the full wire-level determinism contract.
func TestGoldenMatrix(t *testing.T) {
	runGolden(t, newTestEngine(t), filepath.Join("testdata", "golden_matrix.txt"))
}

// TestCanonicalFoldsEquivalents: spellings that mean the same query must
// share one cache key, and defaults must land on their documented values.
func TestCanonicalFoldsEquivalents(t *testing.T) {
	minimal, errObj := Request{Pattern: "uniform", Load: 0.05}.Canonical(DefaultMaxNodes)
	if errObj != nil {
		t.Fatal(errObj)
	}
	spelled, errObj := Request{
		ID: "other", Topology: "MESH", Width: 8, Height: 8,
		Base: "E", Express: "H", Pattern: "Uniform", Load: 0.05,
		Want: WantLatency,
	}.Canonical(DefaultMaxNodes)
	if errObj != nil {
		t.Fatal(errObj)
	}
	if minimal.key() != spelled.key() {
		t.Errorf("equivalent queries got distinct keys:\n %s\n %s", minimal.key(), spelled.key())
	}
	if minimal.Topology != "mesh" || minimal.Width != 8 || minimal.Height != 8 ||
		minimal.Base != "Electronic" || minimal.Express != "Electronic" ||
		minimal.Want != WantLatency {
		t.Errorf("defaults not folded: %+v", minimal)
	}
	// Hops=0 folds express onto base; with hops the technologies diverge.
	withHops, errObj := Request{Pattern: "uniform", Load: 0.05, Express: "HyPPI", Hops: 3}.Canonical(DefaultMaxNodes)
	if errObj != nil {
		t.Fatal(errObj)
	}
	if withHops.key() == minimal.key() {
		t.Error("express design point must not share the plain key")
	}
}

// TestCanonicalGeometryFieldAttribution: the bad_geometry rejection names
// the dimension that actually violated the bound.
func TestCanonicalGeometryFieldAttribution(t *testing.T) {
	cases := []struct {
		req   Request
		field string
	}{
		{Request{Width: 1, Height: 4, Pattern: "uniform", Load: 0.1}, "width"},
		{Request{Width: 4, Height: -1, Pattern: "uniform", Load: 0.1}, "height"},
		{Request{Hops: -2, Pattern: "uniform", Load: 0.1}, "hops"},
	}
	for _, c := range cases {
		_, errObj := c.req.Canonical(DefaultMaxNodes)
		if errObj == nil || errObj.Code != CodeBadGeometry || errObj.Field != c.field {
			t.Errorf("%+v: want bad_geometry on %q, got %v", c.req, c.field, errObj)
		}
	}
}

// TestDecodeRequestEchoesID: an ID readable from a rejected request must
// survive into the error response.
func TestDecodeRequestEchoesID(t *testing.T) {
	req, errObj := DecodeRequest([]byte(`{"id":"q7","load":"high"}`))
	if errObj == nil || errObj.Code != CodeBadJSON || errObj.Field != "load" {
		t.Fatalf("want bad_json on load, got %v", errObj)
	}
	if req.ID != "q7" {
		t.Errorf("ID lost on decode error: %+v", req)
	}
}

// TestResponseEncodeStable: encoding is deterministic byte-for-byte.
func TestResponseEncodeStable(t *testing.T) {
	r := Response{ID: "x", OK: true, Result: &Result{
		Topology: "mesh", Point: "p", Width: 8, Height: 8,
		Pattern: "uniform", Load: 0.05, Want: WantLatency,
		AvgLatencyClks: 12.5, Cycles: 400, Packets: 99,
	}}
	a, b := r.Encode(), r.Encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("unstable encoding:\n%s\n%s", a, b)
	}
	if bytes.Contains(a, []byte("\n")) {
		t.Fatalf("encoded response spans lines: %q", a)
	}
}

// TestErrorMessagesListRegisteredNames: registry rejections must teach the
// caller the valid vocabulary, mirroring the CLI usage strings.
func TestErrorMessagesListRegisteredNames(t *testing.T) {
	_, errObj := Request{Pattern: "nope", Load: 0.1}.Canonical(DefaultMaxNodes)
	if errObj == nil {
		t.Fatal("unknown pattern accepted")
	}
	for _, name := range []string{"uniform", "transpose", "tornado", "hotspot"} {
		if !strings.Contains(errObj.Message, name) {
			t.Errorf("unknown_pattern message misses %q: %s", name, errObj.Message)
		}
	}
	_, errObj = Request{Topology: "ring", Pattern: "uniform", Load: 0.1}.Canonical(DefaultMaxNodes)
	if errObj == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, name := range []string{"mesh", "torus", "cmesh", "fbfly"} {
		if !strings.Contains(errObj.Message, name) {
			t.Errorf("unknown_kind message misses %q: %s", name, errObj.Message)
		}
	}
}

// TestGoldenFilesCoverEveryKindAndPattern guards the matrix file itself:
// adding a topology kind or traffic pattern to the registries without
// extending the golden matrix is a test failure, not silent shrinkage.
func TestGoldenFilesCoverEveryKindAndPattern(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_matrix.txt"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, kind := range topology.Names() {
		if !strings.Contains(text, fmt.Sprintf("%q", kind)) {
			t.Errorf("golden matrix misses topology kind %q", kind)
		}
	}
	for _, pat := range traffic.Names() {
		if !strings.Contains(text, fmt.Sprintf("%q", pat)) {
			t.Errorf("golden matrix misses pattern %q", pat)
		}
	}
}
