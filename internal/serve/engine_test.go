package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// serveRequests is a mixed workload: distinct queries across kinds,
// patterns, loads, wants and a kernel trace, plus duplicates of several —
// the shape the cache, single-flight dedup and batcher all see at once.
func serveRequests() []Request {
	distinct := []Request{
		{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05},
		{Width: 4, Height: 4, Pattern: "uniform", Load: 0.1},
		{Width: 4, Height: 4, Pattern: "tornado", Load: 0.05},
		{Width: 4, Height: 4, Pattern: "neighbor", Load: 0.1},
		{Topology: "torus", Width: 4, Height: 4, Pattern: "uniform", Load: 0.05},
		{Topology: "fbfly", Width: 4, Height: 4, Pattern: "transpose", Load: 0.05},
		{Width: 4, Height: 4, Express: "HyPPI", Hops: 2, Pattern: "tornado", Load: 0.1},
		{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05, Want: WantCLEAR},
		{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05, Want: WantEnergy},
		{Width: 4, Height: 4, Kernel: "LU"},
	}
	reqs := make([]Request, 0, 3*len(distinct))
	for round := 0; round < 3; round++ {
		for i, r := range distinct {
			r.ID = fmt.Sprintf("r%d-q%d", round, i)
			reqs = append(reqs, r)
		}
	}
	return reqs
}

// TestConcurrentMatchesSerial is the serving determinism contract at the
// wire level: N goroutines racing the same workload through a fresh
// engine produce responses byte-identical to a fresh engine answering the
// same requests one at a time — whatever batching, dedup or scheduling
// happened in between.
func TestConcurrentMatchesSerial(t *testing.T) {
	reqs := serveRequests()
	ctx := context.Background()

	serial := newTestEngine(t, func(c *Config) { c.Workers = 1; c.MaxBatch = 1 })
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		want[i] = serial.Do(ctx, r).Encode()
	}

	conc := newTestEngine(t, func(c *Config) { c.Workers = 4 })
	got := make([][]byte, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r Request) {
			defer wg.Done()
			got[i] = conc.Do(ctx, r).Encode()
		}(i, r)
	}
	wg.Wait()

	for i := range reqs {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("request %d diverged under concurrency:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	st := conc.Stats()
	if st.Evaluations != 10 {
		t.Errorf("want 10 evaluations for 10 distinct queries, got %d (stats %+v)", st.Evaluations, st)
	}
	if st.Hits != uint64(len(reqs))-10 {
		t.Errorf("want %d hits, got %d", len(reqs)-10, st.Hits)
	}
}

// gateEngine installs an evaluation gate: every batch announces itself on
// entered and blocks until a value arrives on release.
func gateEngine(t *testing.T, mutate ...func(*Config)) (*Engine, chan []core.EvalCell, chan struct{}) {
	t.Helper()
	e := newTestEngine(t, mutate...)
	entered := make(chan []core.EvalCell)
	release := make(chan struct{})
	e.evalHook = func(cells []core.EvalCell) {
		entered <- cells
		<-release
	}
	return e, entered, release
}

// waitStats polls until cond holds or the deadline passes.
func waitStats(t *testing.T, e *Engine, cond func(Stats) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(e.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (stats %+v)", what, e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleFlightDedup pins the dedup guarantee with an evaluation-count
// hook: K identical queries arriving while the first is still evaluating
// join it — one evaluation, K identical answers.
func TestSingleFlightDedup(t *testing.T) {
	const k = 8
	e, entered, release := gateEngine(t)
	req := Request{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05}
	ctx := context.Background()

	responses := make([][]byte, k)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); responses[0] = e.Do(ctx, req).Encode() }()
	cells := <-entered // first query is now mid-evaluation
	if len(cells) != 1 {
		t.Errorf("want a 1-cell batch, got %d", len(cells))
	}

	for i := 1; i < k; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); responses[i] = e.Do(ctx, req).Encode() }(i)
	}
	// The duplicates must register as joins on the in-flight entry while
	// evaluation is still gated — that is the single-flight property.
	waitStats(t, e, func(s Stats) bool { return s.Hits == k-1 }, "k-1 in-flight joins")
	release <- struct{}{}
	wg.Wait()

	for i := 1; i < k; i++ {
		if !bytes.Equal(responses[i], responses[0]) {
			t.Errorf("response %d diverged: %s vs %s", i, responses[i], responses[0])
		}
	}
	st := e.Stats()
	if st.Evaluations != 1 || st.Misses != 1 || st.Batches != 1 {
		t.Errorf("want exactly one evaluation for %d identical queries, got %+v", k, st)
	}
}

// TestBackpressureQueueFull: with a depth-1 queue and the dispatcher
// gated, a third distinct query is rejected with queue_full instead of
// blocking or growing state; the queued queries still answer.
func TestBackpressureQueueFull(t *testing.T) {
	e, entered, release := gateEngine(t, func(c *Config) { c.QueueDepth = 1 })
	ctx := context.Background()
	q := func(load float64) Request {
		return Request{Width: 4, Height: 4, Pattern: "uniform", Load: load}
	}

	var wg sync.WaitGroup
	results := make([]Response, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = e.Do(ctx, q(0.05)) }()
	<-entered // dispatcher is busy with query 1; the queue is empty again

	wg.Add(1)
	go func() { defer wg.Done(); results[1] = e.Do(ctx, q(0.1)) }()
	waitStats(t, e, func(s Stats) bool { return s.Misses == 2 }, "query 2 enqueued")

	rejected := e.Do(ctx, q(0.2))
	if rejected.OK || rejected.Error == nil || rejected.Error.Code != CodeQueueFull {
		t.Fatalf("want queue_full rejection, got %+v", rejected)
	}

	release <- struct{}{}
	<-entered // batch 2 (the queued query)
	release <- struct{}{}
	wg.Wait()
	for i, r := range results {
		if !r.OK {
			t.Errorf("queued query %d failed: %+v", i, r)
		}
	}
	if st := e.Stats(); st.Rejected != 1 {
		t.Errorf("want 1 rejection, got %+v", st)
	}
}

// TestCanceledWaitStaysCached: a caller abandoning its wait gets a
// canceled error, but the evaluation completes and serves later callers
// from the cache.
func TestCanceledWaitStaysCached(t *testing.T) {
	e, entered, release := gateEngine(t)
	req := Request{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05}

	ctx, cancel := context.WithCancel(context.Background())
	var abandoned Response
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); abandoned = e.Do(ctx, req) }()
	<-entered
	cancel()
	wg.Wait()
	if abandoned.OK || abandoned.Error.Code != CodeCanceled {
		t.Fatalf("want canceled, got %+v", abandoned)
	}

	release <- struct{}{}
	later := e.Do(context.Background(), req)
	if !later.OK {
		t.Fatalf("cached result unavailable after canceled wait: %+v", later)
	}
	if st := e.Stats(); st.Evaluations != 1 || st.Hits != 1 {
		t.Errorf("want the canceled query's evaluation reused, got %+v", st)
	}
}

// TestCloseRejectsNewQueries: Close drains, then new queries fail fast.
func TestCloseRejectsNewQueries(t *testing.T) {
	e := NewEngine(Config{Sweep: testSweep(), Workers: 1})
	req := Request{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05}
	if r := e.Do(context.Background(), req); !r.OK {
		t.Fatalf("pre-close query failed: %+v", r)
	}
	e.Close()
	e.Close() // idempotent
	r := e.Do(context.Background(), Request{Width: 4, Height: 4, Pattern: "uniform", Load: 0.1})
	if r.OK || r.Error.Code != CodeQueueFull {
		t.Fatalf("want shutdown rejection, got %+v", r)
	}
	// Cached answers would also be fine post-close; what must not happen
	// is a hang or a send on the closed queue (the race build checks it).
}

// TestMicroBatchCoalescing: queries piling up behind a gated dispatcher
// are evaluated as one multi-cell batch.
func TestMicroBatchCoalescing(t *testing.T) {
	e, entered, release := gateEngine(t)
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); e.Do(ctx, Request{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05}) }()
	<-entered // dispatcher busy; subsequent queries queue up

	loads := []float64{0.1, 0.15, 0.2}
	for _, load := range loads {
		wg.Add(1)
		go func(load float64) {
			defer wg.Done()
			e.Do(ctx, Request{Width: 4, Height: 4, Pattern: "uniform", Load: load})
		}(load)
	}
	waitStats(t, e, func(s Stats) bool { return s.Misses == 4 }, "3 queries queued")
	release <- struct{}{}

	cells := <-entered
	if len(cells) != len(loads) {
		t.Errorf("want the %d queued queries coalesced into one batch, got %d cells", len(loads), len(cells))
	}
	release <- struct{}{}
	wg.Wait()
	if st := e.Stats(); st.Batches != 2 || st.MaxBatch != len(loads) {
		t.Errorf("want 2 batches with max %d, got %+v", len(loads), st)
	}
}

// TestCacheEvictionLRU pins the cache bound: at CacheEntries the
// least-recently-used completed entry is evicted (recency set by hits,
// not just inserts), the survivor still answers from cache, and the
// evicted query re-evaluates on return.
func TestCacheEvictionLRU(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.CacheEntries = 2; c.Workers = 1 })
	ctx := context.Background()
	q := func(load float64) Request {
		return Request{Width: 4, Height: 4, Pattern: "uniform", Load: load}
	}

	for _, load := range []float64{0.05, 0.1} { // fill the cache: [B, A]
		if r := e.Do(ctx, q(load)); !r.OK {
			t.Fatalf("query %v failed: %+v", load, r)
		}
	}
	if r := e.Do(ctx, q(0.05)); !r.OK { // touch A: recency now [A, B]
		t.Fatalf("touch failed: %+v", r)
	}
	if r := e.Do(ctx, q(0.15)); !r.OK { // C evicts B, the LRU — not A
		t.Fatalf("evicting query failed: %+v", r)
	}
	st := e.Stats()
	if st.Evictions != 1 || st.CacheEntries != 2 {
		t.Fatalf("want 1 eviction at the 2-entry cap, got %+v", st)
	}

	if r := e.Do(ctx, q(0.05)); !r.OK { // A survived: a hit, no new eval
		t.Fatalf("surviving entry failed: %+v", r)
	}
	if r := e.Do(ctx, q(0.1)); !r.OK { // B was evicted: a fresh miss
		t.Fatalf("evicted entry failed on return: %+v", r)
	}
	st = e.Stats()
	if st.Hits != 2 || st.Misses != 4 || st.Evaluations != 4 {
		t.Errorf("want hits=2 misses=4 evals=4 across the eviction, got %+v", st)
	}
	if st.Evictions != 2 || st.CacheEntries != 2 {
		t.Errorf("cache not bounded after re-admission: %+v", st)
	}
}

// TestEvictionPinsInFlight: at the cap with every entry still
// evaluating, a new distinct query is rejected (queue_full) rather than
// dropping an entry waiters depend on — while duplicates of the
// in-flight query still join it (single-flight survives the bound).
func TestEvictionPinsInFlight(t *testing.T) {
	e, entered, release := gateEngine(t, func(c *Config) { c.CacheEntries = 1 })
	ctx := context.Background()
	q := func(load float64) Request {
		return Request{Width: 4, Height: 4, Pattern: "uniform", Load: load}
	}

	var first Response
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); first = e.Do(ctx, q(0.05)) }()
	<-entered // the lone cache slot is now a pinned in-flight entry

	rejected := e.Do(ctx, q(0.1))
	if rejected.OK || rejected.Error.Code != CodeQueueFull {
		t.Fatalf("want queue_full with the cache pinned, got %+v", rejected)
	}

	var joined Response
	wg.Add(1)
	go func() { defer wg.Done(); joined = e.Do(ctx, q(0.05)) }()
	waitStats(t, e, func(s Stats) bool { return s.Hits == 1 }, "duplicate joining the pinned entry")

	release <- struct{}{}
	wg.Wait()
	if !first.OK || !joined.OK || !bytes.Equal(first.Encode(), joined.Encode()) {
		t.Fatalf("single-flight answers diverged under the cache bound: %+v vs %+v", first, joined)
	}

	// With the entry completed the slot is evictable: the rejected query
	// now displaces it.
	var later Response
	wg.Add(1)
	go func() { defer wg.Done(); later = e.Do(ctx, q(0.1)) }()
	<-entered
	release <- struct{}{}
	wg.Wait()
	if !later.OK {
		t.Fatalf("query after completion failed: %+v", later)
	}
	if st := e.Stats(); st.Evictions != 1 || st.CacheEntries != 1 || st.Rejected != 1 {
		t.Errorf("want 1 eviction, 1 rejection, bounded cache; got %+v", st)
	}
}

// TestServeLinesOrderAndRecovery: responses come back in input order,
// blank lines are skipped, malformed lines answer structured errors
// without killing the session.
func TestServeLinesOrderAndRecovery(t *testing.T) {
	e := newTestEngine(t)
	input := strings.Join([]string{
		`{"id":"a","width":4,"height":4,"pattern":"uniform","load":0.05}`,
		``,
		`not json at all`,
		`{"id":"b","width":4,"height":4,"pattern":"uniform","load":0.05}`,
		`{"id":"c","pattern":"zipf","load":0.1}`,
		`{"id":"d","width":4,"height":4,"pattern":"tornado","load":0.05}`,
	}, "\n") + "\n"

	var out bytes.Buffer
	if err := e.ServeLines(context.Background(), strings.NewReader(input), &out, 4); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 response lines, got %d:\n%s", len(lines), out.String())
	}
	wantMarks := []string{`"id":"a","ok":true`, `"ok":false`, `"id":"b","ok":true`, `"id":"c","ok":false`, `"id":"d","ok":true`}
	for i, mark := range wantMarks {
		if !strings.Contains(lines[i], mark) {
			t.Errorf("line %d out of order or wrong: want %s in %s", i, mark, lines[i])
		}
	}
	// a and b are the same canonical query: dedup or cache must have fired.
	if st := e.Stats(); st.Hits == 0 {
		t.Errorf("identical stdio queries did not share an evaluation: %+v", st)
	}
}

// TestHTTPHandler covers the HTTP transport: status mapping, stats and
// health endpoints, and that the body is the same canonical line stdio
// writes.
func TestHTTPHandler(t *testing.T) {
	e := newTestEngine(t)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, strings.TrimSpace(buf.String())
	}

	status, body := post(`{"id":"h1","width":4,"height":4,"pattern":"uniform","load":0.05}`)
	if status != 200 || !strings.Contains(body, `"ok":true`) {
		t.Errorf("valid query: got %d %s", status, body)
	}
	wire := e.Do(context.Background(), Request{ID: "h1", Width: 4, Height: 4, Pattern: "uniform", Load: 0.05}).Encode()
	if body != string(wire) {
		t.Errorf("HTTP body differs from canonical line:\n http %s\n line %s", body, wire)
	}

	status, body = post(`{"pattern":"zipf","load":0.1}`)
	if status != 400 || !strings.Contains(body, CodeUnknownPattern) {
		t.Errorf("unknown pattern: got %d %s", status, body)
	}
	status, body = post(`{"topology":"torus","hops":3,"pattern":"uniform","load":0.1}`)
	if status != 422 || !strings.Contains(body, CodeEvalFailed) {
		t.Errorf("eval failure: got %d %s", status, body)
	}

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(buf.String(), `"Hits"`) {
		t.Errorf("stats: got %d %s", resp.StatusCode, buf.String())
	}

	resp, err = srv.Client().Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /query: want 405, got %d", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz: want 200, got %d", resp.StatusCode)
	}
}

// TestHTTPDraining covers the graceful-shutdown window: once the engine
// drains, new queries answer 503 draining (with Retry-After) and /healthz
// stops reporting ok, while already-cached answers stay reachable after
// the drain ends only through fresh connections — the handler refuses at
// the door, not mid-flight.
func TestHTTPDraining(t *testing.T) {
	e := newTestEngine(t)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	query := `{"id":"d1","width":4,"height":4,"pattern":"uniform","load":0.05}`
	resp, err := srv.Client().Post(srv.URL+"/query", "application/json", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pre-drain query: want 200, got %d", resp.StatusCode)
	}

	if e.Draining() {
		t.Fatal("engine draining before StartDraining")
	}
	e.StartDraining()
	if !e.Draining() {
		t.Fatal("StartDraining did not latch")
	}

	resp, err = srv.Client().Post(srv.URL+"/query", "application/json", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || !strings.Contains(buf.String(), CodeDraining) {
		t.Errorf("draining query: want 503 %s, got %d %s", CodeDraining, resp.StatusCode, buf.String())
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining response misses Retry-After")
	}

	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("draining healthz: want 503, got %d", resp.StatusCode)
	}
}

// TestHTTPBodyLimit pins the request-size bound: a body over the stdio
// line limit is refused explicitly instead of being truncated into a
// different (possibly valid) query.
func TestHTTPBodyLimit(t *testing.T) {
	e := newTestEngine(t)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	huge := `{"id":"` + strings.Repeat("x", maxLineBytes) + `"}`
	resp, err := srv.Client().Post(srv.URL+"/query", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 || !strings.Contains(buf.String(), CodeBadRequest) {
		t.Errorf("oversized body: want 400 %s, got %d %s", CodeBadRequest, resp.StatusCode, buf.String())
	}
}

// TestQueueFullMapsTo429 pins the backpressure status without needing to
// race real HTTP requests: the writer maps the code, the engine produces
// it (TestBackpressureQueueFull).
func TestQueueFullMapsTo429(t *testing.T) {
	cases := []struct {
		code string
		want int
	}{
		{CodeQueueFull, 429},
		{CodeEvalFailed, 422},
		{CodeCanceled, 503},
		{CodeDraining, 503},
		{CodeBadLoad, 400},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeResponse(rec, errResponse("x", errf(c.code, "", "synthetic")))
		if rec.Code != c.want {
			t.Errorf("%s: want %d, got %d", c.code, c.want, rec.Code)
		}
		if (c.code == CodeQueueFull || c.code == CodeDraining) && rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s response misses Retry-After", c.code)
		}
	}
}
