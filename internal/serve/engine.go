package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/npb"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Serving defaults.
const (
	// DefaultWidth and DefaultHeight are the grid a query gets when it
	// names none: the repository's cycle-accurate sweep scale.
	DefaultWidth, DefaultHeight = 8, 8
	// DefaultMaxNodes bounds requested grids (64×64).
	DefaultMaxNodes = 4096
	// DefaultMaxBatch caps how many queued queries coalesce into one
	// core.EvalCells call.
	DefaultMaxBatch = 64
	// DefaultQueueDepth bounds the pending-evaluation queue; beyond it
	// the engine answers queue_full instead of growing without bound.
	DefaultQueueDepth = 256
	// DefaultCacheEntries bounds the result cache: at the cap the
	// least-recently-used completed entry is evicted to admit a new
	// query, so a long-lived server's memory stays proportional to its
	// working set, not its history.
	DefaultCacheEntries = 1024
	// DefaultTraceScale is the NPB volume scale for kernel queries (the
	// CLIs' default).
	DefaultTraceScale = 1.0 / 16
)

// Config parameterizes an Engine.
type Config struct {
	// Options is the shared experiment configuration; a query's kind and
	// geometry override its topology per cell. The zero value selects
	// core.DefaultOptions.
	Options core.Options
	// Sweep shapes every evaluation (Bernoulli workload, simulator
	// configuration); Rates is unused — each query carries its own load.
	// The zero value selects core.DefaultEnergySweep.
	Sweep core.EnergySweepConfig
	// Workers sizes the evaluation pool a batch fans out on
	// (0 = GOMAXPROCS).
	Workers int
	// MaxBatch, QueueDepth, MaxNodes, CacheEntries and TraceScale
	// default to the package constants when zero.
	MaxBatch   int
	QueueDepth int
	MaxNodes   int
	// CacheEntries caps the result cache; least-recently-used completed
	// entries are evicted at the cap (in-flight evaluations are pinned —
	// waiters hold them — so a cache full of in-flight work rejects new
	// queries with queue_full instead).
	CacheEntries int
	TraceScale   float64
}

// DefaultEngineConfig returns the serving defaults.
func DefaultEngineConfig() Config {
	return Config{
		Options:      core.DefaultOptions(),
		Sweep:        core.DefaultEnergySweep(),
		MaxBatch:     DefaultMaxBatch,
		QueueDepth:   DefaultQueueDepth,
		MaxNodes:     DefaultMaxNodes,
		CacheEntries: DefaultCacheEntries,
		TraceScale:   DefaultTraceScale,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	zero := core.Options{}
	if c.Options == zero {
		c.Options = core.DefaultOptions()
	}
	if c.Sweep.Workload.SizeFlits == 0 && c.Sweep.Workload.Cycles == 0 {
		c.Sweep = core.DefaultEnergySweep()
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = DefaultMaxNodes
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.TraceScale <= 0 {
		c.TraceScale = DefaultTraceScale
	}
	return c
}

// Stats is a snapshot of the engine's serving counters.
type Stats struct {
	// Hits counts queries answered from the cache or joined onto an
	// identical in-flight evaluation (single-flight dedup); Misses
	// counts queries that enqueued a fresh evaluation.
	Hits, Misses uint64
	// Evaluations counts cells actually evaluated (one per distinct
	// canonical query, however many clients asked for it).
	Evaluations uint64
	// Batches counts core.EvalCells calls; MaxBatch is the largest
	// coalesced batch seen.
	Batches  uint64
	MaxBatch int
	// Rejected counts queue-full backpressure rejections.
	Rejected uint64
	// Evictions counts completed entries dropped by the LRU bound
	// (Config.CacheEntries) to admit new queries.
	Evictions uint64
	// CacheEntries is the current number of cached canonical queries,
	// never above Config.CacheEntries.
	CacheEntries int
	// QueueDepth is the number of evaluations pending in the dispatcher
	// queue at snapshot time (a gauge, unlike the counters above).
	QueueDepth int
	// UptimeSeconds is the time since the engine started.
	UptimeSeconds float64
}

// HitRate is Hits / (Hits + Misses), 0 before any query.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one cached canonical query. done closes when the evaluation
// lands; res/err are immutable afterwards. Waiters joining before
// completion are the single-flight dedup path; joiners after completion
// are plain cache hits — both read the same bytes. elem is the entry's
// recency-list position (front = most recent), owned by Engine.mu.
// Eviction only unlinks an entry from the cache: waiters already holding
// it still complete normally.
type entry struct {
	done chan struct{}
	res  *Result
	err  *Error
	elem *list.Element
}

// job pairs a cache entry with the canonical request that fills it.
type job struct {
	canon Request
	ent   *entry
}

// Engine is the query-serving core: a keyed result cache with
// single-flight deduplication in front of a micro-batching dispatcher
// that coalesces queued queries into core.EvalCells calls on the pooled
// runner. Responses are deterministic: a query's result is a pure
// function of its canonical form, so concurrent clients receive answers
// bit-identical to serial evaluation, however requests interleave, batch
// or dedup (the CONCURRENCY contract in CHANGES.md, extended to the
// serving layer).
type Engine struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	cache  map[string]*entry
	// lru orders cache keys by recency (front = most recent); at
	// Config.CacheEntries the least-recently-used completed entry is
	// evicted to admit a new query.
	lru *list.List

	// draining marks the graceful-shutdown window: transports refuse new
	// queries (HTTP 503 / code "draining") while queries already accepted
	// finish and deliver their answers.
	draining atomic.Bool

	queue        chan *job
	dispatcherWG sync.WaitGroup

	hits, misses, evals, batches, rejected, evictions atomic.Uint64
	maxBatch                                          atomic.Int64

	// start anchors the uptime gauge; the latency fields feed the
	// /metrics service-latency histogram (latMu keeps hist+sum+overflow
	// mutually consistent — one short critical section per query).
	start   time.Time
	latMu   sync.Mutex
	latHist *stats.Histogram
	latSum  float64
	latOver int64

	// evalHook, when set before the first query, observes every batch
	// just before evaluation (test instrumentation: the single-flight
	// tests gate evaluation on it).
	evalHook func([]core.EvalCell)
}

// Service-latency histogram shape: fixed-width buckets over [0,
// latHistMaxSeconds); slower queries are counted in the +Inf overflow
// bucket rather than clamped into the last bin.
const (
	latHistMaxSeconds = 5.0
	latHistBins       = 50
)

// NewEngine starts an engine; callers own Close.
func NewEngine(cfg Config) *Engine {
	hist, err := stats.NewHistogram(0, latHistMaxSeconds, latHistBins)
	if err != nil {
		panic(err) // constant shape, cannot fail
	}
	e := &Engine{
		cfg:     cfg.withDefaults(),
		cache:   make(map[string]*entry),
		lru:     list.New(),
		start:   time.Now(),
		latHist: hist,
	}
	e.queue = make(chan *job, e.cfg.QueueDepth)
	e.dispatcherWG.Add(1)
	go e.dispatch()
	return e
}

// Close stops the dispatcher after draining queued work. Queries already
// waiting complete; new queries are rejected.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()
	e.dispatcherWG.Wait()
}

// StartDraining flips the engine into its graceful-shutdown window: the
// transports reject queries arriving afterwards with code "draining"
// (HTTP 503) while accepted queries run to completion. Idempotent; Close
// still owns stopping the dispatcher.
func (e *Engine) StartDraining() { e.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (e *Engine) Draining() bool { return e.draining.Load() }

// Stats snapshots the serving counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	entries := len(e.cache)
	e.mu.Unlock()
	return Stats{
		Hits:          e.hits.Load(),
		Misses:        e.misses.Load(),
		Evaluations:   e.evals.Load(),
		Batches:       e.batches.Load(),
		MaxBatch:      int(e.maxBatch.Load()),
		Rejected:      e.rejected.Load(),
		Evictions:     e.evictions.Load(),
		CacheEntries:  entries,
		QueueDepth:    len(e.queue),
		UptimeSeconds: time.Since(e.start).Seconds(),
	}
}

// observeLatency records one query's wall-clock service time. Samples at
// or beyond the histogram range are counted as overflow (the +Inf bucket)
// so the exported bucket boundaries stay truthful.
func (e *Engine) observeLatency(d time.Duration) {
	sec := d.Seconds()
	e.latMu.Lock()
	e.latSum += sec
	if sec >= latHistMaxSeconds {
		e.latOver++
	} else {
		e.latHist.Add(sec)
	}
	e.latMu.Unlock()
}

// Do answers one query: validate and canonicalize, join the cached or
// in-flight evaluation when one exists, otherwise enqueue a fresh cell
// for the dispatcher (rejecting with queue_full when the pending queue is
// at QueueDepth — graceful backpressure instead of unbounded goroutines).
// Do blocks until the answer is ready or ctx is done; a canceled wait
// returns a canceled error while the evaluation itself completes and
// stays cached.
func (e *Engine) Do(ctx context.Context, req Request) Response {
	began := time.Now()
	defer func() { e.observeLatency(time.Since(began)) }()
	canon, errObj := req.Canonical(e.cfg.MaxNodes)
	if errObj != nil {
		return errResponse(req.ID, errObj)
	}
	key := canon.key()

	e.mu.Lock()
	ent, ok := e.cache[key]
	if ok {
		e.lru.MoveToFront(ent.elem)
		e.mu.Unlock()
		e.hits.Add(1)
	} else {
		if e.closed {
			e.mu.Unlock()
			return errResponse(req.ID, errf(CodeQueueFull, "", "server shutting down"))
		}
		if len(e.cache) >= e.cfg.CacheEntries && !e.evictLocked() {
			// Cap reached with every entry still evaluating: reject
			// rather than grow or drop work waiters depend on.
			e.mu.Unlock()
			e.rejected.Add(1)
			return errResponse(req.ID, errf(CodeQueueFull, "",
				"result cache full (%d entries, all in flight); retry later", e.cfg.CacheEntries))
		}
		ent = &entry{done: make(chan struct{})}
		select {
		case e.queue <- &job{canon: canon, ent: ent}:
			ent.elem = e.lru.PushFront(key)
			e.cache[key] = ent
			e.mu.Unlock()
			e.misses.Add(1)
		default:
			e.mu.Unlock()
			e.rejected.Add(1)
			return errResponse(req.ID, errf(CodeQueueFull, "",
				"evaluation queue full (%d pending); retry later", e.cfg.QueueDepth))
		}
	}

	select {
	case <-ent.done:
	case <-ctx.Done():
		return errResponse(req.ID, errf(CodeCanceled, "", "%v", ctx.Err()))
	}
	if ent.err != nil {
		return errResponse(req.ID, ent.err)
	}
	res := *ent.res
	return Response{ID: req.ID, OK: true, Result: &res}
}

// evictLocked drops the least-recently-used completed entry, reporting
// whether one was found. In-flight entries are pinned — their waiters
// joined through the cache and the dispatcher still owns their jobs — so
// the scan walks from the cold end skipping anything not yet done.
// Callers hold e.mu.
func (e *Engine) evictLocked() bool {
	for el := e.lru.Back(); el != nil; el = el.Prev() {
		key := el.Value.(string)
		select {
		case <-e.cache[key].done:
			delete(e.cache, key)
			e.lru.Remove(el)
			e.evictions.Add(1)
			return true
		default: // still evaluating: pinned
		}
	}
	return false
}

// dispatch is the micro-batcher: it blocks for one queued job, greedily
// drains whatever else is already pending (up to MaxBatch), and evaluates
// the coalesced cells as one core.EvalCells call. Under concurrent load
// arrivals pile up while the previous batch evaluates, so batching
// emerges from pressure with no artificial delay added to a lone query.
func (e *Engine) dispatch() {
	defer e.dispatcherWG.Done()
	for {
		j, ok := <-e.queue
		if !ok {
			return
		}
		batch := []*job{j}
	drain:
		for len(batch) < e.cfg.MaxBatch {
			select {
			case j2, ok2 := <-e.queue:
				if !ok2 {
					break drain
				}
				batch = append(batch, j2)
			default:
				break drain
			}
		}
		e.runBatch(batch)
	}
}

// runBatch evaluates one coalesced batch and completes its entries.
func (e *Engine) runBatch(batch []*job) {
	cells := make([]core.EvalCell, len(batch))
	for i, j := range batch {
		cells[i] = e.cellFor(j.canon)
	}
	if e.evalHook != nil {
		e.evalHook(cells)
	}
	e.batches.Add(1)
	if n := int64(len(batch)); n > e.maxBatch.Load() {
		e.maxBatch.Store(n)
	}
	e.evals.Add(uint64(len(cells)))

	results, err := core.EvalCells(context.Background(), cells, e.cfg.Sweep, e.cfg.Options,
		runner.Config{Workers: e.cfg.Workers})
	for i, j := range batch {
		switch {
		case err != nil:
			j.ent.err = errf(CodeEvalFailed, "", "%v", err)
		case results[i].Err != nil:
			j.ent.err = errf(CodeEvalFailed, "", "%v", results[i].Err)
		default:
			j.ent.res = buildResult(j.canon, results[i])
		}
		close(j.ent.done)
	}
}

// cellFor maps a canonicalized request onto its evaluation cell. Every
// lookup below re-resolves a name Canonical already validated, so none
// can fail.
func (e *Engine) cellFor(canon Request) core.EvalCell {
	base, _ := tech.ParseTechnology(canon.Base)
	express, _ := tech.ParseTechnology(canon.Express)
	cell := core.EvalCell{
		Kind:   topology.Kind(canon.Topology),
		Width:  canon.Width,
		Height: canon.Height,
		Point:  core.DesignPoint{Base: base, Express: express, Hops: canon.Hops},
		Energy: canon.Want != WantLatency,
	}
	if canon.Pattern != "" {
		cell.Pattern, _ = traffic.Lookup(canon.Pattern)
		cell.Rate = canon.Load
	} else {
		k, _ := npb.ParseKernel(canon.Kernel)
		cfg := npb.DefaultConfig(k)
		cfg.GridW, cfg.GridH = canon.Width, canon.Height
		cfg.Scale = e.cfg.TraceScale
		cell.Trace = &cfg
	}
	return cell
}

// buildResult renders a cell's measurement as the response payload for
// the requested want.
func buildResult(canon Request, r core.EvalCellResult) *Result {
	base, _ := tech.ParseTechnology(canon.Base)
	express, _ := tech.ParseTechnology(canon.Express)
	label := core.PatternSweepResult{
		Kind:  topology.Kind(canon.Topology),
		Point: core.DesignPoint{Base: base, Express: express, Hops: canon.Hops},
	}.PointLabel()
	res := &Result{
		Topology:       canon.Topology,
		Point:          label,
		Width:          canon.Width,
		Height:         canon.Height,
		Pattern:        canon.Pattern,
		Kernel:         canon.Kernel,
		Load:           canon.Load,
		Want:           canon.Want,
		Saturated:      r.Saturated,
		AvgLatencyClks: r.AvgLatencyClks,
		P99LatencyClks: r.P99LatencyClks,
		Cycles:         r.Cycles,
		Packets:        r.Packets,
	}
	if r.Saturated {
		return res
	}
	switch canon.Want {
	case WantEnergy:
		res.FJPerBit = r.Run.FJPerBit
		res.DynamicJ = r.Run.DynamicJ
		res.StaticJ = r.Run.StaticJ
		res.TotalJ = r.Run.TotalJ
		res.AvgPowerW = r.Run.AvgPowerW
		fallthrough
	case WantCLEAR:
		res.CLEAR = r.CLEAR.Value
		res.R = r.CLEAR.R
		res.AvgUtilization = r.CLEAR.AvgUtilization
	}
	return res
}
