package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// latencySnapshot is a consistent copy of the service-latency histogram.
type latencySnapshot struct {
	bounds   []float64 // upper bound of each finite bucket
	counts   []int64   // per-bucket (non-cumulative) counts
	overflow int64     // samples at or beyond the last bound (+Inf bucket)
	sum      float64
}

func (e *Engine) latencySnapshotLocked() latencySnapshot {
	e.latMu.Lock()
	defer e.latMu.Unlock()
	snap := latencySnapshot{
		bounds:   make([]float64, e.latHist.Bins()),
		counts:   make([]int64, e.latHist.Bins()),
		overflow: e.latOver,
		sum:      e.latSum,
	}
	for i := 0; i < e.latHist.Bins(); i++ {
		_, hi := e.latHist.BinRange(i)
		snap.bounds[i] = hi
		snap.counts[i] = e.latHist.Bin(i)
	}
	return snap
}

// pf formats a metric value the Prometheus way: shortest exact decimal.
func pf(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteMetrics emits the engine's serving counters in the Prometheus text
// exposition format (version 0.0.4), dependency-free: HELP/TYPE comment
// pairs, counters and gauges under the hyppi_serve namespace, and the
// service-latency histogram with cumulative le buckets. Counter totals
// match Stats exactly — /metrics and /stats are two views of one census.
func (e *Engine) WriteMetrics(w io.Writer) error {
	st := e.Stats()
	lat := e.latencySnapshotLocked()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help, value string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, value)
	}

	// The query counter splits by result class, one label per serving
	// outcome: hit (cache or single-flight join), miss (fresh
	// evaluation enqueued), rejected (queue-full backpressure).
	const q = "hyppi_serve_queries_total"
	fmt.Fprintf(&b, "# HELP %s Queries by serving outcome.\n# TYPE %s counter\n", q, q)
	fmt.Fprintf(&b, "%s{result=\"hit\"} %d\n", q, st.Hits)
	fmt.Fprintf(&b, "%s{result=\"miss\"} %d\n", q, st.Misses)
	fmt.Fprintf(&b, "%s{result=\"rejected\"} %d\n", q, st.Rejected)

	counter("hyppi_serve_evaluations_total",
		"Simulation cells evaluated (one per distinct canonical query).", st.Evaluations)
	counter("hyppi_serve_eval_batches_total",
		"core.EvalCells calls (coalesced micro-batches).", st.Batches)
	counter("hyppi_serve_cache_evictions_total",
		"Completed cache entries dropped by the LRU bound.", st.Evictions)

	gauge("hyppi_serve_cache_entries",
		"Cached canonical queries (completed and in flight).",
		strconv.Itoa(st.CacheEntries))
	gauge("hyppi_serve_queue_depth",
		"Evaluations pending in the dispatcher queue.",
		strconv.Itoa(st.QueueDepth))
	gauge("hyppi_serve_max_batch_size",
		"Largest coalesced batch seen since start.",
		strconv.Itoa(st.MaxBatch))
	draining := "0"
	if e.Draining() {
		draining = "1"
	}
	gauge("hyppi_serve_draining",
		"1 while the server is draining for graceful shutdown.", draining)
	gauge("hyppi_serve_uptime_seconds",
		"Seconds since the engine started.", pf(st.UptimeSeconds))

	const h = "hyppi_serve_query_duration_seconds"
	fmt.Fprintf(&b, "# HELP %s Query service time, request receipt to answer.\n# TYPE %s histogram\n", h, h)
	var cum int64
	for i, bound := range lat.bounds {
		cum += lat.counts[i]
		fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", h, pf(bound), cum)
	}
	cum += lat.overflow
	fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h, cum)
	fmt.Fprintf(&b, "%s_sum %s\n", h, pf(lat.sum))
	fmt.Fprintf(&b, "%s_count %d\n", h, cum)

	_, err := io.WriteString(w, b.String())
	return err
}
