// Package serve turns the simulator into a long-lived estimation
// service: clients submit (topology kind, design point, pattern | trace,
// load, want) queries and get back deterministic latency / CLEAR /
// energy estimates — the server half of the uPIMulator × BookSim2
// cosimulation interface, where a host engine drives a NoC timing model
// over a JSON-lines protocol and folds the returned figures into its own
// critical path.
//
// # Engine
//
// Engine layers the serving concerns over the repository's evaluation
// core (core.EvalCells on the pooled runner with noc.SimPool reuse):
//
//   - a keyed result cache: queries are canonicalized (registry-cased
//     names, defaults folded) and identical queries share one result,
//   - single-flight dedup: identical in-flight queries join the same
//     evaluation instead of re-running it,
//   - micro-batching: queued distinct queries coalesce into one
//     core.EvalCells call, sharing networks, tables and simulators,
//   - bounded backpressure: beyond QueueDepth pending evaluations the
//     engine answers queue_full (HTTP 429) instead of growing without
//     bound.
//
// Responses are deterministic: a result is a pure function of the
// canonical query, so concurrent clients receive bytes identical to
// serial evaluation whatever the interleaving (the CONCURRENCY contract
// in CHANGES.md, extended to the serving layer).
//
// # Wire protocol
//
// One JSON object per request. Over stdio (ServeLines) each line is a
// request and each output line the matching response, in request order;
// over HTTP (Handler) the same object is POSTed to /query. Requests:
//
//	{"id":"q1",                  // optional, echoed verbatim
//	 "topology":"mesh",          // registered kind (mesh, torus, cmesh, fbfly)
//	 "width":8, "height":8,      // router grid, default 8×8
//	 "base":"Electronic",        // mesh channel technology
//	 "express":"HyPPI",          // express channel technology
//	 "hops":3,                   // express hop length, 0 = none
//	 "pattern":"tornado",        // registered pattern …
//	 "kernel":"LU",              // … or NPB trace: FT CG MG LU EP IS (exactly one)
//	 "load":0.1,                 // flits/cycle in (0,1], pattern mode only
//	 "want":"latency"}           // latency (default) | clear | energy
//
// Responses are canonical single-line JSON (byte-stable; see
// report.JSONLine):
//
//	{"id":"q1","ok":true,"result":{"topology":"mesh","point":"…",
//	 "width":8,"height":8,"pattern":"tornado","load":0.1,"want":"latency",
//	 "avg_latency_clks":…,"p99_latency_clks":…,"cycles":…,"packets":…}}
//
// want:clear adds clear / r / avg_utilization; want:energy adds the
// measured fj_per_bit / dynamic_j / static_j / total_j / avg_power_w
// block as well. Runs that fail to drain within the cycle cap answer
// "saturated":true with no pricing.
//
// Rejections are structured and name the offending field:
//
//	{"ok":false,"error":{"code":"unknown_pattern","field":"pattern",
//	 "message":"traffic: unknown pattern \"zipf\" (known: uniform, …)"}}
//
// Error codes: bad_json, unknown_field, unknown_kind, unknown_pattern,
// unknown_kernel, unknown_tech, bad_load, bad_want, bad_geometry,
// bad_request, queue_full, eval_failed, canceled.
//
// The golden protocol suite under testdata/ pins request/response pairs
// for every kind×pattern combination and every error class; see
// cmd/hyppi-serve for the stdio/HTTP entry point and serve/loadtest for
// the sustained-throughput harness.
package serve
