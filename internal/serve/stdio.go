package serve

import (
	"bufio"
	"context"
	"io"
	"strings"
	"sync"
)

// DefaultMaxInFlight bounds how many stdio request lines are being
// answered at once: read-ahead stalls beyond it, which is what lets a
// fast client's queries pile up into coalesced batches without the
// server ever holding unbounded state.
const DefaultMaxInFlight = 32

// maxLineBytes bounds one request line (defense against unframed input).
const maxLineBytes = 1 << 20

// ServeLines runs the JSON-lines protocol (the BookSim2-style cosim
// interface): one request object per line on r, one response line on w,
// responses in request order. Lines are answered concurrently — up to
// maxInFlight queries overlap, so identical and compatible queries dedup
// and batch inside the engine — but the writer releases them strictly in
// input order, keeping the stream usable without IDs. Blank lines are
// ignored; malformed lines get a structured bad_json response rather
// than killing the session. ServeLines returns on EOF, write failure or
// ctx cancellation (maxInFlight <= 0 selects DefaultMaxInFlight).
func (e *Engine) ServeLines(ctx context.Context, r io.Reader, w io.Writer, maxInFlight int) error {
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	// order carries one reply slot per request line, in input order; its
	// capacity is the in-flight bound the reader blocks on.
	order := make(chan chan []byte, maxInFlight)
	writeErr := make(chan error, 1)
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		bw := bufio.NewWriter(w)
		for slot := range order {
			line := <-slot
			if _, err := bw.Write(append(line, '\n')); err != nil {
				trySendErr(writeErr, err)
				drainSlots(order)
				return
			}
			// Flush per response: the peer is a co-simulator blocking on
			// the answer to the line it just wrote.
			if err := bw.Flush(); err != nil {
				trySendErr(writeErr, err)
				drainSlots(order)
				return
			}
		}
	}()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var handlers sync.WaitGroup
scan:
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		slot := make(chan []byte, 1)
		select {
		case order <- slot: // reserves an in-flight slot
		case err := <-writeErr:
			close(order)
			writer.Wait()
			handlers.Wait()
			return err
		case <-ctx.Done():
			break scan
		}
		handlers.Add(1)
		go func(line string) {
			defer handlers.Done()
			slot <- e.handleLine(ctx, line)
		}(raw)
	}
	close(order)
	handlers.Wait()
	writer.Wait()
	select {
	case err := <-writeErr:
		return err
	default:
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return ctx.Err()
}

// handleLine answers one raw request line.
func (e *Engine) handleLine(ctx context.Context, line string) []byte {
	req, decErr := DecodeRequest([]byte(line))
	if decErr != nil {
		return errResponse(req.ID, decErr).Encode()
	}
	return e.Do(ctx, req).Encode()
}

func trySendErr(ch chan<- error, err error) {
	select {
	case ch <- err:
	default:
	}
}

// drainSlots unblocks handlers still delivering after a write failure.
func drainSlots(order <-chan chan []byte) {
	for slot := range order {
		<-slot
	}
}
