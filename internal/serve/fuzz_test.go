package serve

import (
	"strings"
	"testing"
)

// FuzzRequestDecode drives arbitrary bytes through the JSON-lines decoder
// and the canonicalizer: neither may panic, every rejection must be a
// structured error with a stable code (naming the offending field for the
// field-level classes), and canonicalization must be idempotent — the
// property the cache key depends on.
func FuzzRequestDecode(f *testing.F) {
	seeds := []string{
		`{"pattern":"uniform","load":0.05}`,
		`{"id":"q1","topology":"torus","width":4,"height":4,"pattern":"tornado","load":0.1,"want":"clear"}`,
		`{"kernel":"LU","width":4,"height":4}`,
		`{"express":"HyPPI","hops":3,"pattern":"neighbor","load":0.2,"want":"energy"}`,
		`{"pattern":"uniform","load":`,
		`{"pattern":"uniform","load":0.1} trailing`,
		`{"load":"high"}`,
		`{"pattren":"uniform"}`,
		`{"topology":"ring","pattern":"uniform","load":0.1}`,
		`{"pattern":"zipf","load":0.1}`,
		`{"kernel":"DT"}`,
		`{"base":"Optical","pattern":"uniform","load":0.1}`,
		`{"pattern":"uniform","load":-1}`,
		`{"pattern":"uniform","load":1e308}`,
		`{"want":"area","pattern":"uniform","load":0.1}`,
		`{"width":-4,"height":1e4,"pattern":"uniform","load":0.1}`,
		`{"hops":-9,"pattern":"uniform","load":0.1}`,
		`{"pattern":"uniform","kernel":"LU","load":0.1}`,
		`{}`,
		`null`,
		`[1,2,3]`,
		`"pattern"`,
		``,
		"\x00\xff{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	fieldCodes := map[string]bool{
		CodeUnknownField:   true,
		CodeUnknownKind:    true,
		CodeUnknownPattern: true,
		CodeUnknownKernel:  true,
		CodeUnknownTech:    true,
		CodeBadLoad:        true,
		CodeBadWant:        true,
		CodeBadGeometry:    true,
		CodeBadRequest:     true,
	}
	f.Fuzz(func(t *testing.T, line string) {
		req, errObj := DecodeRequest([]byte(line))
		if errObj != nil {
			if errObj.Code != CodeBadJSON && errObj.Code != CodeUnknownField {
				t.Fatalf("decode rejection with non-decode code %q: %v", errObj.Code, errObj)
			}
			if errObj.Message == "" {
				t.Fatalf("decode rejection without message: %+v", errObj)
			}
			if errObj.Code == CodeUnknownField && errObj.Field == "" {
				t.Fatalf("unknown_field rejection without field name: %+v", errObj)
			}
			// The rejection must still encode to a valid response line.
			if enc := errResponse(req.ID, errObj).Encode(); strings.Contains(string(enc), "\n") {
				t.Fatalf("error response spans lines: %q", enc)
			}
			return
		}
		canon, cErr := req.Canonical(DefaultMaxNodes)
		if cErr != nil {
			if !fieldCodes[cErr.Code] {
				t.Fatalf("validation rejection with unexpected code %q: %v", cErr.Code, cErr)
			}
			if cErr.Field == "" || cErr.Message == "" {
				t.Fatalf("validation rejection must name the bad field: %+v", cErr)
			}
			return
		}
		// Accepted requests canonicalize idempotently to a stable key.
		again, cErr := canon.Canonical(DefaultMaxNodes)
		if cErr != nil {
			t.Fatalf("canonical form re-rejected: %v", cErr)
		}
		if again.key() != canon.key() {
			t.Fatalf("canonicalization not idempotent:\n %s\n %s", canon.key(), again.key())
		}
	})
}
