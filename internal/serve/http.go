package serve

import (
	"io"
	"net/http"

	"repro/internal/report"
)

// Handler exposes the engine over HTTP:
//
//	POST /query   — one Request object in the body, one Response out
//	GET  /stats   — the engine's serving counters as JSON
//	GET  /metrics — the same counters in Prometheus text format 0.0.4
//	GET  /healthz — liveness probe ("ok")
//
// Status codes map the protocol error classes: 200 for answered queries,
// 400 for every validation rejection, 429 (with Retry-After) for
// queue-full backpressure, 422 for queries that validate but cannot be
// evaluated, 503 for a canceled wait or a draining server. The response
// body is always the same canonical JSON line the stdio mode writes, so
// the two transports share one golden suite.
//
// Request bodies are hard-limited to the stdio line bound (1 MiB): an
// oversized body is rejected explicitly rather than silently truncated
// into a different query. While the engine drains (StartDraining), /query
// answers 503 draining and /healthz stops reporting ok, so load balancers
// shed traffic during graceful shutdown.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if e.Draining() {
			writeResponse(w, errResponse("", errf(CodeDraining, "", "server draining, retry elsewhere")))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxLineBytes))
		if err != nil {
			code := CodeBadJSON
			if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
				code = CodeBadRequest
			}
			writeResponse(w, errResponse("", errf(code, "", "reading body: %v", err)))
			return
		}
		req, decErr := DecodeRequest(body)
		if decErr != nil {
			writeResponse(w, errResponse(req.ID, decErr))
			return
		}
		writeResponse(w, e.Do(r.Context(), req))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		line, err := report.JSONLine(e.Stats())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(line, '\n'))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := e.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	})
	return mux
}

// writeResponse emits a canonical response line with its mapped status.
func writeResponse(w http.ResponseWriter, resp Response) {
	w.Header().Set("Content-Type", "application/json")
	if !resp.OK {
		status := http.StatusBadRequest
		switch resp.Error.Code {
		case CodeQueueFull:
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		case CodeEvalFailed:
			status = http.StatusUnprocessableEntity
		case CodeCanceled:
			status = http.StatusServiceUnavailable
		case CodeDraining:
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(status)
	}
	w.Write(append(resp.Encode(), '\n'))
}
