package serve

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	promSample = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
	promHelp = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promType = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// parsePromText validates the exposition format line by line and returns
// sample values keyed by "name{labels}".
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case promHelp.MatchString(line):
		case promType.MatchString(line):
			m := promType.FindStringSubmatch(line)
			typed[m[1]] = m[2]
		case promSample.MatchString(line):
			m := promSample.FindStringSubmatch(line)
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q", i+1, m[3])
			}
			samples[m[1]+m[2]] = v
			// Every sample must belong to a TYPEd family (histogram
			// series carry the family name plus a suffix).
			base := m[1]
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base = strings.TrimSuffix(base, suf)
			}
			if _, ok := typed[base]; !ok {
				t.Errorf("line %d: sample %q precedes its TYPE", i+1, m[1])
			}
		default:
			t.Errorf("line %d: not valid Prometheus text: %q", i+1, line)
		}
	}
	return samples
}

// TestMetricsFormatAndCounts: /metrics parses as Prometheus text format
// and its counters agree with Stats.
func TestMetricsFormatAndCounts(t *testing.T) {
	e := newTestEngine(t)
	for i := 0; i < 3; i++ {
		resp := e.Do(context.Background(), Request{ID: fmt.Sprint(i),
			Topology: "mesh", Width: 4, Height: 4,
			Pattern: "uniform", Load: 0.05, Want: WantLatency})
		if !resp.OK {
			t.Fatalf("query %d failed: %+v", i, resp.Error)
		}
	}

	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q missing format version", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, string(body))

	st := e.Stats()
	checks := map[string]float64{
		`hyppi_serve_queries_total{result="hit"}`:      float64(st.Hits),
		`hyppi_serve_queries_total{result="miss"}`:     float64(st.Misses),
		`hyppi_serve_queries_total{result="rejected"}`: float64(st.Rejected),
		`hyppi_serve_evaluations_total`:                float64(st.Evaluations),
		`hyppi_serve_eval_batches_total`:               float64(st.Batches),
		`hyppi_serve_cache_evictions_total`:            float64(st.Evictions),
		`hyppi_serve_cache_entries`:                    float64(st.CacheEntries),
		`hyppi_serve_max_batch_size`:                   float64(st.MaxBatch),
		`hyppi_serve_draining`:                         0,
	}
	for name, want := range checks {
		got, ok := samples[name]
		if !ok {
			t.Errorf("missing sample %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if st.Hits+st.Misses != 3 || st.Misses == 0 {
		t.Errorf("hits=%d misses=%d over 3 queries", st.Hits, st.Misses)
	}
	if up, ok := samples["hyppi_serve_uptime_seconds"]; !ok || up < 0 {
		t.Errorf("uptime gauge missing or negative: %v", up)
	}
}

// TestMetricsHistogram: the duration histogram's buckets are cumulative
// and monotone, end at +Inf, and _count equals the query total.
func TestMetricsHistogram(t *testing.T) {
	e := newTestEngine(t)
	const n = 4
	for i := 0; i < n; i++ {
		resp := e.Do(context.Background(), Request{ID: fmt.Sprint(i),
			Topology: "mesh", Width: 4, Height: 4,
			Pattern: "uniform", Load: 0.05, Want: WantLatency})
		if !resp.OK {
			t.Fatalf("query %d failed: %+v", i, resp.Error)
		}
	}
	// A synthetic slow query lands in the +Inf overflow bucket.
	e.observeLatency(10 * time.Second)

	var buf strings.Builder
	if err := e.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())

	const h = "hyppi_serve_query_duration_seconds"
	type bucket struct {
		le  float64
		val float64
	}
	var buckets []bucket
	re := regexp.MustCompile(`^` + h + `_bucket\{le="([^"]+)"\}$`)
	for k, v := range samples {
		if m := re.FindStringSubmatch(k); m != nil {
			le := float64(0)
			if m[1] == "+Inf" {
				le = float64(1 << 62)
			} else {
				var err error
				le, err = strconv.ParseFloat(m[1], 64)
				if err != nil {
					t.Fatalf("bad le %q", m[1])
				}
			}
			buckets = append(buckets, bucket{le, v})
		}
	}
	if len(buckets) < 2 {
		t.Fatalf("only %d buckets", len(buckets))
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].val < buckets[i-1].val {
			t.Fatalf("bucket %v < preceding bucket %v", buckets[i], buckets[i-1])
		}
	}
	inf := buckets[len(buckets)-1]
	if inf.le != float64(1<<62) {
		t.Fatal("last bucket is not +Inf")
	}
	count := samples[h+"_count"]
	if inf.val != count {
		t.Errorf("+Inf bucket %v != _count %v", inf.val, count)
	}
	if count != n+1 {
		t.Errorf("_count %v, want %d", count, n+1)
	}
	// The 10 s synthetic sample overflows every finite bucket.
	if finite := buckets[len(buckets)-2]; finite.val != n {
		t.Errorf("largest finite bucket %v, want %d (overflow must not clamp)", finite.val, n)
	}
	if sum := samples[h+"_sum"]; sum < 10 {
		t.Errorf("_sum %v should include the 10 s sample", sum)
	}
}

// TestStatsUptimeAndQueueDepth: the /stats satellites — uptime advances,
// queue depth reflects pending work.
func TestStatsUptimeAndQueueDepth(t *testing.T) {
	e := newTestEngine(t)
	st := e.Stats()
	if st.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", st.UptimeSeconds)
	}
	if st.QueueDepth != 0 {
		t.Errorf("idle queue depth %d", st.QueueDepth)
	}
	time.Sleep(10 * time.Millisecond)
	if st2 := e.Stats(); st2.UptimeSeconds <= st.UptimeSeconds {
		t.Errorf("uptime did not advance: %v then %v", st.UptimeSeconds, st2.UptimeSeconds)
	}
}
