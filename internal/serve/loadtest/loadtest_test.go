package loadtest

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

func fastEngine(t *testing.T) *serve.Engine {
	t.Helper()
	sc := core.DefaultEnergySweep()
	sc.Workload.Cycles = 400
	sc.NoC.MaxCycles = 20000
	e := serve.NewEngine(serve.Config{Sweep: sc, Workers: 2})
	t.Cleanup(e.Close)
	return e
}

// TestRunReportsRateAndHits: cycling the 12-query mix 10× must answer
// every query, evaluate each distinct query once, and land the hit rate
// at 108/120.
func TestRunReportsRateAndHits(t *testing.T) {
	e := fastEngine(t)
	rep, err := Run(context.Background(), e, Config{Queries: 120, Clients: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 120 || rep.Failed != 0 {
		t.Fatalf("want 120 clean queries, got %+v", rep)
	}
	if rep.Distinct != uint64(len(DefaultMix())) {
		t.Errorf("want %d distinct evaluations, got %d", len(DefaultMix()), rep.Distinct)
	}
	if want := 1 - float64(len(DefaultMix()))/120.0; rep.HitRate != want {
		t.Errorf("want hit rate %.3f, got %.3f", want, rep.HitRate)
	}
	if rep.QPS <= 0 {
		t.Errorf("nonpositive QPS: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty summary")
	}
}

// TestRunBoundedCache: a cache cap smaller than the mix forces LRU churn
// — cycling the 12-query mix through 6 slots evicts on every round — yet
// every query still answers and the cache never exceeds its bound.
func TestRunBoundedCache(t *testing.T) {
	sc := core.DefaultEnergySweep()
	sc.Workload.Cycles = 400
	sc.NoC.MaxCycles = 20000
	e := serve.NewEngine(serve.Config{Sweep: sc, Workers: 2, CacheEntries: 6})
	t.Cleanup(e.Close)

	rep, err := Run(context.Background(), e, Config{Queries: 36, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("queries failed under the cache bound: %+v", rep)
	}
	if rep.Stats.CacheEntries > 6 {
		t.Errorf("cache exceeded its cap: %+v", rep.Stats)
	}
	if rep.Stats.Evictions == 0 {
		t.Errorf("cycling 12 distinct queries through 6 slots evicted nothing: %+v", rep.Stats)
	}
}

// TestRunPacing: with a target rate, the run cannot finish faster than
// the pacing allows (the harness meters offered load, not just capacity).
func TestRunPacing(t *testing.T) {
	e := fastEngine(t)
	rep, err := Run(context.Background(), e, Config{Queries: 20, Clients: 4, TargetQPS: 200})
	if err != nil {
		t.Fatal(err)
	}
	// 20 queries at 200 q/s are paced across ~95ms (queries 0..19 due at
	// i/200 s); generous upper bound keeps the check robust.
	if rep.QPS > 300 {
		t.Errorf("pacing ignored: %.1f q/s for a 200 q/s target", rep.QPS)
	}
}

// TestRunHonorsCancel: a canceled context aborts the run with its error.
func TestRunHonorsCancel(t *testing.T) {
	e := fastEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, e, Config{Queries: 50}); err == nil {
		t.Fatal("canceled run reported success")
	}
}
