// Package loadtest replays a mixed query workload against a serve.Engine
// and reports sustained throughput and cache effectiveness — the harness
// behind `hyppi-serve -selftest` and the serve-smoke CI gate.
package loadtest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// Config shapes one load run.
type Config struct {
	// Queries is the total number of queries to issue (default 120).
	Queries int
	// Clients is the number of concurrent client goroutines (default 8),
	// each drawing the next query from the shared mix.
	Clients int
	// TargetQPS paces the offered load; 0 issues queries as fast as the
	// engine answers them.
	TargetQPS float64
	// Mix is the cycled query workload (default DefaultMix). Cycling a
	// mix smaller than Queries is what exercises the cache: every query
	// past the first cycle should be a hit.
	Mix []serve.Request
}

func (c Config) withDefaults() Config {
	if c.Queries <= 0 {
		c.Queries = 120
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	return c
}

// DefaultMix is the standard smoke workload: 12 distinct queries across
// kinds, patterns, loads, wants and a kernel trace, all on 4×4 grids so a
// 1-CPU container evaluates the cold set in well under a second.
func DefaultMix() []serve.Request {
	return []serve.Request{
		{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05},
		{Width: 4, Height: 4, Pattern: "uniform", Load: 0.1},
		{Width: 4, Height: 4, Pattern: "tornado", Load: 0.05},
		{Width: 4, Height: 4, Pattern: "neighbor", Load: 0.1},
		{Width: 4, Height: 4, Pattern: "hotspot", Load: 0.05},
		{Width: 4, Height: 4, Pattern: "transpose", Load: 0.05},
		{Topology: "torus", Width: 4, Height: 4, Pattern: "uniform", Load: 0.05},
		{Topology: "fbfly", Width: 4, Height: 4, Pattern: "uniform", Load: 0.05},
		{Width: 4, Height: 4, Express: "HyPPI", Hops: 2, Pattern: "tornado", Load: 0.1},
		{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05, Want: serve.WantCLEAR},
		{Width: 4, Height: 4, Pattern: "uniform", Load: 0.05, Want: serve.WantEnergy},
		{Width: 4, Height: 4, Kernel: "LU"},
	}
}

// Report is the outcome of one load run.
type Report struct {
	// Queries issued, split into OK answers and Failed rejections.
	Queries, OK, Failed int
	// Duration is wall clock for the whole run; QPS is Queries/Duration.
	Duration time.Duration
	QPS      float64
	// HitRate is the cache-join fraction over this run's queries (engine
	// stats delta, so a pre-warmed engine reports only this run).
	HitRate float64
	// Distinct is the number of evaluations this run triggered.
	Distinct uint64
	// Stats snapshots the engine counters at the end of the run.
	Stats serve.Stats
}

// String renders the one-line summary the CLI prints.
func (r Report) String() string {
	return fmt.Sprintf("loadtest: %d queries (%d ok, %d failed) in %s = %.1f q/s, hit rate %.1f%%, %d evaluated, max batch %d",
		r.Queries, r.OK, r.Failed, r.Duration.Round(time.Millisecond), r.QPS,
		100*r.HitRate, r.Distinct, r.Stats.MaxBatch)
}

// Run replays the mix until cfg.Queries queries have been answered and
// reports the sustained rate. Clients share one query counter, so the mix
// is cycled exactly once per len(Mix) queries regardless of client count.
func Run(ctx context.Context, e *serve.Engine, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	before := e.Stats()
	var next atomic.Int64
	var ok, failed atomic.Int64
	start := time.Now()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Queries) || ctx.Err() != nil {
					return
				}
				if cfg.TargetQPS > 0 {
					due := start.Add(time.Duration(float64(i) / cfg.TargetQPS * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				}
				req := cfg.Mix[int(i)%len(cfg.Mix)]
				req.ID = fmt.Sprintf("lt-%d", i)
				if resp := e.Do(ctx, req); resp.OK {
					ok.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}

	after := e.Stats()
	rep := Report{
		Queries:  int(ok.Load() + failed.Load()),
		OK:       int(ok.Load()),
		Failed:   int(failed.Load()),
		Duration: time.Since(start),
		Distinct: after.Evaluations - before.Evaluations,
		Stats:    after,
	}
	rep.QPS = float64(rep.Queries) / rep.Duration.Seconds()
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	if hits+misses > 0 {
		rep.HitRate = float64(hits) / float64(hits+misses)
	}
	return rep, nil
}
